#!/usr/bin/env python3
"""Kill-mid-load crash-recovery smoke for the networked KV service.

Drives the ``kv_server`` example binary through the full durability
story end to end:

  1. start ``kv_server --serve --wal-dir <tmp> --port 0`` and parse the
     ephemeral port from its "listening on port N" banner;
  2. run ``kv_server --load --pairs`` against it — every write is a
     correlated ``multiPut`` of ``{k, v}`` and ``{k + keyspace/2, v}``,
     which the store logs as ONE cross-shard WAL record;
  3. SIGKILL the server mid-load (no shutdown path runs: whatever is on
     disk is exactly what group commit made durable);
  4. restart the server over the same WAL directory, letting recovery
     scan the valid prefix of each shard file and drop any torn tail;
  5. run ``kv_server --check``: every correlated pair must agree — a
     half-applied pair means a multiPut record tore across the crash,
     i.e. recovery violated its all-or-nothing contract.

Usage: ``kv_crash_smoke.py /path/to/kv_server``. Exit 0 on success, 1
with a diagnostic on any failure. Registered in CMake as the
``net.crash_recovery_smoke`` ctest (label ``net``).
"""

import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time

LISTEN_RE = re.compile(r"listening on port (\d+)")


def fail(msg):
    print(f"kv_crash_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def start_server(binary, wal_dir, log_path):
    """Launch --serve and block until the listening banner appears."""
    log = open(log_path, "w")
    proc = subprocess.Popen(
        [binary, "--serve", "--wal-dir", wal_dir, "--port", "0"],
        stdout=log,
        stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        with open(log_path) as f:
            m = LISTEN_RE.search(f.read())
        if m:
            return proc, int(m.group(1))
        if proc.poll() is not None:
            with open(log_path) as f:
                fail(f"server exited during startup:\n{f.read()}")
        time.sleep(0.05)
    proc.kill()
    fail("server never printed its listening banner")


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} /path/to/kv_server")
    binary = sys.argv[1]
    if not os.access(binary, os.X_OK):
        fail(f"not executable: {binary}")

    workdir = tempfile.mkdtemp(prefix="ptm-crash-smoke-")
    wal_dir = os.path.join(workdir, "wal")
    os.mkdir(wal_dir)
    server = None
    try:
        server, port = start_server(
            binary, wal_dir, os.path.join(workdir, "serve1.log")
        )
        print(f"kv_crash_smoke: server up on port {port}")

        load = subprocess.Popen(
            [
                binary,
                "--load",
                "--pairs",
                "--port",
                str(port),
                "--clients",
                "4",
                "--ops",
                "200000",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        # Let the load make real progress, then pull the plug with no
        # shutdown path: group commit's fsync-before-ack is the only
        # thing standing between acked writes and the crash.
        time.sleep(0.7)
        server.send_signal(signal.SIGKILL)
        server.wait()
        server = None
        load_out, _ = load.communicate(timeout=120)
        print(f"kv_crash_smoke: {load_out.strip()}")

        server, port = start_server(
            binary, wal_dir, os.path.join(workdir, "serve2.log")
        )
        with open(os.path.join(workdir, "serve2.log")) as f:
            banner = f.readline().strip()
        print(f"kv_crash_smoke: {banner}")
        if "recovered" not in banner:
            fail(f"restart did not report recovery: {banner}")

        check = subprocess.run(
            [binary, "--check", "--port", str(port)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            timeout=120,
        )
        print(f"kv_crash_smoke: {check.stdout.strip()}")
        if check.returncode != 0:
            fail("post-recovery check found torn pairs")

        server.send_signal(signal.SIGTERM)
        if server.wait(timeout=30) != 0:
            fail("server did not shut down cleanly after SIGTERM")
        server = None
        print("kv_crash_smoke: PASS")
    finally:
        if server is not None:
            server.kill()
            server.wait()
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
