#!/usr/bin/env python3
"""Schema and well-formedness gate for the ptm-trace-v1 trace export.

Validates one Chrome ``trace_event`` JSON document produced by the
``obs::writeChromeTraceJson`` exporter (``kv_server --trace``, or any
program dumping an ``obs::Tracer``):

  * the document parses, carries ``otherData.schema == "ptm-trace-v1"``
    with ``time_unit == "us"`` and a non-negative integer
    ``dropped_events``, and has a non-empty ``traceEvents`` array;
  * every event has the fixed shape ``name/cat/ph/ts/pid/tid`` with
    ``cat == "tm"``, ``ph`` one of B/E/i, a finite non-negative ``ts``
    and integer ``pid``/``tid``; instant events additionally carry
    ``s == "t"`` (thread scope);
  * event names come from the pinned vocabulary — ``txn``, ``txn-ro``,
    ``tryCommit`` as B/E duration pairs and ``read``, ``write``,
    ``extend``, ``snapshot-pin`` as instants — so a renamed or novel
    event kind fails the gate instead of silently shifting the schema;
  * per tid, timestamps are non-decreasing in array order (the exporter
    emits each thread's ring oldest-first);
  * per tid, B/E pairs balance with stack discipline and matching names
    — the exporter must re-balance across ring-overwrite gaps, and this
    is the check that proves it did — and every stack is empty at the
    end of the document;
  * every ``txn``/``txn-ro`` close carries ``args.outcome`` of
    ``commit`` or ``abort``, and aborts name their cause;
  * with ``--require-event``, the named event must occur at least once
    (CI uses this to assert the trace is not an empty shell).

Exit status 0 when everything holds, 1 with one line per violation.
"""

import argparse
import json
import math
import os
import sys

DURATION_NAMES = {"txn", "txn-ro", "tryCommit"}
INSTANT_NAMES = {"read", "write", "extend", "snapshot-pin"}
OUTCOMES = {"commit", "abort"}


class Gate:
    """Collects violations with their document context."""

    def __init__(self, doc):
        self.doc = doc
        self.violations = []

    def fail(self, message):
        self.violations.append(f"{self.doc}: {message}")

    def ok(self):
        return not self.violations


def is_finite_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool) \
        and math.isfinite(value)


def check_header(gate, data):
    other = data.get("otherData")
    if not isinstance(other, dict):
        gate.fail("otherData missing or not an object")
        return
    if other.get("schema") != "ptm-trace-v1":
        gate.fail(f"schema is {other.get('schema')!r}, "
                  f"expected 'ptm-trace-v1'")
    if other.get("time_unit") != "us":
        gate.fail(f"time_unit is {other.get('time_unit')!r}, expected 'us'")
    dropped = other.get("dropped_events")
    if not isinstance(dropped, int) or isinstance(dropped, bool) \
            or dropped < 0:
        gate.fail(f"dropped_events must be a non-negative integer "
                  f"({dropped!r})")


def check_event_shape(gate, where, event):
    """Structural checks on one event; returns False when too broken to
    feed the per-thread ordering/balance analysis."""
    if not isinstance(event, dict):
        gate.fail(f"{where}: not an object")
        return False
    name = event.get("name")
    phase = event.get("ph")
    if phase not in ("B", "E", "i"):
        gate.fail(f"{where}: unknown phase {phase!r}")
        return False
    allowed = DURATION_NAMES if phase in ("B", "E") else INSTANT_NAMES
    if name not in allowed:
        gate.fail(f"{where}: name {name!r} is not a pinned "
                  f"{'duration' if phase in ('B', 'E') else 'instant'} "
                  f"event name")
    if event.get("cat") != "tm":
        gate.fail(f"{where}: cat is {event.get('cat')!r}, expected 'tm'")
    if not is_finite_number(event.get("ts")) or event["ts"] < 0:
        gate.fail(f"{where}: ts must be a finite non-negative number "
                  f"({event.get('ts')!r})")
        return False
    for key in ("pid", "tid"):
        if not isinstance(event.get(key), int) \
                or isinstance(event.get(key), bool):
            gate.fail(f"{where}: {key} must be an integer "
                      f"({event.get(key)!r})")
            return False
    if phase == "i" and event.get("s") != "t":
        gate.fail(f"{where}: instant event must carry s == 't' "
                  f"({event.get('s')!r})")
    if phase == "E" and name in ("txn", "txn-ro"):
        args = event.get("args")
        outcome = args.get("outcome") if isinstance(args, dict) else None
        if outcome not in OUTCOMES:
            gate.fail(f"{where}: transaction close must carry "
                      f"args.outcome of commit/abort ({outcome!r})")
        elif outcome == "abort" and not (isinstance(args.get("cause"), str)
                                         and args["cause"]):
            gate.fail(f"{where}: abort close must name its cause "
                      f"({args.get('cause')!r})")
    return True


def check_events(gate, events, require):
    seen = set()
    last_ts = {}    # tid -> last timestamp
    stacks = {}     # tid -> open duration-event name stack
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not check_event_shape(gate, where, event):
            continue
        name, phase, ts, tid = (event["name"], event["ph"], event["ts"],
                                event["tid"])
        seen.add(name)
        if tid in last_ts and ts < last_ts[tid]:
            gate.fail(f"{where}: ts {ts} regresses below {last_ts[tid]} "
                      f"on tid {tid}")
        last_ts[tid] = ts
        stack = stacks.setdefault(tid, [])
        if phase == "B":
            stack.append(name)
        elif phase == "E":
            if not stack:
                gate.fail(f"{where}: E '{name}' on tid {tid} with no "
                          f"open B")
            elif stack[-1] != name:
                gate.fail(f"{where}: E '{name}' on tid {tid} closes "
                          f"open '{stack[-1]}'")
            else:
                stack.pop()
    for tid in sorted(stacks):
        for name in stacks[tid]:
            gate.fail(f"tid {tid}: B '{name}' never closed")
    for name in require:
        if name not in seen:
            gate.fail(f"required event '{name}' never occurs")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="ptm-trace-v1 JSON to validate")
    parser.add_argument("--require-event", action="append", default=[],
                        metavar="NAME",
                        help="event name that must occur at least once "
                             "(repeatable)")
    args = parser.parse_args()

    gate = Gate(os.path.basename(args.trace))
    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as err:
        gate.fail(f"cannot read: {err}")
    except json.JSONDecodeError as err:
        gate.fail(f"invalid JSON: {err}")
    else:
        if not isinstance(data, dict):
            gate.fail("top level is not an object")
        else:
            check_header(gate, data)
            events = data.get("traceEvents")
            if not isinstance(events, list) or not events:
                gate.fail("traceEvents missing or empty")
            else:
                check_events(gate, events, args.require_event)

    if not gate.ok():
        for violation in gate.violations:
            print(f"check_trace_json: {violation}", file=sys.stderr)
        print(f"check_trace_json: FAILED with {len(gate.violations)} "
              f"violation(s)", file=sys.stderr)
        return 1
    print("check_trace_json: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
