#!/usr/bin/env python3
"""Schema and sanity gate for the ptm-bench-v1 benchmark trajectory.

Validates one consolidated JSON document produced by ``run_all --json``
(and, with ``--dir``, the per-family ``BENCH_<family>.json`` files from
``--json-dir``):

  * the document parses and carries ``schema == "ptm-bench-v1"`` with the
    expected top-level shape (``smoke``, ``config``, ``benchmarks``,
    ``results``);
  * every registered benchmark family has at least one result row, so a
    silently dropped registration fails the gate instead of erasing a
    family's trajectory with no other symptom;
  * every ``status == "ok"`` row carries finite, non-negative statistics
    (the JSON writer emits ``null`` for NaN/inf, so any null here means a
    broken measurement), ``reps == len(samples)``, and internally
    consistent order statistics (min <= median <= max);
  * rows reference registered benchmarks and match their family;
  * with ``--dir``, each family's per-family file exists, validates by the
    same rules, and contains exactly that family's rows;
  * with ``--expect-family``, the named families must be registered — CI
    pins the known family list so a vanished benchmark fails the PR;
  * with ``--expect-metric FAMILY:METRIC``, at least one result row of
    that family must report that metric — CI pins the telemetry columns
    (p99_latency, abort_ratio, ...) so a dropped metric row fails too;
  * with ``--expect-dimension FAMILY:KEY[,KEY...]``, every result row of
    that family must carry each KEY in its ``params`` object and the
    family must sweep at least two distinct values per KEY — CI pins the
    (clock, cm) configuration dimension so a row that silently stops
    labeling its TM configuration, or a sweep that collapses to a single
    value, fails the gate.

Exit status 0 when everything holds, 1 with one line per violation.
"""

import argparse
import json
import math
import os
import sys

STAT_FIELDS = ("min", "max", "mean", "median", "p90", "stddev", "cv")
KNOWN_STATUSES = {"ok", "livelock", "budget-hit", "violation"}


class Gate:
    """Collects violations with their document context."""

    def __init__(self):
        self.violations = []

    def fail(self, doc, message):
        self.violations.append(f"{doc}: {message}")

    def ok(self):
        return not self.violations


def is_finite_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool) \
        and math.isfinite(value)


def check_row(gate, doc, index, row, families_by_benchmark):
    where = f"results[{index}]"
    if not isinstance(row, dict):
        gate.fail(doc, f"{where}: not an object")
        return
    benchmark = row.get("benchmark")
    if benchmark not in families_by_benchmark:
        gate.fail(doc, f"{where}: unregistered benchmark {benchmark!r}")
    elif row.get("family") != families_by_benchmark[benchmark]:
        gate.fail(doc, f"{where}: family {row.get('family')!r} does not "
                       f"match benchmark {benchmark!r}")
    if not isinstance(row.get("tm"), str) or not row["tm"]:
        gate.fail(doc, f"{where}: missing tm label")
    threads = row.get("threads")
    if not isinstance(threads, int) or isinstance(threads, bool) \
            or threads < 1:
        gate.fail(doc, f"{where}: threads must be a positive integer")
    for key in ("metric", "unit"):
        if not isinstance(row.get(key), str) or not row[key]:
            gate.fail(doc, f"{where}: missing {key}")
    status = row.get("status")
    if status not in KNOWN_STATUSES:
        gate.fail(doc, f"{where}: unknown status {status!r}")

    samples = row.get("samples")
    if not isinstance(samples, list):
        gate.fail(doc, f"{where}: samples must be an array")
        return
    if row.get("reps") != len(samples):
        gate.fail(doc, f"{where}: reps {row.get('reps')!r} != "
                       f"len(samples) {len(samples)}")
    if status != "ok":
        return  # Non-ok rows carry sentinel statistics by design.

    for field in STAT_FIELDS:
        if not is_finite_number(row.get(field)):
            gate.fail(doc, f"{where}: {field} is not a finite number "
                           f"({row.get(field)!r} — NaN/inf serialize as "
                           f"null)")
    for pos, sample in enumerate(samples):
        if not is_finite_number(sample):
            gate.fail(doc, f"{where}: samples[{pos}] is not a finite "
                           f"number ({sample!r})")
        elif sample < 0:
            gate.fail(doc, f"{where}: samples[{pos}] is negative "
                           f"({sample})")
    if all(is_finite_number(row.get(f)) for f in ("min", "median", "max")):
        if not row["min"] <= row["median"] <= row["max"]:
            gate.fail(doc, f"{where}: order statistics inconsistent "
                           f"(min {row['min']}, median {row['median']}, "
                           f"max {row['max']})")
        if row["min"] < 0:
            gate.fail(doc, f"{where}: negative min ({row['min']})")
    if is_finite_number(row.get("stddev")) and row["stddev"] < 0:
        gate.fail(doc, f"{where}: negative stddev ({row['stddev']})")


def check_document(gate, path, expect_single_family=None,
                   metric_pairs=None, family_rows=None):
    """Validates one ptm-bench-v1 document; returns its family set.

    When ``metric_pairs`` is a set, every result row's
    ``(family, metric)`` pair is added to it. When ``family_rows`` is a
    dict, every result row is appended to ``family_rows[family]`` for
    the dimension checks.
    """
    doc = os.path.basename(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as err:
        gate.fail(doc, f"cannot read: {err}")
        return set()
    except json.JSONDecodeError as err:
        gate.fail(doc, f"invalid JSON: {err}")
        return set()

    if not isinstance(data, dict):
        gate.fail(doc, "top level is not an object")
        return set()
    if data.get("schema") != "ptm-bench-v1":
        gate.fail(doc, f"schema is {data.get('schema')!r}, "
                       f"expected 'ptm-bench-v1'")
    if not isinstance(data.get("smoke"), bool):
        gate.fail(doc, "smoke flag missing or not a boolean")
    config = data.get("config")
    if not isinstance(config, dict) or \
            not all(key in config for key in ("reps", "warmup", "threads")):
        gate.fail(doc, "config missing reps/warmup/threads")

    benchmarks = data.get("benchmarks")
    families_by_benchmark = {}
    if not isinstance(benchmarks, list) or not benchmarks:
        gate.fail(doc, "benchmarks list missing or empty")
        benchmarks = []
    for entry in benchmarks:
        if not isinstance(entry, dict) or \
                not all(isinstance(entry.get(k), str) and entry[k]
                        for k in ("name", "family", "claim")):
            gate.fail(doc, f"malformed benchmark entry {entry!r}")
            continue
        if entry["name"] in families_by_benchmark:
            gate.fail(doc, f"duplicate benchmark {entry['name']!r}")
        families_by_benchmark[entry["name"]] = entry["family"]

    results = data.get("results")
    if not isinstance(results, list):
        gate.fail(doc, "results missing or not an array")
        results = []
    for index, row in enumerate(results):
        check_row(gate, doc, index, row, families_by_benchmark)
        if metric_pairs is not None and isinstance(row, dict) \
                and isinstance(row.get("family"), str) \
                and isinstance(row.get("metric"), str):
            metric_pairs.add((row["family"], row["metric"]))
        if family_rows is not None and isinstance(row, dict) \
                and isinstance(row.get("family"), str):
            family_rows.setdefault(row["family"], []).append((index, row))

    families = set(families_by_benchmark.values())
    covered = {row.get("family") for row in results
               if isinstance(row, dict)}
    for family in sorted(families - covered):
        gate.fail(doc, f"registered family '{family}' has no result rows")

    if expect_single_family is not None:
        for family in sorted(covered | families):
            if family != expect_single_family:
                gate.fail(doc, f"per-family file contains foreign family "
                               f"'{family}'")
    return families


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("consolidated",
                        help="consolidated JSON from run_all --json")
    parser.add_argument("--dir", dest="family_dir",
                        help="directory of per-family BENCH_<family>.json "
                             "files (run_all --json-dir)")
    parser.add_argument("--expect-family", action="append", default=[],
                        help="family that must be registered (repeatable)")
    parser.add_argument("--expect-metric", action="append", default=[],
                        metavar="FAMILY:METRIC",
                        help="metric that some row of FAMILY must report "
                             "(repeatable)")
    parser.add_argument("--expect-dimension", action="append", default=[],
                        metavar="FAMILY:KEY[,KEY...]",
                        help="param keys every row of FAMILY must carry, "
                             "with >= 2 distinct values per key across the "
                             "family (repeatable)")
    args = parser.parse_args()

    gate = Gate()
    metric_pairs = set()
    family_rows = {}
    families = check_document(gate, args.consolidated,
                              metric_pairs=metric_pairs,
                              family_rows=family_rows)

    for family in args.expect_family:
        if family not in families:
            gate.fail(os.path.basename(args.consolidated),
                      f"expected family '{family}' is not registered")

    for expectation in args.expect_metric:
        family, sep, metric = expectation.partition(":")
        if not sep or not family or not metric:
            gate.fail(os.path.basename(args.consolidated),
                      f"malformed --expect-metric {expectation!r} "
                      f"(use FAMILY:METRIC)")
        elif (family, metric) not in metric_pairs:
            gate.fail(os.path.basename(args.consolidated),
                      f"expected metric '{metric}' has no result row in "
                      f"family '{family}'")

    doc = os.path.basename(args.consolidated)
    for expectation in args.expect_dimension:
        family, sep, keys = expectation.partition(":")
        keys = [key for key in keys.split(",") if key]
        if not sep or not family or not keys:
            gate.fail(doc, f"malformed --expect-dimension {expectation!r} "
                           f"(use FAMILY:KEY[,KEY...])")
            continue
        rows = family_rows.get(family, [])
        if not rows:
            gate.fail(doc, f"expected dimension family '{family}' has no "
                           f"result rows")
            continue
        for key in keys:
            values = set()
            for index, row in rows:
                params = row.get("params")
                value = params.get(key) if isinstance(params, dict) else None
                if not isinstance(value, (str, int, float)) \
                        or isinstance(value, bool):
                    gate.fail(doc, f"results[{index}]: family '{family}' "
                                   f"row lacks param '{key}'")
                else:
                    values.add(value)
            if len(values) < 2:
                gate.fail(doc, f"family '{family}' sweeps only "
                               f"{sorted(map(str, values))!r} for param "
                               f"'{key}' (expected >= 2 distinct values)")

    if args.family_dir:
        for family in sorted(families):
            path = os.path.join(args.family_dir, f"BENCH_{family}.json")
            if not os.path.exists(path):
                gate.fail(f"BENCH_{family}.json",
                          f"missing from {args.family_dir}")
                continue
            check_document(gate, path, expect_single_family=family)

    if not gate.ok():
        for violation in gate.violations:
            print(f"check_bench_json: {violation}", file=sys.stderr)
        print(f"check_bench_json: FAILED with {len(gate.violations)} "
              f"violation(s)", file=sys.stderr)
        return 1
    print(f"check_bench_json: OK ({len(families)} families)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
