#!/usr/bin/env python3
"""Schema and sanity gate for the ptm-explore-v1 exploration summary.

Validates one JSON document produced by ``model_check --json`` (the
systematic schedule explorer's summary; see src/explore/ExploreJson.h):

  * the document parses and carries ``schema == "ptm-explore-v1"`` with a
    non-empty ``results`` array;
  * every row names a scenario and TM kind, enumerated at least one
    schedule, and its counters are internally consistent
    (``unique_states <= executed``, non-negative integers throughout);
  * every enumeration ran to completion: ``complete`` is true and neither
    the schedule cap nor the time budget was hit — a truncated exploration
    proves nothing, so it fails the gate instead of shrinking coverage
    silently;
  * replay determinism held (``replay_divergences == 0``) and the checker
    never bailed on a resource limit;
  * no schedule violated opacity, final-state serializability, or the
    TM's property row (all three violation counters are zero);
  * with ``--expect-tm`` / ``--expect-scenario``, the named TM kinds and
    scenarios must each have at least one row — CI pins the full kind
    list so a kind silently dropped from the sweep fails the PR.

Exit status 0 when everything holds, 1 with one line per violation.
"""

import argparse
import json
import os
import sys

COUNTER_FIELDS = (
    "executed", "sleep_blocked", "pruned_sleep", "pruned_bound",
    "noop_skips", "unique_states", "max_depth", "replay_divergences",
    "opacity_violations", "serializability_violations",
    "property_violations", "checker_resource_limits", "witness_matches",
)
BOOL_FIELDS = ("sleep_sets", "complete", "hit_schedule_cap",
               "hit_time_budget")
VIOLATION_FIELDS = ("opacity_violations", "serializability_violations",
                    "property_violations")


class Gate:
    """Collects violations with their document context."""

    def __init__(self):
        self.violations = []

    def fail(self, doc, message):
        self.violations.append(f"{doc}: {message}")

    def ok(self):
        return not self.violations


def is_count(value):
    return isinstance(value, int) and not isinstance(value, bool) \
        and value >= 0


def check_row(gate, doc, index, row):
    where = f"results[{index}]"
    if not isinstance(row, dict):
        gate.fail(doc, f"{where}: not an object")
        return
    for key in ("scenario", "tm"):
        if not isinstance(row.get(key), str) or not row[key]:
            gate.fail(doc, f"{where}: missing {key}")
    if not is_count(row.get("preemption_bound")):
        gate.fail(doc, f"{where}: preemption_bound must be a non-negative "
                       f"integer")
    for key in BOOL_FIELDS:
        if not isinstance(row.get(key), bool):
            gate.fail(doc, f"{where}: {key} missing or not a boolean")
    for key in COUNTER_FIELDS:
        if not is_count(row.get(key)):
            gate.fail(doc, f"{where}: {key} must be a non-negative integer "
                           f"({row.get(key)!r})")

    # Anything below needs the counters to be sane.
    if not all(is_count(row.get(k)) for k in COUNTER_FIELDS):
        return
    if row["executed"] < 1:
        gate.fail(doc, f"{where}: explored no schedules at all")
    if row["unique_states"] < 1 or row["unique_states"] > row["executed"]:
        gate.fail(doc, f"{where}: unique_states {row['unique_states']} "
                       f"outside [1, executed={row['executed']}]")
    if row.get("complete") is not True:
        gate.fail(doc, f"{where}: exploration did not complete")
    for key in ("hit_schedule_cap", "hit_time_budget"):
        if row.get(key) is True:
            gate.fail(doc, f"{where}: {key} — exploration was truncated")
    if row["replay_divergences"] != 0:
        gate.fail(doc, f"{where}: {row['replay_divergences']} replay "
                       f"divergence(s) — schedules were not deterministic")
    if row["checker_resource_limits"] != 0:
        gate.fail(doc, f"{where}: checker hit a resource limit "
                       f"{row['checker_resource_limits']} time(s)")
    for key in VIOLATION_FIELDS:
        if row[key] != 0:
            gate.fail(doc, f"{where}: {row[key]} {key.replace('_', ' ')} "
                           f"on {row['scenario']}/{row['tm']}")


def check_document(gate, path):
    """Validates one ptm-explore-v1 document; returns (tms, scenarios)."""
    doc = os.path.basename(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as err:
        gate.fail(doc, f"cannot read: {err}")
        return set(), set()
    except json.JSONDecodeError as err:
        gate.fail(doc, f"invalid JSON: {err}")
        return set(), set()

    if not isinstance(data, dict):
        gate.fail(doc, "top level is not an object")
        return set(), set()
    if data.get("schema") != "ptm-explore-v1":
        gate.fail(doc, f"schema is {data.get('schema')!r}, "
                       f"expected 'ptm-explore-v1'")
    results = data.get("results")
    if not isinstance(results, list) or not results:
        gate.fail(doc, "results missing or empty")
        results = []
    for index, row in enumerate(results):
        check_row(gate, doc, index, row)

    tms = {row["tm"] for row in results
           if isinstance(row, dict) and isinstance(row.get("tm"), str)}
    scenarios = {row["scenario"] for row in results
                 if isinstance(row, dict)
                 and isinstance(row.get("scenario"), str)}
    return tms, scenarios


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("summary", help="JSON from model_check --json")
    parser.add_argument("--expect-tm", action="append", default=[],
                        help="TM kind that must have a row (repeatable)")
    parser.add_argument("--expect-scenario", action="append", default=[],
                        help="scenario that must have a row (repeatable)")
    args = parser.parse_args()

    gate = Gate()
    tms, scenarios = check_document(gate, args.summary)
    doc = os.path.basename(args.summary)
    for tm in args.expect_tm:
        if tm not in tms:
            gate.fail(doc, f"expected TM kind '{tm}' has no rows")
    for scenario in args.expect_scenario:
        if scenario not in scenarios:
            gate.fail(doc, f"expected scenario '{scenario}' has no rows")

    if not gate.ok():
        for violation in gate.violations:
            print(f"check_explore_json: {violation}", file=sys.stderr)
        print(f"check_explore_json: FAILED with {len(gate.violations)} "
              f"violation(s)", file=sys.stderr)
        return 1
    print(f"check_explore_json: OK ({len(tms)} TM kinds, "
          f"{len(scenarios)} scenarios)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
