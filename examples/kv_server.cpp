//===-- examples/kv_server.cpp - The sharded KV service end to end --------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// The service layer in one program: a KvStore hash-partitioned over
/// per-shard TM instances, driven two ways —
///
///  1. synchronously: single-key get/put/cas plus an atomic cross-shard
///     multiPut observed through snapshotGet (never torn);
///  2. asynchronously: client threads pump requests through the
///     RequestExecutor's per-shard queues while a worker pool commits
///     them in batches, with a live stats reporter polling the store's
///     statsSnapshot() while the load runs (the always-on telemetry
///     path — no quiescence needed).
///
///   $ ./kv_server [tm-name] [options]      (default TM: tl2)
///
/// Demo options:
///   --stats-json        emit a `ptm-kvstats-v1` JSON stats document
///   --trace FILE        record worker transaction events and write a
///                       `ptm-trace-v1` Chrome trace_event JSON (loads
///                       in Perfetto / chrome://tracing)
///   --trace-bin FILE    also/instead dump the compact binary trace
///
/// Service modes (the networked front end, net/Net.h):
///   --serve             run the epoll server until SIGINT/SIGTERM;
///                       prints `listening on port N` once ready.
///     --port N            port to bind (default 0 = kernel-assigned)
///     --wal-dir DIR       recover + replay DIR, then log every update
///     --shards N          shard count (default 8, power of two)
///     --workers N         executor pool size (default 2)
///   --load              drive a running server with client threads
///     --port N            server port (required)
///     --clients N         client connections (default 4)
///     --ops N             operations per client (default 20000)
///     --keyspace N        key range (default 1024)
///     --pairs             correlated-pairs mode: every write is a
///                         multiPut{key->v, key+keyspace/2->v}, so the
///                         pair invariant doubles as a crash-recovery
///                         oracle for --check
///     --seed N            RNG seed (default 1)
///   --check             verify the correlated-pairs invariant over
///                       snapshotGet and exit 1 on any torn pair
///     --port N, --keyspace N as above
///
/// The crash-recovery smoke (tools/kv_crash_smoke.py) composes the three
/// modes: serve-with-WAL, load --pairs, SIGKILL mid-load, re-serve (the
/// recovery replay), check.
///
//===----------------------------------------------------------------------===//

#include "bench/Json.h"
#include "kv/Kv.h"
#include "net/Net.h"
#include "obs/Obs.h"
#include "support/Format.h"
#include "support/RawOStream.h"
#include "workload/KvWorkload.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <thread>

using namespace ptm;

namespace {

volatile std::sig_atomic_t GStopRequested = 0;

void onStopSignal(int) { GStopRequested = 1; }

/// Shared knobs of the service modes, filled by main()'s flag loop.
struct ServiceArgs {
  uint16_t Port = 0;
  const char *WalDir = nullptr;
  unsigned Shards = 8;
  unsigned Workers = 2;
  unsigned Clients = 4;
  uint64_t Ops = 20000;
  uint64_t KeySpace = 1024;
  bool Pairs = false;
  uint64_t Seed = 1;
};

/// --serve: store (+ optional WAL recovery/replay) + epoll server, until
/// a stop signal. The `listening on port N` line is the readiness
/// handshake scripts wait for.
int runServe(RawOStream &OS, TmKind Kind, const ServiceArgs &Args) {
  kv::KvConfig Cfg;
  Cfg.ShardCount = Args.Shards;
  Cfg.BucketsPerShard = 64;
  Cfg.CapacityPerShard = 4096;
  Cfg.Kind = Kind;
  Cfg.MaxThreads = Args.Workers + 1; // +1: the poll thread's sync ops.
  auto Store = kv::KvStore::create(Cfg);
  if (!Store) {
    errs() << "kv_server: invalid store configuration\n";
    return 2;
  }

  std::unique_ptr<kv::Wal> Wal;
  if (Args.WalDir) {
    kv::WalRecovery Recovered = kv::Wal::recover(Args.WalDir, Args.Shards);
    if (!Recovered.Ok) {
      errs() << "kv_server: unreadable WAL directory " << Args.WalDir
             << "\n";
      return 2;
    }
    if (Store->replayWal(Recovered.Records) != kv::KvStatus::Ok) {
      errs() << "kv_server: WAL replay exceeded store capacity\n";
      return 2;
    }
    Wal = kv::Wal::open(Args.WalDir, Args.Shards, Recovered);
    if (!Wal) {
      errs() << "kv_server: cannot open WAL files in " << Args.WalDir
             << "\n";
      return 2;
    }
    Store->attachWal(Wal.get());
    OS << "recovered " << Recovered.Records.size() << " records ("
       << Store->sampleSize() << " keys, " << Recovered.TornBytes
       << " torn bytes dropped), next lsn " << Wal->nextLsn() << "\n";
  }

  net::KvServer::Options SrvOpts;
  SrvOpts.Port = Args.Port;
  SrvOpts.Workers = Args.Workers;
  auto Server = net::KvServer::start(*Store, SrvOpts);
  if (!Server) {
    errs() << "kv_server: cannot start server (port in use?)\n";
    return 2;
  }
  OS << "listening on port " << Server->port() << "\n";
  OS.flush();

  std::signal(SIGINT, onStopSignal);
  std::signal(SIGTERM, onStopSignal);
  while (!GStopRequested)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

  Server->stop();
  obs::MetricsSnapshot Net = Server->telemetry();
  Store->attachWal(nullptr);
  OS << "shutting down: " << Net.counter("net.accepted") << " connections, "
     << Net.counter("net.requests") << " requests";
  if (Wal) {
    obs::MetricsSnapshot WalStats = Wal->telemetry();
    OS << ", " << WalStats.counter("wal.appends") << " wal appends ("
       << WalStats.counter("wal.bytes") << " bytes, "
       << WalStats.counter("wal.io_errors") << " io errors)";
  }
  OS << "\n";
  return 0;
}

/// --load: client threads hammering a running server. In --pairs mode
/// every write is an atomic correlated pair (the --check oracle); the
/// default mode is a mixed single-key get/put/cas pipeline.
int runLoad(RawOStream &OS, const ServiceArgs &Args) {
  std::atomic<uint64_t> OkOps{0}, IoErrors{0};
  std::vector<std::thread> Threads;
  Threads.reserve(Args.Clients);
  for (unsigned C = 0; C < Args.Clients; ++C) {
    Threads.emplace_back([&, C] {
      auto Client = net::KvClient::connect(Args.Port);
      if (!Client) {
        IoErrors.fetch_add(Args.Ops, std::memory_order_relaxed);
        return;
      }
      std::mt19937_64 Rng(Args.Seed * 0x9E3779B97F4A7C15ull + C);
      uint64_t Half = Args.KeySpace / 2;
      for (uint64_t I = 0; I < Args.Ops && Client->connected(); ++I) {
        bool Ok;
        if (Args.Pairs) {
          uint64_t Key = Rng() % (Half ? Half : 1);
          uint64_t Value = Rng();
          Ok = Client->multiPut({{Key, Value}, {Key + Half, Value}}) ==
               kv::KvStatus::Ok;
        } else {
          uint64_t Key = Rng() % Args.KeySpace;
          switch (Rng() % 4) {
          case 0:
            Ok = Client->put(Key, Rng()).Status == kv::KvStatus::Ok;
            break;
          case 1: {
            kv::KvStatus S =
                Client->compareAndSwap(Key, Rng() % 8, Rng()).Status;
            Ok = S != kv::KvStatus::IoError;
            break;
          }
          default:
            Ok = Client->get(Key).Status != kv::KvStatus::IoError;
            break;
          }
        }
        if (Ok)
          OkOps.fetch_add(1, std::memory_order_relaxed);
        else
          IoErrors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  OS << "load: " << OkOps.load() << " ops ok, " << IoErrors.load()
     << " failed\n";
  // A severed connection (the crash smoke kills the server mid-load) is
  // an expected outcome for a load generator, not a failure of it.
  return 0;
}

/// --check: the recovery oracle. In correlated-pairs mode every multiPut
/// wrote key and key+keyspace/2 with one value in one atomic batch, and
/// the WAL logs such a batch as ONE record — so after any crash +
/// recovery the two halves must still agree, key by key. A torn pair
/// means recovery split a batch: exit 1.
int runCheck(RawOStream &OS, const ServiceArgs &Args) {
  auto Client = net::KvClient::connect(Args.Port);
  if (!Client) {
    errs() << "kv_server: cannot connect to port " << Args.Port << "\n";
    return 2;
  }
  uint64_t Half = Args.KeySpace / 2;
  uint64_t Populated = 0;
  constexpr uint64_t kChunk = 128;
  for (uint64_t Base = 0; Base < Half; Base += kChunk) {
    uint64_t N = std::min(kChunk, Half - Base);
    std::vector<uint64_t> Keys;
    Keys.reserve(2 * N);
    for (uint64_t K = Base; K < Base + N; ++K) {
      Keys.push_back(K);
      Keys.push_back(K + Half);
    }
    std::vector<kv::KvResponse> Got;
    if (Client->snapshotGet(Keys, Got) != kv::KvStatus::Ok) {
      errs() << "kv_server: snapshotGet failed\n";
      return 2;
    }
    for (uint64_t I = 0; I < N; ++I) {
      const kv::KvResponse &Lo = Got[2 * I], &Hi = Got[2 * I + 1];
      if (Lo.Status != Hi.Status || (Lo.ok() && Lo.Value != Hi.Value)) {
        errs() << "kv_server: TORN PAIR key " << (Base + I) << ": ("
               << kv::kvStatusName(Lo.Status) << "," << Lo.Value << ") vs ("
               << kv::kvStatusName(Hi.Status) << "," << Hi.Value << ")\n";
        return 1;
      }
      if (Lo.ok())
        ++Populated;
    }
  }
  OS << "check ok: " << Half << " pairs, " << Populated << " populated\n";
  return 0;
}

/// Emits the `ptm-kvstats-v1` introspection document: live store
/// counters plus the executor's final telemetry snapshot.
void writeStatsJson(RawOStream &OS, TmKind Kind, const TmStats &Stats,
                    const KvExecutorMetrics &Metrics) {
  bench::JsonWriter W(OS);
  W.beginObject();
  W.key("schema").value("ptm-kvstats-v1");
  W.key("tm").value(tmKindName(Kind));
  W.newline();
  W.key("store").beginObject();
  W.key("commits").value(Stats.Commits);
  W.key("aborts").beginObject();
  for (unsigned C = 1; C < kNumAbortCauses; ++C)
    W.key(abortCauseName(static_cast<AbortCause>(C)))
        .value(Stats.Aborts[C]);
  W.endObject();
  W.key("abort_ratio").value(Stats.abortRatio());
  W.endObject();
  W.newline();
  W.key("executor").beginObject();
  W.key("completed").value(Metrics.Executor.counter("kv.executor.completed"));
  W.key("batches").value(Metrics.Executor.counter("kv.executor.batches"));
  W.key("mean_batch").value(Metrics.MeanBatch);
  W.key("latency_us").beginObject();
  W.key("mean").value(Metrics.MeanLatencyUs);
  W.key("p99").value(Metrics.P99Us);
  W.key("p999").value(Metrics.P999Us);
  W.endObject();
  if (const obs::HistogramSnapshot *H =
          Metrics.Executor.histogram("kv.executor.batch_size")) {
    W.key("batch_size").beginObject();
    W.key("mean").value(H->mean());
    W.key("max").value(H->MaxValue);
    W.endObject();
  }
  W.endObject();
  W.endObject();
  W.newline();
}

/// Opens \p Path and streams \p Write into it; false on I/O failure.
template <typename WriteFn> bool writeFile(const char *Path, WriteFn Write) {
  std::FILE *F = std::fopen(Path, "wb");
  if (F == nullptr)
    return false;
  {
    FileOStream OS(F);
    Write(OS);
    OS.flush();
  }
  return std::fclose(F) == 0;
}

} // namespace

int main(int Argc, char **Argv) {
  RawOStream &OS = outs();

  TmKind Kind = TmKind::TK_Tl2;
  bool StatsJson = false;
  const char *TracePath = nullptr;
  const char *TraceBinPath = nullptr;
  enum class Mode { Demo, Serve, Load, Check } M = Mode::Demo;
  ServiceArgs Args;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--stats-json") == 0) {
      StatsJson = true;
    } else if (std::strcmp(Argv[I], "--trace") == 0 && I + 1 < Argc) {
      TracePath = Argv[++I];
    } else if (std::strcmp(Argv[I], "--trace-bin") == 0 && I + 1 < Argc) {
      TraceBinPath = Argv[++I];
    } else if (std::strcmp(Argv[I], "--serve") == 0) {
      M = Mode::Serve;
    } else if (std::strcmp(Argv[I], "--load") == 0) {
      M = Mode::Load;
    } else if (std::strcmp(Argv[I], "--check") == 0) {
      M = Mode::Check;
    } else if (std::strcmp(Argv[I], "--port") == 0 && I + 1 < Argc) {
      Args.Port = static_cast<uint16_t>(std::strtoul(Argv[++I], nullptr, 10));
    } else if (std::strcmp(Argv[I], "--wal-dir") == 0 && I + 1 < Argc) {
      Args.WalDir = Argv[++I];
    } else if (std::strcmp(Argv[I], "--shards") == 0 && I + 1 < Argc) {
      Args.Shards =
          static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    } else if (std::strcmp(Argv[I], "--workers") == 0 && I + 1 < Argc) {
      Args.Workers =
          static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    } else if (std::strcmp(Argv[I], "--clients") == 0 && I + 1 < Argc) {
      Args.Clients =
          static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    } else if (std::strcmp(Argv[I], "--ops") == 0 && I + 1 < Argc) {
      Args.Ops = std::strtoull(Argv[++I], nullptr, 10);
    } else if (std::strcmp(Argv[I], "--keyspace") == 0 && I + 1 < Argc) {
      Args.KeySpace = std::strtoull(Argv[++I], nullptr, 10);
    } else if (std::strcmp(Argv[I], "--pairs") == 0) {
      Args.Pairs = true;
    } else if (std::strcmp(Argv[I], "--seed") == 0 && I + 1 < Argc) {
      Args.Seed = std::strtoull(Argv[++I], nullptr, 10);
    } else {
      auto Parsed = tmKindFromName(Argv[I]);
      if (!Parsed) {
        OS << "unknown TM or option '" << Argv[I] << "'\n";
        return 1;
      }
      Kind = *Parsed;
    }
  }

  if (M == Mode::Serve)
    return runServe(OS, Kind, Args);
  if (M == Mode::Load)
    return runLoad(OS, Args);
  if (M == Mode::Check)
    return runCheck(OS, Args);

  // 1. A store: 8 shards, each its own TM instance over a TxMap region.
  kv::KvConfig Cfg;
  Cfg.ShardCount = 8;
  Cfg.BucketsPerShard = 64;
  Cfg.CapacityPerShard = 4096;
  Cfg.Kind = Kind;
  Cfg.MaxThreads = 4;
  auto Store = kv::KvStore::create(Cfg);
  OS << "kv_server: " << tmKindName(Kind) << ", " << Store->shardCount()
     << " shards, capacity " << Cfg.CapacityPerShard << " keys/shard\n\n";

  // 2. Synchronous single-key operations (each is one shard transaction).
  //    Every operation answers in the unified KvResponse vocabulary.
  Store->put(0, /*Key=*/1001, /*Value=*/7);
  kv::KvResponse Got = Store->get(0, 1001);
  OS << "put/get: key 1001 -> " << Got.Value << " ("
     << kv::kvStatusName(Got.Status) << ")\n";
  kv::KvResponse Cas = Store->compareAndSwap(0, 1001, /*Expected=*/7,
                                             /*Desired=*/8);
  OS << "cas(7 -> 8): swapped=" << Cas.ok() << "\n";

  // 3. An atomic cross-shard batch: keys 1..4 land on different shards,
  //    yet snapshotGet always sees all four writes or none of them.
  Store->multiPut(0, {{1, 100}, {2, 200}, {3, 300}, {4, 400}});
  std::vector<kv::KvResponse> Snapshot;
  Store->snapshotGet(0, {1, 2, 3, 4}, Snapshot);
  OS << "multiPut + snapshotGet:";
  for (size_t I = 0; I < Snapshot.size(); ++I)
    OS << " key" << (I + 1) << "="
       << (Snapshot[I].ok() ? Snapshot[I].Value : 0);
  OS << "\n\n";

  // 4. The asynchronous front end: 2 clients pipeline requests into the
  //    per-shard queues, 2 workers batch-commit them. Tracing, when
  //    requested, arms the workers' rings through the executor option.
  KvExecutorConfig Load;
  Load.Clients = 2;
  Load.Workers = 2;
  Load.OpsPerClient = 20000;
  Load.MaxBatch = 16;
  Load.GetFrac = 0.8;
  Load.KeySpace = 4096;
  Load.Seed = 7;
  obs::Tracer Tracer(Load.Workers);
  if (TracePath || TraceBinPath)
    Load.Trace = &Tracer;

  // Live reporter: polls the store's statsSnapshot() while the load
  // runs — the counters are single-writer atomics, so this needs no
  // quiescence and steals no locks from the workers.
  std::atomic<bool> ReporterStop{false};
  std::thread Reporter([&] {
    for (unsigned Tick = 0;; ++Tick) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (ReporterStop.load(std::memory_order_acquire))
        return;
      TmStats Live = Store->statsSnapshot();
      errs() << "[live " << (Tick + 1) << "00ms] commits=" << Live.Commits
             << " aborts=" << Live.totalAborts() << " abort_ratio="
             << formatDouble(100.0 * Live.abortRatio(), 2) << "%\n";
      errs().flush();
    }
  });

  KvExecutorMetrics Metrics;
  RunResult R = runKvExecutorLoad(*Store, Load, &Metrics);
  ReporterStop.store(true, std::memory_order_release);
  Reporter.join();

  // A fast load can finish inside the first poll interval; emit one final
  // snapshot line so the live path is always observable.
  TmStats Final = Store->statsSnapshot();
  errs() << "[live final] commits=" << Final.Commits
         << " aborts=" << Final.totalAborts() << " abort_ratio="
         << formatDouble(100.0 * Final.abortRatio(), 2) << "%\n";
  errs().flush();

  OS << "executor load: " << Metrics.Completed << " requests in "
     << formatDouble(R.Seconds, 3) << " s ("
     << formatDouble(R.Seconds > 0 ? static_cast<double>(Metrics.Completed) /
                                         R.Seconds
                                   : 0.0,
                     0)
     << " op/s)\n";
  OS << "  mean batch " << formatDouble(Metrics.MeanBatch)
     << " requests/txn, latency mean "
     << formatDouble(Metrics.MeanLatencyUs, 1) << " us, p99 "
     << formatDouble(Metrics.P99Us, 1) << " us, p999 "
     << formatDouble(Metrics.P999Us, 1) << " us\n";
  OS << "  shard commits:";
  for (unsigned S = 0; S < Store->shardCount(); ++S)
    OS << " " << Store->shardTm(S).stats().Commits;
  TmStats Total = Store->aggregateStats();
  OS << "\n  total commits=" << Total.Commits
     << " aborts=" << Total.totalAborts() << "\n";

  if (StatsJson) {
    OS << "\n";
    writeStatsJson(OS, Kind, Total, Metrics);
  }

  if (TracePath || TraceBinPath) {
    obs::TraceDump Dump = obs::dumpTrace(Tracer);
    if (TracePath) {
      if (!writeFile(TracePath, [&](RawOStream &FileOS) {
            obs::writeChromeTraceJson(FileOS, Dump);
          })) {
        errs() << "kv_server: cannot write " << TracePath << "\n";
        return 2;
      }
      OS << "wrote " << Dump.eventCount() << " trace events to "
         << TracePath << "\n";
    }
    if (TraceBinPath) {
      std::vector<uint8_t> Bin = obs::serializeTraceBinary(Dump);
      std::FILE *F = std::fopen(TraceBinPath, "wb");
      if (F == nullptr ||
          std::fwrite(Bin.data(), 1, Bin.size(), F) != Bin.size() ||
          std::fclose(F) != 0) {
        errs() << "kv_server: cannot write " << TraceBinPath << "\n";
        return 2;
      }
      OS << "wrote " << Bin.size() << " trace bytes to " << TraceBinPath
         << "\n";
    }
  }

  OS.flush();
  return 0;
}
