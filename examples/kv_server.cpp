//===-- examples/kv_server.cpp - The sharded KV service end to end --------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// The service layer in one program: a KvStore hash-partitioned over
/// per-shard TM instances, driven two ways —
///
///  1. synchronously: single-key get/put/cas plus an atomic cross-shard
///     multiPut observed through snapshotGet (never torn);
///  2. asynchronously: client threads pump requests through the
///     RequestExecutor's per-shard queues while a worker pool commits
///     them in batches, with a live stats reporter polling the store's
///     statsSnapshot() while the load runs (the always-on telemetry
///     path — no quiescence needed).
///
///   $ ./kv_server [tm-name] [options]      (default TM: tl2)
///
/// Options:
///   --stats-json        emit a `ptm-kvstats-v1` JSON stats document
///   --trace FILE        record worker transaction events and write a
///                       `ptm-trace-v1` Chrome trace_event JSON (loads
///                       in Perfetto / chrome://tracing)
///   --trace-bin FILE    also/instead dump the compact binary trace
///
//===----------------------------------------------------------------------===//

#include "bench/Json.h"
#include "kv/Kv.h"
#include "obs/Obs.h"
#include "support/Format.h"
#include "support/RawOStream.h"
#include "workload/KvWorkload.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

using namespace ptm;

namespace {

/// Emits the `ptm-kvstats-v1` introspection document: live store
/// counters plus the executor's final telemetry snapshot.
void writeStatsJson(RawOStream &OS, TmKind Kind, const TmStats &Stats,
                    const KvExecutorMetrics &Metrics) {
  bench::JsonWriter W(OS);
  W.beginObject();
  W.key("schema").value("ptm-kvstats-v1");
  W.key("tm").value(tmKindName(Kind));
  W.newline();
  W.key("store").beginObject();
  W.key("commits").value(Stats.Commits);
  W.key("aborts").beginObject();
  for (unsigned C = 1; C < kNumAbortCauses; ++C)
    W.key(abortCauseName(static_cast<AbortCause>(C)))
        .value(Stats.Aborts[C]);
  W.endObject();
  W.key("abort_ratio").value(Stats.abortRatio());
  W.endObject();
  W.newline();
  W.key("executor").beginObject();
  W.key("completed").value(Metrics.Executor.counter("kv.executor.completed"));
  W.key("batches").value(Metrics.Executor.counter("kv.executor.batches"));
  W.key("mean_batch").value(Metrics.MeanBatch);
  W.key("latency_us").beginObject();
  W.key("mean").value(Metrics.MeanLatencyUs);
  W.key("p99").value(Metrics.P99Us);
  W.key("p999").value(Metrics.P999Us);
  W.endObject();
  if (const obs::HistogramSnapshot *H =
          Metrics.Executor.histogram("kv.executor.batch_size")) {
    W.key("batch_size").beginObject();
    W.key("mean").value(H->mean());
    W.key("max").value(H->MaxValue);
    W.endObject();
  }
  W.endObject();
  W.endObject();
  W.newline();
}

/// Opens \p Path and streams \p Write into it; false on I/O failure.
template <typename WriteFn> bool writeFile(const char *Path, WriteFn Write) {
  std::FILE *F = std::fopen(Path, "wb");
  if (F == nullptr)
    return false;
  {
    FileOStream OS(F);
    Write(OS);
    OS.flush();
  }
  return std::fclose(F) == 0;
}

} // namespace

int main(int Argc, char **Argv) {
  RawOStream &OS = outs();

  TmKind Kind = TmKind::TK_Tl2;
  bool StatsJson = false;
  const char *TracePath = nullptr;
  const char *TraceBinPath = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--stats-json") == 0) {
      StatsJson = true;
    } else if (std::strcmp(Argv[I], "--trace") == 0 && I + 1 < Argc) {
      TracePath = Argv[++I];
    } else if (std::strcmp(Argv[I], "--trace-bin") == 0 && I + 1 < Argc) {
      TraceBinPath = Argv[++I];
    } else {
      auto Parsed = tmKindFromName(Argv[I]);
      if (!Parsed) {
        OS << "unknown TM or option '" << Argv[I] << "'\n";
        return 1;
      }
      Kind = *Parsed;
    }
  }

  // 1. A store: 8 shards, each its own TM instance over a TxMap region.
  kv::KvConfig Cfg;
  Cfg.ShardCount = 8;
  Cfg.BucketsPerShard = 64;
  Cfg.CapacityPerShard = 4096;
  Cfg.Kind = Kind;
  Cfg.MaxThreads = 4;
  auto Store = kv::KvStore::create(Cfg);
  OS << "kv_server: " << tmKindName(Kind) << ", " << Store->shardCount()
     << " shards, capacity " << Cfg.CapacityPerShard << " keys/shard\n\n";

  // 2. Synchronous single-key operations (each is one shard transaction).
  Store->put(0, /*Key=*/1001, /*Value=*/7);
  uint64_t Value = 0;
  Store->get(0, 1001, Value);
  OS << "put/get: key 1001 -> " << Value << "\n";
  bool Swapped = Store->compareAndSwap(0, 1001, /*Expected=*/7,
                                       /*Desired=*/8);
  OS << "cas(7 -> 8): swapped=" << Swapped << "\n";

  // 3. An atomic cross-shard batch: keys 1..4 land on different shards,
  //    yet snapshotGet always sees all four writes or none of them.
  Store->multiPut(0, {{1, 100}, {2, 200}, {3, 300}, {4, 400}});
  std::vector<std::optional<uint64_t>> Snapshot;
  Store->snapshotGet(0, {1, 2, 3, 4}, Snapshot);
  OS << "multiPut + snapshotGet:";
  for (size_t I = 0; I < Snapshot.size(); ++I)
    OS << " key" << (I + 1) << "=" << Snapshot[I].value_or(0);
  OS << "\n\n";

  // 4. The asynchronous front end: 2 clients pipeline requests into the
  //    per-shard queues, 2 workers batch-commit them. Tracing, when
  //    requested, arms the workers' rings through the executor option.
  KvExecutorConfig Load;
  Load.Clients = 2;
  Load.Workers = 2;
  Load.OpsPerClient = 20000;
  Load.MaxBatch = 16;
  Load.GetFrac = 0.8;
  Load.KeySpace = 4096;
  Load.Seed = 7;
  obs::Tracer Tracer(Load.Workers);
  if (TracePath || TraceBinPath)
    Load.Trace = &Tracer;

  // Live reporter: polls the store's statsSnapshot() while the load
  // runs — the counters are single-writer atomics, so this needs no
  // quiescence and steals no locks from the workers.
  std::atomic<bool> ReporterStop{false};
  std::thread Reporter([&] {
    for (unsigned Tick = 0;; ++Tick) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (ReporterStop.load(std::memory_order_acquire))
        return;
      TmStats Live = Store->statsSnapshot();
      errs() << "[live " << (Tick + 1) << "00ms] commits=" << Live.Commits
             << " aborts=" << Live.totalAborts() << " abort_ratio="
             << formatDouble(100.0 * Live.abortRatio(), 2) << "%\n";
      errs().flush();
    }
  });

  KvExecutorMetrics Metrics;
  RunResult R = runKvExecutorLoad(*Store, Load, &Metrics);
  ReporterStop.store(true, std::memory_order_release);
  Reporter.join();

  // A fast load can finish inside the first poll interval; emit one final
  // snapshot line so the live path is always observable.
  TmStats Final = Store->statsSnapshot();
  errs() << "[live final] commits=" << Final.Commits
         << " aborts=" << Final.totalAborts() << " abort_ratio="
         << formatDouble(100.0 * Final.abortRatio(), 2) << "%\n";
  errs().flush();

  OS << "executor load: " << Metrics.Completed << " requests in "
     << formatDouble(R.Seconds, 3) << " s ("
     << formatDouble(R.Seconds > 0 ? static_cast<double>(Metrics.Completed) /
                                         R.Seconds
                                   : 0.0,
                     0)
     << " op/s)\n";
  OS << "  mean batch " << formatDouble(Metrics.MeanBatch)
     << " requests/txn, latency mean "
     << formatDouble(Metrics.MeanLatencyUs, 1) << " us, p99 "
     << formatDouble(Metrics.P99Us, 1) << " us, p999 "
     << formatDouble(Metrics.P999Us, 1) << " us\n";
  OS << "  shard commits:";
  for (unsigned S = 0; S < Store->shardCount(); ++S)
    OS << " " << Store->shardTm(S).stats().Commits;
  TmStats Total = Store->aggregateStats();
  OS << "\n  total commits=" << Total.Commits
     << " aborts=" << Total.totalAborts() << "\n";

  if (StatsJson) {
    OS << "\n";
    writeStatsJson(OS, Kind, Total, Metrics);
  }

  if (TracePath || TraceBinPath) {
    obs::TraceDump Dump = obs::dumpTrace(Tracer);
    if (TracePath) {
      if (!writeFile(TracePath, [&](RawOStream &FileOS) {
            obs::writeChromeTraceJson(FileOS, Dump);
          })) {
        errs() << "kv_server: cannot write " << TracePath << "\n";
        return 2;
      }
      OS << "wrote " << Dump.eventCount() << " trace events to "
         << TracePath << "\n";
    }
    if (TraceBinPath) {
      std::vector<uint8_t> Bin = obs::serializeTraceBinary(Dump);
      std::FILE *F = std::fopen(TraceBinPath, "wb");
      if (F == nullptr ||
          std::fwrite(Bin.data(), 1, Bin.size(), F) != Bin.size() ||
          std::fclose(F) != 0) {
        errs() << "kv_server: cannot write " << TraceBinPath << "\n";
        return 2;
      }
      OS << "wrote " << Bin.size() << " trace bytes to " << TraceBinPath
         << "\n";
    }
  }

  OS.flush();
  return 0;
}
