//===-- examples/kv_server.cpp - The sharded KV service end to end --------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// The service layer in one program: a KvStore hash-partitioned over
/// per-shard TM instances, driven two ways —
///
///  1. synchronously: single-key get/put/cas plus an atomic cross-shard
///     multiPut observed through snapshotGet (never torn);
///  2. asynchronously: client threads pump requests through the
///     RequestExecutor's per-shard queues while a worker pool commits
///     them in batches.
///
///   $ ./kv_server [tm-name]      (default: tl2)
///
//===----------------------------------------------------------------------===//

#include "kv/Kv.h"
#include "support/Format.h"
#include "support/RawOStream.h"
#include "workload/KvWorkload.h"

#include <cstring>

using namespace ptm;

int main(int Argc, char **Argv) {
  RawOStream &OS = outs();

  TmKind Kind = TmKind::TK_Tl2;
  if (Argc > 1) {
    auto Parsed = tmKindFromName(Argv[1]);
    if (!Parsed) {
      OS << "unknown TM '" << Argv[1] << "'\n";
      return 1;
    }
    Kind = *Parsed;
  }

  // 1. A store: 8 shards, each its own TM instance over a TxMap region.
  kv::KvConfig Cfg;
  Cfg.ShardCount = 8;
  Cfg.BucketsPerShard = 64;
  Cfg.CapacityPerShard = 4096;
  Cfg.Kind = Kind;
  Cfg.MaxThreads = 4;
  auto Store = kv::KvStore::create(Cfg);
  OS << "kv_server: " << tmKindName(Kind) << ", " << Store->shardCount()
     << " shards, capacity " << Cfg.CapacityPerShard << " keys/shard\n\n";

  // 2. Synchronous single-key operations (each is one shard transaction).
  Store->put(0, /*Key=*/1001, /*Value=*/7);
  uint64_t Value = 0;
  Store->get(0, 1001, Value);
  OS << "put/get: key 1001 -> " << Value << "\n";
  bool Swapped = Store->compareAndSwap(0, 1001, /*Expected=*/7,
                                       /*Desired=*/8);
  OS << "cas(7 -> 8): swapped=" << Swapped << "\n";

  // 3. An atomic cross-shard batch: keys 1..4 land on different shards,
  //    yet snapshotGet always sees all four writes or none of them.
  Store->multiPut(0, {{1, 100}, {2, 200}, {3, 300}, {4, 400}});
  std::vector<std::optional<uint64_t>> Snapshot;
  Store->snapshotGet(0, {1, 2, 3, 4}, Snapshot);
  OS << "multiPut + snapshotGet:";
  for (size_t I = 0; I < Snapshot.size(); ++I)
    OS << " key" << (I + 1) << "=" << Snapshot[I].value_or(0);
  OS << "\n\n";

  // 4. The asynchronous front end: 2 clients pipeline requests into the
  //    per-shard queues, 2 workers batch-commit them.
  KvExecutorConfig Load;
  Load.Clients = 2;
  Load.Workers = 2;
  Load.OpsPerClient = 20000;
  Load.MaxBatch = 16;
  Load.GetFrac = 0.8;
  Load.KeySpace = 4096;
  Load.Seed = 7;
  KvExecutorMetrics Metrics;
  RunResult R = runKvExecutorLoad(*Store, Load, &Metrics);

  OS << "executor load: " << Metrics.Completed << " requests in "
     << formatDouble(R.Seconds, 3) << " s ("
     << formatDouble(R.Seconds > 0 ? static_cast<double>(Metrics.Completed) /
                                         R.Seconds
                                   : 0.0,
                     0)
     << " op/s)\n";
  OS << "  mean batch " << formatDouble(Metrics.MeanBatch)
     << " requests/txn, mean latency "
     << formatDouble(Metrics.MeanLatencyUs, 1) << " us\n";
  OS << "  shard commits:";
  for (unsigned S = 0; S < Store->shardCount(); ++S)
    OS << " " << Store->shardTm(S).stats().Commits;
  TmStats Total = Store->aggregateStats();
  OS << "\n  total commits=" << Total.Commits
     << " aborts=" << Total.totalAborts() << "\n";
  OS.flush();
  return 0;
}
