//===-- examples/concurrent_set.cpp - A transactional sorted set ----------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// The compositionality pitch of transactional memory (the paper's
/// introduction), now as a library client: ds::TxSet is a sorted
/// linked-list set written exactly like its sequential version inside
/// transactions, with removed nodes recycled through the transactional
/// free-list allocator (ds::TxAlloc). That reclamation is the point of
/// this demo's sizing: four threads churn 32'000 operations over a
/// 128-key space inside a region of only 132 nodes — the original
/// leak-forever version needed one node per insert ever performed.
///
///   $ ./concurrent_set
///
//===----------------------------------------------------------------------===//

#include "ds/Ds.h"
#include "stm/Stm.h"
#include "support/Random.h"
#include "support/RawOStream.h"

#include <atomic>
#include <set>
#include <thread>
#include <vector>

using namespace ptm;

int main() {
  RawOStream &OS = outs();
  constexpr unsigned Threads = 4;
  constexpr uint64_t KeySpace = 128;
  constexpr int OpsPerThread = 8000;
  // Capacity: the live set never exceeds the key space, plus one
  // in-flight insert per thread — churn runs in bounded space.
  constexpr uint64_t Capacity = KeySpace + Threads;

  auto M = createTm(TmKind::TK_Tl2, ds::TxSet::objectsNeeded(Capacity),
                    Threads);
  ds::TxSet Set(*M, /*RegionBase=*/0, Capacity);

  std::atomic<int64_t> NetInserted{0};
  std::atomic<uint64_t> OutOfMemoryFailures{0};
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      Xoshiro256 Rng(T * 31337 + 7);
      for (int I = 0; I < OpsPerThread; ++I) {
        uint64_t Key = Rng.nextBounded(KeySpace);
        double Dice = Rng.nextDouble();
        if (Dice < 0.4) {
          bool OutOfMemory = false;
          if (Set.insert(T, Key, &OutOfMemory))
            NetInserted.fetch_add(1);
          if (OutOfMemory)
            OutOfMemoryFailures.fetch_add(1);
        } else if (Dice < 0.7) {
          if (Set.remove(T, Key))
            NetInserted.fetch_sub(1);
        } else {
          (void)Set.contains(T, Key);
        }
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();

  // Invariants: strictly sorted, duplicate-free, size equals the net
  // number of successful inserts, and — the reclamation story — the
  // allocator's live-node count equals the set size while everything it
  // ever handed out fits the 132-node region.
  std::vector<uint64_t> Keys = Set.sampleKeys();
  bool Sorted = true;
  for (size_t I = 1; I < Keys.size(); ++I)
    if (Keys[I - 1] >= Keys[I])
      Sorted = false;
  std::set<uint64_t> Unique(Keys.begin(), Keys.end());
  uint64_t Live = Set.sampleLiveNodes();
  uint64_t Ever = Set.allocator().sampleEverAllocated();

  TmStats S = M->stats();
  OS << "final size: " << uint64_t{Keys.size()}
     << " (net inserts: " << int64_t{NetInserted.load()} << ")\n";
  OS << "strictly sorted: " << Sorted
     << ", duplicates: " << uint64_t{Keys.size() - Unique.size()} << '\n';
  OS << "live nodes: " << Live << ", ever allocated: " << Ever << " of "
     << Capacity << " (out-of-memory failures: "
     << OutOfMemoryFailures.load() << ")\n";
  OS << "commits: " << S.Commits << ", aborts: " << S.totalAborts() << '\n';
  bool Ok = Sorted && Keys.size() == Unique.size() &&
            static_cast<int64_t>(Keys.size()) == NetInserted.load() &&
            Live == Keys.size() && Ever <= Capacity &&
            OutOfMemoryFailures.load() == 0;
  OS << (Ok ? "OK: set invariants hold, churn ran in bounded space\n"
            : "FAILURE: set invariants violated\n");
  OS.flush();
  return Ok ? 0 : 1;
}
