//===-- examples/concurrent_set.cpp - A transactional sorted set ----------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// The compositionality pitch of transactional memory (the paper's
/// introduction): a sorted linked-list set written exactly like its
/// sequential version — traverse, link, unlink — wrapped in transactions.
/// No hand-over-hand locking, no marked pointers; the TM provides
/// atomicity and the retry loop provides progress.
///
/// Layout inside the TM's object array:
///   obj 0       head "next" field (node index or kNil)
///   obj 1       bump allocator (next free node index)
///   obj 2+2i    key of node i
///   obj 3+2i    next of node i
/// Removed nodes are leaked (a bump allocator suffices for the demo; a
/// free list would be a transaction like any other).
///
///   $ ./concurrent_set
///
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"
#include "support/Random.h"
#include "support/RawOStream.h"

#include <atomic>
#include <set>
#include <thread>
#include <vector>

using namespace ptm;

namespace {

constexpr uint64_t kNil = ~uint64_t{0};

/// A sorted-set abstraction over a Tm. All operations are transactions;
/// each returns false only on voluntary semantic failure (duplicate
/// insert, missing remove), never on contention (that is retried away).
class TxSortedSet {
public:
  TxSortedSet(Tm &Memory) : M(Memory) {
    M.init(kHead, kNil);
    M.init(kAlloc, 0);
  }

  bool insert(ThreadId Tid, uint64_t Key) {
    bool Inserted = false;
    atomically(M, Tid, [&](TxRef &Tx) {
      Inserted = false;
      auto [PrevNextObj, CurIdx] = locate(Tx, Key);
      if (Tx.failed())
        return;
      if (CurIdx != kNil && Tx.readOr(keyObj(CurIdx), 0) == Key)
        return; // Already present.
      // Allocate and link a fresh node.
      uint64_t NewIdx = Tx.readOr(kAlloc, 0);
      if (Tx.failed() || !hasRoom(NewIdx))
        return;
      Tx.write(kAlloc, NewIdx + 1);
      Tx.write(keyObj(NewIdx), Key);
      Tx.write(nextObj(NewIdx), CurIdx);
      Tx.write(PrevNextObj, NewIdx);
      Inserted = true;
    });
    return Inserted;
  }

  bool remove(ThreadId Tid, uint64_t Key) {
    bool Removed = false;
    atomically(M, Tid, [&](TxRef &Tx) {
      Removed = false;
      auto [PrevNextObj, CurIdx] = locate(Tx, Key);
      if (Tx.failed() || CurIdx == kNil)
        return;
      if (Tx.readOr(keyObj(CurIdx), 0) != Key)
        return;
      uint64_t Next = Tx.readOr(nextObj(CurIdx), kNil);
      Tx.write(PrevNextObj, Next); // Unlink; the node is leaked.
      Removed = true;
    });
    return Removed;
  }

  bool contains(ThreadId Tid, uint64_t Key) {
    bool Found = false;
    atomically(M, Tid, [&](TxRef &Tx) {
      auto [PrevNextObj, CurIdx] = locate(Tx, Key);
      (void)PrevNextObj;
      Found = !Tx.failed() && CurIdx != kNil &&
              Tx.readOr(keyObj(CurIdx), 0) == Key;
    });
    return Found;
  }

  /// Quiescent walk: returns the keys in list order (no transaction —
  /// call only when no other thread is active).
  std::vector<uint64_t> snapshot() const {
    std::vector<uint64_t> Keys;
    uint64_t Idx = M.sample(kHead);
    while (Idx != kNil) {
      Keys.push_back(M.sample(keyObj(Idx)));
      Idx = M.sample(nextObj(Idx));
    }
    return Keys;
  }

private:
  static constexpr ObjectId kHead = 0;
  static constexpr ObjectId kAlloc = 1;

  static ObjectId keyObj(uint64_t Idx) {
    return static_cast<ObjectId>(2 + 2 * Idx);
  }
  static ObjectId nextObj(uint64_t Idx) {
    return static_cast<ObjectId>(3 + 2 * Idx);
  }
  bool hasRoom(uint64_t Idx) const {
    return 3 + 2 * Idx < M.numObjects();
  }

  /// Returns {object holding the incoming "next" pointer, index of the
  /// first node with key >= Key (or kNil)} — the sequential list walk.
  std::pair<ObjectId, uint64_t> locate(TxRef &Tx, uint64_t Key) {
    ObjectId PrevNextObj = kHead;
    uint64_t Cur = Tx.readOr(kHead, kNil);
    while (!Tx.failed() && Cur != kNil) {
      uint64_t CurKey = Tx.readOr(keyObj(Cur), 0);
      if (CurKey >= Key)
        break;
      PrevNextObj = nextObj(Cur);
      Cur = Tx.readOr(PrevNextObj, kNil);
    }
    return {PrevNextObj, Cur};
  }

  Tm &M;
};

} // namespace

int main() {
  RawOStream &OS = outs();
  constexpr unsigned Threads = 4;
  constexpr unsigned KeySpace = 128;
  constexpr int OpsPerThread = 8000;

  // Capacity: every insert allocates a node, including re-inserts.
  auto M = createTm(TmKind::TK_Tl2, 2 + 2 * (Threads * OpsPerThread + 8),
                    Threads);
  TxSortedSet Set(*M);

  std::atomic<int64_t> NetInserted{0};
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      Xoshiro256 Rng(T * 31337 + 7);
      for (int I = 0; I < OpsPerThread; ++I) {
        uint64_t Key = Rng.nextBounded(KeySpace);
        double Dice = Rng.nextDouble();
        if (Dice < 0.4) {
          if (Set.insert(T, Key))
            NetInserted.fetch_add(1);
        } else if (Dice < 0.7) {
          if (Set.remove(T, Key))
            NetInserted.fetch_sub(1);
        } else {
          (void)Set.contains(T, Key);
        }
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();

  // Verify: the list is strictly sorted and its size equals the net
  // number of successful inserts.
  std::vector<uint64_t> Keys = Set.snapshot();
  bool Sorted = true;
  for (size_t I = 1; I < Keys.size(); ++I)
    if (Keys[I - 1] >= Keys[I])
      Sorted = false;
  std::set<uint64_t> Unique(Keys.begin(), Keys.end());

  TmStats S = M->stats();
  OS << "final size: " << uint64_t{Keys.size()}
     << " (net inserts: " << int64_t{NetInserted.load()} << ")\n";
  OS << "strictly sorted: " << Sorted
     << ", duplicates: " << uint64_t{Keys.size() - Unique.size()} << '\n';
  OS << "commits: " << S.Commits << ", aborts: " << S.totalAborts() << '\n';
  bool Ok = Sorted && Keys.size() == Unique.size() &&
            static_cast<int64_t>(Keys.size()) == NetInserted.load();
  OS << (Ok ? "OK: set invariants hold\n"
            : "FAILURE: set invariants violated\n");
  OS.flush();
  return Ok ? 0 : 1;
}
