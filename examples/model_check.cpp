//===-- examples/model_check.cpp - Systematic schedule exploration --------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// Model-checking quickstart: enumerate every schedule (up to a
/// preemption bound) of three tiny scripted scenarios on every TM kind,
/// checking opacity, final-state serializability and each TM's DESIGN.md
/// property row on each one.
///
///   $ ./model_check                 # human-readable summary
///   $ ./model_check --json out.json # also write a ptm-explore-v1 file
///
/// Exits nonzero if any schedule violated a property or an enumeration
/// did not complete — the summary numbers are correctness metrics, not
/// performance samples (see BENCHMARKS.md).
///
//===----------------------------------------------------------------------===//

#include "explore/ExploreJson.h"
#include "explore/ScheduleExplorer.h"
#include "explore/Script.h"
#include "support/RawOStream.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace ptm;

namespace {

ThreadScript singleTxn(std::vector<ScriptOp> Ops, bool ReadOnly = false) {
  ThreadScript Th;
  TxScript Tx;
  Tx.ReadOnly = ReadOnly;
  Tx.Ops = std::move(Ops);
  Th.Txns.push_back(std::move(Tx));
  return Th;
}

std::vector<Scenario> buildScenarios() {
  std::vector<Scenario> Out;

  Scenario Inc;
  Inc.Name = "increment-increment";
  Inc.NumObjects = 1;
  Inc.Threads.push_back(singleTxn({opIncrement(0)}));
  Inc.Threads.push_back(singleTxn({opIncrement(0)}));
  Out.push_back(std::move(Inc));

  Scenario Fractured;
  Fractured.Name = "fractured-read";
  Fractured.NumObjects = 2;
  Fractured.Threads.push_back(singleTxn({opRead(0), opRead(1)}, true));
  Fractured.Threads.push_back(singleTxn({opWrite(0, 1), opWrite(1, 1)}));
  Out.push_back(std::move(Fractured));

  Scenario Stale;
  Stale.Name = "stale-read";
  Stale.NumObjects = 2;
  Stale.Threads.push_back(singleTxn({opRead(0), opRead(1)}));
  Stale.Threads.push_back(singleTxn({opWrite(1, 42)}));
  Out.push_back(std::move(Stale));

  return Out;
}

void pad(RawOStream &OS, const std::string &S, size_t Width) {
  OS << S;
  for (size_t I = S.size(); I < Width; ++I)
    OS << ' ';
}

} // namespace

int main(int Argc, char **Argv) {
  const char *JsonPath = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>]\n", Argv[0]);
      return 2;
    }
  }

  RawOStream &OS = outs();
  ExploreOptions Opts;
  Opts.PreemptionBound = 2;

  std::vector<ExploreSummaryEntry> Entries;
  bool AllOk = true;

  OS << "scenario             tm         schedules  pruned  states  "
        "violations\n";
  for (const Scenario &Scn : buildScenarios()) {
    for (TmKind Kind : allTmKinds()) {
      ScheduleExplorer Ex(Scn, Kind, Opts);
      ExploreStats Stats = Ex.explore();

      ExploreSummaryEntry E;
      E.Scenario = Scn.Name;
      E.Kind = Kind;
      E.PreemptionBound = Opts.PreemptionBound;
      E.SleepSets = Opts.SleepSets;
      E.Stats = Stats;
      Entries.push_back(E);

      bool Ok = Stats.Complete && Stats.totalViolations() == 0 &&
                Stats.CheckerResourceLimits == 0;
      AllOk = AllOk && Ok;

      pad(OS, Scn.Name, 21);
      pad(OS, tmKindName(Kind), 11);
      pad(OS, std::to_string(Stats.Executed), 11);
      pad(OS, std::to_string(Stats.PrunedSleep + Stats.PrunedBound), 8);
      pad(OS, std::to_string(Stats.UniqueStates), 8);
      OS << std::to_string(Stats.totalViolations());
      if (!Ok)
        OS << "  <-- FAILED";
      if (!Stats.FirstViolation.empty())
        OS << "  first: " << Stats.FirstViolation;
      OS << '\n';
    }
  }

  if (JsonPath != nullptr) {
    std::FILE *F = std::fopen(JsonPath, "w");
    if (F == nullptr) {
      std::fprintf(stderr, "model_check: cannot open %s\n", JsonPath);
      return 2;
    }
    {
      FileOStream JsonOS(F);
      writeExploreSummary(JsonOS, Entries);
      JsonOS.flush();
    }
    std::fclose(F);
    OS << "wrote " << JsonPath << '\n';
  }

  OS << (AllOk ? "all explorations clean\n" : "VIOLATIONS FOUND\n");
  return AllOk ? 0 : 1;
}
