//===-- examples/bank_audit.cpp - Opacity in action -----------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// The classic motivation for opaque TMs: tellers move money between
/// accounts while an auditor repeatedly snapshots *all* accounts. Opacity
/// guarantees every audit sees a moment-in-time state, so the total is
/// always exact — on every one of the five TM algorithms.
///
///   $ ./bank_audit [tm-name]     (default: runs all five)
///
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"
#include "support/Format.h"
#include "support/Random.h"
#include "support/RawOStream.h"

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

using namespace ptm;

namespace {

constexpr unsigned kAccounts = 24;
constexpr uint64_t kInitialBalance = 1000;
constexpr unsigned kTellers = 3;
constexpr int kTransfersPerTeller = 20000;

void runScenario(TmKind Kind, RawOStream &OS) {
  auto M = createTm(Kind, kAccounts, kTellers + 1);
  for (ObjectId A = 0; A < kAccounts; ++A)
    M->init(A, kInitialBalance);

  std::atomic<bool> Done{0};
  std::atomic<uint64_t> Audits{0};
  std::atomic<uint64_t> TornAudits{0};

  // The auditor: thread 0, read-only snapshots of every account.
  std::thread Auditor([&] {
    while (!Done.load(std::memory_order_relaxed)) {
      uint64_t Total = 0;
      bool Ok = atomically(
          *M, 0,
          [&](TxRef &Tx) {
            Total = 0;
            for (ObjectId A = 0; A < kAccounts; ++A)
              Total += Tx.readOr(A, 0);
          },
          /*MaxAttempts=*/100);
      if (!Ok)
        continue;
      Audits.fetch_add(1);
      if (Total != kAccounts * kInitialBalance)
        TornAudits.fetch_add(1);
    }
  });

  // Tellers: threads 1..kTellers, random transfers.
  std::vector<std::thread> Tellers;
  for (unsigned T = 1; T <= kTellers; ++T) {
    Tellers.emplace_back([&, T] {
      Xoshiro256 Rng(T * 7919);
      for (int I = 0; I < kTransfersPerTeller; ++I) {
        ObjectId From = static_cast<ObjectId>(Rng.nextBounded(kAccounts));
        ObjectId To = static_cast<ObjectId>(Rng.nextBounded(kAccounts - 1));
        if (To >= From)
          ++To;
        uint64_t Amount = Rng.nextBounded(50);
        atomically(*M, T, [&](TxRef &Tx) {
          uint64_t F = Tx.readOr(From, 0);
          uint64_t D = Tx.readOr(To, 0);
          uint64_t Moved = F < Amount ? F : Amount;
          Tx.write(From, F - Moved);
          Tx.write(To, D + Moved);
        });
      }
    });
  }
  for (std::thread &W : Tellers)
    W.join();
  Done.store(true);
  Auditor.join();

  uint64_t Final = 0;
  for (ObjectId A = 0; A < kAccounts; ++A)
    Final += M->sample(A);

  TmStats S = M->stats();
  OS << tmKindName(Kind) << ": audits=" << Audits.load()
     << " torn=" << TornAudits.load() << " final-total=" << Final
     << " (expected " << uint64_t{kAccounts} * kInitialBalance << ")"
     << " commits=" << S.Commits << " aborts=" << S.totalAborts() << '\n';
}

} // namespace

int main(int Argc, char **Argv) {
  RawOStream &OS = outs();
  OS << "bank_audit: " << kTellers << " tellers transfer among " << kAccounts
     << " accounts while an auditor snapshots the total\n\n";

  for (TmKind Kind : allTmKinds()) {
    if (Argc > 1 && std::strcmp(Argv[1], tmKindName(Kind)) != 0)
      continue;
    runScenario(Kind, OS);
  }
  OS << "\n'torn' must be 0 everywhere: that is opacity.\n";
  OS.flush();
  return 0;
}
