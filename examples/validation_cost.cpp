//===-- examples/validation_cost.cpp - Watch Theorem 3 happen -------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// A narrated, single-run demonstration of the paper's core result: the
/// step counter watches one read-only transaction execute on the
/// weak-DAP invisible-read TM (orec-incr) and on TL2, printing the cost
/// of every t-read. The first grows linearly per read (quadratic total) —
/// incremental validation, unavoidable per Theorem 3(1); the second is
/// flat thanks to the global clock TL2 trades its disjoint-access
/// parallelism for.
///
///   $ ./validation_cost
///
//===----------------------------------------------------------------------===//

#include "runtime/Instrumentation.h"
#include "stm/Stm.h"
#include "support/Format.h"
#include "support/RawOStream.h"

using namespace ptm;

static void narrate(TmKind Kind, unsigned M, RawOStream &OS) {
  auto Tm = createTm(Kind, M, 1);
  Instrumentation Instr(0);
  ScopedInstrumentation Scope(Instr);

  OS << tmKindName(Kind) << ", read-only transaction over " << M
     << " t-objects:\n";
  Tm->txBegin(0);
  uint64_t Total = 0;
  for (ObjectId Obj = 0; Obj < M; ++Obj) {
    uint64_t V;
    Instr.beginOp();
    (void)Tm->txRead(0, Obj, V);
    OpStats S = Instr.endOp();
    Total += S.Steps;
    if (Obj < 8 || Obj + 1 == M || (Obj & (Obj - 1)) == 0) {
      OS << "  read #" << padLeft(formatInt(uint64_t{Obj} + 1), 3) << ": "
         << padLeft(formatInt(S.Steps), 4) << " steps ("
         << formatInt(S.DistinctObjects) << " distinct base objects)\n";
    }
  }
  (void)Tm->txCommit(0);
  OS << "  total: " << Total << " steps\n\n";
}

int main() {
  RawOStream &OS = outs();
  OS << "Theorem 3(1): invisible reads + weak DAP => incremental\n"
     << "validation. Each t-read of the subject TM revalidates the whole\n"
     << "read set; TL2's global clock (which breaks weak DAP) does not.\n\n";
  narrate(TmKind::TK_OrecIncremental, 32, OS);
  narrate(TmKind::TK_Tl2, 32, OS);
  OS << "The paper proves the first shape is *inherent*: no opaque,\n"
     << "weak-DAP, invisible-read, progressive TM can do better than\n"
     << "Omega(m^2) total steps for an m-read transaction.\n";
  OS.flush();
  return 0;
}
