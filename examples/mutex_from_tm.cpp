//===-- examples/mutex_from_tm.cpp - Algorithm 1, live --------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// The paper's Section 5 construction, runnable: build a mutual-exclusion
/// lock L(M) from a strongly progressive TM M that manages a single
/// t-object, protect a plain (non-atomic!) counter with it, and measure
/// the RMRs per passage in the cache-coherent model. The inner TM's
/// commit statistics show the queue discipline at work: one committed
/// fetch-and-store transaction per passage, plus the contention retries.
///
///   $ ./mutex_from_tm
///
//===----------------------------------------------------------------------===//

#include "mutex/Mutex.h"
#include "mutex/TmMutex.h"
#include "runtime/Instrumentation.h"
#include "runtime/RmrSimulator.h"
#include "stm/Stm.h"
#include "support/Format.h"
#include "support/RawOStream.h"

#include <atomic>
#include <thread>
#include <vector>

using namespace ptm;

int main() {
  RawOStream &OS = outs();
  constexpr unsigned Threads = 4;
  constexpr uint64_t Passages = 5000;

  OS << "Algorithm 1: mutual exclusion from a strongly progressive TM\n\n";

  for (TmKind Kind : allTmKinds()) {
    auto Inner = createTm(Kind, /*NumObjects=*/1, Threads);
    Tm *InnerRaw = Inner.get();
    TmMutex Lock(std::move(Inner), Threads);

    RmrSimulator Sim(MemoryModelKind::MM_CcWriteBack, Threads);
    std::atomic<uint64_t> TotalRmrs{0};

    // The protected state is a deliberately non-atomic variable: only the
    // mutual exclusion of L(M) keeps it consistent.
    volatile uint64_t PlainCounter = 0;

    std::vector<std::thread> Workers;
    for (unsigned T = 0; T < Threads; ++T) {
      Workers.emplace_back([&, T] {
        Instrumentation Instr(T, &Sim);
        ScopedInstrumentation Scope(Instr);
        for (uint64_t P = 0; P < Passages; ++P) {
          Lock.enter(T);
          PlainCounter = PlainCounter + 1;
          Lock.exit(T);
        }
        TotalRmrs.fetch_add(Instr.totalRmrs());
      });
    }
    for (std::thread &W : Workers)
      W.join();

    TmStats S = InnerRaw->stats();
    uint64_t Expected = uint64_t{Threads} * Passages;
    OS << Lock.name() << ":\n";
    OS << "  counter " << uint64_t{PlainCounter} << "/" << Expected
       << (PlainCounter == Expected ? "  (mutual exclusion held)\n"
                                    : "  (RACE DETECTED!)\n");
    OS << "  inner TM: commits=" << S.Commits
       << " aborts=" << S.totalAborts() << " (func() retries under"
       << " contention; strong progressiveness bounds each round)\n";
    OS << "  rmrs/passage (cc-wb): "
       << formatDouble(static_cast<double>(TotalRmrs.load()) /
                           static_cast<double>(Expected),
                       2)
       << "\n\n";
  }
  OS << "Theorem 7: the handshake around the TM costs O(1) RMRs; the\n"
     << "inner TM on one t-object is where Theorem 9's \xCE\xA9(n log n)\n"
     << "lives for CAS-based TMs.\n";
  OS.flush();
  return 0;
}
