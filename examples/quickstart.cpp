//===-- examples/quickstart.cpp - First steps with the library ------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// Quickstart: create a TM, run transactions with `atomically`, use typed
/// TVars, and inspect commit/abort statistics.
///
///   $ ./quickstart
///
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"
#include "support/Format.h"
#include "support/RawOStream.h"

#include <thread>
#include <vector>

using namespace ptm;

int main() {
  RawOStream &OS = outs();

  // 1. Create a TM: TL2 algorithm, 16 t-objects, up to 4 threads.
  auto M = createTm(TmKind::TK_Tl2, /*NumObjects=*/16, /*MaxThreads=*/4);

  // 2. Bind typed variables to t-objects (64-bit cells underneath).
  TVar<int64_t> Alice(*M, 0);
  TVar<int64_t> Bob(*M, 1);
  Alice.init(100);
  Bob.init(100);

  // 3. Run an atomic transfer. `atomically` retries on contention aborts
  //    and returns true once a commit succeeds.
  bool Ok = atomically(*M, /*Tid=*/0, [&](TxRef &Tx) {
    int64_t A = Alice.readOr(Tx, 0);
    int64_t B = Bob.readOr(Tx, 0);
    Alice.write(Tx, A - 30);
    Bob.write(Tx, B + 30);
  });
  OS << "transfer committed: " << Ok << ", alice=" << Alice.sample()
     << " bob=" << Bob.sample() << '\n';

  // 4. Concurrency: four threads hammer a shared counter; the TM makes
  //    the read-modify-write atomic, so no increment is lost.
  TVar<uint64_t> Counter(*M, 2);
  Counter.init(0);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < 4; ++T) {
    Workers.emplace_back([&, T] {
      for (int I = 0; I < 10000; ++I) {
        atomically(*M, T, [&](TxRef &Tx) {
          uint64_t C = Counter.readOr(Tx, 0);
          Counter.write(Tx, C + 1);
        });
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  OS << "counter after 4x10000 concurrent increments: " << Counter.sample()
     << '\n';

  // 5. Statistics: commits and aborts by cause.
  TmStats S = M->stats();
  OS << "commits=" << S.Commits << " aborts=" << S.totalAborts()
     << " (abort ratio " << formatDouble(100.0 * S.abortRatio(), 2)
     << "%)\n";

  // 6. A voluntary abort leaves no trace.
  atomically(*M, 0, [&](TxRef &Tx) {
    Counter.write(Tx, 0);
    Tx.userAbort(); // Change of heart: nothing is published.
  });
  OS << "counter after aborted reset: " << Counter.sample() << '\n';
  OS.flush();
  return 0;
}
