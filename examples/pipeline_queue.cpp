//===-- examples/pipeline_queue.cpp - A transactional bounded FIFO --------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// Producer/consumer pipeline over ds::TxQueue, the library's bounded
/// transactional ring buffer. The queue is written exactly like
/// sequential code — head index, tail index, slot array — and a
/// *voluntary abort* expresses "queue full / empty, try again":
/// tryEnqueue/tryDequeue return false without publishing anything, and
/// the caller retries. No condition variables, no reserved sentinel
/// slots, no two-lock tricks.
///
/// The whole pipeline — tagged items, FIFO-order checking, loss/duplicate
/// accounting — is the runDsQueuePipeline workload driver; this example
/// is reduced to configuration plus verdict.
///
///   $ ./pipeline_queue
///
//===----------------------------------------------------------------------===//

#include "ds/Ds.h"
#include "stm/Stm.h"
#include "support/RawOStream.h"
#include "workload/DsWorkload.h"

using namespace ptm;

int main() {
  RawOStream &OS = outs();
  constexpr unsigned kProducers = 2;
  constexpr unsigned kConsumers = 2;
  constexpr uint64_t kCapacity = 8;
  constexpr uint64_t kItemsPerProducer = 20000;
  constexpr uint64_t kTotal = kProducers * kItemsPerProducer;

  auto M = createTm(TmKind::TK_Tl2, ds::TxQueue::objectsNeeded(kCapacity),
                    kProducers + kConsumers);
  ds::TxQueue Queue(*M, /*RegionBase=*/0, kCapacity);

  uint64_t OrderViolations = 0;
  RunResult R = runDsQueuePipeline(Queue, kProducers, kConsumers,
                                   kItemsPerProducer, &OrderViolations);

  TmStats S = M->stats();
  uint64_t FullEmptyRetries =
      S.Aborts[static_cast<unsigned>(AbortCause::AC_User)];
  OS << "pipeline: " << R.ValueChecksum << "/" << kTotal
     << " items through a " << kCapacity << "-slot transactional ring\n";
  OS << "per-producer order violations: " << OrderViolations << '\n';
  OS << "commits=" << S.Commits
     << " contention-aborts=" << S.totalAborts() - FullEmptyRetries
     << " full/empty-retries=" << FullEmptyRetries << '\n';
  bool Ok = R.ValueChecksum == kTotal && OrderViolations == 0 &&
            Queue.sampleSize() == 0;
  OS << (Ok ? "OK: no loss, no duplication, FIFO preserved\n"
            : "FAILURE: queue semantics violated\n");
  OS.flush();
  return Ok ? 0 : 1;
}
