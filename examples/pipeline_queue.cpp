//===-- examples/pipeline_queue.cpp - A transactional bounded FIFO --------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// Producer/consumer pipeline over a transactional bounded ring buffer.
/// The queue is written exactly like sequential code — head index, tail
/// index, slot array — and a *voluntary abort* expresses "queue full /
/// empty, try again": `atomically` returns false without publishing
/// anything, and the caller retries. No condition variables, no reserved
/// sentinel slots, no two-lock tricks.
///
/// Each item carries (producer, sequence); consumers check that every
/// producer's items arrive in order (FIFO per producer through a single
/// queue is total order preservation) and that nothing is lost or
/// duplicated.
///
///   $ ./pipeline_queue
///
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"
#include "support/RawOStream.h"

#include <atomic>
#include <thread>
#include <vector>

using namespace ptm;

namespace {

/// Bounded FIFO of 64-bit items inside a Tm.
/// Layout: obj 0 = head (dequeue index), obj 1 = tail (enqueue index),
/// obj 2+i = slot i. Indices grow monotonically; slot = index % capacity.
class TxQueue {
public:
  TxQueue(Tm &Memory, unsigned Slots) : M(Memory), Capacity(Slots) {
    M.init(0, 0);
    M.init(1, 0);
  }

  /// True once the item is enqueued; false if the queue was full.
  bool tryEnqueue(ThreadId Tid, uint64_t Item) {
    return atomically(M, Tid, [&](TxRef &Tx) {
      uint64_t Head = Tx.readOr(0, 0);
      uint64_t Tail = Tx.readOr(1, 0);
      if (Tail - Head >= Capacity) {
        Tx.userAbort(); // Full: abandon without side effects.
        return;
      }
      Tx.write(slotObj(Tail), Item);
      Tx.write(1, Tail + 1);
    });
  }

  /// True once an item was dequeued into \p Item; false if empty.
  bool tryDequeue(ThreadId Tid, uint64_t &Item) {
    uint64_t Out = 0;
    bool Ok = atomically(M, Tid, [&](TxRef &Tx) {
      uint64_t Head = Tx.readOr(0, 0);
      uint64_t Tail = Tx.readOr(1, 0);
      if (Head == Tail) {
        Tx.userAbort(); // Empty.
        return;
      }
      Out = Tx.readOr(slotObj(Head), 0);
      Tx.write(0, Head + 1);
    });
    if (Ok)
      Item = Out;
    return Ok;
  }

private:
  ObjectId slotObj(uint64_t Index) const {
    return static_cast<ObjectId>(2 + Index % Capacity);
  }

  Tm &M;
  unsigned Capacity;
};

constexpr unsigned kProducers = 2;
constexpr unsigned kConsumers = 2;
constexpr unsigned kCapacity = 8;
constexpr uint64_t kItemsPerProducer = 20000;

uint64_t encodeItem(unsigned Producer, uint64_t Seq) {
  return (static_cast<uint64_t>(Producer) << 48) | Seq;
}

} // namespace

int main() {
  RawOStream &OS = outs();
  auto M = createTm(TmKind::TK_Tl2, 2 + kCapacity, kProducers + kConsumers);
  TxQueue Queue(*M, kCapacity);

  std::vector<std::thread> Threads;

  // Producers: threads 0..kProducers-1.
  for (unsigned P = 0; P < kProducers; ++P) {
    Threads.emplace_back([&, P] {
      for (uint64_t Seq = 0; Seq < kItemsPerProducer; ++Seq)
        while (!Queue.tryEnqueue(P, encodeItem(P, Seq)))
          std::this_thread::yield();
    });
  }

  // Consumers: split the total evenly; track per-producer last-seen
  // sequence to verify FIFO, and count items.
  std::atomic<uint64_t> Consumed{0};
  std::atomic<uint64_t> OrderViolations{0};
  const uint64_t Total = kProducers * kItemsPerProducer;

  for (unsigned C = 0; C < kConsumers; ++C) {
    Threads.emplace_back([&, C] {
      ThreadId Tid = kProducers + C;
      // Per-consumer view of each producer's last sequence: a single
      // queue dequeued by several consumers preserves per-producer order
      // *per consumer* only if dequeues are atomic — which is what the
      // TM provides and this checks.
      std::vector<int64_t> LastSeen(kProducers, -1);
      uint64_t Item;
      while (Consumed.load(std::memory_order_relaxed) < Total) {
        if (!Queue.tryDequeue(Tid, Item)) {
          std::this_thread::yield();
          continue;
        }
        Consumed.fetch_add(1);
        unsigned P = static_cast<unsigned>(Item >> 48);
        int64_t Seq = static_cast<int64_t>(Item & 0xffffffffffffULL);
        if (Seq <= LastSeen[P])
          OrderViolations.fetch_add(1);
        LastSeen[P] = Seq;
      }
    });
  }

  for (std::thread &T : Threads)
    T.join();

  TmStats S = M->stats();
  OS << "pipeline: " << Consumed.load() << "/" << Total << " items through a "
     << kCapacity << "-slot transactional ring\n";
  OS << "per-producer order violations: " << OrderViolations.load() << '\n';
  OS << "commits=" << S.Commits << " contention-aborts="
     << S.totalAborts() - S.Aborts[static_cast<unsigned>(AbortCause::AC_User)]
     << " full/empty-retries="
     << S.Aborts[static_cast<unsigned>(AbortCause::AC_User)] << '\n';
  bool Ok = Consumed.load() == Total && OrderViolations.load() == 0;
  OS << (Ok ? "OK: no loss, no duplication, FIFO preserved\n"
            : "FAILURE: queue semantics violated\n");
  OS.flush();
  return Ok ? 0 : 1;
}
