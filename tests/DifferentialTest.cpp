//===-- tests/DifferentialTest.cpp - Differential testing vs a model ------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// Randomized sequential differential testing: every TM is driven with a
/// long random schedule of begin/read/write/commit/abort and compared
/// op-for-op against a trivial reference implementation (a map plus an
/// overlay). In sequential executions a TM must never abort
/// involuntarily and every read must match the model exactly — any
/// divergence in read-own-write handling, abort rollback or commit
/// publication shows up immediately.
///
/// Parameterized over (TmKind × seed) as a property-style sweep.
///
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <map>
#include <tuple>

using namespace ptm;

namespace {

/// The reference: committed state + transaction overlay.
class ModelTm {
public:
  void begin() { Overlay.clear(); }

  uint64_t read(ObjectId Obj) const {
    if (auto It = Overlay.find(Obj); It != Overlay.end())
      return It->second;
    if (auto It = Committed.find(Obj); It != Committed.end())
      return It->second;
    return 0;
  }

  void write(ObjectId Obj, uint64_t Value) { Overlay[Obj] = Value; }

  void commit() {
    for (const auto &[Obj, Value] : Overlay)
      Committed[Obj] = Value;
    Overlay.clear();
  }

  void abort() { Overlay.clear(); }

  uint64_t committedValue(ObjectId Obj) const {
    auto It = Committed.find(Obj);
    return It == Committed.end() ? 0 : It->second;
  }

private:
  std::map<ObjectId, uint64_t> Committed;
  std::map<ObjectId, uint64_t> Overlay;
};

using Param = std::tuple<TmKind, uint64_t>;

class DifferentialTest : public ::testing::TestWithParam<Param> {};

std::string paramName(const ::testing::TestParamInfo<Param> &Info) {
  std::string Name = tmKindName(std::get<0>(Info.param));
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name + "_seed" + std::to_string(std::get<1>(Info.param));
}

} // namespace

TEST_P(DifferentialTest, MatchesModelOnRandomSchedules) {
  auto [Kind, Seed] = GetParam();
  constexpr unsigned NumObjects = 12;
  constexpr int NumOps = 4000;

  auto M = createTm(Kind, NumObjects, 2);
  ModelTm Model;
  Xoshiro256 Rng(Seed);

  bool Active = false;
  int OpsThisTxn = 0;
  for (int I = 0; I < NumOps; ++I) {
    if (!Active) {
      M->txBegin(0);
      Model.begin();
      Active = true;
      OpsThisTxn = 0;
      continue;
    }
    ObjectId Obj = static_cast<ObjectId>(Rng.nextBounded(NumObjects));
    double Dice = Rng.nextDouble();
    // Bias toward reads/writes; occasionally finish the transaction.
    if (Dice < 0.45 || OpsThisTxn < 1) {
      uint64_t Got = 1;
      ASSERT_TRUE(M->txRead(0, Obj, Got))
          << "sequential read aborted at op " << I;
      ASSERT_EQ(Got, Model.read(Obj)) << "read mismatch at op " << I
                                      << " obj " << Obj;
      ++OpsThisTxn;
    } else if (Dice < 0.85) {
      uint64_t Value = Rng.next() % 1000;
      ASSERT_TRUE(M->txWrite(0, Obj, Value))
          << "sequential write aborted at op " << I;
      Model.write(Obj, Value);
      ++OpsThisTxn;
    } else if (Dice < 0.95) {
      ASSERT_TRUE(M->txCommit(0)) << "sequential commit failed at op " << I;
      Model.commit();
      Active = false;
    } else {
      M->txAbort(0);
      Model.abort();
      Active = false;
    }

    // Cross-check committed state while quiescent.
    if (!Active && (I % 97) == 0) {
      for (ObjectId O = 0; O < NumObjects; ++O)
        ASSERT_EQ(M->sample(O), Model.committedValue(O))
            << "committed state diverged at op " << I << " obj " << O;
    }
  }
  if (Active) {
    ASSERT_TRUE(M->txCommit(0));
    Model.commit();
  }
  for (ObjectId O = 0; O < NumObjects; ++O)
    EXPECT_EQ(M->sample(O), Model.committedValue(O)) << "final state, obj "
                                                     << O;
  EXPECT_EQ(M->stats().Aborts[static_cast<unsigned>(
                AbortCause::AC_ReadValidation)],
            0u)
      << "sequential executions must never fail validation";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DifferentialTest,
    ::testing::Combine(::testing::ValuesIn(allTmKinds()),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    paramName);
