//===-- tests/TxSetsTest.cpp - Transaction-local metadata tests -----------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// The stm/TxSets.h containers: unit tests around the linear-scan /
/// hash-index threshold, O(1)-clear generation reuse, and a randomized
/// differential sweep pitting the indexed WriteSet against the previous
/// linear-scan implementation (reproduced here as the reference model).
///
//===----------------------------------------------------------------------===//

#include "stm/TxSets.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <vector>

using namespace ptm;

namespace {

/// The pre-index WriteSet (verbatim semantics: ordered log, linear
/// last-writer-wins lookup) as the differential reference.
class LinearWriteSet {
public:
  bool lookup(ObjectId Obj, uint64_t &Value) const {
    for (auto It = Entries.rbegin(), End = Entries.rend(); It != End; ++It) {
      if (It->Obj == Obj) {
        Value = It->Value;
        return true;
      }
    }
    return false;
  }

  void insertOrUpdate(ObjectId Obj, uint64_t Value) {
    for (auto &Entry : Entries) {
      if (Entry.Obj == Obj) {
        Entry.Value = Value;
        return;
      }
    }
    Entries.push_back({Obj, Value});
  }

  size_t size() const { return Entries.size(); }
  void clear() { Entries.clear(); }

  const std::vector<WriteEntry> &entries() const { return Entries; }

private:
  std::vector<WriteEntry> Entries;
};

} // namespace

TEST(WriteSet, LastWriterWinsAcrossTheIndexThreshold) {
  WriteSet WS;
  // Stay linear, then cross the threshold, updating an early object both
  // before and after the index activates.
  for (ObjectId Obj = 0; Obj < 40; ++Obj) {
    WS.insertOrUpdate(Obj, Obj * 10);
    WS.insertOrUpdate(2, 1000 + Obj); // Repeated update of one object.
  }
  EXPECT_EQ(WS.size(), 40u);
  uint64_t V = 0;
  ASSERT_TRUE(WS.lookup(2, V));
  EXPECT_EQ(V, 1000u + 39);
  ASSERT_TRUE(WS.lookup(39, V));
  EXPECT_EQ(V, 390u);
  EXPECT_FALSE(WS.lookup(40, V));
}

TEST(WriteSet, IterationPreservesFirstWriteOrder) {
  WriteSet WS;
  for (ObjectId Obj : {7u, 3u, 9u, 1u})
    WS.insertOrUpdate(Obj, Obj);
  WS.insertOrUpdate(3, 33); // Update must not move the entry.
  std::vector<ObjectId> Order;
  for (const WriteEntry &W : WS)
    Order.push_back(W.Obj);
  EXPECT_EQ(Order, (std::vector<ObjectId>{7, 3, 9, 1}));
}

TEST(WriteSet, ClearIsReusableAfterLargeTransactions) {
  // The generation-stamp trick: after clear(), stale index slots from the
  // previous transaction must be invisible even though they are not
  // zeroed. Use object ids that recur across rounds to maximize stale
  // hits, with sizes oscillating around the threshold.
  WriteSet WS;
  for (int Round = 0; Round < 50; ++Round) {
    unsigned Size = (Round % 2) ? 200 : 3;
    for (ObjectId Obj = 0; Obj < Size; ++Obj)
      WS.insertOrUpdate(Obj, Round * 1000 + Obj);
    EXPECT_EQ(WS.size(), Size);
    uint64_t V = 0;
    for (ObjectId Obj = 0; Obj < Size; ++Obj) {
      ASSERT_TRUE(WS.lookup(Obj, V)) << "round " << Round << " obj " << Obj;
      EXPECT_EQ(V, Round * 1000u + Obj);
    }
    EXPECT_FALSE(WS.lookup(Size, V))
        << "stale slot from a previous round leaked through clear()";
    WS.clear();
    EXPECT_TRUE(WS.empty());
  }
}

TEST(WriteSet, DifferentialAgainstLinearReference) {
  // Randomized lookup/insert sequences over key ranges chosen to exercise
  // both the linear regime and the indexed regime, plus clears.
  for (uint64_t Seed : {1u, 2u, 3u, 4u}) {
    Xoshiro256 Rng(Seed * 7919);
    WriteSet Indexed;
    LinearWriteSet Linear;
    const unsigned KeySpace = (Seed % 2) ? 12 : 300;
    for (int I = 0; I < 20000; ++I) {
      ObjectId Obj = static_cast<ObjectId>(Rng.nextBounded(KeySpace));
      double Dice = Rng.nextDouble();
      if (Dice < 0.45) {
        uint64_t Value = Rng.next();
        Indexed.insertOrUpdate(Obj, Value);
        Linear.insertOrUpdate(Obj, Value);
      } else if (Dice < 0.99) {
        uint64_t Vi = 0, Vl = 0;
        bool Hi = Indexed.lookup(Obj, Vi);
        bool Hl = Linear.lookup(Obj, Vl);
        ASSERT_EQ(Hi, Hl) << "seed " << Seed << " op " << I << " obj " << Obj;
        if (Hl) {
          ASSERT_EQ(Vi, Vl) << "seed " << Seed << " op " << I;
        }
      } else {
        Indexed.clear();
        Linear.clear();
      }
      ASSERT_EQ(Indexed.size(), Linear.size());
    }
    // Final sweep: logs must agree entry-for-entry (order included).
    std::vector<WriteEntry> Got(Indexed.begin(), Indexed.end());
    ASSERT_EQ(Got.size(), Linear.entries().size());
    for (size_t I = 0; I < Got.size(); ++I) {
      EXPECT_EQ(Got[I].Obj, Linear.entries()[I].Obj);
      EXPECT_EQ(Got[I].Value, Linear.entries()[I].Value);
    }
  }
}

TEST(ReadSetTest, DedupsAndFindsAcrossTheThreshold) {
  ReadSet<uint64_t> RS;
  for (ObjectId Obj = 0; Obj < 100; ++Obj) {
    EXPECT_FALSE(RS.contains(Obj));
    RS.insert(Obj, Obj + 500);
    EXPECT_TRUE(RS.contains(Obj));
  }
  EXPECT_EQ(RS.size(), 100u);
  for (ObjectId Obj = 0; Obj < 100; ++Obj) {
    const auto *E = RS.find(Obj);
    ASSERT_NE(E, nullptr) << "obj " << Obj;
    EXPECT_EQ(E->Payload, Obj + 500);
  }
  EXPECT_EQ(RS.find(100), nullptr);
  EXPECT_EQ(RS.find(~0u - 1), nullptr);
}

TEST(ReadSetTest, PayloadIsMutableThroughFind) {
  // NOrec-style usage: validate() updates the logged value in place.
  ReadSet<uint64_t> RS;
  for (ObjectId Obj = 0; Obj < 32; ++Obj)
    RS.insert(Obj, 0);
  auto *E17 = RS.find(17);
  ASSERT_NE(E17, nullptr);
  E17->Payload = 99;
  EXPECT_EQ(E17->Payload, 99u);
  const auto *E16 = RS.find(16);
  ASSERT_NE(E16, nullptr);
  EXPECT_EQ(E16->Payload, 0u);
}

TEST(ReadSetTest, IterationIsFirstReadOrderAndIndexable) {
  ReadSet<uint64_t> RS;
  const std::vector<ObjectId> Objs = {42, 7, 13, 99, 0};
  for (size_t I = 0; I < Objs.size(); ++I)
    RS.insert(Objs[I], I);
  size_t I = 0;
  for (const auto &E : RS) {
    EXPECT_EQ(E.Obj, Objs[I]);
    EXPECT_EQ(E.Payload, I);
    ++I;
  }
  // Reverse positional walk (the undo-log pattern).
  for (size_t Pos = RS.size(); Pos != 0; --Pos)
    EXPECT_EQ(RS[Pos - 1].Obj, Objs[Pos - 1]);
}

TEST(ReadSetTest, ClearGenerationsDoNotLeakMembership) {
  ReadSet<uint64_t> RS;
  for (int Round = 0; Round < 30; ++Round) {
    for (ObjectId Obj = 0; Obj < 64; ++Obj)
      RS.insert(Obj * 3, Round); // Sparse ids stress probe sequences.
    EXPECT_TRUE(RS.contains(63 * 3));
    RS.clear();
    EXPECT_FALSE(RS.contains(63 * 3))
        << "membership leaked across clear() in round " << Round;
    EXPECT_EQ(RS.find(0), nullptr);
  }
}

TEST(ReadSetTest, RandomizedMembershipMatchesReference) {
  Xoshiro256 Rng(0xDECAF);
  ReadSet<uint64_t> RS;
  std::vector<bool> Ref(4096, false);
  for (int I = 0; I < 30000; ++I) {
    ObjectId Obj = static_cast<ObjectId>(Rng.nextBounded(4096));
    if (Rng.nextBool(0.5)) {
      if (!Ref[Obj]) {
        RS.insert(Obj, Obj);
        Ref[Obj] = true;
      }
    } else {
      ASSERT_EQ(RS.contains(Obj), static_cast<bool>(Ref[Obj]))
          << "op " << I << " obj " << Obj;
    }
  }
  size_t Expected = 0;
  for (bool B : Ref)
    Expected += B;
  EXPECT_EQ(RS.size(), Expected);
}
