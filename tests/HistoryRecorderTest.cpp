//===-- tests/HistoryRecorderTest.cpp - RecordingTm unit tests ------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "history/RecordingTm.h"

#include "stm/Stm.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace ptm;

namespace {
std::unique_ptr<RecordingTm> makeRecorder() {
  return std::make_unique<RecordingTm>(createTm(TmKind::TK_Tl2, 8, 4));
}
} // namespace

TEST(RecordingTm, TicketsAreMonotonicPerTransaction) {
  auto M = makeRecorder();
  M->txBegin(0);
  uint64_t V;
  ASSERT_TRUE(M->txRead(0, 0, V));
  ASSERT_TRUE(M->txWrite(0, 1, 5));
  ASSERT_TRUE(M->txCommit(0));
  History H = M->takeHistory();
  ASSERT_EQ(H.Txns.size(), 1u);
  EXPECT_LT(H.Txns[0].FirstTicket, H.Txns[0].LastTicket);
}

TEST(RecordingTm, SequentialTransactionsAreRealTimeOrdered) {
  auto M = makeRecorder();
  for (int I = 0; I < 3; ++I) {
    M->txBegin(0);
    ASSERT_TRUE(M->txWrite(0, 0, I));
    ASSERT_TRUE(M->txCommit(0));
  }
  History H = M->takeHistory();
  ASSERT_EQ(H.Txns.size(), 3u);
  EXPECT_TRUE(H.Txns[0].precedes(H.Txns[1]));
  EXPECT_TRUE(H.Txns[1].precedes(H.Txns[2]));
  EXPECT_FALSE(H.Txns[2].precedes(H.Txns[0]));
}

TEST(RecordingTm, VoluntaryAbortIsRecordedAsAborted) {
  auto M = makeRecorder();
  M->txBegin(0);
  ASSERT_TRUE(M->txWrite(0, 0, 9));
  M->txAbort(0);
  History H = M->takeHistory();
  ASSERT_EQ(H.Txns.size(), 1u);
  EXPECT_FALSE(H.Txns[0].committed());
  ASSERT_EQ(H.Txns[0].Ops.size(), 1u);
  EXPECT_EQ(H.Txns[0].Ops[0].Kind, TOpKind::TO_Write);
}

TEST(RecordingTm, FailedOperationsAreNotRecordedAsOps) {
  // A read that returns A_k returns no value, so legality constrains
  // nothing: the recorder must not add an op for it.
  auto M = std::make_unique<RecordingTm>(createTm(TmKind::TK_Tlrw, 4, 2));
  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 7)); // Thread 1 write-locks object 0.

  M->txBegin(0);
  uint64_t V;
  EXPECT_FALSE(M->txRead(0, 0, V));
  ASSERT_TRUE(M->txCommit(1));

  History H = M->takeHistory();
  ASSERT_EQ(H.Txns.size(), 2u);
  const TxnRecord *Aborted = nullptr;
  for (const TxnRecord &T : H.Txns)
    if (!T.committed())
      Aborted = &T;
  ASSERT_NE(Aborted, nullptr);
  EXPECT_TRUE(Aborted->Ops.empty())
      << "the failed read must leave no legality obligation";
}

TEST(RecordingTm, ReadOnlyClassification) {
  auto M = makeRecorder();
  M->txBegin(0);
  uint64_t V;
  ASSERT_TRUE(M->txRead(0, 0, V));
  ASSERT_TRUE(M->txCommit(0));
  M->txBegin(0);
  ASSERT_TRUE(M->txWrite(0, 0, 1));
  ASSERT_TRUE(M->txCommit(0));
  History H = M->takeHistory();
  ASSERT_EQ(H.Txns.size(), 2u);
  EXPECT_TRUE(H.Txns[0].readOnly());
  EXPECT_FALSE(H.Txns[1].readOnly());
}

TEST(RecordingTm, TakeHistoryMergesThreadsSortedByStart) {
  auto M = makeRecorder();
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < 4; ++T) {
    Workers.emplace_back([&, T] {
      for (int I = 0; I < 5; ++I) {
        M->txBegin(T);
        uint64_t V;
        if (M->txRead(T, T, V) && M->txWrite(T, T, V + 1))
          (void)M->txCommit(T);
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();

  History H = M->takeHistory();
  EXPECT_EQ(H.Txns.size(), 20u);
  for (size_t I = 1; I < H.Txns.size(); ++I)
    EXPECT_LE(H.Txns[I - 1].FirstTicket, H.Txns[I].FirstTicket);

  // takeHistory drains: a second call returns an empty history.
  EXPECT_TRUE(M->takeHistory().Txns.empty());
}

TEST(RecordingTm, ForwardsStatsAndSamples) {
  auto M = makeRecorder();
  M->txBegin(2);
  ASSERT_TRUE(M->txWrite(2, 3, 77));
  ASSERT_TRUE(M->txCommit(2));
  EXPECT_EQ(M->sample(3), 77u);
  EXPECT_EQ(M->stats().Commits, 1u);
  EXPECT_EQ(M->kind(), TmKind::TK_Tl2);
  EXPECT_EQ(M->numObjects(), 8u);
  EXPECT_EQ(M->maxThreads(), 4u);
  M->resetStats();
  EXPECT_EQ(M->stats().Commits, 0u);
}
