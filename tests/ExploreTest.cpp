//===-- tests/ExploreTest.cpp - Systematic schedule explorer tests ---------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// Exhaustive (preemption-bounded) schedule exploration of small scripted
/// scenarios across every TM kind, with per-schedule opacity, final-state
/// serializability and DESIGN.md property-row checks; witness tests that
/// promote the historically bug-revealing StmInterleavedTest schedules
/// into provably-reached executions; and guards that the preemption bound,
/// sleep sets and state-hash dedup actually cap the state space without
/// losing coverage.
///
//===----------------------------------------------------------------------===//

#include "explore/ExploreJson.h"
#include "explore/ExploringInterleaver.h"
#include "explore/ScheduleExplorer.h"
#include "explore/Script.h"
#include "history/Checker.h"
#include "stm/Tm.h"
#include "support/RawOStream.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

using namespace ptm;

namespace {

std::string paramName(const testing::TestParamInfo<TmKind> &Info) {
  std::string Name = tmKindName(Info.param);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

ThreadScript singleTxn(std::vector<ScriptOp> Ops, bool ReadOnly = false) {
  ThreadScript Th;
  TxScript Tx;
  Tx.ReadOnly = ReadOnly;
  Tx.Ops = std::move(Ops);
  Th.Txns.push_back(std::move(Tx));
  return Th;
}

/// Two blind increments of the same counter: the classic lost-update
/// scenario. In every schedule the final value must equal the number of
/// committed increments — anything else is a serializability violation.
Scenario incrementScenario() {
  Scenario S;
  S.Name = "increment-increment";
  S.NumObjects = 1;
  S.Threads.push_back(singleTxn({opIncrement(0)}));
  S.Threads.push_back(singleTxn({opIncrement(0)}));
  return S;
}

/// A read-only scanner races a transaction that updates both objects:
/// the fractured-read shape. The scanner must never commit a torn pair,
/// and the final state is (0,0) or (1,1), never mixed.
Scenario fracturedScenario(bool ReaderIsReadOnly) {
  Scenario S;
  S.Name = "fractured-read";
  S.NumObjects = 2;
  S.Threads.push_back(singleTxn({opRead(0), opRead(1)}, ReaderIsReadOnly));
  S.Threads.push_back(singleTxn({opWrite(0, 1), opWrite(1, 1)}));
  return S;
}

/// Two transactions on disjoint objects. Every progressive TM (and the
/// serial glock) must commit both in every schedule; only TML may abort
/// a conflict-free transaction.
Scenario disjointScenario() {
  Scenario S;
  S.Name = "disjoint-commit";
  S.NumObjects = 4;
  S.Threads.push_back(singleTxn({opRead(0), opWrite(2, 7)}));
  S.Threads.push_back(singleTxn({opRead(1), opWrite(3, 8)}));
  return S;
}

/// The StmInterleavedTest "spurious abort" scenario: a reader of objects
/// {0,1} races a writer of object 1 only. TL2 aborts the reader whenever
/// the writer's commit lands between the two reads (timestamp too new);
/// orec-ts extends its timestamp instead and commits on every schedule.
Scenario staleReadScenario() {
  Scenario S;
  S.Name = "stale-read";
  S.NumObjects = 2;
  S.Threads.push_back(singleTxn({opRead(0), opRead(1)}));
  S.Threads.push_back(singleTxn({opWrite(1, 42)}));
  return S;
}

/// The StmInterleavedTest mv history-truncation scenario: a read-only
/// snapshot pins version v0 of object 0 while an updater commits four
/// times. With a depth-4 version ring the fourth commit must abort with
/// AC_HistoryFull on schedules where the snapshot is still live — and
/// the read-only transaction itself must never abort on any schedule.
Scenario mvTruncationScenario() {
  Scenario S;
  S.Name = "mv-truncation";
  S.NumObjects = 2;
  S.Threads.push_back(singleTxn({opRead(0), opRead(0)}, /*ReadOnly=*/true));
  ThreadScript Updater;
  for (uint64_t V : {101u, 102u, 103u, 999u}) {
    TxScript Tx;
    Tx.Ops = {opWrite(0, V)};
    Updater.Txns.push_back(std::move(Tx));
  }
  S.Threads.push_back(std::move(Updater));
  return S;
}

/// Three threads hammering one counter: deliberately wide, used to show
/// the preemption bound caps the explored tree far below the brute-force
/// interleaving count.
Scenario wideScenario() {
  Scenario S;
  S.Name = "wide-increments";
  S.NumObjects = 1;
  for (int T = 0; T < 3; ++T)
    S.Threads.push_back(singleTxn({opIncrement(0)}));
  return S;
}

unsigned committedCount(const RunResult &R) {
  unsigned N = 0;
  for (const std::vector<TxnResult> &Thread : R.Outcomes)
    for (const TxnResult &Txn : Thread)
      N += Txn.Committed ? 1 : 0;
  return N;
}

/// The per-schedule assertions every exhaustive test applies: the real TM
/// produced an opaque history, a serializable final state, and kept its
/// DESIGN.md property row.
void expectScheduleCorrect(const RunResult &R) {
  EXPECT_EQ(R.Opacity, CheckResult::CR_Ok)
      << "non-opaque schedule: " << formatTrace(*R.Trace);
  EXPECT_EQ(R.FinalStateSerializability, CheckResult::CR_Ok)
      << "non-serializable final state: " << formatTrace(*R.Trace);
  EXPECT_TRUE(R.PropertyViolation.empty())
      << R.PropertyViolation << " on " << formatTrace(*R.Trace);
}

void expectCleanStats(const ExploreStats &Stats) {
  EXPECT_TRUE(Stats.Complete) << "enumeration did not finish within budget";
  EXPECT_EQ(Stats.ReplayDivergences, 0u)
      << "a replayed prefix was not reproduced exactly";
  EXPECT_EQ(Stats.totalViolations(), 0u) << Stats.FirstViolation;
  EXPECT_EQ(Stats.CheckerResourceLimits, 0u);
  EXPECT_FALSE(Stats.HitScheduleCap);
  EXPECT_FALSE(Stats.HitTimeBudget);
}

class ExploreAllKinds : public testing::TestWithParam<TmKind> {};

} // namespace

INSTANTIATE_TEST_SUITE_P(AllKinds, ExploreAllKinds,
                         testing::ValuesIn(allTmKinds()), paramName);

//===----------------------------------------------------------------------===//
// Exhaustive scenarios across every TM kind
//===----------------------------------------------------------------------===//

TEST_P(ExploreAllKinds, IncrementScenarioExhaustive) {
  ExploreOptions Opts;
  Opts.PreemptionBound = 2;
  ScheduleExplorer Ex(incrementScenario(), GetParam(), Opts);
  uint64_t Runs = 0;
  ExploreStats Stats = Ex.explore([&](const RunResult &R) {
    ++Runs;
    expectScheduleCorrect(R);
    ASSERT_EQ(R.FinalValues.size(), 1u);
    // Lost updates are visible directly: each committed increment must
    // raise the counter by exactly one.
    EXPECT_EQ(R.FinalValues[0], committedCount(R))
        << "lost update on " << formatTrace(*R.Trace);
  });
  expectCleanStats(Stats);
  EXPECT_EQ(Stats.Executed, Runs);
  EXPECT_GT(Stats.Executed, 1u) << "no alternative schedule was explored";
  EXPECT_GE(Stats.UniqueStates, 1u);
  EXPECT_GT(Stats.MaxDepth, 0u);
}

TEST_P(ExploreAllKinds, FracturedReadScenarioExhaustive) {
  ExploreOptions Opts;
  Opts.PreemptionBound = 2;
  // ReadOnly hint on the scanner: exercises the mv snapshot path and the
  // read-only fast paths of the other kinds.
  ScheduleExplorer Ex(fracturedScenario(/*ReaderIsReadOnly=*/true),
                      GetParam(), Opts);
  ExploreStats Stats = Ex.explore([&](const RunResult &R) {
    expectScheduleCorrect(R);
    ASSERT_EQ(R.FinalValues.size(), 2u);
    // The writer updates both objects in one transaction; a mixed final
    // state would be a torn (non-atomic) commit.
    EXPECT_EQ(R.FinalValues[0], R.FinalValues[1])
        << "torn final state on " << formatTrace(*R.Trace);
  });
  expectCleanStats(Stats);
  EXPECT_GT(Stats.Executed, 1u);
}

TEST_P(ExploreAllKinds, DisjointScenarioExhaustive) {
  ExploreOptions Opts;
  Opts.PreemptionBound = 2;
  const TmKind Kind = GetParam();
  ScheduleExplorer Ex(disjointScenario(), Kind, Opts);
  ExploreStats Stats = Ex.explore([&](const RunResult &R) {
    expectScheduleCorrect(R);
    // Progressiveness, observable: a transaction may be forcibly aborted
    // only on conflict, and this scenario has none. TML is the one
    // deliberately non-progressive kind (its readers abort on any
    // concurrent commit).
    if (Kind != TmKind::TK_Tml) {
      EXPECT_TRUE(R.Outcomes[0][0].Committed && R.Outcomes[1][0].Committed)
          << "conflict-free abort on " << formatTrace(*R.Trace);
      ASSERT_EQ(R.FinalValues.size(), 4u);
      EXPECT_EQ(R.FinalValues[2], 7u);
      EXPECT_EQ(R.FinalValues[3], 8u);
    }
  });
  expectCleanStats(Stats);
  EXPECT_GT(Stats.Executed, 1u);
}

//===----------------------------------------------------------------------===//
// Witness schedules: the historically bug-revealing interleavings are
// actually reached by the enumeration (not just possible in principle).
//===----------------------------------------------------------------------===//

namespace {
bool readerSpuriouslyAborted(const RunResult &R) {
  const TxnResult &Reader = R.Outcomes[0][0];
  return !Reader.Committed && Reader.Cause == AbortCause::AC_ReadValidation;
}

/// The stale-read-extension signature: the reader began before the
/// writer's commit, still observed the written value 42, and committed.
/// A fixed-timestamp TM (TL2) cannot produce this — it aborts instead —
/// while orec-ts reaches it by extending the read timestamp.
bool staleReadExtendedAndCommitted(const RunResult &R) {
  const TxnRecord *Reader = nullptr, *Writer = nullptr;
  for (const TxnRecord &T : R.Hist.Txns)
    (T.Tid == 0 ? Reader : Writer) = &T;
  if (!Reader || !Writer || !Reader->committed() || !Writer->committed())
    return false;
  bool ReadNewValue = false;
  for (const TOp &Op : Reader->Ops)
    ReadNewValue |=
        Op.Kind == TOpKind::TO_Read && Op.Obj == 1 && Op.Value == 42;
  // BeginTicket, not FirstTicket: the invocation stamp can precede the
  // reader's first scheduled step by an arbitrary host-load stall, which
  // would let a reader that logically ran entirely after the writer
  // masquerade as an extension (and flip the TL2 impossibility check).
  return ReadNewValue && Reader->BeginTicket < Writer->LastTicket;
}
} // namespace

TEST(ExploreWitness, Tl2SpuriousAbortScheduleIsReached) {
  // TL2's fixed read timestamp aborts the reader when the disjoint
  // writer's commit lands between its two reads. The exhaustive run must
  // hit that exact schedule (StmInterleavedTest scripted it by hand;
  // here it falls out of the enumeration).
  ExploreOptions Opts;
  Opts.PreemptionBound = 2;
  ScheduleExplorer Ex(staleReadScenario(), TmKind::TK_Tl2, Opts);
  uint64_t Extensions = 0;
  ExploreStats Stats = Ex.explore(
      [&](const RunResult &R) {
        expectScheduleCorrect(R);
        // The extension signature is impossible for TL2: a reader whose
        // timestamp predates the commit can never return the new value.
        Extensions += staleReadExtendedAndCommitted(R) ? 1 : 0;
      },
      readerSpuriouslyAborted);
  expectCleanStats(Stats);
  EXPECT_GT(Stats.WitnessMatches, 0u)
      << "the spurious-abort schedule was never reached";
  EXPECT_EQ(Extensions, 0u);
}

TEST(ExploreWitness, OrecTsExtensionScheduleIsReached) {
  // Same scenario on orec-ts: there are schedules where the reader began
  // before the writer's commit, read 42 anyway, and still committed —
  // the timestamp extension at work, which TL2 can never do (see the
  // assertion in Tl2SpuriousAbortScheduleIsReached). Note the explorer
  // also finds schedules where even orec-ts must abort the reader: a
  // preemption *inside* the read protocol (between the value read and
  // the orec recheck) straddling the writer's commit leaves an in-flight
  // read that cannot be validated; opacity still holds on those.
  ExploreOptions Opts;
  Opts.PreemptionBound = 2;
  ScheduleExplorer Ex(staleReadScenario(), TmKind::TK_OrecTs, Opts);
  ExploreStats Stats = Ex.explore(
      [](const RunResult &R) {
        expectScheduleCorrect(R);
        // The writer has no reads: nothing can force it to abort.
        EXPECT_TRUE(R.Outcomes[1][0].Committed)
            << "orec-ts writer aborted on " << formatTrace(*R.Trace);
      },
      staleReadExtendedAndCommitted);
  expectCleanStats(Stats);
  EXPECT_GT(Stats.WitnessMatches, 0u)
      << "the timestamp-extension schedule was never reached";
}

TEST(ExploreWitness, OrecTsFailedExtensionScheduleIsReached) {
  // When the writer updates BOTH objects the extension must fail (a
  // read-set object changed) and abort the reader: the opacity-critical
  // path of orec-ts. The enumeration must reach it, and opacity must
  // hold on every schedule regardless.
  ExploreOptions Opts;
  Opts.PreemptionBound = 2;
  ScheduleExplorer Ex(fracturedScenario(/*ReaderIsReadOnly=*/false),
                      TmKind::TK_OrecTs, Opts);
  ExploreStats Stats = Ex.explore(expectScheduleCorrect,
                                  readerSpuriouslyAborted);
  expectCleanStats(Stats);
  EXPECT_GT(Stats.WitnessMatches, 0u)
      << "the failed-extension schedule was never reached";
}

TEST(ExploreWitness, MvHistoryTruncationAbortsOnlyTheUpdater) {
  // The depth-bounded version ring: on schedules where the read-only
  // snapshot is still live after three updates, the fourth commit must
  // abort with AC_HistoryFull — and the reader must commit on EVERY
  // schedule (the mv property row, asserted per run by the explorer,
  // plus explicitly here).
  ExploreOptions Opts;
  Opts.PreemptionBound = 2;
  ScheduleExplorer Ex(mvTruncationScenario(), TmKind::TK_Mv, Opts);
  ExploreStats Stats = Ex.explore(
      [](const RunResult &R) {
        expectScheduleCorrect(R);
        EXPECT_TRUE(R.Outcomes[0][0].Committed)
            << "read-only snapshot aborted on " << formatTrace(*R.Trace);
      },
      [](const RunResult &R) {
        for (const TxnResult &Txn : R.Outcomes[1])
          if (!Txn.Committed && Txn.Cause == AbortCause::AC_HistoryFull)
            return true;
        return false;
      });
  expectCleanStats(Stats);
  EXPECT_GT(Stats.WitnessMatches, 0u)
      << "the history-truncation schedule was never reached";
}

//===----------------------------------------------------------------------===//
// State-space guards: the bound, the sleep sets and the dedup must cap
// the tree without losing final-state coverage.
//===----------------------------------------------------------------------===//

TEST(ExploreBudget, BoundAndDedupCapAWideScenario) {
  ExploreOptions Opts;
  Opts.PreemptionBound = 1;
  ScheduleExplorer Ex(wideScenario(), TmKind::TK_Tl2, Opts);
  std::vector<uint64_t> AccessCounts;
  ExploreStats Stats = Ex.explore([&](const RunResult &R) {
    if (!AccessCounts.empty())
      return;
    AccessCounts.assign(3, 0);
    for (const ExploreStep &S : *R.Trace)
      if (S.Action == StepAction::SA_Access)
        ++AccessCounts[S.Chosen];
  });
  expectCleanStats(Stats);
  ASSERT_EQ(AccessCounts.size(), 3u);

  // Brute force = the multinomial number of interleavings of the three
  // threads' access sequences (ignoring even the aborts' feedback on the
  // access counts). The bounded DFS must come in far below it.
  double Total = 0, LogBrute = 0;
  for (uint64_t N : AccessCounts) {
    EXPECT_GE(N, 4u) << "scenario not wide enough to be meaningful";
    Total += static_cast<double>(N);
    LogBrute -= std::lgamma(static_cast<double>(N) + 1);
  }
  LogBrute += std::lgamma(Total + 1);
  EXPECT_GT(LogBrute, std::log(1e6))
      << "brute-force space unexpectedly small";
  EXPECT_LT(std::log(static_cast<double>(Stats.Executed)), LogBrute)
      << "the preemption bound did not prune anything";
  EXPECT_GT(Stats.PrunedBound, 0u);
  EXPECT_LT(Stats.UniqueStates, Stats.Executed)
      << "state-hash dedup found no equivalent executions";
}

namespace {
/// Everything observable about a run that schedule-equivalent executions
/// must agree on: the final heap hash plus every transaction's outcome
/// and abort cause. Much stronger than the state hash alone — scenarios
/// often converge to one final state while differing in who aborted why.
std::string runSignature(const RunResult &R) {
  std::string Sig = std::to_string(R.StateHash);
  for (const std::vector<TxnResult> &Thread : R.Outcomes)
    for (const TxnResult &Txn : Thread) {
      Sig += Txn.Committed ? " C" : " A";
      Sig += abortCauseName(Txn.Cause);
    }
  return Sig;
}
} // namespace

TEST(ExplorePruning, SleepSetsPreserveBehaviorCoverage) {
  // The empirical soundness check for the sleep sets: with and without
  // them, the same set of behaviors — final state plus per-transaction
  // outcomes and abort causes — must be observed; only the schedule
  // count may differ. (This signature comparison is what caught the
  // over-pruning bug where sleep entries recorded raw process-wide
  // object ids and so never woke on dependent events of a later run.)
  auto RunOnce = [](bool SleepSets, std::set<std::string> &Sigs) {
    ExploreOptions Opts;
    Opts.PreemptionBound = 2;
    Opts.SleepSets = SleepSets;
    ScheduleExplorer Ex(staleReadScenario(), TmKind::TK_Tl2, Opts);
    ExploreStats Stats = Ex.explore(
        [&](const RunResult &R) { Sigs.insert(runSignature(R)); });
    expectCleanStats(Stats);
    return Stats;
  };
  std::set<std::string> WithSleep, WithoutSleep;
  ExploreStats On = RunOnce(true, WithSleep);
  ExploreStats Off = RunOnce(false, WithoutSleep);
  EXPECT_EQ(WithSleep, WithoutSleep)
      << "sleep-set pruning lost (or invented) a behavior";
  EXPECT_GE(WithSleep.size(), 3u) << "scenario too poor to discriminate";
  EXPECT_LE(On.Executed, Off.Executed);
  EXPECT_GT(On.PrunedSleep + On.SleepBlocked, 0u)
      << "independent accesses produced no sleep-set pruning at all";
  EXPECT_EQ(Off.PrunedSleep, 0u);
  EXPECT_EQ(On.UniqueStates, Off.UniqueStates);
}

TEST(ExplorePruning, UnboundedSleepSetsCoverTheBoundedSpace) {
  // Trace-exhaustive mode (sleep sets, no preemption bound) must finish
  // on a small scenario and observe every behavior the bounded-complete
  // enumeration sees — the two sound configurations cross-validate.
  std::set<std::string> Unbounded, Bounded;
  {
    ExploreOptions Opts;
    Opts.PreemptionBound = kUnboundedPreemptions;
    ScheduleExplorer Ex(staleReadScenario(), TmKind::TK_OrecTs, Opts);
    ExploreStats Stats = Ex.explore(
        [&](const RunResult &R) { Unbounded.insert(runSignature(R)); });
    expectCleanStats(Stats);
  }
  {
    ExploreOptions Opts;
    Opts.PreemptionBound = 2;
    Opts.SleepSets = false;
    ScheduleExplorer Ex(staleReadScenario(), TmKind::TK_OrecTs, Opts);
    ExploreStats Stats = Ex.explore(
        [&](const RunResult &R) { Bounded.insert(runSignature(R)); });
    expectCleanStats(Stats);
  }
  for (const std::string &Sig : Bounded)
    EXPECT_TRUE(Unbounded.count(Sig))
        << "behavior within the bound missed by trace-exhaustive mode: "
        << Sig;
}

TEST(ExploreDeterminism, RepeatedExplorationIsIdentical) {
  auto RunOnce = [](std::vector<uint64_t> &Hashes) {
    ExploreOptions Opts;
    Opts.PreemptionBound = 2;
    ScheduleExplorer Ex(staleReadScenario(), TmKind::TK_Norec, Opts);
    return Ex.explore(
        [&](const RunResult &R) { Hashes.push_back(R.StateHash); });
  };
  std::vector<uint64_t> First, Second;
  ExploreStats A = RunOnce(First);
  ExploreStats B = RunOnce(Second);
  EXPECT_EQ(A.Executed, B.Executed);
  EXPECT_EQ(A.UniqueStates, B.UniqueStates);
  EXPECT_EQ(A.PrunedSleep, B.PrunedSleep);
  EXPECT_EQ(A.PrunedBound, B.PrunedBound);
  EXPECT_EQ(First, Second) << "exploration is not deterministic";
}

//===----------------------------------------------------------------------===//
// Unit-level pieces: dependence relation, trace rendering, JSON summary.
//===----------------------------------------------------------------------===//

TEST(ExploreUnits, EventDependenceRelation) {
  SleepEntry Retire{1, true, 5, AccessKind::AK_Write};
  EXPECT_FALSE(eventsDependent(Retire, 5, AccessKind::AK_Write));

  SleepEntry Read{1, false, 5, AccessKind::AK_Read};
  EXPECT_FALSE(eventsDependent(Read, 5, AccessKind::AK_Read));
  EXPECT_TRUE(eventsDependent(Read, 5, AccessKind::AK_Write));
  EXPECT_TRUE(eventsDependent(Read, 5, AccessKind::AK_Cas));
  EXPECT_FALSE(eventsDependent(Read, 6, AccessKind::AK_Write));

  SleepEntry Write{1, false, 5, AccessKind::AK_Write};
  EXPECT_TRUE(eventsDependent(Write, 5, AccessKind::AK_Read));
  EXPECT_FALSE(eventsDependent(Write, 6, AccessKind::AK_Read));

  // Anonymous (unattributed) steps conflict with everything.
  constexpr uint64_t Anon = TokenInterleaver::kAnonymousObject;
  EXPECT_TRUE(eventsDependent(Read, Anon, AccessKind::AK_Read));
  SleepEntry AnonSleep{1, false, Anon, AccessKind::AK_Read};
  EXPECT_TRUE(eventsDependent(AnonSleep, 9, AccessKind::AK_Read));
}

TEST(ExploreUnits, FormatTraceRendering) {
  std::vector<ExploreStep> Trace(4);
  Trace[0].Chosen = 0;
  Trace[0].Action = StepAction::SA_Access;
  Trace[0].Obj = 2;
  Trace[0].Kind = AccessKind::AK_Read;
  Trace[1].Chosen = 1;
  Trace[1].Action = StepAction::SA_Access;
  Trace[1].Obj = 2;
  Trace[1].Kind = AccessKind::AK_Write;
  Trace[1].WasPreemption = true;
  Trace[2].Chosen = 1;
  Trace[2].Action = StepAction::SA_Retire;
  Trace[3].Chosen = 0;
  Trace[3].Action = StepAction::SA_Access;
  Trace[3].Obj = TokenInterleaver::kAnonymousObject;
  Trace[3].Kind = AccessKind::AK_FetchAdd;
  EXPECT_EQ(formatTrace(Trace), "0:r2 1:w2! 1:ret 0:f?");
}

TEST(ExploreUnits, SummaryJsonShape) {
  ExploreSummaryEntry E;
  E.Scenario = "increment-increment";
  E.Kind = TmKind::TK_Tl2;
  E.PreemptionBound = 2;
  E.Stats.Executed = 10;
  E.Stats.UniqueStates = 3;
  E.Stats.Complete = true;
  std::string Out;
  {
    StringOStream OS(Out);
    writeExploreSummary(OS, {E});
  }
  EXPECT_NE(Out.find("\"schema\":\"ptm-explore-v1\""), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("\"tm\":\"tl2\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"executed\":10"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"complete\":true"), std::string::npos) << Out;
}

//===----------------------------------------------------------------------===//
// The TmConfig axis: CM-independence of the schedule tree, and the
// clock-implementation differential sweep.
//===----------------------------------------------------------------------===//

TEST(ExploreCmIndependence, ScheduleTreeIsIdenticalUnderEveryCm) {
  // The placement contract of stm/ContentionManager.h, pinned by
  // exploration: CMs act only between attempts and on plain atomics,
  // never on BaseObjects, so the instrumented step stream — and with it
  // the entire schedule tree — is bit-identical across policies. Any CM
  // that leaked an instrumented access (or changed TM control flow)
  // would shift Executed/pruning counts or the per-schedule state-hash
  // sequence here.
  struct Case {
    Scenario (*Make)();
    TmKind Kind;
  };
  // tl2: lazy locking (commit-time aborts); orec-eager: encounter-time
  // locking, the path that feeds noteLockBusy.
  const Case Cases[] = {{staleReadScenario, TmKind::TK_Tl2},
                        {incrementScenario, TmKind::TK_OrecEager}};
  for (const Case &C : Cases) {
    std::vector<uint64_t> BaselineHashes;
    std::set<std::string> BaselineSigs;
    ExploreStats Baseline;
    bool HaveBaseline = false;
    for (CmKind Cm : allCmKinds()) {
      Scenario Scn = C.Make();
      Scn.Tm.Cm = Cm;
      ExploreOptions Opts;
      Opts.PreemptionBound = 2;
      std::vector<uint64_t> Hashes;
      std::set<std::string> Sigs;
      ScheduleExplorer Ex(std::move(Scn), C.Kind, Opts);
      ExploreStats Stats = Ex.explore([&](const RunResult &R) {
        expectScheduleCorrect(R);
        Hashes.push_back(R.StateHash);
        Sigs.insert(runSignature(R));
      });
      expectCleanStats(Stats);
      if (!HaveBaseline) {
        HaveBaseline = true;
        Baseline = Stats;
        BaselineHashes = std::move(Hashes);
        BaselineSigs = std::move(Sigs);
        continue;
      }
      EXPECT_EQ(Stats.Executed, Baseline.Executed) << cmKindName(Cm);
      EXPECT_EQ(Stats.UniqueStates, Baseline.UniqueStates) << cmKindName(Cm);
      EXPECT_EQ(Stats.MaxDepth, Baseline.MaxDepth) << cmKindName(Cm);
      EXPECT_EQ(Stats.PrunedSleep, Baseline.PrunedSleep) << cmKindName(Cm);
      EXPECT_EQ(Stats.PrunedBound, Baseline.PrunedBound) << cmKindName(Cm);
      EXPECT_EQ(Hashes, BaselineHashes)
          << "CM " << cmKindName(Cm) << " shifted the schedule tree";
      EXPECT_EQ(Sigs, BaselineSigs) << cmKindName(Cm);
    }
  }
}

TEST(ExploreClockSweep, EveryClockStaysCorrectOnEveryClockTm) {
  // The TmKind x clock differential sweep: non-default clocks trade the
  // exact-stamp shortcut (gv5) or the single hot cell (sharded) for
  // throughput, never correctness — every explored schedule of every
  // pair must stay opaque, final-state serializable, and inside its
  // DESIGN.md property row. The clock cells are BaseObjects, so each
  // clock genuinely reshapes the schedule tree being checked.
  for (TmKind Kind : {TmKind::TK_Tl2, TmKind::TK_OrecTs, TmKind::TK_Tml,
                      TmKind::TK_Mv}) {
    for (ClockKind Clock : allClockKinds()) {
      Scenario Scn = staleReadScenario();
      Scn.Tm.Clock = Clock;
      ExploreOptions Opts;
      Opts.PreemptionBound = 2;
      ScheduleExplorer Ex(std::move(Scn), Kind, Opts);
      ExploreStats Stats = Ex.explore(
          [&](const RunResult &R) { expectScheduleCorrect(R); });
      expectCleanStats(Stats);
      EXPECT_GT(Stats.Executed, 1u)
          << tmKindName(Kind) << "/" << clockKindName(Clock);
    }
  }
}
