//===-- tests/StmSequentialTest.cpp - Single-threaded TM semantics --------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// Sequential-execution semantics shared by every TM: legality of reads,
/// read-own-writes, abort rollback, descriptor lifecycle, and sequential
/// TM-progress (a transaction running alone never aborts — the paper's
/// minimal progressiveness).
///
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"

#include <gtest/gtest.h>

using namespace ptm;

namespace {

class StmSequentialTest : public ::testing::TestWithParam<TmKind> {
protected:
  void SetUp() override { M = createTm(GetParam(), /*Objects=*/64, 4); }
  std::unique_ptr<Tm> M;
};

std::string paramName(const ::testing::TestParamInfo<TmKind> &Info) {
  std::string Name = tmKindName(Info.param);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

} // namespace

TEST_P(StmSequentialTest, FreshObjectsReadZero) {
  M->txBegin(0);
  for (ObjectId Obj = 0; Obj < 8; ++Obj) {
    uint64_t V = 1;
    ASSERT_TRUE(M->txRead(0, Obj, V));
    EXPECT_EQ(V, 0u);
  }
  EXPECT_TRUE(M->txCommit(0));
}

TEST_P(StmSequentialTest, InitIsVisibleToTransactions) {
  M->init(3, 77);
  M->txBegin(0);
  uint64_t V = 0;
  ASSERT_TRUE(M->txRead(0, 3, V));
  EXPECT_EQ(V, 77u);
  EXPECT_TRUE(M->txCommit(0));
}

TEST_P(StmSequentialTest, ReadYourOwnWrite) {
  M->txBegin(0);
  ASSERT_TRUE(M->txWrite(0, 5, 123));
  uint64_t V = 0;
  ASSERT_TRUE(M->txRead(0, 5, V));
  EXPECT_EQ(V, 123u);
  ASSERT_TRUE(M->txWrite(0, 5, 456));
  ASSERT_TRUE(M->txRead(0, 5, V));
  EXPECT_EQ(V, 456u) << "last own write wins";
  EXPECT_TRUE(M->txCommit(0));
  EXPECT_EQ(M->sample(5), 456u);
}

TEST_P(StmSequentialTest, WritesInvisibleUntilCommit) {
  M->txBegin(0);
  ASSERT_TRUE(M->txWrite(0, 2, 9));
  // Not yet committed: the eager TMs (glock, tlrw) have published under a
  // lock, but no *transaction* may observe it; the lazy TMs have not
  // published at all. Either way, after a user abort nothing remains.
  M->txAbort(0);
  EXPECT_EQ(M->sample(2), 0u);
  EXPECT_EQ(M->lastAbortCause(0), AbortCause::AC_User);
}

TEST_P(StmSequentialTest, AbortRollsBackMultipleWrites) {
  M->init(0, 10);
  M->init(1, 20);
  M->txBegin(0);
  ASSERT_TRUE(M->txWrite(0, 0, 11));
  ASSERT_TRUE(M->txWrite(0, 1, 21));
  ASSERT_TRUE(M->txWrite(0, 0, 12));
  M->txAbort(0);
  EXPECT_EQ(M->sample(0), 10u);
  EXPECT_EQ(M->sample(1), 20u);
}

TEST_P(StmSequentialTest, CommitPublishesAllWrites) {
  M->txBegin(0);
  for (ObjectId Obj = 0; Obj < 16; ++Obj)
    ASSERT_TRUE(M->txWrite(0, Obj, Obj * 100));
  ASSERT_TRUE(M->txCommit(0));
  for (ObjectId Obj = 0; Obj < 16; ++Obj)
    EXPECT_EQ(M->sample(Obj), Obj * 100u);
}

TEST_P(StmSequentialTest, TransactionsSeeEarlierCommits) {
  M->txBegin(0);
  ASSERT_TRUE(M->txWrite(0, 7, 1));
  ASSERT_TRUE(M->txCommit(0));

  M->txBegin(0);
  uint64_t V = 0;
  ASSERT_TRUE(M->txRead(0, 7, V));
  EXPECT_EQ(V, 1u);
  ASSERT_TRUE(M->txWrite(0, 7, V + 1));
  ASSERT_TRUE(M->txCommit(0));
  EXPECT_EQ(M->sample(7), 2u);
}

TEST_P(StmSequentialTest, RepeatedReadsReturnSameValue) {
  M->init(9, 5);
  M->txBegin(0);
  uint64_t A = 0, B = 0;
  ASSERT_TRUE(M->txRead(0, 9, A));
  ASSERT_TRUE(M->txRead(0, 9, B));
  EXPECT_EQ(A, B);
  EXPECT_TRUE(M->txCommit(0));
}

TEST_P(StmSequentialTest, ActiveFlagLifecycle) {
  EXPECT_FALSE(M->txActive(0));
  M->txBegin(0);
  EXPECT_TRUE(M->txActive(0));
  EXPECT_TRUE(M->txCommit(0));
  EXPECT_FALSE(M->txActive(0));

  M->txBegin(0);
  M->txAbort(0);
  EXPECT_FALSE(M->txActive(0));
}

TEST_P(StmSequentialTest, AbortCauseClearedByCommit) {
  M->txBegin(0);
  M->txAbort(0);
  EXPECT_EQ(M->lastAbortCause(0), AbortCause::AC_User);
  M->txBegin(0);
  EXPECT_TRUE(M->txCommit(0));
  EXPECT_EQ(M->lastAbortCause(0), AbortCause::AC_None);
}

TEST_P(StmSequentialTest, StatsCountCommitsAndAborts) {
  M->resetStats();
  for (int I = 0; I < 5; ++I) {
    M->txBegin(0);
    ASSERT_TRUE(M->txWrite(0, 0, I));
    ASSERT_TRUE(M->txCommit(0));
  }
  for (int I = 0; I < 3; ++I) {
    M->txBegin(0);
    M->txAbort(0);
  }
  TmStats S = M->stats();
  EXPECT_EQ(S.Commits, 5u);
  EXPECT_EQ(S.totalAborts(), 3u);
  EXPECT_EQ(S.Aborts[static_cast<unsigned>(AbortCause::AC_User)], 3u);
  M->resetStats();
  EXPECT_EQ(M->stats().Commits, 0u);
}

TEST_P(StmSequentialTest, ReadOnlyTransactionCommits) {
  M->txBegin(0);
  uint64_t V;
  for (ObjectId Obj = 0; Obj < 32; ++Obj)
    ASSERT_TRUE(M->txRead(0, Obj, V));
  EXPECT_TRUE(M->txCommit(0));
}

TEST_P(StmSequentialTest, WriteOnlyTransactionCommits) {
  M->txBegin(0);
  for (ObjectId Obj = 0; Obj < 32; ++Obj)
    ASSERT_TRUE(M->txWrite(0, Obj, 1));
  EXPECT_TRUE(M->txCommit(0));
  for (ObjectId Obj = 0; Obj < 32; ++Obj)
    EXPECT_EQ(M->sample(Obj), 1u);
}

TEST_P(StmSequentialTest, LargeTransactionSequentialProgress) {
  // Sequential TM-progress over the full object array: must commit, no
  // matter the size.
  M->txBegin(0);
  uint64_t V;
  for (ObjectId Obj = 0; Obj < 64; ++Obj) {
    ASSERT_TRUE(M->txRead(0, Obj, V));
    ASSERT_TRUE(M->txWrite(0, Obj, V + 1));
  }
  ASSERT_TRUE(M->txCommit(0));
  TmStats S = M->stats();
  EXPECT_EQ(S.totalAborts(), 0u) << "a solo transaction must never abort";
}

TEST_P(StmSequentialTest, InterleavedThreadSlotsSequentially) {
  // Two thread slots used alternately (but never concurrently) must not
  // interfere.
  M->txBegin(0);
  ASSERT_TRUE(M->txWrite(0, 0, 1));
  ASSERT_TRUE(M->txCommit(0));

  M->txBegin(1);
  uint64_t V = 0;
  ASSERT_TRUE(M->txRead(1, 0, V));
  EXPECT_EQ(V, 1u);
  ASSERT_TRUE(M->txWrite(1, 0, 2));
  ASSERT_TRUE(M->txCommit(1));

  M->txBegin(0);
  ASSERT_TRUE(M->txRead(0, 0, V));
  EXPECT_EQ(V, 2u);
  ASSERT_TRUE(M->txCommit(0));
}

TEST_P(StmSequentialTest, ManySmallTransactionsNoLeakage) {
  for (int Round = 0; Round < 200; ++Round) {
    ThreadId Tid = Round % 4;
    M->txBegin(Tid);
    uint64_t V = 0;
    ASSERT_TRUE(M->txRead(Tid, Round % 64, V));
    ASSERT_TRUE(M->txWrite(Tid, Round % 64, V + 1));
    ASSERT_TRUE(M->txCommit(Tid));
  }
  uint64_t Sum = 0;
  for (ObjectId Obj = 0; Obj < 64; ++Obj)
    Sum += M->sample(Obj);
  EXPECT_EQ(Sum, 200u);
}

INSTANTIATE_TEST_SUITE_P(AllTms, StmSequentialTest,
                         ::testing::ValuesIn(allTmKinds()), paramName);
