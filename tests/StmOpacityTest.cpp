//===-- tests/StmOpacityTest.cpp - Recorded-history opacity checks --------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// End-to-end verification of the paper's Section 3 definitions against
/// the real TMs: record small concurrent executions through RecordingTm,
/// then check opacity offline. Histories are kept small enough for the
/// exhaustive checker.
///
//===----------------------------------------------------------------------===//

#include "history/Checker.h"
#include "history/RecordingTm.h"
#include "stm/Stm.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace ptm;

namespace {

class StmOpacityTest : public ::testing::TestWithParam<TmKind> {};

std::string paramName(const ::testing::TestParamInfo<TmKind> &Info) {
  std::string Name = tmKindName(Info.param);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

} // namespace

TEST_P(StmOpacityTest, RecorderPreservesSemantics) {
  RecordingTm M(createTm(GetParam(), 8, 2));
  M.txBegin(0);
  ASSERT_TRUE(M.txWrite(0, 0, 5));
  uint64_t V = 0;
  ASSERT_TRUE(M.txRead(0, 0, V));
  EXPECT_EQ(V, 5u);
  ASSERT_TRUE(M.txCommit(0));
  EXPECT_EQ(M.sample(0), 5u);

  History H = M.takeHistory();
  ASSERT_EQ(H.Txns.size(), 1u);
  EXPECT_TRUE(H.Txns[0].committed());
  ASSERT_EQ(H.Txns[0].Ops.size(), 2u);
  EXPECT_EQ(H.Txns[0].Ops[0].Kind, TOpKind::TO_Write);
  EXPECT_EQ(H.Txns[0].Ops[1].Kind, TOpKind::TO_Read);
}

TEST_P(StmOpacityTest, SequentialHistoryIsOpaque) {
  RecordingTm M(createTm(GetParam(), 4, 1));
  for (int I = 0; I < 6; ++I) {
    M.txBegin(0);
    uint64_t V = 0;
    ASSERT_TRUE(M.txRead(0, I % 4, V));
    ASSERT_TRUE(M.txWrite(0, I % 4, V + 1));
    ASSERT_TRUE(M.txCommit(0));
  }
  History H = M.takeHistory();
  EXPECT_EQ(checkOpacity(H), CheckResult::CR_Ok);
}

TEST_P(StmOpacityTest, ConcurrentContendedHistoryIsOpaque) {
  // 3 threads × 4 transactions over 2 hot objects: small enough for the
  // exhaustive checker, contended enough to exercise validation/abort
  // paths. Repeat with several seeds for coverage.
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    RecordingTm M(createTm(GetParam(), 2, 3));
    std::vector<std::thread> Workers;
    for (unsigned T = 0; T < 3; ++T) {
      Workers.emplace_back([&, T, Seed] {
        Xoshiro256 Rng(Seed * 100 + T);
        for (int I = 0; I < 4; ++I) {
          ObjectId A = static_cast<ObjectId>(Rng.nextBounded(2));
          ObjectId B = 1 - A;
          // Single-shot attempts: aborted transactions stay in the
          // history, which is exactly what opacity must tolerate.
          M.txBegin(T);
          uint64_t V;
          if (!M.txRead(T, A, V))
            continue;
          if (Rng.nextBool(0.7)) {
            if (!M.txWrite(T, A, V + 1))
              continue;
          }
          uint64_t W;
          if (!M.txRead(T, B, W))
            continue;
          (void)M.txCommit(T);
        }
      });
    }
    for (std::thread &W : Workers)
      W.join();

    History H = M.takeHistory();
    CheckResult R = checkOpacity(H);
    EXPECT_EQ(R, CheckResult::CR_Ok)
        << tmKindName(GetParam()) << " produced a non-opaque history at seed "
        << Seed << " (" << H.Txns.size() << " txns, " << H.numCommitted()
        << " committed)";
  }
}

TEST_P(StmOpacityTest, ReadOnlySnapshotsAreSerializable) {
  // One writer ping-pongs two objects keeping their sum invariant; one
  // reader snapshots both. All recorded histories must be opaque.
  RecordingTm M(createTm(GetParam(), 2, 2));
  M.init(0, 10);
  M.init(1, 0);

  std::thread Writer([&] {
    for (int I = 0; I < 6; ++I) {
      M.txBegin(0);
      uint64_t A, B;
      if (!M.txRead(0, 0, A) || !M.txRead(0, 1, B))
        continue;
      if (!M.txWrite(0, 0, A - 1) || !M.txWrite(0, 1, B + 1))
        continue;
      (void)M.txCommit(0);
    }
  });
  std::thread Reader([&] {
    for (int I = 0; I < 6; ++I) {
      M.txBegin(1);
      uint64_t A, B;
      if (!M.txRead(1, 0, A) || !M.txRead(1, 1, B))
        continue;
      if (M.txCommit(1)) {
        EXPECT_EQ(A + B, 10u) << "torn read-only snapshot";
      }
    }
  });
  Writer.join();
  Reader.join();

  CheckerOptions Options;
  History H = M.takeHistory();
  // Initial values are not all zero here; fold them in by treating the
  // init as a first committed transaction.
  HistoryBuilder Pre;
  size_t Init = Pre.begin(0);
  Pre.write(Init, 0, 10).write(Init, 1, 0).commit(Init);
  History Full = Pre.take();
  uint64_t Shift = 1000000;
  for (TxnRecord &T : H.Txns) {
    T.FirstTicket += Shift;
    T.LastTicket += Shift;
    Full.Txns.push_back(T);
  }
  EXPECT_EQ(checkOpacity(Full, Options), CheckResult::CR_Ok);
}

INSTANTIATE_TEST_SUITE_P(AllTms, StmOpacityTest,
                         ::testing::ValuesIn(allTmKinds()), paramName);
