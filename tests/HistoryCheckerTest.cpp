//===-- tests/HistoryCheckerTest.cpp - Checker unit tests ------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// Hand-built histories with known verdicts, exercising legality,
/// real-time order, read-own-writes, aborted-transaction consistency
/// (opacity vs strict serializability) and the search budget.
///
//===----------------------------------------------------------------------===//

#include "history/Checker.h"
#include "history/History.h"

#include <gtest/gtest.h>

using namespace ptm;

TEST(Checker, EmptyHistoryIsOpaque) {
  History H;
  EXPECT_EQ(checkStrictSerializability(H), CheckResult::CR_Ok);
  EXPECT_EQ(checkOpacity(H), CheckResult::CR_Ok);
}

TEST(Checker, SingleTxnReadingInitialValue) {
  HistoryBuilder B;
  size_t T = B.begin(0);
  B.read(T, 0, 0).commit(T);
  EXPECT_EQ(checkStrictSerializability(B.take()), CheckResult::CR_Ok);
}

TEST(Checker, SingleTxnReadingWrongInitialValue) {
  HistoryBuilder B;
  size_t T = B.begin(0);
  B.read(T, 0, 42).commit(T);
  EXPECT_EQ(checkStrictSerializability(B.take()),
            CheckResult::CR_Violation);
}

TEST(Checker, CustomInitialValue) {
  HistoryBuilder B;
  size_t T = B.begin(0);
  B.read(T, 0, 42).commit(T);
  CheckerOptions Options;
  Options.InitialValue = 42;
  EXPECT_EQ(checkStrictSerializability(B.take(), Options),
            CheckResult::CR_Ok);
}

TEST(Checker, SequentialWriteThenRead) {
  HistoryBuilder B;
  size_t T1 = B.begin(0);
  B.write(T1, 0, 5).commit(T1);
  size_t T2 = B.begin(0);
  B.read(T2, 0, 5).commit(T2);
  EXPECT_EQ(checkStrictSerializability(B.take()), CheckResult::CR_Ok);
}

TEST(Checker, RealTimeOrderForbidsStaleRead) {
  // T1 commits X=1 strictly before T2 begins; T2 reading 0 is illegal.
  HistoryBuilder B;
  size_t T1 = B.begin(0);
  B.write(T1, 0, 1).commit(T1);
  size_t T2 = B.begin(1);
  B.read(T2, 0, 0).commit(T2);
  EXPECT_EQ(checkStrictSerializability(B.take()),
            CheckResult::CR_Violation);
}

TEST(Checker, ConcurrentTxnMayReadOldValue) {
  // Same as above but T2 overlaps T1: serializing T2 first legalizes it.
  HistoryBuilder B;
  size_t T1 = B.begin(0);
  size_t T2 = B.begin(1);
  B.write(T1, 0, 1);
  B.read(T2, 0, 0);
  B.commit(T1);
  B.commit(T2);
  EXPECT_EQ(checkStrictSerializability(B.take()), CheckResult::CR_Ok);
}

TEST(Checker, ReadOwnWriteOverridesMemory) {
  HistoryBuilder B;
  size_t T1 = B.begin(0);
  B.write(T1, 0, 7).read(T1, 0, 7).commit(T1);
  EXPECT_EQ(checkStrictSerializability(B.take()), CheckResult::CR_Ok);
}

TEST(Checker, ReadOwnWriteMismatchIsIllegal) {
  HistoryBuilder B;
  size_t T1 = B.begin(0);
  B.write(T1, 0, 7).read(T1, 0, 8).commit(T1);
  EXPECT_EQ(checkStrictSerializability(B.take()),
            CheckResult::CR_Violation);
}

TEST(Checker, FracturedReadIsNotSerializable) {
  // The classic non-opaque interleaving: T1 reads X=0, then T2 commits
  // X=1,Y=1, then T1 reads Y=1. No serialization explains both reads.
  HistoryBuilder B;
  size_t T1 = B.begin(0);
  B.read(T1, 0, 0);
  size_t T2 = B.begin(1);
  B.write(T2, 0, 1).write(T2, 1, 1).commit(T2);
  B.read(T1, 1, 1).commit(T1);
  EXPECT_EQ(checkStrictSerializability(B.take()),
            CheckResult::CR_Violation);
}

TEST(Checker, FracturedReadInAbortedTxnViolatesOpacityOnly) {
  // Same fractured read, but T1 aborts. Strict serializability (which
  // only constrains committed transactions) accepts the history; opacity
  // rejects it.
  HistoryBuilder B;
  size_t T1 = B.begin(0);
  B.read(T1, 0, 0);
  size_t T2 = B.begin(1);
  B.write(T2, 0, 1).write(T2, 1, 1).commit(T2);
  B.read(T1, 1, 1).abort(T1);
  History H = B.take();
  EXPECT_EQ(checkStrictSerializability(H), CheckResult::CR_Ok);
  EXPECT_EQ(checkOpacity(H), CheckResult::CR_Violation);
}

TEST(Checker, AbortedWritesAreInvisible) {
  // A writes X=9 and aborts; a later reader must still see 0 — and the
  // opacity check must *not* apply A's writes when serializing it.
  HistoryBuilder B;
  size_t A = B.begin(0);
  B.write(A, 0, 9).abort(A);
  size_t T = B.begin(1);
  B.read(T, 0, 0).commit(T);
  History H = B.take();
  EXPECT_EQ(checkStrictSerializability(H), CheckResult::CR_Ok);
  EXPECT_EQ(checkOpacity(H), CheckResult::CR_Ok);
}

TEST(Checker, AbortedReaderWithConsistentSnapshotIsOpaque) {
  HistoryBuilder B;
  size_t T1 = B.begin(0);
  B.write(T1, 0, 1).write(T1, 1, 1).commit(T1);
  size_t A = B.begin(1);
  B.read(A, 0, 1).read(A, 1, 1).abort(A);
  EXPECT_EQ(checkOpacity(B.take()), CheckResult::CR_Ok);
}

TEST(Checker, AbortedReaderStaleAfterRealTimeOrderViolatesOpacity) {
  // T1 commits X=1 strictly before A begins; A (aborted) reading X=0
  // cannot be serialized anywhere consistent with real time.
  HistoryBuilder B;
  size_t T1 = B.begin(0);
  B.write(T1, 0, 1).commit(T1);
  size_t A = B.begin(1);
  B.read(A, 0, 0).abort(A);
  History H = B.take();
  EXPECT_EQ(checkStrictSerializability(H), CheckResult::CR_Ok);
  EXPECT_EQ(checkOpacity(H), CheckResult::CR_Violation);
}

TEST(Checker, AntidependencyCycleDetected) {
  // T1: r(X)=0 w(Y,1); T2: r(Y)=0 w(X,1); both commit, fully concurrent.
  // Either order makes the second transaction's read illegal.
  HistoryBuilder B;
  size_t T1 = B.begin(0);
  size_t T2 = B.begin(1);
  B.read(T1, 0, 0).read(T2, 1, 0);
  B.write(T1, 1, 1).write(T2, 0, 1);
  B.commit(T1).commit(T2);
  EXPECT_EQ(checkStrictSerializability(B.take()),
            CheckResult::CR_Violation);
}

TEST(Checker, WriteSkewIsSerializableHere) {
  // T1: r(X)=0 w(Y,1); T2: r(Y)... wait — classic write skew reads the
  // *other* object it does not write: T1 r(X)=0 w(Y,1), T2 r(Y)=0 w(X,1)
  // is the antidependency cycle above. Reading the object it writes is
  // fine in either order:
  HistoryBuilder B;
  size_t T1 = B.begin(0);
  size_t T2 = B.begin(1);
  B.read(T1, 0, 0).read(T2, 1, 0);
  B.write(T1, 0, 1).write(T2, 1, 1);
  B.commit(T1).commit(T2);
  EXPECT_EQ(checkStrictSerializability(B.take()), CheckResult::CR_Ok);
}

TEST(Checker, ThreeWayChainAcrossThreads) {
  HistoryBuilder B;
  size_t T1 = B.begin(0);
  B.write(T1, 0, 1).commit(T1);
  size_t T2 = B.begin(1);
  B.read(T2, 0, 1).write(T2, 1, 2).commit(T2);
  size_t T3 = B.begin(2);
  B.read(T3, 1, 2).read(T3, 0, 1).commit(T3);
  EXPECT_EQ(checkStrictSerializability(B.take()), CheckResult::CR_Ok);
}

TEST(Checker, BudgetExhaustionReportsResourceLimit) {
  HistoryBuilder B;
  size_t T1 = B.begin(0);
  size_t T2 = B.begin(1);
  B.write(T1, 0, 1).write(T2, 1, 1);
  B.commit(T1).commit(T2);
  CheckerOptions Options;
  Options.NodeBudget = 1;
  EXPECT_EQ(checkStrictSerializability(B.take(), Options),
            CheckResult::CR_ResourceLimit);
}

TEST(Checker, TooManyTransactionsReportsResourceLimit) {
  HistoryBuilder B;
  for (int I = 0; I < 70; ++I) {
    size_t T = B.begin(0);
    B.commit(T);
  }
  EXPECT_EQ(checkStrictSerializability(B.take()),
            CheckResult::CR_ResourceLimit);
}

TEST(Checker, LostUpdateIsNotSerializable) {
  // Both transactions read 0 and write 1 (counter increment); a correct
  // TM would have aborted one. If both commit, one update is lost.
  HistoryBuilder B;
  size_t T1 = B.begin(0);
  size_t T2 = B.begin(1);
  B.read(T1, 0, 0).read(T2, 0, 0);
  B.write(T1, 0, 1).write(T2, 0, 1);
  B.commit(T1).commit(T2);
  // Careful: serializing T1 then T2 makes T2's read of 0 illegal, and
  // vice versa.
  EXPECT_EQ(checkStrictSerializability(B.take()),
            CheckResult::CR_Violation);
}

TEST(Checker, DirtyReadOfAbortedWriteIsNotSerializable) {
  // T1 writes 7 and aborts; T2 commits having read that 7. No committed
  // transaction ever produced the value, so T2's read is unjustifiable.
  HistoryBuilder B;
  size_t T1 = B.begin(0);
  B.write(T1, 0, 7);
  size_t T2 = B.begin(1);
  B.read(T2, 0, 7);
  B.abort(T1);
  B.commit(T2);
  EXPECT_EQ(checkStrictSerializability(B.take()),
            CheckResult::CR_Violation);
}

TEST(Checker, AbortedReaderOfAbortedWriteViolatesOpacityOnly) {
  // The same dirty read, but the reader also aborts: the committed
  // subhistory is empty (serializable), yet opacity still rejects — an
  // aborted transaction must observe a committed-consistent snapshot,
  // and the value 7 never existed in one.
  HistoryBuilder B;
  size_t T1 = B.begin(0);
  B.write(T1, 0, 7);
  size_t T2 = B.begin(1);
  B.read(T2, 0, 7);
  B.abort(T1);
  B.abort(T2);
  History H = B.take();
  EXPECT_EQ(checkStrictSerializability(H), CheckResult::CR_Ok);
  EXPECT_EQ(checkOpacity(H), CheckResult::CR_Violation);
}

TEST(Checker, WriteSkewWithMutualReadsIsRejected) {
  // Both transactions read both objects at their initial values, then
  // each writes one of them. Either serialization order makes the later
  // transaction's read of the other's object illegal: the write-skew
  // anomaly in its non-serializable form (contrast
  // WriteSkewIsSerializableHere, where the read sets do not overlap the
  // other's write).
  HistoryBuilder B;
  size_t T1 = B.begin(0);
  size_t T2 = B.begin(1);
  B.read(T1, 0, 0).read(T1, 1, 0);
  B.read(T2, 0, 0).read(T2, 1, 0);
  B.write(T1, 0, 1);
  B.write(T2, 1, 1);
  B.commit(T1).commit(T2);
  EXPECT_EQ(checkStrictSerializability(B.take()),
            CheckResult::CR_Violation);
}

TEST(Checker, ThreeTxnAntidependencyCycleIsRejected) {
  // r(x)->w(y), r(y)->w(z), r(z)->w(x), all overlapping and all reading
  // the initial 0: every linear order places some transaction after the
  // writer of the object it read as 0. A three-party generalization of
  // AntidependencyCycleDetected.
  HistoryBuilder B;
  size_t T1 = B.begin(0);
  size_t T2 = B.begin(1);
  size_t T3 = B.begin(2);
  B.read(T1, 0, 0).write(T1, 1, 1);
  B.read(T2, 1, 0).write(T2, 2, 1);
  B.read(T3, 2, 0).write(T3, 0, 1);
  B.commit(T1).commit(T2).commit(T3);
  EXPECT_EQ(checkStrictSerializability(B.take()),
            CheckResult::CR_Violation);
}

TEST(Checker, FracturedReadAcrossTwoWritersIsRejected) {
  // Each writer updates both objects atomically; the committed reader
  // observes object 0 from the second writer but object 1 from the
  // first — a cut across two commits that no serial order explains.
  HistoryBuilder B;
  size_t R = B.begin(0);
  size_t W1 = B.begin(1);
  B.write(W1, 0, 1).write(W1, 1, 1).commit(W1);
  B.read(R, 1, 1);
  size_t W2 = B.begin(1);
  B.write(W2, 0, 2).write(W2, 1, 2).commit(W2);
  B.read(R, 0, 2);
  B.commit(R);
  EXPECT_EQ(checkStrictSerializability(B.take()),
            CheckResult::CR_Violation);
}
