//===-- tests/ObsTest.cpp - Observability substrate tests -----------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// The src/obs contracts: histogram bucket geometry and golden
/// percentiles, snapshot merging, concurrent recording (the TSan target
/// for the lock-free claims), the metrics registry, trace-ring overwrite
/// semantics, both trace exporters (Chrome JSON shape, binary
/// round-trip incl. malformed-input rejection), the pinned name tables
/// (trace events, abort causes), and the live statsSnapshot() path of
/// every TM kind — monotone under load, exactly stats() at quiescence.
///
//===----------------------------------------------------------------------===//

#include "obs/Obs.h"
#include "stm/Stm.h"
#include "support/RawOStream.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace ptm;
using namespace ptm::obs;

namespace {

//===----------------------------------------------------------------------===//
// LatencyHistogram geometry
//===----------------------------------------------------------------------===//

TEST(HistogramTest, ExactRegionBucketsAreIdentity) {
  for (uint64_t V = 0; V < LatencyHistogram::kExactLimit; ++V) {
    EXPECT_EQ(LatencyHistogram::bucketIndex(V), V);
    EXPECT_EQ(LatencyHistogram::bucketUpperBound(static_cast<unsigned>(V)),
              V);
  }
}

TEST(HistogramTest, BucketBoundariesAtOctaveEdges) {
  // First octave [32, 64): 16 sub-buckets of width 2.
  EXPECT_EQ(LatencyHistogram::bucketIndex(32), 32u);
  EXPECT_EQ(LatencyHistogram::bucketIndex(33), 32u);
  EXPECT_EQ(LatencyHistogram::bucketIndex(34), 33u);
  EXPECT_EQ(LatencyHistogram::bucketIndex(63), 47u);
  // Second octave [64, 128): width 4.
  EXPECT_EQ(LatencyHistogram::bucketIndex(64), 48u);
  EXPECT_EQ(LatencyHistogram::bucketIndex(67), 48u);
  EXPECT_EQ(LatencyHistogram::bucketIndex(68), 49u);
  // The top of the value range still fits the bucket array.
  EXPECT_LT(LatencyHistogram::bucketIndex(~uint64_t{0}),
            LatencyHistogram::kBucketCount);
}

TEST(HistogramTest, BucketsPreserveOrderAndBoundError) {
  unsigned Last = 0;
  for (uint64_t V = 0; V < 100000; V = V < 64 ? V + 1 : V + V / 7) {
    unsigned Index = LatencyHistogram::bucketIndex(V);
    EXPECT_GE(Index, Last) << "bucket order broken at " << V;
    Last = Index;
    uint64_t Upper = LatencyHistogram::bucketUpperBound(Index);
    EXPECT_GE(Upper, V);
    // Relative quantization <= 2/kSubCount: each octave splits into
    // kSubCount/2 sub-buckets.
    EXPECT_LE((Upper - V) * (LatencyHistogram::kSubCount / 2), V)
        << "quantization bound broken at " << V;
  }
}

//===----------------------------------------------------------------------===//
// Golden percentiles
//===----------------------------------------------------------------------===//

TEST(HistogramTest, GoldenPercentilesExactRegion) {
  LatencyHistogram H;
  for (uint64_t V = 1; V <= 31; ++V)
    H.record(V);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 31u);
  EXPECT_EQ(S.MaxValue, 31u);
  EXPECT_EQ(S.percentile(50.0), 16u); // rank ceil(15.5) = 16.
  EXPECT_EQ(S.percentile(100.0), 31u);
  EXPECT_DOUBLE_EQ(S.mean(), 16.0);
}

TEST(HistogramTest, GoldenPercentilesQuantizedRegion) {
  LatencyHistogram H;
  for (uint64_t V = 1; V <= 100; ++V)
    H.record(V);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 100u);
  // Rank 50 = value 50, which shares bucket {50, 51} -> upper edge 51.
  EXPECT_EQ(S.percentile(50.0), 51u);
  // Rank 99 = value 99, bucket {96..99} -> its own upper edge.
  EXPECT_EQ(S.percentile(99.0), 99u);
  // Rank 100 = value 100, bucket {100..103}.
  EXPECT_EQ(S.percentile(99.9), 103u);
  EXPECT_EQ(S.MaxValue, 100u);
  EXPECT_DOUBLE_EQ(S.mean(), 50.5);
}

TEST(HistogramTest, PercentileOnEmptySnapshotIsZero) {
  LatencyHistogram H;
  EXPECT_EQ(H.snapshot().percentile(99.0), 0u);
}

TEST(HistogramTest, MergeAddsBucketsAndTakesMax) {
  LatencyHistogram A, B;
  for (uint64_t V = 1; V <= 50; ++V)
    A.record(V);
  for (uint64_t V = 51; V <= 100; ++V)
    B.record(V);
  HistogramSnapshot S = A.snapshot();
  S.merge(B.snapshot());
  HistogramSnapshot Whole = [] {
    LatencyHistogram H;
    for (uint64_t V = 1; V <= 100; ++V)
      H.record(V);
    return H.snapshot();
  }();
  EXPECT_EQ(S.Count, Whole.Count);
  EXPECT_EQ(S.Sum, Whole.Sum);
  EXPECT_EQ(S.MaxValue, Whole.MaxValue);
  EXPECT_EQ(S.Buckets, Whole.Buckets);
  // Merging into a default-constructed (empty-bucket) snapshot adopts
  // the other's geometry.
  HistogramSnapshot Empty;
  Empty.merge(Whole);
  EXPECT_EQ(Empty.Buckets, Whole.Buckets);
  EXPECT_EQ(Empty.percentile(99.0), Whole.percentile(99.0));
}

// The TSan target for the wait-free record() claim: hammer one histogram
// from several threads while the main thread keeps snapshotting, then
// check the quiesced totals are exact.
TEST(HistogramTest, ConcurrentRecordersAndSnapshotsAreExactAtQuiescence) {
  LatencyHistogram H;
  constexpr unsigned kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::atomic<bool> Done{false};
  std::vector<std::thread> Recorders;
  for (unsigned T = 0; T < kThreads; ++T)
    Recorders.emplace_back([&H, T] {
      for (uint64_t I = 0; I < kPerThread; ++I)
        H.record(T * 1000 + (I % 97));
    });
  uint64_t LastCount = 0;
  while (!Done.load(std::memory_order_relaxed)) {
    HistogramSnapshot S = H.snapshot();
    EXPECT_GE(S.Count, LastCount) << "snapshot count ran backwards";
    LastCount = S.Count;
    if (S.Count == kThreads * kPerThread)
      Done.store(true, std::memory_order_relaxed);
  }
  for (std::thread &T : Recorders)
    T.join();
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, kThreads * kPerThread);
  uint64_t ExpectSum = 0, ExpectMax = 0;
  for (unsigned T = 0; T < kThreads; ++T)
    for (uint64_t I = 0; I < kPerThread; ++I) {
      ExpectSum += T * 1000 + (I % 97);
      ExpectMax = std::max(ExpectMax, T * 1000 + (I % 97));
    }
  EXPECT_EQ(S.Sum, ExpectSum);
  EXPECT_EQ(S.MaxValue, ExpectMax);
}

//===----------------------------------------------------------------------===//
// Counters, gauges, registry
//===----------------------------------------------------------------------===//

TEST(MetricsTest, ShardedCounterSumsOwnedCells) {
  ShardedCounter C(4);
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 4; ++T)
    Threads.emplace_back([&C, T] {
      for (uint64_t I = 0; I < kPerThread; ++I)
        C.cell(T).inc();
    });
  // Concurrent reads must be monotone (each cell is single-writer).
  uint64_t Last = 0;
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = C.value();
    EXPECT_GE(V, Last);
    Last = V;
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(C.value(), 4 * kPerThread);
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

TEST(MetricsTest, RegistryIsCreateOrGetWithSortedSnapshots) {
  MetricsRegistry R;
  ShardedCounter &C1 = R.counter("b.count", 2);
  ShardedCounter &C2 = R.counter("b.count", 2);
  EXPECT_EQ(&C1, &C2);
  R.counter("a.count", 1).cell(0).inc(7);
  R.gauge("z.depth").set(-3);
  R.histogram("m.lat").record(42);
  C1.cell(1).inc(5);

  MetricsSnapshot S1 = R.snapshot();
  MetricsSnapshot S2 = R.snapshot();
  EXPECT_LT(S1.Epoch, S2.Epoch);
  ASSERT_EQ(S1.Counters.size(), 2u);
  EXPECT_EQ(S1.Counters[0].Name, "a.count"); // Sorted by name.
  EXPECT_EQ(S1.counter("a.count"), 7u);
  EXPECT_EQ(S1.counter("b.count"), 5u);
  EXPECT_EQ(S1.counter("no.such"), 0u);
  EXPECT_EQ(S1.gauge("z.depth"), -3);
  ASSERT_NE(S1.histogram("m.lat"), nullptr);
  EXPECT_EQ(S1.histogram("m.lat")->Count, 1u);
  EXPECT_EQ(S1.histogram("no.such"), nullptr);
}

//===----------------------------------------------------------------------===//
// Trace ring and exporters
//===----------------------------------------------------------------------===//

TEST(TraceTest, RingOverwritesOldestAndCountsDropped) {
  TraceRing Ring(6); // Rounds up to 8.
  EXPECT_EQ(Ring.capacity(), 8u);
  for (uint64_t I = 0; I < 11; ++I)
    Ring.append(TraceEventKind::TE_Read, I);
  EXPECT_EQ(Ring.size(), 8u);
  EXPECT_EQ(Ring.dropped(), 3u);
  // Oldest-first: args 3..10 survive.
  for (size_t I = 0; I < Ring.size(); ++I)
    EXPECT_EQ(Ring.at(I).Arg, I + 3);
  // Per-thread timestamps are monotone by construction.
  for (size_t I = 1; I < Ring.size(); ++I)
    EXPECT_GE(Ring.at(I).TimeNs, Ring.at(I - 1).TimeNs);
  Ring.clear();
  EXPECT_EQ(Ring.size(), 0u);
  EXPECT_EQ(Ring.dropped(), 0u);
}

TEST(TraceTest, EventNamesArePinnedAndDistinct) {
  std::set<std::string> Names;
  for (unsigned K = 0; K < kNumTraceEventKinds; ++K) {
    const char *Name = traceEventName(static_cast<TraceEventKind>(K));
    ASSERT_NE(Name, nullptr);
    EXPECT_NE(*Name, '\0');
    EXPECT_TRUE(Names.insert(Name).second)
        << "duplicate trace event name '" << Name << "'";
  }
  // The vocabulary tools/check_trace_json.py pins.
  EXPECT_TRUE(Names.count("txn"));
  EXPECT_TRUE(Names.count("txn-ro"));
  EXPECT_TRUE(Names.count("tryCommit"));
  EXPECT_TRUE(Names.count("read"));
  EXPECT_TRUE(Names.count("write"));
  EXPECT_TRUE(Names.count("extend"));
  EXPECT_TRUE(Names.count("snapshot-pin"));
}

/// A small two-thread dump with every structural case: a committed
/// transaction, an aborted one, and a read-only transaction with a pin.
TraceDump makeSampleDump() {
  Tracer T(2, 16);
  TraceRing &R0 = T.ring(0);
  R0.append(TraceEventKind::TE_TxBegin, 0);
  R0.append(TraceEventKind::TE_Read, 11);
  R0.append(TraceEventKind::TE_Write, 12);
  R0.append(TraceEventKind::TE_TryCommit, 0);
  R0.append(TraceEventKind::TE_Commit, 0);
  R0.append(TraceEventKind::TE_TxBegin, 0);
  R0.append(TraceEventKind::TE_Read, 13);
  R0.append(TraceEventKind::TE_TryCommit, 0);
  R0.append(TraceEventKind::TE_Abort,
            static_cast<uint64_t>(AbortCause::AC_CommitValidation));
  TraceRing &R1 = T.ring(1);
  R1.append(TraceEventKind::TE_TxBeginRo, 0);
  R1.append(TraceEventKind::TE_SnapshotPin, 41);
  R1.append(TraceEventKind::TE_Read, 14);
  R1.append(TraceEventKind::TE_Extend, 55);
  R1.append(TraceEventKind::TE_Commit, 0);
  return dumpTrace(T);
}

TEST(TraceTest, ChromeExportIsBalancedAndTagged) {
  TraceDump Dump = makeSampleDump();
  EXPECT_EQ(Dump.eventCount(), 14u);
  std::string Json;
  StringOStream OS(Json);
  writeChromeTraceJson(OS, Dump);

  auto CountSub = [&Json](const std::string &Needle) {
    size_t N = 0;
    for (size_t At = Json.find(Needle); At != std::string::npos;
         At = Json.find(Needle, At + Needle.size()))
      ++N;
    return N;
  };
  EXPECT_NE(Json.find("\"schema\":\"ptm-trace-v1\""), std::string::npos);
  EXPECT_NE(Json.find("\"time_unit\":\"us\""), std::string::npos);
  // Balanced B/E pairs: 3 transactions + 2 tryCommit phases.
  EXPECT_EQ(CountSub("\"ph\":\"B\""), 5u);
  EXPECT_EQ(CountSub("\"ph\":\"E\""), 5u);
  EXPECT_EQ(CountSub("\"ph\":\"i\""), 6u); // 3 reads, 1 write, pin, extend.
  EXPECT_EQ(CountSub("\"outcome\":\"commit\""), 2u);
  EXPECT_EQ(CountSub("\"outcome\":\"abort\""), 1u);
  EXPECT_NE(Json.find("\"cause\":\"commit-validation\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"txn-ro\""), std::string::npos);
}

TEST(TraceTest, ChromeExportClosesDanglingOpensFromOverwrite) {
  // A ring that lost its begin events must still export balanced pairs
  // (the gate's stack-discipline check would fail otherwise).
  Tracer T(1, 4);
  TraceRing &R = T.ring(0);
  for (int Txn = 0; Txn < 3; ++Txn) {
    R.append(TraceEventKind::TE_TxBegin, 0);
    R.append(TraceEventKind::TE_Read, 1);
    R.append(TraceEventKind::TE_TryCommit, 0);
    R.append(TraceEventKind::TE_Commit, 0);
  }
  R.append(TraceEventKind::TE_TxBegin, 0); // Dangling: no outcome yet.
  R.append(TraceEventKind::TE_Read, 2);
  TraceDump Dump = dumpTrace(T);
  EXPECT_GT(Dump.Threads.at(0).Dropped, 0u);
  std::string Json;
  StringOStream OS(Json);
  writeChromeTraceJson(OS, Dump);
  size_t Begins = 0, Ends = 0;
  for (size_t At = Json.find("\"ph\":\"B\""); At != std::string::npos;
       At = Json.find("\"ph\":\"B\"", At + 1))
    ++Begins;
  for (size_t At = Json.find("\"ph\":\"E\""); At != std::string::npos;
       At = Json.find("\"ph\":\"E\"", At + 1))
    ++Ends;
  EXPECT_EQ(Begins, Ends);
}

TEST(TraceTest, BinaryRoundTripReproducesTheDump) {
  TraceDump Dump = makeSampleDump();
  std::vector<uint8_t> Bin = serializeTraceBinary(Dump);
  TraceDump Back;
  ASSERT_TRUE(deserializeTraceBinary(Bin.data(), Bin.size(), Back));
  ASSERT_EQ(Back.Threads.size(), Dump.Threads.size());
  for (size_t T = 0; T < Dump.Threads.size(); ++T) {
    EXPECT_EQ(Back.Threads[T].Tid, Dump.Threads[T].Tid);
    EXPECT_EQ(Back.Threads[T].Dropped, Dump.Threads[T].Dropped);
    ASSERT_EQ(Back.Threads[T].Events.size(), Dump.Threads[T].Events.size());
    for (size_t I = 0; I < Dump.Threads[T].Events.size(); ++I) {
      EXPECT_EQ(Back.Threads[T].Events[I].TimeNs,
                Dump.Threads[T].Events[I].TimeNs);
      EXPECT_EQ(Back.Threads[T].Events[I].Arg,
                Dump.Threads[T].Events[I].Arg);
      EXPECT_EQ(Back.Threads[T].Events[I].Kind,
                Dump.Threads[T].Events[I].Kind);
    }
  }
}

TEST(TraceTest, BinaryDeserializeRejectsMalformedInput) {
  TraceDump Dump = makeSampleDump();
  std::vector<uint8_t> Bin = serializeTraceBinary(Dump);
  TraceDump Out;
  // Truncations at every prefix length must fail cleanly, not crash.
  for (size_t Size = 0; Size < Bin.size(); Size += 7)
    EXPECT_FALSE(deserializeTraceBinary(Bin.data(), Size, Out))
        << "accepted a truncation to " << Size << " bytes";
  // Corrupt magic.
  std::vector<uint8_t> Bad = Bin;
  Bad[0] ^= 0xff;
  EXPECT_FALSE(deserializeTraceBinary(Bad.data(), Bad.size(), Out));
  // An event-kind byte beyond the enum.
  Bad = Bin;
  Bad.back() = 0xee; // Last byte of the last event is its Kind.
  EXPECT_FALSE(deserializeTraceBinary(Bad.data(), Bad.size(), Out));
  // Trailing garbage.
  Bad = Bin;
  Bad.push_back(0);
  EXPECT_FALSE(deserializeTraceBinary(Bad.data(), Bad.size(), Out));
  // The pristine buffer still parses (the mutations above copied).
  EXPECT_TRUE(deserializeTraceBinary(Bin.data(), Bin.size(), Out));
}

//===----------------------------------------------------------------------===//
// Pinned abort-cause names
//===----------------------------------------------------------------------===//

TEST(AbortCauseTest, NamesAreExhaustiveAndDistinct) {
  std::set<std::string> Names;
  for (unsigned C = 0; C < kNumAbortCauses; ++C) {
    const char *Name = abortCauseName(static_cast<AbortCause>(C));
    ASSERT_NE(Name, nullptr) << "cause " << C;
    EXPECT_NE(*Name, '\0') << "cause " << C;
    EXPECT_TRUE(Names.insert(Name).second)
        << "duplicate abort cause name '" << Name << "'";
  }
}

TEST(AbortCauseTest, TmStatsAggregationMatchesHandSummation) {
  TmStats A, B;
  A.Commits = 10;
  A.Aborts[static_cast<unsigned>(AbortCause::AC_ReadValidation)] = 3;
  B.Commits = 5;
  B.Aborts[static_cast<unsigned>(AbortCause::AC_ReadValidation)] = 2;
  B.Aborts[static_cast<unsigned>(AbortCause::AC_LockHeld)] = 4;
  TmStats Sum = A + B;
  EXPECT_EQ(Sum.Commits, 15u);
  EXPECT_EQ(Sum.totalAborts(), 9u);
  EXPECT_DOUBLE_EQ(Sum.abortRatio(), 9.0 / 24.0);
  A += B;
  EXPECT_EQ(A.Commits, Sum.Commits);
  EXPECT_EQ(A.totalAborts(), Sum.totalAborts());
}

//===----------------------------------------------------------------------===//
// Live statsSnapshot() on every TM kind
//===----------------------------------------------------------------------===//

class ObsStatsTest : public ::testing::TestWithParam<TmKind> {};

std::string paramName(const ::testing::TestParamInfo<TmKind> &Info) {
  std::string Name = tmKindName(Info.param);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

// statsSnapshot() may be called while transactions run (no quiescence
// assert), must be monotone in commits, and must equal the exact
// quiescent stats() once the workload joins.
TEST_P(ObsStatsTest, SnapshotIsLiveMonotoneAndConvergesToStats) {
  constexpr unsigned kThreads = 4;
  auto M = createTm(GetParam(), /*NumObjects=*/8, kThreads);
  std::atomic<bool> Done{false};
  uint64_t LastCommits = 0;
  uint64_t Polls = 0;
  std::thread Poller([&] {
    while (!Done.load(std::memory_order_acquire)) {
      TmStats Live = M->statsSnapshot();
      EXPECT_GE(Live.Commits, LastCommits) << "live commits ran backwards";
      LastCommits = Live.Commits;
      ++Polls;
      std::this_thread::yield();
    }
  });
  RunResult R = runHotspot(*M, kThreads, 3000);
  Done.store(true, std::memory_order_release);
  Poller.join();
  EXPECT_GT(Polls, 0u);

  TmStats Live = M->statsSnapshot();
  TmStats Exact = M->stats();
  EXPECT_EQ(Live.Commits, Exact.Commits);
  EXPECT_EQ(Live.totalAborts(), Exact.totalAborts());
  for (unsigned C = 0; C < kNumAbortCauses; ++C)
    EXPECT_EQ(Live.Aborts[C], Exact.Aborts[C]) << abortCauseName(
        static_cast<AbortCause>(C));
  EXPECT_EQ(Exact.Commits, R.Commits);
}

INSTANTIATE_TEST_SUITE_P(AllTms, ObsStatsTest,
                         ::testing::ValuesIn(allTmKinds()), paramName);

} // namespace
