//===-- tests/WalTest.cpp - Write-ahead log durability tests --------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// The kv/Wal.h contracts: append/recover round trips, the torn-tail
/// differential (truncating the log at EVERY byte offset of the final
/// record recovers either the pre-batch or the post-batch store state,
/// never a mix — the crash-atomicity oracle), CRC corruption stopping a
/// file's valid prefix, open() discarding torn tails for good, and the
/// KvStore integration: synchronous single-key updates, multi-key
/// batches (one record, all-or-nothing), and executor batches all
/// replay to exactly the state the live store held.
///
//===----------------------------------------------------------------------===//

#include "kv/Kv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <unistd.h>
#include <vector>

using namespace ptm;
using namespace ptm::kv;

namespace {

/// A throwaway directory, recursively removed on destruction. The WAL
/// only ever creates flat `shard-<i>.wal` files, so flat cleanup is
/// enough.
class TempDir {
public:
  TempDir() {
    char Template[] = "/tmp/ptm-wal-test-XXXXXX";
    const char *Got = ::mkdtemp(Template);
    EXPECT_NE(Got, nullptr);
    Path_ = Got ? Got : "";
  }

  ~TempDir() {
    if (Path_.empty())
      return;
    for (unsigned S = 0; S < 64; ++S)
      std::remove(Wal::shardFilePath(Path_, S).c_str());
    ::rmdir(Path_.c_str());
  }

  const std::string &path() const { return Path_; }

private:
  std::string Path_;
};

/// Reads a shard file's raw bytes (empty when absent).
std::vector<uint8_t> readFile(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (F == nullptr)
    return Bytes;
  uint8_t Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  std::fclose(F);
  return Bytes;
}

void writeFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  if (!Bytes.empty()) {
    ASSERT_EQ(std::fwrite(Bytes.data(), 1, Bytes.size(), F), Bytes.size());
  }
  ASSERT_EQ(std::fclose(F), 0);
}

/// The model a recovered store must match: key -> value.
using Model = std::map<uint64_t, uint64_t>;

void applyRecord(Model &M, const WalRecord &R) {
  for (const WalWrite &W : R.Writes) {
    if (W.HasValue)
      M[W.Key] = W.Value;
    else
      M.erase(W.Key);
  }
}

/// Replays \p Records into a fresh store and samples it as a Model.
Model replayToModel(const std::vector<WalRecord> &Records,
                    unsigned ShardCount = 4) {
  KvConfig Cfg;
  Cfg.ShardCount = ShardCount;
  Cfg.BucketsPerShard = 16;
  Cfg.CapacityPerShard = 4096;
  Cfg.MaxThreads = 2;
  auto Store = KvStore::create(Cfg);
  EXPECT_NE(Store, nullptr);
  EXPECT_EQ(Store->replayWal(Records), KvStatus::Ok);
  Model M;
  for (unsigned S = 0; S < Store->shardCount(); ++S)
    for (auto &[K, V] : Store->sampleShard(S))
      M[K] = V;
  return M;
}

/// Samples a live (quiescent) store as a Model.
Model storeModel(const KvStore &Store) {
  Model M;
  for (unsigned S = 0; S < Store.shardCount(); ++S)
    for (auto &[K, V] : Store.sampleShard(S))
      M[K] = V;
  return M;
}

//===----------------------------------------------------------------------===//
// Append / recover round trips
//===----------------------------------------------------------------------===//

TEST(WalTest, FreshDirectoryRecoversEmpty) {
  TempDir Dir;
  WalRecovery R = Wal::recover(Dir.path(), 4);
  EXPECT_TRUE(R.Ok);
  EXPECT_TRUE(R.Records.empty());
  EXPECT_EQ(R.MaxLsn, 0u);
  EXPECT_EQ(R.TornBytes, 0u);
}

TEST(WalTest, OpenOnMissingDirectoryFails) {
  EXPECT_EQ(Wal::open("/tmp/ptm-wal-test-does-not-exist-xyzzy", 2,
                      WalRecovery{}),
            nullptr);
}

TEST(WalTest, AppendRecoverRoundTrip) {
  TempDir Dir;
  {
    auto W = Wal::open(Dir.path(), 4, Wal::recover(Dir.path(), 4));
    ASSERT_NE(W, nullptr);
    EXPECT_EQ(W->appendBatch(0, {{1, true, 10}, {2, true, 20}}),
              KvStatus::Ok);
    EXPECT_EQ(W->appendBatch(3, {{7, false, 0}}), KvStatus::Ok);
    EXPECT_EQ(W->appendBatch(1, {{5, true, 50}}), KvStatus::Ok);
    EXPECT_EQ(W->nextLsn(), 4u);
    obs::MetricsSnapshot Telemetry = W->telemetry();
    EXPECT_EQ(Telemetry.counter("wal.appends"), 3u);
    EXPECT_GT(Telemetry.counter("wal.bytes"), 0u);
    EXPECT_EQ(Telemetry.counter("wal.io_errors"), 0u);
    const obs::HistogramSnapshot *AppendNs =
        Telemetry.histogram("wal.append_ns");
    ASSERT_NE(AppendNs, nullptr);
    EXPECT_EQ(AppendNs->Count, 3u);
  }
  WalRecovery R = Wal::recover(Dir.path(), 4);
  ASSERT_TRUE(R.Ok);
  ASSERT_EQ(R.Records.size(), 3u);
  // Sorted by LSN = append order, whatever file each landed in.
  EXPECT_EQ(R.Records[0].Lsn, 1u);
  EXPECT_EQ(R.Records[0].ShardIdx, 0u);
  EXPECT_EQ(R.Records[0].Writes,
            (std::vector<WalWrite>{{1, true, 10}, {2, true, 20}}));
  EXPECT_EQ(R.Records[1].Lsn, 2u);
  EXPECT_EQ(R.Records[1].Writes, (std::vector<WalWrite>{{7, false, 0}}));
  EXPECT_EQ(R.Records[2].Lsn, 3u);
  EXPECT_EQ(R.MaxLsn, 3u);
  EXPECT_EQ(R.TornBytes, 0u);
}

TEST(WalTest, EmptyBatchesAreNotAppended) {
  TempDir Dir;
  {
    auto W = Wal::open(Dir.path(), 2, Wal::recover(Dir.path(), 2));
    ASSERT_NE(W, nullptr);
    EXPECT_EQ(W->appendBatch(0, {}), KvStatus::Ok);
    EXPECT_EQ(W->nextLsn(), 1u);
  }
  WalRecovery R = Wal::recover(Dir.path(), 2);
  EXPECT_TRUE(R.Ok);
  EXPECT_TRUE(R.Records.empty());
}

TEST(WalTest, ReopenContinuesAfterHighestLsn) {
  TempDir Dir;
  {
    auto W = Wal::open(Dir.path(), 2, Wal::recover(Dir.path(), 2));
    ASSERT_NE(W, nullptr);
    EXPECT_EQ(W->appendBatch(0, {{1, true, 1}}), KvStatus::Ok);
    EXPECT_EQ(W->appendBatch(1, {{2, true, 2}}), KvStatus::Ok);
  }
  {
    WalRecovery R = Wal::recover(Dir.path(), 2);
    ASSERT_TRUE(R.Ok);
    auto W = Wal::open(Dir.path(), 2, R);
    ASSERT_NE(W, nullptr);
    EXPECT_EQ(W->nextLsn(), 3u);
    EXPECT_EQ(W->appendBatch(0, {{3, true, 3}}), KvStatus::Ok);
  }
  WalRecovery R = Wal::recover(Dir.path(), 2);
  ASSERT_TRUE(R.Ok);
  ASSERT_EQ(R.Records.size(), 3u);
  EXPECT_EQ(R.Records[2].Lsn, 3u);
  EXPECT_EQ(R.Records[2].Writes, (std::vector<WalWrite>{{3, true, 3}}));
}

//===----------------------------------------------------------------------===//
// Corruption and torn tails
//===----------------------------------------------------------------------===//

TEST(WalTest, ForeignMagicFailsRecovery) {
  TempDir Dir;
  writeFile(Wal::shardFilePath(Dir.path(), 0),
            {'N', 'O', 'T', 'A', 'W', 'A', 'L', '!', 1, 0, 0, 0, 0, 0, 0,
             0});
  EXPECT_FALSE(Wal::recover(Dir.path(), 1).Ok);
}

TEST(WalTest, CorruptRecordStopsTheFilePrefix) {
  TempDir Dir;
  {
    auto W = Wal::open(Dir.path(), 1, Wal::recover(Dir.path(), 1));
    ASSERT_NE(W, nullptr);
    for (uint64_t I = 0; I < 3; ++I)
      ASSERT_EQ(W->appendBatch(0, {{I, true, 100 + I}}), KvStatus::Ok);
  }
  std::string Path = Wal::shardFilePath(Dir.path(), 0);
  std::vector<uint8_t> Bytes = readFile(Path);
  // Flip one payload byte of the SECOND record: recovery must keep only
  // the first, even though the third is intact — append-only discipline
  // (a mid-file hole would mean lost acknowledged writes; better to
  // surface the shorter durable prefix than to silently skip).
  size_t RecordBytes = (Bytes.size() - 16) / 3;
  Bytes[16 + RecordBytes + RecordBytes / 2] ^= 0xff;
  writeFile(Path, Bytes);
  WalRecovery R = Wal::recover(Dir.path(), 1);
  ASSERT_TRUE(R.Ok);
  ASSERT_EQ(R.Records.size(), 1u);
  EXPECT_EQ(R.Records[0].Writes, (std::vector<WalWrite>{{0, true, 100}}));
  EXPECT_EQ(R.TornBytes, 2 * RecordBytes);
}

TEST(WalTest, TornTailTruncatedAtEveryByteOffset) {
  // The differential at the heart of the durability claim: write three
  // batches, then chop the file at EVERY byte length from zero to full.
  // Whatever the cut, recovery must yield an exact prefix of the batch
  // sequence — the final batch is wholly there or wholly gone — and the
  // replayed store must equal the model after exactly that prefix.
  TempDir Dir;
  std::vector<std::vector<WalWrite>> Batches = {
      {{1, true, 11}, {2, true, 22}},
      {{1, true, 111}, {3, true, 33}},
      {{2, false, 0}, {4, true, 44}},
  };
  {
    auto W = Wal::open(Dir.path(), 1, Wal::recover(Dir.path(), 1));
    ASSERT_NE(W, nullptr);
    for (const auto &B : Batches)
      ASSERT_EQ(W->appendBatch(0, B), KvStatus::Ok);
  }
  std::string Path = Wal::shardFilePath(Dir.path(), 0);
  std::vector<uint8_t> Full = readFile(Path);
  ASSERT_GT(Full.size(), 16u);

  // The models after 0, 1, 2, 3 batches.
  std::vector<Model> Prefixes(1);
  for (size_t I = 0; I < Batches.size(); ++I) {
    Model M = Prefixes.back();
    WalRecord R;
    R.Writes = Batches[I];
    applyRecord(M, R);
    Prefixes.push_back(M);
  }

  for (size_t Cut = 0; Cut <= Full.size(); ++Cut) {
    writeFile(Path, std::vector<uint8_t>(Full.begin(),
                                         Full.begin() +
                                             static_cast<ptrdiff_t>(Cut)));
    WalRecovery R = Wal::recover(Dir.path(), 1);
    ASSERT_TRUE(R.Ok) << "cut at " << Cut;
    ASSERT_LE(R.Records.size(), Batches.size()) << "cut at " << Cut;
    for (size_t I = 0; I < R.Records.size(); ++I)
      ASSERT_EQ(R.Records[I].Writes, Batches[I])
          << "partial batch surfaced at cut " << Cut;
    // Store-level: the replayed state is one of the four prefix states,
    // never a blend (e.g. key 4 present while key 2 still is).
    EXPECT_EQ(replayToModel(R.Records, 1), Prefixes[R.Records.size()])
        << "cut at " << Cut;
    // Accounting: every byte past the valid prefix was reported torn.
    if (Cut >= 16) {
      ASSERT_EQ(R.ValidBytes.size(), 1u);
      EXPECT_EQ(R.TornBytes, Cut - R.ValidBytes[0]) << "cut at " << Cut;
    }
  }
}

TEST(WalTest, OpenDropsTornTailForGood) {
  TempDir Dir;
  {
    auto W = Wal::open(Dir.path(), 1, Wal::recover(Dir.path(), 1));
    ASSERT_NE(W, nullptr);
    ASSERT_EQ(W->appendBatch(0, {{1, true, 1}}), KvStatus::Ok);
    ASSERT_EQ(W->appendBatch(0, {{2, true, 2}}), KvStatus::Ok);
  }
  std::string Path = Wal::shardFilePath(Dir.path(), 0);
  std::vector<uint8_t> Full = readFile(Path);
  // Tear the second record's last byte off, then reopen and append.
  writeFile(Path, std::vector<uint8_t>(Full.begin(), Full.end() - 1));
  {
    WalRecovery R = Wal::recover(Dir.path(), 1);
    ASSERT_TRUE(R.Ok);
    ASSERT_EQ(R.Records.size(), 1u);
    auto W = Wal::open(Dir.path(), 1, R);
    ASSERT_NE(W, nullptr);
    ASSERT_EQ(W->appendBatch(0, {{3, true, 3}}), KvStatus::Ok);
  }
  // The torn record must not resurrect: 1 then 3.
  WalRecovery R = Wal::recover(Dir.path(), 1);
  ASSERT_TRUE(R.Ok);
  ASSERT_EQ(R.Records.size(), 2u);
  EXPECT_EQ(R.Records[0].Writes, (std::vector<WalWrite>{{1, true, 1}}));
  EXPECT_EQ(R.Records[1].Writes, (std::vector<WalWrite>{{3, true, 3}}));
}

//===----------------------------------------------------------------------===//
// KvStore integration: log, crash, replay
//===----------------------------------------------------------------------===//

TEST(WalStoreTest, SynchronousOpsReplayExactly) {
  TempDir Dir;
  KvConfig Cfg;
  Cfg.ShardCount = 4;
  Cfg.BucketsPerShard = 16;
  Cfg.CapacityPerShard = 1024;
  Cfg.MaxThreads = 2;
  Model Expected;
  {
    auto Store = KvStore::create(Cfg);
    ASSERT_NE(Store, nullptr);
    auto W = Wal::open(Dir.path(), 4, Wal::recover(Dir.path(), 4));
    ASSERT_NE(W, nullptr);
    Store->attachWal(W.get());

    for (uint64_t K = 0; K < 64; ++K)
      ASSERT_TRUE(Store->put(0, K, K * 10).ok());
    ASSERT_TRUE(Store->erase(0, 7).ok());
    ASSERT_TRUE(Store->compareAndSwap(0, 8, 80, 888).ok());
    EXPECT_EQ(Store->compareAndSwap(0, 9, 42, 999).Status,
              KvStatus::CasMismatch); // Mismatch: must NOT be logged.
    EXPECT_EQ(Store->erase(0, 7777).Status, KvStatus::NotFound);
    ASSERT_EQ(Store->multiPut(0, {{100, 1}, {101, 2}, {102, 3}}),
              KvStatus::Ok);
    ASSERT_EQ(Store->readModifyWrite(
                  0, {100, 101},
                  [](std::vector<std::optional<uint64_t>> &V) {
                    V[0] = *V[0] + *V[1]; // 100 <- 3
                    V[1] = std::nullopt;  // erase 101
                  }),
              KvStatus::Ok);
    Expected = storeModel(*Store);
    Store->attachWal(nullptr);
  }
  WalRecovery R = Wal::recover(Dir.path(), 4);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(replayToModel(R.Records), Expected);
}

TEST(WalStoreTest, ExecutorBatchesReplayExactly) {
  TempDir Dir;
  KvConfig Cfg;
  Cfg.ShardCount = 4;
  Cfg.BucketsPerShard = 64;
  Cfg.CapacityPerShard = 4096;
  Cfg.MaxThreads = 4;
  Model Expected;
  {
    auto Store = KvStore::create(Cfg);
    ASSERT_NE(Store, nullptr);
    auto W = Wal::open(Dir.path(), 4, Wal::recover(Dir.path(), 4));
    ASSERT_NE(W, nullptr);
    Store->attachWal(W.get());

    RequestExecutor::Options EOpts;
    EOpts.Workers = 2;
    EOpts.QueueCapacity = 64;
    EOpts.MaxBatch = 8;
    RequestExecutor Exec(*Store, EOpts);
    std::vector<std::unique_ptr<KvRequest>> Reqs;
    for (uint64_t I = 0; I < 512; ++I) {
      auto R = std::make_unique<KvRequest>();
      switch (I % 4) {
      case 0:
      case 1:
        R->Op = KvOp::Put;
        R->Key = I % 97;
        R->Value = I;
        break;
      case 2:
        R->Op = KvOp::Erase;
        R->Key = (I + 2) % 97;
        break;
      default:
        R->Op = KvOp::Cas;
        R->Key = I % 97;
        R->Expected = I - 3; // Usually mismatches; sometimes swaps.
        R->Value = I + 1000;
        break;
      }
      Exec.submit(*R);
      Reqs.push_back(std::move(R));
    }
    Exec.drainAndStop();
    Expected = storeModel(*Store);
    Store->attachWal(nullptr);
  }
  WalRecovery R = Wal::recover(Dir.path(), 4);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(replayToModel(R.Records), Expected);
}

TEST(WalStoreTest, CrossShardBatchIsOneRecord) {
  TempDir Dir;
  KvConfig Cfg;
  Cfg.ShardCount = 8;
  Cfg.BucketsPerShard = 16;
  Cfg.CapacityPerShard = 256;
  Cfg.MaxThreads = 2;
  auto Store = KvStore::create(Cfg);
  ASSERT_NE(Store, nullptr);
  auto W = Wal::open(Dir.path(), 8, Wal::recover(Dir.path(), 8));
  ASSERT_NE(W, nullptr);
  Store->attachWal(W.get());
  // 16 keys spread over the shards: one multiPut, ONE record.
  std::vector<std::pair<uint64_t, uint64_t>> Pairs;
  for (uint64_t K = 0; K < 16; ++K)
    Pairs.emplace_back(K, K + 100);
  ASSERT_EQ(Store->multiPut(0, Pairs), KvStatus::Ok);
  Store->attachWal(nullptr);
  W.reset();

  WalRecovery R = Wal::recover(Dir.path(), 8);
  ASSERT_TRUE(R.Ok);
  ASSERT_EQ(R.Records.size(), 1u);
  EXPECT_EQ(R.Records[0].Writes.size(), 16u);
}

TEST(WalStoreTest, TornCrossShardBatchRecoversAllOrNothing) {
  // The never-torn oracle end to end: a cross-shard multiPut is one
  // record; truncating that record at every byte offset recovers either
  // the full batch or none of it — no observer ever sees half a batch,
  // even across a crash.
  TempDir Dir;
  KvConfig Cfg;
  Cfg.ShardCount = 4;
  Cfg.BucketsPerShard = 16;
  Cfg.CapacityPerShard = 256;
  Cfg.MaxThreads = 2;
  Model Pre, Post;
  {
    auto Store = KvStore::create(Cfg);
    ASSERT_NE(Store, nullptr);
    auto W = Wal::open(Dir.path(), 4, Wal::recover(Dir.path(), 4));
    ASSERT_NE(W, nullptr);
    Store->attachWal(W.get());
    ASSERT_EQ(Store->multiPut(0, {{0, 1}, {1, 1}, {2, 1}, {3, 1}}),
              KvStatus::Ok);
    Pre = storeModel(*Store);
    ASSERT_EQ(Store->multiPut(0, {{0, 2}, {1, 2}, {2, 2}, {3, 2}}),
              KvStatus::Ok);
    Post = storeModel(*Store);
    Store->attachWal(nullptr);
  }
  // Both records landed in the lowest involved shard's file (keys 0..3
  // cover several shards; the second batch's record follows the first).
  WalRecovery Whole = Wal::recover(Dir.path(), 4);
  ASSERT_TRUE(Whole.Ok);
  ASSERT_EQ(Whole.Records.size(), 2u);
  unsigned FileIdx = Whole.Records[1].ShardIdx;
  std::string Path = Wal::shardFilePath(Dir.path(), FileIdx);
  std::vector<uint8_t> Full = readFile(Path);
  ASSERT_GT(Full.size(), 16u);
  size_t SecondStart = 16 + (Full.size() - 16) / 2;

  for (size_t Cut = SecondStart; Cut <= Full.size(); ++Cut) {
    writeFile(Path, std::vector<uint8_t>(Full.begin(),
                                         Full.begin() +
                                             static_cast<ptrdiff_t>(Cut)));
    WalRecovery R = Wal::recover(Dir.path(), 4);
    ASSERT_TRUE(R.Ok) << "cut at " << Cut;
    Model Got = replayToModel(R.Records);
    EXPECT_TRUE(Got == Pre || Got == Post)
        << "torn batch surfaced at cut " << Cut;
  }
}

TEST(WalStoreTest, ReplayRejectsOversizedRecovery) {
  // Records that cannot fit the target store's geometry surface as
  // CapacityExhausted, not silent data loss.
  std::vector<WalRecord> Records;
  for (uint64_t K = 0; K < 512; ++K) {
    WalRecord R;
    R.Lsn = K + 1;
    R.Writes = {{K, true, K}};
    Records.push_back(R);
  }
  KvConfig Cfg;
  Cfg.ShardCount = 1;
  Cfg.BucketsPerShard = 4;
  Cfg.CapacityPerShard = 16; // Far too small for 512 distinct keys.
  Cfg.MaxThreads = 2;
  auto Store = KvStore::create(Cfg);
  ASSERT_NE(Store, nullptr);
  EXPECT_EQ(Store->replayWal(Records), KvStatus::CapacityExhausted);
}

} // namespace
