//===-- tests/ComplexityTest.cpp - Theorem 3 shapes as assertions ---------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// The paper's Theorem 3 complexity claims, verified deterministically on
/// sequential executions with the step-counting instrumentation:
///
///  (1) the weak-DAP invisible-read TM (orec-incr) pays Θ(i) steps for its
///      i-th t-read (incremental validation) and Θ(m²) for an m-read
///      transaction, while each TM that drops one hypothesis (tl2, norec,
///      orec-ts, tlrw, glock) reads in O(1) steps;
///  (2) orec-incr's last t-read + tryCommit touches at least m-1 distinct
///      base objects; tl2's touches O(1).
///
//===----------------------------------------------------------------------===//

#include "runtime/Instrumentation.h"
#include "stm/Stm.h"

#include <gtest/gtest.h>

#include <vector>

using namespace ptm;

namespace {

/// Runs one read-only transaction over objects [0, M) and returns the
/// per-read OpStats, plus the commit's stats in \p CommitStats.
std::vector<OpStats> measureReadOnlySweep(Tm &M, unsigned ReadSet,
                                          OpStats &CommitStats) {
  Instrumentation Instr(0);
  ScopedInstrumentation Scope(Instr);
  std::vector<OpStats> PerRead;
  PerRead.reserve(ReadSet);

  M.txBegin(0);
  for (ObjectId Obj = 0; Obj < ReadSet; ++Obj) {
    uint64_t V;
    Instr.beginOp();
    EXPECT_TRUE(M.txRead(0, Obj, V));
    PerRead.push_back(Instr.endOp());
  }
  Instr.beginOp();
  EXPECT_TRUE(M.txCommit(0));
  CommitStats = Instr.endOp();
  return PerRead;
}

uint64_t totalSteps(const std::vector<OpStats> &PerRead) {
  uint64_t Sum = 0;
  for (const OpStats &S : PerRead)
    Sum += S.Steps;
  return Sum;
}

} // namespace

TEST(Theorem3Step, SubjectTmsReadsGrowLinearly) {
  // Both weak-DAP invisible-read TMs (lazy and eager acquisition) are in
  // the theorem's class and must pay the incremental-validation price.
  constexpr unsigned M = 64;
  for (TmKind Kind : {TmKind::TK_OrecIncremental, TmKind::TK_OrecEager}) {
    auto Tm = createTm(Kind, M, 1);
    OpStats Commit;
    auto PerRead = measureReadOnlySweep(*Tm, M, Commit);

    // The i-th read (0-based index I) validates I earlier entries: at
    // least I steps beyond its own 3-step consistent read.
    for (unsigned I = 0; I < M; ++I) {
      EXPECT_GE(PerRead[I].Steps, I)
          << tmKindName(Kind) << ": read " << I << " skipped validation";
      EXPECT_LE(PerRead[I].Steps, I + 5)
          << tmKindName(Kind) << ": read " << I << " oddly expensive";
    }
    // Total is quadratic: at least m(m-1)/2 — the Theorem 3(1) bound.
    EXPECT_GE(totalSteps(PerRead), uint64_t{M} * (M - 1) / 2)
        << tmKindName(Kind);
  }
}

TEST(Theorem3Step, EscapeHatchTmsReadInConstantSteps) {
  constexpr unsigned M = 64;
  for (TmKind Kind : {TmKind::TK_Tl2, TmKind::TK_Norec, TmKind::TK_OrecTs,
                      TmKind::TK_Tlrw, TmKind::TK_GlobalLock,
                      TmKind::TK_Tml}) {
    auto Tm = createTm(Kind, M, 1);
    OpStats Commit;
    auto PerRead = measureReadOnlySweep(*Tm, M, Commit);
    for (unsigned I = 0; I < M; ++I)
      EXPECT_LE(PerRead[I].Steps, 8u)
          << tmKindName(Kind) << ": read " << I
          << " should be O(1), the TM dropped a Theorem 3 hypothesis";
    EXPECT_LE(totalSteps(PerRead), uint64_t{8} * M)
        << tmKindName(Kind) << " read-only transactions must be linear";
  }
}

TEST(Theorem3Step, QuadraticGapIsVisibleAtScale) {
  // The gap between the subject TM and an escape-hatch TM must widen
  // superlinearly with m.
  for (unsigned M : {16u, 64u, 256u}) {
    auto Subject = createTm(TmKind::TK_OrecIncremental, M, 1);
    auto Escape = createTm(TmKind::TK_Tl2, M, 1);
    OpStats C1, C2;
    uint64_t SubjectSteps = totalSteps(measureReadOnlySweep(*Subject, M, C1));
    uint64_t EscapeSteps = totalSteps(measureReadOnlySweep(*Escape, M, C2));
    double Ratio =
        static_cast<double>(SubjectSteps) / static_cast<double>(EscapeSteps);
    EXPECT_GE(Ratio, static_cast<double>(M) / 8.0)
        << "at m=" << M << " the quadratic/linear gap is too small";
  }
}

TEST(Theorem3Space, SubjectTmsLastReadTouchesLinearObjects) {
  constexpr unsigned M = 64;
  for (TmKind Kind : {TmKind::TK_OrecIncremental, TmKind::TK_OrecEager}) {
    auto Tm = createTm(Kind, M, 1);

    Instrumentation Instr(0);
    ScopedInstrumentation Scope(Instr);
    Tm->txBegin(0);
    uint64_t V;
    for (ObjectId Obj = 0; Obj + 1 < M; ++Obj)
      ASSERT_TRUE(Tm->txRead(0, Obj, V));

    // The m-th t-read plus tryCommit: Theorem 3(2) says ≥ m-1 distinct
    // base objects for this TM class.
    Instr.beginOp();
    ASSERT_TRUE(Tm->txRead(0, M - 1, V));
    ASSERT_TRUE(Tm->txCommit(0));
    OpStats Last = Instr.endOp();

    EXPECT_GE(Last.DistinctObjects, uint64_t{M - 1}) << tmKindName(Kind);
  }
}

TEST(Theorem3Space, ClockTmsLastReadTouchesConstantObjects) {
  constexpr unsigned M = 64;
  for (TmKind Kind : {TmKind::TK_Tl2, TmKind::TK_OrecTs}) {
    auto Tm = createTm(Kind, M, 1);

    Instrumentation Instr(0);
    ScopedInstrumentation Scope(Instr);
    Tm->txBegin(0);
    uint64_t V;
    for (ObjectId Obj = 0; Obj + 1 < M; ++Obj)
      ASSERT_TRUE(Tm->txRead(0, Obj, V));

    Instr.beginOp();
    ASSERT_TRUE(Tm->txRead(0, M - 1, V));
    ASSERT_TRUE(Tm->txCommit(0));
    OpStats Last = Instr.endOp();

    EXPECT_LE(Last.DistinctObjects, 4u)
        << tmKindName(Kind)
        << ": the global clock should make the last read O(1) in space";
  }
}

TEST(Theorem3Step, RepeatedReadsKeepReadSetsBounded) {
  // Regression (the old TL2 read set appended every read without dedup):
  // k repeated reads of one object must leave a one-entry read set, so
  // commit-time validation — forced by breaking the Wv == Rv+1 shortcut
  // with an unrelated commit — stays O(distinct objects), not O(k).
  for (TmKind Kind : {TmKind::TK_Tl2, TmKind::TK_OrecTs}) {
    auto Tm = createTm(Kind, 8, 2);

    Instrumentation Instr(0);
    ScopedInstrumentation Scope(Instr);
    Tm->txBegin(0);
    uint64_t V;
    for (int I = 0; I < 200; ++I)
      ASSERT_TRUE(Tm->txRead(0, 0, V)) << tmKindName(Kind);

    // A disjoint commit on another slot advances the global clock, so the
    // writer commit below cannot take the validation-skipping shortcut.
    Tm->txBegin(1);
    ASSERT_TRUE(Tm->txWrite(1, 5, 1));
    ASSERT_TRUE(Tm->txCommit(1));

    ASSERT_TRUE(Tm->txWrite(0, 1, 7)) << tmKindName(Kind);
    Instr.beginOp();
    ASSERT_TRUE(Tm->txCommit(0)) << tmKindName(Kind);
    OpStats Commit = Instr.endOp();

    // Lock + clock + validation of ONE read entry + publish + release:
    // a handful of steps. The un-dedup'd read set made this ~200.
    EXPECT_LE(Commit.Steps, 12u)
        << tmKindName(Kind)
        << ": commit validation walked an inflated read set";
  }
}

TEST(Theorem3Step, WriteSetSizeDoesNotInflateReadCost) {
  // Buffered writes are local bookkeeping; reading an object in the write
  // set must not touch shared memory at all for the lazy TMs.
  for (TmKind Kind : {TmKind::TK_Tl2, TmKind::TK_Norec,
                      TmKind::TK_OrecIncremental, TmKind::TK_OrecTs}) {
    auto Tm = createTm(Kind, 16, 1);
    Instrumentation Instr(0);
    ScopedInstrumentation Scope(Instr);
    Tm->txBegin(0);
    ASSERT_TRUE(Tm->txWrite(0, 3, 99));
    uint64_t V;
    Instr.beginOp();
    ASSERT_TRUE(Tm->txRead(0, 3, V));
    OpStats S = Instr.endOp();
    EXPECT_EQ(V, 99u);
    EXPECT_EQ(S.Steps, 0u)
        << tmKindName(Kind) << ": read-own-write hit shared memory";
    ASSERT_TRUE(Tm->txCommit(0));
  }
}

TEST(Theorem3Step, VisibleReadsApplyNontrivialPrimitives) {
  // TLRW's escape hatch is precisely that its reads are *visible*: each
  // first read of an object applies a nontrivial primitive (lock CAS).
  auto Tm = createTm(TmKind::TK_Tlrw, 8, 1);
  Instrumentation Instr(0);
  ScopedInstrumentation Scope(Instr);
  Tm->txBegin(0);
  uint64_t V;
  Instr.beginOp();
  ASSERT_TRUE(Tm->txRead(0, 0, V));
  OpStats S = Instr.endOp();
  EXPECT_GE(S.NontrivialSteps, 1u) << "TLRW reads must be visible";
  ASSERT_TRUE(Tm->txCommit(0));

  // By contrast the invisible-read TMs apply none.
  for (TmKind Kind : {TmKind::TK_Tl2, TmKind::TK_Norec,
                      TmKind::TK_OrecIncremental, TmKind::TK_OrecEager,
                      TmKind::TK_OrecTs, TmKind::TK_Tml}) {
    auto M2 = createTm(Kind, 8, 1);
    M2->txBegin(0);
    Instr.beginOp();
    ASSERT_TRUE(M2->txRead(0, 0, V));
    OpStats S2 = Instr.endOp();
    EXPECT_EQ(S2.NontrivialSteps, 0u)
        << tmKindName(Kind) << " reads must be invisible";
    ASSERT_TRUE(M2->txCommit(0));
  }
}
