//===-- tests/WorkloadTest.cpp - Workload runner tests ---------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "workload/Workload.h"

#include "stm/Stm.h"

#include <gtest/gtest.h>

using namespace ptm;

TEST(Workload, HotspotCountsExactly) {
  auto M = createTm(TmKind::TK_Tl2, 4, 4);
  RunResult R = runHotspot(*M, 3, 500);
  EXPECT_EQ(R.ValueChecksum, 1500u);
  EXPECT_EQ(R.Commits, 1500u);
  EXPECT_GT(R.Seconds, 0.0);
}

TEST(Workload, DisjointChecksumIsDeterministic) {
  auto M1 = createTm(TmKind::TK_Norec, 64, 4);
  auto M2 = createTm(TmKind::TK_Norec, 64, 4);
  RunResult A = runDisjoint(*M1, 4, 300, 16, 4, /*Seed=*/5);
  RunResult B = runDisjoint(*M2, 4, 300, 16, 4, /*Seed=*/5);
  EXPECT_EQ(A.ValueChecksum, B.ValueChecksum);
  EXPECT_EQ(A.ValueChecksum, 4u * 300u * 4u);
}

TEST(Workload, ZipfMixChecksumMatchesWriteCount) {
  auto M = createTm(TmKind::TK_Tlrw, 128, 4);
  RunResult R = runZipfMix(*M, 2, 400, 3, /*ReadProb=*/0.0, /*Theta=*/0.5,
                           /*Seed=*/9);
  EXPECT_EQ(R.Commits, 800u);
  EXPECT_EQ(R.ValueChecksum, 800u * 3u);
}

TEST(Workload, ZipfMixReadsOnlyLeavesMemoryUntouched) {
  auto M = createTm(TmKind::TK_OrecIncremental, 64, 2);
  RunResult R = runZipfMix(*M, 2, 200, 4, /*ReadProb=*/1.0, /*Theta=*/0.8,
                           /*Seed=*/13);
  EXPECT_EQ(R.Commits, 400u);
  EXPECT_EQ(R.ValueChecksum, 0u) << "pure readers must not modify objects";
}

TEST(Workload, BankConservesTotalAcrossSeeds) {
  for (uint64_t Seed : {1ull, 2ull, 3ull}) {
    auto M = createTm(TmKind::TK_GlobalLock, 16, 4);
    RunResult R = runBank(*M, 4, 400, /*InitialBalance=*/250, Seed);
    EXPECT_EQ(R.ValueChecksum, 16u * 250u) << "seed " << Seed;
  }
}

TEST(Workload, ReadSweepCommitsReaderTransactions) {
  auto M = createTm(TmKind::TK_Tl2, 64, 3);
  RunResult R = runReadSweepWithWriters(*M, 3, /*ReadSetSize=*/32,
                                        /*ReaderTxns=*/50, /*WriterTxns=*/200,
                                        /*Seed=*/21);
  EXPECT_GT(R.ValueChecksum, 0u) << "the reader never committed";
  EXPECT_LE(R.ValueChecksum, 50u);
}

TEST(Workload, SingleThreadRunsWork) {
  auto M = createTm(TmKind::TK_OrecIncremental, 16, 1);
  RunResult R = runHotspot(*M, 1, 100);
  EXPECT_EQ(R.ValueChecksum, 100u);
  EXPECT_EQ(R.Aborts, 0u);
}
