//===-- tests/RuntimeTest.cpp - BaseObject & instrumentation tests --------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "runtime/AccessKind.h"
#include "runtime/BaseObject.h"
#include "runtime/Instrumentation.h"
#include "stm/VersionClock.h"
#include "support/CacheAligned.h"
#include "support/Compiler.h"

#include <gtest/gtest.h>

using namespace ptm;

TEST(AccessKind, Classification) {
  EXPECT_FALSE(isNontrivial(AccessKind::AK_Read));
  EXPECT_TRUE(isNontrivial(AccessKind::AK_Write));
  EXPECT_TRUE(isNontrivial(AccessKind::AK_Cas));
  EXPECT_TRUE(isNontrivial(AccessKind::AK_FetchAdd));
  EXPECT_TRUE(isNontrivial(AccessKind::AK_Exchange));

  // Only CAS is conditional; FAA and swap are unconditional (the
  // distinction Theorem 9 hinges on).
  EXPECT_FALSE(isConditional(AccessKind::AK_Read));
  EXPECT_TRUE(isConditional(AccessKind::AK_Cas));
  EXPECT_FALSE(isConditional(AccessKind::AK_FetchAdd));
  EXPECT_FALSE(isConditional(AccessKind::AK_Exchange));
}

TEST(BaseObject, InitialValueAndIds) {
  BaseObject A(7), B(9);
  EXPECT_EQ(A.peek(), 7u);
  EXPECT_EQ(B.peek(), 9u);
  EXPECT_NE(A.id(), B.id());
}

TEST(BaseObject, PrimitiveSemantics) {
  BaseObject O(10);
  EXPECT_EQ(O.read(), 10u);

  O.write(20);
  EXPECT_EQ(O.read(), 20u);

  uint64_t Expected = 20;
  EXPECT_TRUE(O.compareAndSwap(Expected, 30));
  EXPECT_EQ(O.read(), 30u);

  Expected = 999;
  EXPECT_FALSE(O.compareAndSwap(Expected, 40));
  EXPECT_EQ(Expected, 30u) << "failed CAS reports the observed value";
  EXPECT_EQ(O.read(), 30u);

  EXPECT_EQ(O.fetchAdd(5), 30u);
  EXPECT_EQ(O.read(), 35u);

  EXPECT_EQ(O.exchange(50), 35u);
  EXPECT_EQ(O.read(), 50u);
}

TEST(BaseObject, HomeAssignment) {
  BaseObject O(0);
  EXPECT_EQ(O.home(), kNoThread);
  O.setHome(3);
  EXPECT_EQ(O.home(), 3u);
  BaseObject Homed(1, /*Home=*/2);
  EXPECT_EQ(Homed.home(), 2u);
}

TEST(Instrumentation, NoContextMeansNoCounting) {
  EXPECT_EQ(Instrumentation::current(), nullptr);
  BaseObject O(0);
  O.write(1);
  EXPECT_EQ(O.read(), 1u); // Simply must not crash.
}

TEST(Instrumentation, CountsStepsAndNontrivial) {
  Instrumentation Instr(0);
  ScopedInstrumentation Scope(Instr);
  BaseObject O(0);

  (void)O.read();
  O.write(1);
  uint64_t E = 1;
  (void)O.compareAndSwap(E, 2);
  (void)O.fetchAdd(1);
  (void)O.exchange(9);

  EXPECT_EQ(Instr.totalSteps(), 5u);
  EXPECT_EQ(Instr.totalNontrivialSteps(), 4u);
}

TEST(Instrumentation, PerOpDistinctObjects) {
  Instrumentation Instr(0);
  ScopedInstrumentation Scope(Instr);
  BaseObject A(0), B(0), C(0);

  Instr.beginOp();
  (void)A.read();
  (void)A.read();
  (void)B.read();
  B.write(1);
  (void)C.read();
  OpStats Stats = Instr.endOp();

  EXPECT_EQ(Stats.Steps, 5u);
  EXPECT_EQ(Stats.NontrivialSteps, 1u);
  EXPECT_EQ(Stats.DistinctObjects, 3u);
}

TEST(Instrumentation, OpsAreIndependent) {
  Instrumentation Instr(0);
  ScopedInstrumentation Scope(Instr);
  BaseObject A(0);

  Instr.beginOp();
  (void)A.read();
  OpStats First = Instr.endOp();
  EXPECT_EQ(First.Steps, 1u);

  Instr.beginOp();
  OpStats Second = Instr.endOp();
  EXPECT_EQ(Second.Steps, 0u);
  EXPECT_EQ(Second.DistinctObjects, 0u);

  // Totals keep accumulating across ops.
  EXPECT_EQ(Instr.totalSteps(), 1u);
}

TEST(Instrumentation, AccessesOutsideOpsStillCountTotals) {
  Instrumentation Instr(0);
  ScopedInstrumentation Scope(Instr);
  BaseObject A(0);
  (void)A.read();
  Instr.beginOp();
  OpStats Stats = Instr.endOp();
  EXPECT_EQ(Stats.Steps, 0u);
  EXPECT_EQ(Instr.totalSteps(), 1u);
}

TEST(Instrumentation, ResetTotals) {
  Instrumentation Instr(0);
  ScopedInstrumentation Scope(Instr);
  BaseObject A(0);
  (void)A.read();
  Instr.resetTotals();
  EXPECT_EQ(Instr.totalSteps(), 0u);
  EXPECT_EQ(Instr.totalNontrivialSteps(), 0u);
  EXPECT_EQ(Instr.totalRmrs(), 0u);
}

TEST(Instrumentation, ScopesNestAndRestore) {
  BaseObject O(0);
  Instrumentation Outer(0), Inner(1);
  {
    ScopedInstrumentation S1(Outer);
    (void)O.read();
    {
      ScopedInstrumentation S2(Inner);
      (void)O.read();
      (void)O.read();
      EXPECT_EQ(Instrumentation::current(), &Inner);
    }
    EXPECT_EQ(Instrumentation::current(), &Outer);
    (void)O.read();
  }
  EXPECT_EQ(Instrumentation::current(), nullptr);
  EXPECT_EQ(Outer.totalSteps(), 2u);
  EXPECT_EQ(Inner.totalSteps(), 2u);
}

//===----------------------------------------------------------------------===//
// MpmcQueue — the bounded request channel of the KV service layer
//===----------------------------------------------------------------------===//

#include "runtime/MpmcQueue.h"

#include <atomic>
#include <thread>
#include <vector>

TEST(MpmcQueue, FifoWithinCapacity) {
  MpmcQueue<uint64_t> Q(8);
  EXPECT_EQ(Q.capacity(), 8u);
  for (uint64_t I = 0; I < 8; ++I)
    EXPECT_TRUE(Q.tryPush(I));
  EXPECT_FALSE(Q.tryPush(99)) << "ninth push must report full";
  for (uint64_t I = 0; I < 8; ++I) {
    uint64_t V = 0;
    ASSERT_TRUE(Q.tryPop(V));
    EXPECT_EQ(V, I) << "single-producer pops must be FIFO";
  }
  uint64_t V = 0;
  EXPECT_FALSE(Q.tryPop(V)) << "empty pop must report empty";
}

TEST(MpmcQueue, WrapsAroundManyLaps) {
  MpmcQueue<uint64_t> Q(4);
  uint64_t Next = 0;
  for (uint64_t Lap = 0; Lap < 100; ++Lap) {
    for (uint64_t I = 0; I < 3; ++I)
      ASSERT_TRUE(Q.tryPush(Lap * 3 + I));
    for (uint64_t I = 0; I < 3; ++I) {
      uint64_t V = 0;
      ASSERT_TRUE(Q.tryPop(V));
      ASSERT_EQ(V, Next++);
    }
  }
  EXPECT_TRUE(Q.approxEmpty());
}

TEST(MpmcQueue, ConcurrentProducersConsumersLoseNothing) {
  constexpr unsigned kProducers = 2, kConsumers = 2;
  constexpr uint64_t kPerProducer = 8000;
  MpmcQueue<uint64_t> Q(64);
  std::atomic<uint64_t> Sum{0}, Popped{0};

  std::vector<std::thread> Threads;
  for (unsigned P = 0; P < kProducers; ++P) {
    Threads.emplace_back([&, P] {
      for (uint64_t I = 0; I < kPerProducer; ++I) {
        uint64_t Item = P * kPerProducer + I + 1;
        while (!Q.tryPush(Item))
          std::this_thread::yield();
      }
    });
  }
  for (unsigned C = 0; C < kConsumers; ++C) {
    Threads.emplace_back([&] {
      // Every pop publishes immediately: the exit condition must never
      // depend on another consumer flushing a local counter, or two
      // consumers can wait on each other's residuals forever.
      while (Popped.load() < kProducers * kPerProducer) {
        uint64_t V = 0;
        if (Q.tryPop(V)) {
          Sum.fetch_add(V);
          Popped.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread &W : Threads)
    W.join();

  const uint64_t Total = kProducers * kPerProducer;
  EXPECT_EQ(Popped.load(), Total);
  EXPECT_EQ(Sum.load(), Total * (Total + 1) / 2)
      << "every pushed item must be popped exactly once";
}

TEST(MpmcQueue, PerProducerOrderIsPreserved) {
  // Items carry (producer, sequence); any interleaving is legal but each
  // producer's own items must pop in increasing sequence order — the
  // property the RequestExecutor's per-client FIFO rests on.
  constexpr unsigned kProducers = 3;
  constexpr uint64_t kPerProducer = 4000;
  MpmcQueue<uint64_t> Q(32);
  std::vector<std::thread> Producers;
  for (unsigned P = 0; P < kProducers; ++P) {
    Producers.emplace_back([&, P] {
      for (uint64_t I = 0; I < kPerProducer; ++I) {
        uint64_t Item = (uint64_t{P} << 32) | I;
        while (!Q.tryPush(Item))
          std::this_thread::yield();
      }
    });
  }
  uint64_t LastSeq[kProducers];
  bool Seen[kProducers] = {};
  uint64_t Count = 0;
  while (Count < kProducers * kPerProducer) {
    uint64_t V = 0;
    if (!Q.tryPop(V)) {
      std::this_thread::yield(); // Keep the producers running on small hosts.
      continue;
    }
    ++Count;
    unsigned P = static_cast<unsigned>(V >> 32);
    uint64_t Seq = V & 0xffffffffu;
    ASSERT_LT(P, kProducers);
    if (Seen[P]) {
      ASSERT_GT(Seq, LastSeq[P]) << "producer " << P << " reordered";
    }
    Seen[P] = true;
    LastSeq[P] = Seq;
  }
  for (std::thread &W : Producers)
    W.join();
}

//===----------------------------------------------------------------------===//
// Cache-line isolation of hot shared state
//===----------------------------------------------------------------------===//

// Two hot words share a cache line iff their line indices collide.
static uintptr_t lineOf(const void *P) {
  return reinterpret_cast<uintptr_t>(P) / PTM_CACHELINE_SIZE;
}

TEST(CacheAligned, AdjacentElementsNeverShareALine) {
  // The compile-time guarantees (cache_aligned_isolated_v) made concrete:
  // in an array of padded hot words — the layout of every per-thread
  // clock cell, CM penalty slot and sharded counter in the tree — no two
  // elements land on one line, so a writer never invalidates its
  // neighbour's line.
  std::vector<CacheAligned<std::atomic<uint64_t>>> Cells(8);
  for (size_t I = 0; I + 1 < Cells.size(); ++I) {
    EXPECT_NE(lineOf(&Cells[I]), lineOf(&Cells[I + 1]));
    // The whole element, not just its first byte, stays on its own
    // line(s): the next element starts past this one's padding.
    EXPECT_GE(reinterpret_cast<uintptr_t>(&Cells[I + 1]) -
                  reinterpret_cast<uintptr_t>(&Cells[I]),
              static_cast<uintptr_t>(PTM_CACHELINE_SIZE));
  }
}

TEST(CacheAligned, HotTmGlobalsOwnTheirLines) {
  // The audit behind the padding pass: the hot globals a contended
  // commit touches — the version clock's cells and the CM's per-thread
  // telemetry cells — must not false-share with each other or with the
  // value array. Exact layouts are private, so probe the public
  // surfaces: distinct sharded-clock cells are written by distinct
  // threads, and two consecutive commit stamps from different threads
  // must not serialize through one line (observable here only as the
  // alignment contract on the building blocks).
  static_assert(cache_aligned_isolated_v<std::atomic<uint64_t>>,
                "a padded hot word must own its line(s)");
  static_assert(alignof(CacheAligned<char>) == PTM_CACHELINE_SIZE,
                "padding must not over-align small types");
  // BaseObject values and clock cells are interleaved in the TMs'
  // arrays; a heap-allocated clock must start on its own line so cell 0
  // cannot share a line with a preceding allocation's tail.
  auto C = createVersionClock(ClockKind::CK_Sharded, 4);
  ASSERT_NE(C, nullptr);
  auto D = createVersionClock(ClockKind::CK_Gv1, 4);
  ASSERT_NE(D, nullptr);
  // Two clocks never alias storage: stamping one must not move the other.
  uint64_t Before = D->peek();
  (void)C->commitStamp(0);
  (void)C->commitStamp(1);
  EXPECT_EQ(D->peek(), Before);
}
