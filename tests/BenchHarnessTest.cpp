//===-- tests/BenchHarnessTest.cpp - Benchmark harness unit tests ---------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// Tests for the shared benchmark harness (src/bench/): repetition
/// statistics on known samples, JSON escaping and well-formedness (checked
/// with a tiny recursive-descent validator carried by this test), registry
/// filter matching, CLI parsing, and determinism of the smoke-mode
/// pipeline on synthetic benchmarks.
///
//===----------------------------------------------------------------------===//

#include "bench/Bench.h"
#include "support/RawOStream.h"

#include "gtest/gtest.h"

#include <cctype>
#include <cmath>
#include <cstring>
#include <limits>

using namespace ptm;
using namespace ptm::bench;

namespace {

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(StatsTest, KnownSamples) {
  SampleStats S = SampleStats::compute({4.0, 1.0, 3.0, 2.0, 5.0});
  EXPECT_EQ(S.reps(), 5u);
  EXPECT_DOUBLE_EQ(S.Min, 1.0);
  EXPECT_DOUBLE_EQ(S.Max, 5.0);
  EXPECT_DOUBLE_EQ(S.Mean, 3.0);
  EXPECT_DOUBLE_EQ(S.Median, 3.0);
  EXPECT_DOUBLE_EQ(S.P90, 4.6); // rank 3.6 between 4 and 5
  EXPECT_NEAR(S.StdDev, std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(S.cv(), std::sqrt(2.5) / 3.0, 1e-12);
  // Raw samples keep collection order.
  EXPECT_EQ(S.Samples.front(), 4.0);
}

TEST(StatsTest, EvenCountMedianInterpolates) {
  SampleStats S =
      SampleStats::compute({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_DOUBLE_EQ(S.Median, 5.5);
  EXPECT_DOUBLE_EQ(S.P90, 9.1); // rank 8.1 between 9 and 10
}

TEST(StatsTest, PercentileEdges) {
  const std::vector<double> Sorted = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(Sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(Sorted, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(Sorted, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 90.0), 7.0);
}

TEST(StatsTest, SingleSampleAndEmpty) {
  SampleStats One = SampleStats::once(42.0);
  EXPECT_EQ(One.reps(), 1u);
  EXPECT_DOUBLE_EQ(One.Min, 42.0);
  EXPECT_DOUBLE_EQ(One.Median, 42.0);
  EXPECT_DOUBLE_EQ(One.P90, 42.0);
  EXPECT_DOUBLE_EQ(One.StdDev, 0.0);
  EXPECT_DOUBLE_EQ(One.cv(), 0.0);

  SampleStats None = SampleStats::compute({});
  EXPECT_EQ(None.reps(), 0u);
  EXPECT_DOUBLE_EQ(None.Mean, 0.0);
  EXPECT_DOUBLE_EQ(None.cv(), 0.0);
}

TEST(StatsTest, ZeroMeanCvIsZero) {
  SampleStats S = SampleStats::compute({-1.0, 1.0});
  EXPECT_DOUBLE_EQ(S.Mean, 0.0);
  EXPECT_DOUBLE_EQ(S.cv(), 0.0);
}

//===----------------------------------------------------------------------===//
// JSON emission
//===----------------------------------------------------------------------===//

TEST(JsonTest, Escaping) {
  EXPECT_EQ(jsonEscaped("plain"), "plain");
  EXPECT_EQ(jsonEscaped("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscaped("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscaped("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(jsonEscaped(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(jsonEscaped("\b\f\r"), "\\b\\f\\r");
  // Non-ASCII bytes pass through untouched (UTF-8 stays UTF-8).
  EXPECT_EQ(jsonEscaped("\xc3\xa9"), "\xc3\xa9");
}

TEST(JsonTest, Numbers) {
  EXPECT_EQ(jsonNumber(2.5), "2.5");
  EXPECT_EQ(jsonNumber(0.0), "0");
  EXPECT_EQ(jsonNumber(-3.0), "-3");
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(jsonNumber(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonTest, WriterProducesExpectedDocument) {
  std::string Out;
  StringOStream OS(Out);
  JsonWriter W(OS);
  W.beginObject();
  W.key("name").value("x\"y");
  W.key("n").value(uint64_t{7});
  W.key("ok").value(true);
  W.key("arr").beginArray().value(1.5).value(uint64_t{2}).null().endArray();
  W.key("nested").beginObject().key("k").value("v").endObject();
  W.endObject();
  EXPECT_EQ(Out, "{\"name\":\"x\\\"y\",\"n\":7,\"ok\":true,"
                 "\"arr\":[1.5,2,null],\"nested\":{\"k\":\"v\"}}");
}

/// A minimal JSON validity checker (structure only, no value semantics):
/// returns true iff the whole input is one well-formed JSON value.
class JsonValidator {
public:
  explicit JsonValidator(std::string_view Text) : T(Text) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return P == T.size();
  }

private:
  void skipWs() {
    while (P < T.size() && std::isspace(static_cast<unsigned char>(T[P])))
      ++P;
  }
  bool literal(std::string_view L) {
    if (T.substr(P, L.size()) != L)
      return false;
    P += L.size();
    return true;
  }
  bool string() {
    if (P >= T.size() || T[P] != '"')
      return false;
    ++P;
    while (P < T.size()) {
      char C = T[P];
      if (C == '"') {
        ++P;
        return true;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return false; // raw control character: escaping failed
      if (C == '\\') {
        ++P;
        if (P >= T.size())
          return false;
        char E = T[P];
        if (E == 'u') {
          for (int I = 1; I <= 4; ++I)
            if (P + I >= T.size() ||
                !std::isxdigit(static_cast<unsigned char>(T[P + I])))
              return false;
          P += 4;
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return false;
        }
      }
      ++P;
    }
    return false;
  }
  bool number() {
    size_t Start = P;
    if (P < T.size() && T[P] == '-')
      ++P;
    while (P < T.size() && (std::isdigit(static_cast<unsigned char>(T[P])) ||
                            T[P] == '.' || T[P] == 'e' || T[P] == 'E' ||
                            T[P] == '+' || T[P] == '-'))
      ++P;
    return P > Start;
  }
  bool value() {
    skipWs();
    if (P >= T.size())
      return false;
    char C = T[P];
    if (C == '{')
      return object();
    if (C == '[')
      return array();
    if (C == '"')
      return string();
    if (C == 't')
      return literal("true");
    if (C == 'f')
      return literal("false");
    if (C == 'n')
      return literal("null");
    return number();
  }
  bool object() {
    ++P; // '{'
    skipWs();
    if (P < T.size() && T[P] == '}') {
      ++P;
      return true;
    }
    for (;;) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (P >= T.size() || T[P] != ':')
        return false;
      ++P;
      if (!value())
        return false;
      skipWs();
      if (P < T.size() && T[P] == ',') {
        ++P;
        continue;
      }
      if (P < T.size() && T[P] == '}') {
        ++P;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++P; // '['
    skipWs();
    if (P < T.size() && T[P] == ']') {
      ++P;
      return true;
    }
    for (;;) {
      if (!value())
        return false;
      skipWs();
      if (P < T.size() && T[P] == ',') {
        ++P;
        continue;
      }
      if (P < T.size() && T[P] == ']') {
        ++P;
        return true;
      }
      return false;
    }
  }

  std::string_view T;
  size_t P = 0;
};

std::vector<const BenchDef *> defPtrs(const Registry &R) {
  return R.match("");
}

/// Two synthetic deterministic benchmarks exercising every row feature
/// (params, unusual characters, non-ok status, measure()).
Registry makeSyntheticRegistry() {
  Registry R;
  R.add({"synthetic_counts", "synthetic", "claim A",
         [](BenchContext &Ctx) {
           ResultRow Row;
           Row.Tm = "tm\"quoted";
           Row.Threads = 2;
           Row.Params = {param("m", uint64_t{64}),
                         param("label", "a b\nc"),
                         param("theta", 0.8, 2)};
           Row.Metric = "steps";
           Row.Unit = "steps";
           Row.Stats = SampleStats::once(Ctx.smoke() ? 10.0 : 1000.0);
           Ctx.report(Row);

           Row.Metric = "rmrs";
           Row.Unit = "rmr";
           Row.Status = "livelock";
           Row.Stats = SampleStats::compute({});
           Ctx.report(Row);
         }});
  R.add({"synthetic_measure", "synthetic", "claim B",
         [](BenchContext &Ctx) {
           ResultRow Row;
           Row.Tm = "subject";
           Row.Threads = 1;
           Row.Metric = "value";
           Row.Unit = "unit";
           double Next = 1.0;
           Row.Stats = Ctx.measure([&Next] { return Next++; });
           Ctx.report(Row);
         }});
  return R;
}

TEST(JsonTest, ResultsDocumentIsWellFormed) {
  Registry R = makeSyntheticRegistry();
  RunConfig Cfg;
  Cfg.Reps = 3;
  Cfg.Warmup = 1;
  std::vector<const BenchDef *> Defs = defPtrs(R);
  std::vector<ResultRow> Rows = Registry::run(Defs, Cfg);
  std::string Json = resultsToJson(Rows, Defs, Cfg);

  EXPECT_TRUE(JsonValidator(Json).valid()) << Json;
  // Spot-check required schema keys.
  EXPECT_NE(Json.find("\"schema\":\"ptm-bench-v1\""), std::string::npos);
  EXPECT_NE(Json.find("\"benchmark\":\"synthetic_counts\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"metric\":\"steps\""), std::string::npos);
  EXPECT_NE(Json.find("\"status\":\"livelock\""), std::string::npos);
  EXPECT_NE(Json.find("\"median\":"), std::string::npos);
  EXPECT_NE(Json.find("\"samples\":"), std::string::npos);
  // The quoted TM name must have been escaped.
  EXPECT_NE(Json.find("tm\\\"quoted"), std::string::npos);
  EXPECT_NE(Json.find("a b\\nc"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Registry and filter matching
//===----------------------------------------------------------------------===//

TEST(RegistryTest, FilterMatching) {
  // Empty pattern matches everything.
  EXPECT_TRUE(nameMatches("", "anything"));
  // No wildcard: substring.
  EXPECT_TRUE(nameMatches("steps", "validation_steps"));
  EXPECT_TRUE(nameMatches("validation", "validation_steps"));
  EXPECT_FALSE(nameMatches("rmr", "validation_steps"));
  // Glob.
  EXPECT_TRUE(nameMatches("rmr_*", "rmr_mutex"));
  EXPECT_TRUE(nameMatches("*_steps", "validation_steps"));
  EXPECT_FALSE(nameMatches("rmr_*", "validation_steps"));
  EXPECT_TRUE(nameMatches("*", "anything"));
  EXPECT_TRUE(nameMatches("a*b", "aXXb"));
  EXPECT_TRUE(nameMatches("a*b", "aXbYb")); // backtracking
  EXPECT_FALSE(nameMatches("a*b", "aXbY"));
  EXPECT_TRUE(nameMatches("r?r_mutex", "rmr_mutex"));
  EXPECT_FALSE(nameMatches("r?r", "rmr_mutex")); // glob is a full match
}

TEST(RegistryTest, MatchSortsAndFilters) {
  Registry R;
  EXPECT_TRUE(R.add({"zeta", "f", "c", [](BenchContext &) {}}));
  EXPECT_TRUE(R.add({"alpha", "f", "c", [](BenchContext &) {}}));
  EXPECT_TRUE(R.add({"middle", "g", "c", [](BenchContext &) {}}));
  EXPECT_EQ(R.size(), 3u);

  std::vector<const BenchDef *> All = R.match("");
  ASSERT_EQ(All.size(), 3u);
  EXPECT_EQ(All[0]->Name, "alpha");
  EXPECT_EQ(All[1]->Name, "middle");
  EXPECT_EQ(All[2]->Name, "zeta");

  std::vector<const BenchDef *> Only = R.match("mid");
  ASSERT_EQ(Only.size(), 1u);
  EXPECT_EQ(Only[0]->Name, "middle");
}

TEST(RegistryTest, DuplicateNamesRejected) {
  Registry R;
  EXPECT_TRUE(R.add({"same", "f", "c", [](BenchContext &) {}}));
  EXPECT_FALSE(R.add({"same", "f2", "c2", [](BenchContext &) {}}));
  EXPECT_EQ(R.size(), 1u);
}

TEST(RegistryTest, GlobalRegistryEmptyWithoutBenchmarkTus) {
  // The test binary does not link the bench/*.cpp registration TUs, so
  // the global registry is empty here — which itself is worth pinning:
  // registration must come from the benchmark TUs, not the library.
  // (The empty pattern matches every registered benchmark.)
  EXPECT_EQ(Registry::global().match("").size(), 0u);
}

//===----------------------------------------------------------------------===//
// BenchContext
//===----------------------------------------------------------------------===//

TEST(BenchContextTest, MeasureAppliesWarmupAndReps) {
  RunConfig Cfg;
  Cfg.Reps = 3;
  Cfg.Warmup = 2;
  BenchContext Ctx(Cfg);
  unsigned Calls = 0;
  SampleStats S = Ctx.measure([&Calls] {
    ++Calls;
    return static_cast<double>(Calls);
  });
  EXPECT_EQ(Calls, 5u); // 2 warmup + 3 measured
  ASSERT_EQ(S.reps(), 3u);
  // Warmup samples (1, 2) are discarded; measured are 3, 4, 5.
  EXPECT_DOUBLE_EQ(S.Min, 3.0);
  EXPECT_DOUBLE_EQ(S.Max, 5.0);
  EXPECT_DOUBLE_EQ(S.Median, 4.0);
}

TEST(BenchContextTest, ThreadCountsAndPick) {
  RunConfig Cfg;
  Cfg.Smoke = true;
  Cfg.ThreadOverride = {3, 5};
  BenchContext Ctx(Cfg);
  EXPECT_EQ(Ctx.threadCounts({1, 2, 4}), (std::vector<unsigned>{3, 5}));
  EXPECT_EQ(Ctx.pick<unsigned>(100, 10), 10u);

  RunConfig Full;
  BenchContext FullCtx(Full);
  EXPECT_EQ(FullCtx.threadCounts({1, 2, 4}), (std::vector<unsigned>{1, 2, 4}));
  EXPECT_EQ(FullCtx.pick<unsigned>(100, 10), 100u);
}

TEST(BenchContextTest, RunStampsBenchmarkAndFamily) {
  Registry R = makeSyntheticRegistry();
  RunConfig Cfg;
  std::vector<ResultRow> Rows = Registry::run(defPtrs(R), Cfg);
  ASSERT_EQ(Rows.size(), 3u);
  EXPECT_EQ(Rows[0].Benchmark, "synthetic_counts");
  EXPECT_EQ(Rows[0].Family, "synthetic");
  EXPECT_EQ(Rows[2].Benchmark, "synthetic_measure");
}

//===----------------------------------------------------------------------===//
// CLI parsing
//===----------------------------------------------------------------------===//

TEST(CliTest, DefaultsAndFlags) {
  const char *Argv[] = {"bench", "--filter", "rmr_*", "--threads", "1,2,8",
                        "--reps", "7", "--warmup", "3", "--json", "out.json",
                        "--json-dir", "dir"};
  CliOptions Opts;
  std::string Error;
  ASSERT_TRUE(parseCliOptions(13, Argv, Opts, Error)) << Error;
  EXPECT_EQ(Opts.Filter, "rmr_*");
  EXPECT_EQ(Opts.Config.ThreadOverride, (std::vector<unsigned>{1, 2, 8}));
  EXPECT_EQ(Opts.Config.Reps, 7u);
  EXPECT_EQ(Opts.Config.Warmup, 3u);
  EXPECT_FALSE(Opts.Config.Smoke);
  EXPECT_EQ(Opts.JsonPath, "out.json");
  EXPECT_EQ(Opts.JsonDir, "dir");
}

TEST(CliTest, SmokeAdjustsRepetitionDefaults) {
  const char *Argv[] = {"bench", "--smoke"};
  CliOptions Opts;
  std::string Error;
  ASSERT_TRUE(parseCliOptions(2, Argv, Opts, Error)) << Error;
  EXPECT_TRUE(Opts.Config.Smoke);
  EXPECT_EQ(Opts.Config.Reps, 2u);
  EXPECT_EQ(Opts.Config.Warmup, 0u);

  const char *Argv2[] = {"bench", "--smoke", "--reps", "9"};
  CliOptions Opts2;
  ASSERT_TRUE(parseCliOptions(4, Argv2, Opts2, Error)) << Error;
  EXPECT_EQ(Opts2.Config.Reps, 9u); // explicit flag wins over smoke default
  EXPECT_EQ(Opts2.Config.Warmup, 0u);
}

TEST(CliTest, ListFlag) {
  const char *Argv[] = {"bench", "--list"};
  CliOptions Opts;
  std::string Error;
  ASSERT_TRUE(parseCliOptions(2, Argv, Opts, Error)) << Error;
  EXPECT_TRUE(Opts.List);
  EXPECT_FALSE(Opts.Help);

  // --list composes with --filter (list only the matching benchmarks).
  const char *Argv2[] = {"bench", "--list", "--filter", "ds_*"};
  CliOptions Opts2;
  ASSERT_TRUE(parseCliOptions(4, Argv2, Opts2, Error)) << Error;
  EXPECT_TRUE(Opts2.List);
  EXPECT_EQ(Opts2.Filter, "ds_*");
}

TEST(CliTest, ListRendersNameFamilyAndClaim) {
  Registry R = makeSyntheticRegistry();
  std::string Out;
  StringOStream OS(Out);
  printBenchList(OS, defPtrs(R));
  // Header plus one row per registered benchmark.
  EXPECT_NE(Out.find("benchmark"), std::string::npos);
  EXPECT_NE(Out.find("family"), std::string::npos);
  EXPECT_NE(Out.find("paper claim"), std::string::npos);
  EXPECT_NE(Out.find("synthetic_counts"), std::string::npos);
  EXPECT_NE(Out.find("synthetic_measure"), std::string::npos);
  EXPECT_NE(Out.find("claim A"), std::string::npos);
  EXPECT_NE(Out.find("claim B"), std::string::npos);
}

TEST(CliTest, Errors) {
  CliOptions Opts;
  std::string Error;
  const char *Unknown[] = {"bench", "--frobnicate"};
  EXPECT_FALSE(parseCliOptions(2, Unknown, Opts, Error));
  EXPECT_NE(Error.find("--frobnicate"), std::string::npos);

  const char *BadThreads[] = {"bench", "--threads", "1,zero"};
  EXPECT_FALSE(parseCliOptions(3, BadThreads, Opts, Error));

  const char *ZeroThreads[] = {"bench", "--threads", "0"};
  EXPECT_FALSE(parseCliOptions(3, ZeroThreads, Opts, Error));

  const char *MissingValue[] = {"bench", "--json"};
  EXPECT_FALSE(parseCliOptions(2, MissingValue, Opts, Error));

  const char *ZeroReps[] = {"bench", "--reps", "0"};
  EXPECT_FALSE(parseCliOptions(3, ZeroReps, Opts, Error));
}

//===----------------------------------------------------------------------===//
// Smoke determinism
//===----------------------------------------------------------------------===//

TEST(SmokeTest, DeterministicPipelineProducesIdenticalJson) {
  RunConfig Cfg;
  Cfg.Smoke = true;
  Cfg.Reps = 2;
  Cfg.Warmup = 0;

  Registry R1 = makeSyntheticRegistry();
  Registry R2 = makeSyntheticRegistry();
  std::string A = resultsToJson(Registry::run(defPtrs(R1), Cfg), defPtrs(R1),
                                Cfg);
  std::string B = resultsToJson(Registry::run(defPtrs(R2), Cfg), defPtrs(R2),
                                Cfg);
  EXPECT_EQ(A, B);
  EXPECT_TRUE(JsonValidator(A).valid());
  // Smoke mode actually took the small branch of pick().
  EXPECT_NE(A.find("\"samples\":[10]"), std::string::npos) << A;
}

} // namespace
