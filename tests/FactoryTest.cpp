//===-- tests/FactoryTest.cpp - TM factory negative-path tests ------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Negative-path and metadata tests for the TM factory: invalid kinds and
/// sizes must be rejected with null (never undefined behaviour), and the
/// kind/name mapping must round-trip for every implemented algorithm.
///
//===----------------------------------------------------------------------===//

#include "kv/KvStore.h"
#include "mutex/Mutex.h"
#include "stm/Tm.h"

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <string>

using namespace ptm;

TEST(Factory, UnknownKindReturnsNull) {
  EXPECT_EQ(createTm(static_cast<TmKind>(999), 4, 2), nullptr);
  EXPECT_EQ(createTm(static_cast<TmKind>(-1), 4, 2), nullptr);
}

TEST(Factory, ZeroObjectsReturnsNull) {
  for (TmKind Kind : allTmKinds())
    EXPECT_EQ(createTm(Kind, 0, 2), nullptr) << tmKindName(Kind);
}

TEST(Factory, ZeroThreadsReturnsNull) {
  for (TmKind Kind : allTmKinds())
    EXPECT_EQ(createTm(Kind, 4, 0), nullptr) << tmKindName(Kind);
}

TEST(Factory, CreatesEveryKindWithRequestedGeometry) {
  for (TmKind Kind : allTmKinds()) {
    auto M = createTm(Kind, 3, 2);
    ASSERT_NE(M, nullptr) << tmKindName(Kind);
    EXPECT_EQ(M->kind(), Kind);
    EXPECT_EQ(M->numObjects(), 3u);
    EXPECT_EQ(M->maxThreads(), 2u);
  }
}

TEST(Factory, SingleObjectSingleThreadIsValid) {
  for (TmKind Kind : allTmKinds()) {
    auto M = createTm(Kind, 1, 1);
    ASSERT_NE(M, nullptr) << tmKindName(Kind);
    M->txBegin(0);
    EXPECT_TRUE(M->txWrite(0, 0, 7));
    EXPECT_TRUE(M->txCommit(0));
    EXPECT_EQ(M->sample(0), 7u);
  }
}

TEST(Factory, KindNamesAreUniqueAndStable) {
  std::set<std::string> Names;
  for (TmKind Kind : allTmKinds()) {
    const char *Name = tmKindName(Kind);
    ASSERT_NE(Name, nullptr);
    EXPECT_STRNE(Name, "unknown");
    EXPECT_TRUE(Names.insert(Name).second) << "duplicate name " << Name;
  }
  EXPECT_EQ(Names.size(), allTmKinds().size());
}

TEST(Factory, KindNameRoundTripsForEveryKind) {
  for (TmKind Kind : allTmKinds()) {
    auto Parsed = tmKindFromName(tmKindName(Kind));
    ASSERT_TRUE(Parsed.has_value()) << tmKindName(Kind);
    EXPECT_EQ(*Parsed, Kind);
  }
}

TEST(Factory, UnknownNameDoesNotParse) {
  EXPECT_FALSE(tmKindFromName("no-such-tm").has_value());
  EXPECT_FALSE(tmKindFromName("").has_value());
  EXPECT_FALSE(tmKindFromName("TL2").has_value()) << "names are lowercase";
}

TEST(Factory, InstanceNameMatchesKindName) {
  for (TmKind Kind : allTmKinds()) {
    auto M = createTm(Kind, 2, 1);
    ASSERT_NE(M, nullptr);
    EXPECT_STREQ(M->name(), tmKindName(Kind));
  }
}

TEST(Factory, ProgressivenessMatchesDesign) {
  // Every TM in the paper's class is progressive; TML is the deliberate
  // contrast point (readers abort on any concurrent commit).
  for (TmKind Kind : allTmKinds())
    EXPECT_EQ(isProgressive(Kind), Kind != TmKind::TK_Tml)
        << tmKindName(Kind);
}

TEST(Factory, TmMutexPropagatesInvalidInnerKind) {
  EXPECT_EQ(createTmMutex(static_cast<TmKind>(999), 2), nullptr);
  EXPECT_EQ(createTmMutex(TmKind::TK_Tl2, 0), nullptr);
  auto L = createTmMutex(TmKind::TK_Tl2, 2);
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(L->maxThreads(), 2u);
}

TEST(Factory, KvShardCountGate) {
  // The shard-sizing rule every createTm-reaching KV path shares: shard
  // counts must be nonzero powers of two (keys route by mask).
  EXPECT_FALSE(kv::KvStore::isValidShardCount(0));
  for (unsigned Bad : {3u, 5u, 6u, 7u, 9u, 24u, 1000u})
    EXPECT_FALSE(kv::KvStore::isValidShardCount(Bad)) << Bad;
  for (unsigned Shift = 0; Shift < 12; ++Shift)
    EXPECT_TRUE(kv::KvStore::isValidShardCount(1u << Shift)) << Shift;
}

TEST(Factory, KvObjectsPerShardMatchesMapGeometry) {
  // The helper is TxMap::objectsNeeded behind an overflow gate.
  EXPECT_EQ(kv::KvStore::objectsPerShard(8, 16),
            ds::TxMap::objectsNeeded(8, 16));
  EXPECT_EQ(kv::KvStore::objectsPerShard(0, 16), 0u);
  EXPECT_EQ(kv::KvStore::objectsPerShard(8, 0), 0u);
  // Geometries whose region cannot fit ObjectId range are rejected
  // instead of truncated — on either axis.
  EXPECT_EQ(kv::KvStore::objectsPerShard(
                8, std::numeric_limits<uint64_t>::max() / 2),
            0u);
  EXPECT_EQ(kv::KvStore::objectsPerShard(
                8, uint64_t{std::numeric_limits<ObjectId>::max()}),
            0u);
  EXPECT_EQ(kv::KvStore::objectsPerShard(
                std::numeric_limits<unsigned>::max() - 1, 1),
            0u);
  EXPECT_EQ(kv::KvStore::objectsPerShard(
                std::numeric_limits<unsigned>::max(),
                std::numeric_limits<uint64_t>::max()),
            0u);
}

TEST(Factory, KvCreateRejectsWhatTheGateRejects) {
  kv::KvConfig Cfg;
  Cfg.ShardCount = 4;
  Cfg.BucketsPerShard = 4;
  Cfg.CapacityPerShard = 8;
  Cfg.Kind = TmKind::TK_Norec;
  Cfg.MaxThreads = 2;
  ASSERT_NE(kv::KvStore::create(Cfg), nullptr);

  kv::KvConfig Bad = Cfg;
  Bad.ShardCount = 6;
  EXPECT_EQ(kv::KvStore::create(Bad), nullptr);
  Bad = Cfg;
  Bad.ShardCount = 0;
  EXPECT_EQ(kv::KvStore::create(Bad), nullptr);
  Bad = Cfg;
  Bad.MaxThreads = 0;
  EXPECT_EQ(kv::KvStore::create(Bad), nullptr);
  Bad = Cfg;
  Bad.Kind = static_cast<TmKind>(999);
  EXPECT_EQ(kv::KvStore::create(Bad), nullptr);
}

TEST(Factory, AbortCauseNamesAreStable) {
  EXPECT_STREQ(abortCauseName(AbortCause::AC_None), "none");
  EXPECT_STREQ(abortCauseName(AbortCause::AC_ReadValidation),
               "read-validation");
  EXPECT_STREQ(abortCauseName(AbortCause::AC_LockHeld), "lock-held");
  EXPECT_STREQ(abortCauseName(AbortCause::AC_CommitValidation),
               "commit-validation");
  EXPECT_STREQ(abortCauseName(AbortCause::AC_User), "user");
  EXPECT_STREQ(abortCauseName(static_cast<AbortCause>(99)), "unknown");
}
