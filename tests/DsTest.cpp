//===-- tests/DsTest.cpp - Transactional data-structure tests -------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// The src/ds/ library test suite, in four tiers:
///
///  1. sequential unit tests per structure (allocator reuse and abort
///     rollback, set/map/queue/counter semantics), parameterized over
///     every TmKind;
///  2. randomized differential stress against the obvious std::
///     reference (std::set / std::map / std::deque), again across every
///     TmKind including tml — in sequential runs a TM must never abort
///     involuntarily and must match the reference op-for-op;
///  3. deterministic conflict scripts: two descriptor slots driven from
///     one thread force a conflicting insert/remove interleaving (the
///     unlink must invalidate the in-flight insert's traversal) and a
///     disjoint read/update pair (both must commit);
///  4. schedule-driven churn: real threads serialized through a seeded
///     RandomInterleaver hammer one TxSet, with invariant and
///     reclamation checks at the end.
///
//===----------------------------------------------------------------------===//

#include "ds/Ds.h"
#include "runtime/Instrumentation.h"
#include "runtime/Interleaver.h"
#include "stm/Stm.h"
#include "support/Random.h"
#include "workload/DsWorkload.h"

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

using namespace ptm;
using namespace ptm::ds;

namespace {

std::string kindName(TmKind Kind) {
  std::string Name = tmKindName(Kind);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

//===----------------------------------------------------------------------===//
// Tier 1: sequential unit tests, one fixture per structure
//===----------------------------------------------------------------------===//

class DsKindTest : public ::testing::TestWithParam<TmKind> {};

std::string kindParamName(const ::testing::TestParamInfo<TmKind> &Info) {
  return kindName(Info.param);
}

TEST_P(DsKindTest, AllocReusesReleasedNodesLifo) {
  auto M = createTm(GetParam(), TxAlloc::objectsNeeded(2, 4), 1);
  TxAlloc Alloc(*M, 0, /*NodeWords=*/2, /*NodeCapacity=*/4);

  uint64_t A = kNil, B = kNil;
  ASSERT_TRUE(atomically(*M, 0, [&](TxRef &Tx) {
    A = Alloc.allocate(Tx);
    B = Alloc.allocate(Tx);
  }));
  EXPECT_EQ(A, 0u);
  EXPECT_EQ(B, 1u);
  EXPECT_EQ(Alloc.sampleLiveCount(), 2u);

  ASSERT_TRUE(atomically(*M, 0, [&](TxRef &Tx) { Alloc.release(Tx, A); }));
  EXPECT_EQ(Alloc.sampleLiveCount(), 1u);
  EXPECT_EQ(Alloc.sampleFreeCount(), 1u);

  // The freed node comes back before the bump cursor moves.
  uint64_t C = kNil;
  ASSERT_TRUE(
      atomically(*M, 0, [&](TxRef &Tx) { C = Alloc.allocate(Tx); }));
  EXPECT_EQ(C, A);
  EXPECT_EQ(Alloc.sampleEverAllocated(), 2u);
}

TEST_P(DsKindTest, AllocExhaustionAndAbortRollback) {
  auto M = createTm(GetParam(), TxAlloc::objectsNeeded(1, 2), 1);
  TxAlloc Alloc(*M, 0, /*NodeWords=*/1, /*NodeCapacity=*/2);

  uint64_t Third = 0;
  ASSERT_TRUE(atomically(*M, 0, [&](TxRef &Tx) {
    Alloc.allocate(Tx);
    Alloc.allocate(Tx);
    Third = Alloc.allocate(Tx);
  }));
  EXPECT_EQ(Third, kNil) << "capacity 2 must refuse a third node";
  EXPECT_EQ(Alloc.sampleLiveCount(), 2u);

  // A voluntarily aborted allocation must leave no trace.
  Alloc.reset();
  bool Committed = atomically(*M, 0, [&](TxRef &Tx) {
    Alloc.allocate(Tx);
    Tx.userAbort();
  });
  EXPECT_FALSE(Committed);
  EXPECT_EQ(Alloc.sampleEverAllocated(), 0u);
  EXPECT_EQ(Alloc.sampleLiveCount(), 0u);
}

TEST_P(DsKindTest, SetInsertRemoveContains) {
  auto M = createTm(GetParam(), TxSet::objectsNeeded(8), 1);
  TxSet Set(*M, 0, 8);

  EXPECT_FALSE(Set.contains(0u, 5));
  EXPECT_TRUE(Set.insert(0u, 5));
  EXPECT_FALSE(Set.insert(0u, 5)) << "duplicate insert must fail";
  EXPECT_TRUE(Set.insert(0u, 1));
  EXPECT_TRUE(Set.insert(0u, 9));
  EXPECT_TRUE(Set.contains(0u, 5));
  EXPECT_FALSE(Set.contains(0u, 4));
  EXPECT_EQ(Set.sampleKeys(), (std::vector<uint64_t>{1, 5, 9}));

  EXPECT_TRUE(Set.remove(0u, 5));
  EXPECT_FALSE(Set.remove(0u, 5)) << "double remove must fail";
  EXPECT_FALSE(Set.contains(0u, 5));
  EXPECT_EQ(Set.sampleKeys(), (std::vector<uint64_t>{1, 9}));
  EXPECT_EQ(Set.sampleLiveNodes(), 2u);
}

TEST_P(DsKindTest, SetChurnRunsInBoundedSpace) {
  // Insert/remove the same keys far more often than the capacity could
  // absorb without reclamation: the region holds 4 nodes, the churn
  // performs 64 inserts.
  auto M = createTm(GetParam(), TxSet::objectsNeeded(4), 1);
  TxSet Set(*M, 0, 4);

  for (int Round = 0; Round < 32; ++Round) {
    bool OutOfMemory = false;
    ASSERT_TRUE(Set.insert(0u, 10, &OutOfMemory)) << "round " << Round;
    ASSERT_FALSE(OutOfMemory);
    ASSERT_TRUE(Set.insert(0u, 20, &OutOfMemory)) << "round " << Round;
    ASSERT_FALSE(OutOfMemory);
    ASSERT_TRUE(Set.remove(0u, 10));
    ASSERT_TRUE(Set.remove(0u, 20));
  }
  EXPECT_EQ(Set.sampleLiveNodes(), 0u);
  EXPECT_LE(Set.allocator().sampleEverAllocated(), 4u);
}

TEST_P(DsKindTest, SetOutOfMemoryIsReported) {
  auto M = createTm(GetParam(), TxSet::objectsNeeded(2), 1);
  TxSet Set(*M, 0, 2);
  EXPECT_TRUE(Set.insert(0u, 1));
  EXPECT_TRUE(Set.insert(0u, 2));
  bool OutOfMemory = false;
  EXPECT_FALSE(Set.insert(0u, 3, &OutOfMemory));
  EXPECT_TRUE(OutOfMemory);
  // The failed insert must not have corrupted the set.
  EXPECT_EQ(Set.sampleKeys(), (std::vector<uint64_t>{1, 2}));
}

TEST_P(DsKindTest, MapPutGetEraseWithCollisions) {
  // Two buckets force chain collisions on any key distribution.
  auto M = createTm(GetParam(), TxMap::objectsNeeded(2, 8), 1);
  TxMap Map(*M, 0, /*BucketCount=*/2, /*KeyCapacity=*/8);

  uint64_t Value = 0;
  EXPECT_FALSE(Map.get(0u, 7, Value));
  for (uint64_t K = 0; K < 6; ++K) {
    bool Inserted = false;
    ASSERT_TRUE(Map.put(0u, K, 100 + K, &Inserted));
    EXPECT_TRUE(Inserted);
  }
  for (uint64_t K = 0; K < 6; ++K) {
    ASSERT_TRUE(Map.get(0u, K, Value));
    EXPECT_EQ(Value, 100 + K);
  }

  // Update in place: no new node, value changes.
  bool Inserted = true;
  ASSERT_TRUE(Map.put(0u, 3, 999, &Inserted));
  EXPECT_FALSE(Inserted);
  ASSERT_TRUE(Map.get(0u, 3, Value));
  EXPECT_EQ(Value, 999u);
  EXPECT_EQ(Map.sampleLiveNodes(), 6u);

  EXPECT_TRUE(Map.erase(0u, 3));
  EXPECT_FALSE(Map.erase(0u, 3));
  EXPECT_FALSE(Map.get(0u, 3, Value));
  EXPECT_EQ(Map.sampleLiveNodes(), 5u);
  EXPECT_EQ(Map.sampleEntries().size(), 5u);
}

TEST_P(DsKindTest, QueueFifoWraparoundAndBounds) {
  auto M = createTm(GetParam(), TxQueue::objectsNeeded(3), 1);
  TxQueue Queue(*M, 0, 3);

  uint64_t Item = 0;
  EXPECT_FALSE(Queue.tryDequeue(0u, Item)) << "empty queue must refuse";
  EXPECT_TRUE(Queue.tryEnqueue(0u, 11));
  EXPECT_TRUE(Queue.tryEnqueue(0u, 22));
  EXPECT_TRUE(Queue.tryEnqueue(0u, 33));
  EXPECT_FALSE(Queue.tryEnqueue(0u, 44)) << "full queue must refuse";
  EXPECT_EQ(Queue.sampleSize(), 3u);

  // Drain/refill across the ring seam: indices keep growing, slots wrap.
  Queue.clear();
  uint64_t Next = 0, Expect = 0;
  for (int I = 0; I < 10; ++I) {
    ASSERT_TRUE(Queue.tryEnqueue(0u, Next++));
    ASSERT_TRUE(Queue.tryEnqueue(0u, Next++));
    ASSERT_TRUE(Queue.tryDequeue(0u, Item));
    EXPECT_EQ(Item, Expect++);
    ASSERT_TRUE(Queue.tryDequeue(0u, Item));
    EXPECT_EQ(Item, Expect++);
  }
  EXPECT_EQ(Queue.sampleSize(), 0u);
}

TEST_P(DsKindTest, CounterStripesAndPreciseRead) {
  auto M = createTm(GetParam(), TxCounter::objectsNeeded(4), 1);
  TxCounter Counter(*M, 0, 4);

  // Hints spread over the stripes; the precise read sums them all.
  for (ThreadId Hint = 0; Hint < 8; ++Hint)
    ASSERT_TRUE(atomically(*M, 0, [&](TxRef &Tx) {
      Counter.add(Tx, Hint, static_cast<int64_t>(Hint));
    }));
  EXPECT_EQ(Counter.read(0u), 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
  EXPECT_EQ(Counter.sampleTotal(), 28);

  ASSERT_TRUE(Counter.add(0u, -28));
  EXPECT_EQ(Counter.read(0u), 0);
}

TEST_P(DsKindTest, ComposedCrossStructureTransaction) {
  // One atomic step spanning two structures: move a key from set A to
  // set B and bump a counter — either all three happen or none.
  unsigned SetObjs = TxSet::objectsNeeded(4);
  auto M = createTm(GetParam(), 2 * SetObjs + TxCounter::objectsNeeded(2), 1);
  TxSet A(*M, 0, 4);
  TxSet B(*M, SetObjs, 4);
  TxCounter Moves(*M, 2 * SetObjs, 2);

  ASSERT_TRUE(A.insert(0u, 42));
  bool Moved = false;
  ASSERT_TRUE(atomically(*M, 0, [&](TxRef &Tx) {
    Moved = A.remove(Tx, 42) && B.insert(Tx, 42);
    if (Moved)
      Moves.add(Tx, 0, 1);
  }));
  EXPECT_TRUE(Moved);
  EXPECT_TRUE(A.sampleKeys().empty());
  EXPECT_EQ(B.sampleKeys(), (std::vector<uint64_t>{42}));
  EXPECT_EQ(Moves.sampleTotal(), 1);

  // Moving a missing key commits as a no-op (the remove fails, nothing
  // else runs) — composition makes the partial update impossible.
  ASSERT_TRUE(atomically(*M, 0, [&](TxRef &Tx) {
    Moved = A.remove(Tx, 7) && B.insert(Tx, 7);
    if (Moved)
      Moves.add(Tx, 0, 1);
  }));
  EXPECT_FALSE(Moved);
  EXPECT_EQ(Moves.sampleTotal(), 1);
}

TEST_P(DsKindTest, ComposedMoveAbortsWhenDestinationIsFull) {
  // The README's move idiom: if the destination rejects the insert
  // (region exhausted), the mover must userAbort so the committed state
  // never shows a half-done move — the key stays in the source.
  unsigned SetObjs = TxSet::objectsNeeded(2);
  auto M = createTm(GetParam(), 2 * SetObjs, 1);
  TxSet A(*M, 0, 2);
  TxSet B(*M, SetObjs, /*KeyCapacity=*/2);
  ASSERT_TRUE(A.insert(0u, 42));
  ASSERT_TRUE(B.insert(0u, 1));
  ASSERT_TRUE(B.insert(0u, 2)); // B's region is now exhausted.

  bool Committed = atomically(*M, 0, [&](TxRef &Tx) {
    if (A.remove(Tx, 42) && !B.insert(Tx, 42))
      Tx.userAbort();
  });
  EXPECT_FALSE(Committed);
  EXPECT_EQ(A.sampleKeys(), (std::vector<uint64_t>{42}))
      << "an aborted move must leave the source untouched";
  EXPECT_EQ(B.sampleKeys(), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(A.sampleLiveNodes(), 1u);
  EXPECT_EQ(B.sampleLiveNodes(), 2u);
}

#ifndef NDEBUG
TEST_P(DsKindTest, DoubleReleaseIsCaughtInDebug) {
  // Releasing a node that is already free would tie the free list into a
  // cycle (its word 0 becomes a self-referential link), after which
  // sampleFreeCount()/allocate() walk forever. Debug builds walk the
  // free list on release and must trip the assertion.
  auto M = createTm(GetParam(), TxAlloc::objectsNeeded(1, 4), 1);
  TxAlloc Alloc(*M, 0, /*NodeWords=*/1, /*NodeCapacity=*/4);

  uint64_t A = kNil, B = kNil;
  ASSERT_TRUE(atomically(*M, 0, [&](TxRef &Tx) {
    A = Alloc.allocate(Tx);
    B = Alloc.allocate(Tx);
  }));
  ASSERT_TRUE(atomically(*M, 0, [&](TxRef &Tx) { Alloc.release(Tx, B); }));
  ASSERT_TRUE(atomically(*M, 0, [&](TxRef &Tx) { Alloc.release(Tx, A); }));
  // A and B are both free (A at the head). Releasing either again must
  // die — including B, which is not the head and is only found by the
  // walk.
  EXPECT_DEATH(
      atomically(*M, 0, [&](TxRef &Tx) { Alloc.release(Tx, B); }),
      "double release");
  // Same-transaction double release (release then release again before
  // committing) must be caught by the walk seeing the txn's own write.
  EXPECT_DEATH(atomically(*M, 0,
                          [&](TxRef &Tx) {
                            uint64_t C = Alloc.allocate(Tx);
                            Alloc.release(Tx, C);
                            Alloc.release(Tx, C);
                          }),
               "double release");
}
#endif

INSTANTIATE_TEST_SUITE_P(AllKinds, DsKindTest,
                         ::testing::ValuesIn(allTmKinds()), kindParamName);

//===----------------------------------------------------------------------===//
// Tier 2: randomized differential stress vs std:: references
//===----------------------------------------------------------------------===//

using DiffParam = std::tuple<TmKind, uint64_t>;

class DsDifferentialTest : public ::testing::TestWithParam<DiffParam> {};

std::string diffParamName(const ::testing::TestParamInfo<DiffParam> &Info) {
  return kindName(std::get<0>(Info.param)) + "_seed" +
         std::to_string(std::get<1>(Info.param));
}

TEST_P(DsDifferentialTest, SetMatchesStdSet) {
  auto [Kind, Seed] = GetParam();
  constexpr uint64_t KeySpace = 16;
  auto M = createTm(Kind, TxSet::objectsNeeded(KeySpace), 1);
  TxSet Set(*M, 0, KeySpace);
  std::set<uint64_t> Ref;
  Xoshiro256 Rng(Seed);

  for (int I = 0; I < 3000; ++I) {
    uint64_t Key = Rng.nextBounded(KeySpace);
    double Dice = Rng.nextDouble();
    if (Dice < 0.4) {
      EXPECT_EQ(Set.insert(0u, Key), Ref.insert(Key).second)
          << "insert(" << Key << ") diverged at op " << I;
    } else if (Dice < 0.7) {
      EXPECT_EQ(Set.remove(0u, Key), Ref.erase(Key) == 1)
          << "remove(" << Key << ") diverged at op " << I;
    } else {
      EXPECT_EQ(Set.contains(0u, Key), Ref.count(Key) == 1)
          << "contains(" << Key << ") diverged at op " << I;
    }
  }
  EXPECT_EQ(Set.sampleKeys(),
            std::vector<uint64_t>(Ref.begin(), Ref.end()));
  EXPECT_EQ(Set.sampleLiveNodes(), Ref.size());
}

TEST_P(DsDifferentialTest, MapMatchesStdMap) {
  auto [Kind, Seed] = GetParam();
  constexpr uint64_t KeySpace = 16;
  auto M = createTm(Kind, TxMap::objectsNeeded(4, KeySpace), 1);
  TxMap Map(*M, 0, /*BucketCount=*/4, KeySpace);
  std::map<uint64_t, uint64_t> Ref;
  Xoshiro256 Rng(Seed ^ 0x3a97UL);

  for (int I = 0; I < 3000; ++I) {
    uint64_t Key = Rng.nextBounded(KeySpace);
    double Dice = Rng.nextDouble();
    if (Dice < 0.4) {
      uint64_t Value = Rng.nextBounded(1000);
      bool Inserted = false;
      ASSERT_TRUE(Map.put(0u, Key, Value, &Inserted));
      EXPECT_EQ(Inserted, Ref.find(Key) == Ref.end())
          << "put(" << Key << ") diverged at op " << I;
      Ref[Key] = Value;
    } else if (Dice < 0.6) {
      EXPECT_EQ(Map.erase(0u, Key), Ref.erase(Key) == 1)
          << "erase(" << Key << ") diverged at op " << I;
    } else {
      uint64_t Got = 0;
      auto It = Ref.find(Key);
      EXPECT_EQ(Map.get(0u, Key, Got), It != Ref.end())
          << "get(" << Key << ") presence diverged at op " << I;
      if (It != Ref.end()) {
        EXPECT_EQ(Got, It->second) << "get(" << Key << ") value diverged";
      }
    }
  }
  std::map<uint64_t, uint64_t> Final;
  for (auto [K, V] : Map.sampleEntries())
    Final[K] = V;
  EXPECT_EQ(Final, Ref);
  EXPECT_EQ(Map.sampleLiveNodes(), Ref.size());
}

TEST_P(DsDifferentialTest, QueueMatchesStdDeque) {
  auto [Kind, Seed] = GetParam();
  constexpr uint64_t Capacity = 5;
  auto M = createTm(Kind, TxQueue::objectsNeeded(Capacity), 1);
  TxQueue Queue(*M, 0, Capacity);
  std::deque<uint64_t> Ref;
  Xoshiro256 Rng(Seed * 977 + 5);

  for (int I = 0; I < 3000; ++I) {
    if (Rng.nextBool(0.55)) {
      uint64_t Item = Rng.next();
      EXPECT_EQ(Queue.tryEnqueue(0u, Item), Ref.size() < Capacity)
          << "enqueue fullness diverged at op " << I;
      if (Ref.size() < Capacity)
        Ref.push_back(Item);
    } else {
      uint64_t Item = 0;
      bool Got = Queue.tryDequeue(0u, Item);
      EXPECT_EQ(Got, !Ref.empty()) << "dequeue diverged at op " << I;
      if (Got) {
        EXPECT_EQ(Item, Ref.front()) << "FIFO order diverged at op " << I;
        Ref.pop_front();
      }
    }
  }
  EXPECT_EQ(Queue.sampleSize(), Ref.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DsDifferentialTest,
    ::testing::Combine(::testing::ValuesIn(allTmKinds()),
                       ::testing::Values(1u, 2u)),
    diffParamName);

//===----------------------------------------------------------------------===//
// Tier 3: deterministic conflict scripts (two descriptor slots)
//===----------------------------------------------------------------------===//

/// The lazy-update TMs, against which mid-transaction interleavings can
/// be expressed without blocking (same set as StmInterleavedTest).
class DsInterleavedTest : public ::testing::TestWithParam<TmKind> {
protected:
  void SetUp() override {
    M = createTm(GetParam(), TxSet::objectsNeeded(8), 2);
    Set.emplace(*M, 0, 8);
    ASSERT_TRUE(Set->insert(0u, 10));
    ASSERT_TRUE(Set->insert(0u, 20));
    ASSERT_TRUE(Set->insert(0u, 30));
    M->resetStats();
  }
  std::unique_ptr<Tm> M;
  std::optional<TxSet> Set;
};

TEST_P(DsInterleavedTest, ConcurrentRemoveInvalidatesInFlightInsert) {
  // T0 walks the list to insert 25 (its traversal reads node 20); T1
  // unlinks 20 and commits first. T0's snapshot is now stale: its commit
  // MUST fail, and the retry must land 25 in the post-remove list.
  M->txBegin(0);
  TxRef Tx0(*M, 0);
  ASSERT_TRUE(Set->insert(Tx0, 25));
  ASSERT_FALSE(Tx0.failed()) << "solo traversal must not abort";

  M->txBegin(1);
  TxRef Tx1(*M, 1);
  ASSERT_TRUE(Set->remove(Tx1, 20));
  ASSERT_FALSE(Tx1.failed());

  EXPECT_TRUE(M->txCommit(1)) << "first committer must win";
  EXPECT_FALSE(M->txCommit(0))
      << "insert over a concurrently-unlinked node must not commit";

  // The aborted insert retries like any application op and succeeds.
  EXPECT_TRUE(Set->insert(0u, 25));
  EXPECT_EQ(Set->sampleKeys(), (std::vector<uint64_t>{10, 25, 30}));
  EXPECT_EQ(Set->sampleLiveNodes(), 3u);
  // Reclamation across the conflict: the retry reused node 20's slot,
  // so the region never grew past the three prefill nodes plus one.
  EXPECT_LE(Set->allocator().sampleEverAllocated(), 4u);
}

TEST_P(DsInterleavedTest, DisjointReadAndUpdateBothCommit) {
  // T0's contains(10) reads only the list prefix; T1's insert(40)
  // appends at the tail. No read-write intersection: both must commit
  // (progressiveness at structure granularity).
  M->txBegin(0);
  TxRef Tx0(*M, 0);
  bool Found = Set->contains(Tx0, 10);
  ASSERT_FALSE(Tx0.failed());
  EXPECT_TRUE(Found);

  M->txBegin(1);
  TxRef Tx1(*M, 1);
  ASSERT_TRUE(Set->insert(Tx1, 40));
  ASSERT_FALSE(Tx1.failed());

  EXPECT_TRUE(M->txCommit(1));
  EXPECT_TRUE(M->txCommit(0))
      << "a prefix-only reader must survive a tail update";
  EXPECT_EQ(Set->sampleKeys(), (std::vector<uint64_t>{10, 20, 30, 40}));
}

INSTANTIATE_TEST_SUITE_P(LazyKinds, DsInterleavedTest,
                         ::testing::Values(TmKind::TK_Tl2, TmKind::TK_Norec,
                                           TmKind::TK_OrecIncremental,
                                           TmKind::TK_OrecTs),
                         kindParamName);

//===----------------------------------------------------------------------===//
// Tier 4: schedule-driven and free-running concurrency
//===----------------------------------------------------------------------===//

using ChurnParam = std::tuple<TmKind, uint64_t>;

class DsScheduledChurnTest : public ::testing::TestWithParam<ChurnParam> {};

TEST_P(DsScheduledChurnTest, InvariantsHoldUnderInterleavedChurn) {
  auto [Kind, Seed] = GetParam();
  constexpr unsigned Threads = 2;
  constexpr uint64_t KeySpace = 6;
  constexpr unsigned OpsPerThread = 24;
  constexpr uint64_t Capacity = KeySpace + Threads;

  auto M = createTm(Kind, TxSet::objectsNeeded(Capacity), Threads);
  TxSet Set(*M, 0, Capacity);
  RandomInterleaver Sched(Threads, Seed);

  std::atomic<int64_t> NetInserted{0};
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T, SeedCopy = Seed] {
      Instrumentation Instr(T, nullptr, &Sched);
      {
        ScopedInstrumentation Scope(Instr);
        Xoshiro256 Rng(SeedCopy * 131 + T);
        for (unsigned I = 0; I < OpsPerThread; ++I) {
          uint64_t Key = Rng.nextBounded(KeySpace);
          bool Result = false;
          // Capped attempts so symmetric-contention livelocks (the
          // TLRW caveat of E9) terminate; uncommitted ops simply do
          // not count toward the net-insert ledger.
          if (Rng.nextBool(0.5)) {
            if (atomically(
                    *M, T, [&](TxRef &Tx) { Result = Set.insert(Tx, Key); },
                    /*MaxAttempts=*/200) &&
                Result)
              NetInserted.fetch_add(1);
          } else {
            if (atomically(
                    *M, T, [&](TxRef &Tx) { Result = Set.remove(Tx, Key); },
                    /*MaxAttempts=*/200) &&
                Result)
              NetInserted.fetch_sub(1);
          }
        }
      }
      Sched.retire(T);
    });
  }
  for (std::thread &W : Workers)
    W.join();

  std::vector<uint64_t> Keys = Set.sampleKeys();
  for (size_t I = 1; I < Keys.size(); ++I)
    EXPECT_LT(Keys[I - 1], Keys[I]) << "list must stay strictly sorted";
  for (uint64_t Key : Keys)
    EXPECT_LT(Key, KeySpace);
  EXPECT_EQ(static_cast<int64_t>(Keys.size()), NetInserted.load())
      << "size must equal successful inserts minus removes";
  EXPECT_EQ(Set.sampleLiveNodes(), Keys.size())
      << "every unlinked node must be back on the free list";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DsScheduledChurnTest,
    ::testing::Combine(::testing::ValuesIn(allTmKinds()),
                       ::testing::Values(7u, 21u)),
    [](const ::testing::TestParamInfo<ChurnParam> &Info) {
      return kindName(std::get<0>(Info.param)) + "_seed" +
             std::to_string(std::get<1>(Info.param));
    });

class DsStressTest : public ::testing::TestWithParam<TmKind> {};

TEST_P(DsStressTest, FreeRunningSetChurnKeepsInvariants) {
  constexpr unsigned Threads = 4;
  constexpr uint64_t KeySpace = 32;
  constexpr int OpsPerThread = 1500;
  constexpr uint64_t Capacity = KeySpace + Threads;

  auto M = createTm(GetParam(), TxSet::objectsNeeded(Capacity), Threads);
  TxSet Set(*M, 0, Capacity);

  std::atomic<int64_t> NetInserted{0};
  std::atomic<uint64_t> OutOfMemory{0};
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      Xoshiro256 Rng(T * 7919 + 3);
      for (int I = 0; I < OpsPerThread; ++I) {
        uint64_t Key = Rng.nextBounded(KeySpace);
        double Dice = Rng.nextDouble();
        if (Dice < 0.4) {
          bool Oom = false;
          if (Set.insert(T, Key, &Oom))
            NetInserted.fetch_add(1);
          if (Oom)
            OutOfMemory.fetch_add(1);
        } else if (Dice < 0.7) {
          if (Set.remove(T, Key))
            NetInserted.fetch_sub(1);
        } else {
          (void)Set.contains(T, Key);
        }
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();

  std::vector<uint64_t> Keys = Set.sampleKeys();
  for (size_t I = 1; I < Keys.size(); ++I)
    EXPECT_LT(Keys[I - 1], Keys[I]);
  EXPECT_EQ(static_cast<int64_t>(Keys.size()), NetInserted.load());
  EXPECT_EQ(Set.sampleLiveNodes(), Keys.size());
  EXPECT_EQ(OutOfMemory.load(), 0u)
      << "KeySpace + Threads capacity must absorb unbounded churn";
}

TEST_P(DsStressTest, QueuePipelineLosesNothing) {
  auto M = createTm(GetParam(), TxQueue::objectsNeeded(4), 4);
  TxQueue Queue(*M, 0, 4);
  uint64_t OrderViolations = 0;
  RunResult R = runDsQueuePipeline(Queue, /*Producers=*/2, /*Consumers=*/2,
                                   /*ItemsPerProducer=*/2500,
                                   &OrderViolations);
  EXPECT_EQ(R.ValueChecksum, 5000u);
  EXPECT_EQ(OrderViolations, 0u);
  EXPECT_EQ(Queue.sampleSize(), 0u);
  EXPECT_GE(R.Commits, 5000u * 2);
}

TEST_P(DsStressTest, CounterNeverLosesIncrements) {
  constexpr unsigned Threads = 4;
  constexpr uint64_t Increments = 2000;
  auto M = createTm(GetParam(), TxCounter::objectsNeeded(Threads), Threads);
  TxCounter Counter(*M, 0, Threads);
  RunResult R = runDsCounterLoad(Counter, Threads, Increments,
                                 /*ReadProb=*/0.0, 42);
  EXPECT_EQ(R.ValueChecksum, Threads * Increments);
  EXPECT_EQ(Counter.sampleTotal(),
            static_cast<int64_t>(Threads * Increments));
}

TEST_P(DsStressTest, MapMixStaysWithinKeySpace) {
  constexpr unsigned Threads = 4;
  constexpr uint64_t KeySpace = 24;
  auto M = createTm(GetParam(),
                    TxMap::objectsNeeded(4, KeySpace + Threads), Threads);
  TxMap Map(*M, 0, 4, KeySpace + Threads);
  RunResult R = runDsMapMix(Map, Threads, /*OpsPerThread=*/1500,
                            /*GetProb=*/0.5, KeySpace, /*Theta=*/0.8, 42);
  auto Entries = Map.sampleEntries();
  EXPECT_EQ(R.ValueChecksum, Entries.size());
  std::set<uint64_t> Seen;
  for (auto [K, V] : Entries) {
    EXPECT_LT(K, KeySpace);
    EXPECT_TRUE(Seen.insert(K).second) << "duplicate key " << K;
  }
  EXPECT_EQ(Map.sampleLiveNodes(), Entries.size());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DsStressTest,
                         ::testing::ValuesIn(allTmKinds()), kindParamName);

} // namespace
