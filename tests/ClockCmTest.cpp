//===-- tests/ClockCmTest.cpp - Version clocks and contention managers ----===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The clock/CM configuration axis introduced by stm/VersionClock.h and
/// stm/ContentionManager.h: each clock algorithm's contract (monotone
/// reads, commit-stamp guarantees, exactness, the seqlock face), the CM
/// policies' consultation telemetry and its obs surface, the TmConfig
/// plumb-through of the factory, and — via a counting fake installed
/// through the setContentionManager seam — the placement contract itself:
/// the CM is consulted between attempts only, so glock (which never
/// aborts) never consults it at all while its commits still settle it.
///
/// Carries the `clocks` ctest label: CI runs this suite under TSan as a
/// dedicated slice, because commit-stamp protocols and CM bookkeeping are
/// exactly where a relaxed-ordering bug would hide.
///
//===----------------------------------------------------------------------===//

#include "stm/Atomically.h"
#include "stm/ContentionManager.h"
#include "stm/Tm.h"
#include "stm/TmBase.h"
#include "stm/VersionClock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

using namespace ptm;

namespace {

//===----------------------------------------------------------------------===//
// Version clocks
//===----------------------------------------------------------------------===//

TEST(VersionClockFactory, RejectsUnknownKindAndZeroThreads) {
  EXPECT_EQ(createVersionClock(static_cast<ClockKind>(999), 2), nullptr);
  for (ClockKind Kind : allClockKinds())
    EXPECT_EQ(createVersionClock(Kind, 0), nullptr) << clockKindName(Kind);
}

TEST(VersionClockFactory, CreatesEveryKindWithMatchingName) {
  for (ClockKind Kind : allClockKinds()) {
    auto C = createVersionClock(Kind, 4);
    ASSERT_NE(C, nullptr) << clockKindName(Kind);
    EXPECT_EQ(C->kind(), Kind);
    EXPECT_STREQ(C->name(), clockKindName(Kind));
  }
}

TEST(VersionClock, Gv1StampsAreExactAndStrictlyIncreasing) {
  auto C = createVersionClock(ClockKind::CK_Gv1, 2);
  EXPECT_TRUE(C->exactStamps());
  uint64_t R0 = C->read();
  uint64_t W1 = C->commitStamp(0);
  EXPECT_GT(W1, R0);       // Guarantee (a): a stamp exceeds prior reads.
  EXPECT_GE(C->read(), W1); // Guarantee (b): reads catch up immediately.
  uint64_t W2 = C->commitStamp(1);
  EXPECT_GT(W2, W1); // Exact stamps: no two commits share a value.
}

TEST(VersionClock, Gv5AdvertisesInexactStamps) {
  auto C = createVersionClock(ClockKind::CK_Gv5, 2);
  // The whole point of pass-on-failure: adopters must not rely on stamp
  // uniqueness (TL2's Rv+1 validation-skip shortcut is unsound here).
  EXPECT_FALSE(C->exactStamps());
  uint64_t R0 = C->read();
  uint64_t W1 = C->commitStamp(0);
  EXPECT_GT(W1, R0);
  EXPECT_GE(C->read(), W1);
}

TEST(VersionClock, ShardedStampsScanAllCells) {
  auto C = createVersionClock(ClockKind::CK_Sharded, 4);
  EXPECT_FALSE(C->exactStamps());
  // Sequential stamps from *different* threads land in different cells;
  // max-scan + 1 still makes each one exceed everything before it.
  uint64_t W0 = C->commitStamp(0);
  EXPECT_GE(C->read(), W0);
  uint64_t W3 = C->commitStamp(3);
  EXPECT_GT(W3, W0);
  uint64_t W1 = C->commitStamp(1);
  EXPECT_GT(W1, W3);
  EXPECT_GE(C->read(), W1);
}

TEST(VersionClock, ReadIsMonotoneAcrossAllKinds) {
  for (ClockKind Kind : allClockKinds()) {
    auto C = createVersionClock(Kind, 4);
    uint64_t Last = C->read();
    for (unsigned I = 0; I < 32; ++I) {
      uint64_t W = C->commitStamp(I % 4);
      EXPECT_GT(W, Last) << clockKindName(Kind);
      uint64_t R = C->read();
      EXPECT_GE(R, W) << clockKindName(Kind);
      EXPECT_GE(R, Last) << clockKindName(Kind);
      Last = R;
    }
    EXPECT_GE(C->peek(), Last) << clockKindName(Kind);
  }
}

TEST(VersionClock, SeqlockFaceWorksOnEveryKind) {
  for (ClockKind Kind : allClockKinds()) {
    auto C = createVersionClock(Kind, 4);
    uint64_t S0 = C->seqRead();
    EXPECT_EQ(S0 % 2, 0u) << clockKindName(Kind); // No writer present.
    ASSERT_TRUE(C->seqTryAcquire(S0)) << clockKindName(Kind);
    EXPECT_EQ(C->seqRead(), S0 + 1) << clockKindName(Kind); // Odd = locked.
    EXPECT_FALSE(C->seqTryAcquire(S0)) << clockKindName(Kind); // Stale CAS.
    C->seqRelease(S0 + 2);
    EXPECT_EQ(C->seqRead(), S0 + 2) << clockKindName(Kind);
    // A second acquire/release round from the new value still works.
    ASSERT_TRUE(C->seqTryAcquire(S0 + 2)) << clockKindName(Kind);
    C->seqRelease(S0 + 4);
    EXPECT_EQ(C->seqRead(), S0 + 4) << clockKindName(Kind);
  }
}

TEST(VersionClock, StampsStayMonotoneUnderConcurrentCommitters) {
  // Two threads stamping concurrently: every stamp a thread draws must
  // exceed the last stamp *it* drew (per-thread monotonicity holds for
  // all three algorithms even when stamps duplicate across threads), and
  // the final read must dominate every stamp drawn.
  for (ClockKind Kind : allClockKinds()) {
    auto C = createVersionClock(Kind, 2);
    std::atomic<uint64_t> MaxStamp{0};
    std::vector<std::thread> Workers;
    for (unsigned T = 0; T < 2; ++T)
      Workers.emplace_back([&, T] {
        uint64_t Prev = 0;
        for (unsigned I = 0; I < 500; ++I) {
          uint64_t W = C->commitStamp(static_cast<ThreadId>(T));
          EXPECT_GT(W, Prev);
          Prev = W;
          uint64_t Seen = MaxStamp.load(std::memory_order_relaxed);
          while (Seen < W && !MaxStamp.compare_exchange_weak(
                                 Seen, W, std::memory_order_relaxed))
            ;
        }
      });
    for (std::thread &W : Workers)
      W.join();
    EXPECT_GE(C->read(), MaxStamp.load()) << clockKindName(Kind);
  }
}

//===----------------------------------------------------------------------===//
// Contention managers
//===----------------------------------------------------------------------===//

TEST(ContentionManagerFactory, RejectsUnknownKindAndZeroThreads) {
  EXPECT_EQ(createContentionManager(static_cast<CmKind>(999), 2, 4), nullptr);
  for (CmKind Kind : allCmKinds())
    EXPECT_EQ(createContentionManager(Kind, 0, 4), nullptr)
        << cmKindName(Kind);
}

TEST(ContentionManagerFactory, CreatesEveryKindWithMatchingName) {
  for (CmKind Kind : allCmKinds()) {
    auto Cm = createContentionManager(Kind, 3, 8);
    ASSERT_NE(Cm, nullptr) << cmKindName(Kind);
    EXPECT_EQ(Cm->kind(), Kind);
    EXPECT_STREQ(Cm->name(), cmKindName(Kind));
    EXPECT_EQ(Cm->maxThreads(), 3u);
  }
}

TEST(ContentionManager, EveryPolicySurvivesAnAbortCommitCycle) {
  // Behavioral smoke on every policy: escalating consecutive failures,
  // a commit to settle, then more failures — each onAbort must return
  // (the waits are capped) and count into telemetry.
  for (CmKind Kind : allCmKinds()) {
    auto Cm = createContentionManager(Kind, 2, 8);
    ASSERT_NE(Cm, nullptr);
    for (unsigned I = 0; I < 4; ++I)
      Cm->onAbort(0, AbortCause::AC_LockHeld, /*Work=*/I, /*Conflict=*/3);
    Cm->onCommit(0);
    Cm->noteLockBusy(0, 3);
    Cm->onAbort(0, AbortCause::AC_ReadValidation, 10, kNoObject);
    Cm->onCommit(0);
    CmTelemetry T = Cm->telemetry();
    EXPECT_EQ(T.totalConsults(), 5u) << cmKindName(Kind);
    EXPECT_EQ(T.LockBusyNotes, 1u) << cmKindName(Kind);
    EXPECT_EQ(T.WaitNs.Count, 5u) << cmKindName(Kind);
  }
}

TEST(ContentionManager, TelemetrySplitsConsultsByCause) {
  auto Cm = createContentionManager(CmKind::CM_Backoff, 2, 4);
  Cm->onAbort(0, AbortCause::AC_LockHeld, 3, 1);
  Cm->onAbort(1, AbortCause::AC_LockHeld, 1, 1);
  Cm->onAbort(0, AbortCause::AC_ReadValidation, 2, kNoObject);
  Cm->noteLockBusy(1, 1);
  CmTelemetry T = Cm->telemetry();
  EXPECT_EQ(T.Consults[static_cast<unsigned>(AbortCause::AC_LockHeld)], 2u);
  EXPECT_EQ(T.Consults[static_cast<unsigned>(AbortCause::AC_ReadValidation)],
            1u);
  EXPECT_EQ(T.totalConsults(), 3u);
  EXPECT_EQ(T.LockBusyNotes, 1u);
  EXPECT_EQ(T.WaitNs.Count, 3u);
}

TEST(ContentionManager, AppendTelemetryUsesTheObsNamingScheme) {
  auto Cm = createContentionManager(CmKind::CM_Karma, 2, 4);
  Cm->onAbort(0, AbortCause::AC_LockHeld, 3, 1);
  Cm->onAbort(0, AbortCause::AC_LockHeld, 3, 1);
  Cm->onAbort(1, AbortCause::AC_User, 0, kNoObject);
  Cm->noteLockBusy(0, 2);
  obs::MetricsSnapshot Snap;
  appendCmTelemetry(Cm->telemetry(), Cm->name(), Snap);
  EXPECT_EQ(Snap.counter("cm.karma.consults.lock-held"), 2u);
  EXPECT_EQ(Snap.counter("cm.karma.consults.user"), 1u);
  EXPECT_EQ(Snap.counter("cm.karma.lock_busy_notes"), 1u);
  const obs::HistogramSnapshot *Wait = Snap.histogram("cm.karma.wait_ns");
  ASSERT_NE(Wait, nullptr);
  EXPECT_EQ(Wait->Count, 3u);
  // Zero-count causes are skipped: two consult series + the busy-notes
  // counter and nothing else.
  EXPECT_EQ(Snap.Counters.size(), 3u);
  EXPECT_EQ(Snap.counter("cm.karma.consults.read-validation"), 0u);
}

//===----------------------------------------------------------------------===//
// TmConfig plumb-through and the CM placement contract
//===----------------------------------------------------------------------===//

/// Counting fake: records consultations without waiting. kind() reports
/// backoff so name-keyed telemetry stays well-formed.
class CountingCm final : public ContentionManager {
public:
  explicit CountingCm(unsigned MaxThreads) : ContentionManager(MaxThreads) {}
  CmKind kind() const override { return CmKind::CM_Backoff; }

  std::atomic<uint64_t> Waits{0};
  std::atomic<uint64_t> Settles{0};

private:
  void wait(ThreadId, AbortCause, unsigned, ObjectId) override { ++Waits; }
  void settle(ThreadId) override { ++Settles; }
};

TEST(TmConfigPlumbing, FactoryHandsEveryTmItsConfiguredClockAndCm) {
  const TmConfig Cfg{ClockKind::CK_Gv5, CmKind::CM_Karma};
  for (TmKind Kind : allTmKinds()) {
    auto M = createTm(Kind, 4, 2, Cfg);
    ASSERT_NE(M, nullptr) << tmKindName(Kind);
    EXPECT_EQ(M->config().Clock, ClockKind::CK_Gv5) << tmKindName(Kind);
    EXPECT_EQ(M->config().Cm, CmKind::CM_Karma) << tmKindName(Kind);
    ASSERT_NE(M->contentionManager(), nullptr) << tmKindName(Kind);
    EXPECT_EQ(M->contentionManager()->kind(), CmKind::CM_Karma)
        << tmKindName(Kind);
    // Clock-based TMs expose the configured clock; the rest have none.
    if (const VersionClock *C = M->versionClock()) {
      EXPECT_EQ(C->kind(), ClockKind::CK_Gv5) << tmKindName(Kind);
    }
  }
  // The clock-based quartet really does expose a clock.
  for (TmKind Kind : {TmKind::TK_Tl2, TmKind::TK_OrecTs, TmKind::TK_Tml,
                      TmKind::TK_Mv}) {
    auto M = createTm(Kind, 4, 2, Cfg);
    EXPECT_NE(M->versionClock(), nullptr) << tmKindName(Kind);
  }
}

TEST(TmConfigPlumbing, EveryClockCommitsCorrectValuesOnEveryClockTm) {
  // Functional sweep of the clock axis: a small write/read workload must
  // produce the same committed state under every clock on every
  // clock-based TM (gv5/sharded lose the exact-stamp shortcut, never
  // correctness).
  for (TmKind Kind : {TmKind::TK_Tl2, TmKind::TK_OrecTs, TmKind::TK_Tml,
                      TmKind::TK_Mv}) {
    for (ClockKind Clock : allClockKinds()) {
      auto M = createTm(Kind, 4, 2, TmConfig{Clock, CmKind::CM_Backoff});
      ASSERT_NE(M, nullptr);
      for (uint64_t I = 0; I < 8; ++I) {
        bool Committed = atomically(*M, 0, [&](TxRef &Tx) {
          uint64_t V = 0;
          if (Tx.read(I % 4, V))
            Tx.write(I % 4, V + I + 1);
        });
        ASSERT_TRUE(Committed)
            << tmKindName(Kind) << "/" << clockKindName(Clock);
      }
      // Each object accumulated its two increments.
      EXPECT_EQ(M->sample(0), (0 + 1) + (4 + 1ull))
          << tmKindName(Kind) << "/" << clockKindName(Clock);
      EXPECT_EQ(M->sample(3), (3 + 1) + (7 + 1ull))
          << tmKindName(Kind) << "/" << clockKindName(Clock);
    }
  }
}

TEST(CmPlacement, GlockNeverConsultsItsCmButCommitsSettleIt) {
  // The satellite claim behind unifying the backoff call-sites onto the
  // CM seam: glock cannot abort, so even a contended run never consults
  // the CM's wait path — while every commit still flows through
  // onCommit. A policy that (wrongly) waited inside transactions would
  // show up here as Waits != 0.
  auto M = createTm(TmKind::TK_GlobalLock, 1, 2);
  auto *Base = dynamic_cast<TmBase *>(M.get());
  ASSERT_NE(Base, nullptr);
  auto Counting = std::make_unique<CountingCm>(2);
  CountingCm *Cm = Counting.get();
  Base->setContentionManager(std::move(Counting));

  constexpr uint64_t PerThread = 200;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < 2; ++T)
    Workers.emplace_back([&M, T] {
      for (uint64_t I = 0; I < PerThread; ++I)
        atomically(*M, static_cast<ThreadId>(T), [](TxRef &Tx) {
          uint64_t V = 0;
          if (Tx.read(0, V))
            Tx.write(0, V + 1);
        });
    });
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(M->sample(0), 2 * PerThread);
  EXPECT_EQ(Cm->Waits.load(), 0u);
  EXPECT_EQ(Cm->Settles.load(), 2 * PerThread);
  EXPECT_EQ(Cm->telemetry().totalConsults(), 0u);
}

TEST(CmPlacement, Tl2ConsultsTheCmBetweenAttemptsOnConflict) {
  // Positive control for the seam: force exactly one TL2 conflict (a
  // competing commit lands between the victim's begin and its read) and
  // watch the retry combinator route the abort through the installed CM.
  auto M = createTm(TmKind::TK_Tl2, 2, 2);
  auto *Base = dynamic_cast<TmBase *>(M.get());
  ASSERT_NE(Base, nullptr);
  auto Counting = std::make_unique<CountingCm>(2);
  CountingCm *Cm = Counting.get();
  Base->setContentionManager(std::move(Counting));

  bool Conflicted = false;
  bool Committed = atomically(*M, 0, [&](TxRef &Tx) {
    if (!Conflicted) {
      // First attempt only: thread 1 commits an update the snapshot
      // cannot admit, so the read below must abort the attempt.
      Conflicted = true;
      M->txBegin(1);
      ASSERT_TRUE(M->txWrite(1, 0, 99));
      ASSERT_TRUE(M->txCommit(1));
    }
    uint64_t V = 0;
    Tx.read(0, V);
  });
  EXPECT_TRUE(Committed);
  EXPECT_GE(Cm->Waits.load(), 1u);
  EXPECT_GE(Cm->telemetry().totalConsults(), 1u);
  EXPECT_GE(Cm->Settles.load(), 1u); // The eventual commit settled it.
}

} // namespace
