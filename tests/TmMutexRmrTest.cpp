//===-- tests/TmMutexRmrTest.cpp - Theorem 7's O(1) overhead --------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// Theorem 7 states the RMR cost of Algorithm 1 is within a *constant
/// factor* of the inner TM's. Deterministic checks: uncontended passages
/// cost a bounded number of RMRs per passage in all three memory models,
/// the handoff path included, and the Entry spin registers are local in
/// DSM (homed at the waiter). Cross-module integration: the inner TM's
/// recorded history under real contention is strictly serializable.
///
//===----------------------------------------------------------------------===//

#include "history/Checker.h"
#include "history/RecordingTm.h"
#include "mutex/TmMutex.h"
#include "runtime/Instrumentation.h"
#include "runtime/RmrSimulator.h"
#include "stm/Stm.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace ptm;

namespace {

double uncontendedRmrsPerPassage(TmKind Inner, MemoryModelKind Model,
                                 unsigned Passages) {
  auto L = createTmMutex(Inner, 2);
  RmrSimulator Sim(Model, 2);
  Instrumentation Instr(0, &Sim);
  ScopedInstrumentation Scope(Instr);
  for (unsigned P = 0; P < Passages; ++P) {
    L->enter(0);
    L->exit(0);
  }
  return static_cast<double>(Instr.totalRmrs()) / Passages;
}

} // namespace

TEST(TmMutexRmr, UncontendedPassagesAreConstant) {
  // No contention => no retries; the whole passage (func() + handshake)
  // must cost a small constant number of RMRs, per Theorem 7.
  for (TmKind Inner : allTmKinds()) {
    for (MemoryModelKind Model :
         {MemoryModelKind::MM_CcWriteThrough, MemoryModelKind::MM_CcWriteBack,
          MemoryModelKind::MM_Dsm}) {
      double PerPassage = uncontendedRmrsPerPassage(Inner, Model, 50);
      // The multi-version TM pays a larger — but still constant — price
      // per commit: the K-deep ring scan to pick an eviction slot, one
      // ActiveReaders check, and the two-cell version install.
      double Bound = Inner == TmKind::TK_Mv ? 24.0 : 16.0;
      EXPECT_LE(PerPassage, Bound)
          << tmKindName(Inner) << " under " << memoryModelName(Model);
    }
  }
}

TEST(TmMutexRmr, SequentialHandoffCostsConstantInDsm) {
  // Threads alternate passages (never concurrent). Every passage after
  // the first takes the "predecessor already done" path through the
  // handshake; in DSM the Done/Succ/Lock registers are homed so the
  // remote traffic stays bounded.
  auto L = createTmMutex(TmKind::TK_Tl2, 4);
  RmrSimulator Sim(MemoryModelKind::MM_Dsm, 4);
  std::vector<double> PerThread(4, 0);

  constexpr unsigned Rounds = 25;
  for (unsigned R = 0; R < Rounds; ++R) {
    for (ThreadId T = 0; T < 4; ++T) {
      Instrumentation Instr(T, &Sim);
      ScopedInstrumentation Scope(Instr);
      L->enter(T);
      L->exit(T);
      PerThread[T] += static_cast<double>(Instr.totalRmrs());
    }
  }
  for (ThreadId T = 0; T < 4; ++T)
    EXPECT_LE(PerThread[T] / Rounds, 24.0) << "thread " << T;
}

TEST(TmMutexRmr, InnerTmHistoryIsStrictlySerializable) {
  // Algorithm 1 relies on the TM behaving like an atomic fetch-and-store
  // on X. Record the inner TM's history under real contention and check
  // it against the Section 3 definition.
  auto Recorder =
      std::make_unique<RecordingTm>(createTm(TmKind::TK_OrecIncremental, 1, 2));
  RecordingTm *Rec = Recorder.get();
  TmMutex L(std::move(Recorder), 2);

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < 2; ++T) {
    Workers.emplace_back([&, T] {
      for (int P = 0; P < 7; ++P) {
        L.enter(T);
        L.exit(T);
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();

  History H = Rec->takeHistory();
  EXPECT_EQ(H.numCommitted(), 14u)
      << "one committed func() transaction per passage";
  CheckResult R = checkStrictSerializability(H);
  EXPECT_NE(R, CheckResult::CR_Violation);

  // The committed chain of fetch-and-stores must thread X's values:
  // each commit reads the tag the previous commit wrote.
  EXPECT_EQ(checkOpacity(H), R);
}
