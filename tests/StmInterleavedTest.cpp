//===-- tests/StmInterleavedTest.cpp - Hand-crafted interleavings ---------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// Deterministic two-transaction interleavings driven from a single test
/// thread using two descriptor slots. These pin down the conflict
/// anomalies every strictly serializable TM must reject: lost updates,
/// write skew with an antidependency cycle, fractured reads, dirty reads.
///
/// GlobalLockTm is excluded where noted: it blocks at txBegin, so the
/// interleavings cannot even be expressed against it (which is its own
/// kind of correctness).
///
/// The lost-update case is the regression test for a real bug found
/// during development: TL2's commit-time validation skipped the
/// pre-lock version check for read-set entries locked by the committer
/// itself, letting two concurrent increments both commit.
///
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"

#include <gtest/gtest.h>

using namespace ptm;

namespace {

/// The lazy-update TMs, against which mid-transaction interleavings can
/// be expressed without blocking.
const TmKind kLazyTms[] = {TmKind::TK_Tl2, TmKind::TK_Norec,
                           TmKind::TK_OrecIncremental, TmKind::TK_OrecTs,
                           TmKind::TK_Mv};

class LazyTmTest : public ::testing::TestWithParam<TmKind> {
protected:
  void SetUp() override { M = createTm(GetParam(), 8, 2); }
  std::unique_ptr<Tm> M;
};

std::string paramName(const ::testing::TestParamInfo<TmKind> &Info) {
  std::string Name = tmKindName(Info.param);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

} // namespace

TEST_P(LazyTmTest, LostUpdateIsRejected) {
  // Both transactions read X=0 and buffer X := read+1; the first commit
  // wins, the second MUST abort (regression: TL2 self-locked validation).
  uint64_t V0 = 99, V1 = 99;
  M->txBegin(0);
  M->txBegin(1);
  ASSERT_TRUE(M->txRead(0, 0, V0));
  ASSERT_TRUE(M->txRead(1, 0, V1));
  EXPECT_EQ(V0, 0u);
  EXPECT_EQ(V1, 0u);
  ASSERT_TRUE(M->txWrite(0, 0, V0 + 1));
  ASSERT_TRUE(M->txWrite(1, 0, V1 + 1));

  EXPECT_TRUE(M->txCommit(0)) << "first committer must win";
  EXPECT_FALSE(M->txCommit(1)) << "second increment must not be lost";
  EXPECT_EQ(M->sample(0), 1u);
}

TEST_P(LazyTmTest, LostUpdateRejectedRegardlessOfCommitOrder) {
  // Same anomaly, opposite commit order.
  uint64_t V;
  M->txBegin(0);
  M->txBegin(1);
  ASSERT_TRUE(M->txRead(0, 0, V));
  ASSERT_TRUE(M->txRead(1, 0, V));
  ASSERT_TRUE(M->txWrite(0, 0, 10));
  ASSERT_TRUE(M->txWrite(1, 0, 20));
  EXPECT_TRUE(M->txCommit(1));
  EXPECT_FALSE(M->txCommit(0));
  EXPECT_EQ(M->sample(0), 20u);
}

TEST_P(LazyTmTest, AntidependencyCycleIsRejected) {
  // T0: r(A) r(B) w(A); T1: r(A) r(B) w(B). Serializing either first
  // makes the other's read stale; exactly one may commit.
  uint64_t V;
  M->txBegin(0);
  M->txBegin(1);
  ASSERT_TRUE(M->txRead(0, 0, V));
  ASSERT_TRUE(M->txRead(0, 1, V));
  ASSERT_TRUE(M->txRead(1, 0, V));
  ASSERT_TRUE(M->txRead(1, 1, V));
  ASSERT_TRUE(M->txWrite(0, 0, 1));
  ASSERT_TRUE(M->txWrite(1, 1, 1));

  bool First = M->txCommit(0);
  bool Second = M->txCommit(1);
  EXPECT_TRUE(First) << "no reason for the first committer to fail";
  EXPECT_FALSE(Second) << "write-skew cycle must be broken by an abort";
}

TEST_P(LazyTmTest, DisjointInterleavedTransactionsBothCommit) {
  // Sanity counterpart: interleaved but conflict-free transactions must
  // BOTH commit (progressiveness, interleaved edition).
  uint64_t V;
  M->txBegin(0);
  M->txBegin(1);
  ASSERT_TRUE(M->txRead(0, 0, V));
  ASSERT_TRUE(M->txRead(1, 2, V));
  ASSERT_TRUE(M->txWrite(0, 1, 7));
  ASSERT_TRUE(M->txWrite(1, 3, 8));
  EXPECT_TRUE(M->txCommit(0));
  EXPECT_TRUE(M->txCommit(1));
  EXPECT_EQ(M->sample(1), 7u);
  EXPECT_EQ(M->sample(3), 8u);
}

TEST_P(LazyTmTest, FracturedReadIsRejected) {
  // T0 reads A; T1 commits A=1, B=1; T0 then reads B. Returning B=1 would
  // pair with the stale A=0 — the canonical opacity violation. The read
  // must abort (it cannot return 0: that value no longer exists, and
  // these TMs do not keep old versions).
  uint64_t V;
  M->txBegin(0);
  ASSERT_TRUE(M->txRead(0, 0, V));
  EXPECT_EQ(V, 0u);

  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 1));
  ASSERT_TRUE(M->txWrite(1, 1, 1));
  ASSERT_TRUE(M->txCommit(1));

  uint64_t B = 1234;
  bool Ok = M->txRead(0, 1, B);
  if (Ok) {
    EXPECT_EQ(B, 0u) << "fractured read: saw B=1 alongside stale A=0";
    EXPECT_FALSE(M->txCommit(0))
        << "a torn snapshot must not be committed";
  } else {
    EXPECT_NE(M->lastAbortCause(0), AbortCause::AC_None);
  }
  EXPECT_EQ(M->sample(0), 1u);
  EXPECT_EQ(M->sample(1), 1u);
}

TEST_P(LazyTmTest, DirtyReadsAreImpossible) {
  // T1 buffers a write but has not committed; T0 must read the old value
  // (lazy update = nothing published before commit).
  uint64_t V;
  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 42));

  M->txBegin(0);
  ASSERT_TRUE(M->txRead(0, 0, V));
  EXPECT_EQ(V, 0u) << "uncommitted write leaked";
  EXPECT_TRUE(M->txCommit(0));

  ASSERT_TRUE(M->txCommit(1));
  EXPECT_EQ(M->sample(0), 42u);
}

TEST_P(LazyTmTest, AbortedWriterLeavesNoTrace) {
  uint64_t V;
  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 42));
  M->txAbort(1);

  M->txBegin(0);
  ASSERT_TRUE(M->txRead(0, 0, V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(M->txCommit(0));
}

TEST_P(LazyTmTest, ReaderUnaffectedByLaterDisjointCommit) {
  // T0 reads A; T1 commits to B (disjoint). T0's snapshot stays valid and
  // it must still commit (progressive reads across commits to other
  // objects).
  uint64_t V;
  M->txBegin(0);
  ASSERT_TRUE(M->txRead(0, 0, V));

  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 5, 9));
  ASSERT_TRUE(M->txCommit(1));

  uint64_t W;
  ASSERT_TRUE(M->txRead(0, 1, W)) << "disjoint commit killed the reader";
  EXPECT_EQ(W, 0u);
  EXPECT_TRUE(M->txCommit(0));
}

INSTANTIATE_TEST_SUITE_P(LazyTms, LazyTmTest, ::testing::ValuesIn(kLazyTms),
                         paramName);

//===----------------------------------------------------------------------===//
// TLRW (eager) interleavings: conflicts surface at encounter time.
//===----------------------------------------------------------------------===//

TEST(TlrwInterleaved, WriteLockBlocksReaders) {
  auto M = createTm(TmKind::TK_Tlrw, 4, 2);
  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 7));

  M->txBegin(0);
  uint64_t V;
  EXPECT_FALSE(M->txRead(0, 0, V)) << "read under a write lock must abort";
  EXPECT_EQ(M->lastAbortCause(0), AbortCause::AC_LockHeld);

  ASSERT_TRUE(M->txCommit(1));
  M->txBegin(0);
  ASSERT_TRUE(M->txRead(0, 0, V));
  EXPECT_EQ(V, 7u);
  ASSERT_TRUE(M->txCommit(0));
}

TEST(TlrwInterleaved, ReadLockBlocksWriters) {
  auto M = createTm(TmKind::TK_Tlrw, 4, 2);
  M->txBegin(0);
  uint64_t V;
  ASSERT_TRUE(M->txRead(0, 0, V));

  M->txBegin(1);
  EXPECT_FALSE(M->txWrite(1, 0, 9)) << "write under a read lock must abort";

  ASSERT_TRUE(M->txCommit(0));
}

TEST(TlrwInterleaved, ConcurrentReadersShareTheLock) {
  auto M = createTm(TmKind::TK_Tlrw, 4, 2);
  M->txBegin(0);
  M->txBegin(1);
  uint64_t V;
  EXPECT_TRUE(M->txRead(0, 0, V));
  EXPECT_TRUE(M->txRead(1, 0, V));
  EXPECT_TRUE(M->txCommit(0));
  EXPECT_TRUE(M->txCommit(1));
}

TEST(TlrwInterleaved, UpgradeFailsWithConcurrentReader) {
  // Both hold read locks; an upgrade would need sole ownership.
  auto M = createTm(TmKind::TK_Tlrw, 4, 2);
  M->txBegin(0);
  M->txBegin(1);
  uint64_t V;
  ASSERT_TRUE(M->txRead(0, 0, V));
  ASSERT_TRUE(M->txRead(1, 0, V));
  EXPECT_FALSE(M->txWrite(0, 0, 1))
      << "upgrade with another reader present must abort, not deadlock";
  EXPECT_TRUE(M->txCommit(1));
}

TEST(TlrwInterleaved, UpgradeSucceedsWhenSoleReader) {
  auto M = createTm(TmKind::TK_Tlrw, 4, 2);
  M->txBegin(0);
  uint64_t V;
  ASSERT_TRUE(M->txRead(0, 0, V));
  EXPECT_TRUE(M->txWrite(0, 0, V + 1)) << "sole reader upgrades in place";
  EXPECT_TRUE(M->txCommit(0));
  EXPECT_EQ(M->sample(0), 1u);
}

//===----------------------------------------------------------------------===//
// NOrec value-based validation specifics.
//===----------------------------------------------------------------------===//

TEST(NorecInterleaved, AbaValueIsAcceptedAndOpaque) {
  // Value-based validation admits ABA: T0 read X=0; two commits take X to
  // 1 and back to 0; T0's revalidation re-reads X=0 and survives. This is
  // correct — T0 serializes after the second commit — and distinguishes
  // NOrec from version-based TMs, which abort here.
  auto M = createTm(TmKind::TK_Norec, 4, 2);
  uint64_t V;
  M->txBegin(0);
  ASSERT_TRUE(M->txRead(0, 0, V));
  EXPECT_EQ(V, 0u);

  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 1));
  ASSERT_TRUE(M->txCommit(1));
  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 0));
  ASSERT_TRUE(M->txCommit(1));

  // The clock moved twice, but X's value is back: the next read triggers
  // revalidation, which passes.
  uint64_t W;
  EXPECT_TRUE(M->txRead(0, 1, W)) << "ABA must survive value validation";
  EXPECT_TRUE(M->txCommit(0));
}

TEST(Tl2Interleaved, AbaVersionIsRejected) {
  // The same ABA kills a version-based reader: X's version advanced even
  // though its value returned.
  auto M = createTm(TmKind::TK_Tl2, 4, 2);
  uint64_t V;
  M->txBegin(0);
  ASSERT_TRUE(M->txRead(0, 0, V));

  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 1));
  ASSERT_TRUE(M->txCommit(1));
  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 0));
  ASSERT_TRUE(M->txCommit(1));

  // Re-reading X: its value is back to 0, but its version is 2 > RV = 0.
  uint64_t W;
  EXPECT_FALSE(M->txRead(0, 0, W))
      << "TL2's version check must reject the ABA'd object";
  EXPECT_EQ(M->lastAbortCause(0), AbortCause::AC_ReadValidation);
}

//===----------------------------------------------------------------------===//
// OrecTs timestamp-extension specifics: the clock escape hatch without
// TL2's spurious aborts.
//===----------------------------------------------------------------------===//

TEST(OrecTsInterleaved, StaleReadExtendsInsteadOfAborting) {
  // T0 starts, then T1 commits to B. T0 now reads B: its version (1)
  // post-dates T0's snapshot (0). TL2 aborts here — see
  // Tl2SpuriousAbortContrast below — but there is no conflict: T0 has
  // read nothing that changed. orec-ts revalidates its (empty-so-far)
  // read set, extends the snapshot and returns the fresh value.
  auto M = createTm(TmKind::TK_OrecTs, 4, 2);
  uint64_t V;
  M->txBegin(0);
  ASSERT_TRUE(M->txRead(0, 0, V)); // Snapshot anchored with one read.

  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 1, 42));
  ASSERT_TRUE(M->txCommit(1));

  uint64_t B = 0;
  EXPECT_TRUE(M->txRead(0, 1, B))
      << "timestamp extension must absorb a disjoint concurrent commit";
  EXPECT_EQ(B, 42u);
  EXPECT_TRUE(M->txCommit(0));
  EXPECT_EQ(M->stats().Aborts[static_cast<unsigned>(
                AbortCause::AC_ReadValidation)],
            0u);
}

TEST(OrecTsInterleaved, Tl2SpuriousAbortContrast) {
  // The identical schedule on TL2: the read of B dies on version > Rv
  // even though no object T0 read was touched. This pair of tests is the
  // orec-ts design point (fewer AC_ReadValidation aborts than tl2).
  auto M = createTm(TmKind::TK_Tl2, 4, 2);
  uint64_t V;
  M->txBegin(0);
  ASSERT_TRUE(M->txRead(0, 0, V));

  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 1, 42));
  ASSERT_TRUE(M->txCommit(1));

  uint64_t B = 0;
  EXPECT_FALSE(M->txRead(0, 1, B));
  EXPECT_EQ(M->lastAbortCause(0), AbortCause::AC_ReadValidation);
}

TEST(OrecTsInterleaved, ExtensionFailsWhenAReadObjectChanged) {
  // Fractured-read protection must survive the extension machinery: T0
  // reads A; T1 commits A=1, B=1; T0 reads B. The extension revalidates
  // A, finds it overwritten, and the read aborts — B=1 next to the stale
  // A=0 is exactly the torn snapshot opacity forbids.
  auto M = createTm(TmKind::TK_OrecTs, 4, 2);
  uint64_t V;
  M->txBegin(0);
  ASSERT_TRUE(M->txRead(0, 0, V));
  EXPECT_EQ(V, 0u);

  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 1));
  ASSERT_TRUE(M->txWrite(1, 1, 1));
  ASSERT_TRUE(M->txCommit(1));

  uint64_t B = 0;
  EXPECT_FALSE(M->txRead(0, 1, B))
      << "a failed extension must abort, not return a torn snapshot";
  EXPECT_EQ(M->lastAbortCause(0), AbortCause::AC_ReadValidation);
}

TEST(OrecTsInterleaved, AbaVersionIsRejectedOnRepeatedRead) {
  // Version-based validation rejects ABA like TL2 does: X's value returns
  // to 0 but its version advanced, so T0's repeated read of X must not
  // pretend its snapshot still holds.
  auto M = createTm(TmKind::TK_OrecTs, 4, 2);
  uint64_t V;
  M->txBegin(0);
  ASSERT_TRUE(M->txRead(0, 0, V));

  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 1));
  ASSERT_TRUE(M->txCommit(1));
  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 0));
  ASSERT_TRUE(M->txCommit(1));

  uint64_t W;
  EXPECT_FALSE(M->txRead(0, 0, W))
      << "the version check must reject the ABA'd object";
  EXPECT_EQ(M->lastAbortCause(0), AbortCause::AC_ReadValidation);
}

TEST(OrecTsInterleaved, ReadOnlySnapshotExtendsAcrossManyCommits) {
  // A reader chasing a writer: each object it is about to read was *just*
  // committed, so every single read observes a version newer than the
  // snapshot — the workload where TL2's clock tax is total (its first
  // such read aborts). orec-ts extends eight times and commits with zero
  // aborts, because none of the extensions ever finds an already-read
  // object changed.
  auto M = createTm(TmKind::TK_OrecTs, 16, 2);
  M->txBegin(0);
  uint64_t V;
  for (ObjectId Obj = 0; Obj < 8; ++Obj) {
    M->txBegin(1);
    ASSERT_TRUE(M->txWrite(1, 8 + Obj, 100 + Obj));
    ASSERT_TRUE(M->txCommit(1));

    ASSERT_TRUE(M->txRead(0, 8 + Obj, V))
        << "reader died at step " << Obj << " without any conflict";
    EXPECT_EQ(V, 100u + Obj) << "extension must surface the fresh value";
  }
  EXPECT_TRUE(M->txCommit(0));
  TmStats S = M->stats();
  EXPECT_EQ(S.totalAborts(), 0u)
      << "commits the reader never conflicted with must not abort it";
}

//===----------------------------------------------------------------------===//
// OrecEager (encounter-time) interleavings: write-write conflicts are
// detected at the write, not at commit.
//===----------------------------------------------------------------------===//

TEST(OrecEagerInterleaved, SecondWriterAbortsAtEncounter) {
  auto M = createTm(TmKind::TK_OrecEager, 4, 2);
  M->txBegin(0);
  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(0, 0, 1));
  EXPECT_FALSE(M->txWrite(1, 0, 2))
      << "eager acquisition must surface the conflict immediately";
  EXPECT_EQ(M->lastAbortCause(1), AbortCause::AC_LockHeld);
  EXPECT_TRUE(M->txCommit(0));
  EXPECT_EQ(M->sample(0), 1u);
}

TEST(OrecEagerInterleaved, ReaderOfLockedObjectAborts) {
  auto M = createTm(TmKind::TK_OrecEager, 4, 2);
  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 7));

  M->txBegin(0);
  uint64_t V;
  EXPECT_FALSE(M->txRead(0, 0, V))
      << "in-place dirty values must never be readable";
  EXPECT_EQ(M->lastAbortCause(0), AbortCause::AC_LockHeld);
  ASSERT_TRUE(M->txCommit(1));
  EXPECT_EQ(M->sample(0), 7u);
}

TEST(OrecEagerInterleaved, AbortUndoesInPlaceWrites) {
  auto M = createTm(TmKind::TK_OrecEager, 4, 2);
  M->init(0, 10);
  M->txBegin(0);
  ASSERT_TRUE(M->txWrite(0, 0, 11));
  ASSERT_TRUE(M->txWrite(0, 1, 12));
  M->txAbort(0);
  EXPECT_EQ(M->sample(0), 10u);
  EXPECT_EQ(M->sample(1), 0u);

  // Locks released: another transaction proceeds unhindered.
  M->txBegin(1);
  uint64_t V;
  ASSERT_TRUE(M->txRead(1, 0, V));
  EXPECT_EQ(V, 10u);
  ASSERT_TRUE(M->txCommit(1));
}

TEST(OrecEagerInterleaved, LostUpdateStillRejected) {
  // Read-read then write-write on the same object: the second write hits
  // the first writer's lock; if the first already committed, the second
  // writer's acquisition sees a bumped version vs its read entry.
  auto M = createTm(TmKind::TK_OrecEager, 4, 2);
  uint64_t V0, V1;
  M->txBegin(0);
  M->txBegin(1);
  ASSERT_TRUE(M->txRead(0, 0, V0));
  ASSERT_TRUE(M->txRead(1, 0, V1));
  ASSERT_TRUE(M->txWrite(0, 0, V0 + 1));
  ASSERT_TRUE(M->txCommit(0));
  EXPECT_FALSE(M->txWrite(1, 0, V1 + 1))
      << "stale read + late write must abort";
  EXPECT_EQ(M->sample(0), 1u);
}

TEST(OrecEagerInterleaved, FracturedReadRejected) {
  auto M = createTm(TmKind::TK_OrecEager, 4, 2);
  uint64_t V;
  M->txBegin(0);
  ASSERT_TRUE(M->txRead(0, 0, V));

  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 1));
  ASSERT_TRUE(M->txWrite(1, 1, 1));
  ASSERT_TRUE(M->txCommit(1));

  uint64_t B;
  EXPECT_FALSE(M->txRead(0, 1, B))
      << "incremental validation must catch the stale snapshot";
}

//===----------------------------------------------------------------------===//
// Multi-version snapshot interleavings: a read-only transaction keeps
// serving its begin-time snapshot across concurrent commits — where the
// single-version TMs above must abort (FracturedReadIsRejected), mv
// returns the OLD values and commits.
//===----------------------------------------------------------------------===//

TEST(MvInterleaved, ReadOnlySnapshotIgnoresLaterCommit) {
  auto M = createTm(TmKind::TK_Mv, 4, 2);
  M->init(0, 5);

  M->txBeginReadOnly(0);
  uint64_t V;
  ASSERT_TRUE(M->txRead(0, 0, V));
  EXPECT_EQ(V, 5u);

  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 6));
  ASSERT_TRUE(M->txCommit(1));

  // The snapshot predates the commit: the reader re-reads the old value
  // — the exact schedule that forces an abort on every 1-version TM.
  ASSERT_TRUE(M->txRead(0, 0, V));
  EXPECT_EQ(V, 5u) << "snapshot read must surface the pre-commit version";
  EXPECT_TRUE(M->txCommit(0));

  // A snapshot taken after the commit sees the new value.
  M->txBeginReadOnly(1);
  ASSERT_TRUE(M->txRead(1, 0, V));
  EXPECT_EQ(V, 6u);
  EXPECT_TRUE(M->txCommit(1));
  EXPECT_EQ(M->stats().totalAborts(), 0u);
}

TEST(MvInterleaved, FracturedReadScheduleYieldsConsistentOldSnapshot) {
  // The FracturedReadIsRejected schedule, replayed read-only: T0 reads
  // A=0; T1 commits A=1,B=1; T0 then reads B. Where the single-version
  // TMs must abort T0 (B=1 next to the stale A=0 is torn), mv serves
  // B=0 from the history — the full old snapshot, abort-free.
  auto M = createTm(TmKind::TK_Mv, 4, 2);
  M->txBeginReadOnly(0);
  uint64_t A;
  ASSERT_TRUE(M->txRead(0, 0, A));
  EXPECT_EQ(A, 0u);

  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 1));
  ASSERT_TRUE(M->txWrite(1, 1, 1));
  ASSERT_TRUE(M->txCommit(1));

  uint64_t B = 1234;
  ASSERT_TRUE(M->txRead(0, 1, B)) << "a read-only snapshot never aborts";
  EXPECT_EQ(B, 0u) << "B must come from the same (old) snapshot as A";
  EXPECT_TRUE(M->txCommit(0));
  EXPECT_EQ(M->sample(0), 1u);
  EXPECT_EQ(M->sample(1), 1u);
}

TEST(MvInterleaved, HistoryTruncationAbortsTheUpdateNeverTheReader) {
  // The bounded-history pressure valve: an active snapshot pins the ring.
  // With kHistoryDepth versions retained, an update that would evict a
  // version the snapshot can still reach must abort (AC_HistoryFull) —
  // the penalty lands on the UPDATE, never the read-only transaction.
  auto M = createTm(TmKind::TK_Mv, 4, 2);

  M->txBeginReadOnly(0); // Snapshot at version 0: pins the initial value.
  uint64_t V;
  ASSERT_TRUE(M->txRead(0, 0, V));
  EXPECT_EQ(V, 0u);

  // Three commits fill the remaining ring slots (versions 1, 2, 3).
  for (uint64_t I = 1; I <= 3; ++I) {
    M->txBegin(1);
    ASSERT_TRUE(M->txWrite(1, 0, 100 + I));
    ASSERT_TRUE(M->txCommit(1)) << "commit " << I << " fits the ring";
  }

  // The fourth would evict version 0 while the snapshot still needs it.
  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 999));
  EXPECT_FALSE(M->txCommit(1)) << "eviction of a pinned version must fail";
  EXPECT_EQ(M->lastAbortCause(1), AbortCause::AC_HistoryFull);

  // The reader is untouched: still serving version 0, and it commits.
  ASSERT_TRUE(M->txRead(0, 0, V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(M->txCommit(0));

  // With the snapshot gone the same update sails through.
  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 999));
  EXPECT_TRUE(M->txCommit(1)) << "no reader left to pin the history";
  EXPECT_EQ(M->sample(0), 999u);
}

TEST(MvInterleaved, WriteInsideReadOnlyModeAborts) {
  // The read-only declaration is a contract: a body that writes anyway
  // must fail the transaction (AC_User), not lose the write silently.
  auto M = createTm(TmKind::TK_Mv, 4, 2);
  M->txBeginReadOnly(0);
  EXPECT_FALSE(M->txWrite(0, 0, 1));
  EXPECT_EQ(M->lastAbortCause(0), AbortCause::AC_User);
  EXPECT_EQ(M->sample(0), 0u);
}

TEST(MvInterleaved, OnlyMvAdvertisesAbortFreeReadOnly) {
  // The capability flag drives the KV layer's latch-free snapshot path;
  // glock in particular must NOT advertise it (its "reads" block
  // writers, which is exactly what the flag promises never happens).
  for (TmKind Kind : allTmKinds()) {
    auto M = createTm(Kind, 2, 2);
    EXPECT_EQ(M->hasAbortFreeReadOnly(), Kind == TmKind::TK_Mv)
        << tmKindName(Kind);
  }
}
