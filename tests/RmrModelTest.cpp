//===-- tests/RmrModelTest.cpp - RMR simulator unit tests ------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// Hand-computed coherence scenarios for the three memory models of the
/// paper's Section 5. Thread ids are passed explicitly, so multi-process
/// interleavings are simulated deterministically from one test thread.
///
//===----------------------------------------------------------------------===//

#include "runtime/BaseObject.h"
#include "runtime/Instrumentation.h"
#include "runtime/RmrSimulator.h"

#include <gtest/gtest.h>

using namespace ptm;

namespace {
constexpr uint64_t kObj = 100;
constexpr uint64_t kOther = 200;
constexpr AccessKind R = AccessKind::AK_Read;
constexpr AccessKind W = AccessKind::AK_Write;
constexpr AccessKind C = AccessKind::AK_Cas;
} // namespace

//===----------------------------------------------------------------------===//
// Write-through CC
//===----------------------------------------------------------------------===//

TEST(RmrCcWriteThrough, FirstReadMissesThenHits) {
  RmrSimulator Sim(MemoryModelKind::MM_CcWriteThrough, 4);
  EXPECT_TRUE(Sim.access(0, kObj, R, kNoThread));
  EXPECT_FALSE(Sim.access(0, kObj, R, kNoThread));
  EXPECT_FALSE(Sim.access(0, kObj, R, kNoThread));
}

TEST(RmrCcWriteThrough, WriteAlwaysRmrAndInvalidatesOthers) {
  RmrSimulator Sim(MemoryModelKind::MM_CcWriteThrough, 4);
  EXPECT_TRUE(Sim.access(0, kObj, R, kNoThread));  // p0 caches.
  EXPECT_TRUE(Sim.access(1, kObj, W, kNoThread));  // p1 writes: RMR.
  EXPECT_TRUE(Sim.access(1, kObj, W, kNoThread));  // Write-through: again.
  EXPECT_TRUE(Sim.access(0, kObj, R, kNoThread));  // p0 was invalidated.
  EXPECT_FALSE(Sim.access(1, kObj, R, kNoThread)); // Writer kept a copy.
}

TEST(RmrCcWriteThrough, CasCountsAsWrite) {
  RmrSimulator Sim(MemoryModelKind::MM_CcWriteThrough, 2);
  EXPECT_TRUE(Sim.access(0, kObj, R, kNoThread));
  EXPECT_TRUE(Sim.access(1, kObj, C, kNoThread));
  EXPECT_TRUE(Sim.access(0, kObj, R, kNoThread)) << "CAS invalidated p0";
}

TEST(RmrCcWriteThrough, ObjectsAreIndependent) {
  RmrSimulator Sim(MemoryModelKind::MM_CcWriteThrough, 2);
  EXPECT_TRUE(Sim.access(0, kObj, R, kNoThread));
  EXPECT_TRUE(Sim.access(0, kOther, R, kNoThread));
  EXPECT_TRUE(Sim.access(1, kOther, W, kNoThread));
  EXPECT_FALSE(Sim.access(0, kObj, R, kNoThread))
      << "write to another object must not invalidate this one";
}

TEST(RmrCcWriteThrough, LocalSpinPattern) {
  // A TTAS-style waiter: after one miss it spins locally until the holder
  // writes. This is the pattern that gives queue locks O(1) RMRs.
  RmrSimulator Sim(MemoryModelKind::MM_CcWriteThrough, 2);
  EXPECT_TRUE(Sim.access(1, kObj, R, kNoThread));
  for (int I = 0; I < 100; ++I)
    EXPECT_FALSE(Sim.access(1, kObj, R, kNoThread));
  EXPECT_TRUE(Sim.access(0, kObj, W, kNoThread)); // Holder releases.
  EXPECT_TRUE(Sim.access(1, kObj, R, kNoThread)); // One reload...
  EXPECT_FALSE(Sim.access(1, kObj, R, kNoThread)); // ...then local again.
}

//===----------------------------------------------------------------------===//
// Write-back CC
//===----------------------------------------------------------------------===//

TEST(RmrCcWriteBack, ReadSharing) {
  RmrSimulator Sim(MemoryModelKind::MM_CcWriteBack, 4);
  EXPECT_TRUE(Sim.access(0, kObj, R, kNoThread));
  EXPECT_TRUE(Sim.access(1, kObj, R, kNoThread));
  EXPECT_FALSE(Sim.access(0, kObj, R, kNoThread))
      << "shared copies coexist across readers";
  EXPECT_FALSE(Sim.access(1, kObj, R, kNoThread));
}

TEST(RmrCcWriteBack, WriterGetsExclusiveAndWritesLocally) {
  RmrSimulator Sim(MemoryModelKind::MM_CcWriteBack, 4);
  EXPECT_TRUE(Sim.access(0, kObj, W, kNoThread));  // Take exclusive.
  EXPECT_FALSE(Sim.access(0, kObj, W, kNoThread)); // Local in exclusive.
  EXPECT_FALSE(Sim.access(0, kObj, R, kNoThread)); // Reads local too.
}

TEST(RmrCcWriteBack, ReadMissInvalidatesExclusiveHolder) {
  RmrSimulator Sim(MemoryModelKind::MM_CcWriteBack, 4);
  EXPECT_TRUE(Sim.access(0, kObj, W, kNoThread)); // p0 exclusive.
  EXPECT_TRUE(Sim.access(1, kObj, R, kNoThread)); // p1 read: writes back,
                                                  // invalidates p0.
  EXPECT_TRUE(Sim.access(0, kObj, R, kNoThread)) << "p0 lost its copy";
}

TEST(RmrCcWriteBack, WriteInvalidatesAllSharedCopies) {
  RmrSimulator Sim(MemoryModelKind::MM_CcWriteBack, 4);
  EXPECT_TRUE(Sim.access(0, kObj, R, kNoThread));
  EXPECT_TRUE(Sim.access(1, kObj, R, kNoThread));
  EXPECT_TRUE(Sim.access(2, kObj, W, kNoThread));
  EXPECT_TRUE(Sim.access(0, kObj, R, kNoThread));
  EXPECT_TRUE(Sim.access(1, kObj, R, kNoThread));
}

TEST(RmrCcWriteBack, UpgradeFromSharedIsRmr) {
  RmrSimulator Sim(MemoryModelKind::MM_CcWriteBack, 2);
  EXPECT_TRUE(Sim.access(0, kObj, R, kNoThread));  // Shared.
  EXPECT_TRUE(Sim.access(0, kObj, W, kNoThread));  // Upgrade: RMR.
  EXPECT_FALSE(Sim.access(0, kObj, W, kNoThread)); // Exclusive now.
}

//===----------------------------------------------------------------------===//
// DSM
//===----------------------------------------------------------------------===//

TEST(RmrDsm, HomeAccessIsLocal) {
  RmrSimulator Sim(MemoryModelKind::MM_Dsm, 4);
  EXPECT_FALSE(Sim.access(2, kObj, R, /*Home=*/2));
  EXPECT_FALSE(Sim.access(2, kObj, W, /*Home=*/2));
  EXPECT_TRUE(Sim.access(1, kObj, R, /*Home=*/2));
  EXPECT_TRUE(Sim.access(1, kObj, W, /*Home=*/2));
}

TEST(RmrDsm, UnhomedIsRemoteToEveryone) {
  RmrSimulator Sim(MemoryModelKind::MM_Dsm, 4);
  for (ThreadId T = 0; T < 4; ++T)
    EXPECT_TRUE(Sim.access(T, kObj, R, kNoThread));
}

TEST(RmrDsm, NoCachingEffects) {
  RmrSimulator Sim(MemoryModelKind::MM_Dsm, 2);
  // Repeated remote reads stay remote: DSM has no caches in this model.
  EXPECT_TRUE(Sim.access(0, kObj, R, /*Home=*/1));
  EXPECT_TRUE(Sim.access(0, kObj, R, /*Home=*/1));
}

//===----------------------------------------------------------------------===//
// Reset and integration with Instrumentation/BaseObject
//===----------------------------------------------------------------------===//

TEST(RmrSimulator, ResetForgetsCaches) {
  RmrSimulator Sim(MemoryModelKind::MM_CcWriteThrough, 2);
  EXPECT_TRUE(Sim.access(0, kObj, R, kNoThread));
  EXPECT_FALSE(Sim.access(0, kObj, R, kNoThread));
  Sim.reset();
  EXPECT_TRUE(Sim.access(0, kObj, R, kNoThread)) << "cold after reset";
}

TEST(RmrSimulator, BaseObjectAccessesChargeRmrs) {
  RmrSimulator Sim(MemoryModelKind::MM_CcWriteThrough, 2);
  Instrumentation Instr(0, &Sim);
  ScopedInstrumentation Scope(Instr);

  BaseObject O(0);
  (void)O.read(); // Miss.
  (void)O.read(); // Hit.
  O.write(1);     // Write-through RMR.

  EXPECT_EQ(Instr.totalRmrs(), 2u);
  EXPECT_EQ(Instr.totalSteps(), 3u);
}

TEST(RmrSimulator, PerOpRmrAccounting) {
  RmrSimulator Sim(MemoryModelKind::MM_Dsm, 2);
  Instrumentation Instr(1, &Sim);
  ScopedInstrumentation Scope(Instr);

  BaseObject Local(0, /*Home=*/1);
  BaseObject Remote(0, /*Home=*/0);

  Instr.beginOp();
  (void)Local.read();
  (void)Remote.read();
  (void)Remote.read();
  OpStats Stats = Instr.endOp();

  EXPECT_EQ(Stats.Steps, 3u);
  EXPECT_EQ(Stats.Rmrs, 2u);
}
