//===-- tests/SupportTest.cpp - Support library unit tests ----------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"
#include "support/Random.h"
#include "support/RawOStream.h"
#include "support/Spin.h"
#include "support/Table.h"
#include "support/Zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

using namespace ptm;

TEST(RawOStream, FormatsIntegersAndStrings) {
  std::string Buf;
  StringOStream OS(Buf);
  OS << "x=" << 42 << " y=" << uint64_t{18446744073709551615ULL} << " z="
     << int64_t{-7} << " b=" << true << " c=" << 'Q';
  EXPECT_EQ(Buf, "x=42 y=18446744073709551615 z=-7 b=true c=Q");
}

TEST(RawOStream, FormatsDoubles) {
  std::string Buf;
  StringOStream OS(Buf);
  OS << 2.5;
  EXPECT_EQ(Buf, "2.5");
}

TEST(RawOStream, WriteRespectsLength) {
  std::string Buf;
  StringOStream OS(Buf);
  OS.write("abcdef", 3);
  EXPECT_EQ(Buf, "abc");
}

TEST(Format, Padding) {
  EXPECT_EQ(padLeft("7", 4), "   7");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("long-already", 4), "long-already");
}

TEST(Format, Numbers) {
  EXPECT_EQ(formatInt(uint64_t{12345}), "12345");
  EXPECT_EQ(formatInt(int64_t{-9}), "-9");
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
}

TEST(Table, AlignsColumns) {
  TablePrinter Table({"name", "value"});
  Table.addRow({"a", "1"});
  Table.addRow({"bbbb", "22222"});
  std::string Buf;
  StringOStream OS(Buf);
  Table.print(OS);
  // Column 0 left-aligned to width 4, column 1 right-aligned to width 5,
  // two-space separator.
  EXPECT_NE(Buf.find("name  value"), std::string::npos);
  EXPECT_NE(Buf.find("bbbb  22222"), std::string::npos);
  EXPECT_NE(Buf.find("a         1"), std::string::npos);
}

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 A(1), B(1), C(2);
  uint64_t A1 = A.next();
  EXPECT_EQ(A1, B.next());
  EXPECT_NE(A1, C.next());
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 Rng(7);
  for (int I = 0; I < 10000; ++I)
    EXPECT_LT(Rng.nextBounded(17), 17u);
}

TEST(Xoshiro256, BoundedCoversRange) {
  Xoshiro256 Rng(7);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(Rng.nextBounded(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 Rng(9);
  for (int I = 0; I < 10000; ++I) {
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Zipf, UniformWhenThetaZero) {
  ZipfDistribution Zipf(10, 0.0);
  Xoshiro256 Rng(3);
  std::vector<uint64_t> Counts(10, 0);
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    ++Counts[Zipf.sample(Rng)];
  for (uint64_t C : Counts) {
    EXPECT_GT(C, N / 10 * 0.8);
    EXPECT_LT(C, N / 10 * 1.2);
  }
}

TEST(Zipf, SkewPrefersSmallRanks) {
  ZipfDistribution Zipf(1000, 0.9);
  Xoshiro256 Rng(3);
  uint64_t Low = 0, Total = 100000;
  for (uint64_t I = 0; I < Total; ++I)
    if (Zipf.sample(Rng) < 10)
      ++Low;
  // With theta=0.9 the top-10 ranks receive far more than the uniform 1%.
  EXPECT_GT(Low, Total / 10);
}

TEST(Zipf, SamplesInDomain) {
  ZipfDistribution Zipf(37, 0.5);
  Xoshiro256 Rng(11);
  for (int I = 0; I < 10000; ++I)
    EXPECT_LT(Zipf.sample(Rng), 37u);
}

TEST(Zipf, SingleElementDomainAlwaysSamplesZero) {
  ZipfDistribution Zipf(1, 0.0);
  Xoshiro256 Rng(5);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(Zipf.sample(Rng), 0u);
}

TEST(Zipf, CountsDecreaseWithRank) {
  // The defining shape property: under skew, lower ranks are sampled at
  // least as often as higher ones (checked on coarse rank buckets to keep
  // the test statistically robust).
  ZipfDistribution Zipf(100, 0.8);
  Xoshiro256 Rng(21);
  std::vector<uint64_t> Buckets(4, 0);
  for (int I = 0; I < 200000; ++I)
    ++Buckets[Zipf.sample(Rng) / 25];
  EXPECT_GT(Buckets[0], Buckets[1]);
  EXPECT_GT(Buckets[1], Buckets[2]);
  EXPECT_GT(Buckets[2], Buckets[3]);
}

TEST(Zipf, DeterministicUnderFixedSeed) {
  ZipfDistribution Zipf(64, 0.6);
  Xoshiro256 A(123), B(123);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(Zipf.sample(A), Zipf.sample(B));
}

TEST(Table, SingleColumnSingleRow) {
  TablePrinter Table({"only"});
  Table.addRow({"x"});
  std::string Buf;
  StringOStream OS(Buf);
  Table.print(OS);
  EXPECT_NE(Buf.find("only"), std::string::npos);
  EXPECT_NE(Buf.find("x"), std::string::npos);
}

TEST(Table, HeaderWiderThanCells) {
  TablePrinter Table({"wide-header", "h2"});
  Table.addRow({"a", "b"});
  std::string Buf;
  StringOStream OS(Buf);
  Table.print(OS);
  // Output is header, rule, then data rows; every line is padded to the
  // header's width so the data row is as wide as the header line.
  std::vector<std::string> Lines;
  for (size_t Pos = 0; Pos < Buf.size();) {
    size_t End = Buf.find('\n', Pos);
    ASSERT_NE(End, std::string::npos);
    Lines.push_back(Buf.substr(Pos, End - Pos));
    Pos = End + 1;
  }
  ASSERT_GE(Lines.size(), 3u);
  EXPECT_NE(Lines[0].find("wide-header"), std::string::npos);
  EXPECT_EQ(Lines[0].size(), Lines[2].size()) << "data row: " << Lines[2];
  EXPECT_NE(Lines[2].find('a'), std::string::npos);
}

TEST(SplitMix64, GoldenSequence) {
  // Reference values from Vigna's splitmix64 reference implementation with
  // seed 0; pins the generator against silent changes.
  SplitMix64 SM(0);
  EXPECT_EQ(SM.next(), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(SM.next(), 0x6E789E6AA1B965F4ull);
  EXPECT_EQ(SM.next(), 0x06C45D188009454Full);
}

TEST(Xoshiro256, BoundedDeterministicUnderFixedSeed) {
  Xoshiro256 A(77), B(77);
  for (uint64_t Bound : {2ull, 17ull, 1000003ull})
    for (int I = 0; I < 100; ++I)
      EXPECT_EQ(A.nextBounded(Bound), B.nextBounded(Bound));
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 A(1), B(2);
  int Equal = 0;
  for (int I = 0; I < 64; ++I)
    if (A.next() == B.next())
      ++Equal;
  EXPECT_LT(Equal, 4);
}

TEST(Backoff, GrowsAndResets) {
  // Behavioural smoke test: spin() must terminate and reset() must be
  // callable; timing is not asserted.
  Backoff BO(2, 16);
  for (int I = 0; I < 10; ++I)
    BO.spin();
  BO.reset();
  BO.spin();
  SUCCEED();
}
