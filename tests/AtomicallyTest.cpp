//===-- tests/AtomicallyTest.cpp - Retry combinator & TxRef tests ---------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"

#include <gtest/gtest.h>

using namespace ptm;

namespace {

class AtomicallyTest : public ::testing::TestWithParam<TmKind> {
protected:
  void SetUp() override { M = createTm(GetParam(), /*Objects=*/16, 4); }
  std::unique_ptr<Tm> M;
};

} // namespace

TEST_P(AtomicallyTest, CommitsAndReturnsTrue) {
  bool Ok = atomically(*M, 0, [](TxRef &Tx) {
    uint64_t V = Tx.readOr(3, 0);
    Tx.write(3, V + 41);
    Tx.write(4, 1);
  });
  EXPECT_TRUE(Ok);
  EXPECT_EQ(M->sample(3), 41u);
  EXPECT_EQ(M->sample(4), 1u);
}

TEST_P(AtomicallyTest, UserAbortReturnsFalseWithoutRetry) {
  int BodyRuns = 0;
  bool Ok = atomically(*M, 0, [&](TxRef &Tx) {
    ++BodyRuns;
    Tx.write(0, 99);
    Tx.userAbort();
  });
  EXPECT_FALSE(Ok);
  EXPECT_EQ(BodyRuns, 1) << "voluntary abort must not retry";
  EXPECT_EQ(M->sample(0), 0u) << "aborted writes must not be visible";
  EXPECT_EQ(M->lastAbortCause(0), AbortCause::AC_User);
}

TEST_P(AtomicallyTest, ZombieOpsAreNoOpsAfterUserAbort) {
  bool Ok = atomically(*M, 0, [&](TxRef &Tx) {
    Tx.userAbort();
    EXPECT_TRUE(Tx.failed());
    uint64_t V = 123;
    EXPECT_FALSE(Tx.read(1, V));
    EXPECT_EQ(V, 123u) << "failed read must not modify the out-param";
    EXPECT_FALSE(Tx.write(1, 7));
    EXPECT_EQ(Tx.readOr(1, 55), 55u);
  });
  EXPECT_FALSE(Ok);
  EXPECT_EQ(M->sample(1), 0u);
}

TEST_P(AtomicallyTest, ReadOrReturnsValueWhenHealthy) {
  M->init(5, 1234);
  atomically(*M, 0, [&](TxRef &Tx) { EXPECT_EQ(Tx.readOr(5, 0), 1234u); });
}

TEST_P(AtomicallyTest, SequentialTransactionsNeverAbort) {
  // Sequential TM-progress (minimal progressiveness): a transaction running
  // with no concurrency must commit.
  for (int I = 0; I < 100; ++I) {
    bool Ok = atomically(
        *M, 0,
        [&](TxRef &Tx) {
          uint64_t V = Tx.readOr(I % 16, 0);
          Tx.write(I % 16, V + 1);
        },
        /*MaxAttempts=*/1);
    EXPECT_TRUE(Ok) << "sequential transaction " << I << " aborted";
  }
  TmStats S = M->stats();
  EXPECT_EQ(S.Commits, 100u);
  EXPECT_EQ(S.totalAborts(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllTms, AtomicallyTest,
                         ::testing::ValuesIn(allTmKinds()),
                         [](const ::testing::TestParamInfo<TmKind> &Info) {
                           std::string Name = tmKindName(Info.param);
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });

namespace {

/// Counting fake for the BackoffPolicy slot: records how often
/// atomically() backs off instead of burning cycles.
struct CountingBackoff {
  int *Spins;
  void spin() { ++*Spins; }
};

} // namespace

TEST(AtomicallyContention, NoBackoffAfterTheFinalAttempt) {
  // Regression: atomically() used to run a full capped backoff spin after
  // the last failed attempt, delaying the caller's failure handling for
  // nothing. N attempts must back off exactly N-1 times.
  auto M = createTm(TmKind::TK_Tlrw, 4, 4);
  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 7)); // Every attempt below hits this lock.

  for (unsigned MaxAttempts : {1u, 2u, 5u}) {
    int Spins = 0;
    int BodyRuns = 0;
    bool Ok = atomically(
        *M, 0,
        [&](TxRef &Tx) {
          ++BodyRuns;
          (void)Tx.readOr(0, 0);
        },
        MaxAttempts, CountingBackoff{&Spins});
    EXPECT_FALSE(Ok);
    EXPECT_EQ(BodyRuns, static_cast<int>(MaxAttempts));
    EXPECT_EQ(Spins, static_cast<int>(MaxAttempts) - 1)
        << "backoff ran after the final attempt";
  }
  ASSERT_TRUE(M->txCommit(1));
}

TEST(AtomicallyContention, NoBackoffOnFirstTrySuccessOrUserAbort) {
  auto M = createTm(TmKind::TK_Tl2, 4, 2);
  int Spins = 0;
  EXPECT_TRUE(atomically(
      *M, 0, [](TxRef &Tx) { Tx.write(0, 1); }, 0, CountingBackoff{&Spins}));
  EXPECT_EQ(Spins, 0) << "a clean commit must never back off";

  EXPECT_FALSE(atomically(
      *M, 0, [](TxRef &Tx) { Tx.userAbort(); }, 0, CountingBackoff{&Spins}));
  EXPECT_EQ(Spins, 0) << "a voluntary abort must never back off";
}

TEST(AtomicallyContention, MaxAttemptsBoundsRetries) {
  // TLRW acquires encounter-time locks, so a write lock held by thread 1
  // forces thread 0's transaction to abort deterministically.
  auto M = createTm(TmKind::TK_Tlrw, 4, 4);
  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 7)); // Thread 1 now write-locks object 0.

  int BodyRuns = 0;
  bool Ok = atomically(
      *M, 0,
      [&](TxRef &Tx) {
        ++BodyRuns;
        (void)Tx.readOr(0, 0);
      },
      /*MaxAttempts=*/3);
  EXPECT_FALSE(Ok);
  EXPECT_EQ(BodyRuns, 3);
  EXPECT_EQ(M->lastAbortCause(0), AbortCause::AC_LockHeld);

  ASSERT_TRUE(M->txCommit(1));
  EXPECT_TRUE(atomically(
      *M, 0, [&](TxRef &Tx) { (void)Tx.readOr(0, 0); }, 3));
}

TEST(TVar, RoundTripsTypedPayloads) {
  auto M = createTm(TmKind::TK_Tl2, 8, 2);
  TVar<double> D(*M, 0);
  TVar<int32_t> I(*M, 1);
  TVar<bool> B(*M, 2);
  TVar<char> C(*M, 3);

  D.init(3.25);
  I.init(-42);
  B.init(true);
  C.init('z');

  EXPECT_DOUBLE_EQ(D.sample(), 3.25);
  EXPECT_EQ(I.sample(), -42);
  EXPECT_TRUE(B.sample());
  EXPECT_EQ(C.sample(), 'z');

  bool Ok = atomically(*M, 0, [&](TxRef &Tx) {
    double DV = D.readOr(Tx, 0.0);
    int32_t IV = I.readOr(Tx, 0);
    D.write(Tx, DV * 2);
    I.write(Tx, IV + 2);
    B.write(Tx, false);
  });
  ASSERT_TRUE(Ok);
  EXPECT_DOUBLE_EQ(D.sample(), 6.5);
  EXPECT_EQ(I.sample(), -40);
  EXPECT_FALSE(B.sample());
}

TEST(TVar, ReadIntoOutParam) {
  auto M = createTm(TmKind::TK_Norec, 4, 2);
  TVar<uint16_t> V(*M, 0);
  V.init(777);
  atomically(*M, 0, [&](TxRef &Tx) {
    uint16_t Out = 0;
    EXPECT_TRUE(V.read(Tx, Out));
    EXPECT_EQ(Out, 777);
  });
}

TEST(TVar, NegativeValuesSurviveEncoding) {
  auto M = createTm(TmKind::TK_GlobalLock, 4, 2);
  TVar<int64_t> V(*M, 0);
  V.init(-123456789012345LL);
  EXPECT_EQ(V.sample(), -123456789012345LL);
  atomically(*M, 0, [&](TxRef &Tx) {
    int64_t Cur = V.readOr(Tx, 0);
    V.write(Tx, Cur - 1);
  });
  EXPECT_EQ(V.sample(), -123456789012346LL);
}
