//===-- tests/InterleaverTest.cpp - Round-robin scheduler tests ------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "runtime/BaseObject.h"
#include "runtime/Instrumentation.h"
#include "runtime/Interleaver.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace ptm;

TEST(Interleaver, SingleThreadNeverBlocks) {
  RoundRobinInterleaver Sched(1);
  for (int I = 0; I < 1000; ++I)
    Sched.step(0);
  Sched.retire(0);
  SUCCEED();
}

TEST(Interleaver, StrictAlternationOfSteps) {
  // Two threads record the global order of their steps; the sequence must
  // alternate strictly (round-robin at step granularity).
  RoundRobinInterleaver Sched(2);
  constexpr int StepsPerThread = 500;
  std::vector<ThreadId> Order(2 * StepsPerThread);
  std::atomic<size_t> Slot{0};

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < 2; ++T) {
    Workers.emplace_back([&, T] {
      for (int I = 0; I < StepsPerThread; ++I) {
        Sched.step(T);
        Order[Slot.fetch_add(1)] = T;
      }
      Sched.retire(T);
    });
  }
  for (std::thread &W : Workers)
    W.join();

  // The recording slot is claimed after the token moves on, so a burst of
  // reordering of +-1 position is possible; check balance in windows
  // instead of exact alternation: in any prefix the counts differ by a
  // small constant.
  int Balance = 0;
  int MaxSkew = 0;
  for (ThreadId T : Order) {
    Balance += T == 0 ? 1 : -1;
    MaxSkew = std::max(MaxSkew, Balance < 0 ? -Balance : Balance);
  }
  EXPECT_LE(MaxSkew, 3) << "scheduling was not near-round-robin";
}

TEST(Interleaver, RetiredThreadsAreSkipped) {
  RoundRobinInterleaver Sched(3);
  std::atomic<uint64_t> Steps2{0};

  std::thread T0([&] {
    for (int I = 0; I < 10; ++I)
      Sched.step(0);
    Sched.retire(0);
  });
  std::thread T1([&] {
    for (int I = 0; I < 10; ++I)
      Sched.step(1);
    Sched.retire(1);
  });
  std::thread T2([&] {
    // Keeps stepping long after the others retired; must never wedge.
    for (int I = 0; I < 5000; ++I) {
      Sched.step(2);
      Steps2.fetch_add(1);
    }
    Sched.retire(2);
  });
  T0.join();
  T1.join();
  T2.join();
  EXPECT_EQ(Steps2.load(), 5000u);
}

TEST(RandomInterleaver, AllStepsCompleteUnderBurstySchedules) {
  // The random policy may hand the token back to the same thread
  // repeatedly (bursts); every thread must still complete all its steps
  // (no wedging). Note: the *token hand-off order* is deterministic per
  // seed, but observing it from outside would race with the hand-off, so
  // this test asserts liveness and balance only.
  for (uint64_t Seed : {42u, 43u, 44u}) {
    RandomInterleaver Sched(3, Seed);
    std::atomic<uint64_t> Counts[3] = {{0}, {0}, {0}};
    std::vector<std::thread> Workers;
    for (unsigned T = 0; T < 3; ++T) {
      Workers.emplace_back([&, T] {
        for (int I = 0; I < 500; ++I) {
          Sched.step(T);
          Counts[T].fetch_add(1);
        }
        Sched.retire(T);
      });
    }
    for (std::thread &W : Workers)
      W.join();
    for (unsigned T = 0; T < 3; ++T)
      EXPECT_EQ(Counts[T].load(), 500u) << "thread " << T;
  }
}

TEST(RandomInterleaver, RetiredThreadsAreNeverPicked) {
  RandomInterleaver Sched(4, 7);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < 4; ++T) {
    Workers.emplace_back([&, T] {
      // Uneven work: early retirees must not wedge the survivors.
      for (unsigned I = 0; I < 10 * (T + 1); ++I)
        Sched.step(T);
      Sched.retire(T);
    });
  }
  for (std::thread &W : Workers)
    W.join();
  SUCCEED();
}

TEST(Interleaver, RetireWhileHoldingLastTokenWithAllOthersRetired) {
  // Regression for the retire-vs-step edge: the last surviving thread
  // retires while holding the only live token, after every other thread
  // already left the rotation. advanceFrom must not wedge or assert
  // looking for a successor that does not exist.
  RoundRobinInterleaver Sched(4);
  std::vector<std::thread> Workers;
  for (unsigned T = 1; T < 4; ++T)
    Workers.emplace_back([&, T] { Sched.retire(T); });
  Workers.emplace_back([&] {
    for (int I = 0; I < 50; ++I)
      Sched.step(0);
    Sched.retire(0); // Holds the last token; no one is left to pass to.
  });
  for (std::thread &W : Workers)
    W.join();
  SUCCEED();
}

TEST(Interleaver, ImmediateRetirementOfEveryThread) {
  // All threads retire without ever stepping — the token must chain
  // through the retirements without blocking.
  RoundRobinInterleaver Sched(8);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < 8; ++T)
    Workers.emplace_back([&, T] { Sched.retire(T); });
  for (std::thread &W : Workers)
    W.join();
  SUCCEED();
}

TEST(Interleaver, TokenHeldAcrossStepBeginStepDone) {
  // The split protocol must hold the token across the whole access:
  // between stepBegin and stepDone no other thread may be inside its own
  // window, making the grant order exactly the memory-event order.
  RoundRobinInterleaver Sched(3);
  std::atomic<int> Inside{0};
  std::atomic<bool> Overlap{false};
  std::vector<ThreadId> Order;
  Order.reserve(3 * 200);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < 3; ++T) {
    Workers.emplace_back([&, T] {
      for (int I = 0; I < 200; ++I) {
        Sched.stepBegin(T, /*ObjId=*/T, AccessKind::AK_Read);
        if (Inside.fetch_add(1) != 0)
          Overlap.store(true);
        Order.push_back(T); // Unsynchronized on purpose: token-guarded.
        Inside.fetch_sub(1);
        Sched.stepDone(T);
      }
      Sched.retire(T);
    });
  }
  for (std::thread &W : Workers)
    W.join();
  EXPECT_FALSE(Overlap.load()) << "two threads inside the token window";
  ASSERT_EQ(Order.size(), 3u * 200u);
  // With the token held across the recording, round-robin order is
  // EXACT — no skew allowance needed (contrast StrictAlternationOfSteps,
  // which records after the hand-off).
  for (size_t I = 0; I < Order.size(); ++I)
    ASSERT_EQ(Order[I], I % 3) << "at step " << I;
}

TEST(Interleaver, DrivesInstrumentedBaseObjectAccesses) {
  // End-to-end: two instrumented threads hammer one object through the
  // scheduler; total steps are exact and no deadlock occurs even though
  // the host may serialize the threads arbitrarily.
  RoundRobinInterleaver Sched(2);
  BaseObject Obj(0);
  std::atomic<uint64_t> Total{0};

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < 2; ++T) {
    Workers.emplace_back([&, T] {
      Instrumentation Instr(T, nullptr, &Sched);
      {
        ScopedInstrumentation Scope(Instr);
        for (int I = 0; I < 2000; ++I)
          Obj.fetchAdd(1);
      }
      Sched.retire(T);
      Total.fetch_add(Instr.totalSteps());
    });
  }
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(Obj.peek(), 4000u);
  EXPECT_EQ(Total.load(), 4000u);
}
