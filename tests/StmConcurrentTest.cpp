//===-- tests/StmConcurrentTest.cpp - Concurrent TM properties ------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// Concurrent integration/property tests for every TM: atomicity of
/// increments, invariant conservation, progressiveness on disjoint data
/// sets (no conflict => no abort) and strong progressiveness on a single
/// item (Definition 1: in every conflict round, someone commits).
///
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"
#include "support/Random.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace ptm;

namespace {

class StmConcurrentTest : public ::testing::TestWithParam<TmKind> {
protected:
  static constexpr unsigned kThreads = 4;
  std::unique_ptr<Tm> makeTm(unsigned Objects) {
    return createTm(GetParam(), Objects, kThreads);
  }
};

std::string paramName(const ::testing::TestParamInfo<TmKind> &Info) {
  std::string Name = tmKindName(Info.param);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

/// Simple sense-reversing spin barrier for round-based tests.
class SpinBarrier {
public:
  explicit SpinBarrier(unsigned Count) : Parties(Count) {}

  void arriveAndWait() {
    unsigned Gen = Generation.load();
    if (Arrived.fetch_add(1) + 1 == Parties) {
      Arrived.store(0);
      Generation.fetch_add(1);
      return;
    }
    while (Generation.load() == Gen)
      std::this_thread::yield();
  }

private:
  unsigned Parties;
  std::atomic<unsigned> Arrived{0};
  std::atomic<unsigned> Generation{0};
};

} // namespace

TEST_P(StmConcurrentTest, HotspotIncrementsAreAtomic) {
  auto M = makeTm(4);
  const uint64_t PerThread = 2000;
  RunResult R = runHotspot(*M, kThreads, PerThread);
  EXPECT_EQ(R.ValueChecksum, kThreads * PerThread)
      << "lost updates detected on the hotspot counter";
  EXPECT_EQ(R.Commits, kThreads * PerThread);
}

TEST_P(StmConcurrentTest, BankTotalIsConserved) {
  auto M = makeTm(32);
  const uint64_t PerThread = 1500;
  const uint64_t Initial = 1000;
  RunResult R = runBank(*M, kThreads, PerThread, Initial, /*Seed=*/42);
  EXPECT_EQ(R.ValueChecksum, 32 * Initial)
      << "transfers must conserve the total balance";
  EXPECT_EQ(R.Commits, kThreads * PerThread);
}

TEST_P(StmConcurrentTest, DisjointDataSetsNeverAbort) {
  // Progressiveness: a transaction aborts only due to a conflicting
  // concurrent transaction. Threads on disjoint partitions have no
  // conflicts, so no aborts are permitted — even though the non-DAP TMs
  // (tl2, norec) share their clock, they must absorb that contention
  // without aborting. TML is the deliberate exception: it is not
  // progressive, and this workload is exactly where that shows.
  auto M = makeTm(64);
  RunResult R = runDisjoint(*M, kThreads, /*TxnsPerThread=*/1500,
                            /*PartitionSize=*/16, /*TxnSize=*/4, /*Seed=*/7);
  if (isProgressive(GetParam())) {
    EXPECT_EQ(R.Aborts, 0u)
        << "abort without conflict violates progressiveness";
  }
  EXPECT_EQ(R.Commits, kThreads * 1500u);
  EXPECT_EQ(R.ValueChecksum, kThreads * 1500u * 4u);
}

TEST_P(StmConcurrentTest, ZipfMixAllWritesAccountedFor) {
  auto M = makeTm(128);
  const uint64_t PerThread = 800;
  const unsigned TxnSize = 4;
  RunResult R = runZipfMix(*M, kThreads, PerThread, TxnSize,
                           /*ReadProb=*/0.0, /*Theta=*/0.6, /*Seed=*/11);
  EXPECT_EQ(R.Commits, kThreads * PerThread);
  EXPECT_EQ(R.ValueChecksum, kThreads * PerThread * TxnSize)
      << "every committed write must be applied exactly once";
}

TEST_P(StmConcurrentTest, ReadersSeeConsistentSnapshots) {
  // Writers perform sum-preserving transfers; a reader snapshotting all
  // accounts must always observe the exact initial total. Any torn
  // (non-opaque) snapshot breaks the sum.
  constexpr unsigned Accounts = 16;
  constexpr uint64_t Initial = 100;
  auto M = makeTm(Accounts);
  for (ObjectId A = 0; A < Accounts; ++A)
    M->init(A, Initial);

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> BadSnapshots{0};
  std::atomic<uint64_t> GoodSnapshots{0};

  std::thread Reader([&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      uint64_t Sum = 0;
      bool Ok = atomically(
          *M, 0,
          [&](TxRef &Tx) {
            Sum = 0;
            for (ObjectId A = 0; A < Accounts; ++A)
              Sum += Tx.readOr(A, 0);
          },
          /*MaxAttempts=*/50);
      if (!Ok)
        continue;
      if (Sum == Accounts * Initial)
        GoodSnapshots.fetch_add(1);
      else
        BadSnapshots.fetch_add(1);
    }
  });

  std::vector<std::thread> Writers;
  for (unsigned T = 1; T < kThreads; ++T) {
    Writers.emplace_back([&, T] {
      Xoshiro256 Rng(1000 + T);
      for (int I = 0; I < 3000; ++I) {
        ObjectId From = static_cast<ObjectId>(Rng.nextBounded(Accounts));
        ObjectId To = static_cast<ObjectId>(Rng.nextBounded(Accounts));
        if (From == To)
          continue;
        atomically(*M, T, [&](TxRef &Tx) {
          uint64_t F = Tx.readOr(From, 0);
          uint64_t D = Tx.readOr(To, 0);
          uint64_t Moved = F < 3 ? F : 3;
          Tx.write(From, F - Moved);
          Tx.write(To, D + Moved);
        });
      }
    });
  }
  for (std::thread &W : Writers)
    W.join();
  Stop.store(true);
  Reader.join();

  EXPECT_EQ(BadSnapshots.load(), 0u) << "opacity violation: torn snapshot";
  EXPECT_GT(GoodSnapshots.load(), 0u) << "reader never committed";

  uint64_t Final = 0;
  for (ObjectId A = 0; A < Accounts; ++A)
    Final += M->sample(A);
  EXPECT_EQ(Final, Accounts * Initial);
}

TEST_P(StmConcurrentTest, StronglyProgressiveOnSingleItem) {
  // Definition 1, operationally: in every round where all threads attempt
  // one single-shot transaction on the same item, at least one commits.
  auto M = makeTm(1);
  constexpr unsigned Rounds = 100;
  SpinBarrier Barrier(kThreads);
  std::atomic<unsigned> CommitsThisRound{0};
  std::atomic<unsigned> FailedRounds{0};

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < kThreads; ++T) {
    Workers.emplace_back([&, T] {
      for (unsigned Round = 0; Round < Rounds; ++Round) {
        Barrier.arriveAndWait();
        if (Round > 0 && T == 0)
          CommitsThisRound.store(0);
        Barrier.arriveAndWait();
        bool Ok = atomically(
            *M, T,
            [&](TxRef &Tx) {
              uint64_t V = Tx.readOr(0, 0);
              Tx.write(0, V + 1);
            },
            /*MaxAttempts=*/1);
        if (Ok)
          CommitsThisRound.fetch_add(1);
        Barrier.arriveAndWait();
        if (T == 0 && CommitsThisRound.load() == 0)
          FailedRounds.fetch_add(1);
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(FailedRounds.load(), 0u)
      << "a round where every single-item transaction aborted violates "
         "strong progressiveness";
}

TEST_P(StmConcurrentTest, AbortCausesAreContentionRelated) {
  // Under heavy single-item contention with single-shot attempts, any
  // abort must be attributed to a contention cause, never AC_User or
  // AC_None.
  auto M = makeTm(1);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < kThreads; ++T) {
    Workers.emplace_back([&, T] {
      for (int I = 0; I < 500; ++I) {
        M->txBegin(T);
        uint64_t V;
        if (!M->txRead(T, 0, V)) {
          EXPECT_NE(M->lastAbortCause(T), AbortCause::AC_None);
          EXPECT_NE(M->lastAbortCause(T), AbortCause::AC_User);
          continue;
        }
        if (!M->txWrite(T, 0, V + 1)) {
          EXPECT_NE(M->lastAbortCause(T), AbortCause::AC_None);
          continue;
        }
        if (!M->txCommit(T)) {
          EXPECT_NE(M->lastAbortCause(T), AbortCause::AC_None);
          EXPECT_NE(M->lastAbortCause(T), AbortCause::AC_User);
        }
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();

  TmStats S = M->stats();
  EXPECT_EQ(S.Aborts[static_cast<unsigned>(AbortCause::AC_User)], 0u);
  EXPECT_EQ(M->sample(0), S.Commits) << "commits and increments must agree";
}

INSTANTIATE_TEST_SUITE_P(AllTms, StmConcurrentTest,
                         ::testing::ValuesIn(allTmKinds()), paramName);
