//===-- tests/ScheduleExplorationTest.cpp - Schedule model checking -------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// Lightweight model checking: real TM code is driven through *seeded
/// random step-level schedules* (every base-object access is a scheduling
/// point, like a CHESS-style explorer with a random strategy), the
/// resulting histories are recorded, and each must satisfy opacity. One
/// seed = one reproducible interleaving, so a failure pins an exact
/// schedule.
///
/// The random strategy complements the *systematic* explorer
/// (src/explore, tests/ExploreTest.cpp): where a scenario is small
/// enough to enumerate exhaustively, the systematic explorer supersedes
/// sampling — it proves coverage instead of estimating it. This suite
/// keeps the sampling pressure on scenarios beyond exhaustive reach
/// (larger read sets, more threads, mutex construction on top of TM):
/// the TL2-class bugs that survive wall-clock stress testing (they need
/// a precise four-event window) still fall to dense schedule sampling.
///
//===----------------------------------------------------------------------===//

#include "history/Checker.h"
#include "history/RecordingTm.h"
#include "mutex/TmMutex.h"
#include "runtime/Instrumentation.h"
#include "runtime/Interleaver.h"
#include "stm/Stm.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

using namespace ptm;

namespace {

using Param = std::tuple<TmKind, uint64_t>;

class ScheduleExplorationTest : public ::testing::TestWithParam<Param> {};

std::string paramName(const ::testing::TestParamInfo<Param> &Info) {
  std::string Name = tmKindName(std::get<0>(Info.param));
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name + "_seed" + std::to_string(std::get<1>(Info.param));
}

} // namespace

TEST_P(ScheduleExplorationTest, EveryExploredScheduleYieldsOpacity) {
  auto [Kind, Seed] = GetParam();
  constexpr unsigned Threads = 3;
  constexpr unsigned TxnsPerThread = 3;

  RecordingTm M(createTm(Kind, /*NumObjects=*/2, Threads));
  RandomInterleaver Sched(Threads, Seed);

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T, SeedCopy = Seed] {
      Instrumentation Instr(T, nullptr, &Sched);
      {
        ScopedInstrumentation Scope(Instr);
        Xoshiro256 Rng(SeedCopy * 131 + T);
        for (unsigned I = 0; I < TxnsPerThread; ++I) {
          // Single-shot transactions: aborts stay in the history.
          M.txBegin(T);
          uint64_t V;
          ObjectId A = static_cast<ObjectId>(Rng.nextBounded(2));
          if (!M.txRead(T, A, V))
            continue;
          if (Rng.nextBool(0.7) && !M.txWrite(T, A, V + 1))
            continue;
          uint64_t W;
          if (!M.txRead(T, 1 - A, W))
            continue;
          (void)M.txCommit(T);
        }
      }
      Sched.retire(T);
    });
  }
  for (std::thread &W : Workers)
    W.join();

  History H = M.takeHistory();
  EXPECT_EQ(checkOpacity(H), CheckResult::CR_Ok)
      << tmKindName(Kind) << " violated opacity under schedule seed "
      << Seed << " (" << H.Txns.size() << " txns, " << H.numCommitted()
      << " committed)";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduleExplorationTest,
    ::testing::Combine(::testing::ValuesIn(allTmKinds()),
                       ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u)),
    paramName);

TEST(ScheduleExplorationMutex, TmMutexHoldsUnderRandomSchedules) {
  // Algorithm 1 under dense random schedules: mutual exclusion and
  // deadlock-freedom must survive every explored interleaving of its
  // register and TM accesses.
  for (uint64_t Seed : {3u, 17u, 91u}) {
    constexpr unsigned Threads = 3;
    auto L = createTmMutex(TmKind::TK_Tl2, Threads);
    RandomInterleaver Sched(Threads, Seed);

    std::atomic<int> Occupancy{0};
    std::atomic<int> Collisions{0};

    std::vector<std::thread> Workers;
    for (unsigned T = 0; T < Threads; ++T) {
      Workers.emplace_back([&, T] {
        Instrumentation Instr(T, nullptr, &Sched);
        {
          ScopedInstrumentation Scope(Instr);
          for (int P = 0; P < 5; ++P) {
            L->enter(T);
            if (Occupancy.fetch_add(1) != 0)
              Collisions.fetch_add(1);
            Occupancy.fetch_sub(1);
            L->exit(T);
          }
        }
        Sched.retire(T);
      });
    }
    for (std::thread &W : Workers)
      W.join();
    EXPECT_EQ(Collisions.load(), 0) << "seed " << Seed;
  }
}
