//===-- tests/TmlTest.cpp - TML-specific behaviour -------------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// TML is in the library as the contrast point *outside* the paper's
/// progressive TM class: opaque and O(1)-read, but a reader dies whenever
/// any writer commits — conflict or not. These tests pin down exactly
/// that behaviour (the generic opacity/semantics suites already cover TML
/// through allTmKinds()).
///
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"

#include <gtest/gtest.h>

using namespace ptm;

namespace {
std::unique_ptr<Tm> makeTml() { return createTm(TmKind::TK_Tml, 8, 2); }
} // namespace

TEST(Tml, IsFlaggedNotProgressive) {
  EXPECT_FALSE(isProgressive(TmKind::TK_Tml));
  for (TmKind Kind : allTmKinds()) {
    if (Kind != TmKind::TK_Tml) {
      EXPECT_TRUE(isProgressive(Kind)) << tmKindName(Kind);
    }
  }
}

TEST(Tml, ReaderAbortsOnDisjointCommit) {
  // The non-progressiveness witness: T0's data set is {0, 2}, T1 commits
  // to {1} — completely disjoint — yet T0's next read must observe the
  // moved clock and abort.
  auto M = makeTml();
  uint64_t V;
  M->txBegin(0);
  ASSERT_TRUE(M->txRead(0, 0, V));

  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 1, 5));
  ASSERT_TRUE(M->txCommit(1));

  EXPECT_FALSE(M->txRead(0, 2, V))
      << "TML readers cannot survive any concurrent commit";
  EXPECT_EQ(M->lastAbortCause(0), AbortCause::AC_ReadValidation);
}

TEST(Tml, ReaderAbortsWhileWriterActive) {
  auto M = makeTml();
  uint64_t V;
  M->txBegin(0);
  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 5)); // T1 takes the sequence lock.

  EXPECT_FALSE(M->txRead(0, 1, V)) << "odd clock must kill readers";
  ASSERT_TRUE(M->txCommit(1));
}

TEST(Tml, SecondWriterAbortsImmediately) {
  auto M = makeTml();
  M->txBegin(0);
  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(0, 0, 1));
  EXPECT_FALSE(M->txWrite(1, 1, 2))
      << "only one writer may hold the sequence lock";
  EXPECT_EQ(M->lastAbortCause(1), AbortCause::AC_LockHeld);
  ASSERT_TRUE(M->txCommit(0));
  EXPECT_EQ(M->sample(0), 1u);
  EXPECT_EQ(M->sample(1), 0u);
}

TEST(Tml, WriterIsIrrevocableAndCommits) {
  auto M = makeTml();
  M->txBegin(0);
  uint64_t V;
  ASSERT_TRUE(M->txWrite(0, 0, 1));
  ASSERT_TRUE(M->txRead(0, 0, V)); // Writer reads its own in-place state.
  EXPECT_EQ(V, 1u);
  ASSERT_TRUE(M->txWrite(0, 1, 2));
  EXPECT_TRUE(M->txCommit(0));
  EXPECT_EQ(M->sample(0), 1u);
  EXPECT_EQ(M->sample(1), 2u);
}

TEST(Tml, VoluntaryAbortOfWriterRollsBack) {
  auto M = makeTml();
  M->init(0, 10);
  M->txBegin(0);
  ASSERT_TRUE(M->txWrite(0, 0, 11));
  ASSERT_TRUE(M->txWrite(0, 1, 12));
  M->txAbort(0);
  EXPECT_EQ(M->sample(0), 10u);
  EXPECT_EQ(M->sample(1), 0u);

  // The TM is usable afterwards (the lock was released).
  M->txBegin(1);
  ASSERT_TRUE(M->txWrite(1, 0, 20));
  EXPECT_TRUE(M->txCommit(1));
  EXPECT_EQ(M->sample(0), 20u);
}

TEST(Tml, ReadsCostConstantSteps) {
  // TML's reward for giving up progressiveness: two steps per read, no
  // read-set bookkeeping at all.
  auto M = makeTml();
  M->txBegin(0);
  uint64_t V;
  for (ObjectId Obj = 0; Obj < 8; ++Obj)
    ASSERT_TRUE(M->txRead(0, Obj, V));
  EXPECT_TRUE(M->txCommit(0));
}
