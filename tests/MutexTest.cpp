//===-- tests/MutexTest.cpp - Mutual exclusion property tests --------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// The paper's mutex properties (Section 5), tested for every lock in the
/// module — the five classical baselines and Algorithm 1 over each of the
/// five TMs:
///
///  * mutual exclusion — no two processes in the critical section;
///  * deadlock-freedom — contended runs always complete;
///  * finite exit — Exit involves no waiting.
///
//===----------------------------------------------------------------------===//

#include "mutex/Mutex.h"
#include "mutex/TmMutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

using namespace ptm;

namespace {

struct MutexParam {
  const char *Label;
  std::unique_ptr<Mutex> (*Make)(unsigned NumThreads);
};

template <MutexKind Kind>
std::unique_ptr<Mutex> makeBaseline(unsigned NumThreads) {
  return createMutex(Kind, NumThreads);
}

template <TmKind Kind> std::unique_ptr<Mutex> makeTmBased(unsigned NumThreads) {
  return createTmMutex(Kind, NumThreads);
}

const MutexParam kParams[] = {
    {"tas", makeBaseline<MutexKind::MK_Tas>},
    {"ttas", makeBaseline<MutexKind::MK_Ttas>},
    {"ticket", makeBaseline<MutexKind::MK_Ticket>},
    {"mcs", makeBaseline<MutexKind::MK_Mcs>},
    {"clh", makeBaseline<MutexKind::MK_Clh>},
    {"tm_glock", makeTmBased<TmKind::TK_GlobalLock>},
    {"tm_tl2", makeTmBased<TmKind::TK_Tl2>},
    {"tm_norec", makeTmBased<TmKind::TK_Norec>},
    {"tm_orec_incr", makeTmBased<TmKind::TK_OrecIncremental>},
    {"tm_orec_eager", makeTmBased<TmKind::TK_OrecEager>},
    {"tm_tlrw", makeTmBased<TmKind::TK_Tlrw>},
    {"tm_tml", makeTmBased<TmKind::TK_Tml>},
};

class MutexTest : public ::testing::TestWithParam<MutexParam> {};

std::string paramName(const ::testing::TestParamInfo<MutexParam> &Info) {
  return Info.param.Label;
}

} // namespace

TEST_P(MutexTest, SingleThreadPassages) {
  auto L = GetParam().Make(1);
  for (int I = 0; I < 100; ++I) {
    L->enter(0);
    L->exit(0);
  }
  SUCCEED();
}

TEST_P(MutexTest, SequentialAlternationBetweenThreads) {
  auto L = GetParam().Make(3);
  for (int I = 0; I < 30; ++I) {
    ThreadId Tid = I % 3;
    L->enter(Tid);
    L->exit(Tid);
  }
  SUCCEED();
}

TEST_P(MutexTest, MutualExclusionUnderContention) {
  constexpr unsigned Threads = 4;
  constexpr int Passages = 400;
  auto L = GetParam().Make(Threads);

  std::atomic<int> Occupancy{0};
  std::atomic<int> Collisions{0};
  // Deliberately non-atomic: only mutual exclusion protects it.
  volatile uint64_t PlainCounter = 0;

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      for (int I = 0; I < Passages; ++I) {
        L->enter(T);
        if (Occupancy.fetch_add(1, std::memory_order_acq_rel) != 0)
          Collisions.fetch_add(1, std::memory_order_relaxed);
        PlainCounter = PlainCounter + 1;
        Occupancy.fetch_sub(1, std::memory_order_acq_rel);
        L->exit(T);
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(Collisions.load(), 0) << "two threads were in the CS at once";
  EXPECT_EQ(PlainCounter, uint64_t{Threads} * Passages)
      << "lost update inside the critical section";
}

TEST_P(MutexTest, DeadlockFreedomTwoThreadsTightLoop) {
  // The finishing of this test *is* the assertion: repeated hand-offs
  // between two threads must never wedge (this hammers the Done/Succ
  // registration race in Algorithm 1).
  constexpr int Passages = 2000;
  auto L = GetParam().Make(2);
  uint64_t Shared = 0;

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < 2; ++T) {
    Workers.emplace_back([&, T] {
      for (int I = 0; I < Passages; ++I) {
        L->enter(T);
        Shared = Shared + 1;
        L->exit(T);
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(Shared, uint64_t{2} * Passages);
}

TEST_P(MutexTest, ProgressWithUnevenWorkloads) {
  // Threads do different numbers of passages; everyone must finish even
  // when contenders disappear (no one waits on a ghost).
  constexpr unsigned Threads = 4;
  auto L = GetParam().Make(Threads);
  std::atomic<uint64_t> Done{0};

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      int Mine = 50 * (static_cast<int>(T) + 1);
      for (int I = 0; I < Mine; ++I) {
        L->enter(T);
        L->exit(T);
      }
      Done.fetch_add(1);
    });
  }
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(Done.load(), Threads);
}

INSTANTIATE_TEST_SUITE_P(AllLocks, MutexTest, ::testing::ValuesIn(kParams),
                         paramName);

//===----------------------------------------------------------------------===//
// Algorithm 1 specifics
//===----------------------------------------------------------------------===//

TEST(TmMutex, InnerTmObservesCommits) {
  auto M = createTm(TmKind::TK_Tl2, 1, 2);
  Tm *Raw = M.get();
  TmMutex L(std::move(M), 2);
  for (int I = 0; I < 10; ++I) {
    L.enter(0);
    L.exit(0);
  }
  // Each passage commits exactly one func() transaction when uncontended.
  EXPECT_EQ(Raw->stats().Commits, 10u);
}

TEST(TmMutex, NameIdentifiesInnerTm) {
  auto L = createTmMutex(TmKind::TK_Norec, 2);
  EXPECT_STREQ(L->name(), "tm-mutex(norec)");
}

TEST(TmMutex, QueueHandoffIsFifoWhenSequential) {
  // Sequential passages from distinct threads chain through X: each
  // enterer finds the previous holder's tag and must see Done=true.
  auto L = createTmMutex(TmKind::TK_OrecIncremental, 4);
  for (int Round = 0; Round < 5; ++Round)
    for (ThreadId T = 0; T < 4; ++T) {
      L->enter(T);
      L->exit(T);
    }
  SUCCEED();
}
