//===-- tests/KvTest.cpp - Sharded KV service layer tests -----------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service-layer suite, in four tiers:
///
///  * creation/sizing negatives — invalid shard geometry must yield null,
///    never UB (the power-of-two gate shared with FactoryTest);
///  * sequential semantics + a randomized differential against
///    std::unordered_map across every TmKind, covering the whole surface
///    (get/put/erase/cas, multiPut, snapshotGet, readModifyWrite) and the
///    capacity-exhaustion rollback of multi-shard batches;
///  * concurrency — per-thread differential stress, the canonical-order
///    multi-shard commit scripts (reversed acquisition orders must not
///    deadlock; a cross-shard batch must never be observed torn: the
///    "opacity across shards" property the latch protocol buys);
///  * the asynchronous executor — per-client FIFO, mixed-op batches
///    matched against an in-order model, and drain-on-stop.
///
//===----------------------------------------------------------------------===//

#include "kv/Kv.h"
#include "workload/KvWorkload.h"

#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <vector>

using namespace ptm;
using namespace ptm::kv;

namespace ptm {
namespace kv {

/// Befriended by KvStore: exposes the shard latches so tests can probe
/// the lock-compatibility matrix (which operations may overlap) directly
/// instead of inferring it from timing.
struct KvTestPeer {
  static std::shared_mutex &shardLatch(KvStore &Store, unsigned Shard) {
    return *Store.Shards[Shard].Latch;
  }
};

} // namespace kv
} // namespace ptm

namespace {

/// Simple sense-reversing spin barrier for round-based tests.
class SpinBarrier {
public:
  explicit SpinBarrier(unsigned Count) : Parties(Count) {}

  void arriveAndWait() {
    unsigned Gen = Generation.load();
    if (Arrived.fetch_add(1) + 1 == Parties) {
      Arrived.store(0);
      Generation.fetch_add(1);
      return;
    }
    while (Generation.load() == Gen)
      std::this_thread::yield();
  }

private:
  unsigned Parties;
  std::atomic<unsigned> Arrived{0};
  std::atomic<unsigned> Generation{0};
};

std::string paramName(const ::testing::TestParamInfo<TmKind> &Info) {
  std::string Name = tmKindName(Info.param);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

KvConfig smallConfig(TmKind Kind, unsigned Shards = 4,
                     unsigned MaxThreads = 4) {
  KvConfig Cfg;
  Cfg.ShardCount = Shards;
  Cfg.BucketsPerShard = 8;
  Cfg.CapacityPerShard = 256;
  Cfg.Kind = Kind;
  Cfg.MaxThreads = MaxThreads;
  return Cfg;
}

/// First \p Count keys (ascending) that the store routes to \p Shard.
std::vector<uint64_t> keysOfShard(const KvStore &Store, unsigned Shard,
                                  size_t Count) {
  std::vector<uint64_t> Keys;
  for (uint64_t Key = 0; Keys.size() < Count && Key < 1 << 20; ++Key)
    if (Store.shardOf(Key) == Shard)
      Keys.push_back(Key);
  EXPECT_EQ(Keys.size(), Count) << "key search space exhausted";
  return Keys;
}

class KvStoreTest : public ::testing::TestWithParam<TmKind> {};

} // namespace

//===----------------------------------------------------------------------===//
// Creation and sizing
//===----------------------------------------------------------------------===//

TEST(KvSizing, ShardCountMustBePowerOfTwo) {
  for (unsigned Bad : {0u, 3u, 5u, 6u, 7u, 12u, 100u}) {
    EXPECT_FALSE(KvStore::isValidShardCount(Bad)) << Bad;
    KvConfig Cfg = smallConfig(TmKind::TK_Tl2);
    Cfg.ShardCount = Bad;
    EXPECT_EQ(KvStore::create(Cfg), nullptr) << Bad;
  }
  for (unsigned Good : {1u, 2u, 4u, 8u, 64u})
    EXPECT_TRUE(KvStore::isValidShardCount(Good)) << Good;
}

TEST(KvSizing, RejectsZeroGeometry) {
  KvConfig Cfg = smallConfig(TmKind::TK_Tl2);
  Cfg.BucketsPerShard = 0;
  EXPECT_EQ(KvStore::create(Cfg), nullptr);
  Cfg = smallConfig(TmKind::TK_Tl2);
  Cfg.CapacityPerShard = 0;
  EXPECT_EQ(KvStore::create(Cfg), nullptr);
  Cfg = smallConfig(TmKind::TK_Tl2);
  Cfg.MaxThreads = 0;
  EXPECT_EQ(KvStore::create(Cfg), nullptr);
  Cfg = smallConfig(static_cast<TmKind>(999));
  EXPECT_EQ(KvStore::create(Cfg), nullptr);
}

TEST(KvSizing, EveryKeyRoutesToAValidShard) {
  auto Store = KvStore::create(smallConfig(TmKind::TK_Tl2, 8));
  ASSERT_NE(Store, nullptr);
  std::vector<uint64_t> PerShard(8, 0);
  for (uint64_t Key = 0; Key < 4096; ++Key) {
    unsigned Shard = Store->shardOf(Key);
    ASSERT_LT(Shard, 8u);
    ++PerShard[Shard];
  }
  // The router is a mixing hash: no shard may be starved (a starved
  // shard would mean routing and bucket hashing collapsed together).
  for (unsigned S = 0; S < 8; ++S)
    EXPECT_GT(PerShard[S], 4096u / 16) << "shard " << S << " starved";
}

//===----------------------------------------------------------------------===//
// Sequential semantics (every TmKind)
//===----------------------------------------------------------------------===//

TEST_P(KvStoreTest, SingleKeyBasics) {
  auto Store = KvStore::create(smallConfig(GetParam()));
  ASSERT_NE(Store, nullptr);

  EXPECT_EQ(Store->get(0, 7).Status, KvStatus::NotFound);
  EXPECT_TRUE(Store->put(0, 7, 70).ok());
  KvResponse Got = Store->get(0, 7);
  EXPECT_TRUE(Got.ok());
  EXPECT_EQ(Got.Value, 70u);
  EXPECT_TRUE(Store->put(0, 7, 71).ok()); // Overwrite.
  EXPECT_EQ(Store->get(0, 7), (KvResponse{KvStatus::Ok, 71}));
  KvResponse Erased = Store->erase(0, 7);
  EXPECT_TRUE(Erased.ok());
  EXPECT_EQ(Erased.Value, 71u) << "erase Ok carries the prior value";
  EXPECT_EQ(Store->erase(0, 7).Status, KvStatus::NotFound);
  EXPECT_EQ(Store->get(0, 7).Status, KvStatus::NotFound);
  EXPECT_EQ(Store->sampleSize(), 0u);
}

TEST_P(KvStoreTest, CompareAndSwapSemantics) {
  auto Store = KvStore::create(smallConfig(GetParam()));
  ASSERT_NE(Store, nullptr);

  // Absent key: no swap, status reports absence distinctly from a
  // value mismatch.
  EXPECT_EQ(Store->compareAndSwap(0, 5, 0, 1).Status, KvStatus::NotFound);

  ASSERT_TRUE(Store->put(0, 5, 10).ok());
  // Wrong expectation: no swap, the response carries the witness.
  KvResponse Miss = Store->compareAndSwap(0, 5, 11, 12);
  EXPECT_EQ(Miss.Status, KvStatus::CasMismatch);
  EXPECT_EQ(Miss.Value, 10u);
  EXPECT_EQ(Store->get(0, 5), (KvResponse{KvStatus::Ok, 10}));

  // Matching expectation: swapped; Ok echoes the expected value.
  KvResponse Swap = Store->compareAndSwap(0, 5, 10, 12);
  EXPECT_TRUE(Swap.ok());
  EXPECT_EQ(Swap.Value, 10u);
  EXPECT_EQ(Store->get(0, 5), (KvResponse{KvStatus::Ok, 12}));
}

TEST_P(KvStoreTest, MultiPutAndSnapshotGet) {
  auto Store = KvStore::create(smallConfig(GetParam()));
  ASSERT_NE(Store, nullptr);

  // Duplicate key in the batch: the later pair wins (batch order).
  ASSERT_EQ(Store->multiPut(0, {{1, 10}, {2, 20}, {3, 30}, {1, 11}}),
            KvStatus::Ok);
  std::vector<KvResponse> Out;
  ASSERT_EQ(Store->snapshotGet(0, {1, 2, 3, 4}, Out), KvStatus::Ok);
  ASSERT_EQ(Out.size(), 4u);
  EXPECT_EQ(Out[0], (KvResponse{KvStatus::Ok, 11}));
  EXPECT_EQ(Out[1], (KvResponse{KvStatus::Ok, 20}));
  EXPECT_EQ(Out[2], (KvResponse{KvStatus::Ok, 30}));
  EXPECT_EQ(Out[3].Status, KvStatus::NotFound);
  EXPECT_EQ(Store->sampleSize(), 3u);
}

TEST_P(KvStoreTest, ReadModifyWriteAcrossShards) {
  auto Store = KvStore::create(smallConfig(GetParam()));
  ASSERT_NE(Store, nullptr);

  ASSERT_EQ(Store->multiPut(0, {{1, 100}, {2, 50}}), KvStatus::Ok);
  // A transfer: both keys mutate as one atomic cross-key operation.
  ASSERT_EQ(Store->readModifyWrite(
                0, {1, 2},
                [](std::vector<std::optional<uint64_t>> &Values) {
                  ASSERT_TRUE(Values[0] && Values[1]);
                  *Values[0] -= 30;
                  *Values[1] += 30;
                }),
            KvStatus::Ok);
  std::vector<KvResponse> Out;
  ASSERT_EQ(Store->snapshotGet(0, {1, 2}, Out), KvStatus::Ok);
  EXPECT_EQ(Out[0], (KvResponse{KvStatus::Ok, 70}));
  EXPECT_EQ(Out[1], (KvResponse{KvStatus::Ok, 80}));

  // nullopt result = erase; absent input reads as nullopt.
  ASSERT_EQ(Store->readModifyWrite(
                0, {1, 9},
                [](std::vector<std::optional<uint64_t>> &Values) {
                  EXPECT_FALSE(Values[1].has_value());
                  Values[0].reset();
                  Values[1] = 5;
                }),
            KvStatus::Ok);
  ASSERT_EQ(Store->snapshotGet(0, {1, 9}, Out), KvStatus::Ok);
  EXPECT_EQ(Out[0].Status, KvStatus::NotFound);
  EXPECT_EQ(Out[1], (KvResponse{KvStatus::Ok, 5}));
}

TEST_P(KvStoreTest, DifferentialAgainstUnorderedMap) {
  auto Store = KvStore::create(smallConfig(GetParam()));
  ASSERT_NE(Store, nullptr);
  std::unordered_map<uint64_t, uint64_t> Model;
  Xoshiro256 Rng(0xC0FFEE ^ static_cast<uint64_t>(GetParam()));
  constexpr uint64_t kKeySpace = 128;

  for (int Op = 0; Op < 4000; ++Op) {
    uint64_t Key = Rng.nextBounded(kKeySpace);
    switch (Rng.nextBounded(7)) {
    case 0:
    case 1: { // get
      KvResponse R = Store->get(0, Key);
      auto It = Model.find(Key);
      ASSERT_EQ(R.ok(), It != Model.end()) << "op " << Op;
      if (R.ok()) {
        ASSERT_EQ(R.Value, It->second) << "op " << Op;
      }
      break;
    }
    case 2: { // put
      uint64_t Value = Rng.next();
      ASSERT_TRUE(Store->put(0, Key, Value).ok());
      Model[Key] = Value;
      break;
    }
    case 3: { // erase
      KvResponse R = Store->erase(0, Key);
      auto It = Model.find(Key);
      ASSERT_EQ(R.ok(), It != Model.end()) << "op " << Op;
      if (R.ok()) {
        ASSERT_EQ(R.Value, It->second) << "op " << Op;
        Model.erase(It);
      }
      break;
    }
    case 4: { // cas with a fifty-fifty correct expectation
      auto It = Model.find(Key);
      uint64_t Current = It != Model.end() ? It->second : 0;
      uint64_t Expected = Rng.nextBool(0.5) ? Current : Current + 1;
      KvResponse R = Store->compareAndSwap(0, Key, Expected, 777);
      if (It == Model.end()) {
        ASSERT_EQ(R.Status, KvStatus::NotFound) << "op " << Op;
      } else if (Expected == Current) {
        ASSERT_EQ(R, (KvResponse{KvStatus::Ok, Expected})) << "op " << Op;
        Model[Key] = 777;
      } else {
        ASSERT_EQ(R, (KvResponse{KvStatus::CasMismatch, Current}))
            << "op " << Op;
      }
      break;
    }
    case 5: { // multiPut
      std::vector<std::pair<uint64_t, uint64_t>> Pairs;
      for (unsigned K = 0; K < 4; ++K)
        Pairs.emplace_back(Rng.nextBounded(kKeySpace), Rng.next());
      ASSERT_EQ(Store->multiPut(0, Pairs), KvStatus::Ok);
      for (const auto &[PKey, PValue] : Pairs)
        Model[PKey] = PValue;
      break;
    }
    default: { // readModifyWrite: increment-or-seed a random key set
      std::vector<uint64_t> Keys;
      for (unsigned K = 0; K < 3; ++K)
        Keys.push_back(Rng.nextBounded(kKeySpace));
      ASSERT_EQ(Store->readModifyWrite(
                    0, Keys,
                    [](std::vector<std::optional<uint64_t>> &Values) {
                      for (auto &V : Values)
                        V = V.value_or(0) + 1;
                    }),
                KvStatus::Ok);
      // Mirror the RMW snapshot semantics: duplicate keys all read the
      // same pre-operation value, so they increment once, not twice.
      std::unordered_map<uint64_t, uint64_t> Snapshot;
      for (uint64_t K : Keys)
        if (!Snapshot.count(K))
          Snapshot[K] = Model.count(K) ? Model[K] : 0;
      for (uint64_t K : Keys)
        Model[K] = Snapshot[K] + 1;
      break;
    }
    }
  }

  // Full-state comparison at the end.
  ASSERT_EQ(Store->sampleSize(), Model.size());
  for (const auto &[Key, Value] : Model)
    ASSERT_EQ(Store->get(0, Key), (KvResponse{KvStatus::Ok, Value})) << Key;
}

//===----------------------------------------------------------------------===//
// Capacity exhaustion and rollback
//===----------------------------------------------------------------------===//

TEST_P(KvStoreTest, PutFailsCleanlyWhenShardFull) {
  KvConfig Cfg = smallConfig(GetParam(), /*Shards=*/1);
  Cfg.CapacityPerShard = 4;
  auto Store = KvStore::create(Cfg);
  ASSERT_NE(Store, nullptr);

  for (uint64_t Key = 0; Key < 4; ++Key)
    ASSERT_TRUE(Store->put(0, Key, Key).ok());
  EXPECT_EQ(Store->put(0, 99, 1).Status, KvStatus::CapacityExhausted)
      << "fifth distinct key must not fit";
  EXPECT_EQ(Store->sampleSize(), 4u);
  // Overwrites and erase+insert still work at capacity.
  EXPECT_TRUE(Store->put(0, 3, 33).ok());
  EXPECT_TRUE(Store->erase(0, 0).ok());
  EXPECT_TRUE(Store->put(0, 99, 1).ok());
}

TEST_P(KvStoreTest, MultiPutFailsAtomicallyOnCapacityExhaustion) {
  KvConfig Cfg = smallConfig(GetParam(), /*Shards=*/2);
  Cfg.CapacityPerShard = 3;
  auto Store = KvStore::create(Cfg);
  ASSERT_NE(Store, nullptr);

  // Fill shard 1 completely; shard 0 stays empty.
  std::vector<uint64_t> Shard1Keys = keysOfShard(*Store, 1, 4);
  for (unsigned I = 0; I < 3; ++I)
    ASSERT_TRUE(Store->put(0, Shard1Keys[I], 100 + I).ok());
  std::vector<uint64_t> Shard0Keys = keysOfShard(*Store, 0, 2);

  // A batch that fits shard 0 but exhausts shard 1 must leave the store
  // exactly as it was: the capacity precheck fails it before anything
  // commits, so not even a momentary shard-0 write is observable.
  std::vector<std::pair<uint64_t, uint64_t>> Batch = {
      {Shard0Keys[0], 1}, {Shard0Keys[1], 2}, {Shard1Keys[3], 3}};
  EXPECT_EQ(Store->multiPut(0, Batch), KvStatus::CapacityExhausted);

  EXPECT_EQ(Store->sampleSize(), 3u);
  EXPECT_EQ(Store->get(0, Shard0Keys[0]).Status, KvStatus::NotFound)
      << "partial batch leaked";
  EXPECT_EQ(Store->get(0, Shard0Keys[1]).Status, KvStatus::NotFound)
      << "partial batch leaked";
  for (unsigned I = 0; I < 3; ++I)
    EXPECT_EQ(Store->get(0, Shard1Keys[I]),
              (KvResponse{KvStatus::Ok, 100 + I}))
        << "pre-existing value clobbered";

  // The same batch through readModifyWrite also fails atomically.
  EXPECT_EQ(Store->readModifyWrite(
                0, {Shard0Keys[0], Shard1Keys[3]},
                [](std::vector<std::optional<uint64_t>> &Values) {
                  Values[0] = 7;
                  Values[1] = 8;
                }),
            KvStatus::CapacityExhausted);
  EXPECT_EQ(Store->get(0, Shard0Keys[0]).Status, KvStatus::NotFound);
  EXPECT_EQ(Store->sampleSize(), 3u);

  // The documented conservatism: at full capacity an RMW whose erase
  // would fund its insert is still rejected (application order inside
  // the shard transaction could need the peak).
  EXPECT_EQ(Store->readModifyWrite(
                0, {Shard1Keys[0], Shard1Keys[3]},
                [](std::vector<std::optional<uint64_t>> &Values) {
                  Values[0].reset();
                  Values[1] = 9;
                }),
            KvStatus::CapacityExhausted);
  EXPECT_EQ(Store->get(0, Shard1Keys[0]), (KvResponse{KvStatus::Ok, 100}));

  // Overwrites of present keys need no fresh node and still succeed at
  // full capacity.
  EXPECT_EQ(Store->multiPut(0, {{Shard1Keys[0], 500}, {Shard1Keys[1], 501}}),
            KvStatus::Ok);
  EXPECT_EQ(Store->get(0, Shard1Keys[0]), (KvResponse{KvStatus::Ok, 500}));
}

//===----------------------------------------------------------------------===//
// Concurrency
//===----------------------------------------------------------------------===//

TEST_P(KvStoreTest, ConcurrentDifferentialDisjointRanges) {
  constexpr unsigned kThreads = 4;
  constexpr uint64_t kOps = 1500;
  constexpr uint64_t kRange = 64;
  auto Store = KvStore::create(smallConfig(GetParam(), 4, kThreads));
  ASSERT_NE(Store, nullptr);

  // Each thread owns a disjoint key range and mirrors its own model, so
  // the mirror needs no synchronization; contention still happens inside
  // the shards (ranges interleave across all shards).
  std::vector<std::unordered_map<uint64_t, uint64_t>> Models(kThreads);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < kThreads; ++T) {
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(0xABCD + T);
      auto &Model = Models[T];
      const uint64_t Base = T * kRange;
      for (uint64_t Op = 0; Op < kOps; ++Op) {
        uint64_t Key = Base + Rng.nextBounded(kRange);
        switch (Rng.nextBounded(4)) {
        case 0: {
          KvResponse R = Store->get(T, Key);
          ASSERT_EQ(R.ok(), Model.count(Key) != 0);
          if (R.ok()) {
            ASSERT_EQ(R.Value, Model[Key]);
          }
          break;
        }
        case 1:
          ASSERT_TRUE(Store->put(T, Key, Op).ok());
          Model[Key] = Op;
          break;
        case 2:
          ASSERT_EQ(Store->erase(T, Key).ok(), Model.erase(Key) != 0);
          break;
        default: {
          std::vector<std::pair<uint64_t, uint64_t>> Pairs = {
              {Key, Op}, {Base + (Key + 1 - Base) % kRange, Op + 1}};
          ASSERT_EQ(Store->multiPut(T, Pairs), KvStatus::Ok);
          for (const auto &[PKey, PValue] : Pairs)
            Model[PKey] = PValue;
          break;
        }
        }
      }
    });
  }
  for (std::thread &W : Threads)
    W.join();

  uint64_t Expected = 0;
  for (const auto &Model : Models)
    Expected += Model.size();
  ASSERT_EQ(Store->sampleSize(), Expected);
  for (const auto &Model : Models)
    for (const auto &[Key, Value] : Model)
      ASSERT_EQ(Store->get(0, Key), (KvResponse{KvStatus::Ok, Value}))
          << Key;
}

TEST_P(KvStoreTest, CrossShardBatchesAreNeverTorn) {
  // The "opacity across shards" property: writers keep multiPut-ing
  // matched (KeyA, KeyB) pairs on two different shards; snapshot readers
  // must always see both halves equal. Without the canonical-order
  // latches the per-shard commits would be separately visible.
  auto Store = KvStore::create(smallConfig(GetParam(), 4, 4));
  ASSERT_NE(Store, nullptr);
  const uint64_t KeyA = keysOfShard(*Store, 0, 1)[0];
  const uint64_t KeyB = keysOfShard(*Store, 1, 1)[0];
  ASSERT_EQ(Store->multiPut(0, {{KeyA, 0}, {KeyB, 0}}), KvStatus::Ok);

  constexpr uint64_t kRounds = 400;
  std::vector<std::thread> Threads;
  for (unsigned W = 0; W < 2; ++W) {
    Threads.emplace_back([&, W] {
      for (uint64_t I = 1; I <= kRounds; ++I) {
        uint64_t Tag = (uint64_t{W} << 32) | I;
        ASSERT_EQ(Store->multiPut(W, {{KeyA, Tag}, {KeyB, Tag}}),
                  KvStatus::Ok);
      }
    });
  }
  for (unsigned R = 2; R < 4; ++R) {
    Threads.emplace_back([&, R] {
      for (uint64_t I = 0; I < kRounds; ++I) {
        std::vector<KvResponse> Out;
        ASSERT_EQ(Store->snapshotGet(R, {KeyA, KeyB}, Out), KvStatus::Ok);
        ASSERT_TRUE(Out[0].ok() && Out[1].ok());
        ASSERT_EQ(Out[0].Value, Out[1].Value) << "torn cross-shard batch";
      }
    });
  }
  for (std::thread &W : Threads)
    W.join();
}

TEST_P(KvStoreTest, ReversedAcquisitionOrdersDoNotDeadlock) {
  // Two threads compose the same two shards but name the keys in
  // opposite orders; canonical (ascending shard) acquisition inside the
  // store must prevent the lock-order cycle. The multiPuts write the
  // same keys, so atomicity additionally requires the final state to be
  // one batch in its entirety.
  auto Store = KvStore::create(smallConfig(GetParam(), 4, 2));
  ASSERT_NE(Store, nullptr);
  const uint64_t KeyA = keysOfShard(*Store, 0, 1)[0];
  const uint64_t KeyB = keysOfShard(*Store, 3, 1)[0];

  constexpr uint64_t kRounds = 500;
  std::thread Forward([&] {
    for (uint64_t I = 0; I < kRounds; ++I)
      ASSERT_EQ(Store->multiPut(0, {{KeyA, 2 * I}, {KeyB, 2 * I}}),
                KvStatus::Ok);
  });
  std::thread Reversed([&] {
    for (uint64_t I = 0; I < kRounds; ++I)
      ASSERT_EQ(
          Store->multiPut(1, {{KeyB, 2 * I + 1}, {KeyA, 2 * I + 1}}),
          KvStatus::Ok);
  });
  Forward.join();
  Reversed.join();

  std::vector<KvResponse> Out;
  ASSERT_EQ(Store->snapshotGet(0, {KeyA, KeyB}, Out), KvStatus::Ok);
  ASSERT_TRUE(Out[0].ok() && Out[1].ok());
  EXPECT_EQ(Out[0].Value, Out[1].Value) << "final state mixes two batches";
}

TEST_P(KvStoreTest, RmwTransfersConserveTotal) {
  // Cross-shard transfers through readModifyWrite: the summed balance is
  // invariant, and concurrent single-key updates to other keys must not
  // be lost under the shared/unique latch split.
  constexpr unsigned kAccounts = 16;
  constexpr uint64_t kInitial = 1000;
  auto Store = KvStore::create(smallConfig(GetParam(), 4, 4));
  ASSERT_NE(Store, nullptr);
  for (uint64_t Key = 0; Key < kAccounts; ++Key)
    ASSERT_TRUE(Store->put(0, Key, kInitial).ok());

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 3; ++T) {
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(31 + T);
      for (int I = 0; I < 400; ++I) {
        uint64_t From = Rng.nextBounded(kAccounts);
        uint64_t To = Rng.nextBounded(kAccounts - 1);
        if (To >= From)
          ++To;
        uint64_t Amount = Rng.nextBounded(20);
        ASSERT_EQ(Store->readModifyWrite(
                      T, {From, To},
                      [&](std::vector<std::optional<uint64_t>> &Values) {
                        uint64_t F = Values[0].value_or(0);
                        uint64_t Moved = F < Amount ? F : Amount;
                        Values[0] = F - Moved;
                        Values[1] = Values[1].value_or(0) + Moved;
                      }),
                  KvStatus::Ok);
      }
    });
  }
  // A counter thread on a separate key: single-key cas increments racing
  // the latched transfers.
  const uint64_t CounterKey = kAccounts + 100;
  ASSERT_TRUE(Store->put(0, CounterKey, 0).ok());
  Threads.emplace_back([&] {
    for (int I = 0; I < 400; ++I) {
      KvResponse Current = Store->get(3, CounterKey);
      ASSERT_TRUE(Current.ok());
      while (!Store->compareAndSwap(3, CounterKey, Current.Value,
                                    Current.Value + 1)
                  .ok()) {
        Current = Store->get(3, CounterKey);
        ASSERT_TRUE(Current.ok());
      }
    }
  });
  for (std::thread &W : Threads)
    W.join();

  uint64_t Total = 0;
  for (uint64_t Key = 0; Key < kAccounts; ++Key) {
    KvResponse R = Store->get(0, Key);
    ASSERT_TRUE(R.ok());
    Total += R.Value;
  }
  EXPECT_EQ(Total, kAccounts * kInitial) << "transfer money leaked";
  KvResponse Counter = Store->get(0, CounterKey);
  ASSERT_TRUE(Counter.ok());
  EXPECT_EQ(Counter.Value, 400u) << "single-key cas increments lost";
}

TEST_P(KvStoreTest, SnapshotGetProceedsWhileSharedLatchesAreHeld) {
  // The lock-compatibility regression test for the read path: a reader
  // must never need a shard latch exclusively. Hold EVERY shard latch in
  // shared mode from this thread and require a concurrent snapshotGet to
  // complete anyway — on mv it takes no latches at all, elsewhere it
  // takes shared latches, and both are compatible with held shared
  // latches. The pre-fix exclusive acquisition would block here forever.
  auto Store = KvStore::create(smallConfig(GetParam(), 4, 2));
  ASSERT_NE(Store, nullptr);
  std::vector<uint64_t> Keys;
  for (unsigned S = 0; S < 4; ++S)
    Keys.push_back(keysOfShard(*Store, S, 1)[0]);
  for (uint64_t Key : Keys)
    ASSERT_TRUE(Store->put(0, Key, Key + 1).ok());

  std::vector<std::shared_lock<std::shared_mutex>> Held;
  for (unsigned S = 0; S < 4; ++S)
    Held.emplace_back(KvTestPeer::shardLatch(*Store, S));

  std::atomic<bool> Done{false};
  std::thread Reader([&] {
    std::vector<KvResponse> Out;
    ASSERT_EQ(Store->snapshotGet(1, Keys, Out), KvStatus::Ok);
    for (size_t I = 0; I < Keys.size(); ++I)
      ASSERT_EQ(Out[I], (KvResponse{KvStatus::Ok, Keys[I] + 1}));
    Done.store(true, std::memory_order_release);
  });

  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!Done.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::yield();
  bool Completed = Done.load(std::memory_order_acquire);
  // Release the latches before joining either way, so a regression shows
  // up as a test failure rather than a hang.
  Held.clear();
  Reader.join();
  EXPECT_TRUE(Completed)
      << "snapshotGet blocked behind shared latch holders: the read path "
         "must use shared (or no) latches";
}

TEST_P(KvStoreTest, OverlappingSnapshotGetsStayConsistent) {
  // Reader-reader concurrency: two snapshot readers launch each round
  // from a barrier, so their multi-shard read windows overlap in flight
  // while a writer keeps replacing a matched cross-shard pair. Both
  // readers must always see the pair intact — concurrent readers must
  // neither exclude each other (the shared-latch property above) nor
  // corrupt each other's validation state (mv's epoch re-check path).
  auto Store = KvStore::create(smallConfig(GetParam(), 4, 4));
  ASSERT_NE(Store, nullptr);
  const uint64_t KeyA = keysOfShard(*Store, 0, 1)[0];
  const uint64_t KeyB = keysOfShard(*Store, 2, 1)[0];
  ASSERT_EQ(Store->multiPut(0, {{KeyA, 0}, {KeyB, 0}}), KvStatus::Ok);
  Store->resetStats();

  constexpr uint64_t kRounds = 300;
  SpinBarrier Barrier(3); // Two readers + the writer.

  std::vector<std::thread> Threads;
  for (unsigned R = 0; R < 2; ++R) {
    Threads.emplace_back([&, R] {
      for (uint64_t I = 0; I < kRounds; ++I) {
        Barrier.arriveAndWait();
        std::vector<KvResponse> Out;
        ASSERT_EQ(Store->snapshotGet(R, {KeyA, KeyB}, Out), KvStatus::Ok);
        ASSERT_TRUE(Out[0].ok() && Out[1].ok());
        ASSERT_EQ(Out[0].Value, Out[1].Value)
            << "torn pair seen by reader " << R;
      }
    });
  }
  Threads.emplace_back([&] {
    for (uint64_t I = 1; I <= kRounds; ++I) {
      Barrier.arriveAndWait();
      ASSERT_EQ(Store->multiPut(2, {{KeyA, I}, {KeyB, I}}), KvStatus::Ok);
    }
  });
  for (std::thread &W : Threads)
    W.join();

  if (GetParam() == TmKind::TK_Mv) {
    // The abort-free guarantee under this exact race: the reader slots
    // (ThreadIds 0 and 1) must not have aborted once on any shard.
    for (unsigned S = 0; S < 4; ++S)
      for (ThreadId Tid = 0; Tid < 2; ++Tid)
        EXPECT_EQ(Store->shardTm(S).threadStats(Tid).totalAborts(), 0u)
            << "mv snapshot reader aborted (shard " << S << ", tid " << Tid
            << ")";
  }
}

//===----------------------------------------------------------------------===//
// The asynchronous executor
//===----------------------------------------------------------------------===//

TEST(KvExecutor, OptionValidation) {
  auto Store = KvStore::create(smallConfig(TmKind::TK_Tl2, 4, 2));
  ASSERT_NE(Store, nullptr);
  RequestExecutor::Options Opts;
  Opts.Workers = 2;
  Opts.QueueCapacity = 64;
  Opts.MaxBatch = 8;
  EXPECT_TRUE(RequestExecutor::validOptions(*Store, Opts));
  Opts.Workers = 0;
  EXPECT_FALSE(RequestExecutor::validOptions(*Store, Opts));
  Opts.Workers = 3; // Exceeds the store's MaxThreads of 2.
  EXPECT_FALSE(RequestExecutor::validOptions(*Store, Opts));
  Opts.Workers = 2;
  Opts.QueueCapacity = 100; // Not a power of two.
  EXPECT_FALSE(RequestExecutor::validOptions(*Store, Opts));
  Opts.QueueCapacity = 64;
  Opts.MaxBatch = 0;
  EXPECT_FALSE(RequestExecutor::validOptions(*Store, Opts));
}

TEST(KvExecutor, ResetClearsPriorResponse) {
  // The resubmission-staleness regression: a completed request re-armed
  // by reset() must not carry its previous response forward (a Get
  // re-submitted as a Put would otherwise keep a stale status if the
  // publish raced — reset() clears everything the executor writes).
  KvRequest R;
  R.Out = {KvStatus::CasMismatch, 42};
  R.SubmitNs = 7;
  R.Done.store(true, std::memory_order_relaxed);
  R.reset();
  EXPECT_FALSE(R.done());
  EXPECT_EQ(R.Out, KvResponse());
  EXPECT_EQ(R.SubmitNs, 0u);
}

TEST_P(KvStoreTest, ExecutorMatchesInOrderModel) {
  // One client submits a mixed sequence; per-producer queue FIFO plus
  // batched in-order execution must make the results identical to
  // executing the sequence synchronously against a model map.
  auto Store = KvStore::create(smallConfig(GetParam(), 4, 2));
  ASSERT_NE(Store, nullptr);
  RequestExecutor::Options Opts;
  Opts.Workers = 2;
  Opts.QueueCapacity = 64;
  Opts.MaxBatch = 8;
  RequestExecutor Exec(*Store, Opts);

  std::unordered_map<uint64_t, uint64_t> Model;
  Xoshiro256 Rng(0xFEED ^ static_cast<uint64_t>(GetParam()));
  constexpr int kOps = 600;
  constexpr uint64_t kKeySpace = 32;

  // Submit in waves of pipelined requests targeting ONE key each wave:
  // requests to the same key keep their submission order, so the model
  // stays exact even though batches coalesce.
  std::vector<KvRequest> Wave(8);
  for (int Round = 0; Round < kOps / 8; ++Round) {
    uint64_t Key = Rng.nextBounded(kKeySpace);
    for (auto &R : Wave) {
      R.reset();
      R.Key = Key;
      switch (Rng.nextBounded(4)) {
      case 0:
        R.Op = KvOp::Get;
        break;
      case 1:
        R.Op = KvOp::Put;
        R.Value = Rng.next();
        break;
      case 2:
        R.Op = KvOp::Erase;
        break;
      default:
        R.Op = KvOp::Cas;
        R.Expected = Rng.nextBounded(3);
        R.Value = Rng.next();
        break;
      }
      Exec.submit(R);
    }
    for (auto &R : Wave)
      RequestExecutor::wait(R);
    // Mirror the wave in submission order and check each response
    // against the synchronous-surface semantics (same vocabulary).
    for (size_t I = 0; I < Wave.size(); ++I) {
      KvRequest &R = Wave[I];
      auto It = Model.find(Key);
      switch (R.Op) {
      case KvOp::Get:
        if (It != Model.end()) {
          ASSERT_EQ(R.Out, (KvResponse{KvStatus::Ok, It->second}));
        } else {
          ASSERT_EQ(R.Out.Status, KvStatus::NotFound);
        }
        break;
      case KvOp::Put:
        ASSERT_TRUE(R.Out.ok());
        Model[Key] = R.Value;
        break;
      case KvOp::Erase:
        if (It != Model.end()) {
          ASSERT_EQ(R.Out, (KvResponse{KvStatus::Ok, It->second}));
          Model.erase(It);
        } else {
          ASSERT_EQ(R.Out.Status, KvStatus::NotFound);
        }
        break;
      case KvOp::Cas:
        if (It == Model.end()) {
          ASSERT_EQ(R.Out.Status, KvStatus::NotFound);
        } else if (It->second == R.Expected) {
          ASSERT_EQ(R.Out, (KvResponse{KvStatus::Ok, R.Expected}));
          Model[Key] = R.Value;
        } else {
          ASSERT_EQ(R.Out, (KvResponse{KvStatus::CasMismatch, It->second}));
        }
        break;
      default:
        FAIL() << "unexpected op in wave";
      }
    }
  }
  Exec.drainAndStop();
  ASSERT_EQ(Store->sampleSize(), Model.size());
}

TEST_P(KvStoreTest, ExecutorConcurrentClientsDisjointKeys) {
  constexpr unsigned kClients = 3;
  constexpr uint64_t kOpsPerClient = 800;
  auto Store = KvStore::create(smallConfig(GetParam(), 8, 2));
  ASSERT_NE(Store, nullptr);
  RequestExecutor::Options Opts;
  Opts.Workers = 2;
  Opts.QueueCapacity = 32; // Small queue: exercises submit backpressure.
  Opts.MaxBatch = 4;
  ExecutorStats Stats;
  {
    RequestExecutor Exec(*Store, Opts);
    std::vector<std::thread> Clients;
    for (unsigned C = 0; C < kClients; ++C) {
      Clients.emplace_back([&, C] {
        // Pipelined puts to the client's own key range; the last write
        // per key wins by per-producer FIFO.
        std::vector<KvRequest> Ring(16);
        for (uint64_t Op = 0; Op < kOpsPerClient; ++Op) {
          KvRequest &R = Ring[Op % Ring.size()];
          if (Op >= Ring.size())
            RequestExecutor::wait(R);
          R.reset();
          R.Op = KvOp::Put;
          R.Key = C * 1000 + Op % 50;
          R.Value = (uint64_t{C} << 32) | Op;
          Exec.submit(R);
        }
        for (auto &R : Ring)
          RequestExecutor::wait(R);
      });
    }
    for (std::thread &W : Clients)
      W.join();
    Exec.drainAndStop();
    Stats = Exec.exactStats();
  }

  EXPECT_EQ(Stats.Completed, kClients * kOpsPerClient);
  EXPECT_GT(Stats.Batches, 0u);
  // Every key must hold the LAST value its client wrote.
  for (unsigned C = 0; C < kClients; ++C) {
    for (uint64_t Slot = 0; Slot < 50; ++Slot) {
      uint64_t LastOp = kOpsPerClient - 50 + Slot;
      ASSERT_EQ(Store->get(0, C * 1000 + Slot),
                (KvResponse{KvStatus::Ok, (uint64_t{C} << 32) | LastOp}))
          << "client " << C << " slot " << Slot;
    }
  }
}

TEST(KvExecutor, StopUnderBackpressureCompletesEveryQueuedRequest) {
  // The shutdown-drain regression test: fill the queues right up to
  // their (tiny) capacity, then stop immediately. Every submitted
  // request must still complete — a request left queued would never
  // finish and its heap storage below would be leaked, which the
  // ASan/LSan jobs turn into a hard failure. Requests are deleted only
  // when done() so an undrained request is leak-visible, not just an
  // assertion.
  auto Store = KvStore::create(smallConfig(TmKind::TK_Tl2, 8, 2));
  ASSERT_NE(Store, nullptr);
  RequestExecutor::Options Opts;
  Opts.Workers = 2;
  Opts.QueueCapacity = 4; // Tiny: submit spins on full queues.
  Opts.MaxBatch = 2;

  constexpr unsigned kRequests = 512;
  std::vector<KvRequest *> Submitted;
  Submitted.reserve(kRequests);
  {
    RequestExecutor Exec(*Store, Opts);
    for (unsigned I = 0; I < kRequests; ++I) {
      auto *R = new KvRequest;
      R->Op = KvOp::Put;
      R->Key = I % 64;
      R->Value = I;
      Submitted.push_back(R);
      Exec.submit(*R); // Blocking submit: backpressure path.
    }
    Exec.drainAndStop();
    EXPECT_EQ(Exec.exactStats().Completed, kRequests);
  }

  unsigned Dropped = 0;
  for (KvRequest *R : Submitted) {
    if (R->done())
      delete R;
    else
      ++Dropped; // Deliberately leaked: LSan flags the lost request.
  }
  EXPECT_EQ(Dropped, 0u) << "drainAndStop abandoned queued requests";
}

//===----------------------------------------------------------------------===//
// Workload drivers
//===----------------------------------------------------------------------===//

TEST(KvWorkload, MixIsDeterministicPerSeed) {
  auto RunOnce = [] {
    auto Store = KvStore::create(smallConfig(TmKind::TK_GlobalLock, 4, 1));
    KvMixConfig Mix;
    Mix.OpsPerThread = 500;
    Mix.KeySpace = 128;
    Mix.Seed = 99;
    return runKvMix(*Store, 1, Mix).ValueChecksum;
  };
  // Single-threaded runs are fully reproducible from the seed.
  EXPECT_EQ(RunOnce(), RunOnce());
}

TEST(KvWorkload, HotShardScenarioSkewsTraffic) {
  auto Store = KvStore::create(smallConfig(TmKind::TK_Tl2, 4, 2));
  KvMixConfig Mix;
  Mix.OpsPerThread = 1000;
  Mix.KeySpace = 256;
  Mix.GetFrac = 0.0; // All updates, so commits land where keys do.
  Mix.PutFrac = 1.0;
  Mix.CasFrac = 0.0;
  Mix.MultiFrac = 0.0;
  Mix.HotShardFrac = 0.9;
  RunResult R = runKvMix(*Store, 2, Mix);
  EXPECT_GT(R.Commits, 0u);
  uint64_t Hot = Store->shardTm(0).stats().Commits;
  uint64_t Rest = 0;
  for (unsigned S = 1; S < Store->shardCount(); ++S)
    Rest += Store->shardTm(S).stats().Commits;
  EXPECT_GT(Hot, Rest) << "hot shard should dominate commit traffic";
}

TEST(KvWorkload, ExecutorLoadCompletesEverything) {
  auto Store = KvStore::create(smallConfig(TmKind::TK_Norec, 4, 2));
  KvExecutorConfig Load;
  Load.Clients = 2;
  Load.Workers = 2;
  Load.OpsPerClient = 700;
  Load.MaxBatch = 8;
  Load.QueueCapacity = 64;
  Load.Pipeline = 16;
  Load.KeySpace = 128;
  KvExecutorMetrics Metrics;
  RunResult R = runKvExecutorLoad(*Store, Load, &Metrics);
  EXPECT_EQ(Metrics.Completed, 2u * 700u);
  EXPECT_EQ(R.ValueChecksum, 2u * 700u);
  EXPECT_GT(Metrics.MeanBatch, 0.0);
  EXPECT_GT(Metrics.MeanLatencyUs, 0.0);
  EXPECT_GT(R.Commits, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllTms, KvStoreTest,
                         ::testing::ValuesIn(allTmKinds()), paramName);
