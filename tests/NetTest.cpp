//===-- tests/NetTest.cpp - Wire protocol and server tests ----------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// The src/net contracts: codec round trips for every op, incremental
/// decoding (every proper prefix is NeedMore, never Malformed or a
/// bogus Ok), defensive rejection of malformed frames (mirroring the
/// binary-trace fuzz suite), and the epoll server end to end — status
/// vocabulary over the wire, pipelined in-order responses, admission
/// control under tiny pipeline/queue limits, concurrent clients, a
/// protocol-violating peer getting dropped, and durability composing
/// through the server (WAL attached, per-connection acked writes
/// recover).
///
//===----------------------------------------------------------------------===//

#include "kv/Kv.h"
#include "net/Net.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <cstdlib>
#include <cstring>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace ptm;
using namespace ptm::kv;
using namespace ptm::net;

namespace {

//===----------------------------------------------------------------------===//
// Codec round trips
//===----------------------------------------------------------------------===//

NetRequest sampleRequest(KvOp Op) {
  NetRequest Req;
  Req.Op = Op;
  Req.Id = 0x1122334455667788ull;
  Req.Key = 0xAABB;
  Req.Value = 0xCCDD;
  Req.Expected = 0xEEFF;
  if (Op == KvOp::MultiPut)
    Req.Pairs = {{1, 10}, {2, 20}, {3, 30}};
  if (Op == KvOp::SnapshotGet)
    Req.Keys = {5, 6, 7, 8};
  return Req;
}

TEST(ProtocolTest, RequestRoundTripEveryOp) {
  for (unsigned O = 0; O < kNumKvOps; ++O) {
    KvOp Op = static_cast<KvOp>(O);
    NetRequest In = sampleRequest(Op);
    std::vector<uint8_t> Wire;
    encodeRequest(In, Wire);
    NetRequest Out;
    size_t Consumed = 0;
    ASSERT_EQ(decodeRequest(Wire.data(), Wire.size(), Consumed, Out),
              DecodeStatus::Ok)
        << kvOpName(Op);
    EXPECT_EQ(Consumed, Wire.size());
    EXPECT_EQ(Out.Op, In.Op);
    EXPECT_EQ(Out.Id, In.Id);
    switch (Op) {
    case KvOp::Get:
    case KvOp::Erase:
      EXPECT_EQ(Out.Key, In.Key);
      break;
    case KvOp::Put:
      EXPECT_EQ(Out.Key, In.Key);
      EXPECT_EQ(Out.Value, In.Value);
      break;
    case KvOp::Cas:
      EXPECT_EQ(Out.Key, In.Key);
      EXPECT_EQ(Out.Value, In.Value);
      EXPECT_EQ(Out.Expected, In.Expected);
      break;
    case KvOp::MultiPut:
      EXPECT_EQ(Out.Pairs, In.Pairs);
      break;
    case KvOp::SnapshotGet:
      EXPECT_EQ(Out.Keys, In.Keys);
      break;
    case KvOp::Ping:
      break;
    }
  }
}

TEST(ProtocolTest, ResponseRoundTripWithValues) {
  NetResponse In;
  In.Id = 42;
  In.Result = {KvStatus::CasMismatch, 0xDEADBEEF};
  In.Values = {{KvStatus::Ok, 1}, {KvStatus::NotFound, 0}, {KvStatus::Ok, 3}};
  std::vector<uint8_t> Wire;
  encodeResponse(In, Wire);
  NetResponse Out;
  size_t Consumed = 0;
  ASSERT_EQ(decodeResponse(Wire.data(), Wire.size(), Consumed, Out),
            DecodeStatus::Ok);
  EXPECT_EQ(Consumed, Wire.size());
  EXPECT_EQ(Out.Id, In.Id);
  EXPECT_EQ(Out.Result, In.Result);
  EXPECT_EQ(Out.Values, In.Values);
}

TEST(ProtocolTest, BackToBackFramesConsumeExactlyOne) {
  std::vector<uint8_t> Wire;
  NetRequest A = sampleRequest(KvOp::Put), B = sampleRequest(KvOp::Get);
  B.Id = 99;
  encodeRequest(A, Wire);
  size_t FirstLen = Wire.size();
  encodeRequest(B, Wire);
  NetRequest Out;
  size_t Consumed = 0;
  ASSERT_EQ(decodeRequest(Wire.data(), Wire.size(), Consumed, Out),
            DecodeStatus::Ok);
  EXPECT_EQ(Consumed, FirstLen);
  EXPECT_EQ(Out.Op, KvOp::Put);
  size_t Consumed2 = 0;
  ASSERT_EQ(decodeRequest(Wire.data() + Consumed, Wire.size() - Consumed,
                          Consumed2, Out),
            DecodeStatus::Ok);
  EXPECT_EQ(Out.Id, 99u);
}

TEST(ProtocolTest, EveryProperPrefixIsNeedMore) {
  for (KvOp Op : {KvOp::Put, KvOp::MultiPut, KvOp::SnapshotGet}) {
    NetRequest In = sampleRequest(Op);
    std::vector<uint8_t> Wire;
    encodeRequest(In, Wire);
    NetRequest Out;
    for (size_t Size = 0; Size < Wire.size(); ++Size) {
      size_t Consumed = 0;
      EXPECT_EQ(decodeRequest(Wire.data(), Size, Consumed, Out),
                DecodeStatus::NeedMore)
          << kvOpName(Op) << " prefix " << Size;
    }
  }
}

TEST(ProtocolTest, MalformedFramesAreRejected) {
  NetRequest Out;
  size_t Consumed = 0;

  // Length field over the frame bound: can never become valid.
  std::vector<uint8_t> Huge = {0xff, 0xff, 0xff, 0xff};
  EXPECT_EQ(decodeRequest(Huge.data(), Huge.size(), Consumed, Out),
            DecodeStatus::Malformed);

  std::vector<uint8_t> Wire;
  encodeRequest(sampleRequest(KvOp::Cas), Wire);

  // Wrong protocol version (byte 4).
  std::vector<uint8_t> Bad = Wire;
  Bad[4] = 2;
  EXPECT_EQ(decodeRequest(Bad.data(), Bad.size(), Consumed, Out),
            DecodeStatus::Malformed);

  // Unknown op byte (byte 5).
  Bad = Wire;
  Bad[5] = kNumKvOps;
  EXPECT_EQ(decodeRequest(Bad.data(), Bad.size(), Consumed, Out),
            DecodeStatus::Malformed);

  // Truncated body with a length claiming more: grow the length field
  // past the real body; the decode sees a full frame whose payload
  // cannot satisfy the op — Malformed, not a hang.
  Bad = Wire;
  Bad[0] += 1;
  Bad.push_back(0); // Supply the extra byte: now trailing junk.
  EXPECT_EQ(decodeRequest(Bad.data(), Bad.size(), Consumed, Out),
            DecodeStatus::Malformed);

  // MultiPut count that cannot fit its frame.
  std::vector<uint8_t> Multi;
  encodeRequest(sampleRequest(KvOp::MultiPut), Multi);
  Bad = Multi;
  Bad[14] = 0xff; // Count field low byte (4 len + 1 ver + 1 op + 8 id).
  EXPECT_EQ(decodeRequest(Bad.data(), Bad.size(), Consumed, Out),
            DecodeStatus::Malformed);

  // Response with an unknown status byte.
  NetResponse RespIn;
  RespIn.Result = {KvStatus::Ok, 7};
  std::vector<uint8_t> RespWire;
  encodeResponse(RespIn, RespWire);
  RespWire[5] = kNumKvStatuses;
  NetResponse RespOut;
  EXPECT_EQ(decodeResponse(RespWire.data(), RespWire.size(), Consumed,
                           RespOut),
            DecodeStatus::Malformed);
}

TEST(ProtocolTest, SingleByteMutationsNeverCrash) {
  // The fuzz sweep: flipping any single byte must yield Ok, NeedMore, or
  // Malformed — never a crash or overread (ASan enforces the latter).
  for (KvOp Op : {KvOp::Get, KvOp::Cas, KvOp::MultiPut, KvOp::SnapshotGet,
                  KvOp::Ping}) {
    std::vector<uint8_t> Wire;
    encodeRequest(sampleRequest(Op), Wire);
    for (size_t I = 0; I < Wire.size(); ++I) {
      for (uint8_t Flip : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xff}}) {
        std::vector<uint8_t> Bad = Wire;
        Bad[I] ^= Flip;
        NetRequest Out;
        size_t Consumed = 0;
        DecodeStatus S = decodeRequest(Bad.data(), Bad.size(), Consumed, Out);
        if (S == DecodeStatus::Ok) {
          EXPECT_LE(Consumed, Bad.size());
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Server end to end
//===----------------------------------------------------------------------===//

/// A store + running server + connected client, torn down in order.
struct ServerFixture {
  std::unique_ptr<KvStore> Store;
  std::unique_ptr<KvServer> Server;

  explicit ServerFixture(KvServer::Options Opts = {},
                         uint64_t CapacityPerShard = 1024) {
    KvConfig Cfg;
    Cfg.ShardCount = 4;
    Cfg.BucketsPerShard = 16;
    Cfg.CapacityPerShard = CapacityPerShard;
    Cfg.MaxThreads = Opts.Workers + 1;
    Store = KvStore::create(Cfg);
    EXPECT_NE(Store, nullptr);
    Server = KvServer::start(*Store, Opts);
    EXPECT_NE(Server, nullptr);
  }

  std::unique_ptr<KvClient> client() const {
    return KvClient::connect(Server->port());
  }
};

TEST(KvServerTest, RejectsInvalidOptions) {
  KvConfig Cfg;
  Cfg.ShardCount = 4;
  Cfg.MaxThreads = 2; // Needs Workers + 1 = 3.
  auto Store = KvStore::create(Cfg);
  ASSERT_NE(Store, nullptr);
  KvServer::Options Opts;
  Opts.Workers = 2;
  EXPECT_FALSE(KvServer::validOptions(*Store, Opts));
  EXPECT_EQ(KvServer::start(*Store, Opts), nullptr);
  Opts.Workers = 1; // Fits: 1 worker + 1 poll ThreadId.
  EXPECT_TRUE(KvServer::validOptions(*Store, Opts));
  Opts.MaxPipeline = 0;
  EXPECT_FALSE(KvServer::validOptions(*Store, Opts));
}

TEST(KvServerTest, StatusVocabularyTravelsTheWire) {
  ServerFixture F;
  auto C = F.client();
  ASSERT_NE(C, nullptr);

  EXPECT_EQ(C->ping(), KvStatus::Ok);
  EXPECT_EQ(C->get(7), (KvResponse{KvStatus::NotFound, 0}));
  EXPECT_EQ(C->put(7, 70), (KvResponse{KvStatus::Ok, 0}));
  EXPECT_EQ(C->get(7), (KvResponse{KvStatus::Ok, 70}));
  // Cas: mismatch carries the witness, success carries Expected.
  EXPECT_EQ(C->compareAndSwap(7, 1, 2),
            (KvResponse{KvStatus::CasMismatch, 70}));
  EXPECT_EQ(C->compareAndSwap(7, 70, 71), (KvResponse{KvStatus::Ok, 70}));
  EXPECT_EQ(C->compareAndSwap(999, 1, 2),
            (KvResponse{KvStatus::NotFound, 0}));
  // Erase carries the prior value.
  EXPECT_EQ(C->erase(7), (KvResponse{KvStatus::Ok, 71}));
  EXPECT_EQ(C->erase(7), (KvResponse{KvStatus::NotFound, 0}));

  // Multi-key: batch in, snapshot out, per-key statuses in key order.
  EXPECT_EQ(C->multiPut({{1, 100}, {2, 200}, {3, 300}}), KvStatus::Ok);
  std::vector<KvResponse> Snap;
  EXPECT_EQ(C->snapshotGet({1, 2, 99, 3}, Snap), KvStatus::Ok);
  ASSERT_EQ(Snap.size(), 4u);
  EXPECT_EQ(Snap[0], (KvResponse{KvStatus::Ok, 100}));
  EXPECT_EQ(Snap[1], (KvResponse{KvStatus::Ok, 200}));
  EXPECT_EQ(Snap[2], (KvResponse{KvStatus::NotFound, 0}));
  EXPECT_EQ(Snap[3], (KvResponse{KvStatus::Ok, 300}));

  // Every request above is answered, so by the time the last response
  // arrived the poll thread had counted all of them.
  obs::MetricsSnapshot Telemetry = F.Server->telemetry();
  EXPECT_EQ(Telemetry.counter("net.accepted"), 1u);
  EXPECT_EQ(Telemetry.counter("net.requests"), 11u);
  EXPECT_EQ(Telemetry.counter("net.responses"), 11u);
  EXPECT_EQ(Telemetry.counter("net.malformed"), 0u);
}

TEST(KvServerTest, CapacityExhaustedTravelsTheWire) {
  ServerFixture F({}, /*CapacityPerShard=*/4);
  auto C = F.client();
  ASSERT_NE(C, nullptr);
  unsigned Failures = 0;
  for (uint64_t K = 0; K < 64; ++K) {
    KvStatus S = C->put(K, K).Status;
    ASSERT_TRUE(S == KvStatus::Ok || S == KvStatus::CapacityExhausted);
    Failures += (S == KvStatus::CapacityExhausted);
  }
  EXPECT_GT(Failures, 0u); // 4 shards x 4 capacity < 64 keys.
  // A multiPut over capacity fails whole, and the wire says why.
  std::vector<std::pair<uint64_t, uint64_t>> Pairs;
  for (uint64_t K = 100; K < 164; ++K)
    Pairs.emplace_back(K, K);
  EXPECT_EQ(C->multiPut(Pairs), KvStatus::CapacityExhausted);
}

TEST(KvServerTest, PipelinedResponsesArriveInOrder) {
  ServerFixture F;
  auto C = F.client();
  ASSERT_NE(C, nullptr);
  // Pipeline writes and reads to the SAME key: in-order execution means
  // each get observes the put just before it.
  constexpr uint64_t kN = 256;
  std::vector<uint64_t> Ids;
  for (uint64_t I = 0; I < kN; ++I) {
    NetRequest Put;
    Put.Op = KvOp::Put;
    Put.Key = 5;
    Put.Value = I;
    ASSERT_TRUE(C->send(Put));
    NetRequest Get;
    Get.Op = KvOp::Get;
    Get.Key = 5;
    ASSERT_TRUE(C->send(Get));
    Ids.push_back(Put.Id);
    Ids.push_back(Get.Id);
  }
  for (uint64_t I = 0; I < kN; ++I) {
    NetResponse PutResp, GetResp;
    ASSERT_TRUE(C->receive(PutResp));
    ASSERT_TRUE(C->receive(GetResp));
    EXPECT_EQ(PutResp.Id, Ids[2 * I]);
    EXPECT_EQ(GetResp.Id, Ids[2 * I + 1]);
    EXPECT_EQ(PutResp.Result.Status, KvStatus::Ok);
    EXPECT_EQ(GetResp.Result, (KvResponse{KvStatus::Ok, I}));
  }
}

TEST(KvServerTest, SyncOpsObserveEarlierPipelinedWrites) {
  // A snapshotGet pipelined behind single-key puts must observe them
  // (the server drains the connection's in-flight tail first).
  ServerFixture F;
  auto C = F.client();
  ASSERT_NE(C, nullptr);
  NetRequest Put;
  Put.Op = KvOp::Put;
  for (uint64_t K = 0; K < 8; ++K) {
    Put.Key = K;
    Put.Value = K * 7;
    ASSERT_TRUE(C->send(Put));
  }
  NetRequest Snap;
  Snap.Op = KvOp::SnapshotGet;
  Snap.Keys = {0, 1, 2, 3, 4, 5, 6, 7};
  ASSERT_TRUE(C->send(Snap));
  for (uint64_t K = 0; K < 8; ++K) {
    NetResponse R;
    ASSERT_TRUE(C->receive(R));
    EXPECT_EQ(R.Result.Status, KvStatus::Ok);
  }
  NetResponse SnapResp;
  ASSERT_TRUE(C->receive(SnapResp));
  ASSERT_EQ(SnapResp.Values.size(), 8u);
  for (uint64_t K = 0; K < 8; ++K)
    EXPECT_EQ(SnapResp.Values[K], (KvResponse{KvStatus::Ok, K * 7}));
}

TEST(KvServerTest, AdmissionControlUnderTinyLimits) {
  // A pipeline far deeper than MaxPipeline over a tiny queue: the server
  // pauses reads and stalls submissions, but every request completes in
  // order — backpressure, not breakage.
  KvServer::Options Opts;
  Opts.Workers = 1;
  Opts.QueueCapacity = 2;
  Opts.MaxBatch = 1;
  Opts.MaxPipeline = 2;
  ServerFixture F(Opts);
  auto C = F.client();
  ASSERT_NE(C, nullptr);
  // Send everything before reading anything: with MaxPipeline=2 the
  // server stops reading almost immediately, so most of these frames sit
  // in socket buffers (the kN frames total ~15 KB — well under the
  // kernel's buffering, so the one-sided send cannot deadlock) until
  // completions lift the pause, a few frames at a time.
  constexpr uint64_t kN = 512;
  for (uint64_t I = 0; I < kN; ++I) {
    NetRequest Put;
    Put.Op = KvOp::Put;
    Put.Key = I % 3; // Few keys: every request contends.
    Put.Value = I;
    ASSERT_TRUE(C->send(Put));
  }
  for (uint64_t I = 0; I < kN; ++I) {
    NetResponse R;
    ASSERT_TRUE(C->receive(R));
    EXPECT_EQ(R.Result.Status, KvStatus::Ok);
  }
  EXPECT_EQ(C->get(0).Status, KvStatus::Ok);
}

TEST(KvServerTest, ConcurrentClientsStayIsolated) {
  ServerFixture F;
  constexpr unsigned kClients = 4;
  constexpr uint64_t kOps = 200;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < kClients; ++T) {
    Threads.emplace_back([&, T] {
      auto C = F.client();
      ASSERT_NE(C, nullptr);
      // Disjoint key ranges: each client's final reads are deterministic.
      uint64_t Base = 1000 * T;
      for (uint64_t I = 0; I < kOps; ++I)
        ASSERT_TRUE(C->put(Base + (I % 16), I).ok());
      for (uint64_t K = 0; K < 16; ++K) {
        KvResponse R = C->get(Base + K);
        EXPECT_EQ(R.Status, KvStatus::Ok);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
}

TEST(KvServerTest, MalformedFrameDropsTheConnection) {
  ServerFixture F;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(F.Server->port());
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);
  // A frame with a length beyond kMaxFrameBytes: unrecoverable.
  uint8_t Junk[] = {0xff, 0xff, 0xff, 0xff, 1, 2, 3};
  ASSERT_EQ(::send(Fd, Junk, sizeof(Junk), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(Junk)));
  uint8_t Buf[16];
  EXPECT_EQ(::recv(Fd, Buf, sizeof(Buf), 0), 0); // Orderly close.
  ::close(Fd);
  // The server survives and keeps serving other connections.
  auto C = F.client();
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->ping(), KvStatus::Ok);
  EXPECT_EQ(F.Server->telemetry().counter("net.malformed"), 1u);
}

TEST(KvServerTest, ServerShutdownFailsClientsCleanly) {
  auto F = std::make_unique<ServerFixture>();
  auto C = F->client();
  ASSERT_NE(C, nullptr);
  ASSERT_TRUE(C->put(1, 1).ok());
  F->Server->stop();
  // The dead connection surfaces as IoError, never a hang or a crash.
  EXPECT_EQ(C->get(1).Status, KvStatus::IoError);
  EXPECT_FALSE(C->connected());
}

TEST(KvServerTest, DurabilityComposesThroughTheServer) {
  // End to end: wire writes -> executor batches -> WAL group commits ->
  // crash (destroy store without detaching cleanly) -> recover ->
  // everything the server acknowledged is back.
  class TempDir {
  public:
    TempDir() {
      char T[] = "/tmp/ptm-net-wal-XXXXXX";
      Path_ = ::mkdtemp(T);
    }
    ~TempDir() {
      for (unsigned S = 0; S < 8; ++S)
        std::remove(Wal::shardFilePath(Path_, S).c_str());
      ::rmdir(Path_.c_str());
    }
    std::string Path_;
  };
  TempDir Dir;
  {
    KvConfig Cfg;
    Cfg.ShardCount = 4;
    Cfg.BucketsPerShard = 16;
    Cfg.CapacityPerShard = 1024;
    Cfg.MaxThreads = 3;
    auto Store = KvStore::create(Cfg);
    ASSERT_NE(Store, nullptr);
    auto W = Wal::open(Dir.Path_, 4, Wal::recover(Dir.Path_, 4));
    ASSERT_NE(W, nullptr);
    Store->attachWal(W.get());
    auto Server = KvServer::start(*Store, {});
    ASSERT_NE(Server, nullptr);
    auto C = KvClient::connect(Server->port());
    ASSERT_NE(C, nullptr);
    for (uint64_t K = 0; K < 32; ++K)
      ASSERT_TRUE(C->put(K, K * 3).ok());
    ASSERT_EQ(C->multiPut({{100, 1}, {101, 1}}), KvStatus::Ok);
    ASSERT_TRUE(C->erase(5).ok());
  }
  WalRecovery R = Wal::recover(Dir.Path_, 4);
  ASSERT_TRUE(R.Ok);
  KvConfig Cfg;
  Cfg.ShardCount = 4;
  Cfg.BucketsPerShard = 16;
  Cfg.CapacityPerShard = 1024;
  Cfg.MaxThreads = 2;
  auto Fresh = KvStore::create(Cfg);
  ASSERT_NE(Fresh, nullptr);
  ASSERT_EQ(Fresh->replayWal(R.Records), KvStatus::Ok);
  for (uint64_t K = 0; K < 32; ++K) {
    KvResponse Got = Fresh->get(0, K);
    if (K == 5)
      EXPECT_EQ(Got.Status, KvStatus::NotFound);
    else
      EXPECT_EQ(Got, (KvResponse{KvStatus::Ok, K * 3}));
  }
  EXPECT_EQ(Fresh->get(0, 100), (KvResponse{KvStatus::Ok, 1}));
  EXPECT_EQ(Fresh->get(0, 101), (KvResponse{KvStatus::Ok, 1}));
}

} // namespace
