//===-- mutex/TasMutex.h - Test-and-set spin locks --------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two canonical CAS spin locks: TAS (CAS in a tight loop — every
/// failed attempt is an RMR in CC) and TTAS (spin on a cached read, CAS
/// only when the lock looks free — O(1) RMRs per *release* but still Θ(n)
/// per passage under contention). Both are the "bad" end of experiment E3.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_MUTEX_TASMUTEX_H
#define PTM_MUTEX_TASMUTEX_H

#include "mutex/Mutex.h"
#include "runtime/BaseObject.h"

namespace ptm {

class TasMutex final : public Mutex {
public:
  explicit TasMutex(unsigned ThreadCount);

  const char *name() const override { return "tas"; }
  unsigned maxThreads() const override { return NumThreads; }

  void enter(ThreadId Tid) override;
  void exit(ThreadId Tid) override;

private:
  unsigned NumThreads;
  BaseObject Word;
};

class TtasMutex final : public Mutex {
public:
  explicit TtasMutex(unsigned ThreadCount);

  const char *name() const override { return "ttas"; }
  unsigned maxThreads() const override { return NumThreads; }

  void enter(ThreadId Tid) override;
  void exit(ThreadId Tid) override;

private:
  unsigned NumThreads;
  BaseObject Word;
};

} // namespace ptm

#endif // PTM_MUTEX_TASMUTEX_H
