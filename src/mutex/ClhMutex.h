//===-- mutex/ClhMutex.h - CLH queue lock -----------------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Craig/Landin/Hagersten implicit-queue lock: each thread spins on
/// its predecessor's node. O(1) RMRs per passage in the CC models; in the
/// DSM model the spin is on *another* process's node, so CLH degrades
/// there — the classic contrast with MCS, visible in experiment E3.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_MUTEX_CLHMUTEX_H
#define PTM_MUTEX_CLHMUTEX_H

#include "mutex/Mutex.h"
#include "runtime/BaseObject.h"
#include "support/Compiler.h"

#include <vector>

namespace ptm {

class ClhMutex final : public Mutex {
public:
  explicit ClhMutex(unsigned ThreadCount);

  const char *name() const override { return "clh"; }
  unsigned maxThreads() const override { return NumThreads; }

  void enter(ThreadId Tid) override;
  void exit(ThreadId Tid) override;

private:
  unsigned NumThreads;
  BaseObject Tail;              ///< Index of the most recent node.
  std::vector<BaseObject> Flag; ///< Per-node: 1 = holder pending.

  /// Thread-local node bookkeeping (nodes recycle through the queue).
  struct alignas(PTM_CACHELINE_SIZE) Local {
    uint64_t MyNode = 0;
    uint64_t MyPred = 0;
  };
  std::vector<Local> Locals;
};

} // namespace ptm

#endif // PTM_MUTEX_CLHMUTEX_H
