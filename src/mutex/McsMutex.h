//===-- mutex/McsMutex.h - MCS queue lock -----------------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Mellor-Crummey/Scott queue lock: O(1) RMRs per passage in both the
/// CC and DSM models. Note that MCS enqueues with *fetch-and-store* — an
/// unconditional RMW primitive — which is precisely why it sits outside
/// the hypotheses of the paper's Theorem 9 (reads, writes and conditional
/// primitives only) and may beat the Ω(n log n) bound.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_MUTEX_MCSMUTEX_H
#define PTM_MUTEX_MCSMUTEX_H

#include "mutex/Mutex.h"
#include "runtime/BaseObject.h"

#include <vector>

namespace ptm {

class McsMutex final : public Mutex {
public:
  explicit McsMutex(unsigned ThreadCount);

  const char *name() const override { return "mcs"; }
  unsigned maxThreads() const override { return NumThreads; }

  void enter(ThreadId Tid) override;
  void exit(ThreadId Tid) override;

private:
  unsigned NumThreads;
  BaseObject Tail;              ///< 0 = empty, otherwise thread id + 1.
  std::vector<BaseObject> Next; ///< Per-thread queue node: successor id + 1.
  std::vector<BaseObject> Wait; ///< Per-thread spin flag, homed at owner.
};

} // namespace ptm

#endif // PTM_MUTEX_MCSMUTEX_H
