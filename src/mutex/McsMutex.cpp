//===-- mutex/McsMutex.cpp - MCS queue lock --------------------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "mutex/McsMutex.h"

#include "support/Spin.h"

#include <cassert>

using namespace ptm;

McsMutex::McsMutex(unsigned ThreadCount)
    : NumThreads(ThreadCount), Tail(0), Next(ThreadCount), Wait(ThreadCount) {
  // DSM homes: each thread spins only on its own node.
  for (unsigned T = 0; T < NumThreads; ++T) {
    Next[T].setHome(T);
    Wait[T].setHome(T);
  }
  Tail.setHome(0);
}

void McsMutex::enter(ThreadId Tid) {
  assert(Tid < NumThreads && "thread id out of range");
  Next[Tid].write(0);
  Wait[Tid].write(1);
  uint64_t Prev = Tail.exchange(Tid + 1);
  if (Prev == 0)
    return;
  // Link behind the predecessor; the wait flag was raised before linking,
  // so the predecessor's release cannot be lost.
  Next[Prev - 1].write(Tid + 1);
  uint32_t Spins = 0;
  while (Wait[Tid].read() == 1)
    spinPause(Spins);
}

void McsMutex::exit(ThreadId Tid) {
  assert(Tid < NumThreads && "thread id out of range");
  if (Next[Tid].read() == 0) {
    // No known successor: try to swing the tail back to empty.
    uint64_t Expected = Tid + 1;
    if (Tail.compareAndSwap(Expected, 0))
      return;
    // Someone is enqueueing; wait for the link to appear (bounded by the
    // successor's two steps).
    uint32_t Spins = 0;
    while (Next[Tid].read() == 0)
      spinPause(Spins);
  }
  Wait[Next[Tid].read() - 1].write(0);
}
