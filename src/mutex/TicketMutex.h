//===-- mutex/TicketMutex.h - Ticket lock -----------------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FIFO ticket lock: fetch-and-add on a ticket counter, spin on the
/// serving counter. Every release invalidates all waiters' cached copies
/// of Serving, giving Θ(n) RMRs per passage under contention in CC — a
/// useful middle point between TAS and the queue locks in E3.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_MUTEX_TICKETMUTEX_H
#define PTM_MUTEX_TICKETMUTEX_H

#include "mutex/Mutex.h"
#include "runtime/BaseObject.h"

namespace ptm {

class TicketMutex final : public Mutex {
public:
  explicit TicketMutex(unsigned ThreadCount);

  const char *name() const override { return "ticket"; }
  unsigned maxThreads() const override { return NumThreads; }

  void enter(ThreadId Tid) override;
  void exit(ThreadId Tid) override;

private:
  unsigned NumThreads;
  BaseObject NextTicket;
  BaseObject Serving;
};

} // namespace ptm

#endif // PTM_MUTEX_TICKETMUTEX_H
