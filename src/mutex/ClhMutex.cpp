//===-- mutex/ClhMutex.cpp - CLH queue lock --------------------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "mutex/ClhMutex.h"

#include "support/Spin.h"

#include <cassert>

using namespace ptm;

ClhMutex::ClhMutex(unsigned ThreadCount)
    : NumThreads(ThreadCount), Tail(ThreadCount), Flag(ThreadCount + 1),
      Locals(ThreadCount) {
  // Node n is the pre-released sentinel the first enterer queues behind.
  Flag[NumThreads].poke(0);
  for (unsigned T = 0; T < NumThreads; ++T) {
    Locals[T].MyNode = T;
    Flag[T].setHome(T);
  }
  Flag[NumThreads].setHome(0);
  Tail.setHome(0);
}

void ClhMutex::enter(ThreadId Tid) {
  assert(Tid < NumThreads && "thread id out of range");
  Local &L = Locals[Tid];
  Flag[L.MyNode].write(1);
  L.MyPred = Tail.exchange(L.MyNode);
  // Spin on the predecessor's node — local in CC after the first load,
  // remote in DSM (the node belongs to another process).
  uint32_t Spins = 0;
  while (Flag[L.MyPred].read() == 1)
    spinPause(Spins);
}

void ClhMutex::exit(ThreadId Tid) {
  assert(Tid < NumThreads && "thread id out of range");
  Local &L = Locals[Tid];
  Flag[L.MyNode].write(0);
  // Recycle: the predecessor's node becomes ours for the next passage.
  L.MyNode = L.MyPred;
}
