//===-- mutex/TmMutex.cpp - The paper's Algorithm 1 ------------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "mutex/TmMutex.h"

#include "stm/Atomically.h"
#include "support/Spin.h"

#include <cassert>

using namespace ptm;

TmMutex::TmMutex(std::unique_ptr<Tm> Inner, unsigned ThreadCount)
    : M(std::move(Inner)), NumThreads(ThreadCount),
      Done(static_cast<size_t>(ThreadCount) * 2),
      Succ(static_cast<size_t>(ThreadCount) * 2),
      Lock(static_cast<size_t>(ThreadCount) * ThreadCount),
      Faces(ThreadCount) {
  assert(M && "TmMutex needs an inner TM");
  assert(M->numObjects() >= 1 && "inner TM must manage t-object X");
  assert(M->maxThreads() >= NumThreads && "inner TM has too few thread slots");
  Name = std::string("tm-mutex(") + M->name() + ")";

  // DSM homes: every register of process i lives in i's memory segment, so
  // the Entry spin loop is local (the crux of the Theorem 7 RMR argument).
  for (unsigned T = 0; T < NumThreads; ++T) {
    doneReg(T, 0).setHome(T);
    doneReg(T, 1).setHome(T);
    succReg(T, 0).setHome(T);
    succReg(T, 1).setHome(T);
    for (unsigned H = 0; H < NumThreads; ++H)
      lockReg(T, H).setHome(T);
  }
  M->init(0, kBottom);
}

uint64_t TmMutex::fetchAndStoreX(ThreadId Tid, uint64_t Tag) {
  // By (strong) progressiveness an abort means some concurrent contender
  // committed or holds the conflict, so retrying must eventually succeed.
  // The wait between attempts comes from the inner TM's ContentionManager
  // via the shared atomically() seam — the same policy every other
  // transactional call-site consults — not a private Backoff copy.
  uint64_t Prev = 0;
  bool Committed = atomically(*M, Tid, [&](TxRef &Tx) {
    if (Tx.read(/*Obj=*/0, Prev))
      Tx.write(/*Obj=*/0, Tag);
  });
  assert(Committed && "unbounded atomically only returns on commit");
  (void)Committed;
  return Prev;
}

void TmMutex::enter(ThreadId Tid) {
  assert(Tid < NumThreads && "thread id out of range");

  // Adopt the alternate identity [p_i, face_i] (Algorithm 1, lines 20-22).
  Faces[Tid].Face ^= 1;
  unsigned Face = Faces[Tid].Face;
  doneReg(Tid, Face).write(0);
  succReg(Tid, Face).write(0);

  // Enqueue behind the previous tail (lines 23-25).
  uint64_t Prev = fetchAndStoreX(Tid, encode(Tid, Face));
  if (Prev == kBottom)
    return; // No predecessor: straight into the critical section.

  ThreadId PredPid = decodePid(Prev);
  unsigned PredFace = decodeFace(Prev);
  assert(PredPid < NumThreads && "corrupt tag read from X");

  // Announce ourselves (lines 27-28): lock our pair register first, then
  // publish the successor pointer. The predecessor's Exit reads Succ only
  // after setting Done, so either it sees us and unlocks, or we see Done.
  lockReg(Tid, PredPid).write(kLocked);
  succReg(PredPid, PredFace).write(Tid + 1);

  // Wait (lines 29-32): if the predecessor has not finished, spin on our
  // *local* Lock register until its Exit unlocks it.
  if (doneReg(PredPid, PredFace).read() == 0) {
    uint32_t Spins = 0;
    while (lockReg(Tid, PredPid).read() == kLocked)
      spinPause(Spins);
  }
}

void TmMutex::exit(ThreadId Tid) {
  assert(Tid < NumThreads && "thread id out of range");
  unsigned Face = Faces[Tid].Face;

  // Lines 36-37: mark this face done, then release the successor that had
  // announced itself (if any). Done must be written before Succ is read —
  // that order is what makes the registration race benign.
  doneReg(Tid, Face).write(1);
  uint64_t S = succReg(Tid, Face).read();
  if (S != 0)
    lockReg(static_cast<ThreadId>(S - 1), Tid).write(kUnlocked);
}

std::unique_ptr<Mutex> ptm::createTmMutex(TmKind Inner, unsigned NumThreads) {
  auto M = createTm(Inner, /*NumObjects=*/1, NumThreads);
  if (!M)
    return nullptr;
  return std::make_unique<TmMutex>(std::move(M), NumThreads);
}
