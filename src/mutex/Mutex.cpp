//===-- mutex/Mutex.cpp - Mutual exclusion interface -----------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "mutex/Mutex.h"

using namespace ptm;

const char *ptm::mutexKindName(MutexKind Kind) {
  switch (Kind) {
  case MutexKind::MK_Tas:
    return "tas";
  case MutexKind::MK_Ttas:
    return "ttas";
  case MutexKind::MK_Ticket:
    return "ticket";
  case MutexKind::MK_Mcs:
    return "mcs";
  case MutexKind::MK_Clh:
    return "clh";
  }
  return "unknown";
}

const std::vector<MutexKind> &ptm::allMutexKinds() {
  static const std::vector<MutexKind> Kinds = {
      MutexKind::MK_Tas, MutexKind::MK_Ttas, MutexKind::MK_Ticket,
      MutexKind::MK_Mcs, MutexKind::MK_Clh};
  return Kinds;
}
