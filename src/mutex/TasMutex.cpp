//===-- mutex/TasMutex.cpp - Test-and-set spin locks ------------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "mutex/TasMutex.h"

#include "mutex/ClhMutex.h"
#include "mutex/McsMutex.h"
#include "mutex/TicketMutex.h"
#include "support/Spin.h"

#include <cassert>

using namespace ptm;

TasMutex::TasMutex(unsigned ThreadCount) : NumThreads(ThreadCount), Word(0) {
  Word.setHome(0);
}

void TasMutex::enter(ThreadId Tid) {
  assert(Tid < NumThreads && "thread id out of range");
  (void)Tid;
  uint32_t Spins = 0;
  for (;;) {
    uint64_t Expected = 0;
    if (Word.compareAndSwap(Expected, 1))
      return;
    spinPause(Spins);
  }
}

void TasMutex::exit(ThreadId Tid) {
  assert(Tid < NumThreads && "thread id out of range");
  (void)Tid;
  Word.write(0);
}

TtasMutex::TtasMutex(unsigned ThreadCount) : NumThreads(ThreadCount), Word(0) {
  Word.setHome(0);
}

void TtasMutex::enter(ThreadId Tid) {
  assert(Tid < NumThreads && "thread id out of range");
  (void)Tid;
  uint32_t Spins = 0;
  for (;;) {
    while (Word.read() != 0)
      spinPause(Spins);
    uint64_t Expected = 0;
    if (Word.compareAndSwap(Expected, 1))
      return;
  }
}

void TtasMutex::exit(ThreadId Tid) {
  assert(Tid < NumThreads && "thread id out of range");
  (void)Tid;
  Word.write(0);
}

std::unique_ptr<Mutex> ptm::createMutex(MutexKind Kind, unsigned NumThreads) {
  switch (Kind) {
  case MutexKind::MK_Tas:
    return std::make_unique<TasMutex>(NumThreads);
  case MutexKind::MK_Ttas:
    return std::make_unique<TtasMutex>(NumThreads);
  case MutexKind::MK_Ticket:
    return std::make_unique<TicketMutex>(NumThreads);
  case MutexKind::MK_Mcs:
    return std::make_unique<McsMutex>(NumThreads);
  case MutexKind::MK_Clh:
    return std::make_unique<ClhMutex>(NumThreads);
  }
  PTM_UNREACHABLE("unknown mutex kind");
}
