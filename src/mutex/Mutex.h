//===-- mutex/Mutex.h - Mutual exclusion interface --------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mutual-exclusion object of the paper's Section 5: Enter/Exit pairs
/// guarding a critical section. Implementations are built exclusively on
/// instrumented BaseObjects so the RMR experiments (E3) can charge every
/// shared access under the CC and DSM models.
///
/// The star of the module is TmMutex — the paper's Algorithm 1, which
/// turns any strictly serializable, strongly progressive TM into a
/// deadlock-free, finite-exit mutex with O(1) RMR overhead (Theorem 7).
/// The classical locks (TAS, TTAS, ticket, MCS, CLH) serve as baselines.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_MUTEX_MUTEX_H
#define PTM_MUTEX_MUTEX_H

#include "runtime/Ids.h"
#include "stm/Tm.h"

#include <memory>
#include <vector>

namespace ptm {

/// Abstract mutex. Threads are identified explicitly; each thread must
/// alternate enter() and exit() calls (well-formed passages).
class Mutex {
public:
  virtual ~Mutex() = default;

  virtual const char *name() const = 0;
  virtual unsigned maxThreads() const = 0;

  /// Blocks until the calling thread holds the critical section.
  virtual void enter(ThreadId Tid) = 0;

  /// Releases the critical section. Finite-exit: never blocks.
  virtual void exit(ThreadId Tid) = 0;
};

/// The classical baseline lock algorithms.
enum class MutexKind {
  MK_Tas,    ///< Test-and-set CAS spin; unbounded RMRs under contention.
  MK_Ttas,   ///< Test-and-test-and-set; local spin on cached copy.
  MK_Ticket, ///< Ticket lock (fetch-and-add); FIFO, O(n) CC invalidations.
  MK_Mcs,    ///< MCS queue lock; O(1) RMR in CC and DSM (uses swap!).
  MK_Clh,    ///< CLH queue lock; O(1) RMR in CC, remote spin in DSM.
};

/// Short stable name for a baseline kind.
const char *mutexKindName(MutexKind Kind);

/// All baseline kinds in presentation order.
const std::vector<MutexKind> &allMutexKinds();

/// Creates a baseline lock for up to \p NumThreads threads.
std::unique_ptr<Mutex> createMutex(MutexKind Kind, unsigned NumThreads);

/// Creates the paper's Algorithm 1 lock L(M) where M is a freshly built TM
/// of kind \p Inner restricted to a single t-object. Returns null if
/// \p Inner is not a known TmKind or \p NumThreads is zero.
std::unique_ptr<Mutex> createTmMutex(TmKind Inner, unsigned NumThreads);

} // namespace ptm

#endif // PTM_MUTEX_MUTEX_H
