//===-- mutex/TmMutex.h - The paper's Algorithm 1 ---------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mutual exclusion from a strongly progressive, strictly serializable TM —
/// a direct implementation of Algorithm 1 of the paper (itself based on
/// Lee's local-spin mutex). The TM is used on a *single* t-object X as an
/// atomic fetch-and-store of the queue tail: `func()` atomically reads X,
/// writes the caller's (process, face) tag and returns the previous value.
/// Strong progressiveness guarantees that some contender commits, so the
/// retry loop makes progress.
///
/// Each process alternates two *faces*; per (process, face) the algorithm
/// keeps a Done bit and a Succ pointer, and per ordered process pair a
/// Lock bit that the waiter spins on locally:
///
///  * Entry: flip face; clear Done and Succ; enqueue via func(); if there
///    is a predecessor, lock my pair register, announce myself as its
///    successor, and (unless it already finished) spin on my *own* Lock
///    register until the predecessor unlocks it.
///  * Exit: set Done; unlock the announced successor's register, if any.
///
/// The Done-before-read-Succ / Succ-before-read-Done handshake makes the
/// two races benign (see Lemma 5 of the paper); all registers are
/// sequentially consistent BaseObjects. Lock[i][*], Done[i][*] and
/// Succ[i][*] are homed at process i for the DSM model, so the spin in
/// Entry is local — the O(1) RMR overhead claimed by Theorem 7.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_MUTEX_TMMUTEX_H
#define PTM_MUTEX_TMMUTEX_H

#include "mutex/Mutex.h"
#include "runtime/BaseObject.h"
#include "support/Compiler.h"

#include <memory>
#include <string>
#include <vector>

namespace ptm {

class TmMutex final : public Mutex {
public:
  /// Builds L(M) for up to \p ThreadCount processes. \p Inner must manage
  /// at least one t-object; only t-object 0 is used (the paper's X).
  TmMutex(std::unique_ptr<Tm> Inner, unsigned ThreadCount);

  const char *name() const override { return Name.c_str(); }
  unsigned maxThreads() const override { return NumThreads; }

  void enter(ThreadId Tid) override;
  void exit(ThreadId Tid) override;

  /// The inner TM (for stats inspection by the experiments).
  Tm &innerTm() { return *M; }

private:
  /// Encoding of X's value: 0 is the initial "no predecessor" bottom;
  /// otherwise ((pid << 1) | face) + 1.
  static constexpr uint64_t kBottom = 0;
  static uint64_t encode(ThreadId Tid, unsigned Face) {
    return ((static_cast<uint64_t>(Tid) << 1) | Face) + 1;
  }
  static ThreadId decodePid(uint64_t Enc) {
    return static_cast<ThreadId>((Enc - 1) >> 1);
  }
  static unsigned decodeFace(uint64_t Enc) {
    return static_cast<unsigned>((Enc - 1) & 1);
  }

  static constexpr uint64_t kUnlocked = 0;
  static constexpr uint64_t kLocked = 1;

  /// The paper's func(): atomically swap our tag into X, returning the
  /// previous tag. Retries until the inner TM commits; strong
  /// progressiveness of M bounds each round by some contender's commit.
  uint64_t fetchAndStoreX(ThreadId Tid, uint64_t Tag);

  BaseObject &doneReg(ThreadId Tid, unsigned Face) {
    return Done[Tid * 2 + Face];
  }
  BaseObject &succReg(ThreadId Tid, unsigned Face) {
    return Succ[Tid * 2 + Face];
  }
  BaseObject &lockReg(ThreadId Waiter, ThreadId Holder) {
    return Lock[Waiter * NumThreads + Holder];
  }

  std::unique_ptr<Tm> M;
  unsigned NumThreads;
  std::string Name;

  std::vector<BaseObject> Done; ///< [thread][face], homed at thread.
  std::vector<BaseObject> Succ; ///< [thread][face], homed at thread.
  std::vector<BaseObject> Lock; ///< [waiter][holder], homed at waiter.

  /// Each thread's current face; strictly thread-local state.
  struct alignas(PTM_CACHELINE_SIZE) LocalFace {
    unsigned Face = 0;
  };
  std::vector<LocalFace> Faces;
};

} // namespace ptm

#endif // PTM_MUTEX_TMMUTEX_H
