//===-- mutex/TicketMutex.cpp - Ticket lock --------------------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "mutex/TicketMutex.h"

#include "support/Spin.h"

#include <cassert>

using namespace ptm;

TicketMutex::TicketMutex(unsigned ThreadCount)
    : NumThreads(ThreadCount), NextTicket(0), Serving(0) {
  NextTicket.setHome(0);
  Serving.setHome(0);
}

void TicketMutex::enter(ThreadId Tid) {
  assert(Tid < NumThreads && "thread id out of range");
  (void)Tid;
  uint64_t My = NextTicket.fetchAdd(1);
  uint32_t Spins = 0;
  while (Serving.read() != My)
    spinPause(Spins);
}

void TicketMutex::exit(ThreadId Tid) {
  assert(Tid < NumThreads && "thread id out of range");
  (void)Tid;
  // Only the holder advances Serving, so read-then-write is race-free.
  Serving.write(Serving.read() + 1);
}
