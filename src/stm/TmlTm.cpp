//===-- stm/TmlTm.cpp - Transactional Mutex Lock ---------------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "stm/TmlTm.h"

#include "support/Spin.h"

using namespace ptm;

TmlTm::TmlTm(unsigned ObjectCount, unsigned ThreadCount,
             const TmConfig &Config)
    : TmBase(ObjectCount, ThreadCount, Config),
      Clock(createVersionClock(Config.Clock, ThreadCount)),
      Descs(ThreadCount) {}

uint64_t TmlTm::waitEven() {
  uint32_t Spins = 0;
  for (;;) {
    uint64_t Time = Clock->seqRead();
    if ((Time & 1) == 0)
      return Time;
    spinPause(Spins);
  }
}

void TmlTm::txBegin(ThreadId Tid) {
  slotBegin(Tid);
  Desc &D = Descs[Tid];
  D.Writer = false;
  D.UndoLog.clear();
  D.Snapshot = waitEven();
}

bool TmlTm::txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) {
  traceEvent(obs::TraceEventKind::TE_Read, Obj);
  assert(txActive(Tid) && "t-read outside a transaction");
  assert(Obj < numObjects() && "object id out of range");
  Desc &D = Descs[Tid];

  Value = Values[Obj].read();
  // The writer reads its own in-place state; a reader is valid only while
  // the clock has not moved. Note the abort does NOT imply a data
  // conflict — this is exactly where TML fails progressiveness.
  if (D.Writer)
    return true;
  // The conflict is clock-wide, not on any one object (this is exactly
  // where TML fails progressiveness), so no conflict object is reported.
  if (Clock->seqRead() != D.Snapshot)
    return slotAbort(Tid, AbortCause::AC_ReadValidation, kNoObject, workOf(D));
  return true;
}

bool TmlTm::txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) {
  traceEvent(obs::TraceEventKind::TE_Write, Obj);
  assert(txActive(Tid) && "t-write outside a transaction");
  assert(Obj < numObjects() && "object id out of range");
  Desc &D = Descs[Tid];

  if (!D.Writer) {
    // Become the writer: take the sequence lock at our snapshot. Failure
    // means someone else committed or is writing — abort (single-shot CAS
    // keeps us non-blocking).
    if (!Clock->seqTryAcquire(D.Snapshot))
      return slotAbort(Tid, AbortCause::AC_LockHeld, kNoObject, workOf(D));
    D.Writer = true;
  }
  D.UndoLog.push_back({Obj, Values[Obj].read()});
  Values[Obj].write(Value);
  return true;
}

bool TmlTm::txCommit(ThreadId Tid) {
  traceEvent(obs::TraceEventKind::TE_TryCommit);
  assert(txActive(Tid) && "tryCommit outside a transaction");
  Desc &D = Descs[Tid];
  // A writer publishes by bumping the clock to even; it can never fail
  // (it ran irrevocably under the lock). A reader validated every read
  // in-line, so it simply commits.
  if (D.Writer) {
    Clock->seqRelease(D.Snapshot + 2);
    D.Writer = false;
    D.UndoLog.clear();
  }
  return slotCommit(Tid);
}

void TmlTm::txAbort(ThreadId Tid) {
  assert(txActive(Tid) && "abort outside a transaction");
  Desc &D = Descs[Tid];
  if (D.Writer) {
    for (auto It = D.UndoLog.rbegin(), End = D.UndoLog.rend(); It != End;
         ++It)
      Values[It->Obj].write(It->Value);
    Clock->seqRelease(D.Snapshot + 2);
    D.Writer = false;
    D.UndoLog.clear();
  }
  slotAbort(Tid, AbortCause::AC_User);
}
