//===-- stm/Tl2Tm.cpp - Transactional Locking II ---------------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "stm/Tl2Tm.h"

using namespace ptm;

Tl2Tm::Tl2Tm(unsigned ObjectCount, unsigned ThreadCount,
             const TmConfig &Config)
    : TmBase(ObjectCount, ThreadCount, Config),
      Clock(createVersionClock(Config.Clock, ThreadCount)), Orecs(ObjectCount),
      Descs(ThreadCount) {}

void Tl2Tm::resetDesc(Desc &D) {
  D.Reads.clear();
  D.Writes.clear();
  D.Locked.clear();
}

void Tl2Tm::txBegin(ThreadId Tid) {
  slotBegin(Tid);
  Desc &D = Descs[Tid];
  resetDesc(D);
  D.Rv = Clock->read();
}

bool Tl2Tm::txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) {
  traceEvent(obs::TraceEventKind::TE_Read, Obj);
  assert(txActive(Tid) && "t-read outside a transaction");
  assert(Obj < numObjects() && "object id out of range");
  Desc &D = Descs[Tid];

  // Read-own-writes from the redo log.
  if (D.Writes.lookup(Obj, Value))
    return true;

  // Invisible read, validated in O(1) against Rv thanks to the global
  // clock: sample orec, value, orec; a consistent unlocked pair with
  // version <= Rv is a value that existed at time Rv.
  uint64_t Pre = Orecs[Obj].read();
  if (isLocked(Pre))
    return slotAbort(Tid, AbortCause::AC_LockHeld, Obj, workOf(D));
  if (versionOf(Pre) > D.Rv)
    return slotAbort(Tid, AbortCause::AC_ReadValidation, Obj, workOf(D));
  Value = Values[Obj].read();
  uint64_t Post = Orecs[Obj].read();
  if (Post != Pre)
    return slotAbort(Tid, AbortCause::AC_ReadValidation, Obj, workOf(D));

  // Dedup: a repeated read was just revalidated against Rv above, so the
  // read set (and with it commit-time validation) stays bounded by the
  // number of *distinct* objects read.
  if (!D.Reads.contains(Obj))
    D.Reads.insert(Obj, versionOf(Pre));
  return true;
}

bool Tl2Tm::txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) {
  traceEvent(obs::TraceEventKind::TE_Write, Obj);
  assert(txActive(Tid) && "t-write outside a transaction");
  assert(Obj < numObjects() && "object id out of range");
  Descs[Tid].Writes.insertOrUpdate(Obj, Value);
  return true;
}

bool Tl2Tm::txCommit(ThreadId Tid) {
  traceEvent(obs::TraceEventKind::TE_TryCommit);
  assert(txActive(Tid) && "tryCommit outside a transaction");
  Desc &D = Descs[Tid];

  // Read-only fast path: every read was already consistent at Rv.
  if (D.Writes.empty())
    return slotCommit(Tid);

  // Acquire write locks (single-shot CAS: contention means a conflict, so
  // aborting preserves progressiveness).
  for (const WriteEntry &W : D.Writes) {
    uint64_t Cur = Orecs[W.Obj].read();
    if (isLocked(Cur)) {
      releaseLocked(D);
      return slotAbort(Tid, AbortCause::AC_LockHeld, W.Obj, workOf(D));
    }
    if (!Orecs[W.Obj].compareAndSwap(Cur, makeLocked(Tid))) {
      releaseLocked(D);
      return slotAbort(Tid, AbortCause::AC_LockHeld, W.Obj, workOf(D));
    }
    D.Locked.push_back({W.Obj, Cur});
  }

  uint64_t Wv = Clock->commitStamp(Tid);

  // Validate the read set unless no one committed since Rv (the TL2
  // Wv == Rv + 1 shortcut). An entry is valid iff its orec still carries
  // the version recorded at first read — equivalent to the classic
  // "version <= Rv" check (any post-read change commits with wv > Rv)
  // and the same discipline the other orec TMs use. The shortcut is
  // sound only when commit stamps are unique: with duplicate stamps
  // (gv5/sharded) two committers can both draw Rv + 1 and would skip
  // validating a mutual anti-dependency, so those clocks always validate.
  if (!Clock->exactStamps() || Wv != D.Rv + 1) {
    for (const auto &E : D.Reads) {
      ObjectId Obj = E.Obj;
      uint64_t Cur = Orecs[Obj].read();
      if (Cur == makeVersion(E.Payload))
        continue;
      if (Cur == makeLocked(Tid)) {
        // Locked by us (object also in the write set): the version the
        // orec had when we locked it must be the one we read, or a
        // concurrent commit slipped between our read and our lock
        // acquisition.
        uint64_t PreLock = 0;
        bool Found = false;
        for (const WriteEntry &L : D.Locked) {
          if (L.Obj == Obj) {
            PreLock = L.Value;
            Found = true;
            break;
          }
        }
        assert(Found && "self-locked orec missing from the lock log");
        if (Found && versionOf(PreLock) == E.Payload)
          continue;
      }
      // Changed or locked by anyone else: a conflict either way.
      releaseLocked(D);
      return slotAbort(Tid, AbortCause::AC_CommitValidation, Obj, workOf(D));
    }
  }

  // Publish values, then release locks by installing the new version.
  for (const WriteEntry &W : D.Writes)
    Values[W.Obj].write(W.Value);
  for (const WriteEntry &L : D.Locked)
    Orecs[L.Obj].write(makeVersion(Wv));
  D.Locked.clear();
  return slotCommit(Tid);
}

void Tl2Tm::txAbort(ThreadId Tid) {
  assert(txActive(Tid) && "abort outside a transaction");
  // Lazy updates: nothing was published, just drop the logs.
  resetDesc(Descs[Tid]);
  slotAbort(Tid, AbortCause::AC_User);
}

void Tl2Tm::releaseLocked(Desc &D) {
  // Restore the pre-lock orec words (versions unchanged: nothing was
  // published).
  for (auto It = D.Locked.rbegin(), End = D.Locked.rend(); It != End; ++It)
    Orecs[It->Obj].write(It->Value);
  D.Locked.clear();
}
