//===-- stm/Factory.cpp - TM factory ---------------------------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "stm/GlobalLockTm.h"
#include "stm/MvTm.h"
#include "stm/NorecTm.h"
#include "stm/OrecEagerTm.h"
#include "stm/OrecIncrementalTm.h"
#include "stm/OrecTsTm.h"
#include "stm/Tl2Tm.h"
#include "stm/TlrwTm.h"
#include "stm/Tm.h"
#include "stm/TmlTm.h"

using namespace ptm;

std::unique_ptr<Tm> ptm::createTm(TmKind Kind, unsigned NumObjects,
                                  unsigned MaxThreads) {
  return createTm(Kind, NumObjects, MaxThreads, TmConfig());
}

std::unique_ptr<Tm> ptm::createTm(TmKind Kind, unsigned NumObjects,
                                  unsigned MaxThreads,
                                  const TmConfig &Config) {
  if (NumObjects == 0 || MaxThreads == 0)
    return nullptr;
  switch (Kind) {
  case TmKind::TK_GlobalLock:
    return std::make_unique<GlobalLockTm>(NumObjects, MaxThreads, Config);
  case TmKind::TK_Tl2:
    return std::make_unique<Tl2Tm>(NumObjects, MaxThreads, Config);
  case TmKind::TK_Norec:
    return std::make_unique<NorecTm>(NumObjects, MaxThreads, Config);
  case TmKind::TK_OrecIncremental:
    return std::make_unique<OrecIncrementalTm>(NumObjects, MaxThreads, Config);
  case TmKind::TK_OrecEager:
    return std::make_unique<OrecEagerTm>(NumObjects, MaxThreads, Config);
  case TmKind::TK_OrecTs:
    return std::make_unique<OrecTsTm>(NumObjects, MaxThreads, Config);
  case TmKind::TK_Tlrw:
    return std::make_unique<TlrwTm>(NumObjects, MaxThreads, Config);
  case TmKind::TK_Tml:
    return std::make_unique<TmlTm>(NumObjects, MaxThreads, Config);
  case TmKind::TK_Mv:
    return std::make_unique<MvTm>(NumObjects, MaxThreads, Config);
  }
  return nullptr;
}
