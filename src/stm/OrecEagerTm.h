//===-- stm/OrecEagerTm.h - Eager orec TM with incremental validation -----===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The *encounter-time* (eager) sibling of OrecIncrementalTm, in the
/// TinySTM write-through tradition: a t-write locks the orec immediately
/// and updates the value in place, logging the old value for undo.
/// Reads stay invisible and — having no global clock to consult — must
/// still validate the entire read set incrementally, so this TM also
/// satisfies every hypothesis of Theorem 3 and pays the Θ(m²) read-only
/// cost. Together with OrecIncrementalTm it gives the eager-vs-lazy
/// ablation *within* the paper's TM class (experiment E6/E9).
///
/// Trade-off exhibited: eager acquisition detects write-write conflicts
/// at encounter time (no doomed work after the conflict) but holds locks
/// longer, so readers abort more; lazy acquisition speculates longer and
/// may discover the conflict only at commit.
///
/// Orec layout shared with the other orec TMs: bit 0 = locked; unlocked
/// word = version, locked word = (owner + 1).
///
//===----------------------------------------------------------------------===//

#ifndef PTM_STM_ORECEAGERTM_H
#define PTM_STM_ORECEAGERTM_H

#include "stm/TmBase.h"
#include "stm/TxSets.h"

namespace ptm {

class OrecEagerTm final : public TmBase {
public:
  OrecEagerTm(unsigned ObjectCount, unsigned ThreadCount,
              const TmConfig &Config = TmConfig());

  TmKind kind() const override { return TmKind::TK_OrecEager; }

  void txBegin(ThreadId Tid) override;
  bool txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) override;
  bool txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) override;
  bool txCommit(ThreadId Tid) override;
  void txAbort(ThreadId Tid) override;

private:
  /// Payload of an acquired (written) object: pre-lock orec word + undo
  /// value.
  struct OwnInfo {
    uint64_t PreLockWord;
    uint64_t UndoValue;
  };

  struct alignas(PTM_CACHELINE_SIZE) Desc {
    /// Dedup'd read set; payload is the version observed at first read.
    /// As in OrecIncrementalTm, dedup is local-only: every t-read still
    /// performs the full incremental validation (the Theorem 3 cost).
    ReadSet<uint64_t> Reads;
    /// Acquired objects in acquisition order (rollback walks it in
    /// reverse); the index makes the per-access ownership probe O(1).
    ReadSet<OwnInfo> Owned;
  };

  static bool isLocked(uint64_t OrecWord) { return OrecWord & 1; }
  static uint64_t versionOf(uint64_t OrecWord) { return OrecWord >> 1; }
  static uint64_t makeVersion(uint64_t Version) { return Version << 1; }
  static uint64_t makeLocked(ThreadId Tid) {
    return (static_cast<uint64_t>(Tid + 1) << 1) | 1;
  }

  bool validateReadSet(const Desc &D, ThreadId Tid) const;

  /// Undoes in-place writes and releases all locks (abort path).
  void rollbackAndRelease(Desc &D);

  /// The attempt's footprint (the CM's "work done" currency).
  static unsigned workOf(const Desc &D) {
    return static_cast<unsigned>(D.Reads.size() + D.Owned.size());
  }

  std::vector<BaseObject> Orecs;
  std::vector<Desc> Descs;
};

} // namespace ptm

#endif // PTM_STM_ORECEAGERTM_H
