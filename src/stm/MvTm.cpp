//===-- stm/MvTm.cpp - Multi-version TM with abort-free reads --------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "stm/MvTm.h"
#include "support/Spin.h"

using namespace ptm;

MvTm::MvTm(unsigned ObjectCount, unsigned ThreadCount, const TmConfig &Config,
           VersionClock *SharedClock)
    : TmBase(ObjectCount, ThreadCount, Config),
      OwnClock(SharedClock ? nullptr
                           : createVersionClock(Config.Clock, ThreadCount)),
      Clock(SharedClock ? *SharedClock : *OwnClock), ActiveReaders(0),
      Orecs(ObjectCount),
      SlotVersions(static_cast<size_t>(ObjectCount) * kHistoryDepth),
      SlotValues(static_cast<size_t>(ObjectCount) * kHistoryDepth),
      ReaderTs(ThreadCount), Descs(ThreadCount) {
  // Slot 0 of every object holds the initial value at version 0; the rest
  // of the ring starts empty. Snapshots always have Ts >= 0, so every
  // object is readable from the first snapshot on.
  for (ObjectId Obj = 0; Obj < ObjectCount; ++Obj)
    for (unsigned S = 1; S < kHistoryDepth; ++S)
      slotVersion(Obj, S).poke(kNoVersion);
  for (BaseObject &Ts : ReaderTs)
    Ts.poke(kNoVersion);
}

void MvTm::init(ObjectId Obj, uint64_t Value) {
  TmBase::init(Obj, Value);
  // Re-seed the ring: the init value becomes the one retained version,
  // stamped with the current clock so it shadows anything committed
  // before this (quiescent) reset.
  slotVersion(Obj, 0).poke(Clock.peek());
  slotValue(Obj, 0).poke(Value);
  for (unsigned S = 1; S < kHistoryDepth; ++S)
    slotVersion(Obj, S).poke(kNoVersion);
}

void MvTm::resetDesc(Desc &D) {
  D.Reads.clear();
  D.Writes.clear();
  D.Locked.clear();
  D.InstallSlots.clear();
  D.ReadOnly = false;
}

void MvTm::txBegin(ThreadId Tid) {
  slotBegin(Tid);
  Desc &D = Descs[Tid];
  resetDesc(D);
  D.Rv = Clock.read();
}

void MvTm::txBeginReadOnly(ThreadId Tid) {
  slotBegin(Tid, /*ReadOnly=*/true);
  Desc &D = Descs[Tid];
  resetDesc(D);
  D.ReadOnly = true;
  ActiveReaders.fetchAdd(1);
  // Publish-verify: announce the snapshot timestamp, then confirm the
  // clock has not moved. On the iteration that exits the loop, no commit
  // acquired a write version between our clock read and our announcement,
  // so every updater whose eviction scan could miss this reader has
  // Wv > Ts and installs only versions this snapshot never needs.
  uint64_t C;
  do {
    C = Clock.read();
    ReaderTs[Tid].write(C);
  } while (Clock.read() != C);
  D.SnapshotTs = C;
  traceEvent(obs::TraceEventKind::TE_SnapshotPin, C);
}

void MvTm::snapshotEnter(ThreadId Tid) {
  (void)Tid;
  ActiveReaders.fetchAdd(1);
}

void MvTm::snapshotPublish(ThreadId Tid, uint64_t Ts) {
  ReaderTs[Tid].write(Ts);
}

void MvTm::snapshotRelease(ThreadId Tid) { ReaderTs[Tid].write(kNoVersion); }

void MvTm::txBeginReadOnlyAt(ThreadId Tid, uint64_t Ts) {
  assert(ReaderTs[Tid].peek() == Ts &&
         "begin-at requires the timestamp to be published on this thread");
  slotBegin(Tid, /*ReadOnly=*/true);
  Desc &D = Descs[Tid];
  resetDesc(D);
  D.ReadOnly = true;
  D.SnapshotTs = Ts;
  traceEvent(obs::TraceEventKind::TE_SnapshotPin, Ts);
}

bool MvTm::txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) {
  traceEvent(obs::TraceEventKind::TE_Read, Obj);
  assert(txActive(Tid) && "t-read outside a transaction");
  assert(Obj < numObjects() && "object id out of range");
  Desc &D = Descs[Tid];

  if (D.ReadOnly) {
    // Snapshot read: newest ring version <= Ts. Never aborts. If the
    // object's orec is locked, an update commit is mid-install on it;
    // wait it out rather than risk scanning a half-written slot pair.
    uint32_t Spin = 0;
    for (;;) {
      uint64_t OrecWord = Orecs[Obj].read();
      if (isLocked(OrecWord)) {
        spinPause(Spin);
        continue;
      }
      // Fast path — the common no-conflict case costs exactly TL2's
      // three accesses: when the object's newest committed version
      // already fits the snapshot, the current-value cell IS the
      // newest-<=-Ts version, so the orec/value/orec sandwich suffices
      // and the ring is never touched.
      if (versionOf(OrecWord) <= D.SnapshotTs) {
        uint64_t Val = Values[Obj].read();
        if (Orecs[Obj].read() == OrecWord) {
          Value = Val;
          return true;
        }
        spinPause(Spin);
        continue;
      }
      // Once the orec is seen unlocked, the newest-<=-Ts version of this
      // object is immutable: any commit with Wv <= Ts locked the orec
      // before our begin (else its clock bump would have failed our
      // publish-verify), and eviction never removes a version a
      // published snapshot still needs. The per-slot version sandwich
      // skips slots a *later* commit (Wv > Ts) is overwriting.
      bool Found = false;
      uint64_t BestVer = 0, BestVal = 0;
      for (unsigned S = 0; S < kHistoryDepth; ++S) {
        uint64_t V1 = slotVersion(Obj, S).read();
        if (V1 == kNoVersion || V1 > D.SnapshotTs)
          continue;
        uint64_t Val = slotValue(Obj, S).read();
        if (slotVersion(Obj, S).read() != V1)
          continue; // Slot overwritten mid-scan; its new version > Ts.
        if (!Found || V1 > BestVer) {
          BestVer = V1;
          BestVal = Val;
          Found = true;
        }
      }
      if (Found) {
        Value = BestVal;
        return true;
      }
      spinPause(Spin); // Install raced the scan; the candidate reappears.
    }
  }

  // Update mode: TL2's invisible read, validated in O(1) against Rv.
  if (D.Writes.lookup(Obj, Value))
    return true;
  uint64_t Pre = Orecs[Obj].read();
  if (isLocked(Pre))
    return slotAbort(Tid, AbortCause::AC_LockHeld, Obj, workOf(D));
  if (versionOf(Pre) > D.Rv)
    return slotAbort(Tid, AbortCause::AC_ReadValidation, Obj, workOf(D));
  Value = Values[Obj].read();
  uint64_t Post = Orecs[Obj].read();
  if (Post != Pre)
    return slotAbort(Tid, AbortCause::AC_ReadValidation, Obj, workOf(D));
  if (!D.Reads.contains(Obj))
    D.Reads.insert(Obj, versionOf(Pre));
  return true;
}

bool MvTm::txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) {
  traceEvent(obs::TraceEventKind::TE_Write, Obj);
  assert(txActive(Tid) && "t-write outside a transaction");
  assert(Obj < numObjects() && "object id out of range");
  Desc &D = Descs[Tid];
  if (D.ReadOnly) {
    // Contract violation: the caller promised a read-only body. Fail the
    // transaction rather than silently lose the write.
    ReaderTs[Tid].write(kNoVersion);
    ActiveReaders.fetchAdd(uint64_t(-1));
    resetDesc(D);
    return slotAbort(Tid, AbortCause::AC_User);
  }
  D.Writes.insertOrUpdate(Obj, Value);
  return true;
}

uint64_t MvTm::minActiveReaderTs() {
  uint64_t Min = kNoVersion;
  for (BaseObject &Ts : ReaderTs) {
    uint64_t T = Ts.read();
    if (T < Min)
      Min = T;
  }
  return Min;
}

bool MvTm::txCommit(ThreadId Tid) {
  traceEvent(obs::TraceEventKind::TE_TryCommit);
  assert(txActive(Tid) && "tryCommit outside a transaction");
  Desc &D = Descs[Tid];

  if (D.ReadOnly) {
    // Every read came from one immutable snapshot: nothing to validate.
    ReaderTs[Tid].write(kNoVersion);
    ActiveReaders.fetchAdd(uint64_t(-1));
    return slotCommit(Tid);
  }

  if (D.Writes.empty())
    return slotCommit(Tid);

  // Optimistic history gate, BEFORE any lock: if some written object's
  // ring is full and a published snapshot still needs its oldest version,
  // this commit is doomed to AC_HistoryFull — abort now, while the orecs
  // are untouched and the clock unbumped. Without this, every doomed
  // attempt (common while a descheduled reader's timestamp goes stale)
  // locks the hottest orecs and stalls the very readers it is waiting
  // for. Advisory only: the ring can change before the locks are taken,
  // so the authoritative re-check under lock below still decides.
  for (const WriteEntry &W : D.Writes) {
    uint64_t OldestVer = kNoVersion, SecondVer = kNoVersion;
    bool Free = false;
    for (unsigned S = 0; S < kHistoryDepth; ++S) {
      uint64_t V = slotVersion(W.Obj, S).read();
      if (V == kNoVersion) {
        Free = true;
        break;
      }
      if (V < OldestVer) {
        SecondVer = OldestVer;
        OldestVer = V;
      } else if (V < SecondVer) {
        SecondVer = V;
      }
    }
    if (!Free && ActiveReaders.read() != 0 &&
        minActiveReaderTs() < SecondVer)
      return slotAbort(Tid, AbortCause::AC_HistoryFull, W.Obj, workOf(D));
  }

  // TL2 commit: acquire write locks with single-shot CASes.
  for (const WriteEntry &W : D.Writes) {
    uint64_t Cur = Orecs[W.Obj].read();
    if (isLocked(Cur)) {
      releaseLocked(D);
      return slotAbort(Tid, AbortCause::AC_LockHeld, W.Obj, workOf(D));
    }
    if (!Orecs[W.Obj].compareAndSwap(Cur, makeLocked(Tid))) {
      releaseLocked(D);
      return slotAbort(Tid, AbortCause::AC_LockHeld, W.Obj, workOf(D));
    }
    D.Locked.push_back({W.Obj, Cur});
  }

  uint64_t Wv = Clock.commitStamp(Tid);

  // Validate the read set unless no one committed since Rv. As in TL2,
  // the Rv + 1 shortcut needs unique stamps, so non-exact clocks
  // (gv5/sharded) always validate.
  if (!Clock.exactStamps() || Wv != D.Rv + 1) {
    for (const auto &E : D.Reads) {
      ObjectId Obj = E.Obj;
      uint64_t Cur = Orecs[Obj].read();
      if (Cur == makeVersion(E.Payload))
        continue;
      if (Cur == makeLocked(Tid)) {
        uint64_t PreLock = 0;
        bool FoundLock = false;
        for (const WriteEntry &L : D.Locked) {
          if (L.Obj == Obj) {
            PreLock = L.Value;
            FoundLock = true;
            break;
          }
        }
        assert(FoundLock && "self-locked orec missing from the lock log");
        if (FoundLock && versionOf(PreLock) == E.Payload)
          continue;
      }
      releaseLocked(D);
      return slotAbort(Tid, AbortCause::AC_CommitValidation, Obj, workOf(D));
    }
  }

  // Choose a ring slot per written object and prove every eviction safe.
  // The ReaderTs scan happens after the clock bump: a reader missed by
  // the scan announced itself after it, so its publish-verify forced
  // Ts >= Wv and it can only ever need versions this commit does not
  // evict. An eviction is safe iff no active snapshot is older than the
  // ring's second-oldest version; otherwise the oldest version is still
  // reachable by some reader and the commit must abort (AC_HistoryFull).
  // Solo transactions see no active readers, so they never abort here.
  uint64_t MinTs = 0;
  bool MinTsKnown = false;
  D.InstallSlots.clear();
  for (const WriteEntry &W : D.Writes) {
    unsigned Chosen = kHistoryDepth;
    uint64_t OldestVer = kNoVersion, SecondVer = kNoVersion;
    unsigned OldestSlot = 0;
    for (unsigned S = 0; S < kHistoryDepth; ++S) {
      uint64_t V = slotVersion(W.Obj, S).read();
      if (V == kNoVersion) {
        Chosen = S; // Free slot: no eviction needed.
        break;
      }
      if (V < OldestVer) {
        SecondVer = OldestVer;
        OldestVer = V;
        OldestSlot = S;
      } else if (V < SecondVer) {
        SecondVer = V;
      }
    }
    if (Chosen == kHistoryDepth) {
      if (!MinTsKnown) {
        // ActiveReaders == 0 here (after the clock bump) means any reader
        // not yet counted will publish Ts >= Wv — the O(threads) ReaderTs
        // scan can be skipped outright on the writer-only fast path.
        MinTs = ActiveReaders.read() == 0 ? kNoVersion : minActiveReaderTs();
        MinTsKnown = true;
      }
      if (MinTs < SecondVer) {
        releaseLocked(D);
        return slotAbort(Tid, AbortCause::AC_HistoryFull, W.Obj, workOf(D));
      }
      Chosen = OldestSlot;
    }
    D.InstallSlots.push_back(Chosen);
  }

  // Point of no return: install ring versions (version cell first, then
  // value — the reader's sandwich depends on this order), publish the
  // current-value cells, then release the orecs with the new version.
  size_t Idx = 0;
  for (const WriteEntry &W : D.Writes) {
    unsigned S = D.InstallSlots[Idx++];
    slotVersion(W.Obj, S).write(Wv);
    slotValue(W.Obj, S).write(W.Value);
    Values[W.Obj].write(W.Value);
  }
  for (const WriteEntry &L : D.Locked)
    Orecs[L.Obj].write(makeVersion(Wv));
  D.Locked.clear();
  return slotCommit(Tid);
}

void MvTm::txAbort(ThreadId Tid) {
  assert(txActive(Tid) && "abort outside a transaction");
  Desc &D = Descs[Tid];
  if (D.ReadOnly) {
    ReaderTs[Tid].write(kNoVersion);
    ActiveReaders.fetchAdd(uint64_t(-1));
  }
  resetDesc(D);
  slotAbort(Tid, AbortCause::AC_User);
}

void MvTm::releaseLocked(Desc &D) {
  for (auto It = D.Locked.rbegin(), End = D.Locked.rend(); It != End; ++It)
    Orecs[It->Obj].write(It->Value);
  D.Locked.clear();
}
