//===-- stm/Atomically.h - Transaction retry combinator ---------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The application-facing way to run a transaction: `atomically` wraps a
/// body lambda in begin / commit with automatic retry-on-abort and
/// exponential backoff. Because the library is exception-free, the body
/// receives a TxRef whose operations become no-ops once the transaction
/// has aborted ("zombie" suppression): opaque TMs never expose
/// inconsistent values, and a body that keeps running after failure simply
/// performs dead local computation until it returns.
///
/// \code
///   bool Ok = atomically(M, Tid, [&](TxRef &Tx) {
///     uint64_t A = Tx.readOr(0, 0);
///     Tx.write(1, A + 1);
///   });
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef PTM_STM_ATOMICALLY_H
#define PTM_STM_ATOMICALLY_H

#include "stm/ContentionManager.h"
#include "stm/Tm.h"
#include "support/Spin.h"

#include <cassert>
#include <cstdint>
#include <type_traits>

namespace ptm {

/// Handle to the transaction currently executing a body passed to
/// atomically(). All operations are forwarded to the underlying TM until
/// the first abort, after which they become no-ops and failed() is true.
class TxRef {
public:
  TxRef(Tm &Memory, ThreadId Self) : M(Memory), Tid(Self) {}

  /// t-read; returns false (leaving \p Value untouched) once failed.
  bool read(ObjectId Obj, uint64_t &Value) {
    if (Failed)
      return false;
    if (!M.txRead(Tid, Obj, Value)) {
      Failed = true;
      return false;
    }
    return true;
  }

  /// t-read convenience: the value, or \p Default after failure.
  uint64_t readOr(ObjectId Obj, uint64_t Default) {
    uint64_t Value = Default;
    read(Obj, Value);
    return Value;
  }

  /// t-write; returns false once failed.
  bool write(ObjectId Obj, uint64_t Value) {
    if (Failed)
      return false;
    if (!M.txWrite(Tid, Obj, Value)) {
      Failed = true;
      return false;
    }
    return true;
  }

  /// Requests a voluntary abort; atomically() will *not* retry (a user
  /// abort is a decision, not contention).
  void userAbort() {
    if (Failed)
      return;
    M.txAbort(Tid);
    Failed = true;
    UserAborted = true;
  }

  /// True once any operation aborted (or userAbort was called).
  bool failed() const { return Failed; }

  /// True if the failure was a voluntary userAbort().
  bool userAborted() const { return UserAborted; }

  ThreadId threadId() const { return Tid; }
  Tm &tm() { return M; }

private:
  Tm &M;
  ThreadId Tid;
  bool Failed = false;
  bool UserAborted = false;
};

/// Tag policy (the default): consult the TM's own ContentionManager
/// between attempts — the policy selected by TmConfig.Cm and owned by the
/// TM instance — falling back to plain capped-exponential Backoff on TMs
/// without one (wrappers, fakes). Passing an explicit policy object with
/// spin() instead (the pre-CM template path) still works and bypasses the
/// CM entirely; that shim is what keeps counting-fake policy tests and
/// special-purpose callers compiling unchanged.
struct TmCm {};

namespace detail {

/// Between-attempts wait + commit notification, shared by atomically and
/// atomicallyReadOnly. The CM is consulted *between* attempts only — in
/// particular never after the final failed attempt, where spinning would
/// only delay the caller's failure handling.
template <typename BackoffPolicy>
class RetryPolicy {
public:
  RetryPolicy(Tm &Memory, BackoffPolicy Policy) : M(Memory), BO(Policy) {}

  void onAborted(ThreadId Tid) {
    if constexpr (std::is_same_v<BackoffPolicy, TmCm>) {
      if (ContentionManager *Cm = M.contentionManager()) {
        Cm->onAbort(Tid, M.lastAbortCause(Tid), M.lastAbortWork(Tid),
                    M.lastConflictObject(Tid));
        return;
      }
      Fallback.spin();
    } else {
      (void)Tid;
      BO.spin();
    }
  }

  void onCommitted(ThreadId Tid) {
    if constexpr (std::is_same_v<BackoffPolicy, TmCm>) {
      if (ContentionManager *Cm = M.contentionManager())
        Cm->onCommit(Tid);
    } else {
      (void)Tid;
    }
  }

private:
  Tm &M;
  BackoffPolicy BO;
  Backoff Fallback;
};

} // namespace detail

/// Runs \p Body inside a transaction on thread \p Tid, retrying on
/// contention aborts. Returns true iff a commit succeeded. \p MaxAttempts
/// of 0 means "retry until committed or voluntarily aborted".
///
/// The default BackoffPolicy (the TmCm tag) routes between-attempt waits
/// through the TM's ContentionManager; an explicit policy object with
/// spin() overrides it per call (see TmCm).
template <typename BodyFn, typename BackoffPolicy = TmCm>
bool atomically(Tm &M, ThreadId Tid, BodyFn &&Body, unsigned MaxAttempts = 0,
                BackoffPolicy BO = BackoffPolicy()) {
  detail::RetryPolicy<BackoffPolicy> Retry(M, BO);
  for (unsigned Attempt = 1;; ++Attempt) {
    M.txBegin(Tid);
    TxRef Tx(M, Tid);
    Body(Tx);
    if (Tx.userAborted())
      return false;
    if (!Tx.failed() && M.txCommit(Tid)) {
      Retry.onCommitted(Tid);
      return true;
    }
    // Aborted by contention: give up if the attempt budget is spent,
    // otherwise back off and retry.
    if (MaxAttempts != 0 && Attempt >= MaxAttempts)
      return false;
    Retry.onAborted(Tid);
  }
}

/// Like atomically(), but declares the body read-only (it must perform no
/// Tx.write): the transaction is started with txBeginReadOnly, so TMs
/// with an abort-free snapshot path (Tm::hasAbortFreeReadOnly) serve it
/// from a consistent snapshot that can neither abort nor block writers.
/// On every other TM this is exactly atomically() — same retry loop, same
/// contention handling — so callers can use it unconditionally for
/// read-only bodies.
template <typename BodyFn, typename BackoffPolicy = TmCm>
bool atomicallyReadOnly(Tm &M, ThreadId Tid, BodyFn &&Body,
                        unsigned MaxAttempts = 0,
                        BackoffPolicy BO = BackoffPolicy()) {
  detail::RetryPolicy<BackoffPolicy> Retry(M, BO);
  for (unsigned Attempt = 1;; ++Attempt) {
    M.txBeginReadOnly(Tid);
    TxRef Tx(M, Tid);
    Body(Tx);
    if (Tx.userAborted())
      return false;
    if (!Tx.failed() && M.txCommit(Tid)) {
      Retry.onCommitted(Tid);
      return true;
    }
    if (MaxAttempts != 0 && Attempt >= MaxAttempts)
      return false;
    Retry.onAborted(Tid);
  }
}

} // namespace ptm

#endif // PTM_STM_ATOMICALLY_H
