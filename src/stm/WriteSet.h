//===-- stm/WriteSet.h - Deferred-update write set --------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Redo-log write set shared by the lazy-update TMs (TL2, NOrec,
/// OrecIncremental). Lookup is a linear scan: write sets in the targeted
/// workloads are small, scans are purely local computation (not steps in
/// the paper's model), and linearity keeps the step accounting honest.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_STM_WRITESET_H
#define PTM_STM_WRITESET_H

#include "runtime/Ids.h"

#include <cstdint>
#include <vector>

namespace ptm {

/// One buffered t-write.
struct WriteEntry {
  ObjectId Obj;
  uint64_t Value;
};

/// Ordered redo log with last-writer-wins lookup.
class WriteSet {
public:
  /// Returns true and fills \p Value if \p Obj has a buffered write.
  bool lookup(ObjectId Obj, uint64_t &Value) const {
    for (auto It = Entries.rbegin(), End = Entries.rend(); It != End; ++It) {
      if (It->Obj == Obj) {
        Value = It->Value;
        return true;
      }
    }
    return false;
  }

  /// Buffers a write, overwriting any earlier write to the same object.
  void insertOrUpdate(ObjectId Obj, uint64_t Value) {
    for (auto &Entry : Entries) {
      if (Entry.Obj == Obj) {
        Entry.Value = Value;
        return;
      }
    }
    Entries.push_back({Obj, Value});
  }

  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }
  void clear() { Entries.clear(); }

  std::vector<WriteEntry>::const_iterator begin() const {
    return Entries.begin();
  }
  std::vector<WriteEntry>::const_iterator end() const { return Entries.end(); }

private:
  std::vector<WriteEntry> Entries;
};

} // namespace ptm

#endif // PTM_STM_WRITESET_H
