//===-- stm/NorecTm.h - NOrec: no ownership records -------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// NOrec (Dalessandro, Spear, Scott, PPoPP 2010 — the paper's reference
/// [6]): a single global sequence lock plus *value-based* validation. Reads
/// are invisible; a transaction revalidates its read set (by re-reading
/// values) only when the global clock moved.
///
/// Role in the reproduction: like TL2, NOrec trades weak DAP for cheap
/// validation — disjoint transactions contend on the sequence lock, so the
/// Theorem 3 quadratic bound does not apply; uncontended read-only
/// transactions run in Θ(m) steps. NOrec is also the second point in the
/// validation-strategy ablation (E6): value-based instead of version-based.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_STM_NORECTM_H
#define PTM_STM_NORECTM_H

#include "stm/TmBase.h"
#include "stm/TxSets.h"

namespace ptm {

class NorecTm final : public TmBase {
public:
  NorecTm(unsigned ObjectCount, unsigned ThreadCount,
          const TmConfig &Config = TmConfig());

  TmKind kind() const override { return TmKind::TK_Norec; }

  void txBegin(ThreadId Tid) override;
  bool txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) override;
  bool txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) override;
  bool txCommit(ThreadId Tid) override;
  void txAbort(ThreadId Tid) override;

private:
  struct alignas(PTM_CACHELINE_SIZE) Desc {
    uint64_t Snapshot = 0;
    /// Dedup'd read set; the payload is the value observed (and kept
    /// current by validate()), for value-based revalidation.
    ReadSet<uint64_t> Reads;
    WriteSet Writes;
  };

  static constexpr uint64_t kValidateFailed = ~uint64_t{0};

  /// Spins until the sequence lock is even (no committer in its write-back
  /// phase) and returns that even value.
  uint64_t waitEven();

  /// Re-reads every read-set entry; returns a fresh even snapshot at which
  /// all values still hold, or kValidateFailed.
  uint64_t validate(Desc &D);

  void resetDesc(Desc &D);

  /// The attempt's TxSets footprint (the CM's "work done" currency).
  static unsigned workOf(const Desc &D) {
    return static_cast<unsigned>(D.Reads.size() + D.Writes.size());
  }

  BaseObject Seq; ///< Global sequence lock (even = free); breaks weak DAP.
  std::vector<Desc> Descs;
};

} // namespace ptm

#endif // PTM_STM_NORECTM_H
