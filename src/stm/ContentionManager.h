//===-- stm/ContentionManager.h - Pluggable contention managers -*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-TM contention manager: what a thread does *between* attempts
/// after its transaction aborted. Promoted from the per-call BackoffPolicy
/// template parameter of atomically() (which remains as a shim) into a
/// pluggable object owned by the TM instance and selected via TmConfig,
/// so the policy is visible to the factory, to telemetry and to the
/// benchmark sweep.
///
/// Placement contract — the property the ExploreTest CM-independence
/// suite pins: a CM is consulted ONLY outside transactional code, in the
/// retry combinator's between-attempts slot (onAbort) or after a commit
/// (onCommit). Inside a transaction the TMs at most *notify* it of a
/// failed lock acquisition (noteLockBusy), which is pure bookkeeping on
/// plain (uninstrumented) atomics. CM state never touches a BaseObject,
/// so the TM's instrumented instruction stream — and with it the
/// schedule explorer's token-grant tree and every step-count experiment —
/// is bit-identical across CM choices. CMs shape *when* a retry happens
/// in wall-clock time, never *what* the transaction does.
///
/// Policies:
///
///  * backoff — capped exponential backoff per thread (the previous
///              default, same spin constants), reset on commit.
///  * polite  — linearly growing patience per consecutive failure, capped,
///              then yields; the classic "Polite" from the RSTM CM suite.
///  * karma   — priority accumulates with work done (TxSets entries of
///              the aborted attempts): the more a transaction has already
///              invested, the shorter it waits, so big transactions are
///              not starved by small fast ones. Karma resets on commit.
///  * hotspot — per-object conflict-heat counters (fed by noteLockBusy
///              and the abort's conflict object) scale the backoff: the
///              hotter the object that killed you, the longer you wait
///              before piling back onto it. Heat cools as waits consume
///              it.
///
/// Telemetry: every consultation is counted per abort cause (per-thread
/// single-writer cells, readable live) and the wait's wall-clock duration
/// is recorded into an obs::LatencyHistogram — the "backoff time" series
/// surfaced next to the TM's abort counters.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_STM_CONTENTIONMANAGER_H
#define PTM_STM_CONTENTIONMANAGER_H

#include "obs/Metrics.h"
#include "runtime/Ids.h"
#include "stm/Tm.h"
#include "support/Compiler.h"

#include <memory>
#include <vector>

namespace ptm {

/// Live counters of one ContentionManager (epoch-snapshot consistency,
/// like TmStats): how often each policy was consulted, split by the abort
/// cause that triggered the consultation, plus the wait-time histogram.
struct CmTelemetry {
  uint64_t Consults[kNumAbortCauses] = {}; ///< onAbort calls by cause.
  uint64_t LockBusyNotes = 0;              ///< noteLockBusy calls.
  obs::HistogramSnapshot WaitNs;           ///< Wall-clock wait per consult.

  uint64_t totalConsults() const {
    uint64_t Sum = 0;
    for (uint64_t C : Consults)
      Sum += C;
    return Sum;
  }
};

/// Abstract contention manager. See the file comment for the placement
/// contract; all mutable state is plain std::atomic (never BaseObject).
class ContentionManager {
public:
  virtual ~ContentionManager() = default;

  /// The policy implementing this instance.
  virtual CmKind kind() const = 0;

  /// Short stable name (same as cmKindName(kind())).
  const char *name() const { return cmKindName(kind()); }

  /// Consulted by the retry combinator after an aborted attempt, between
  /// attempts only (never after the final failed attempt). Performs the
  /// policy's wait. \p Work is the aborted attempt's TxSets footprint
  /// (read-set + write-set entries); \p Conflict the object that caused
  /// the abort, or kNoObject when no single object did.
  void onAbort(ThreadId Tid, AbortCause Cause, unsigned Work,
               ObjectId Conflict) {
    uint64_t T0 = obs::monotonicNowNs();
    wait(Tid, Cause, Work, Conflict);
    WaitHist.record(obs::monotonicNowNs() - T0);
    if (Cause != AbortCause::AC_None)
      Threads[Tid].Consults[static_cast<unsigned>(Cause)].inc();
  }

  /// Consulted after a committed attempt: resets the thread's penalty
  /// state (backoff window, patience, karma).
  void onCommit(ThreadId Tid) { settle(Tid); }

  /// Bookkeeping-only notification from an eager TM whose encounter-time
  /// lock acquisition failed on \p Obj. MUST NOT wait (the TM aborts and
  /// the waiting happens in onAbort) and must not access instrumented
  /// state — see the placement contract.
  void noteLockBusy(ThreadId Tid, ObjectId Obj) {
    Threads[Tid].LockBusy.inc();
    noteBusy(Tid, Obj);
  }

  /// Live telemetry snapshot (safe concurrently with running threads).
  CmTelemetry telemetry() const {
    CmTelemetry T;
    for (const ThreadCells &C : Threads) {
      for (unsigned I = 0; I < kNumAbortCauses; ++I)
        T.Consults[I] += C.Consults[I].read();
      T.LockBusyNotes += C.LockBusy.read();
    }
    T.WaitNs = WaitHist.snapshot();
    return T;
  }

  unsigned maxThreads() const { return static_cast<unsigned>(Threads.size()); }

protected:
  explicit ContentionManager(unsigned MaxThreads) : Threads(MaxThreads) {}

  /// Policy hook: perform the wait for thread \p Tid.
  virtual void wait(ThreadId Tid, AbortCause Cause, unsigned Work,
                    ObjectId Conflict) = 0;

  /// Policy hook: a commit happened on \p Tid; reset penalty state.
  virtual void settle(ThreadId Tid) = 0;

  /// Policy hook behind noteLockBusy (default: nothing beyond counting).
  virtual void noteBusy(ThreadId, ObjectId) {}

private:
  struct alignas(PTM_CACHELINE_SIZE) ThreadCells {
    obs::OwnedCounter Consults[kNumAbortCauses];
    obs::OwnedCounter LockBusy;
  };

  std::vector<ThreadCells> Threads;
  obs::LatencyHistogram WaitHist;
};

/// Creates a contention manager of the given kind for up to \p MaxThreads
/// threads over \p NumObjects t-objects (the hot-spot policy sizes its
/// heat table from the object count). Returns null if \p Kind is unknown
/// or \p MaxThreads is zero.
std::unique_ptr<ContentionManager>
createContentionManager(CmKind Kind, unsigned MaxThreads, unsigned NumObjects);

/// Appends \p T to \p Snap under the obs metric naming scheme, keyed by
/// the policy name: counters `cm.<policy>.consults.<cause>` (the
/// aborts-by-cause × policy series; zero-count causes are skipped) and
/// `cm.<policy>.lock_busy_notes`, plus histogram `cm.<policy>.wait_ns`
/// (the backoff-time series). Callers that aggregate several TMs of the
/// same policy (the sharded KV store) merge their CmTelemetry first and
/// append once.
void appendCmTelemetry(const CmTelemetry &T, const char *Policy,
                       obs::MetricsSnapshot &Snap);

} // namespace ptm

#endif // PTM_STM_CONTENTIONMANAGER_H
