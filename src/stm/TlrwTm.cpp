//===-- stm/TlrwTm.cpp - TLRW-style visible-read TM -----------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "stm/TlrwTm.h"

#include "support/Compiler.h"

using namespace ptm;

TlrwTm::TlrwTm(unsigned ObjectCount, unsigned ThreadCount,
               const TmConfig &Config)
    : TmBase(ObjectCount, ThreadCount, Config), Locks(ObjectCount),
      Descs(ThreadCount) {}

void TlrwTm::erase(std::vector<ObjectId> &Set, ObjectId Obj) {
  for (size_t I = 0, E = Set.size(); I != E; ++I) {
    if (Set[I] == Obj) {
      Set[I] = Set.back();
      Set.pop_back();
      return;
    }
  }
  PTM_UNREACHABLE("erasing an object not in the lock set");
}

void TlrwTm::txBegin(ThreadId Tid) {
  slotBegin(Tid);
  Desc &D = Descs[Tid];
  D.ReadLocks.clear();
  D.WriteLocks.clear();
  D.UndoLog.clear();
}

bool TlrwTm::acquireRead(ThreadId Tid, ObjectId Obj) {
  (void)Tid;
  for (unsigned Attempt = 0; Attempt < kAcquireAttempts; ++Attempt) {
    uint64_t Cur = Locks[Obj].read();
    if (writerOf(Cur) != 0) {
      cpuRelax();
      continue;
    }
    if (Locks[Obj].compareAndSwap(Cur, Cur + 1))
      return true;
  }
  return false;
}

bool TlrwTm::acquireWrite(ThreadId Tid, ObjectId Obj, bool Upgrade) {
  for (unsigned Attempt = 0; Attempt < kAcquireAttempts; ++Attempt) {
    uint64_t Cur = Locks[Obj].read();
    if (writerOf(Cur) != 0) {
      cpuRelax();
      continue;
    }
    // An upgrade succeeds only while we are the sole reader; a fresh write
    // acquisition only when there are no readers at all.
    uint32_t ExpectReaders = Upgrade ? 1 : 0;
    if (readersOf(Cur) != ExpectReaders) {
      cpuRelax();
      continue;
    }
    if (Locks[Obj].compareAndSwap(Cur, makeWriter(Tid)))
      return true;
  }
  return false;
}

bool TlrwTm::txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) {
  traceEvent(obs::TraceEventKind::TE_Read, Obj);
  assert(txActive(Tid) && "t-read outside a transaction");
  assert(Obj < numObjects() && "object id out of range");
  Desc &D = Descs[Tid];

  // Already locked by us (either mode): read in place — updates are eager.
  if (contains(D.WriteLocks, Obj) || contains(D.ReadLocks, Obj)) {
    Value = Values[Obj].read();
    return true;
  }

  // Visible read: acquiring the read lock applies a nontrivial primitive.
  // O(1) steps, no validation ever — the cost is visibility, which is how
  // this TM escapes the Theorem 3 quadratic bound.
  if (!acquireRead(Tid, Obj)) {
    noteLockBusy(Tid, Obj);
    rollback(D);
    releaseAll(D);
    return slotAbort(Tid, AbortCause::AC_LockHeld, Obj, workOf(D));
  }
  D.ReadLocks.push_back(Obj);
  Value = Values[Obj].read();
  return true;
}

bool TlrwTm::txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) {
  traceEvent(obs::TraceEventKind::TE_Write, Obj);
  assert(txActive(Tid) && "t-write outside a transaction");
  assert(Obj < numObjects() && "object id out of range");
  Desc &D = Descs[Tid];

  if (!contains(D.WriteLocks, Obj)) {
    bool Upgrade = contains(D.ReadLocks, Obj);
    if (!acquireWrite(Tid, Obj, Upgrade)) {
      noteLockBusy(Tid, Obj);
      rollback(D);
      releaseAll(D);
      return slotAbort(Tid, AbortCause::AC_LockHeld, Obj, workOf(D));
    }
    if (Upgrade)
      erase(D.ReadLocks, Obj);
    D.WriteLocks.push_back(Obj);
  }

  D.UndoLog.push_back({Obj, Values[Obj].read()});
  Values[Obj].write(Value);
  return true;
}

bool TlrwTm::txCommit(ThreadId Tid) {
  traceEvent(obs::TraceEventKind::TE_TryCommit);
  assert(txActive(Tid) && "tryCommit outside a transaction");
  // Two-phase locking: everything read or written is still locked, so the
  // transaction is trivially serializable at this point. Just release.
  releaseAll(Descs[Tid]);
  return slotCommit(Tid);
}

void TlrwTm::txAbort(ThreadId Tid) {
  assert(txActive(Tid) && "abort outside a transaction");
  Desc &D = Descs[Tid];
  rollback(D);
  releaseAll(D);
  slotAbort(Tid, AbortCause::AC_User);
}

void TlrwTm::rollback(Desc &D) {
  for (auto It = D.UndoLog.rbegin(), End = D.UndoLog.rend(); It != End; ++It)
    Values[It->Obj].write(It->Value);
  D.UndoLog.clear();
}

void TlrwTm::releaseAll(Desc &D) {
  // Write locks: clear the word (we were the only owner and eager values
  // are already in place — or rolled back on the abort path).
  for (ObjectId Obj : D.WriteLocks)
    Locks[Obj].write(0);
  // Read locks: decrement the reader count. No writer can have slipped in
  // while we held a read lock, so fetch-add is safe.
  for (ObjectId Obj : D.ReadLocks)
    Locks[Obj].fetchAdd(~uint64_t{0});
  D.WriteLocks.clear();
  D.ReadLocks.clear();
  D.UndoLog.clear();
}
