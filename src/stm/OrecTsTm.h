//===-- stm/OrecTsTm.h - Orec TM with timestamp extension -------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lazy-acquisition orec TM in the TinySTM/LSA tradition (Felber, Fetzer
/// & Riegel, PPoPP 2008; Riegel et al.'s lazy snapshot algorithm):
/// per-object versioned write-locks plus a global version clock — like TL2
/// — but with **timestamp extension**: a t-read that observes a version
/// newer than the snapshot revalidates the read set against the current
/// clock and, on success, *extends* the snapshot instead of aborting.
///
/// Role in the reproduction: a second, stronger point on the global-clock
/// escape hatch from Theorem 3. Like TL2 it is opaque, progressive and
/// invisible-read but **not** weak DAP (every commit meets every snapshot
/// at the clock), so t-reads validate in O(1) amortized steps and a
/// read-only m-read transaction runs in Θ(m). Unlike TL2 it does not pay
/// the clock's *abort* tax: TL2 kills a reader whenever any commit
/// post-dates its snapshot, even with no data overlap; orec-ts aborts only
/// when a revalidation actually fails, i.e. when an object it read was
/// overwritten — a genuine conflict. The price is the occasional O(|read
/// set|) extension pass, each one chargeable to a concurrent commit.
///
/// Orec layout shared with the other orec TMs: bit 0 = locked; unlocked
/// word = version, locked word = (owner + 1).
///
//===----------------------------------------------------------------------===//

#ifndef PTM_STM_ORECTSTM_H
#define PTM_STM_ORECTSTM_H

#include "stm/TmBase.h"
#include "stm/TxSets.h"
#include "stm/VersionClock.h"

namespace ptm {

class OrecTsTm final : public TmBase {
public:
  OrecTsTm(unsigned ObjectCount, unsigned ThreadCount,
           const TmConfig &Config = TmConfig());

  TmKind kind() const override { return TmKind::TK_OrecTs; }
  const VersionClock *versionClock() const override { return Clock.get(); }

  void txBegin(ThreadId Tid) override;
  bool txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) override;
  bool txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) override;
  bool txCommit(ThreadId Tid) override;
  void txAbort(ThreadId Tid) override;

private:
  struct alignas(PTM_CACHELINE_SIZE) Desc {
    uint64_t Rv = 0;         ///< Snapshot timestamp (extensible).
    ReadSet<uint64_t> Reads; ///< Dedup'd; payload = version at first read.
    WriteSet Writes;         ///< Redo log.
    std::vector<WriteEntry> Locked; ///< (Obj, pre-lock orec word) pairs.
  };

  static bool isLocked(uint64_t OrecWord) { return OrecWord & 1; }
  static uint64_t versionOf(uint64_t OrecWord) { return OrecWord >> 1; }
  static uint64_t makeVersion(uint64_t Version) { return Version << 1; }
  static uint64_t makeLocked(ThreadId Tid) {
    return (static_cast<uint64_t>(Tid + 1) << 1) | 1;
  }

  /// The timestamp extension: reads the clock, then checks that every
  /// read-set entry still carries the version recorded at its first read
  /// (i.e. nothing we read has been overwritten). On success the snapshot
  /// is valid up to the clock value read, which becomes the new Rv.
  bool extendSnapshot(Desc &D);

  void releaseLocked(Desc &D);
  void resetDesc(Desc &D);

  /// The attempt's TxSets footprint (the CM's "work done" currency).
  static unsigned workOf(const Desc &D) {
    return static_cast<unsigned>(D.Reads.size() + D.Writes.size());
  }

  /// Global version clock (breaks weak DAP); pluggable via
  /// TmConfig.Clock — see stm/VersionClock.h for the trade-offs.
  std::unique_ptr<VersionClock> Clock;
  std::vector<BaseObject> Orecs;
  std::vector<Desc> Descs;
};

} // namespace ptm

#endif // PTM_STM_ORECTSTM_H
