//===-- stm/TVar.h - Typed transactional variables ---------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin typed veneer over the word-sized t-objects: TVar<T> binds a type
/// to an ObjectId of some TM instance and bit-casts through the 64-bit
/// cell. T must be trivially copyable and at most 8 bytes (ints, floats,
/// small enums, indices — the usual STM payload).
///
//===----------------------------------------------------------------------===//

#ifndef PTM_STM_TVAR_H
#define PTM_STM_TVAR_H

#include "stm/Atomically.h"
#include "stm/Tm.h"

#include <cstring>
#include <type_traits>

namespace ptm {

template <typename T> class TVar {
  static_assert(std::is_trivially_copyable_v<T>,
                "TVar payload must be trivially copyable");
  static_assert(sizeof(T) <= sizeof(uint64_t),
                "TVar payload must fit in a 64-bit cell");

public:
  TVar(Tm &Memory, ObjectId Object) : M(&Memory), Obj(Object) {}

  /// Transactional read; returns \p Default once the transaction failed.
  T readOr(TxRef &Tx, T Default) const {
    uint64_t Word;
    if (!Tx.read(Obj, Word))
      return Default;
    return decode(Word);
  }

  /// Transactional read into \p Out; false once failed.
  bool read(TxRef &Tx, T &Out) const {
    uint64_t Word;
    if (!Tx.read(Obj, Word))
      return false;
    Out = decode(Word);
    return true;
  }

  /// Transactional write; false once failed.
  bool write(TxRef &Tx, T Value) const { return Tx.write(Obj, encode(Value)); }

  /// Non-transactional readback (quiescence only).
  T sample() const { return decode(M->sample(Obj)); }

  /// Non-transactional initialization (quiescence only).
  void init(T Value) const { M->init(Obj, encode(Value)); }

  ObjectId objectId() const { return Obj; }

private:
  static uint64_t encode(T Value) {
    uint64_t Word = 0;
    std::memcpy(&Word, &Value, sizeof(T));
    return Word;
  }

  static T decode(uint64_t Word) {
    T Value;
    std::memcpy(&Value, &Word, sizeof(T));
    return Value;
  }

  Tm *M;
  ObjectId Obj;
};

} // namespace ptm

#endif // PTM_STM_TVAR_H
