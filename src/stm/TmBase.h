//===-- stm/TmBase.h - Shared TM implementation plumbing -------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Boilerplate shared by all five TM implementations: the value-cell
/// array (one BaseObject per t-object), per-thread descriptor lifecycle
/// flags, abort-cause bookkeeping and commit/abort statistics.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_STM_TMBASE_H
#define PTM_STM_TMBASE_H

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "runtime/BaseObject.h"
#include "runtime/Instrumentation.h"
#include "stm/ContentionManager.h"
#include "stm/Tm.h"
#include "support/Compiler.h"

#include <cassert>
#include <memory>
#include <utility>
#include <vector>

namespace ptm {

/// Implements the parts of Tm common to every algorithm. Subclasses add
/// their metadata (orecs, clocks, lock words) and the four transactional
/// operations.
class TmBase : public Tm {
public:
  unsigned numObjects() const final { return NumObjects; }
  unsigned maxThreads() const final { return MaxThreads; }

  bool txActive(ThreadId Tid) const final {
    assert(Tid < MaxThreads && "thread id out of range");
    return Slots[Tid].Active;
  }

  AbortCause lastAbortCause(ThreadId Tid) const final {
    assert(Tid < MaxThreads && "thread id out of range");
    return Slots[Tid].Cause;
  }

  ObjectId lastConflictObject(ThreadId Tid) const final {
    assert(Tid < MaxThreads && "thread id out of range");
    return Slots[Tid].Conflict;
  }

  unsigned lastAbortWork(ThreadId Tid) const final {
    assert(Tid < MaxThreads && "thread id out of range");
    return Slots[Tid].Work;
  }

  TmConfig config() const final { return Cfg; }

  ContentionManager *contentionManager() final { return Cm.get(); }

  /// Replaces the instance's contention manager (test seam: counting
  /// fakes, policy swaps). Quiescent-only. Null detaches the CM, making
  /// the retry combinator fall back to plain backoff.
  void setContentionManager(std::unique_ptr<ContentionManager> NewCm) {
    Cm = std::move(NewCm);
  }

  uint64_t sample(ObjectId Obj) const final {
    assert(Obj < NumObjects && "object id out of range");
    return Values[Obj].peek();
  }

  /// Not final: TMs with per-object metadata derived from the value (the
  /// multi-version ring) override this to seed it, calling back here for
  /// the value cell itself.
  void init(ObjectId Obj, uint64_t Value) override {
    assert(Obj < NumObjects && "object id out of range");
    Values[Obj].poke(Value);
  }

  TmStats stats() const final;
  TmStats threadStats(ThreadId Tid) const final;
  TmStats statsSnapshot() const final;
  void resetStats() final;

protected:
  TmBase(unsigned ObjectCount, unsigned ThreadCount,
         const TmConfig &Config = TmConfig());

  /// Per-thread lifecycle and counters, padded against false sharing.
  /// The counters are single-writer cells (obs::OwnedCounter): only the
  /// owning thread increments, so statsSnapshot() may sum them live while
  /// transactions run. Active/Cause/Conflict/Work stay plain — they are
  /// owner-read (txActive / lastAbortCause / the CM feed) and never
  /// consulted by the live path.
  struct alignas(PTM_CACHELINE_SIZE) Slot {
    bool Active = false;
    AbortCause Cause = AbortCause::AC_None;
    ObjectId Conflict = kNoObject; ///< Object behind the last abort.
    unsigned Work = 0;             ///< TxSets entries at the last abort.
    obs::OwnedCounter Commits;
    obs::OwnedCounter Aborts[kNumAbortCauses];
  };

  /// Appends \p Kind to the calling thread's trace ring when tracing is
  /// armed (an installed Instrumentation whose trace() is non-null); one
  /// thread-local load plus a branch when disarmed. The single routing
  /// point the TMs call from their txRead/txWrite/txCommit heads.
  static void traceEvent(obs::TraceEventKind Kind, uint64_t Arg = 0) {
    if (Instrumentation *I = Instrumentation::current())
      if (obs::TraceRing *R = I->trace())
        R->append(Kind, Arg);
  }

  /// Marks the slot live; asserts well-formedness (no nesting). \p ReadOnly
  /// tags the begin event for TMs on a dedicated snapshot path.
  void slotBegin(ThreadId Tid, bool ReadOnly = false) {
    assert(Tid < MaxThreads && "thread id out of range");
    assert(!Slots[Tid].Active && "previous transaction still active");
    Slots[Tid].Active = true;
    Slots[Tid].Cause = AbortCause::AC_None;
    traceEvent(ReadOnly ? obs::TraceEventKind::TE_TxBeginRo
                        : obs::TraceEventKind::TE_TxBegin);
  }

  /// Records a commit; returns true for tail-calling from txCommit.
  bool slotCommit(ThreadId Tid) {
    assert(Slots[Tid].Active && "commit without active transaction");
    Slots[Tid].Active = false;
    Slots[Tid].Cause = AbortCause::AC_None;
    Slots[Tid].Conflict = kNoObject;
    Slots[Tid].Work = 0;
    Slots[Tid].Commits.inc();
    traceEvent(obs::TraceEventKind::TE_Commit);
    return true;
  }

  /// Records an abort with \p Cause; returns false for tail-calling.
  /// \p Conflict is the object whose conflict killed the attempt (or
  /// kNoObject) and \p Work the attempt's TxSets footprint — both flow to
  /// the contention manager via Tm::lastConflictObject/lastAbortWork.
  bool slotAbort(ThreadId Tid, AbortCause Cause, ObjectId Conflict = kNoObject,
                 unsigned Work = 0) {
    assert(Slots[Tid].Active && "abort without active transaction");
    assert(Cause != AbortCause::AC_None && "abort needs a cause");
    Slots[Tid].Active = false;
    Slots[Tid].Cause = Cause;
    Slots[Tid].Conflict = Conflict;
    Slots[Tid].Work = Work;
    Slots[Tid].Aborts[static_cast<unsigned>(Cause)].inc();
    traceEvent(obs::TraceEventKind::TE_Abort, static_cast<uint64_t>(Cause));
    return false;
  }

  /// Notifies the contention manager of a failed encounter-time lock
  /// acquisition — bookkeeping only (the CM never waits here; see the
  /// placement contract in stm/ContentionManager.h). Eager TMs call this
  /// right before the resulting slotAbort.
  void noteLockBusy(ThreadId Tid, ObjectId Obj) {
    if (Cm)
      Cm->noteLockBusy(Tid, Obj);
  }

  /// The t-object value cells. Subclass metadata lives in parallel arrays.
  std::vector<BaseObject> Values;

  std::vector<Slot> Slots;

private:
  unsigned NumObjects;
  unsigned MaxThreads;
  TmConfig Cfg;
  std::unique_ptr<ContentionManager> Cm;
};

} // namespace ptm

#endif // PTM_STM_TMBASE_H
