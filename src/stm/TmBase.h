//===-- stm/TmBase.h - Shared TM implementation plumbing -------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Boilerplate shared by all five TM implementations: the value-cell
/// array (one BaseObject per t-object), per-thread descriptor lifecycle
/// flags, abort-cause bookkeeping and commit/abort statistics.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_STM_TMBASE_H
#define PTM_STM_TMBASE_H

#include "runtime/BaseObject.h"
#include "stm/Tm.h"
#include "support/Compiler.h"

#include <cassert>
#include <vector>

namespace ptm {

/// Implements the parts of Tm common to every algorithm. Subclasses add
/// their metadata (orecs, clocks, lock words) and the four transactional
/// operations.
class TmBase : public Tm {
public:
  unsigned numObjects() const final { return NumObjects; }
  unsigned maxThreads() const final { return MaxThreads; }

  bool txActive(ThreadId Tid) const final {
    assert(Tid < MaxThreads && "thread id out of range");
    return Slots[Tid].Active;
  }

  AbortCause lastAbortCause(ThreadId Tid) const final {
    assert(Tid < MaxThreads && "thread id out of range");
    return Slots[Tid].Cause;
  }

  uint64_t sample(ObjectId Obj) const final {
    assert(Obj < NumObjects && "object id out of range");
    return Values[Obj].peek();
  }

  /// Not final: TMs with per-object metadata derived from the value (the
  /// multi-version ring) override this to seed it, calling back here for
  /// the value cell itself.
  void init(ObjectId Obj, uint64_t Value) override {
    assert(Obj < NumObjects && "object id out of range");
    Values[Obj].poke(Value);
  }

  TmStats stats() const final;
  TmStats threadStats(ThreadId Tid) const final;
  void resetStats() final;

protected:
  TmBase(unsigned ObjectCount, unsigned ThreadCount);

  /// Per-thread lifecycle and counters, padded against false sharing.
  struct alignas(PTM_CACHELINE_SIZE) Slot {
    bool Active = false;
    AbortCause Cause = AbortCause::AC_None;
    uint64_t Commits = 0;
    uint64_t Aborts[kNumAbortCauses] = {};
  };

  /// Marks the slot live; asserts well-formedness (no nesting).
  void slotBegin(ThreadId Tid) {
    assert(Tid < MaxThreads && "thread id out of range");
    assert(!Slots[Tid].Active && "previous transaction still active");
    Slots[Tid].Active = true;
    Slots[Tid].Cause = AbortCause::AC_None;
  }

  /// Records a commit; returns true for tail-calling from txCommit.
  bool slotCommit(ThreadId Tid) {
    assert(Slots[Tid].Active && "commit without active transaction");
    Slots[Tid].Active = false;
    Slots[Tid].Cause = AbortCause::AC_None;
    ++Slots[Tid].Commits;
    return true;
  }

  /// Records an abort with \p Cause; returns false for tail-calling.
  bool slotAbort(ThreadId Tid, AbortCause Cause) {
    assert(Slots[Tid].Active && "abort without active transaction");
    assert(Cause != AbortCause::AC_None && "abort needs a cause");
    Slots[Tid].Active = false;
    Slots[Tid].Cause = Cause;
    ++Slots[Tid].Aborts[static_cast<unsigned>(Cause)];
    return false;
  }

  /// The t-object value cells. Subclass metadata lives in parallel arrays.
  std::vector<BaseObject> Values;

  std::vector<Slot> Slots;

private:
  unsigned NumObjects;
  unsigned MaxThreads;
};

} // namespace ptm

#endif // PTM_STM_TMBASE_H
