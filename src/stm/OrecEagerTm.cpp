//===-- stm/OrecEagerTm.cpp - Eager orec TM with incremental validation ---===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "stm/OrecEagerTm.h"

using namespace ptm;

OrecEagerTm::OrecEagerTm(unsigned ObjectCount, unsigned ThreadCount,
                         const TmConfig &Config)
    : TmBase(ObjectCount, ThreadCount, Config), Orecs(ObjectCount),
      Descs(ThreadCount) {}

void OrecEagerTm::txBegin(ThreadId Tid) {
  slotBegin(Tid);
  Desc &D = Descs[Tid];
  D.Reads.clear();
  D.Owned.clear();
}

bool OrecEagerTm::validateReadSet(const Desc &D, ThreadId Tid) const {
  // A read-set entry is valid if its version is unchanged, or if we later
  // locked the object ourselves and its pre-lock version matches what we
  // read.
  for (const auto &E : D.Reads) {
    uint64_t Cur = Orecs[E.Obj].read();
    if (Cur == makeVersion(E.Payload))
      continue;
    if (Cur == makeLocked(Tid)) {
      const auto *Own = D.Owned.find(E.Obj);
      if (Own && versionOf(Own->Payload.PreLockWord) == E.Payload)
        continue;
    }
    return false;
  }
  return true;
}

bool OrecEagerTm::txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) {
  traceEvent(obs::TraceEventKind::TE_Read, Obj);
  assert(txActive(Tid) && "t-read outside a transaction");
  assert(Obj < numObjects() && "object id out of range");
  Desc &D = Descs[Tid];

  // Own writes are in place: read directly.
  if (D.Owned.contains(Obj)) {
    Value = Values[Obj].read();
    return true;
  }

  // Invisible consistent read, then incremental validation — same
  // Theorem 3 cost structure as the lazy variant.
  uint64_t Pre = Orecs[Obj].read();
  if (isLocked(Pre)) {
    noteLockBusy(Tid, Obj);
    rollbackAndRelease(D);
    return slotAbort(Tid, AbortCause::AC_LockHeld, Obj, workOf(D));
  }
  Value = Values[Obj].read();
  uint64_t Post = Orecs[Obj].read();
  if (Post != Pre) {
    rollbackAndRelease(D);
    return slotAbort(Tid, AbortCause::AC_ReadValidation, Obj, workOf(D));
  }
  if (!validateReadSet(D, Tid)) {
    rollbackAndRelease(D);
    return slotAbort(Tid, AbortCause::AC_ReadValidation, Obj, workOf(D));
  }

  if (!D.Reads.contains(Obj))
    D.Reads.insert(Obj, versionOf(Pre));
  return true;
}

bool OrecEagerTm::txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) {
  traceEvent(obs::TraceEventKind::TE_Write, Obj);
  assert(txActive(Tid) && "t-write outside a transaction");
  assert(Obj < numObjects() && "object id out of range");
  Desc &D = Descs[Tid];

  // Encounter-time acquisition: lock on first write, update in place.
  if (!D.Owned.contains(Obj)) {
    uint64_t Cur = Orecs[Obj].read();
    if (isLocked(Cur)) {
      noteLockBusy(Tid, Obj);
      rollbackAndRelease(D);
      return slotAbort(Tid, AbortCause::AC_LockHeld, Obj, workOf(D));
    }
    if (!Orecs[Obj].compareAndSwap(Cur, makeLocked(Tid))) {
      noteLockBusy(Tid, Obj);
      rollbackAndRelease(D);
      return slotAbort(Tid, AbortCause::AC_LockHeld, Obj, workOf(D));
    }
    // If we read this object earlier, the acquisition must not have
    // raced with a concurrent commit to it.
    const auto *Read = D.Reads.find(Obj);
    if (Read && Read->Payload != versionOf(Cur)) {
      D.Owned.insert(Obj, {Cur, Values[Obj].read()});
      rollbackAndRelease(D);
      return slotAbort(Tid, AbortCause::AC_ReadValidation, Obj, workOf(D));
    }
    D.Owned.insert(Obj, {Cur, Values[Obj].read()});
  }
  Values[Obj].write(Value);
  return true;
}

bool OrecEagerTm::txCommit(ThreadId Tid) {
  traceEvent(obs::TraceEventKind::TE_TryCommit);
  assert(txActive(Tid) && "tryCommit outside a transaction");
  Desc &D = Descs[Tid];

  // Values are already in place; revalidate the read set one final time,
  // then release with bumped versions.
  if (D.Owned.empty()) {
    // Read-only: the last read's incremental validation was the
    // serialization point.
    return slotCommit(Tid);
  }
  if (!validateReadSet(D, Tid)) {
    rollbackAndRelease(D);
    return slotAbort(Tid, AbortCause::AC_CommitValidation, kNoObject,
                     workOf(D));
  }
  for (const auto &E : D.Owned)
    Orecs[E.Obj].write(makeVersion(versionOf(E.Payload.PreLockWord) + 1));
  D.Owned.clear();
  return slotCommit(Tid);
}

void OrecEagerTm::txAbort(ThreadId Tid) {
  assert(txActive(Tid) && "abort outside a transaction");
  rollbackAndRelease(Descs[Tid]);
  slotAbort(Tid, AbortCause::AC_User);
}

void OrecEagerTm::rollbackAndRelease(Desc &D) {
  // Undo in reverse acquisition order, restoring the pre-lock orec word
  // (no version bump: the object never changed committed state).
  for (size_t I = D.Owned.size(); I != 0; --I) {
    const auto &E = D.Owned[I - 1];
    Values[E.Obj].write(E.Payload.UndoValue);
    Orecs[E.Obj].write(E.Payload.PreLockWord);
  }
  D.Owned.clear();
}
