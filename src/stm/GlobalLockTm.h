//===-- stm/GlobalLockTm.h - Single-global-lock TM --------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simplest correct TM: one global test-and-set lock serializes all
/// transactions. Transactions never abort involuntarily, so the TM is
/// trivially progressive and strongly progressive; it is opaque (fully
/// serialized) but maximally non-disjoint-access-parallel — the baseline
/// "other end" of the paper's property space.
///
/// Writes are performed in place under the lock with an undo log so that
/// voluntary aborts roll back.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_STM_GLOBALLOCKTM_H
#define PTM_STM_GLOBALLOCKTM_H

#include "stm/TmBase.h"
#include "stm/TxSets.h"

namespace ptm {

class GlobalLockTm final : public TmBase {
public:
  GlobalLockTm(unsigned ObjectCount, unsigned ThreadCount,
               const TmConfig &Config = TmConfig());

  TmKind kind() const override { return TmKind::TK_GlobalLock; }

  void txBegin(ThreadId Tid) override;
  bool txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) override;
  bool txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) override;
  bool txCommit(ThreadId Tid) override;
  void txAbort(ThreadId Tid) override;

private:
  struct alignas(PTM_CACHELINE_SIZE) Desc {
    std::vector<WriteEntry> UndoLog;
  };

  void releaseLock() { Lock.write(0); }
  void rollback(Desc &D);

  BaseObject Lock; // 0 = free, 1 = held.
  std::vector<Desc> Descs;
};

} // namespace ptm

#endif // PTM_STM_GLOBALLOCKTM_H
