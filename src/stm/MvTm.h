//===-- stm/MvTm.h - Multi-version TM with abort-free reads -----*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A multi-version TM in the LSA/SI-STM tradition: every t-object keeps a
/// small bounded ring of (version, value) pairs next to its current value
/// cell. Update transactions run exactly TL2 (invisible reads validated
/// against a global version clock, commit-time locking, lazy redo log);
/// their commit additionally installs the new value as a fresh ring
/// version. Read-only transactions — declared via txBeginReadOnly — take a
/// snapshot timestamp at begin and serve every t-read from the newest ring
/// version <= that timestamp: they acquire no orecs, write no shared
/// memory after the one-word snapshot announcement, and **never abort**.
///
/// Role in the reproduction: the paper's companion line of work ("On
/// Partial Wait-Freedom in Transactional Memory", PAPERS.md) shows
/// read-only transactions can be made wait-free if one is willing to pay
/// space; this TM prices that trade. The cost is K values of space per
/// object plus one published word per reader: with *bounded* histories,
/// invisible readers and abort-free reads are jointly impossible, so the
/// reader publishes its snapshot timestamp (one word, written once) and
/// updaters consult the published minimum before evicting the oldest
/// version. An update that would evict a version still pinned by an
/// active snapshot aborts with AC_HistoryFull — the reader never aborts,
/// by design, and a transaction running solo can never hit that cause.
///
/// Orec layout matches TL2: bit 0 = locked; unlocked carries version<<1,
/// locked carries (owner+1)<<1|1. Ring slots are written only while the
/// object's orec is locked (version cell first, then value cell), so a
/// reader that observes an unlocked orec can scan the ring with a
/// version-sandwich per slot and skip any slot being overwritten.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_STM_MVTM_H
#define PTM_STM_MVTM_H

#include "stm/TmBase.h"
#include "stm/TxSets.h"
#include "stm/VersionClock.h"

namespace ptm {

class MvTm final : public TmBase {
public:
  /// Ring depth: versions retained per object (including the current one).
  static constexpr unsigned kHistoryDepth = 4;

  /// \p SharedClock, when non-null, replaces the instance's own version
  /// clock: several MvTm instances constructed over the same VersionClock
  /// stamp their commits from one shared clock, so a single timestamp
  /// names a consistent cut across all of them (the sharded store's
  /// global-snapshot reads build on exactly this). The caller keeps the
  /// clock alive for the TM's lifetime; when sharing, the shared clock's
  /// kind wins over TmConfig.Clock.
  MvTm(unsigned ObjectCount, unsigned ThreadCount,
       const TmConfig &Config = TmConfig(),
       VersionClock *SharedClock = nullptr);

  TmKind kind() const override { return TmKind::TK_Mv; }
  const VersionClock *versionClock() const override { return &Clock; }

  void txBegin(ThreadId Tid) override;
  void txBeginReadOnly(ThreadId Tid) override;
  bool hasAbortFreeReadOnly() const override { return true; }
  bool txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) override;
  bool txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) override;
  bool txCommit(ThreadId Tid) override;
  void txAbort(ThreadId Tid) override;

  /// Seeds the ring with the value as the sole (oldest) version, stamped
  /// with the current clock so it is the newest for all later snapshots.
  void init(ObjectId Obj, uint64_t Value) override;

  /// \name Externally-timed snapshots
  /// For callers that pin ONE snapshot timestamp across several MvTm
  /// instances sharing a clock (see the constructor). Protocol, per
  /// instance: snapshotEnter once, then snapshotPublish(Ts) — re-publish
  /// freely while (re)choosing Ts — and only after the caller has
  /// verified the shared clock did not move past Ts, run the reads via
  /// txBeginReadOnlyAt(Ts) + txCommit (which retires the published
  /// timestamp again). Entering before publishing is what lets an update
  /// commit that reads ActiveReaders == 0 skip the ReaderTs scan: a
  /// reader it missed will publish only after its own enter, and the
  /// caller's clock verification then forces that reader onto Ts >= Wv.
  /// @{

  /// Announces a forthcoming published snapshot (counts into
  /// ActiveReaders). Must precede the first snapshotPublish.
  void snapshotEnter(ThreadId Tid);

  /// Publishes \p Ts as this thread's pinned snapshot timestamp; from
  /// here on, no update commit evicts the newest version <= Ts of any
  /// object (it aborts AC_HistoryFull instead).
  void snapshotPublish(ThreadId Tid, uint64_t Ts);

  /// Retires this thread's published pin without beginning the
  /// transaction (the candidate timestamp failed verification and will
  /// be re-picked). A pinner MUST release before any unbounded wait: a
  /// stale pin blocks ring eviction, and the update commit spinning on
  /// AC_HistoryFull behind it may be the very event being waited out —
  /// holding the pin across the wait deadlocks both sides. Stays
  /// counted in ActiveReaders (the enter/commit bracket is unchanged).
  void snapshotRelease(ThreadId Tid);

  /// Begins a read-only transaction at the already-published \p Ts,
  /// skipping txBeginReadOnly's enter-publish-verify (the caller did it).
  void txBeginReadOnlyAt(ThreadId Tid, uint64_t Ts);
  /// @}

private:
  /// Sentinel version marking an unused ring slot; also the "no active
  /// snapshot" value of a ReaderTs cell (a real timestamp never reaches
  /// 2^64-1).
  static constexpr uint64_t kNoVersion = ~uint64_t{0};

  struct alignas(PTM_CACHELINE_SIZE) Desc {
    uint64_t Rv = 0;         ///< Read timestamp (update mode).
    uint64_t SnapshotTs = 0; ///< Snapshot timestamp (read-only mode).
    bool ReadOnly = false;
    ReadSet<uint64_t> Reads; ///< Update mode: version seen at first read.
    WriteSet Writes;         ///< Update mode: redo log.
    std::vector<WriteEntry> Locked;     ///< (Obj, pre-lock orec word).
    std::vector<unsigned> InstallSlots; ///< Ring slot per write entry.
  };

  static bool isLocked(uint64_t OrecWord) { return OrecWord & 1; }
  static uint64_t versionOf(uint64_t OrecWord) { return OrecWord >> 1; }
  static uint64_t makeVersion(uint64_t Version) { return Version << 1; }
  static uint64_t makeLocked(ThreadId Tid) {
    return (static_cast<uint64_t>(Tid + 1) << 1) | 1;
  }

  BaseObject &slotVersion(ObjectId Obj, unsigned S) {
    return SlotVersions[static_cast<size_t>(Obj) * kHistoryDepth + S];
  }
  BaseObject &slotValue(ObjectId Obj, unsigned S) {
    return SlotValues[static_cast<size_t>(Obj) * kHistoryDepth + S];
  }

  /// Smallest published snapshot timestamp among active read-only
  /// transactions (kNoVersion when none are active).
  uint64_t minActiveReaderTs();

  void releaseLocked(Desc &D);
  void resetDesc(Desc &D);

  /// The attempt's TxSets footprint (the CM's "work done" currency).
  static unsigned workOf(const Desc &D) {
    return static_cast<unsigned>(D.Reads.size() + D.Writes.size());
  }

  /// Backing clock when none is shared in (kind from TmConfig.Clock);
  /// null when the constructor received a SharedClock.
  std::unique_ptr<VersionClock> OwnClock;
  /// Global version clock (breaks weak DAP, like TL2) — either *OwnClock
  /// or the constructor's SharedClock.
  VersionClock &Clock;
  /// Count of read-only transactions between begin and complete. Lets an
  /// update commit with a full ring skip the O(threads) ReaderTs scan in
  /// the common no-snapshot case: one read of this word. Incremented
  /// *before* the reader's publish-verify loop, so a writer that reads 0
  /// after its clock bump knows any unseen reader will end up with
  /// Ts >= Wv (the same missed-reader argument as the ReaderTs scan).
  BaseObject ActiveReaders;
  std::vector<BaseObject> Orecs;
  std::vector<BaseObject> SlotVersions; ///< ObjectCount x kHistoryDepth.
  std::vector<BaseObject> SlotValues;   ///< ObjectCount x kHistoryDepth.
  std::vector<BaseObject> ReaderTs;     ///< Per-thread published snapshot.
  std::vector<Desc> Descs;
};

} // namespace ptm

#endif // PTM_STM_MVTM_H
