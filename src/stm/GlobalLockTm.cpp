//===-- stm/GlobalLockTm.cpp - Single-global-lock TM ----------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "stm/GlobalLockTm.h"

#include "support/Spin.h"

using namespace ptm;

GlobalLockTm::GlobalLockTm(unsigned ObjectCount, unsigned ThreadCount,
                           const TmConfig &Config)
    : TmBase(ObjectCount, ThreadCount, Config), Lock(0), Descs(ThreadCount) {}

void GlobalLockTm::txBegin(ThreadId Tid) {
  slotBegin(Tid);
  Desc &D = Descs[Tid];
  D.UndoLog.clear();
  // Acquire the global lock for the whole transaction. The wait is bounded
  // by the holder's transaction length, so this blocks but cannot deadlock.
  uint32_t Spins = 0;
  for (;;) {
    uint64_t Expected = 0;
    if (Lock.compareAndSwap(Expected, 1))
      return;
    while (Lock.read() != 0)
      spinPause(Spins);
  }
}

bool GlobalLockTm::txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) {
  traceEvent(obs::TraceEventKind::TE_Read, Obj);
  assert(txActive(Tid) && "t-read outside a transaction");
  assert(Obj < numObjects() && "object id out of range");
  (void)Tid;
  Value = Values[Obj].read();
  return true;
}

bool GlobalLockTm::txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) {
  traceEvent(obs::TraceEventKind::TE_Write, Obj);
  assert(txActive(Tid) && "t-write outside a transaction");
  assert(Obj < numObjects() && "object id out of range");
  Descs[Tid].UndoLog.push_back({Obj, Values[Obj].read()});
  Values[Obj].write(Value);
  return true;
}

bool GlobalLockTm::txCommit(ThreadId Tid) {
  traceEvent(obs::TraceEventKind::TE_TryCommit);
  assert(txActive(Tid) && "tryCommit outside a transaction");
  releaseLock();
  return slotCommit(Tid);
}

void GlobalLockTm::txAbort(ThreadId Tid) {
  assert(txActive(Tid) && "abort outside a transaction");
  rollback(Descs[Tid]);
  releaseLock();
  slotAbort(Tid, AbortCause::AC_User);
}

void GlobalLockTm::rollback(Desc &D) {
  for (auto It = D.UndoLog.rbegin(), End = D.UndoLog.rend(); It != End; ++It)
    Values[It->Obj].write(It->Value);
  D.UndoLog.clear();
}
