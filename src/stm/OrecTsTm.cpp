//===-- stm/OrecTsTm.cpp - Orec TM with timestamp extension ---------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "stm/OrecTsTm.h"

using namespace ptm;

OrecTsTm::OrecTsTm(unsigned ObjectCount, unsigned ThreadCount,
                   const TmConfig &Config)
    : TmBase(ObjectCount, ThreadCount, Config),
      Clock(createVersionClock(Config.Clock, ThreadCount)), Orecs(ObjectCount),
      Descs(ThreadCount) {}

void OrecTsTm::resetDesc(Desc &D) {
  D.Reads.clear();
  D.Writes.clear();
  D.Locked.clear();
}

void OrecTsTm::txBegin(ThreadId Tid) {
  slotBegin(Tid);
  Desc &D = Descs[Tid];
  resetDesc(D);
  D.Rv = Clock->read();
}

bool OrecTsTm::extendSnapshot(Desc &D) {
  // Read the clock FIRST: any commit serialized at or before Now that
  // touched our read set will have released its locks with a changed
  // version by the time the scan below reaches it — so if the scan sees
  // every entry unchanged and unlocked, the snapshot holds through Now.
  uint64_t Now = Clock->read();
  for (const auto &E : D.Reads)
    if (Orecs[E.Obj].read() != makeVersion(E.Payload))
      return false;
  D.Rv = Now;
  traceEvent(obs::TraceEventKind::TE_Extend, Now);
  return true;
}

bool OrecTsTm::txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) {
  traceEvent(obs::TraceEventKind::TE_Read, Obj);
  assert(txActive(Tid) && "t-read outside a transaction");
  assert(Obj < numObjects() && "object id out of range");
  Desc &D = Descs[Tid];

  // Read-own-writes from the redo log.
  if (D.Writes.lookup(Obj, Value))
    return true;

  for (;;) {
    // Consistent (orec, value, orec) sample, as in TL2.
    uint64_t Pre = Orecs[Obj].read();
    if (isLocked(Pre))
      return slotAbort(Tid, AbortCause::AC_LockHeld, Obj, workOf(D));
    Value = Values[Obj].read();
    uint64_t Post = Orecs[Obj].read();
    if (Post != Pre)
      return slotAbort(Tid, AbortCause::AC_ReadValidation, Obj, workOf(D));

    // Repeated read: consistent iff the object still carries the version
    // recorded at first read (any change means our snapshot's value no
    // longer exists — these TMs keep no old versions).
    if (const auto *E = D.Reads.find(Obj)) {
      if (versionOf(Pre) != E->Payload)
        return slotAbort(Tid, AbortCause::AC_ReadValidation, Obj, workOf(D));
      return true;
    }

    if (versionOf(Pre) <= D.Rv) {
      D.Reads.insert(Obj, versionOf(Pre));
      return true;
    }

    // The object post-dates the snapshot. Where TL2 aborts, extend: if
    // everything read so far is still current, the snapshot moves forward
    // and the read is retried. A failed extension means something we read
    // was overwritten by a concurrent commit — a genuine conflict, so
    // aborting preserves progressiveness; each loop iteration requires
    // yet another concurrent commit, so solo runs never loop.
    if (!extendSnapshot(D))
      return slotAbort(Tid, AbortCause::AC_ReadValidation, Obj, workOf(D));
  }
}

bool OrecTsTm::txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) {
  traceEvent(obs::TraceEventKind::TE_Write, Obj);
  assert(txActive(Tid) && "t-write outside a transaction");
  assert(Obj < numObjects() && "object id out of range");
  Descs[Tid].Writes.insertOrUpdate(Obj, Value);
  return true;
}

bool OrecTsTm::txCommit(ThreadId Tid) {
  traceEvent(obs::TraceEventKind::TE_TryCommit);
  assert(txActive(Tid) && "tryCommit outside a transaction");
  Desc &D = Descs[Tid];

  // Read-only fast path: every read was consistent at (the final) Rv.
  if (D.Writes.empty())
    return slotCommit(Tid);

  // Acquire write locks (single-shot CAS: contention means a conflict, so
  // aborting preserves progressiveness).
  for (const WriteEntry &W : D.Writes) {
    uint64_t Cur = Orecs[W.Obj].read();
    if (isLocked(Cur)) {
      releaseLocked(D);
      return slotAbort(Tid, AbortCause::AC_LockHeld, W.Obj, workOf(D));
    }
    if (!Orecs[W.Obj].compareAndSwap(Cur, makeLocked(Tid))) {
      releaseLocked(D);
      return slotAbort(Tid, AbortCause::AC_LockHeld, W.Obj, workOf(D));
    }
    D.Locked.push_back({W.Obj, Cur});
  }

  uint64_t Wv = Clock->commitStamp(Tid);

  // Validate the read set unless no one committed since Rv (the TL2
  // Wv == Rv + 1 shortcut, equally sound here: version bumps only come
  // from commits, and every commit takes a fresh clock value). The
  // shortcut needs unique stamps, so non-exact clocks (gv5/sharded)
  // always validate — see Tl2Tm::txCommit for the counterexample.
  if (!Clock->exactStamps() || Wv != D.Rv + 1) {
    for (const auto &E : D.Reads) {
      uint64_t Cur = Orecs[E.Obj].read();
      if (Cur == makeVersion(E.Payload))
        continue;
      bool OkSelfLocked = false;
      if (Cur == makeLocked(Tid)) {
        // Locked by us (object also written): valid iff the pre-lock
        // version is still the one we read.
        for (const WriteEntry &L : D.Locked) {
          if (L.Obj == E.Obj) {
            OkSelfLocked = versionOf(L.Value) == E.Payload;
            break;
          }
        }
      }
      if (!OkSelfLocked) {
        releaseLocked(D);
        return slotAbort(Tid, AbortCause::AC_CommitValidation, E.Obj,
                         workOf(D));
      }
    }
  }

  // Publish values, then release locks by installing the new version.
  for (const WriteEntry &W : D.Writes)
    Values[W.Obj].write(W.Value);
  for (const WriteEntry &L : D.Locked)
    Orecs[L.Obj].write(makeVersion(Wv));
  D.Locked.clear();
  return slotCommit(Tid);
}

void OrecTsTm::txAbort(ThreadId Tid) {
  assert(txActive(Tid) && "abort outside a transaction");
  // Lazy updates: nothing was published, just drop the logs.
  resetDesc(Descs[Tid]);
  slotAbort(Tid, AbortCause::AC_User);
}

void OrecTsTm::releaseLocked(Desc &D) {
  // Restore the pre-lock orec words (versions unchanged: nothing was
  // published).
  for (auto It = D.Locked.rbegin(), End = D.Locked.rend(); It != End; ++It)
    Orecs[It->Obj].write(It->Value);
  D.Locked.clear();
}
