//===-- stm/OrecIncrementalTm.h - The Theorem 3 subject TM ------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TM class the paper's Theorem 3 is about: opaque, progressive,
/// **weak disjoint-access-parallel** (the only shared metadata is one orec
/// per t-object — no global clock), with **invisible reads** (t-reads apply
/// only trivial primitives). Opacity without a global clock forces each
/// t-read to revalidate the entire read set — DSTM-style *incremental
/// validation* (the paper's references [16, 19], its own tightness
/// witnesses). A read-only transaction with m reads therefore performs
/// Θ(m²) steps, and its last read touches m-1 distinct base objects:
/// exactly the lower bounds of Theorem 3, matched from above.
///
/// Orec layout is shared with TL2: bit 0 = locked; unlocked word carries
/// the version, locked word carries (owner + 1).
///
//===----------------------------------------------------------------------===//

#ifndef PTM_STM_ORECINCREMENTALTM_H
#define PTM_STM_ORECINCREMENTALTM_H

#include "stm/TmBase.h"
#include "stm/TxSets.h"

namespace ptm {

class OrecIncrementalTm final : public TmBase {
public:
  OrecIncrementalTm(unsigned ObjectCount, unsigned ThreadCount,
                    const TmConfig &Config = TmConfig());

  TmKind kind() const override { return TmKind::TK_OrecIncremental; }

  void txBegin(ThreadId Tid) override;
  bool txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) override;
  bool txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) override;
  bool txCommit(ThreadId Tid) override;
  void txAbort(ThreadId Tid) override;

private:
  struct alignas(PTM_CACHELINE_SIZE) Desc {
    /// Dedup'd read set; the payload is the version the object had when
    /// first read. Dedup is local bookkeeping only — every t-read still
    /// pays the full incremental validation over the log (the Theorem 3
    /// shared-memory cost this TM exists to exhibit).
    ReadSet<uint64_t> Reads;
    WriteSet Writes;
    std::vector<WriteEntry> Locked; ///< (Obj, pre-lock orec word).
  };

  static bool isLocked(uint64_t OrecWord) { return OrecWord & 1; }
  static uint64_t versionOf(uint64_t OrecWord) { return OrecWord >> 1; }
  static uint64_t makeVersion(uint64_t Version) { return Version << 1; }
  static uint64_t makeLocked(ThreadId Tid) {
    return (static_cast<uint64_t>(Tid + 1) << 1) | 1;
  }

  /// Re-checks that every read-set entry still has its recorded version.
  /// This is the incremental validation whose cost Theorem 3 proves
  /// unavoidable for this TM class.
  bool validateReadSet(const Desc &D) const;

  void releaseLocked(Desc &D);
  void resetDesc(Desc &D);

  /// The attempt's TxSets footprint (the CM's "work done" currency).
  static unsigned workOf(const Desc &D) {
    return static_cast<unsigned>(D.Reads.size() + D.Writes.size());
  }

  std::vector<BaseObject> Orecs;
  std::vector<Desc> Descs;
};

} // namespace ptm

#endif // PTM_STM_ORECINCREMENTALTM_H
