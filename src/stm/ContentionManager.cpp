//===-- stm/ContentionManager.cpp - Pluggable contention managers ---------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "stm/ContentionManager.h"

#include "support/Spin.h"

#include <algorithm>
#include <atomic>

using namespace ptm;

namespace {

/// Busy-waits \p Spins relaxes; yields instead when \p Spins hits the
/// policy's cap (saturated backoff means heavy contention, and on an
/// oversubscribed host the contender we wait for may need a core — the
/// same rationale as support/Spin.h's Backoff).
void spinFor(uint32_t Spins, uint32_t Cap) {
  for (uint32_t I = 0; I < Spins; ++I)
    cpuRelax();
  if (Spins >= Cap)
    std::this_thread::yield();
}

/// backoff: per-thread capped exponential backoff — the semantics (and
/// constants) of the Backoff the retry loops used before the CM seam.
class BackoffCm final : public ContentionManager {
public:
  explicit BackoffCm(unsigned MaxThreads)
      : ContentionManager(MaxThreads), State(MaxThreads) {}

  CmKind kind() const override { return CmKind::CM_Backoff; }

protected:
  void wait(ThreadId Tid, AbortCause, unsigned, ObjectId) override {
    uint32_t &Cur = State[Tid].Current;
    spinFor(Cur, kMax);
    if (Cur < kMax)
      Cur *= 2;
  }

  void settle(ThreadId Tid) override { State[Tid].Current = kInitial; }

private:
  static constexpr uint32_t kInitial = 4;
  static constexpr uint32_t kMax = 1024;

  struct alignas(PTM_CACHELINE_SIZE) PerThread {
    uint32_t Current = kInitial;
  };
  std::vector<PerThread> State;
};

/// polite: patience grows linearly with consecutive failures (64 spins
/// per strike, capped), then yields. Gentler ramp than exponential
/// backoff: short conflict bursts retry sooner, sustained contention
/// converges to the same yield-at-cap behaviour.
class PoliteCm final : public ContentionManager {
public:
  explicit PoliteCm(unsigned MaxThreads)
      : ContentionManager(MaxThreads), State(MaxThreads) {}

  CmKind kind() const override { return CmKind::CM_Polite; }

protected:
  void wait(ThreadId Tid, AbortCause, unsigned, ObjectId) override {
    uint32_t &Strikes = State[Tid].Strikes;
    if (Strikes < kMaxStrikes)
      ++Strikes;
    spinFor(Strikes * kSpinsPerStrike, kMaxStrikes * kSpinsPerStrike);
  }

  void settle(ThreadId Tid) override { State[Tid].Strikes = 0; }

private:
  static constexpr uint32_t kSpinsPerStrike = 64;
  static constexpr uint32_t kMaxStrikes = 64;

  struct alignas(PTM_CACHELINE_SIZE) PerThread {
    uint32_t Strikes = 0;
  };
  std::vector<PerThread> State;
};

/// karma: exponential backoff divided by accumulated priority. Karma is
/// the work (TxSets entries) the thread's aborted attempts have already
/// invested: a transaction that has repeatedly built a large footprint
/// and lost waits less each time, so long transactions are not starved
/// by streams of short ones. Commit settles the debt.
class KarmaCm final : public ContentionManager {
public:
  explicit KarmaCm(unsigned MaxThreads)
      : ContentionManager(MaxThreads), State(MaxThreads) {}

  CmKind kind() const override { return CmKind::CM_Karma; }

protected:
  void wait(ThreadId Tid, AbortCause, unsigned Work, ObjectId) override {
    PerThread &S = State[Tid];
    S.Karma += Work;
    uint32_t Priority =
        1 + std::min<uint64_t>(S.Karma, 63); // Divisor in [1, 64].
    spinFor(S.Current / Priority, kMax / Priority);
    if (S.Current < kMax)
      S.Current *= 2;
  }

  void settle(ThreadId Tid) override {
    State[Tid].Karma = 0;
    State[Tid].Current = kInitial;
  }

private:
  static constexpr uint32_t kInitial = 4;
  static constexpr uint32_t kMax = 1024;

  struct alignas(PTM_CACHELINE_SIZE) PerThread {
    uint64_t Karma = 0;
    uint32_t Current = kInitial;
  };
  std::vector<PerThread> State;
};

/// hotspot: per-object conflict heat scales the backoff. Every failed
/// lock acquisition and every abort naming a conflict object heats that
/// object (saturating); a wait triggered by a hot object spins longer —
/// up to 32x the base window — and consumes one unit of heat, so an
/// object cools once threads stop colliding on it. The heat table is
/// plain relaxed atomics: approximate by design, racy updates only shade
/// wait lengths, never correctness.
class HotSpotCm final : public ContentionManager {
public:
  HotSpotCm(unsigned MaxThreads, unsigned NumObjects)
      : ContentionManager(MaxThreads), State(MaxThreads), Heat(NumObjects) {}

  CmKind kind() const override { return CmKind::CM_HotSpot; }

  /// Test/introspection hook: current heat of \p Obj.
  uint32_t heatOf(ObjectId Obj) const {
    return Heat[Obj].load(std::memory_order_relaxed);
  }

protected:
  void wait(ThreadId Tid, AbortCause, unsigned, ObjectId Conflict) override {
    PerThread &S = State[Tid];
    uint32_t Scale = 1;
    if (Conflict != kNoObject && Conflict < Heat.size()) {
      uint32_t H = bumpHeat(Conflict, kAbortHeat);
      Scale = 1 + std::min(H / 8u, 31u); // In [1, 32].
      // Waiting consumes heat: cooling-by-use, no global decay pass.
      Heat[Conflict].fetch_sub(std::min(H, 1u), std::memory_order_relaxed);
    }
    uint32_t Cap = std::min<uint64_t>(uint64_t{kMax} * Scale, kAbsoluteCap);
    uint32_t Spins =
        std::min<uint64_t>(uint64_t{S.Current} * Scale, kAbsoluteCap);
    spinFor(Spins, Cap);
    if (S.Current < kMax)
      S.Current *= 2;
  }

  void settle(ThreadId Tid) override { State[Tid].Current = kInitial; }

  void noteBusy(ThreadId, ObjectId Obj) override {
    if (Obj < Heat.size())
      bumpHeat(Obj, kBusyHeat);
  }

private:
  static constexpr uint32_t kInitial = 4;
  static constexpr uint32_t kMax = 1024;
  static constexpr uint32_t kAbsoluteCap = 1u << 16;
  static constexpr uint32_t kBusyHeat = 4;
  static constexpr uint32_t kAbortHeat = 8;
  static constexpr uint32_t kHeatCeiling = 256;

  /// Saturating heat bump; returns the post-bump value.
  uint32_t bumpHeat(ObjectId Obj, uint32_t By) {
    uint32_t H = Heat[Obj].fetch_add(By, std::memory_order_relaxed) + By;
    if (H > kHeatCeiling) {
      Heat[Obj].store(kHeatCeiling, std::memory_order_relaxed);
      H = kHeatCeiling;
    }
    return H;
  }

  struct alignas(PTM_CACHELINE_SIZE) PerThread {
    uint32_t Current = kInitial;
  };
  std::vector<PerThread> State;
  std::vector<std::atomic<uint32_t>> Heat;
};

} // namespace

std::unique_ptr<ContentionManager>
ptm::createContentionManager(CmKind Kind, unsigned MaxThreads,
                             unsigned NumObjects) {
  if (MaxThreads == 0)
    return nullptr;
  switch (Kind) {
  case CmKind::CM_Backoff:
    return std::make_unique<BackoffCm>(MaxThreads);
  case CmKind::CM_Polite:
    return std::make_unique<PoliteCm>(MaxThreads);
  case CmKind::CM_Karma:
    return std::make_unique<KarmaCm>(MaxThreads);
  case CmKind::CM_HotSpot:
    return std::make_unique<HotSpotCm>(MaxThreads, NumObjects);
  }
  return nullptr;
}

void ptm::appendCmTelemetry(const CmTelemetry &T, const char *Policy,
                            obs::MetricsSnapshot &Snap) {
  const std::string Prefix = std::string("cm.") + Policy + ".";
  for (unsigned I = 0; I < kNumAbortCauses; ++I) {
    if (T.Consults[I] == 0)
      continue;
    Snap.Counters.push_back(
        {Prefix + "consults." + abortCauseName(static_cast<AbortCause>(I)),
         static_cast<int64_t>(T.Consults[I])});
  }
  Snap.Counters.push_back(
      {Prefix + "lock_busy_notes", static_cast<int64_t>(T.LockBusyNotes)});
  Snap.Histograms.push_back({Prefix + "wait_ns", T.WaitNs});
}
