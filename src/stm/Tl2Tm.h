//===-- stm/Tl2Tm.h - Transactional Locking II ------------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TL2 (Dice, Shalev, Shavit, DISC 2006 — the paper's reference [7]):
/// invisible reads, per-object versioned write-locks, commit-time lock
/// acquisition and a *global version clock* that lets each t-read be
/// validated in O(1) against the read timestamp RV.
///
/// Role in the reproduction: TL2 is opaque, progressive and uses invisible
/// reads — but the shared clock makes concurrent transactions with disjoint
/// data sets contend on one base object, so TL2 is **not** weak DAP. It
/// therefore escapes the Theorem 3 quadratic bound with Θ(m) read-only
/// transactions, demonstrating that the weak-DAP hypothesis is necessary.
///
/// Orec layout: bit 0 = locked; when unlocked, bits 63..1 hold the version;
/// when locked, bits 63..1 hold (owner thread id + 1).
///
//===----------------------------------------------------------------------===//

#ifndef PTM_STM_TL2TM_H
#define PTM_STM_TL2TM_H

#include "stm/TmBase.h"
#include "stm/TxSets.h"
#include "stm/VersionClock.h"

namespace ptm {

class Tl2Tm final : public TmBase {
public:
  Tl2Tm(unsigned ObjectCount, unsigned ThreadCount,
        const TmConfig &Config = TmConfig());

  TmKind kind() const override { return TmKind::TK_Tl2; }
  const VersionClock *versionClock() const override { return Clock.get(); }

  void txBegin(ThreadId Tid) override;
  bool txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) override;
  bool txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) override;
  bool txCommit(ThreadId Tid) override;
  void txAbort(ThreadId Tid) override;

private:
  struct alignas(PTM_CACHELINE_SIZE) Desc {
    uint64_t Rv = 0;                ///< Read timestamp.
    ReadSet<uint64_t> Reads;        ///< Objects read, dedup'd; payload is
                                    ///< the version seen at first read.
    WriteSet Writes;                ///< Redo log.
    std::vector<WriteEntry> Locked; ///< (Obj, pre-lock orec word) pairs.
  };

  static bool isLocked(uint64_t OrecWord) { return OrecWord & 1; }
  static uint64_t versionOf(uint64_t OrecWord) { return OrecWord >> 1; }
  static uint64_t makeVersion(uint64_t Version) { return Version << 1; }
  static uint64_t makeLocked(ThreadId Tid) {
    return (static_cast<uint64_t>(Tid + 1) << 1) | 1;
  }

  void releaseLocked(Desc &D);
  void resetDesc(Desc &D);

  /// The attempt's TxSets footprint (the CM's "work done" currency).
  static unsigned workOf(const Desc &D) {
    return static_cast<unsigned>(D.Reads.size() + D.Writes.size());
  }

  /// The global version clock (breaks weak DAP); pluggable via
  /// TmConfig.Clock — see stm/VersionClock.h for the trade-offs.
  std::unique_ptr<VersionClock> Clock;
  std::vector<BaseObject> Orecs;
  std::vector<Desc> Descs;
};

} // namespace ptm

#endif // PTM_STM_TL2TM_H
