//===-- stm/TmlTm.h - Transactional Mutex Lock ------------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TML (Dalessandro, Dice, Marathe, Moir, Nussbaum, Shavit; the minimal
/// sibling of NOrec): one global sequence lock. The first t-write takes
/// the lock (odd clock) and the transaction then runs in place,
/// irrevocably; reads validate only that the clock has not moved.
///
/// Role in the reproduction: a *contrast point outside* the paper's TM
/// class. TML is opaque and strictly serializable with O(1) reads, but it
/// is **not progressive**: a reader aborts whenever any writer committed,
/// conflict or not — exactly the behaviour progressiveness (and the
/// paper's lower bounds, which presuppose it) rules out. The disjoint-
/// access experiment (E5) shows TML aborting on conflict-free workloads
/// where all five progressive TMs are abort-free.
///
/// TML *is* strongly progressive on single-item workloads (the seqlock
/// winner always commits), so Algorithm 1 still works over it.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_STM_TMLTM_H
#define PTM_STM_TMLTM_H

#include "stm/TmBase.h"
#include "stm/TxSets.h"
#include "stm/VersionClock.h"

namespace ptm {

class TmlTm final : public TmBase {
public:
  TmlTm(unsigned ObjectCount, unsigned ThreadCount,
        const TmConfig &Config = TmConfig());

  TmKind kind() const override { return TmKind::TK_Tml; }
  const VersionClock *versionClock() const override { return Clock.get(); }

  void txBegin(ThreadId Tid) override;
  bool txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) override;
  bool txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) override;
  bool txCommit(ThreadId Tid) override;
  void txAbort(ThreadId Tid) override;

private:
  struct alignas(PTM_CACHELINE_SIZE) Desc {
    uint64_t Snapshot = 0;
    bool Writer = false;
    std::vector<WriteEntry> UndoLog; ///< For voluntary aborts only.
  };

  /// Spins until the sequence lock is even and returns it (a writer holds
  /// it only for its own finite transaction).
  uint64_t waitEven();

  /// The attempt's footprint (the CM's "work done" currency): only the
  /// undo log is tracked, so readers report 0.
  static unsigned workOf(const Desc &D) {
    return static_cast<unsigned>(D.UndoLog.size());
  }

  /// Global sequence lock, routed through the clock's seqlock face
  /// (seqRead / seqTryAcquire / seqRelease); odd = a writer is running.
  /// A seqlock is one word by definition, so every ClockKind behaves
  /// identically here — the TM participates in the clock dimension for
  /// uniformity, not for a behavioral difference.
  std::unique_ptr<VersionClock> Clock;
  std::vector<Desc> Descs;
};

} // namespace ptm

#endif // PTM_STM_TMLTM_H
