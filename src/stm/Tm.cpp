//===-- stm/Tm.cpp - Transactional memory public interface ----------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "stm/Tm.h"

using namespace ptm;

const char *ptm::tmKindName(TmKind Kind) {
  switch (Kind) {
  case TmKind::TK_GlobalLock:
    return "glock";
  case TmKind::TK_Tl2:
    return "tl2";
  case TmKind::TK_Norec:
    return "norec";
  case TmKind::TK_OrecIncremental:
    return "orec-incr";
  case TmKind::TK_OrecEager:
    return "orec-eager";
  case TmKind::TK_OrecTs:
    return "orec-ts";
  case TmKind::TK_Tlrw:
    return "tlrw";
  case TmKind::TK_Tml:
    return "tml";
  case TmKind::TK_Mv:
    return "mv";
  }
  return "unknown";
}

std::optional<TmKind> ptm::tmKindFromName(std::string_view Name) {
  for (TmKind Kind : allTmKinds())
    if (Name == tmKindName(Kind))
      return Kind;
  return std::nullopt;
}

const std::vector<TmKind> &ptm::allTmKinds() {
  static const std::vector<TmKind> Kinds = {
      TmKind::TK_GlobalLock,      TmKind::TK_Tl2,
      TmKind::TK_Norec,           TmKind::TK_OrecIncremental,
      TmKind::TK_OrecEager,       TmKind::TK_OrecTs,
      TmKind::TK_Tlrw,            TmKind::TK_Tml,
      TmKind::TK_Mv};
  return Kinds;
}

bool ptm::isProgressive(TmKind Kind) { return Kind != TmKind::TK_Tml; }

const char *ptm::clockKindName(ClockKind Kind) {
  switch (Kind) {
  case ClockKind::CK_Gv1:
    return "gv1";
  case ClockKind::CK_Gv5:
    return "gv5";
  case ClockKind::CK_Sharded:
    return "sharded";
  }
  return "unknown";
}

std::optional<ClockKind> ptm::clockKindFromName(std::string_view Name) {
  for (ClockKind Kind : allClockKinds())
    if (Name == clockKindName(Kind))
      return Kind;
  return std::nullopt;
}

const std::vector<ClockKind> &ptm::allClockKinds() {
  static const std::vector<ClockKind> Kinds = {
      ClockKind::CK_Gv1, ClockKind::CK_Gv5, ClockKind::CK_Sharded};
  return Kinds;
}

const char *ptm::cmKindName(CmKind Kind) {
  switch (Kind) {
  case CmKind::CM_Backoff:
    return "backoff";
  case CmKind::CM_Polite:
    return "polite";
  case CmKind::CM_Karma:
    return "karma";
  case CmKind::CM_HotSpot:
    return "hotspot";
  }
  return "unknown";
}

std::optional<CmKind> ptm::cmKindFromName(std::string_view Name) {
  for (CmKind Kind : allCmKinds())
    if (Name == cmKindName(Kind))
      return Kind;
  return std::nullopt;
}

const std::vector<CmKind> &ptm::allCmKinds() {
  static const std::vector<CmKind> Kinds = {CmKind::CM_Backoff,
                                            CmKind::CM_Polite, CmKind::CM_Karma,
                                            CmKind::CM_HotSpot};
  return Kinds;
}

const char *ptm::abortCauseName(AbortCause Cause) {
  switch (Cause) {
  case AbortCause::AC_None:
    return "none";
  case AbortCause::AC_ReadValidation:
    return "read-validation";
  case AbortCause::AC_LockHeld:
    return "lock-held";
  case AbortCause::AC_CommitValidation:
    return "commit-validation";
  case AbortCause::AC_User:
    return "user";
  case AbortCause::AC_HistoryFull:
    return "history-full";
  case AbortCause::AC_CauseCount_:
    break; // Sentinel, never a live value.
  }
  return "unknown";
}
