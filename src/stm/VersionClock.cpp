//===-- stm/VersionClock.cpp - Pluggable global version clocks ------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "stm/VersionClock.h"

#include <cassert>
#include <vector>

using namespace ptm;

namespace {

/// GV1: the classic single-cell fetch-add clock. Bitwise-compatible with
/// the clocks the TMs inlined before this layer existed: one AK_Read per
/// snapshot, one AK_FetchAdd per update commit.
class Gv1Clock final : public VersionClock {
public:
  ClockKind kind() const override { return ClockKind::CK_Gv1; }
  uint64_t read() override { return Cell.read(); }
  uint64_t commitStamp(ThreadId) override { return Cell.fetchAdd(1) + 1; }
  bool exactStamps() const override { return true; }
  uint64_t peek() const override { return Cell.peek(); }

  uint64_t seqRead() override { return Cell.read(); }
  bool seqTryAcquire(uint64_t Expected) override {
    return Cell.compareAndSwap(Expected, Expected + 1);
  }
  void seqRelease(uint64_t Value) override { Cell.write(Value); }

private:
  BaseObject Cell{0};
};

/// GV5-style pass-on-failure clock: commitStamp computes read+1 and
/// installs it with a single CAS whose failure is ignored. Correctness of
/// ignoring the failure: the CAS fails only because the cell moved past
/// the expected value, and by monotonicity the observed value is then
/// >= w, so guarantee (b) (read() >= w afterwards) holds either way.
/// Guarantee (a) holds because the read happens after the caller's lock
/// acquisitions: any snapshot taken before those locks read a cell value
/// <= w - 1. Stamps are NOT unique — two commits over disjoint objects
/// can both draw w — hence exactStamps() is false and adopters must
/// validate every commit (no Rv+1 shortcut).
class Gv5Clock final : public VersionClock {
public:
  ClockKind kind() const override { return ClockKind::CK_Gv5; }
  uint64_t read() override { return Cell.read(); }
  uint64_t commitStamp(ThreadId) override {
    uint64_t Cur = Cell.read();
    uint64_t W = Cur + 1;
    Cell.compareAndSwap(Cur, W); // Lost race => cell already >= W.
    return W;
  }
  bool exactStamps() const override { return false; }
  uint64_t peek() const override { return Cell.peek(); }

  uint64_t seqRead() override { return Cell.read(); }
  bool seqTryAcquire(uint64_t Expected) override {
    return Cell.compareAndSwap(Expected, Expected + 1);
  }
  void seqRelease(uint64_t Value) override { Cell.write(Value); }

private:
  BaseObject Cell{0};
};

/// TLC-style sharded clock: one cache-line-padded cell per thread (every
/// BaseObject is already line-aligned). read() is a max-scan; commitStamp
/// writes max+1 into the caller's OWN cell. Single-writer cells are the
/// monotonicity argument: a thread's stamp w = max+1 covers its own
/// cell's current value (it scanned it, and nobody else writes it), so
/// each cell only ever grows, and the max over monotone cells is
/// monotone. Guarantee (a): any earlier read() saw cell values whose max
/// was <= the committer's scanned max = w - 1. The price is O(threads)
/// instrumented reads per snapshot and per stamp, and duplicate stamps
/// (two threads can scan the same max concurrently).
class ShardedClock final : public VersionClock {
public:
  explicit ShardedClock(unsigned MaxThreads) : Cells(MaxThreads) {}

  ClockKind kind() const override { return ClockKind::CK_Sharded; }

  uint64_t read() override {
    uint64_t Max = 0;
    for (BaseObject &C : Cells) {
      uint64_t V = C.read();
      if (V > Max)
        Max = V;
    }
    return Max;
  }

  uint64_t commitStamp(ThreadId Tid) override {
    assert(Tid < Cells.size() && "thread id out of clock range");
    uint64_t W = read() + 1;
    Cells[Tid].write(W);
    return W;
  }

  bool exactStamps() const override { return false; }

  uint64_t peek() const override {
    uint64_t Max = 0;
    for (const BaseObject &C : Cells) {
      uint64_t V = C.peek();
      if (V > Max)
        Max = V;
    }
    return Max;
  }

  uint64_t seqRead() override { return Cells[0].read(); }
  bool seqTryAcquire(uint64_t Expected) override {
    return Cells[0].compareAndSwap(Expected, Expected + 1);
  }
  void seqRelease(uint64_t Value) override { Cells[0].write(Value); }

private:
  std::vector<BaseObject> Cells;
};

} // namespace

std::unique_ptr<VersionClock> ptm::createVersionClock(ClockKind Kind,
                                                      unsigned MaxThreads) {
  if (MaxThreads == 0)
    return nullptr;
  switch (Kind) {
  case ClockKind::CK_Gv1:
    return std::make_unique<Gv1Clock>();
  case ClockKind::CK_Gv5:
    return std::make_unique<Gv5Clock>();
  case ClockKind::CK_Sharded:
    return std::make_unique<ShardedClock>(MaxThreads);
  }
  return nullptr;
}
