//===-- stm/OrecIncrementalTm.cpp - The Theorem 3 subject TM --------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "stm/OrecIncrementalTm.h"

using namespace ptm;

OrecIncrementalTm::OrecIncrementalTm(unsigned ObjectCount,
                                     unsigned ThreadCount,
                                     const TmConfig &Config)
    : TmBase(ObjectCount, ThreadCount, Config), Orecs(ObjectCount),
      Descs(ThreadCount) {}

void OrecIncrementalTm::resetDesc(Desc &D) {
  D.Reads.clear();
  D.Writes.clear();
  D.Locked.clear();
}

void OrecIncrementalTm::txBegin(ThreadId Tid) {
  slotBegin(Tid);
  resetDesc(Descs[Tid]);
}

bool OrecIncrementalTm::validateReadSet(const Desc &D) const {
  for (const auto &E : D.Reads)
    if (Orecs[E.Obj].read() != makeVersion(E.Payload))
      return false;
  return true;
}

bool OrecIncrementalTm::txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) {
  traceEvent(obs::TraceEventKind::TE_Read, Obj);
  assert(txActive(Tid) && "t-read outside a transaction");
  assert(Obj < numObjects() && "object id out of range");
  Desc &D = Descs[Tid];

  if (D.Writes.lookup(Obj, Value))
    return true;

  // Consistent (orec, value, orec) sample of the new object. All three
  // accesses are trivial primitives: reads stay invisible.
  uint64_t Pre = Orecs[Obj].read();
  if (isLocked(Pre))
    return slotAbort(Tid, AbortCause::AC_LockHeld, Obj, workOf(D));
  Value = Values[Obj].read();
  uint64_t Post = Orecs[Obj].read();
  if (Post != Pre)
    return slotAbort(Tid, AbortCause::AC_ReadValidation, Obj, workOf(D));

  // Incremental validation: with no global clock to order commits, opacity
  // requires establishing that the whole read set was still intact at a
  // single point. Versions only grow, so if every recorded version is
  // still current *after* the new value was read, the full snapshot held
  // at the moment the value was read. Cost: i-1 extra reads for the i-th
  // t-read — the Theorem 3(1) lower bound, met exactly.
  if (!validateReadSet(D))
    return slotAbort(Tid, AbortCause::AC_ReadValidation, Obj, workOf(D));

  // Record the first read of each object (a repeated read is covered by
  // the validation above; the dedup probe itself is O(1) local work).
  if (!D.Reads.contains(Obj))
    D.Reads.insert(Obj, versionOf(Pre));
  return true;
}

bool OrecIncrementalTm::txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) {
  traceEvent(obs::TraceEventKind::TE_Write, Obj);
  assert(txActive(Tid) && "t-write outside a transaction");
  assert(Obj < numObjects() && "object id out of range");
  // Lazy update keeps reads of other transactions invisible to us and our
  // writes invisible to them until commit.
  Descs[Tid].Writes.insertOrUpdate(Obj, Value);
  return true;
}

bool OrecIncrementalTm::txCommit(ThreadId Tid) {
  traceEvent(obs::TraceEventKind::TE_TryCommit);
  assert(txActive(Tid) && "tryCommit outside a transaction");
  Desc &D = Descs[Tid];

  // Read-only fast path: the last t-read validated the entire read set,
  // which serializes the transaction at that read's snapshot point.
  if (D.Writes.empty())
    return slotCommit(Tid);

  // Acquire write locks with single-shot CAS (failure = conflict = abort,
  // preserving progressiveness).
  for (const WriteEntry &W : D.Writes) {
    uint64_t Cur = Orecs[W.Obj].read();
    if (isLocked(Cur)) {
      releaseLocked(D);
      return slotAbort(Tid, AbortCause::AC_LockHeld, W.Obj, workOf(D));
    }
    if (!Orecs[W.Obj].compareAndSwap(Cur, makeLocked(Tid))) {
      releaseLocked(D);
      return slotAbort(Tid, AbortCause::AC_LockHeld, W.Obj, workOf(D));
    }
    D.Locked.push_back({W.Obj, Cur});
  }

  // Final validation: every read-set entry must still carry its recorded
  // version, or be locked by us with the recorded pre-lock version.
  for (const auto &E : D.Reads) {
    uint64_t Cur = Orecs[E.Obj].read();
    if (Cur == makeVersion(E.Payload))
      continue;
    bool OkSelfLocked = false;
    if (Cur == makeLocked(Tid)) {
      for (const WriteEntry &L : D.Locked) {
        if (L.Obj == E.Obj) {
          OkSelfLocked = versionOf(L.Value) == E.Payload;
          break;
        }
      }
    }
    if (!OkSelfLocked) {
      releaseLocked(D);
      return slotAbort(Tid, AbortCause::AC_CommitValidation, E.Obj,
                       workOf(D));
    }
  }

  // Publish and release with bumped versions.
  for (const WriteEntry &W : D.Writes)
    Values[W.Obj].write(W.Value);
  for (const WriteEntry &L : D.Locked)
    Orecs[L.Obj].write(makeVersion(versionOf(L.Value) + 1));
  D.Locked.clear();
  return slotCommit(Tid);
}

void OrecIncrementalTm::txAbort(ThreadId Tid) {
  assert(txActive(Tid) && "abort outside a transaction");
  resetDesc(Descs[Tid]);
  slotAbort(Tid, AbortCause::AC_User);
}

void OrecIncrementalTm::releaseLocked(Desc &D) {
  for (auto It = D.Locked.rbegin(), End = D.Locked.rend(); It != End; ++It)
    Orecs[It->Obj].write(It->Value);
  D.Locked.clear();
}
