//===-- stm/VersionClock.h - Pluggable global version clocks ----*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The global version clock behind every clock-based TM (tl2, orec-ts, mv,
/// tml), extracted into a swappable interface so the fetch-add hot spot —
/// the one base object *every* commit of *every* thread RMWs — becomes an
/// algorithm choice instead of a baked-in policy. "On the Cost of
/// Concurrency in TM" (PAPERS.md) prices exactly this object: the clock is
/// why these TMs escape the Theorem 3 quadratic bound, and also why they
/// are not weak DAP.
///
/// Contract shared by all implementations (all cells are BaseObjects, so
/// clock traffic stays inside the instrumented step/RMR model):
///
///  * read() is monotone: it never returns less than any value previously
///    returned by read() or commitStamp() on any thread.
///  * commitStamp(Tid) is called with the transaction's write locks HELD
///    and returns the commit timestamp w. It guarantees
///      (a) w > any value read() returned before the caller acquired its
///          locks (so a reader whose snapshot predates the locks can
///          detect the update: condition (*) of the TL2 safety argument);
///      (b) read() >= w from the moment commitStamp returns (so later
///          snapshots admit the published versions).
///  * exactStamps() says whether stamps are unique across commits. Only
///    then is the TL2 "Wv == Rv + 1 skips read validation" shortcut
///    sound: with duplicate stamps two committers can both draw Rv + 1
///    and miss a mutual anti-dependency. Non-exact clocks must validate
///    every commit.
///
/// Implementations:
///
///  * gv1     — the classic TL2 GV1: one cell, commitStamp is fetchAdd+1.
///              Exact stamps, 1 RMW per update commit; every commit of
///              every thread contends on the same line.
///  * gv5     — pass-on-failure: commitStamp reads the cell and installs
///              read+1 with ONE CAS whose failure is ignored (by
///              monotonicity the observed value is already >= w). Zero
///              RMW retry loops, but stamps can duplicate, so adopters
///              lose the Rv+1 validation shortcut and readers see more
///              spurious version-ahead aborts.
///  * sharded — TLC-style per-thread cells: read() is a max-scan over all
///              cells, commitStamp writes max+1 into the caller's own
///              cell (single-writer, hence per-cell monotone). No RMW at
///              all and no shared write target, at the price of O(threads)
///              reads per snapshot/stamp and non-exact stamps.
///
/// The seqlock face (seq*) serves TML, whose "clock" doubles as a global
/// sequence lock: odd = writer present. It always operates on cell 0, so
/// under the sharded clock TML degenerates to the single-cell behaviour —
/// a seqlock is one word by definition; the clock abstraction just owns
/// the storage uniformly.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_STM_VERSIONCLOCK_H
#define PTM_STM_VERSIONCLOCK_H

#include "runtime/BaseObject.h"
#include "stm/Tm.h"

#include <memory>

namespace ptm {

/// Abstract global version clock. See the file comment for the contract.
class VersionClock {
public:
  virtual ~VersionClock() = default;

  /// The algorithm implementing this clock.
  virtual ClockKind kind() const = 0;

  /// Short stable name (same as clockKindName(kind())).
  const char *name() const { return clockKindName(kind()); }

  /// Current global time (monotone; counted base-object steps).
  virtual uint64_t read() = 0;

  /// Draws the commit timestamp for thread \p Tid. Call only with the
  /// transaction's write locks held; see the file comment for the
  /// guarantees (a) and (b).
  virtual uint64_t commitStamp(ThreadId Tid) = 0;

  /// True iff no two commits can draw the same stamp — the soundness
  /// condition of the TL2 Wv == Rv + 1 validation-skip shortcut.
  virtual bool exactStamps() const = 0;

  /// Uninstrumented quiescent readback (setup/teardown only).
  virtual uint64_t peek() const = 0;

  /// \name Seqlock face (always cell 0)
  /// TML's global sequence lock routed through the clock's storage: odd
  /// value = writer present. Only meaningful for a TM that uses the clock
  /// exclusively through these three operations.
  /// @{
  virtual uint64_t seqRead() = 0;
  /// Single-shot CAS \p Expected -> \p Expected + 1 (lock acquisition).
  virtual bool seqTryAcquire(uint64_t Expected) = 0;
  /// Store \p Value (lock release / clock publish by the lock holder).
  virtual void seqRelease(uint64_t Value) = 0;
  /// @}
};

/// Creates a version clock of the given kind for up to \p MaxThreads
/// concurrent threads (the sharded clock sizes its cell array from this).
/// Returns null if \p Kind is unknown or \p MaxThreads is zero.
std::unique_ptr<VersionClock> createVersionClock(ClockKind Kind,
                                                 unsigned MaxThreads);

} // namespace ptm

#endif // PTM_STM_VERSIONCLOCK_H
