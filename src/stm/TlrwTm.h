//===-- stm/TlrwTm.h - TLRW-style visible-read TM ---------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TLRW-style TM (Dice & Shavit, SPAA 2010 — the paper's reference [9]):
/// encounter-time read-write locking with eager in-place updates and an
/// undo log. Every t-read *acquires* a per-object read lock — a nontrivial
/// primitive — so reads are **visible**.
///
/// Role in the reproduction: TLRW is weak DAP (per-object locks only) yet
/// reads cost O(1) and need no validation at all — two-phase locking makes
/// observed snapshots trivially consistent. It evades Theorem 3 by
/// violating the *invisible reads* hypothesis, demonstrating that that
/// hypothesis, too, is necessary.
///
/// Lock word layout: low 32 bits = reader count; high 32 bits = writer
/// (owner + 1, 0 = none).
///
//===----------------------------------------------------------------------===//

#ifndef PTM_STM_TLRWTM_H
#define PTM_STM_TLRWTM_H

#include "stm/TmBase.h"
#include "stm/TxSets.h"

namespace ptm {

class TlrwTm final : public TmBase {
public:
  TlrwTm(unsigned ObjectCount, unsigned ThreadCount,
         const TmConfig &Config = TmConfig());

  TmKind kind() const override { return TmKind::TK_Tlrw; }

  void txBegin(ThreadId Tid) override;
  bool txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) override;
  bool txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) override;
  bool txCommit(ThreadId Tid) override;
  void txAbort(ThreadId Tid) override;

private:
  struct alignas(PTM_CACHELINE_SIZE) Desc {
    std::vector<ObjectId> ReadLocks;
    std::vector<ObjectId> WriteLocks;
    std::vector<WriteEntry> UndoLog;
  };

  /// How many CAS attempts an acquisition makes before declaring a
  /// conflict. Bounded, so the TM cannot block indefinitely (ICF
  /// TM-liveness) and aborts only when another transaction demonstrably
  /// holds the lock (progressiveness).
  static constexpr unsigned kAcquireAttempts = 64;

  static uint32_t readersOf(uint64_t LockWord) {
    return static_cast<uint32_t>(LockWord & 0xffffffffu);
  }
  static uint32_t writerOf(uint64_t LockWord) {
    return static_cast<uint32_t>(LockWord >> 32);
  }
  static uint64_t makeWriter(ThreadId Tid) {
    return static_cast<uint64_t>(Tid + 1) << 32;
  }

  static bool contains(const std::vector<ObjectId> &Set, ObjectId Obj) {
    for (ObjectId O : Set)
      if (O == Obj)
        return true;
    return false;
  }
  static void erase(std::vector<ObjectId> &Set, ObjectId Obj);

  bool acquireRead(ThreadId Tid, ObjectId Obj);
  bool acquireWrite(ThreadId Tid, ObjectId Obj, bool Upgrade);

  void rollback(Desc &D);
  void releaseAll(Desc &D);

  /// The attempt's footprint (the CM's "work done" currency).
  static unsigned workOf(const Desc &D) {
    return static_cast<unsigned>(D.ReadLocks.size() + D.WriteLocks.size() +
                                 D.UndoLog.size());
  }

  std::vector<BaseObject> Locks;
  std::vector<Desc> Descs;
};

} // namespace ptm

#endif // PTM_STM_TLRWTM_H
