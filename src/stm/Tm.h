//===-- stm/Tm.h - Transactional memory public interface -------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The uniform TM interface of this library, mirroring the paper's model
/// (Section 2): transactions consist of t-reads, t-writes and a tryCommit,
/// each of which may return the abort flag A_k. The library is
/// exception-free: an operation returning false means the transaction
/// aborted (the cause is queryable), after which the caller must start a
/// new transaction with txBegin.
///
/// The implementations cover the paper's property space (see DESIGN.md):
/// GlobalLock, TL2, NOrec, OrecIncremental (the Theorem 3 subject),
/// OrecEager, OrecTs (clock + timestamp extension), TLRW and Mv
/// (multi-version, abort-free read-only snapshots), plus TML as the
/// non-progressive contrast point. All but TML are progressive; all
/// are strongly progressive on single-object workloads; all are opaque.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_STM_TM_H
#define PTM_STM_TM_H

#include "runtime/Ids.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

namespace ptm {

/// The available TM algorithms.
enum class TmKind {
  TK_GlobalLock,      ///< Single global lock; never aborts.
  TK_Tl2,             ///< TL2: global version clock, commit-time locking.
  TK_Norec,           ///< NOrec: global seqlock, value-based validation.
  TK_OrecIncremental, ///< Weak-DAP invisible reads, incremental validation.
  TK_OrecEager,       ///< Same class, encounter-time locking (TinySTM-ish).
  TK_OrecTs,          ///< Orecs + global clock with timestamp extension.
  TK_Tlrw,            ///< TLRW-style encounter-time read-write locking.
  TK_Tml,             ///< TML: global seqlock, irrevocable writer.
  TK_Mv,              ///< Multi-version: abort-free read-only snapshots.
};

/// Short stable name (used in tables, test names and logs).
const char *tmKindName(TmKind Kind);

/// Inverse of tmKindName: parses a short name back into a kind. Returns
/// std::nullopt for names that denote no TM.
std::optional<TmKind> tmKindFromName(std::string_view Name);

/// All implemented TM kinds, in a fixed presentation order.
const std::vector<TmKind> &allTmKinds();

/// True if the TM guarantees progressiveness: a transaction aborts only
/// because of a conflicting concurrent transaction. All TMs here are
/// progressive except TML, which aborts readers on *any* concurrent
/// commit — it is included precisely as the contrast point outside the
/// paper's TM class.
bool isProgressive(TmKind Kind);

/// Why a transaction aborted. AC_None means "not aborted".
enum class AbortCause {
  AC_None = 0,
  AC_ReadValidation,   ///< A read observed a conflicting update.
  AC_LockHeld,         ///< A needed lock/orec was held by a concurrent txn.
  AC_CommitValidation, ///< Commit-time validation of the read set failed.
  AC_User,             ///< The application aborted voluntarily.
  AC_HistoryFull,      ///< An update could not evict an old version still
                       ///< pinned by an active read-only snapshot (mv).
  AC_CauseCount_,      ///< Sentinel, not a cause: append new causes above.
};

/// Number of distinct AbortCause values (for stats arrays).
inline constexpr unsigned kNumAbortCauses = 6;
static_assert(kNumAbortCauses ==
                  static_cast<unsigned>(AbortCause::AC_CauseCount_),
              "kNumAbortCauses must track the AbortCause enumerator count — "
              "a cause appended before AC_CauseCount_ moves the sentinel, so "
              "this fires until the constant (and the stats arrays sized by "
              "it) catch up");

/// Short stable name for an abort cause.
const char *abortCauseName(AbortCause Cause);

/// The available global version-clock algorithms (see stm/VersionClock.h).
enum class ClockKind {
  CK_Gv1,     ///< Single fetch-add cell (classic TL2 GV1; the default).
  CK_Gv5,     ///< Pass-on-failure: one lossy CAS, duplicate stamps allowed.
  CK_Sharded, ///< Per-thread cells, max-scan reads, RMW-free stamping.
};

/// Short stable name (used in configs, bench JSON and logs).
const char *clockKindName(ClockKind Kind);

/// Inverse of clockKindName. Returns std::nullopt for unknown names.
std::optional<ClockKind> clockKindFromName(std::string_view Name);

/// All implemented clock kinds, in a fixed presentation order.
const std::vector<ClockKind> &allClockKinds();

/// The available contention-management policies (stm/ContentionManager.h).
enum class CmKind {
  CM_Backoff, ///< Capped exponential backoff (the default).
  CM_Polite,  ///< Linearly growing patience, capped, then yields.
  CM_Karma,   ///< Wait shrinks with accumulated work (TxSets entries).
  CM_HotSpot, ///< Per-object conflict heat scales the wait.
};

/// Short stable name (used in configs, bench JSON and logs).
const char *cmKindName(CmKind Kind);

/// Inverse of cmKindName. Returns std::nullopt for unknown names.
std::optional<CmKind> cmKindFromName(std::string_view Name);

/// All implemented CM kinds, in a fixed presentation order.
const std::vector<CmKind> &allCmKinds();

/// Cross-cutting configuration of one TM instance: which version clock
/// the clock-based algorithms stamp commits from, and which contention
/// manager the retry combinator consults between attempts. The defaults
/// reproduce the pre-config behaviour bit-for-bit (GV1's access sequence
/// is the old inline clock's; backoff keeps the old spin constants).
struct TmConfig {
  ClockKind Clock = ClockKind::CK_Gv1;
  CmKind Cm = CmKind::CM_Backoff;
};

class ContentionManager;
class VersionClock;

/// Commit/abort counters aggregated across all threads of a TM instance.
struct TmStats {
  uint64_t Commits = 0;                  ///< Successful tryCommits (C_k).
  uint64_t Aborts[kNumAbortCauses] = {}; ///< Aborts, indexed by AbortCause.

  /// Total aborts across all causes.
  uint64_t totalAborts() const {
    uint64_t Sum = 0;
    for (uint64_t A : Aborts)
      Sum += A;
    return Sum;
  }

  /// Abort ratio in [0,1]; 0 when nothing ran.
  double abortRatio() const {
    uint64_t Total = Commits + totalAborts();
    return Total == 0 ? 0.0
                      : static_cast<double>(totalAborts()) /
                            static_cast<double>(Total);
  }

  /// Accumulates \p Other into this (the aggregation every multi-instance
  /// holder — sharded stores, per-role harnesses — needs).
  TmStats &operator+=(const TmStats &Other) {
    Commits += Other.Commits;
    for (unsigned I = 0; I < kNumAbortCauses; ++I)
      Aborts[I] += Other.Aborts[I];
    return *this;
  }
};

inline TmStats operator+(TmStats A, const TmStats &B) { return A += B; }

/// Abstract transactional memory over a fixed array of 64-bit t-objects.
///
/// Threading contract: thread \p Tid uses only its own descriptor slot and
/// must run at most one transaction at a time (the paper's well-formedness).
/// txBegin resets the slot; txRead/txWrite/txCommit return false iff the
/// transaction aborted (then the slot is inactive and lastAbortCause tells
/// why). txAbort is the voluntary A_k.
class Tm {
public:
  virtual ~Tm() = default;

  /// The algorithm implementing this instance.
  virtual TmKind kind() const = 0;

  /// Short stable name of the algorithm (same as tmKindName(kind())).
  const char *name() const { return tmKindName(kind()); }

  /// Number of t-objects this instance was created over; valid ObjectIds
  /// are [0, numObjects()).
  virtual unsigned numObjects() const = 0;

  /// Maximum number of concurrent threads; valid ThreadIds are
  /// [0, maxThreads()).
  virtual unsigned maxThreads() const = 0;

  /// Starts a fresh transaction for thread \p Tid. Any previous transaction
  /// of this thread must be complete (committed or aborted).
  virtual void txBegin(ThreadId Tid) = 0;

  /// Starts a fresh transaction that promises to perform no t-writes.
  /// TMs with a dedicated snapshot path (see hasAbortFreeReadOnly) use the
  /// hint to run the transaction abort-free; everyone else treats it as a
  /// plain txBegin. A txWrite inside a read-only transaction is a contract
  /// violation: TMs on the snapshot path fail it (abort with AC_User)
  /// rather than lose the write silently.
  virtual void txBeginReadOnly(ThreadId Tid) { txBegin(Tid); }

  /// True iff transactions started with txBeginReadOnly never abort and
  /// never write shared memory — i.e. a read-only snapshot neither fails
  /// nor obstructs concurrent updates. The service layer uses this to
  /// elide latches on its snapshot read path. GlobalLock's read path
  /// blocks writers (and vice versa), so it does not qualify even though
  /// it too "never aborts".
  virtual bool hasAbortFreeReadOnly() const { return false; }

  /// t-read of \p Obj; on success stores the value in \p Value.
  /// \returns false iff the transaction aborted (the paper's A_k), after
  /// which the slot is inactive and lastAbortCause() tells why.
  virtual bool txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) = 0;

  /// t-write of \p Value to \p Obj.
  /// \returns false iff the transaction aborted (see txRead).
  virtual bool txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) = 0;

  /// tryCommit; true = C_k, false = A_k.
  virtual bool txCommit(ThreadId Tid) = 0;

  /// Voluntary abort (always succeeds).
  virtual void txAbort(ThreadId Tid) = 0;

  /// True while thread \p Tid has a live (begun, not yet complete)
  /// transaction.
  virtual bool txActive(ThreadId Tid) const = 0;

  /// Cause of the last abort on this thread (AC_None if the last
  /// transaction committed).
  virtual AbortCause lastAbortCause(ThreadId Tid) const = 0;

  /// The object whose conflict caused the last abort on this thread, or
  /// kNoObject when no single object did (user abort, value-based
  /// validation, a clock-wide conflict). Feeds contention managers that
  /// track per-object conflict state.
  virtual ObjectId lastConflictObject(ThreadId Tid) const {
    (void)Tid;
    return kNoObject;
  }

  /// The aborted attempt's TxSets footprint (read-set + write-set entries
  /// at abort time) — the "work done" a karma-style contention manager
  /// accumulates. 0 when unknown or after a commit.
  virtual unsigned lastAbortWork(ThreadId Tid) const {
    (void)Tid;
    return 0;
  }

  /// This instance's cross-cutting configuration (clock + CM choice).
  virtual TmConfig config() const { return TmConfig(); }

  /// The contention manager owned by this instance, or null on wrappers
  /// and fakes that have none (the retry combinator then falls back to
  /// plain capped-exponential backoff).
  virtual ContentionManager *contentionManager() { return nullptr; }

  /// The version clock this instance stamps commits from, or null for
  /// algorithms without one (glock, norec, orec-incr, orec-eager, tlrw).
  virtual const VersionClock *versionClock() const { return nullptr; }

  /// Non-transactional readback, valid only in quiescent configurations
  /// (setup/teardown/verification). Never counted as steps.
  virtual uint64_t sample(ObjectId Obj) const = 0;

  /// Non-transactional initialization, valid only while quiescent.
  virtual void init(ObjectId Obj, uint64_t Value) = 0;

  /// Aggregated commit/abort counters, exact. Like resetStats(), valid
  /// only in quiescent configurations (no thread has a live transaction);
  /// debug builds assert quiescence. For a live view while transactions
  /// run, use statsSnapshot().
  virtual TmStats stats() const = 0;

  /// Live view of the same counters, safe to call concurrently with
  /// running transactions: each per-thread cell is read atomically
  /// (relaxed), so the result is a consistent-per-cell epoch snapshot —
  /// monotone across calls and converging to stats() at quiescence —
  /// rather than an exact global cut. This is the always-on telemetry
  /// path (see DESIGN.md "Observability").
  virtual TmStats statsSnapshot() const { return stats(); }

  /// One thread's share of the counters — lets harnesses attribute
  /// commits and aborts to a role (the read-only benchmark separates
  /// reader aborts from writer aborts this way). Same quiescence
  /// contract as stats().
  virtual TmStats threadStats(ThreadId Tid) const = 0;

  /// Zeroes all counters (call only while quiescent).
  virtual void resetStats() = 0;
};

/// Creates a TM of the given kind over \p NumObjects t-objects usable by up
/// to \p MaxThreads concurrent threads, with the default TmConfig (GV1
/// clock, backoff CM). Returns null if \p Kind is not a known TmKind or if
/// either count is zero.
std::unique_ptr<Tm> createTm(TmKind Kind, unsigned NumObjects,
                             unsigned MaxThreads);

/// Like the two-argument overload, but with an explicit clock/CM
/// configuration. Algorithms without a version clock ignore Config.Clock;
/// every TM owns a contention manager of Config.Cm.
std::unique_ptr<Tm> createTm(TmKind Kind, unsigned NumObjects,
                             unsigned MaxThreads, const TmConfig &Config);

} // namespace ptm

#endif // PTM_STM_TM_H
