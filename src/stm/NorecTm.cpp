//===-- stm/NorecTm.cpp - NOrec: no ownership records ----------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "stm/NorecTm.h"

#include "support/Spin.h"

using namespace ptm;

NorecTm::NorecTm(unsigned ObjectCount, unsigned ThreadCount,
                 const TmConfig &Config)
    : TmBase(ObjectCount, ThreadCount, Config), Seq(0), Descs(ThreadCount) {}

void NorecTm::resetDesc(Desc &D) {
  D.Reads.clear();
  D.Writes.clear();
}

uint64_t NorecTm::waitEven() {
  // A committer holds the lock only for its bounded write-back phase, so
  // this wait is finite.
  uint32_t Spins = 0;
  for (;;) {
    uint64_t Time = Seq.read();
    if ((Time & 1) == 0)
      return Time;
    spinPause(Spins);
  }
}

void NorecTm::txBegin(ThreadId Tid) {
  slotBegin(Tid);
  Desc &D = Descs[Tid];
  resetDesc(D);
  D.Snapshot = waitEven();
}

uint64_t NorecTm::validate(Desc &D) {
  for (;;) {
    uint64_t Time = waitEven();
    for (const auto &E : D.Reads)
      if (Values[E.Obj].read() != E.Payload)
        return kValidateFailed;
    // If the clock did not move while we re-read, all values coexisted at
    // Time, which becomes the new snapshot.
    if (Seq.read() == Time)
      return Time;
  }
}

bool NorecTm::txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) {
  traceEvent(obs::TraceEventKind::TE_Read, Obj);
  assert(txActive(Tid) && "t-read outside a transaction");
  assert(Obj < numObjects() && "object id out of range");
  Desc &D = Descs[Tid];

  if (D.Writes.lookup(Obj, Value))
    return true;

  // Dedup: a repeated read returns the logged value — by construction the
  // committed value of Obj at the current snapshot — without touching
  // shared memory, keeping the read set (and every validate() pass over
  // it) bounded by the number of distinct objects read.
  if (const auto *E = D.Reads.find(Obj)) {
    Value = E->Payload;
    return true;
  }

  Value = Values[Obj].read();
  while (Seq.read() != D.Snapshot) {
    uint64_t Fresh = validate(D);
    if (Fresh == kValidateFailed)
      // Value-based validation failed somewhere in the read set; the
      // conflict is snapshot-wide, not attributable to one object.
      return slotAbort(Tid, AbortCause::AC_ReadValidation, kNoObject,
                       workOf(D));
    D.Snapshot = Fresh;
    Value = Values[Obj].read();
  }

  D.Reads.insert(Obj, Value);
  return true;
}

bool NorecTm::txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) {
  traceEvent(obs::TraceEventKind::TE_Write, Obj);
  assert(txActive(Tid) && "t-write outside a transaction");
  assert(Obj < numObjects() && "object id out of range");
  Descs[Tid].Writes.insertOrUpdate(Obj, Value);
  return true;
}

bool NorecTm::txCommit(ThreadId Tid) {
  traceEvent(obs::TraceEventKind::TE_TryCommit);
  assert(txActive(Tid) && "tryCommit outside a transaction");
  Desc &D = Descs[Tid];

  // Read-only fast path: every read was consistent at the snapshot that
  // was current when it executed.
  if (D.Writes.empty())
    return slotCommit(Tid);

  // Take the sequence lock at our snapshot; each failure means someone
  // committed, so revalidate and retry from their clock value. Each retry
  // is justified by another transaction's commit (strong progressiveness).
  uint64_t Expected = D.Snapshot;
  while (!Seq.compareAndSwap(Expected, D.Snapshot + 1)) {
    uint64_t Fresh = validate(D);
    if (Fresh == kValidateFailed)
      return slotAbort(Tid, AbortCause::AC_CommitValidation, kNoObject,
                       workOf(D));
    D.Snapshot = Fresh;
    Expected = D.Snapshot;
  }

  for (const WriteEntry &W : D.Writes)
    Values[W.Obj].write(W.Value);
  Seq.write(D.Snapshot + 2);
  return slotCommit(Tid);
}

void NorecTm::txAbort(ThreadId Tid) {
  assert(txActive(Tid) && "abort outside a transaction");
  resetDesc(Descs[Tid]);
  slotAbort(Tid, AbortCause::AC_User);
}
