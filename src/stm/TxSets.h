//===-- stm/TxSets.h - Transaction-local read/write sets -------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalable transaction-local metadata shared by every TM algorithm: a
/// dedup'ing read set and a last-writer-wins write set, both built on the
/// same primitive — an append-only log of object-keyed entries plus an
/// open-addressed hash index over it.
///
/// Design constraints, in order:
///
///  1. **Honest step accounting.** The paper's step metric counts base-
///     object (shared memory) accesses; all of this is process-local
///     computation and must stay off the shared-memory path entirely. The
///     containers never touch a BaseObject.
///  2. **O(1) membership at structure scale.** A 512-node list traversal
///     is a ~1025-read transaction; the previous linear-scan dedup and
///     write-set lookup made every t-access O(n) locally, adding an
///     accidental O(m²) term to *every* TM and muddying the Theorem 3
///     separation the repo exists to measure. The index restores
///     O(1)-amortized lookup/insert.
///  3. **Cheap small transactions.** Below kIndexThreshold entries the
///     log is scanned linearly and the index is not maintained at all —
///     a handful of compares beats hashing, and the common small
///     transaction allocates nothing extra.
///  4. **O(1) clear.** Descriptors are reused across transactions; the
///     index is invalidated by bumping a generation stamp, never by
///     zeroing its slots, so txBegin stays O(1) no matter how large the
///     previous transaction was.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_STM_TXSETS_H
#define PTM_STM_TXSETS_H

#include "runtime/Ids.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ptm {

/// One buffered t-write.
struct WriteEntry {
  ObjectId Obj;
  uint64_t Value;
};

namespace detail {

/// Append-only log of entries keyed by an ObjectId field named Obj, with
/// an open-addressed index that activates once the log outgrows linear
/// scanning. The index maps Obj -> log position; stale slots are ignored
/// via a generation stamp so clear() is O(1).
template <typename EntryT> class IndexedObjLog {
public:
  /// Log size below which membership is a linear scan and the index is
  /// left untouched. Small transactions pay zero hashing overhead.
  static constexpr size_t kIndexThreshold = 8;

  /// Position of \p Obj in the log, or npos.
  size_t find(ObjectId Obj) const {
    if (!indexActive()) {
      for (size_t I = 0, E = Entries.size(); I != E; ++I)
        if (Entries[I].Obj == Obj)
          return I;
      return npos;
    }
    size_t Mask = Slots.size() - 1;
    for (size_t Probe = hashObj(Obj) & Mask;; Probe = (Probe + 1) & Mask) {
      const Slot &S = Slots[Probe];
      if (S.Stamp != Generation)
        return npos; // Empty (or stale from a previous transaction).
      if (Entries[S.Pos].Obj == Obj)
        return S.Pos;
    }
  }

  /// Appends \p Entry, assuming the caller established its Obj is absent
  /// (via find). Grows/activates the index as needed.
  void append(const EntryT &Entry) {
    size_t Pos = Entries.size();
    Entries.push_back(Entry);
    if (Entries.size() <= kIndexThreshold)
      return; // Still in linear-scan territory.
    // On crossing the threshold the index holds nothing from this
    // generation (the first kIndexThreshold appends skipped it), so it
    // must be rebuilt from the whole log — likewise when the table is
    // over half full.
    if (Entries.size() == kIndexThreshold + 1 ||
        Entries.size() * 2 > Slots.size())
      rebuildIndex();
    else
      indexInsert(Entry.Obj, Pos);
  }

  /// O(1): drops the log and invalidates every index slot by stamp.
  void clear() {
    Entries.clear();
    ++Generation;
  }

  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }

  EntryT &operator[](size_t Pos) { return Entries[Pos]; }
  const EntryT &operator[](size_t Pos) const { return Entries[Pos]; }

  typename std::vector<EntryT>::const_iterator begin() const {
    return Entries.begin();
  }
  typename std::vector<EntryT>::const_iterator end() const {
    return Entries.end();
  }

  static constexpr size_t npos = ~size_t{0};

private:
  struct Slot {
    uint64_t Stamp = 0; ///< Valid only when equal to Generation.
    uint32_t Pos = 0;   ///< Log position of the entry living here.
  };

  bool indexActive() const {
    return !Slots.empty() && Entries.size() > kIndexThreshold;
  }

  /// Fibonacci-style mixer: ObjectIds are small dense integers, so they
  /// need spreading before masking.
  static size_t hashObj(ObjectId Obj) {
    uint64_t H = (static_cast<uint64_t>(Obj) + 1) * 0x9e3779b97f4a7c15ULL;
    return static_cast<size_t>(H >> 32);
  }

  void indexInsert(ObjectId Obj, size_t Pos) {
    size_t Mask = Slots.size() - 1;
    size_t Probe = hashObj(Obj) & Mask;
    while (Slots[Probe].Stamp == Generation)
      Probe = (Probe + 1) & Mask;
    Slots[Probe].Stamp = Generation;
    Slots[Probe].Pos = static_cast<uint32_t>(Pos);
  }

  void rebuildIndex() {
    size_t Want = 4 * kIndexThreshold;
    while (Want < Entries.size() * 4)
      Want *= 2;
    if (Want > Slots.size())
      Slots.assign(Want, Slot{});
    ++Generation; // Invalidate all current slots before refilling.
    for (size_t I = 0, E = Entries.size(); I != E; ++I)
      indexInsert(Entries[I].Obj, I);
  }

  std::vector<EntryT> Entries;
  std::vector<Slot> Slots; ///< Power-of-two open-addressed table.
  uint64_t Generation = 1; ///< Bumped on clear/rebuild; 0 = never valid.
};

} // namespace detail

/// Ordered redo log with last-writer-wins lookup, hash-indexed past a
/// small size. Iteration yields entries in first-write order (each object
/// appears once; later writes update in place).
class WriteSet {
public:
  /// Returns true and fills \p Value if \p Obj has a buffered write.
  bool lookup(ObjectId Obj, uint64_t &Value) const {
    size_t Pos = Log.find(Obj);
    if (Pos == decltype(Log)::npos)
      return false;
    Value = Log[Pos].Value;
    return true;
  }

  /// Buffers a write, overwriting any earlier write to the same object.
  void insertOrUpdate(ObjectId Obj, uint64_t Value) {
    size_t Pos = Log.find(Obj);
    if (Pos != decltype(Log)::npos) {
      Log[Pos].Value = Value;
      return;
    }
    Log.append({Obj, Value});
  }

  bool empty() const { return Log.empty(); }
  size_t size() const { return Log.size(); }
  void clear() { Log.clear(); }

  std::vector<WriteEntry>::const_iterator begin() const { return Log.begin(); }
  std::vector<WriteEntry>::const_iterator end() const { return Log.end(); }

private:
  detail::IndexedObjLog<WriteEntry> Log;
};

/// Dedup'ing read set: each object appears at most once, carrying one
/// PayloadT (an orec version, an observed value, ... — whatever the TM's
/// validation needs). Iteration yields entries in first-read order, which
/// is what incremental validation walks.
template <typename PayloadT> class ReadSet {
public:
  struct Entry {
    ObjectId Obj;
    PayloadT Payload;
  };

  /// The entry for \p Obj, or null if not yet read.
  Entry *find(ObjectId Obj) {
    size_t Pos = Log.find(Obj);
    return Pos == decltype(Log)::npos ? nullptr : &Log[Pos];
  }
  const Entry *find(ObjectId Obj) const {
    size_t Pos = Log.find(Obj);
    return Pos == decltype(Log)::npos ? nullptr : &Log[Pos];
  }

  bool contains(ObjectId Obj) const {
    return Log.find(Obj) != decltype(Log)::npos;
  }

  /// Records the first read of \p Obj. Caller must have checked find():
  /// the dedup decision (return cached payload, revalidate, ...) is
  /// TM-specific policy, not container policy.
  void insert(ObjectId Obj, const PayloadT &Payload) {
    assert(!contains(Obj) && "object already in the read set");
    Log.append({Obj, Payload});
  }

  bool empty() const { return Log.empty(); }
  size_t size() const { return Log.size(); }
  void clear() { Log.clear(); }

  /// Positional access in insertion order (for reverse walks, e.g. undo).
  const Entry &operator[](size_t Pos) const { return Log[Pos]; }

  typename std::vector<Entry>::const_iterator begin() const {
    return Log.begin();
  }
  typename std::vector<Entry>::const_iterator end() const { return Log.end(); }

private:
  detail::IndexedObjLog<Entry> Log;
};

} // namespace ptm

#endif // PTM_STM_TXSETS_H
