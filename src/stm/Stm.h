//===-- stm/Stm.h - Umbrella header for the STM library ---------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience umbrella: the public STM surface (interface, factory,
/// retry combinator, typed variables). Applications normally include just
/// this header.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_STM_STM_H
#define PTM_STM_STM_H

#include "stm/Atomically.h" // IWYU pragma: export
#include "stm/TVar.h"       // IWYU pragma: export
#include "stm/Tm.h"         // IWYU pragma: export

#endif // PTM_STM_STM_H
