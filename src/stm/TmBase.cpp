//===-- stm/TmBase.cpp - Shared TM implementation plumbing ----------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "stm/TmBase.h"

using namespace ptm;

TmBase::TmBase(unsigned ObjectCount, unsigned ThreadCount,
               const TmConfig &Config)
    : Values(ObjectCount), Slots(ThreadCount), NumObjects(ObjectCount),
      MaxThreads(ThreadCount), Cfg(Config),
      Cm(createContentionManager(Config.Cm, ThreadCount, ObjectCount)) {
  assert(ObjectCount > 0 && "TM needs at least one t-object");
  assert(ThreadCount > 0 && "TM needs at least one thread slot");
}

TmStats TmBase::stats() const {
  TmStats Total;
  for (const Slot &S : Slots) {
    // Quiescence contract (see Tm::stats()): with every owner quiesced the
    // relaxed sums are exact, which is what distinguishes this from the
    // live statsSnapshot() below.
    assert(!S.Active && "stats() requires quiescence: a transaction is "
                        "still live on some thread slot (use "
                        "statsSnapshot() for a live view)");
    Total.Commits += S.Commits.read();
    for (unsigned I = 0; I < kNumAbortCauses; ++I)
      Total.Aborts[I] += S.Aborts[I].read();
  }
  return Total;
}

TmStats TmBase::statsSnapshot() const {
  // Live path: each cell is a single-writer atomic, so relaxed reads are
  // race-free while transactions run. Epoch-snapshot consistency (see
  // obs/Metrics.h): per-cell exact, monotone across calls, equal to
  // stats() at quiescence.
  TmStats Total;
  for (const Slot &S : Slots) {
    Total.Commits += S.Commits.read();
    for (unsigned I = 0; I < kNumAbortCauses; ++I)
      Total.Aborts[I] += S.Aborts[I].read();
  }
  return Total;
}

TmStats TmBase::threadStats(ThreadId Tid) const {
  assert(Tid < MaxThreads && "thread id out of range");
  const Slot &S = Slots[Tid];
  assert(!S.Active && "threadStats() requires quiescence on that slot");
  TmStats Stats;
  Stats.Commits = S.Commits.read();
  for (unsigned I = 0; I < kNumAbortCauses; ++I)
    Stats.Aborts[I] = S.Aborts[I].read();
  return Stats;
}

void TmBase::resetStats() {
  for (Slot &S : Slots) {
    S.Commits.reset();
    for (unsigned I = 0; I < kNumAbortCauses; ++I)
      S.Aborts[I].reset();
  }
}
