//===-- stm/TmBase.cpp - Shared TM implementation plumbing ----------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "stm/TmBase.h"

using namespace ptm;

TmBase::TmBase(unsigned ObjectCount, unsigned ThreadCount)
    : Values(ObjectCount), Slots(ThreadCount), NumObjects(ObjectCount),
      MaxThreads(ThreadCount) {
  assert(ObjectCount > 0 && "TM needs at least one t-object");
  assert(ThreadCount > 0 && "TM needs at least one thread slot");
}

TmStats TmBase::stats() const {
  TmStats Total;
  for (const Slot &S : Slots) {
    // Quiescence contract (see Tm::stats()): the per-slot counters are
    // plain fields, so reading them while any thread runs a transaction
    // is a data race, not just a stale answer.
    assert(!S.Active && "stats() requires quiescence: a transaction is "
                        "still live on some thread slot");
    Total.Commits += S.Commits;
    for (unsigned I = 0; I < kNumAbortCauses; ++I)
      Total.Aborts[I] += S.Aborts[I];
  }
  return Total;
}

TmStats TmBase::threadStats(ThreadId Tid) const {
  assert(Tid < MaxThreads && "thread id out of range");
  const Slot &S = Slots[Tid];
  assert(!S.Active && "threadStats() requires quiescence on that slot");
  TmStats Stats;
  Stats.Commits = S.Commits;
  for (unsigned I = 0; I < kNumAbortCauses; ++I)
    Stats.Aborts[I] = S.Aborts[I];
  return Stats;
}

void TmBase::resetStats() {
  for (Slot &S : Slots) {
    S.Commits = 0;
    for (unsigned I = 0; I < kNumAbortCauses; ++I)
      S.Aborts[I] = 0;
  }
}
