//===-- stm/TmBase.cpp - Shared TM implementation plumbing ----------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "stm/TmBase.h"

using namespace ptm;

TmBase::TmBase(unsigned NumObjects, unsigned MaxThreads)
    : Values(NumObjects), Slots(MaxThreads), NumObjects(NumObjects),
      MaxThreads(MaxThreads) {
  assert(NumObjects > 0 && "TM needs at least one t-object");
  assert(MaxThreads > 0 && "TM needs at least one thread slot");
}

TmStats TmBase::stats() const {
  TmStats Total;
  for (const Slot &S : Slots) {
    Total.Commits += S.Commits;
    for (unsigned I = 0; I < kNumAbortCauses; ++I)
      Total.Aborts[I] += S.Aborts[I];
  }
  return Total;
}

void TmBase::resetStats() {
  for (Slot &S : Slots) {
    S.Commits = 0;
    for (unsigned I = 0; I < kNumAbortCauses; ++I)
      S.Aborts[I] = 0;
  }
}
