//===-- history/RecordingTm.h - History-recording TM wrapper ----*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Tm decorator that records the history exported by an execution:
/// every t-operation's invocation/response with a global ticket, per
/// transaction. The recorded history can then be fed to the opacity /
/// strict-serializability checkers — turning the paper's correctness
/// definitions into live integration tests against the real TMs.
///
/// Tickets come from a plain atomic counter (not a BaseObject): recording
/// is harness infrastructure, not part of the measured algorithm.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_HISTORY_RECORDINGTM_H
#define PTM_HISTORY_RECORDINGTM_H

#include "history/History.h"
#include "stm/Tm.h"
#include "support/Compiler.h"

#include <atomic>
#include <memory>

namespace ptm {

class RecordingTm final : public Tm {
public:
  explicit RecordingTm(std::unique_ptr<Tm> Inner);

  TmKind kind() const override { return M->kind(); }
  unsigned numObjects() const override { return M->numObjects(); }
  unsigned maxThreads() const override { return M->maxThreads(); }

  void txBegin(ThreadId Tid) override;
  void txBeginReadOnly(ThreadId Tid) override;
  bool hasAbortFreeReadOnly() const override {
    return M->hasAbortFreeReadOnly();
  }
  bool txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) override;
  bool txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) override;
  bool txCommit(ThreadId Tid) override;
  void txAbort(ThreadId Tid) override;
  bool txActive(ThreadId Tid) const override { return M->txActive(Tid); }
  AbortCause lastAbortCause(ThreadId Tid) const override {
    return M->lastAbortCause(Tid);
  }
  ObjectId lastConflictObject(ThreadId Tid) const override {
    return M->lastConflictObject(Tid);
  }
  unsigned lastAbortWork(ThreadId Tid) const override {
    return M->lastAbortWork(Tid);
  }
  TmConfig config() const override { return M->config(); }
  ContentionManager *contentionManager() override {
    return M->contentionManager();
  }
  const VersionClock *versionClock() const override {
    return M->versionClock();
  }
  uint64_t sample(ObjectId Obj) const override { return M->sample(Obj); }
  void init(ObjectId Obj, uint64_t Value) override { M->init(Obj, Value); }
  TmStats stats() const override { return M->stats(); }
  TmStats statsSnapshot() const override { return M->statsSnapshot(); }
  TmStats threadStats(ThreadId Tid) const override {
    return M->threadStats(Tid);
  }
  void resetStats() override { M->resetStats(); }

  /// Extracts the recorded history. Call only when all threads have
  /// finished (quiescent configuration).
  History takeHistory();

  Tm &innerTm() { return *M; }

private:
  uint64_t nextTicket() {
    return Ticket.fetch_add(1, std::memory_order_relaxed);
  }
  void finishTxn(ThreadId Tid, TxnOutcome Outcome);

  std::unique_ptr<Tm> M;
  std::atomic<uint64_t> Ticket{1};
  std::atomic<uint64_t> NextTxnId{1};

  /// Per-thread recording state: the transaction being built plus the
  /// thread's completed transactions (merged on takeHistory).
  struct alignas(PTM_CACHELINE_SIZE) Recorder {
    TxnRecord Current;
    bool Building = false;
    std::vector<TxnRecord> Finished;
  };
  std::vector<Recorder> Recorders;
};

} // namespace ptm

#endif // PTM_HISTORY_RECORDINGTM_H
