//===-- history/Checker.h - Opacity / strict serializability ----*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable versions of the paper's Section 3 correctness definitions.
///
/// *Strict serializability*: there is a legal t-sequential history over
/// the committed transactions that respects the real-time order ≺_RT.
/// The checker searches serialization orders by DFS with two prunings:
/// a candidate may be placed only when all its unplaced ≺_RT-predecessors
/// are placed, and a placement is abandoned as soon as one of the
/// transaction's reads is illegal against the running memory state.
///
/// *Opacity* (operational form): the committed subhistory is strictly
/// serializable AND every aborted transaction observed a consistent
/// snapshot — i.e. committed ∪ {the aborted transaction, with its writes
/// hidden from others} is strictly serializable. Aborted transactions
/// never publish writes in any of our TMs, so they cannot observe one
/// another, and checking them one at a time is equivalent to inserting
/// them all. This is the standard testing formulation of final-state
/// opacity; it is documented as such in DESIGN.md.
///
/// The search is exponential in the worst case (the problem is NP-hard);
/// a node budget bounds it, and exceeding the budget reports
/// CR_ResourceLimit rather than a verdict. Property tests keep histories
/// small enough that the budget is never hit in practice.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_HISTORY_CHECKER_H
#define PTM_HISTORY_CHECKER_H

#include "history/History.h"

#include <cstdint>

namespace ptm {

/// Verdict of a checker run.
enum class CheckResult {
  CR_Ok,            ///< A valid serialization exists.
  CR_Violation,     ///< No valid serialization exists.
  CR_ResourceLimit, ///< Search budget exhausted before a verdict.
};

/// Tunables for the serialization search.
struct CheckerOptions {
  /// Value every t-object holds before the first committed write.
  uint64_t InitialValue = 0;
  /// Maximum DFS nodes explored before giving up.
  uint64_t NodeBudget = 2'000'000;
};

/// Checks strict serializability of the committed subhistory of \p H.
CheckResult checkStrictSerializability(const History &H,
                                       const CheckerOptions &Options = {});

/// Checks opacity of \p H (committed serializability + per-aborted-
/// transaction snapshot consistency).
CheckResult checkOpacity(const History &H, const CheckerOptions &Options = {});

} // namespace ptm

#endif // PTM_HISTORY_CHECKER_H
