//===-- history/RecordingTm.cpp - History-recording TM wrapper ------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "history/RecordingTm.h"

#include <algorithm>
#include <cassert>

using namespace ptm;

RecordingTm::RecordingTm(std::unique_ptr<Tm> Inner)
    : M(std::move(Inner)), Recorders(M->maxThreads()) {}

void RecordingTm::txBegin(ThreadId Tid) {
  Recorder &R = Recorders[Tid];
  assert(!R.Building && "previous transaction still being recorded");
  R.Current = TxnRecord();
  R.Current.TxnId = NextTxnId.fetch_add(1, std::memory_order_relaxed);
  R.Current.Tid = Tid;
  // Two begin stamps with different consumers: FirstTicket at
  // invocation keeps intervals wide, which the overlap-based checks
  // (progressiveness, ≺_RT) need to stay permissive; BeginTicket after
  // the inner begin returns bounds snapshot acquisition tightly, which
  // the explorer's "began before that commit?" witness predicates need
  // — under a token interleaver the invocation stamp can be drawn
  // unboundedly before the first scheduled step, turning host-load
  // stalls into false overlaps if a predicate leans on it.
  R.Current.FirstTicket = nextTicket();
  R.Building = true;
  M->txBegin(Tid);
  R.Current.BeginTicket = nextTicket();
}

void RecordingTm::txBeginReadOnly(ThreadId Tid) {
  Recorder &R = Recorders[Tid];
  assert(!R.Building && "previous transaction still being recorded");
  R.Current = TxnRecord();
  R.Current.TxnId = NextTxnId.fetch_add(1, std::memory_order_relaxed);
  R.Current.Tid = Tid;
  // Same two-stamp scheme as txBegin; see the comment there.
  R.Current.FirstTicket = nextTicket();
  R.Building = true;
  M->txBeginReadOnly(Tid);
  R.Current.BeginTicket = nextTicket();
}

bool RecordingTm::txRead(ThreadId Tid, ObjectId Obj, uint64_t &Value) {
  Recorder &R = Recorders[Tid];
  assert(R.Building && "t-read outside a recorded transaction");
  bool Ok = M->txRead(Tid, Obj, Value);
  if (!Ok) {
    finishTxn(Tid, TxnOutcome::TX_Aborted);
    return false;
  }
  R.Current.Ops.push_back({TOpKind::TO_Read, Obj, Value});
  R.Current.LastTicket = nextTicket();
  return true;
}

bool RecordingTm::txWrite(ThreadId Tid, ObjectId Obj, uint64_t Value) {
  Recorder &R = Recorders[Tid];
  assert(R.Building && "t-write outside a recorded transaction");
  bool Ok = M->txWrite(Tid, Obj, Value);
  if (!Ok) {
    finishTxn(Tid, TxnOutcome::TX_Aborted);
    return false;
  }
  R.Current.Ops.push_back({TOpKind::TO_Write, Obj, Value});
  R.Current.LastTicket = nextTicket();
  return true;
}

bool RecordingTm::txCommit(ThreadId Tid) {
  assert(Recorders[Tid].Building && "tryCommit outside a transaction");
  bool Ok = M->txCommit(Tid);
  finishTxn(Tid, Ok ? TxnOutcome::TX_Committed : TxnOutcome::TX_Aborted);
  return Ok;
}

void RecordingTm::txAbort(ThreadId Tid) {
  assert(Recorders[Tid].Building && "abort outside a transaction");
  M->txAbort(Tid);
  finishTxn(Tid, TxnOutcome::TX_Aborted);
}

void RecordingTm::finishTxn(ThreadId Tid, TxnOutcome Outcome) {
  Recorder &R = Recorders[Tid];
  R.Current.Outcome = Outcome;
  R.Current.LastTicket = nextTicket();
  R.Finished.push_back(std::move(R.Current));
  R.Building = false;
}

History RecordingTm::takeHistory() {
  History H;
  for (Recorder &R : Recorders) {
    assert(!R.Building && "takeHistory while a transaction is live");
    for (TxnRecord &T : R.Finished)
      H.Txns.push_back(std::move(T));
    R.Finished.clear();
  }
  std::sort(H.Txns.begin(), H.Txns.end(),
            [](const TxnRecord &A, const TxnRecord &B) {
              return A.FirstTicket < B.FirstTicket;
            });
  return H;
}
