//===-- history/Checker.cpp - Opacity / strict serializability ------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "history/Checker.h"

#include <unordered_map>
#include <utility>
#include <vector>

using namespace ptm;

namespace {

/// DFS over serialization orders of a set of transactions, respecting
/// real-time precedence, with incremental legality checking against a
/// running memory state. One optional "phantom" transaction participates
/// in legality but never publishes its writes — this is how an aborted
/// transaction's snapshot consistency is checked for opacity.
class SerializationSearch {
public:
  SerializationSearch(const History &H, const CheckerOptions &Opts,
                      const TxnRecord *PhantomTxn)
      : Options(Opts), Phantom(PhantomTxn) {
    for (const TxnRecord &T : H.Txns)
      if (T.committed())
        Txns.push_back(&T);
    if (Phantom)
      Txns.push_back(Phantom);
  }

  CheckResult run() {
    size_t N = Txns.size();
    if (N > 63)
      return CheckResult::CR_ResourceLimit;

    Preds.assign(N, 0);
    for (size_t I = 0; I != N; ++I)
      for (size_t J = 0; J != N; ++J)
        if (I != J && Txns[I]->precedes(*Txns[J]))
          Preds[J] |= uint64_t{1} << I;

    Full = N == 0 ? 0 : (uint64_t{1} << N) - 1;
    Budget = Options.NodeBudget;
    LimitHit = false;
    Memory.clear();

    if (dfs(0))
      return CheckResult::CR_Ok;
    return LimitHit ? CheckResult::CR_ResourceLimit
                    : CheckResult::CR_Violation;
  }

private:
  /// (object, had-previous-value, previous-value) for rollback.
  struct UndoEntry {
    ObjectId Obj;
    bool HadValue;
    uint64_t Value;
  };

  bool dfs(uint64_t Mask) {
    if (Mask == Full)
      return true;
    size_t N = Txns.size();
    for (size_t I = 0; I != N; ++I) {
      uint64_t Bit = uint64_t{1} << I;
      if (Mask & Bit)
        continue;
      // Real-time pruning: all ≺_RT-predecessors must already be placed.
      if (Preds[I] & ~Mask)
        continue;
      if (Budget == 0) {
        LimitHit = true;
        return false;
      }
      --Budget;

      std::vector<UndoEntry> Undo;
      if (tryPlace(*Txns[I], /*ApplyWrites=*/Txns[I] != Phantom, Undo) &&
          dfs(Mask | Bit))
        return true;

      for (auto It = Undo.rbegin(), End = Undo.rend(); It != End; ++It) {
        if (It->HadValue)
          Memory[It->Obj] = It->Value;
        else
          Memory.erase(It->Obj);
      }
      if (LimitHit)
        return false;
    }
    return false;
  }

  /// Replays \p T against the running memory state (own writes visible to
  /// own later reads via an overlay). Returns false if some read is
  /// illegal. On success and if \p ApplyWrites, publishes the overlay and
  /// records rollback entries in \p Undo.
  bool tryPlace(const TxnRecord &T, bool ApplyWrites,
                std::vector<UndoEntry> &Undo) {
    std::unordered_map<ObjectId, uint64_t> Overlay;
    for (const TOp &Op : T.Ops) {
      if (Op.Kind == TOpKind::TO_Write) {
        Overlay[Op.Obj] = Op.Value;
        continue;
      }
      uint64_t Expect;
      if (auto It = Overlay.find(Op.Obj); It != Overlay.end()) {
        Expect = It->second;
      } else if (auto It2 = Memory.find(Op.Obj); It2 != Memory.end()) {
        Expect = It2->second;
      } else {
        Expect = Options.InitialValue;
      }
      if (Op.Value != Expect)
        return false;
    }
    if (!ApplyWrites)
      return true;
    for (const auto &[Obj, Val] : Overlay) {
      if (auto It = Memory.find(Obj); It != Memory.end())
        Undo.push_back({Obj, true, It->second});
      else
        Undo.push_back({Obj, false, 0});
      Memory[Obj] = Val;
    }
    return true;
  }

  const CheckerOptions &Options;
  const TxnRecord *Phantom;
  std::vector<const TxnRecord *> Txns;
  std::vector<uint64_t> Preds;
  uint64_t Full = 0;
  uint64_t Budget = 0;
  bool LimitHit = false;
  std::unordered_map<ObjectId, uint64_t> Memory;
};

} // namespace

CheckResult ptm::checkStrictSerializability(const History &H,
                                            const CheckerOptions &Options) {
  SerializationSearch Search(H, Options, /*Phantom=*/nullptr);
  return Search.run();
}

CheckResult ptm::checkOpacity(const History &H,
                              const CheckerOptions &Options) {
  // Committed subhistory first.
  CheckResult Committed = checkStrictSerializability(H, Options);
  if (Committed != CheckResult::CR_Ok)
    return Committed;

  // Every aborted transaction must have observed a consistent snapshot.
  // Aborted writes are never visible to others in any of our TMs, so the
  // transactions can be checked independently.
  bool Limited = false;
  for (const TxnRecord &T : H.Txns) {
    if (T.committed() || T.Ops.empty())
      continue;
    SerializationSearch Search(H, Options, /*Phantom=*/&T);
    CheckResult R = Search.run();
    if (R == CheckResult::CR_Violation)
      return R;
    if (R == CheckResult::CR_ResourceLimit)
      Limited = true;
  }
  return Limited ? CheckResult::CR_ResourceLimit : CheckResult::CR_Ok;
}
