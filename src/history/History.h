//===-- history/History.h - TM histories as data ----------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TM history in the sense of Section 2 of the paper: the sequence of
/// t-operation invocations and responses, reduced here to per-transaction
/// operation lists plus real-time intervals (ticket of the first
/// invocation, ticket of the last response). Two transactions are ordered
/// in real time iff one's interval ends before the other's begins —
/// exactly the paper's ≺_RT.
///
/// Histories come from two sources: recorded live executions (RecordingTm)
/// and hand-built fixtures in the checker unit tests (HistoryBuilder).
///
//===----------------------------------------------------------------------===//

#ifndef PTM_HISTORY_HISTORY_H
#define PTM_HISTORY_HISTORY_H

#include "runtime/Ids.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ptm {

/// Kinds of t-operation relevant to correctness checking.
enum class TOpKind {
  TO_Read,  ///< read_k(X) -> v
  TO_Write, ///< write_k(X, v) -> ok
};

/// One completed t-operation (reads that returned A_k are not recorded:
/// they return no value, so legality imposes nothing on them).
struct TOp {
  TOpKind Kind;
  ObjectId Obj;
  uint64_t Value; ///< Value returned (read) or written (write).
};

/// How a transaction ended.
enum class TxnOutcome {
  TX_Committed, ///< tryCommit returned C_k.
  TX_Aborted,   ///< Some operation (or tryCommit) returned A_k.
};

/// One transaction of a history.
struct TxnRecord {
  uint64_t TxnId = 0;
  ThreadId Tid = 0;
  uint64_t FirstTicket = 0; ///< Global time of the first invocation.
  uint64_t LastTicket = 0;  ///< Global time of the last response.
  /// Global time of the begin operation's RESPONSE — a strict upper
  /// bound on when the transaction acquired its snapshot. FirstTicket is
  /// stamped at begin *invocation*, which under a token interleaver can
  /// be unboundedly earlier than the first scheduled step; interval
  /// checks (overlap, ≺_RT) want that wide, permissive stamp, but
  /// predicates asking "did this transaction begin before that commit?"
  /// (the explorer's witness signatures) must use this tight one or host
  /// load turns scheduling stalls into false overlaps.
  uint64_t BeginTicket = 0;
  TxnOutcome Outcome = TxnOutcome::TX_Aborted;
  std::vector<TOp> Ops;

  bool committed() const { return Outcome == TxnOutcome::TX_Committed; }

  /// True if the transaction performed no writes.
  bool readOnly() const {
    for (const TOp &Op : Ops)
      if (Op.Kind == TOpKind::TO_Write)
        return false;
    return true;
  }

  /// True iff this transaction's interval ends before \p Other begins
  /// (the paper's ≺_RT).
  bool precedes(const TxnRecord &Other) const {
    return LastTicket < Other.FirstTicket;
  }
};

/// A complete history: every transaction is t-complete (our recorders join
/// all threads before extracting).
struct History {
  std::vector<TxnRecord> Txns;

  size_t numCommitted() const {
    size_t N = 0;
    for (const TxnRecord &T : Txns)
      N += T.committed();
    return N;
  }
};

/// Fluent fixture builder for checker tests. Tickets advance by one per
/// recorded event, so interleaving builder calls interleaves the
/// transactions in real time.
class HistoryBuilder {
public:
  /// Starts a transaction and returns its handle (index).
  size_t begin(ThreadId Tid);

  HistoryBuilder &read(size_t Txn, ObjectId Obj, uint64_t Value);
  HistoryBuilder &write(size_t Txn, ObjectId Obj, uint64_t Value);
  HistoryBuilder &commit(size_t Txn);
  HistoryBuilder &abort(size_t Txn);

  /// Finishes the build. All transactions must have been completed.
  History take();

private:
  uint64_t nextTicket() { return Ticket++; }

  uint64_t Ticket = 1;
  std::vector<TxnRecord> Txns;
  std::vector<bool> Open;
};

} // namespace ptm

#endif // PTM_HISTORY_HISTORY_H
