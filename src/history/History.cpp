//===-- history/History.cpp - TM histories as data -------------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "history/History.h"

#include <cassert>

using namespace ptm;

size_t HistoryBuilder::begin(ThreadId Tid) {
  TxnRecord T;
  T.TxnId = Txns.size() + 1;
  T.Tid = Tid;
  T.FirstTicket = nextTicket();
  // Fixtures have no token-wait skew: the tight begin bound coincides
  // with the invocation stamp.
  T.BeginTicket = T.FirstTicket;
  Txns.push_back(std::move(T));
  Open.push_back(true);
  return Txns.size() - 1;
}

HistoryBuilder &HistoryBuilder::read(size_t Txn, ObjectId Obj,
                                     uint64_t Value) {
  assert(Txn < Txns.size() && Open[Txn] && "read on a finished transaction");
  Txns[Txn].Ops.push_back({TOpKind::TO_Read, Obj, Value});
  Txns[Txn].LastTicket = nextTicket();
  return *this;
}

HistoryBuilder &HistoryBuilder::write(size_t Txn, ObjectId Obj,
                                      uint64_t Value) {
  assert(Txn < Txns.size() && Open[Txn] && "write on a finished transaction");
  Txns[Txn].Ops.push_back({TOpKind::TO_Write, Obj, Value});
  Txns[Txn].LastTicket = nextTicket();
  return *this;
}

HistoryBuilder &HistoryBuilder::commit(size_t Txn) {
  assert(Txn < Txns.size() && Open[Txn] && "commit on finished transaction");
  Txns[Txn].Outcome = TxnOutcome::TX_Committed;
  Txns[Txn].LastTicket = nextTicket();
  Open[Txn] = false;
  return *this;
}

HistoryBuilder &HistoryBuilder::abort(size_t Txn) {
  assert(Txn < Txns.size() && Open[Txn] && "abort on finished transaction");
  Txns[Txn].Outcome = TxnOutcome::TX_Aborted;
  Txns[Txn].LastTicket = nextTicket();
  Open[Txn] = false;
  return *this;
}

History HistoryBuilder::take() {
  for (size_t I = 0, E = Open.size(); I != E; ++I) {
    (void)I;
    assert(!Open[I] && "unfinished transaction in history");
  }
  History H;
  H.Txns = std::move(Txns);
  Txns.clear();
  Open.clear();
  return H;
}
