//===-- ds/TxSet.cpp - Transactional sorted linked-list set ---------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ds/TxSet.h"

using namespace ptm;
using namespace ptm::ds;

TxSet::TxSet(Tm &Memory, ObjectId RegionBase, uint64_t KeyCapacity)
    : M(&Memory), Head(RegionBase),
      Alloc(Memory, RegionBase + 1, kNodeWords, KeyCapacity) {
  M->init(Head, kNil);
}

void TxSet::clear() {
  M->init(Head, kNil);
  Alloc.reset();
}

TxSet::Position TxSet::locate(TxRef &Tx, uint64_t Key) {
  ObjectId PrevNextObj = headObj();
  uint64_t Cur = Tx.readOr(PrevNextObj, kNil);
  while (!Tx.failed() && Cur != kNil) {
    if (Tx.readOr(keyObj(Cur), 0) >= Key)
      break;
    PrevNextObj = nextObj(Cur);
    Cur = Tx.readOr(PrevNextObj, kNil);
  }
  return {PrevNextObj, Cur};
}

bool TxSet::insert(TxRef &Tx, uint64_t Key, bool *OutOfMemory) {
  if (OutOfMemory)
    *OutOfMemory = false;
  Position Pos = locate(Tx, Key);
  if (Tx.failed())
    return false;
  if (Pos.Node != kNil && Tx.readOr(keyObj(Pos.Node), 0) == Key)
    return false; // Already present.
  uint64_t Node = Alloc.allocate(Tx);
  if (Node == kNil) {
    if (OutOfMemory && !Tx.failed())
      *OutOfMemory = true;
    return false;
  }
  return Tx.write(keyObj(Node), Key) && Tx.write(nextObj(Node), Pos.Node) &&
         Tx.write(Pos.PrevNextObj, Node);
}

bool TxSet::remove(TxRef &Tx, uint64_t Key) {
  Position Pos = locate(Tx, Key);
  if (Tx.failed() || Pos.Node == kNil)
    return false;
  if (Tx.readOr(keyObj(Pos.Node), 0) != Key)
    return false;
  uint64_t Next = Tx.readOr(nextObj(Pos.Node), kNil);
  return Tx.write(Pos.PrevNextObj, Next) && Alloc.release(Tx, Pos.Node);
}

bool TxSet::contains(TxRef &Tx, uint64_t Key) {
  Position Pos = locate(Tx, Key);
  return !Tx.failed() && Pos.Node != kNil &&
         Tx.readOr(keyObj(Pos.Node), 0) == Key;
}

uint64_t TxSet::size(TxRef &Tx) {
  uint64_t Count = 0;
  for (uint64_t Cur = Tx.readOr(headObj(), kNil);
       !Tx.failed() && Cur != kNil; Cur = Tx.readOr(nextObj(Cur), kNil))
    ++Count;
  return Count;
}

bool TxSet::insert(ThreadId Tid, uint64_t Key, bool *OutOfMemory) {
  bool Inserted = false;
  atomically(*M, Tid, [&](TxRef &Tx) {
    Inserted = insert(Tx, Key, OutOfMemory);
  });
  return Inserted;
}

bool TxSet::remove(ThreadId Tid, uint64_t Key) {
  bool Removed = false;
  atomically(*M, Tid, [&](TxRef &Tx) { Removed = remove(Tx, Key); });
  return Removed;
}

bool TxSet::contains(ThreadId Tid, uint64_t Key) {
  bool Found = false;
  atomically(*M, Tid, [&](TxRef &Tx) { Found = contains(Tx, Key); });
  return Found;
}

std::vector<uint64_t> TxSet::sampleKeys() const {
  std::vector<uint64_t> Keys;
  for (uint64_t Cur = M->sample(headObj()); Cur != kNil;
       Cur = M->sample(nextObj(Cur)))
    Keys.push_back(M->sample(keyObj(Cur)));
  return Keys;
}
