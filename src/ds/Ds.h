//===-- ds/Ds.h - Umbrella header for the data-structure library -*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience umbrella for the transactional data-structure library:
/// the node allocator (TxAlloc) and the structures built on it — sorted
/// linked-list set (TxSet), bucketed hash map (TxMap), bounded FIFO
/// (TxQueue) and striped counter (TxCounter). All are generic over any
/// Tm via the atomically()/TxRef surface; each documents how to size the
/// TM's object array through its static objectsNeeded(). See DESIGN.md
/// for how list length maps onto the paper's read-set size m.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_DS_DS_H
#define PTM_DS_DS_H

#include "ds/TxAlloc.h"   // IWYU pragma: export
#include "ds/TxCounter.h" // IWYU pragma: export
#include "ds/TxMap.h"     // IWYU pragma: export
#include "ds/TxQueue.h"   // IWYU pragma: export
#include "ds/TxSet.h"     // IWYU pragma: export

#endif // PTM_DS_DS_H
