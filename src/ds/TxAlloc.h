//===-- ds/TxAlloc.h - Transactional node allocator -------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A transactional bump-plus-free-list allocator carving fixed-size nodes
/// out of a contiguous region of a Tm's object array. Allocation and
/// release are ordinary transactional reads/writes, so they compose with
/// the caller's transaction: an aborted insert rolls back its allocation,
/// a committed remove durably recycles the node. This is what lets the
/// data structures in src/ds/ run unbounded churn in bounded space,
/// unlike the leak-forever bump pointer of the original examples.
///
/// Region layout (all offsets relative to the region base):
///   word 0            bump cursor: nodes [0, bump) have been handed out
///   word 1            free-list head (node handle, or kNil when empty)
///   word 2 + N*w + i  word i of node N (w = wordsPerNode())
///
/// A released node's word 0 is reused as its free-list link, so node
/// contents are unspecified after release; allocate() hands nodes back
/// without clearing them and callers initialize every word they use.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_DS_TXALLOC_H
#define PTM_DS_TXALLOC_H

#include "stm/Atomically.h"
#include "stm/Tm.h"

namespace ptm {
namespace ds {

/// Sentinel "no node" handle shared by all src/ds/ structures (also used
/// as the null next-pointer in linked nodes).
inline constexpr uint64_t kNil = ~uint64_t{0};

class TxAlloc {
public:
  /// Manages \p NodeCapacity nodes of \p NodeWords words each inside
  /// \p Memory, starting at object \p RegionBase. The region must span
  /// objectsNeeded(NodeWords, NodeCapacity) valid ObjectIds. Resets the
  /// region (quiescently) to the all-free state.
  TxAlloc(Tm &Memory, ObjectId RegionBase, unsigned NodeWords,
          uint64_t NodeCapacity);

  /// Number of t-objects a region with this geometry occupies.
  static unsigned objectsNeeded(unsigned NodeWords, uint64_t NodeCapacity) {
    return static_cast<unsigned>(kMetaWords + NodeWords * NodeCapacity);
  }

  /// Fixed metadata words at the head of every region (bump cursor +
  /// free-list head); callers sizing very large regions pre-check
  /// against overflow with this before calling objectsNeeded.
  static constexpr unsigned metaWords() { return kMetaWords; }

  /// Quiescent reset to "everything free, nothing ever handed out".
  void reset();

  /// Allocates one node inside \p Tx: pops the free list if possible,
  /// bumps otherwise. Returns the node handle, or kNil when the region is
  /// exhausted or the transaction failed (check Tx.failed()).
  uint64_t allocate(TxRef &Tx);

  /// Returns \p Node to the free list inside \p Tx (clobbering its word
  /// 0 with the free-list link). False once the transaction failed.
  /// Releasing a node that is already free is undefined (it would tie the
  /// free list into a cycle); debug builds walk the list and assert.
  bool release(TxRef &Tx, uint64_t Node);

  /// The t-object holding word \p Word of node \p Node.
  ObjectId wordObj(uint64_t Node, unsigned Word) const {
    return Base + kMetaWords + static_cast<ObjectId>(Node * Words + Word);
  }

  uint64_t nodeCapacity() const { return Capacity; }
  unsigned wordsPerNode() const { return Words; }

  /// Quiescent introspection (setup/teardown/verification only).
  uint64_t sampleEverAllocated() const { return M->sample(Base + kBumpWord); }
  uint64_t sampleFreeCount() const;
  /// Nodes currently held by callers: allocations minus free-list length.
  uint64_t sampleLiveCount() const {
    return sampleEverAllocated() - sampleFreeCount();
  }

private:
  static constexpr unsigned kBumpWord = 0;
  static constexpr unsigned kFreeWord = 1;
  static constexpr unsigned kMetaWords = 2;

  ObjectId bumpObj() const { return Base + kBumpWord; }
  ObjectId freeObj() const { return Base + kFreeWord; }

  Tm *M;
  ObjectId Base;
  unsigned Words;
  uint64_t Capacity;
};

} // namespace ds
} // namespace ptm

#endif // PTM_DS_TXALLOC_H
