//===-- ds/TxQueue.cpp - Transactional bounded FIFO queue -----------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ds/TxQueue.h"

#include <cassert>

using namespace ptm;
using namespace ptm::ds;

TxQueue::TxQueue(Tm &Memory, ObjectId RegionBase, uint64_t SlotCapacity)
    : M(&Memory), Base(RegionBase), Capacity(SlotCapacity) {
  assert(SlotCapacity > 0 && "a queue needs at least one slot");
  clear();
}

void TxQueue::clear() {
  M->init(headObj(), 0);
  M->init(tailObj(), 0);
}

bool TxQueue::enqueue(TxRef &Tx, uint64_t Item) {
  uint64_t Head = Tx.readOr(headObj(), 0);
  uint64_t Tail = Tx.readOr(tailObj(), 0);
  if (Tx.failed() || Tail - Head >= Capacity)
    return false; // Full (or transaction dead).
  return Tx.write(slotObj(Tail), Item) && Tx.write(tailObj(), Tail + 1);
}

bool TxQueue::dequeue(TxRef &Tx, uint64_t &Item) {
  uint64_t Head = Tx.readOr(headObj(), 0);
  uint64_t Tail = Tx.readOr(tailObj(), 0);
  if (Tx.failed() || Head == Tail)
    return false; // Empty (or transaction dead).
  return Tx.read(slotObj(Head), Item) && Tx.write(headObj(), Head + 1);
}

uint64_t TxQueue::size(TxRef &Tx) {
  uint64_t Head = Tx.readOr(headObj(), 0);
  uint64_t Tail = Tx.readOr(tailObj(), 0);
  return Tx.failed() ? 0 : Tail - Head;
}

bool TxQueue::tryEnqueue(ThreadId Tid, uint64_t Item) {
  return atomically(*M, Tid, [&](TxRef &Tx) {
    if (!enqueue(Tx, Item) && !Tx.failed())
      Tx.userAbort(); // Full: abandon without side effects.
  });
}

bool TxQueue::tryDequeue(ThreadId Tid, uint64_t &Item) {
  uint64_t Out = 0;
  bool Ok = atomically(*M, Tid, [&](TxRef &Tx) {
    if (!dequeue(Tx, Out) && !Tx.failed())
      Tx.userAbort(); // Empty.
  });
  if (Ok)
    Item = Out;
  return Ok;
}
