//===-- ds/TxMap.cpp - Transactional bucketed hash map --------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ds/TxMap.h"

#include <cassert>

using namespace ptm;
using namespace ptm::ds;

namespace {

/// SplitMix64-style finalizer so adjacent keys land in distinct buckets.
uint64_t mixKey(uint64_t Key) {
  Key = (Key ^ (Key >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Key = (Key ^ (Key >> 27)) * 0x94d049bb133111ebULL;
  return Key ^ (Key >> 31);
}

} // namespace

TxMap::TxMap(Tm &Memory, ObjectId RegionBase, unsigned BucketCount,
             uint64_t KeyCapacity)
    : M(&Memory), Base(RegionBase), Buckets(BucketCount),
      Alloc(Memory, RegionBase + BucketCount, kNodeWords, KeyCapacity) {
  assert(BucketCount > 0 && "a map needs at least one bucket");
  for (unsigned B = 0; B < Buckets; ++B)
    M->init(Base + B, kNil);
}

void TxMap::clear() {
  for (unsigned B = 0; B < Buckets; ++B)
    M->init(Base + B, kNil);
  Alloc.reset();
}

ObjectId TxMap::bucketObj(uint64_t Key) const {
  return Base + static_cast<ObjectId>(mixKey(Key) % Buckets);
}

TxMap::Position TxMap::locate(TxRef &Tx, uint64_t Key) {
  ObjectId PrevNextObj = bucketObj(Key);
  uint64_t Cur = Tx.readOr(PrevNextObj, kNil);
  while (!Tx.failed() && Cur != kNil) {
    if (Tx.readOr(keyObj(Cur), 0) == Key)
      break;
    PrevNextObj = nextObj(Cur);
    Cur = Tx.readOr(PrevNextObj, kNil);
  }
  return {PrevNextObj, Cur};
}

bool TxMap::put(TxRef &Tx, uint64_t Key, uint64_t Value, bool *Inserted,
                bool *OutOfMemory) {
  if (Inserted)
    *Inserted = false;
  if (OutOfMemory)
    *OutOfMemory = false;
  Position Pos = locate(Tx, Key);
  if (Tx.failed())
    return false;
  if (Pos.Node != kNil)
    return Tx.write(valueObj(Pos.Node), Value); // Update in place.
  uint64_t Node = Alloc.allocate(Tx);
  if (Node == kNil) {
    if (OutOfMemory && !Tx.failed())
      *OutOfMemory = true;
    return false;
  }
  // Link at the bucket head: the chain is unordered.
  ObjectId BucketHead = bucketObj(Key);
  uint64_t OldHead = Tx.readOr(BucketHead, kNil);
  if (!(Tx.write(keyObj(Node), Key) && Tx.write(valueObj(Node), Value) &&
        Tx.write(nextObj(Node), OldHead) && Tx.write(BucketHead, Node)))
    return false;
  if (Inserted)
    *Inserted = true;
  return true;
}

bool TxMap::get(TxRef &Tx, uint64_t Key, uint64_t &Value) {
  Position Pos = locate(Tx, Key);
  if (Tx.failed() || Pos.Node == kNil)
    return false;
  return Tx.read(valueObj(Pos.Node), Value);
}

bool TxMap::erase(TxRef &Tx, uint64_t Key) {
  Position Pos = locate(Tx, Key);
  if (Tx.failed() || Pos.Node == kNil)
    return false;
  uint64_t Next = Tx.readOr(nextObj(Pos.Node), kNil);
  return Tx.write(Pos.PrevNextObj, Next) && Alloc.release(Tx, Pos.Node);
}

uint64_t TxMap::size(TxRef &Tx) {
  uint64_t Count = 0;
  for (unsigned B = 0; B < Buckets && !Tx.failed(); ++B)
    for (uint64_t Cur = Tx.readOr(Base + B, kNil);
         !Tx.failed() && Cur != kNil; Cur = Tx.readOr(nextObj(Cur), kNil))
      ++Count;
  return Count;
}

bool TxMap::put(ThreadId Tid, uint64_t Key, uint64_t Value, bool *Inserted,
                bool *OutOfMemory) {
  bool Ok = false;
  atomically(*M, Tid, [&](TxRef &Tx) {
    Ok = put(Tx, Key, Value, Inserted, OutOfMemory);
  });
  return Ok;
}

bool TxMap::get(ThreadId Tid, uint64_t Key, uint64_t &Value) {
  bool Found = false;
  uint64_t Out = 0;
  atomically(*M, Tid, [&](TxRef &Tx) { Found = get(Tx, Key, Out); });
  if (Found)
    Value = Out;
  return Found;
}

bool TxMap::erase(ThreadId Tid, uint64_t Key) {
  bool Removed = false;
  atomically(*M, Tid, [&](TxRef &Tx) { Removed = erase(Tx, Key); });
  return Removed;
}

std::vector<std::pair<uint64_t, uint64_t>> TxMap::sampleEntries() const {
  std::vector<std::pair<uint64_t, uint64_t>> Entries;
  for (unsigned B = 0; B < Buckets; ++B)
    for (uint64_t Cur = M->sample(Base + B); Cur != kNil;
         Cur = M->sample(nextObj(Cur)))
      Entries.emplace_back(M->sample(keyObj(Cur)), M->sample(valueObj(Cur)));
  return Entries;
}
