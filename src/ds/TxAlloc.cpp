//===-- ds/TxAlloc.cpp - Transactional node allocator ---------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ds/TxAlloc.h"

#include <cassert>

using namespace ptm;
using namespace ptm::ds;

TxAlloc::TxAlloc(Tm &Memory, ObjectId RegionBase, unsigned NodeWords,
                 uint64_t NodeCapacity)
    : M(&Memory), Base(RegionBase), Words(NodeWords), Capacity(NodeCapacity) {
  assert(NodeWords > 0 && "nodes must have at least one word");
  assert(Base + objectsNeeded(NodeWords, NodeCapacity) <= M->numObjects() &&
         "allocator region exceeds the TM's object array");
  reset();
}

void TxAlloc::reset() {
  M->init(bumpObj(), 0);
  M->init(freeObj(), kNil);
}

uint64_t TxAlloc::allocate(TxRef &Tx) {
  uint64_t Free = Tx.readOr(freeObj(), kNil);
  if (Tx.failed())
    return kNil;
  if (Free != kNil) {
    uint64_t Next = Tx.readOr(wordObj(Free, 0), kNil);
    if (!Tx.write(freeObj(), Next))
      return kNil;
    return Free;
  }
  uint64_t Bump = Tx.readOr(bumpObj(), 0);
  if (Tx.failed() || Bump >= Capacity)
    return kNil; // Region exhausted (or transaction dead).
  if (!Tx.write(bumpObj(), Bump + 1))
    return kNil;
  return Bump;
}

bool TxAlloc::release(TxRef &Tx, uint64_t Node) {
  assert(Node < Capacity && "releasing a handle outside the region");
  uint64_t Free = Tx.readOr(freeObj(), kNil);
#ifndef NDEBUG
  // Debug-mode double-release check: a node already on the free list must
  // not be pushed again — its word 0 would be clobbered with a link to
  // itself (directly or via the new head), tying the free list into a
  // cycle that a later sampleFreeCount()/allocate() walks forever. The
  // walk is transactional, so it observes this transaction's own releases
  // and costs shared-memory steps only in debug builds.
  for (uint64_t Cur = Free; Cur != kNil && !Tx.failed();
       Cur = Tx.readOr(wordObj(Cur, 0), kNil))
    assert(Cur != Node && "double release: node is already on the free list");
#endif
  return Tx.write(wordObj(Node, 0), Free) && Tx.write(freeObj(), Node);
}

uint64_t TxAlloc::sampleFreeCount() const {
  uint64_t Count = 0;
  for (uint64_t Node = M->sample(freeObj()); Node != kNil;
       Node = M->sample(wordObj(Node, 0)))
    ++Count;
  return Count;
}
