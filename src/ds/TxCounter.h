//===-- ds/TxCounter.h - Transactional striped counter ----------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A striped counter over any Tm: increments hash to one of S stripe
/// cells (disjoint for distinct hints, so a progressive TM commits
/// contention-free), while a precise read sums all S stripes in one
/// transaction — deliberately an S-sized read set, the counter-shaped
/// miniature of the paper's m-read transaction. Deltas are two's-
/// complement int64 riding in the 64-bit cells, so decrements work.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_DS_TXCOUNTER_H
#define PTM_DS_TXCOUNTER_H

#include "stm/Atomically.h"
#include "stm/TVar.h"
#include "stm/Tm.h"

#include <vector>

namespace ptm {
namespace ds {

class TxCounter {
public:
  /// Builds a zeroed counter of \p StripeCount stripes over \p Memory at
  /// \p RegionBase (one t-object per stripe).
  TxCounter(Tm &Memory, ObjectId RegionBase, unsigned StripeCount);

  static unsigned objectsNeeded(unsigned StripeCount) { return StripeCount; }

  /// Quiescent reset to zero.
  void clear();

  //===--- transactional core (compose within a caller transaction) ------===//

  /// Adds \p Delta to the stripe selected by \p Hint (callers typically
  /// pass their ThreadId so concurrent increments stay disjoint). False
  /// once the transaction failed.
  bool add(TxRef &Tx, ThreadId Hint, int64_t Delta);

  /// Precise sum of all stripes — an S-read transaction.
  bool read(TxRef &Tx, int64_t &Sum);

  //===--- one-transaction conveniences ----------------------------------===//

  bool add(ThreadId Tid, int64_t Delta);
  int64_t read(ThreadId Tid);

  //===--- quiescent introspection ---------------------------------------===//

  int64_t sampleTotal() const;
  unsigned stripeCount() const { return static_cast<unsigned>(Stripes.size()); }
  Tm &tm() const { return *M; }

private:
  Tm *M;
  std::vector<TVar<int64_t>> Stripes;
};

} // namespace ds
} // namespace ptm

#endif // PTM_DS_TXCOUNTER_H
