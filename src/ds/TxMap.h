//===-- ds/TxMap.h - Transactional bucketed hash map ------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-bucket-count separate-chaining hash map of 64-bit keys to
/// 64-bit values over any Tm, with chain nodes recycled through TxAlloc.
/// Hashing spreads keys over the buckets, so the per-operation read set is
/// one bucket head plus the chain behind it — short chains keep the
/// Theorem 3 validation cost flat where TxSet makes it grow, which is
/// exactly the contrast the ds_* benchmarks sweep.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_DS_TXMAP_H
#define PTM_DS_TXMAP_H

#include "ds/TxAlloc.h"

#include <utility>
#include <vector>

namespace ptm {
namespace ds {

class TxMap {
public:
  /// Builds an empty map over \p Memory at \p RegionBase with
  /// \p BucketCount chains and room for \p KeyCapacity entries. The
  /// region must span objectsNeeded(BucketCount, KeyCapacity) ObjectIds.
  TxMap(Tm &Memory, ObjectId RegionBase, unsigned BucketCount,
        uint64_t KeyCapacity);

  static unsigned objectsNeeded(unsigned BucketCount, uint64_t KeyCapacity) {
    return BucketCount + TxAlloc::objectsNeeded(kNodeWords, KeyCapacity);
  }

  /// t-objects per entry node; callers sizing very large regions (the KV
  /// shards) use this to pre-check that objectsNeeded cannot overflow.
  static constexpr unsigned entryWords() { return kNodeWords; }

  /// Quiescent reset to the empty map.
  void clear();

  //===--- transactional core (compose within a caller transaction) ------===//

  /// Inserts or updates \p Key -> \p Value. True on success; *Inserted
  /// (when non-null) tells whether the key was new. False on region
  /// exhaustion (*OutOfMemory set) or once the transaction failed.
  bool put(TxRef &Tx, uint64_t Key, uint64_t Value, bool *Inserted = nullptr,
           bool *OutOfMemory = nullptr);

  /// Looks up \p Key; true iff present (then *Value holds the mapping).
  bool get(TxRef &Tx, uint64_t Key, uint64_t &Value);

  /// Removes \p Key and recycles its node; true iff it was present.
  bool erase(TxRef &Tx, uint64_t Key);

  /// Number of entries, by traversing every chain.
  uint64_t size(TxRef &Tx);

  //===--- one-transaction conveniences (retry contention internally) ----===//

  bool put(ThreadId Tid, uint64_t Key, uint64_t Value,
           bool *Inserted = nullptr, bool *OutOfMemory = nullptr);
  bool get(ThreadId Tid, uint64_t Key, uint64_t &Value);
  bool erase(ThreadId Tid, uint64_t Key);

  //===--- quiescent introspection ---------------------------------------===//

  /// All (key, value) entries, in bucket-then-chain order.
  std::vector<std::pair<uint64_t, uint64_t>> sampleEntries() const;

  uint64_t sampleLiveNodes() const { return Alloc.sampleLiveCount(); }
  unsigned bucketCount() const { return Buckets; }
  TxAlloc &allocator() { return Alloc; }
  Tm &tm() const { return *M; }

private:
  static constexpr unsigned kNodeWords = 3; // key, value, next
  static constexpr unsigned kKeyWord = 0;
  static constexpr unsigned kValueWord = 1;
  static constexpr unsigned kNextWord = 2;

  ObjectId bucketObj(uint64_t Key) const;
  ObjectId keyObj(uint64_t Node) const { return Alloc.wordObj(Node, kKeyWord); }
  ObjectId valueObj(uint64_t Node) const {
    return Alloc.wordObj(Node, kValueWord);
  }
  ObjectId nextObj(uint64_t Node) const {
    return Alloc.wordObj(Node, kNextWord);
  }

  /// Chain walk within Key's bucket: {object holding the incoming "next"
  /// pointer, handle of the node with exactly this key (or kNil)}.
  struct Position {
    ObjectId PrevNextObj;
    uint64_t Node;
  };
  Position locate(TxRef &Tx, uint64_t Key);

  Tm *M;
  ObjectId Base;
  unsigned Buckets;
  TxAlloc Alloc;
};

} // namespace ds
} // namespace ptm

#endif // PTM_DS_TXMAP_H
