//===-- ds/TxSet.h - Transactional sorted linked-list set -------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sorted singly-linked-list set of 64-bit keys over any Tm, written
/// exactly like its sequential version — traverse, link, unlink — with
/// node storage managed by TxAlloc so removed nodes are recycled instead
/// of leaked. This is the repository's workhorse for the paper's Theorem
/// 3: a contains() over an n-node list performs 2n+1 t-reads, so the list
/// length *is* the paper's m, and per-operation traversal cost grows
/// quadratically on incremental-validation TMs (orec-incr/orec-eager) but
/// linearly on the escape-hatch TMs (tl2/norec/tlrw/glock).
///
/// Two API levels:
///  * TxRef methods compose inside a caller-owned transaction (several
///    structure operations can form one atomic step);
///  * ThreadId conveniences wrap one operation in atomically() with
///    contention retry, the common case for applications.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_DS_TXSET_H
#define PTM_DS_TXSET_H

#include "ds/TxAlloc.h"

#include <vector>

namespace ptm {
namespace ds {

class TxSet {
public:
  /// Builds an empty set over \p Memory in the region starting at
  /// \p RegionBase, able to hold up to \p KeyCapacity keys. The region
  /// must span objectsNeeded(KeyCapacity) valid ObjectIds.
  TxSet(Tm &Memory, ObjectId RegionBase, uint64_t KeyCapacity);

  static unsigned objectsNeeded(uint64_t KeyCapacity) {
    return 1 + TxAlloc::objectsNeeded(kNodeWords, KeyCapacity);
  }

  /// Quiescent reset to the empty set.
  void clear();

  //===--- transactional core (compose within a caller transaction) ------===//

  /// Inserts \p Key; true iff it was absent and is now linked. False for
  /// duplicates, on region exhaustion (*OutOfMemory set when non-null),
  /// and once the transaction failed (check Tx.failed()).
  bool insert(TxRef &Tx, uint64_t Key, bool *OutOfMemory = nullptr);

  /// Unlinks \p Key and recycles its node; true iff it was present.
  bool remove(TxRef &Tx, uint64_t Key);

  /// Membership test; the full-list miss probe is the Theorem 3 workload.
  bool contains(TxRef &Tx, uint64_t Key);

  /// Number of keys, by transactional traversal (an m-sized read set).
  uint64_t size(TxRef &Tx);

  //===--- one-transaction conveniences (retry contention internally) ----===//

  bool insert(ThreadId Tid, uint64_t Key, bool *OutOfMemory = nullptr);
  bool remove(ThreadId Tid, uint64_t Key);
  bool contains(ThreadId Tid, uint64_t Key);

  //===--- quiescent introspection ---------------------------------------===//

  /// The keys in list order (strictly ascending iff the set is intact).
  std::vector<uint64_t> sampleKeys() const;

  /// Nodes currently linked into the list, per the allocator's books.
  uint64_t sampleLiveNodes() const { return Alloc.sampleLiveCount(); }

  TxAlloc &allocator() { return Alloc; }
  Tm &tm() const { return *M; }

private:
  static constexpr unsigned kNodeWords = 2; // word 0 = key, word 1 = next
  static constexpr unsigned kKeyWord = 0;
  static constexpr unsigned kNextWord = 1;

  ObjectId headObj() const { return Head; }
  ObjectId keyObj(uint64_t Node) const { return Alloc.wordObj(Node, kKeyWord); }
  ObjectId nextObj(uint64_t Node) const {
    return Alloc.wordObj(Node, kNextWord);
  }

  /// The sequential list walk: returns {object holding the incoming
  /// "next" pointer, handle of the first node with key >= Key (or kNil)}.
  struct Position {
    ObjectId PrevNextObj;
    uint64_t Node;
  };
  Position locate(TxRef &Tx, uint64_t Key);

  Tm *M;
  ObjectId Head;
  TxAlloc Alloc;
};

} // namespace ds
} // namespace ptm

#endif // PTM_DS_TXSET_H
