//===-- ds/TxCounter.cpp - Transactional striped counter ------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ds/TxCounter.h"

#include <cassert>

using namespace ptm;
using namespace ptm::ds;

TxCounter::TxCounter(Tm &Memory, ObjectId RegionBase, unsigned StripeCount)
    : M(&Memory) {
  assert(StripeCount > 0 && "a counter needs at least one stripe");
  Stripes.reserve(StripeCount);
  for (unsigned S = 0; S < StripeCount; ++S)
    Stripes.emplace_back(Memory, RegionBase + S);
  clear();
}

void TxCounter::clear() {
  for (const TVar<int64_t> &Stripe : Stripes)
    Stripe.init(0);
}

bool TxCounter::add(TxRef &Tx, ThreadId Hint, int64_t Delta) {
  const TVar<int64_t> &Stripe = Stripes[Hint % Stripes.size()];
  int64_t Value = 0;
  return Stripe.read(Tx, Value) && Stripe.write(Tx, Value + Delta);
}

bool TxCounter::read(TxRef &Tx, int64_t &Sum) {
  int64_t Total = 0;
  for (const TVar<int64_t> &Stripe : Stripes) {
    int64_t Value = 0;
    if (!Stripe.read(Tx, Value))
      return false;
    Total += Value;
  }
  Sum = Total;
  return true;
}

bool TxCounter::add(ThreadId Tid, int64_t Delta) {
  return atomically(*M, Tid, [&](TxRef &Tx) { add(Tx, Tid, Delta); });
}

int64_t TxCounter::read(ThreadId Tid) {
  int64_t Sum = 0;
  atomically(*M, Tid, [&](TxRef &Tx) { read(Tx, Sum); });
  return Sum;
}

int64_t TxCounter::sampleTotal() const {
  int64_t Total = 0;
  for (const TVar<int64_t> &Stripe : Stripes)
    Total += Stripe.sample();
  return Total;
}
