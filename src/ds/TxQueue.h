//===-- ds/TxQueue.h - Transactional bounded FIFO queue ---------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded FIFO of 64-bit items over any Tm: head index, tail index,
/// ring of slots — written exactly like sequential code. Indices grow
/// monotonically (slot = index mod capacity), so fullness is
/// `tail - head == capacity` with no reserved sentinel slot.
///
/// The TxRef methods report full/empty as an ordinary false return so a
/// caller can compose "dequeue here, enqueue there" pipelines in one
/// transaction; the ThreadId try* conveniences express "full/empty, come
/// back later" as a *voluntary abort* — atomically() returns false
/// without publishing anything, the classic STM condition-wait idiom.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_DS_TXQUEUE_H
#define PTM_DS_TXQUEUE_H

#include "stm/Atomically.h"
#include "stm/Tm.h"

namespace ptm {
namespace ds {

class TxQueue {
public:
  /// Builds an empty queue of \p SlotCapacity items over \p Memory at
  /// \p RegionBase. The region must span objectsNeeded(SlotCapacity)
  /// valid ObjectIds.
  TxQueue(Tm &Memory, ObjectId RegionBase, uint64_t SlotCapacity);

  static unsigned objectsNeeded(uint64_t SlotCapacity) {
    return static_cast<unsigned>(2 + SlotCapacity);
  }

  /// Quiescent reset to the empty queue.
  void clear();

  //===--- transactional core (compose within a caller transaction) ------===//

  /// Appends \p Item; false when the queue is full or the transaction
  /// failed (check Tx.failed()).
  bool enqueue(TxRef &Tx, uint64_t Item);

  /// Pops the oldest item into \p Item; false when empty or failed.
  bool dequeue(TxRef &Tx, uint64_t &Item);

  /// Items currently queued.
  uint64_t size(TxRef &Tx);

  //===--- one-transaction conveniences ----------------------------------===//

  /// True once the item is enqueued; false if the queue was full (the
  /// "full" observation is abandoned via a voluntary abort, so it costs
  /// no commit and shows up in TmStats as an AC_User abort).
  bool tryEnqueue(ThreadId Tid, uint64_t Item);

  /// True once an item was dequeued into \p Item; false if empty.
  bool tryDequeue(ThreadId Tid, uint64_t &Item);

  //===--- quiescent introspection ---------------------------------------===//

  uint64_t sampleSize() const {
    return M->sample(tailObj()) - M->sample(headObj());
  }
  uint64_t capacity() const { return Capacity; }
  Tm &tm() const { return *M; }

private:
  ObjectId headObj() const { return Base; }
  ObjectId tailObj() const { return Base + 1; }
  ObjectId slotObj(uint64_t Index) const {
    return Base + 2 + static_cast<ObjectId>(Index % Capacity);
  }

  Tm *M;
  ObjectId Base;
  uint64_t Capacity;
};

} // namespace ds
} // namespace ptm

#endif // PTM_DS_TXQUEUE_H
