//===-- runtime/BaseObject.h - Instrumented shared base object -*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared-memory cell of the paper's model: a 64-bit word manipulated
/// only through classified RMW primitives. Every piece of shared state in
/// the library — orecs, clocks, value cells, lock words, the mutex
/// registers of Algorithm 1 — is a BaseObject, so step counts, distinct-
/// object sets and RMRs are measured in exactly the model the paper's
/// bounds are stated in.
///
/// Each object carries a process-unique id (for distinct-object tracking
/// and the RMR directory) and an optional DSM home process.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_RUNTIME_BASEOBJECT_H
#define PTM_RUNTIME_BASEOBJECT_H

#include "runtime/AccessKind.h"
#include "runtime/Ids.h"
#include "runtime/Instrumentation.h"
#include "support/Compiler.h"

#include <atomic>
#include <cstdint>

namespace ptm {

/// One instrumented atomic word. Padded to a cache line so that arrays of
/// base objects do not false-share — important both for the throughput
/// benchmarks and for making the simulated RMR model match the real layout.
class alignas(PTM_CACHELINE_SIZE) BaseObject {
public:
  /// Creates an object holding \p Init, homed (for the DSM model) at
  /// \p HomeTid; kNoThread means "remote to everyone".
  explicit BaseObject(uint64_t Init = 0, ThreadId HomeTid = kNoThread);

  BaseObject(const BaseObject &) = delete;
  BaseObject &operator=(const BaseObject &) = delete;

  /// Trivial primitive: atomic load.
  uint64_t read() const {
    note(AccessKind::AK_Read);
    return Word.load(std::memory_order_seq_cst);
  }

  /// Nontrivial unconditional primitive: atomic store.
  void write(uint64_t Value) {
    note(AccessKind::AK_Write);
    Word.store(Value, std::memory_order_seq_cst);
  }

  /// Nontrivial conditional primitive: single-shot CAS. On failure
  /// \p Expected is updated with the observed value.
  bool compareAndSwap(uint64_t &Expected, uint64_t Desired) {
    note(AccessKind::AK_Cas);
    return Word.compare_exchange_strong(Expected, Desired,
                                        std::memory_order_seq_cst);
  }

  /// Nontrivial unconditional primitive: fetch-and-add. Returns the prior
  /// value.
  uint64_t fetchAdd(uint64_t Delta) {
    note(AccessKind::AK_FetchAdd);
    return Word.fetch_add(Delta, std::memory_order_seq_cst);
  }

  /// Nontrivial unconditional primitive: fetch-and-store (swap). Returns
  /// the prior value. Note: not a conditional primitive, hence outside the
  /// hypotheses of the paper's Theorem 9 — MCS-style locks exploit this.
  uint64_t exchange(uint64_t Value) {
    note(AccessKind::AK_Exchange);
    return Word.exchange(Value, std::memory_order_seq_cst);
  }

  /// Non-primitive raw access for initialization and post-quiescence
  /// inspection only; never counted, never an event of the execution.
  uint64_t peek() const { return Word.load(std::memory_order_relaxed); }
  void poke(uint64_t Value) { Word.store(Value, std::memory_order_relaxed); }

  /// Process-unique object id.
  uint64_t id() const { return Id; }

  /// DSM home process of this object.
  ThreadId home() const { return Home; }

  /// Reassigns the DSM home. Call only during setup, before the object is
  /// shared.
  void setHome(ThreadId NewHome) { Home = NewHome; }

private:
  void note(AccessKind Kind) const {
    if (Instrumentation *Instr = Instrumentation::current())
      Instr->record(Id, Kind, Home);
  }

  std::atomic<uint64_t> Word;
  uint64_t Id;
  ThreadId Home;
};

} // namespace ptm

#endif // PTM_RUNTIME_BASEOBJECT_H
