//===-- runtime/BaseObject.h - Instrumented shared base object -*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared-memory cell of the paper's model: a 64-bit word manipulated
/// only through classified RMW primitives. Every piece of shared state in
/// the library — orecs, clocks, value cells, lock words, the mutex
/// registers of Algorithm 1 — is a BaseObject, so step counts, distinct-
/// object sets and RMRs are measured in exactly the model the paper's
/// bounds are stated in.
///
/// Each object carries a process-unique id (for distinct-object tracking
/// and the RMR directory) and an optional DSM home process.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_RUNTIME_BASEOBJECT_H
#define PTM_RUNTIME_BASEOBJECT_H

#include "runtime/AccessKind.h"
#include "runtime/Ids.h"
#include "runtime/Instrumentation.h"
#include "support/Compiler.h"

#include <atomic>
#include <cstdint>

namespace ptm {

/// RAII bracket around one base-object access: constructed by
/// BaseObject::note() after the scheduler (if any) grants the thread's
/// turn; the destructor releases the turn once the primitive has been
/// applied. Holding the turn across the access keeps the schedule's grant
/// order and the real memory-event order identical, which systematic
/// replay (src/explore) depends on.
class AccessEvent {
public:
  explicit AccessEvent(Instrumentation *Owner) : Instr(Owner) {}
  AccessEvent(const AccessEvent &) = delete;
  AccessEvent &operator=(const AccessEvent &) = delete;
  ~AccessEvent() {
    if (Instr)
      Instr->accessDone();
  }

private:
  Instrumentation *Instr;
};

/// One instrumented atomic word. Padded to a cache line so that arrays of
/// base objects do not false-share — important both for the throughput
/// benchmarks and for making the simulated RMR model match the real layout.
class alignas(PTM_CACHELINE_SIZE) BaseObject {
public:
  /// Creates an object holding \p Init, homed (for the DSM model) at
  /// \p HomeTid; kNoThread means "remote to everyone".
  explicit BaseObject(uint64_t Init = 0, ThreadId HomeTid = kNoThread);

  BaseObject(const BaseObject &) = delete;
  BaseObject &operator=(const BaseObject &) = delete;

  /// The id the next constructed object will receive. Ids are allocated
  /// from a process-wide monotonic counter, so two equal TM instances
  /// built at different times carry different raw ids; re-execution
  /// machinery (src/explore) snapshots this watermark before building an
  /// instance to translate raw ids into instance-relative ones that are
  /// stable across runs.
  static uint64_t idWatermark();

  /// Trivial primitive: atomic load.
  uint64_t read() const {
    AccessEvent Event = note(AccessKind::AK_Read);
    return Word.load(std::memory_order_seq_cst);
  }

  /// Nontrivial unconditional primitive: atomic store.
  void write(uint64_t Value) {
    AccessEvent Event = note(AccessKind::AK_Write);
    Word.store(Value, std::memory_order_seq_cst);
  }

  /// Nontrivial conditional primitive: single-shot CAS. On failure
  /// \p Expected is updated with the observed value.
  bool compareAndSwap(uint64_t &Expected, uint64_t Desired) {
    AccessEvent Event = note(AccessKind::AK_Cas);
    return Word.compare_exchange_strong(Expected, Desired,
                                        std::memory_order_seq_cst);
  }

  /// Nontrivial unconditional primitive: fetch-and-add. Returns the prior
  /// value.
  uint64_t fetchAdd(uint64_t Delta) {
    AccessEvent Event = note(AccessKind::AK_FetchAdd);
    return Word.fetch_add(Delta, std::memory_order_seq_cst);
  }

  /// Nontrivial unconditional primitive: fetch-and-store (swap). Returns
  /// the prior value. Note: not a conditional primitive, hence outside the
  /// hypotheses of the paper's Theorem 9 — MCS-style locks exploit this.
  uint64_t exchange(uint64_t Value) {
    AccessEvent Event = note(AccessKind::AK_Exchange);
    return Word.exchange(Value, std::memory_order_seq_cst);
  }

  /// Non-primitive raw access for initialization and post-quiescence
  /// inspection only; never counted, never an event of the execution.
  uint64_t peek() const { return Word.load(std::memory_order_relaxed); }
  void poke(uint64_t Value) { Word.store(Value, std::memory_order_relaxed); }

  /// Process-unique object id.
  uint64_t id() const { return Id; }

  /// DSM home process of this object.
  ThreadId home() const { return Home; }

  /// Reassigns the DSM home. Call only during setup, before the object is
  /// shared.
  void setHome(ThreadId NewHome) { Home = NewHome; }

private:
  AccessEvent note(AccessKind Kind) const {
    Instrumentation *Instr = Instrumentation::current();
    if (Instr)
      Instr->record(Id, Kind, Home);
    return AccessEvent(Instr);
  }

  std::atomic<uint64_t> Word;
  uint64_t Id;
  ThreadId Home;
};

} // namespace ptm

#endif // PTM_RUNTIME_BASEOBJECT_H
