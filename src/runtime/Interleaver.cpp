//===-- runtime/Interleaver.cpp - Step-level schedule control -------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "runtime/Interleaver.h"

#include "support/Compiler.h"

#include <cassert>
#include <thread>

using namespace ptm;

TokenInterleaver::TokenInterleaver(unsigned ThreadCount)
    : NumThreads(ThreadCount),
      Active(std::make_unique<std::atomic<bool>[]>(ThreadCount)) {
  assert(ThreadCount > 0 && "scheduler needs at least one thread");
  for (unsigned T = 0; T < NumThreads; ++T)
    Active[T].store(true, std::memory_order_relaxed);
}

void TokenInterleaver::waitForToken(ThreadId Tid) {
  // Hosts are frequently oversubscribed (more simulated threads than
  // cores): spin briefly, then yield so the token holder can run.
  unsigned Spins = 0;
  while (Token.load(std::memory_order_acquire) != Tid) {
    if (++Spins < 64)
      cpuRelax();
    else {
      std::this_thread::yield();
      Spins = 0;
    }
  }
}

void TokenInterleaver::stepBegin(ThreadId Tid, uint64_t ObjId,
                                 AccessKind Kind) {
  assert(Tid < NumThreads && "thread id out of range");
  waitForToken(Tid);
  onStepBegin(Tid, ObjId, Kind);
}

void TokenInterleaver::stepDone(ThreadId Tid) {
  assert(Tid < NumThreads && "thread id out of range");
  assert(Token.load(std::memory_order_relaxed) == Tid &&
         "stepDone without holding the token");
  advanceFrom(Tid);
}

void TokenInterleaver::step(ThreadId Tid) {
  stepBegin(Tid, kAnonymousObject, AccessKind::AK_Read);
  stepDone(Tid);
}

void TokenInterleaver::retire(ThreadId Tid) {
  assert(Tid < NumThreads && "thread id out of range");
  // Take our turn once more so the token is provably here, mark ourselves
  // inactive, then pass it on.
  waitForToken(Tid);
  onRetire(Tid);
  Active[Tid].store(false, std::memory_order_release);
  advanceFrom(Tid);
}

void TokenInterleaver::advanceFrom(unsigned Tid) {
  unsigned Next = pickNext(Tid);
  if (Next >= NumThreads)
    return; // No active thread remains; the parked token is moot.
  assert(isActive(Next) && "policy handed the token to a retired thread");
  Token.store(Next, std::memory_order_release);
}

unsigned TokenInterleaver::nextActiveFrom(unsigned From) const {
  for (unsigned Offset = 0; Offset < NumThreads; ++Offset) {
    unsigned Candidate = (From + Offset) % NumThreads;
    if (isActive(Candidate))
      return Candidate;
  }
  return NumThreads;
}

unsigned RoundRobinInterleaver::pickNext(unsigned Current) {
  return nextActiveFrom((Current + 1) % numThreads());
}

unsigned RandomInterleaver::pickNext(unsigned Current) {
  (void)Current;
  // Draw a random start and take the next active thread from there; the
  // walk may stay on the same thread (bursts are legal and worth
  // exploring).
  unsigned Start = static_cast<unsigned>(Rng.nextBounded(numThreads()));
  return nextActiveFrom(Start);
}
