//===-- runtime/RmrSimulator.h - Remote-memory-reference model --*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Software model of remote memory references (RMRs) for the three memory
/// models of Section 5 of the paper:
///
///  * **CC write-through**: a read is local iff the reader holds a valid
///    cached copy; any nontrivial primitive costs an RMR and invalidates
///    all other cached copies.
///  * **CC write-back** (MESI-like): a read is local iff the reader holds
///    the line in shared or exclusive mode; a read miss invalidates copies
///    held in exclusive mode elsewhere and caches the line shared. A write
///    is local iff the writer holds the line exclusive; otherwise it
///    invalidates all copies and takes the line exclusive.
///  * **DSM**: every base object has a single home process; any access by
///    another process is an RMR.
///
/// The paper *defines* RMRs operationally; this simulator implements those
/// definitions verbatim, so counts are deterministic and auditable, unlike
/// hardware performance counters. Accesses to the same object are
/// serialized by a per-shard lock; the resulting counts correspond to the
/// serialization order the simulator observed, which is a legal execution.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_RUNTIME_RMRSIMULATOR_H
#define PTM_RUNTIME_RMRSIMULATOR_H

#include "runtime/AccessKind.h"
#include "runtime/Ids.h"
#include "support/Compiler.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <unordered_map>

namespace ptm {

/// Which coherence/locality protocol the simulator charges RMRs under.
enum class MemoryModelKind {
  MM_CcWriteThrough,
  MM_CcWriteBack,
  MM_Dsm,
};

/// Short human-readable name for tables and logs.
const char *memoryModelName(MemoryModelKind Kind);

/// Tracks per-(object, thread) cache state and decides whether each access
/// is remote. Thread-safe; intended to be shared by all threads of one
/// experiment. Counting is done by the caller (Instrumentation) from the
/// boolean this class returns.
class RmrSimulator {
public:
  /// \p ThreadCount is the number of processes participating (at most
  /// kMaxSimThreads).
  RmrSimulator(MemoryModelKind ModelKind, unsigned ThreadCount);

  RmrSimulator(const RmrSimulator &) = delete;
  RmrSimulator &operator=(const RmrSimulator &) = delete;

  /// Records an access by \p Tid to base object \p ObjId (whose DSM home is
  /// \p Home) with primitive \p Op. Returns true iff the access is an RMR
  /// under this model.
  bool access(ThreadId Tid, uint64_t ObjId, AccessKind Op, ThreadId Home);

  /// Forgets all cache state (counts are owned by the caller).
  void reset();

  MemoryModelKind kind() const { return Kind; }
  unsigned numThreads() const { return NumThreads; }

private:
  enum CacheState : uint8_t { CS_Invalid = 0, CS_Shared = 1, CS_Exclusive = 2 };

  struct Line {
    std::array<uint8_t, kMaxSimThreads> State{};
  };

  static constexpr unsigned NumShards = 64;

  struct alignas(PTM_CACHELINE_SIZE) Shard {
    std::atomic_flag Lock = ATOMIC_FLAG_INIT;
    std::unordered_map<uint64_t, Line> Lines;
  };

  bool accessCc(Shard &S, ThreadId Tid, uint64_t ObjId, bool WriteLike);

  MemoryModelKind Kind;
  unsigned NumThreads;
  std::array<Shard, NumShards> Shards;
};

} // namespace ptm

#endif // PTM_RUNTIME_RMRSIMULATOR_H
