//===-- runtime/Instrumentation.cpp - Step and RMR accounting -------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "runtime/Instrumentation.h"

#include "runtime/Interleaver.h"
#include "runtime/RmrSimulator.h"

#include <algorithm>
#include <cassert>

using namespace ptm;

void Instrumentation::beginOp() {
  OpActive = true;
  OpSteps = 0;
  OpNontrivial = 0;
  OpRmrs = 0;
  OpObjects.clear();
}

OpStats Instrumentation::endOp() {
  assert(OpActive && "endOp without matching beginOp");
  OpActive = false;
  OpStats Stats;
  Stats.Steps = OpSteps;
  Stats.NontrivialSteps = OpNontrivial;
  Stats.Rmrs = OpRmrs;
  std::sort(OpObjects.begin(), OpObjects.end());
  Stats.DistinctObjects = static_cast<uint64_t>(
      std::unique(OpObjects.begin(), OpObjects.end()) - OpObjects.begin());
  return Stats;
}

void Instrumentation::record(uint64_t ObjId, AccessKind Kind, ThreadId Home) {
  // Serialize shared-memory events under the experiment's schedule before
  // anything is charged, so the simulator observes the same order. The
  // turn is held until accessDone() so the grant order IS the event order.
  if (Sched)
    Sched->stepBegin(Tid, ObjId, Kind);
  ++TotalSteps;
  bool Nontrivial = isNontrivial(Kind);
  if (Nontrivial)
    ++TotalNontrivial;

  bool IsRmr = false;
  if (Rmr)
    IsRmr = Rmr->access(Tid, ObjId, Kind, Home);
  if (IsRmr)
    ++TotalRmrs;

  if (!OpActive)
    return;
  ++OpSteps;
  if (Nontrivial)
    ++OpNontrivial;
  if (IsRmr)
    ++OpRmrs;
  OpObjects.push_back(ObjId);
}

void Instrumentation::accessDone() {
  if (Sched)
    Sched->stepDone(Tid);
}

void Instrumentation::resetTotals() {
  TotalSteps = 0;
  TotalNontrivial = 0;
  TotalRmrs = 0;
}

ScopedInstrumentation::ScopedInstrumentation(Instrumentation &Instr)
    : Previous(detail::CurrentInstr) {
  detail::CurrentInstr = &Instr;
}

ScopedInstrumentation::~ScopedInstrumentation() {
  detail::CurrentInstr = Previous;
}
