//===-- runtime/RmrSimulator.cpp - Remote-memory-reference model ----------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "runtime/RmrSimulator.h"

#include <cassert>

using namespace ptm;

const char *ptm::memoryModelName(MemoryModelKind Kind) {
  switch (Kind) {
  case MemoryModelKind::MM_CcWriteThrough:
    return "cc-wt";
  case MemoryModelKind::MM_CcWriteBack:
    return "cc-wb";
  case MemoryModelKind::MM_Dsm:
    return "dsm";
  }
  return "unknown";
}

RmrSimulator::RmrSimulator(MemoryModelKind ModelKind, unsigned ThreadCount)
    : Kind(ModelKind), NumThreads(ThreadCount) {
  assert(ThreadCount > 0 && ThreadCount <= kMaxSimThreads &&
         "thread count out of simulator range");
}

namespace {
/// RAII spin-lock guard over a shard's atomic_flag.
class ShardGuard {
public:
  explicit ShardGuard(std::atomic_flag &Target) : Flag(Target) {
    while (Flag.test_and_set(std::memory_order_acquire))
      cpuRelax();
  }
  ~ShardGuard() { Flag.clear(std::memory_order_release); }

private:
  std::atomic_flag &Flag;
};
} // namespace

bool RmrSimulator::access(ThreadId Tid, uint64_t ObjId, AccessKind Op,
                          ThreadId Home) {
  assert(Tid < NumThreads && "accessing thread outside simulated set");

  // DSM needs no cache state: locality is fixed by the home assignment.
  // An object with no home (kNoThread) is remote to every process, the
  // conservative reading of "each register is assigned to a single
  // process".
  if (Kind == MemoryModelKind::MM_Dsm)
    return Home == kNoThread || Home != Tid;

  Shard &S = Shards[ObjId % NumShards];
  ShardGuard Guard(S.Lock);
  return accessCc(S, Tid, ObjId, isNontrivial(Op));
}

bool RmrSimulator::accessCc(Shard &S, ThreadId Tid, uint64_t ObjId,
                            bool WriteLike) {
  Line &L = S.Lines[ObjId];

  if (Kind == MemoryModelKind::MM_CcWriteThrough) {
    if (!WriteLike) {
      if (L.State[Tid] != CS_Invalid)
        return false;
      L.State[Tid] = CS_Shared;
      return true;
    }
    // Write-through: every nontrivial primitive goes to memory and
    // invalidates all other cached copies. The writer retains a valid
    // (shared) copy, the standard reading of the protocol.
    for (unsigned T = 0; T < NumThreads; ++T)
      if (T != Tid)
        L.State[T] = CS_Invalid;
    L.State[Tid] = CS_Shared;
    return true;
  }

  assert(Kind == MemoryModelKind::MM_CcWriteBack && "unexpected model");
  if (!WriteLike) {
    if (L.State[Tid] != CS_Invalid)
      return false;
    // Read miss: write back and invalidate exclusive holders, then cache
    // the line in shared mode (paper Section 5, write-back CC).
    for (unsigned T = 0; T < NumThreads; ++T)
      if (T != Tid && L.State[T] == CS_Exclusive)
        L.State[T] = CS_Invalid;
    L.State[Tid] = CS_Shared;
    return true;
  }
  if (L.State[Tid] == CS_Exclusive)
    return false;
  for (unsigned T = 0; T < NumThreads; ++T)
    if (T != Tid)
      L.State[T] = CS_Invalid;
  L.State[Tid] = CS_Exclusive;
  return true;
}

void RmrSimulator::reset() {
  for (Shard &S : Shards) {
    ShardGuard Guard(S.Lock);
    S.Lines.clear();
  }
}
