//===-- runtime/AccessKind.h - RMW primitive classification -----*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classification of the read-modify-write primitives a process may apply
/// to a base object, following Section 2 of the paper: a primitive is
/// *trivial* if it never changes the object's value, *nontrivial*
/// otherwise; a nontrivial primitive is *conditional* if there are states
/// it leaves unchanged (CAS, LL/SC) and *unconditional* otherwise
/// (write, fetch-and-add, swap).
///
//===----------------------------------------------------------------------===//

#ifndef PTM_RUNTIME_ACCESSKIND_H
#define PTM_RUNTIME_ACCESSKIND_H

namespace ptm {

/// The primitive applied by one shared-memory event.
enum class AccessKind {
  AK_Read,     ///< Trivial: plain atomic load.
  AK_Write,    ///< Nontrivial, unconditional: plain atomic store.
  AK_Cas,      ///< Nontrivial, conditional: compare-and-swap.
  AK_FetchAdd, ///< Nontrivial, unconditional: fetch-and-add.
  AK_Exchange, ///< Nontrivial, unconditional: fetch-and-store (swap).
};

/// Returns true if \p Kind may change the base object (any primitive other
/// than a plain read). Note a CAS event is classified by its primitive, not
/// by whether this particular application succeeded.
inline bool isNontrivial(AccessKind Kind) {
  return Kind != AccessKind::AK_Read;
}

/// Returns true if \p Kind is a conditional primitive in the sense of
/// Fich–Hendler–Shavit: some applications leave the object unchanged.
/// Theorem 9 of the paper covers TMs built from reads, writes and
/// conditional primitives only; fetch-and-add and swap fall outside it.
inline bool isConditional(AccessKind Kind) {
  return Kind == AccessKind::AK_Cas;
}

/// Short human-readable name for tables and logs.
inline const char *accessKindName(AccessKind Kind) {
  switch (Kind) {
  case AccessKind::AK_Read:
    return "read";
  case AccessKind::AK_Write:
    return "write";
  case AccessKind::AK_Cas:
    return "cas";
  case AccessKind::AK_FetchAdd:
    return "fetch-add";
  case AccessKind::AK_Exchange:
    return "swap";
  }
  return "unknown";
}

} // namespace ptm

#endif // PTM_RUNTIME_ACCESSKIND_H
