//===-- runtime/Ids.h - Core identifier types -------------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identifier types shared by the whole library: process (thread) ids in
/// the sense of the paper's processes p_1..p_n, and t-object ids naming the
/// data items a TM instance manages.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_RUNTIME_IDS_H
#define PTM_RUNTIME_IDS_H

#include <cstdint>

namespace ptm {

/// Index of a process/thread, 0-based. The paper's p_i corresponds to
/// ThreadId i-1.
using ThreadId = uint32_t;

/// Index of a t-object (data item) within one TM instance, 0-based.
using ObjectId = uint32_t;

/// Sentinel "no thread": used for base objects with no DSM home and for
/// empty successor/owner fields.
inline constexpr ThreadId kNoThread = ~0u;

/// Sentinel "no object": used where an ObjectId is optional, e.g. the
/// conflict object reported with an abort when no single object caused it.
inline constexpr ObjectId kNoObject = ~0u;

/// Hard cap on concurrent processes an experiment may use. The RMR
/// simulator keeps one cache-state byte per (object, thread) pair up to
/// this bound.
inline constexpr uint32_t kMaxSimThreads = 64;

} // namespace ptm

#endif // PTM_RUNTIME_IDS_H
