//===-- runtime/Interleaver.h - Step-level schedule control -----*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token-based control over the interleaving of base-object accesses
/// across threads. The paper's complexity model is about *event
/// interleavings*, not wall-clock overlap; on a small host the OS happily
/// runs threads in long sequential bursts, which hides all contention.
/// Hooking an interleaver into Instrumentation serializes execution one
/// shared-memory event at a time, under a policy chosen per experiment:
///
///  * RoundRobinInterleaver — a dense, fair schedule; the RMR experiment
///    (E3) uses it so contention materializes deterministically.
///  * RandomInterleaver — a seeded random walk over the active threads;
///    the schedule-exploration property tests use it as a lightweight
///    model checker (every explored interleaving must yield an opaque
///    history).
///  * ExploringInterleaver (src/explore) — a replayable decision log plus
///    bounded-preemption accounting, driven by the systematic
///    ScheduleExplorer.
///
/// The token protocol brackets each event: stepBegin() blocks until it is
/// the thread's turn *and announces the event* (object id + primitive),
/// the thread then applies the primitive while still holding the token,
/// and stepDone() hands the token onward. Holding the token across the
/// access makes the token-grant order and the memory-event order the same
/// order — which is what makes a recorded decision log exactly replayable.
/// (The legacy step() entry point, used by tests that schedule plain code
/// rather than base-object accesses, is stepBegin+stepDone back to back.)
///
/// Threads whose turn it is not spin; a thread that stops accessing
/// shared memory (finished its passages) must retire() so the token skips
/// it.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_RUNTIME_INTERLEAVER_H
#define PTM_RUNTIME_INTERLEAVER_H

#include "runtime/AccessKind.h"
#include "runtime/Ids.h"
#include "support/Random.h"

#include <atomic>
#include <memory>

namespace ptm {

/// Base token scheduler over a fixed set of threads: exactly one thread
/// may hold the token at a time, every shared-memory event happens while
/// its thread holds the token, and the successor is chosen by the
/// subclass policy. pickNext() and the on*() observation hooks run while
/// holding the token, so policies may keep unsynchronized state.
class TokenInterleaver {
public:
  /// Object id announced by anonymous (non-BaseObject) steps; treated as
  /// conflicting with everything by policies that reason about events.
  static constexpr uint64_t kAnonymousObject = ~uint64_t{0};

  virtual ~TokenInterleaver() = default;

  TokenInterleaver(const TokenInterleaver &) = delete;
  TokenInterleaver &operator=(const TokenInterleaver &) = delete;

  /// Blocks until it is \p Tid's turn to perform one shared-memory event,
  /// announcing the event's object and primitive to the policy. The
  /// caller must apply the primitive and then call stepDone(). Called
  /// (via Instrumentation) before every base-object access.
  void stepBegin(ThreadId Tid, uint64_t ObjId, AccessKind Kind);

  /// Completes the event begun by stepBegin() and passes the token onward.
  void stepDone(ThreadId Tid);

  /// Legacy point-step with no event metadata: equivalent to
  /// stepBegin(Tid, kAnonymousObject, AK_Read) immediately followed by
  /// stepDone(Tid). The token is handed off before the caller's next
  /// instruction, so adjacent callers' code may overlap in wall-clock —
  /// fine for liveness/fairness tests, not for exact replay.
  void step(ThreadId Tid);

  /// Removes \p Tid from the rotation (waits for its turn first, so the
  /// hand-off is clean). Call exactly once, after the thread's last
  /// base-object access.
  void retire(ThreadId Tid);

  unsigned numThreads() const { return NumThreads; }

protected:
  explicit TokenInterleaver(unsigned ThreadCount);

  /// Returns the thread to receive the token after \p Current. Must
  /// return an active thread if any exists (NumThreads if none); called
  /// token-held.
  virtual unsigned pickNext(unsigned Current) = 0;

  /// Called token-held when the granted thread announces its event,
  /// before the primitive is applied. Default: ignore.
  virtual void onStepBegin(ThreadId Tid, uint64_t ObjId, AccessKind Kind) {
    (void)Tid;
    (void)ObjId;
    (void)Kind;
  }

  /// Called token-held when a thread retires, before it is removed from
  /// the rotation. Default: ignore.
  virtual void onRetire(ThreadId Tid) { (void)Tid; }

  bool isActive(unsigned Tid) const {
    return Active[Tid].load(std::memory_order_acquire);
  }

  /// Next active thread at or after \p From (wrapping); NumThreads if
  /// none.
  unsigned nextActiveFrom(unsigned From) const;

  /// Hands the initial token to \p Tid. Call only from a subclass
  /// constructor, before any scheduled thread starts stepping (the base
  /// constructor seeds thread 0).
  void seedToken(unsigned Tid) {
    Token.store(Tid, std::memory_order_release);
  }

private:
  void waitForToken(ThreadId Tid);
  void advanceFrom(unsigned Tid);

  unsigned NumThreads;
  std::atomic<uint32_t> Token{0};
  std::unique_ptr<std::atomic<bool>[]> Active;
};

/// Fair, dense schedule: threads take turns in index order.
class RoundRobinInterleaver final : public TokenInterleaver {
public:
  explicit RoundRobinInterleaver(unsigned ThreadCount)
      : TokenInterleaver(ThreadCount) {}

protected:
  unsigned pickNext(unsigned Current) override;
};

/// Seeded random walk over the active threads: adjacent events may stay
/// on one thread (bursts) or bounce arbitrarily. Deterministic per seed.
class RandomInterleaver final : public TokenInterleaver {
public:
  RandomInterleaver(unsigned ThreadCount, uint64_t Seed)
      : TokenInterleaver(ThreadCount), Rng(Seed) {}

protected:
  unsigned pickNext(unsigned Current) override;

private:
  Xoshiro256 Rng; // Guarded by token ownership.
};

} // namespace ptm

#endif // PTM_RUNTIME_INTERLEAVER_H
