//===-- runtime/Interleaver.h - Step-level schedule control -----*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token-based control over the interleaving of base-object accesses
/// across threads. The paper's complexity model is about *event
/// interleavings*, not wall-clock overlap; on a small host the OS happily
/// runs threads in long sequential bursts, which hides all contention.
/// Hooking an interleaver into Instrumentation serializes execution one
/// shared-memory event at a time, under a policy chosen per experiment:
///
///  * RoundRobinInterleaver — a dense, fair schedule; the RMR experiment
///    (E3) uses it so contention materializes deterministically.
///  * RandomInterleaver — a seeded random walk over the active threads;
///    the schedule-exploration property tests use it as a lightweight
///    model checker (every explored interleaving must yield an opaque
///    history).
///
/// Threads whose turn it is not spin; a thread that stops accessing
/// shared memory (finished its passages) must retire() so the token skips
/// it.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_RUNTIME_INTERLEAVER_H
#define PTM_RUNTIME_INTERLEAVER_H

#include "runtime/Ids.h"
#include "support/Random.h"

#include <atomic>
#include <memory>

namespace ptm {

/// Base token scheduler over a fixed set of threads: exactly one thread
/// may pass through step() at a time, and the successor is chosen by the
/// subclass policy. pickNext() runs while holding the token, so policies
/// may keep unsynchronized state.
class TokenInterleaver {
public:
  virtual ~TokenInterleaver() = default;

  TokenInterleaver(const TokenInterleaver &) = delete;
  TokenInterleaver &operator=(const TokenInterleaver &) = delete;

  /// Blocks until it is \p Tid's turn, then passes the token onward.
  /// Called (via Instrumentation) before every base-object access.
  void step(ThreadId Tid);

  /// Removes \p Tid from the rotation (waits for its turn first, so the
  /// hand-off is clean). Call exactly once, after the thread's last
  /// base-object access.
  void retire(ThreadId Tid);

  unsigned numThreads() const { return NumThreads; }

protected:
  explicit TokenInterleaver(unsigned ThreadCount);

  /// Returns the thread to receive the token after \p Current. Must
  /// return an active thread if any exists; called token-held.
  virtual unsigned pickNext(unsigned Current) = 0;

  bool isActive(unsigned Tid) const {
    return Active[Tid].load(std::memory_order_acquire);
  }

  /// Next active thread at or after \p From (wrapping); NumThreads if
  /// none.
  unsigned nextActiveFrom(unsigned From) const;

private:
  void waitForToken(ThreadId Tid);
  void advanceFrom(unsigned Tid);

  unsigned NumThreads;
  std::atomic<uint32_t> Token{0};
  std::unique_ptr<std::atomic<bool>[]> Active;
};

/// Fair, dense schedule: threads take turns in index order.
class RoundRobinInterleaver final : public TokenInterleaver {
public:
  explicit RoundRobinInterleaver(unsigned ThreadCount)
      : TokenInterleaver(ThreadCount) {}

protected:
  unsigned pickNext(unsigned Current) override;
};

/// Seeded random walk over the active threads: adjacent events may stay
/// on one thread (bursts) or bounce arbitrarily. Deterministic per seed.
class RandomInterleaver final : public TokenInterleaver {
public:
  RandomInterleaver(unsigned ThreadCount, uint64_t Seed)
      : TokenInterleaver(ThreadCount), Rng(Seed) {}

protected:
  unsigned pickNext(unsigned Current) override;

private:
  Xoshiro256 Rng; // Guarded by token ownership.
};

} // namespace ptm

#endif // PTM_RUNTIME_INTERLEAVER_H
