//===-- runtime/MpmcQueue.h - Bounded MPMC ring queue -----------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded multi-producer/multi-consumer queue in the style of Dmitry
/// Vyukov's array-based design: a power-of-two ring of cells, each
/// carrying a sequence number that encodes whether the cell is ready for
/// the next producer or the next consumer. Both ends claim positions with
/// a single CAS and never block each other beyond that cell hand-off, so
/// the queue is suitable as the request-channel primitive of the service
/// layer (src/kv/RequestExecutor): many client threads push, a fixed
/// worker pool pops in batches.
///
/// tryPush/tryPop are non-blocking ("full"/"empty" is an ordinary false
/// return); callers that want to wait spin with support/Spin.h like every
/// other busy-wait loop in the project. Elements must be trivially
/// movable; the KV layer stores raw request pointers.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_RUNTIME_MPMCQUEUE_H
#define PTM_RUNTIME_MPMCQUEUE_H

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

namespace ptm {

template <typename T> class MpmcQueue {
  // The "trivially movable" contract from the file comment, compile-
  // checked: cells are plain storage that the destructor never walks, so
  // an element type with a real destructor (or non-trivial copy/move)
  // would leak or double-own whatever leftovers remain in the ring.
  // Holders of owning types queue raw pointers and keep ownership at the
  // call sites (as the KV layer does with KvRequest*).
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "MpmcQueue elements must be trivially copyable and "
                "destructible; queue a raw pointer and keep ownership "
                "outside the ring");

public:
  /// Builds a queue of \p Capacity slots. \p Capacity must be a nonzero
  /// power of two (asserted): the ring indexes with a mask.
  explicit MpmcQueue(uint64_t Capacity)
      : Cells(new Cell[Capacity]), Mask(Capacity - 1) {
    assert(std::has_single_bit(Capacity) && "MpmcQueue capacity: power of two");
    for (uint64_t I = 0; I < Capacity; ++I)
      Cells[I].Sequence.store(I, std::memory_order_relaxed);
  }

  MpmcQueue(const MpmcQueue &) = delete;
  MpmcQueue &operator=(const MpmcQueue &) = delete;

  uint64_t capacity() const { return Mask + 1; }

  /// Attempts to enqueue \p Value; false when the queue is full. Each
  /// producer's own pushes dequeue in push order (per-producer FIFO),
  /// which is what makes per-client operation order meaningful at the
  /// service layer.
  bool tryPush(T Value) {
    uint64_t Pos = Tail.load(std::memory_order_relaxed);
    for (;;) {
      Cell &C = Cells[Pos & Mask];
      uint64_t Seq = C.Sequence.load(std::memory_order_acquire);
      intptr_t Diff =
          static_cast<intptr_t>(Seq) - static_cast<intptr_t>(Pos);
      if (Diff == 0) {
        // The cell is free for this position; claim it.
        if (Tail.compare_exchange_weak(Pos, Pos + 1,
                                       std::memory_order_relaxed))
          break;
      } else if (Diff < 0) {
        return false; // The cell still holds an unconsumed lap: full.
      } else {
        Pos = Tail.load(std::memory_order_relaxed); // Lost the race.
      }
    }
    Cell &C = Cells[Pos & Mask];
    C.Value = std::move(Value);
    C.Sequence.store(Pos + 1, std::memory_order_release);
    return true;
  }

  /// Attempts to dequeue into \p Value; false when the queue is empty.
  bool tryPop(T &Value) {
    uint64_t Pos = Head.load(std::memory_order_relaxed);
    for (;;) {
      Cell &C = Cells[Pos & Mask];
      uint64_t Seq = C.Sequence.load(std::memory_order_acquire);
      intptr_t Diff =
          static_cast<intptr_t>(Seq) - static_cast<intptr_t>(Pos + 1);
      if (Diff == 0) {
        if (Head.compare_exchange_weak(Pos, Pos + 1,
                                       std::memory_order_relaxed))
          break;
      } else if (Diff < 0) {
        return false; // The producer has not published this lap: empty.
      } else {
        Pos = Head.load(std::memory_order_relaxed);
      }
    }
    Cell &C = Cells[Pos & Mask];
    Value = std::move(C.Value);
    C.Sequence.store(Pos + Mask + 1, std::memory_order_release);
    return true;
  }

  /// Snapshot of the number of queued elements. Racy by nature (both ends
  /// move concurrently); use only for monitoring and idle checks.
  uint64_t approxSize() const {
    uint64_t Produced = Tail.load(std::memory_order_acquire);
    uint64_t Consumed = Head.load(std::memory_order_acquire);
    return Produced > Consumed ? Produced - Consumed : 0;
  }

  bool approxEmpty() const { return approxSize() == 0; }

private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> Sequence{0};
    T Value{};
  };

  std::unique_ptr<Cell[]> Cells;
  uint64_t Mask;
  alignas(64) std::atomic<uint64_t> Tail{0}; ///< Next enqueue position.
  alignas(64) std::atomic<uint64_t> Head{0}; ///< Next dequeue position.
};

} // namespace ptm

#endif // PTM_RUNTIME_MPMCQUEUE_H
