//===-- runtime/Instrumentation.h - Step and RMR accounting ----*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-thread measurement context for the paper's complexity metrics:
///
///  * **steps** — the number of RMW primitive applications on base objects
///    (events of the process, Section 2); local computation is free;
///  * **distinct base objects** accessed during a bracketed interval (the
///    space metric of Theorem 3(2));
///  * **RMRs** charged by an attached RmrSimulator (Section 5).
///
/// A thread opts in by installing an Instrumentation via ScopedInstrumentation;
/// when none is installed, BaseObject accesses run at bare-atomic cost.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_RUNTIME_INSTRUMENTATION_H
#define PTM_RUNTIME_INSTRUMENTATION_H

#include "runtime/AccessKind.h"
#include "runtime/Ids.h"

#include <cstdint>
#include <vector>

namespace ptm {

class RmrSimulator;
class TokenInterleaver;

namespace obs {
class TraceRing;
} // namespace obs

class Instrumentation;

namespace detail {
/// The per-thread installed context. A namespace-scope inline
/// thread_local so Instrumentation::current() inlines into the hot
/// paths that poll it (BaseObject accesses, TmBase::traceEvent) — an
/// out-of-line call here is measurable on the cheapest TMs.
inline thread_local Instrumentation *CurrentInstr = nullptr;
} // namespace detail

/// Aggregate counters for one bracketed interval (usually one t-operation).
struct OpStats {
  uint64_t Steps = 0;           ///< Primitive applications.
  uint64_t NontrivialSteps = 0; ///< Applications of nontrivial primitives.
  uint64_t DistinctObjects = 0; ///< Distinct base objects touched.
  uint64_t Rmrs = 0;            ///< Remote memory references (if simulating).
};

/// Measurement sink for one thread. Not thread-safe: each thread owns its
/// instance and installs it thread-locally.
class Instrumentation {
public:
  /// Creates a context for process \p OwnerTid, optionally charging RMRs
  /// to \p RmrSim, serializing accesses through \p Scheduler (both shared
  /// across the experiment's threads), and appending transaction lifecycle
  /// events to \p TraceSink (this thread's obs::TraceRing).
  explicit Instrumentation(ThreadId OwnerTid, RmrSimulator *RmrSim = nullptr,
                           TokenInterleaver *Scheduler = nullptr,
                           obs::TraceRing *TraceSink = nullptr)
      : Tid(OwnerTid), Rmr(RmrSim), Sched(Scheduler), Trace(TraceSink) {}

  /// Returns the context installed on the calling thread, or null.
  static Instrumentation *current() { return detail::CurrentInstr; }

  /// Begins a bracketed interval; per-op counters reset. Intervals may span
  /// several TM calls (e.g. "last t-read plus tryCommit" in E2).
  void beginOp();

  /// Ends the interval and returns its counters.
  OpStats endOp();

  /// Called by BaseObject before every access. Blocks until the attached
  /// scheduler (if any) grants this thread's turn, then updates both the
  /// running totals and, if an interval is open, the per-op counters.
  /// Must be paired with accessDone() after the primitive is applied.
  void record(uint64_t ObjId, AccessKind Kind, ThreadId Home);

  /// Called by BaseObject after the primitive completes; releases the
  /// scheduler turn taken by record(). The token is held across the
  /// access so a controlled schedule is also the real memory-event order
  /// (exact replayability — see Interleaver.h).
  void accessDone();

  /// Running totals since construction or resetTotals().
  uint64_t totalSteps() const { return TotalSteps; }
  uint64_t totalNontrivialSteps() const { return TotalNontrivial; }
  uint64_t totalRmrs() const { return TotalRmrs; }

  /// Clears the running totals (per-op state is unaffected).
  void resetTotals();

  /// The process this context measures for.
  ThreadId threadId() const { return Tid; }
  /// The attached RMR simulator, or null when not charging RMRs.
  RmrSimulator *rmrSimulator() const { return Rmr; }
  /// The attached schedule controller, or null for free-running threads.
  TokenInterleaver *scheduler() const { return Sched; }
  /// This thread's transaction event ring, or null when tracing is
  /// disarmed (see obs/Trace.h).
  obs::TraceRing *trace() const { return Trace; }
  /// (Re)arms or disarms event tracing for this context.
  void setTrace(obs::TraceRing *TraceSink) { Trace = TraceSink; }

private:
  friend class ScopedInstrumentation;

  ThreadId Tid;
  RmrSimulator *Rmr;
  TokenInterleaver *Sched;
  obs::TraceRing *Trace;

  uint64_t TotalSteps = 0;
  uint64_t TotalNontrivial = 0;
  uint64_t TotalRmrs = 0;

  bool OpActive = false;
  uint64_t OpSteps = 0;
  uint64_t OpNontrivial = 0;
  uint64_t OpRmrs = 0;
  std::vector<uint64_t> OpObjects;
};

/// Installs an Instrumentation on the calling thread for the current scope
/// and restores the previous one on exit.
class ScopedInstrumentation {
public:
  explicit ScopedInstrumentation(Instrumentation &Instr);
  ~ScopedInstrumentation();

  ScopedInstrumentation(const ScopedInstrumentation &) = delete;
  ScopedInstrumentation &operator=(const ScopedInstrumentation &) = delete;

private:
  Instrumentation *Previous;
};

} // namespace ptm

#endif // PTM_RUNTIME_INSTRUMENTATION_H
