//===-- runtime/BaseObject.cpp - Instrumented shared base object ----------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "runtime/BaseObject.h"

using namespace ptm;

/// Monotonic id source. Object ids only need to be unique within a process;
/// a relaxed counter suffices.
static std::atomic<uint64_t> NextObjectId{1};

BaseObject::BaseObject(uint64_t Init, ThreadId HomeTid)
    : Word(Init), Id(NextObjectId.fetch_add(1, std::memory_order_relaxed)),
      Home(HomeTid) {}

uint64_t BaseObject::idWatermark() {
  return NextObjectId.load(std::memory_order_relaxed);
}
