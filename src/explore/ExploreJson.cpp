//===-- explore/ExploreJson.cpp - Explorer summary emission ---------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "explore/ExploreJson.h"

#include "bench/Json.h"
#include "support/RawOStream.h"

using namespace ptm;

void ptm::writeExploreSummary(
    RawOStream &OS, const std::vector<ExploreSummaryEntry> &Entries) {
  bench::JsonWriter W(OS);
  W.beginObject();
  W.key("schema").value("ptm-explore-v1");
  W.key("results").beginArray();
  for (const ExploreSummaryEntry &E : Entries) {
    W.newline();
    const ExploreStats &S = E.Stats;
    W.beginObject();
    W.key("scenario").value(E.Scenario);
    W.key("tm").value(tmKindName(E.Kind));
    W.key("preemption_bound").value(E.PreemptionBound);
    W.key("sleep_sets").value(E.SleepSets);
    W.key("executed").value(S.Executed);
    W.key("sleep_blocked").value(S.SleepBlocked);
    W.key("pruned_sleep").value(S.PrunedSleep);
    W.key("pruned_bound").value(S.PrunedBound);
    W.key("noop_skips").value(S.NoopSkips);
    W.key("unique_states").value(S.UniqueStates);
    W.key("max_depth").value(S.MaxDepth);
    W.key("replay_divergences").value(S.ReplayDivergences);
    W.key("complete").value(S.Complete);
    W.key("hit_schedule_cap").value(S.HitScheduleCap);
    W.key("hit_time_budget").value(S.HitTimeBudget);
    W.key("opacity_violations").value(S.OpacityViolations);
    W.key("serializability_violations").value(S.SerializabilityViolations);
    W.key("property_violations").value(S.PropertyViolations);
    W.key("checker_resource_limits").value(S.CheckerResourceLimits);
    W.key("witness_matches").value(S.WitnessMatches);
    W.endObject();
  }
  W.newline();
  W.endArray();
  W.endObject();
  W.newline();
}
