//===-- explore/StateHash.cpp - Observable TVar-state hashing -------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "explore/StateHash.h"

#include "stm/Tm.h"

using namespace ptm;

uint64_t ptm::hashTmState(const Tm &M, std::vector<uint64_t> &Values) {
  Fnv1a H;
  unsigned N = M.numObjects();
  H.mix(N);
  Values.clear();
  Values.reserve(N);
  for (ObjectId Obj = 0; Obj < N; ++Obj) {
    uint64_t V = M.sample(Obj);
    Values.push_back(V);
    H.mix(V);
  }
  return H.value();
}
