//===-- explore/ScheduleExplorer.h - Systematic DFS explorer ---*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stateless (re-execution based) model checking of a scripted TM
/// workload: a DFS over the tree of token-grant decisions enumerates
/// every schedule of the scenario's base-object accesses up to a
/// preemption bound, runs the *real* TM code on each one through an
/// ExploringInterleaver, records the history with RecordingTm, and
/// checks per schedule:
///
///  * opacity of the full recorded history (Checker),
///  * strict serializability of the *final state* — a synthetic
///    committed transaction that reads every t-object's final value is
///    appended to the history, so a non-serializable final state makes
///    the checker reject,
///  * the TM's DESIGN.md property row (mv read-only transactions never
///    abort; glock never aborts; progressive TMs abort only with an
///    overlapping transaction present).
///
/// Pruning (all reported in ExploreStats, all optional or no-op-only):
///  * sleep sets on independent accesses (Godefroid) — SleepSets option;
///  * the preemption bound — branches whose one extra switch would
///    exceed the bound are not taken (the default extension adds none);
///  * no-op skips — retire transitions commute with everything, so their
///    position is never branched on, and at a forced spin-escape node
///    the "keep spinning" alternative is not offered (it cannot change
///    any object and would unboundedly extend the spin).
///
/// Equivalent executions are deduped by the post-quiescence TVar-state
/// hash (StateHash) for the unique-states report; dedup never suppresses
/// checking.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_EXPLORE_SCHEDULEEXPLORER_H
#define PTM_EXPLORE_SCHEDULEEXPLORER_H

#include "explore/ExploringInterleaver.h"
#include "explore/Script.h"
#include "history/Checker.h"
#include "history/History.h"

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

namespace ptm {

class RecordingTm;

/// PreemptionBound value meaning "no bound at all".
inline constexpr unsigned kUnboundedPreemptions = ~0u;

/// Exploration tunables.
///
/// Two configurations carry a completeness guarantee:
///  * SleepSets = false with a finite PreemptionBound enumerates every
///    schedule whose preemption count is within the bound;
///  * SleepSets = true with kUnboundedPreemptions enumerates at least
///    one representative of every Mazurkiewicz trace (behaviors are
///    trace invariants, so none is missed).
/// Combining sleep sets with a finite bound is a heuristic: a pruned
/// branch's representative can cost more preemptions than the bound
/// allows, so behaviors may in principle be missed (the classic partial-
/// order-reduction x bounding interaction; see DESIGN.md). The tests
/// cross-check the two sound modes against the combined one.
struct ExploreOptions {
  /// Maximum preemptive context switches per schedule (CHESS-style
  /// bound). Switches after a retire and forced spin escapes are free.
  unsigned PreemptionBound = 2;
  /// Sleep-set (DPOR-style) pruning of independent-access commutations.
  bool SleepSets = true;
  /// Consecutive-grant limit before a forced (free) fairness switch.
  unsigned SpinLimit = 128;
  /// Hard cap on executed schedules; exceeding it clears Complete.
  uint64_t MaxSchedules = 200000;
  /// Wall-clock budget in milliseconds; 0 = unlimited.
  uint64_t MaxMillis = 0;
  /// Budgets for the per-schedule opacity/serializability checks.
  CheckerOptions Checker;
};

/// Everything observed about one executed schedule.
struct RunResult {
  TmKind Kind = TmKind::TK_GlobalLock;
  /// Complete recorded history (committed and aborted transactions).
  History Hist;
  /// Per thread, per scripted transaction: how it ended.
  std::vector<std::vector<TxnResult>> Outcomes;
  /// Final committed value of every t-object, in object order.
  std::vector<uint64_t> FinalValues;
  uint64_t StateHash = 0;
  unsigned Preemptions = 0;
  bool SpinForced = false;
  bool SleepBlocked = false;
  CheckResult Opacity = CheckResult::CR_Ok;
  CheckResult FinalStateSerializability = CheckResult::CR_Ok;
  /// Empty when the TM's DESIGN.md property row held on this schedule;
  /// otherwise a description of the violated property.
  std::string PropertyViolation;
  /// The decision log of this schedule. Valid only during the per-run
  /// callback (the explorer reuses the storage).
  const std::vector<ExploreStep> *Trace = nullptr;
};

/// Aggregate exploration report.
struct ExploreStats {
  uint64_t Executed = 0;     ///< Schedules actually run and checked.
  uint64_t SleepBlocked = 0; ///< Runs that ended in a fully-asleep state.
  uint64_t PrunedSleep = 0;  ///< Branches skipped by sleep sets.
  uint64_t PrunedBound = 0;  ///< Branches skipped by the preemption bound.
  uint64_t NoopSkips = 0;    ///< Branches not taken at retire/spin nodes.
  uint64_t UniqueStates = 0; ///< Distinct final-state hashes seen.
  uint64_t MaxDepth = 0;     ///< Longest decision log (grants).
  uint64_t ReplayDivergences = 0; ///< Replays that left the forced prefix.
  bool Complete = false;          ///< The DFS exhausted the bounded tree.
  bool HitScheduleCap = false;
  bool HitTimeBudget = false;

  uint64_t OpacityViolations = 0;
  uint64_t SerializabilityViolations = 0;
  uint64_t PropertyViolations = 0;
  uint64_t CheckerResourceLimits = 0;
  uint64_t WitnessMatches = 0; ///< Runs accepted by the witness predicate.

  /// Human-readable decision log of the first violating schedule.
  std::string FirstViolation;

  uint64_t totalViolations() const {
    return OpacityViolations + SerializabilityViolations + PropertyViolations;
  }
};

/// Renders a decision log as a compact schedule string, e.g.
/// "0:r2 0:w2 1:r2! 1:ret 0:ret" (! marks preemptive switches).
std::string formatTrace(const std::vector<ExploreStep> &Trace);

/// Systematic explorer for one (scenario, TM kind) pair. Owns a
/// persistent worker pool (one thread per scripted thread) that
/// re-executes the scenario once per explored schedule.
class ScheduleExplorer {
public:
  /// Called once per executed schedule, after all checks ran.
  using RunCallback = std::function<void(const RunResult &)>;
  /// Predicate counted in ExploreStats::WitnessMatches — used to assert
  /// that a known-interesting schedule is actually reached.
  using WitnessFn = std::function<bool(const RunResult &)>;

  ScheduleExplorer(Scenario S, TmKind Kind, ExploreOptions Opts = {});
  ~ScheduleExplorer();

  ScheduleExplorer(const ScheduleExplorer &) = delete;
  ScheduleExplorer &operator=(const ScheduleExplorer &) = delete;

  /// Runs the bounded DFS to exhaustion (or budget) and returns the
  /// report. Call at most once per explorer instance.
  ExploreStats explore(const RunCallback &PerRun = nullptr,
                       const WitnessFn &Witness = nullptr);

private:
  /// One node of the current DFS path.
  struct Node {
    unsigned Chosen = 0;
    StepAction Action = StepAction::SA_Pending;
    uint64_t Obj = 0;
    AccessKind Kind = AccessKind::AK_Read;
    uint32_t EnabledMask = 0;
    bool SpinForced = false;
    unsigned PreemptionsAfter = 0;
    std::vector<SleepEntry> Sleep; ///< Sleep set at this node.
    std::vector<SleepEntry> Tried; ///< Fully explored choices (as events).
    std::vector<unsigned> Pending; ///< Eligible, not yet explored choices.
  };

  /// Executes one schedule (replay prefix + default extension) on the
  /// worker pool; fills Result and CurrentTrace.
  void executeOne(const std::vector<unsigned> &Replay,
                  std::vector<SleepEntry> InitialSleep, RunResult &Result);
  /// Runs all per-schedule checks and updates Stats.
  void checkRun(RunResult &R, ExploreStats &Stats,
                std::unordered_set<uint64_t> &SeenStates,
                const WitnessFn &Witness);
  /// Builds the DFS node for CurrentTrace[Index].
  Node makeNode(size_t Index, ExploreStats &Stats) const;
  /// True if thread \p Tid's first grant after \p Index is its retire.
  bool nextActionIsRetire(size_t Index, unsigned Tid) const;

  void workerBody(unsigned Tid);

  Scenario Scn;
  TmKind Kind;
  ExploreOptions Opts;

  std::vector<Node> Path;
  std::vector<ExploreStep> CurrentTrace;
  bool CurrentDiverged = false;
  size_t CurrentUsableLen = 0; ///< Trace length up to any sleep-block.

  // Worker pool: one persistent thread per scripted thread; each
  // generation is one schedule execution.
  std::vector<std::thread> Workers;
  std::mutex PoolMutex;
  std::condition_variable StartCv, DoneCv;
  uint64_t Generation = 0;
  unsigned Running = 0;
  bool Quit = false;
  RecordingTm *RunTm = nullptr;
  ExploringInterleaver *RunSched = nullptr;
  std::vector<std::vector<TxnResult>> *RunOutcomes = nullptr;
};

} // namespace ptm

#endif // PTM_EXPLORE_SCHEDULEEXPLORER_H
