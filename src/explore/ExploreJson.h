//===-- explore/ExploreJson.h - Explorer summary emission ------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `ptm-explore-v1` summary emission: one JSON document per exploration
/// batch, one result row per (scenario, TM kind) pair, carrying the
/// coverage counters (schedules executed/pruned, unique states) and the
/// verdict counters (opacity/serializability/property violations). The
/// counters are *correctness* metrics — tools/check_explore_json.py
/// schema-checks the file and fails CI on any violation or incomplete
/// enumeration, mirroring how BENCH_*.json flows through
/// tools/check_bench_json.py (which stays perf-only).
///
//===----------------------------------------------------------------------===//

#ifndef PTM_EXPLORE_EXPLOREJSON_H
#define PTM_EXPLORE_EXPLOREJSON_H

#include "explore/ScheduleExplorer.h"
#include "stm/Tm.h"

#include <string>
#include <vector>

namespace ptm {

class RawOStream;

/// One row of a `ptm-explore-v1` summary.
struct ExploreSummaryEntry {
  std::string Scenario;
  TmKind Kind = TmKind::TK_GlobalLock;
  unsigned PreemptionBound = 0;
  bool SleepSets = true;
  ExploreStats Stats;
};

/// Writes the complete summary document to \p OS.
void writeExploreSummary(RawOStream &OS,
                         const std::vector<ExploreSummaryEntry> &Entries);

} // namespace ptm

#endif // PTM_EXPLORE_EXPLOREJSON_H
