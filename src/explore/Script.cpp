//===-- explore/Script.cpp - Scripted transaction scenarios ---------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "explore/Script.h"

using namespace ptm;

void ptm::runThreadScript(Tm &M, const ThreadScript &S, ThreadId Tid,
                          std::vector<TxnResult> &Results) {
  Results.reserve(Results.size() + S.Txns.size());
  for (const TxScript &Tx : S.Txns) {
    TxnResult R;
    R.ReadOnlyHint = Tx.ReadOnly;
    if (Tx.ReadOnly)
      M.txBeginReadOnly(Tid);
    else
      M.txBegin(Tid);

    bool Alive = true;
    for (const ScriptOp &Op : Tx.Ops) {
      switch (Op.K) {
      case ScriptOp::SO_Read: {
        uint64_t V = 0;
        Alive = M.txRead(Tid, Op.Obj, V);
        break;
      }
      case ScriptOp::SO_Write:
        Alive = M.txWrite(Tid, Op.Obj, Op.Value);
        break;
      case ScriptOp::SO_Increment: {
        uint64_t V = 0;
        Alive = M.txRead(Tid, Op.Obj, V) &&
                M.txWrite(Tid, Op.Obj, V + Op.Value);
        break;
      }
      case ScriptOp::SO_Abort:
        M.txAbort(Tid);
        Alive = false;
        break;
      }
      if (!Alive)
        break;
    }
    if (Alive)
      R.Committed = M.txCommit(Tid);
    R.Cause = R.Committed ? AbortCause::AC_None : M.lastAbortCause(Tid);
    Results.push_back(R);
  }
}
