//===-- explore/ScheduleExplorer.cpp - Systematic DFS explorer ------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "explore/ScheduleExplorer.h"

#include "explore/StateHash.h"
#include "history/RecordingTm.h"
#include "runtime/BaseObject.h"
#include "runtime/Instrumentation.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>

using namespace ptm;

std::string ptm::formatTrace(const std::vector<ExploreStep> &Trace) {
  std::string Out;
  for (const ExploreStep &S : Trace) {
    if (!Out.empty())
      Out += ' ';
    Out += std::to_string(S.Chosen);
    Out += ':';
    if (S.Action == StepAction::SA_Retire) {
      Out += "ret";
    } else {
      switch (S.Kind) {
      case AccessKind::AK_Read:
        Out += 'r';
        break;
      case AccessKind::AK_Write:
        Out += 'w';
        break;
      case AccessKind::AK_Cas:
        Out += 'c';
        break;
      case AccessKind::AK_FetchAdd:
        Out += 'f';
        break;
      case AccessKind::AK_Exchange:
        Out += 'x';
        break;
      }
      Out += S.Obj == TokenInterleaver::kAnonymousObject
                 ? std::string("?")
                 : std::to_string(S.Obj);
    }
    if (S.WasPreemption)
      Out += '!';
    if (S.SpinForced)
      Out += '*';
  }
  return Out;
}

ScheduleExplorer::ScheduleExplorer(Scenario S, TmKind K, ExploreOptions O)
    : Scn(std::move(S)), Kind(K), Opts(O) {
  unsigned N = static_cast<unsigned>(Scn.Threads.size());
  assert(N >= 1 && N <= 32 && "explorable scenarios have 1..32 threads");
  Workers.reserve(N);
  for (unsigned T = 0; T < N; ++T)
    Workers.emplace_back([this, T] { workerBody(T); });
}

ScheduleExplorer::~ScheduleExplorer() {
  {
    std::lock_guard<std::mutex> Lock(PoolMutex);
    Quit = true;
  }
  StartCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ScheduleExplorer::workerBody(unsigned Tid) {
  uint64_t SeenGen = 0;
  while (true) {
    RecordingTm *M = nullptr;
    ExploringInterleaver *Sched = nullptr;
    std::vector<std::vector<TxnResult>> *Outcomes = nullptr;
    {
      std::unique_lock<std::mutex> Lock(PoolMutex);
      StartCv.wait(Lock, [&] { return Quit || Generation != SeenGen; });
      if (Quit)
        return;
      SeenGen = Generation;
      M = RunTm;
      Sched = RunSched;
      Outcomes = RunOutcomes;
    }
    {
      Instrumentation Instr(Tid, nullptr, Sched);
      ScopedInstrumentation Scope(Instr);
      runThreadScript(*M, Scn.Threads[Tid], Tid, (*Outcomes)[Tid]);
    }
    Sched->retire(Tid);
    {
      std::lock_guard<std::mutex> Lock(PoolMutex);
      if (--Running == 0)
        DoneCv.notify_all();
    }
  }
}

void ScheduleExplorer::executeOne(const std::vector<unsigned> &Replay,
                                  std::vector<SleepEntry> InitialSleep,
                                  RunResult &R) {
  unsigned N = static_cast<unsigned>(Scn.Threads.size());
  // Snapshot the id watermark first: every base object this TM instance
  // allocates gets a raw id >= the watermark, in an allocation order
  // that is a pure function of (Kind, NumObjects) — so watermark-
  // relative ids are stable across re-executions.
  uint64_t IdBase = BaseObject::idWatermark();
  std::unique_ptr<Tm> Inner = createTm(Kind, Scn.NumObjects, N, Scn.Tm);
  assert(Inner && "unknown TmKind or empty scenario");
  for (const auto &[Obj, Value] : Scn.Init)
    Inner->init(Obj, Value);
  RecordingTm Rec(std::move(Inner));

  ExploringInterleaver::Config Cfg;
  Cfg.Replay = Replay;
  Cfg.InitialSleep = std::move(InitialSleep);
  Cfg.SpinLimit = Opts.SpinLimit;
  Cfg.IdBase = IdBase;
  ExploringInterleaver Sched(N, std::move(Cfg));

  std::vector<std::vector<TxnResult>> Outcomes(N);
  {
    std::lock_guard<std::mutex> Lock(PoolMutex);
    RunTm = &Rec;
    RunSched = &Sched;
    RunOutcomes = &Outcomes;
    Running = N;
    ++Generation;
  }
  StartCv.notify_all();
  {
    std::unique_lock<std::mutex> Lock(PoolMutex);
    DoneCv.wait(Lock, [&] { return Running == 0; });
  }

  // Quiescent: every worker has retired and parked on the next
  // generation, so collection needs no further synchronization.
  R = RunResult();
  R.Kind = Kind;
  R.Hist = Rec.takeHistory();
  R.Outcomes = std::move(Outcomes);
  R.StateHash = hashTmState(Rec, R.FinalValues);
  R.Preemptions = Sched.preemptions();
  R.SpinForced = Sched.anySpinForced();
  R.SleepBlocked = Sched.sleepBlocked();
  CurrentTrace = Sched.trace();
  CurrentDiverged = Sched.replayDiverged();
  CurrentUsableLen = std::min(CurrentTrace.size(), Sched.sleepBlockedAt());
  R.Trace = &CurrentTrace;
}

/// Checks the TM's DESIGN.md property row on one executed schedule;
/// returns a description of the first violation, or empty.
static std::string propertyRowViolation(TmKind Kind, const RunResult &R) {
  for (const std::vector<TxnResult> &Thread : R.Outcomes)
    for (const TxnResult &O : Thread) {
      if (O.Committed)
        continue;
      if (Kind == TmKind::TK_Mv && O.ReadOnlyHint)
        return std::string("mv read-only transaction aborted (") +
               abortCauseName(O.Cause) + ")";
      if (Kind == TmKind::TK_GlobalLock && O.Cause != AbortCause::AC_User)
        return std::string("glock transaction aborted (") +
               abortCauseName(O.Cause) + ")";
    }

  if (isProgressive(Kind)) {
    // Progressiveness (necessary condition observable from the history):
    // a transaction may abort only because of a concurrent conflicting
    // transaction, so every involuntarily aborted transaction's real-time
    // interval must overlap some other transaction's interval.
    std::vector<size_t> NextTxn(R.Outcomes.size(), 0);
    for (size_t I = 0; I < R.Hist.Txns.size(); ++I) {
      const TxnRecord &A = R.Hist.Txns[I];
      size_t ThreadIdx = NextTxn[A.Tid]++;
      if (A.Outcome != TxnOutcome::TX_Aborted)
        continue;
      AbortCause Cause = A.Tid < R.Outcomes.size() &&
                                 ThreadIdx < R.Outcomes[A.Tid].size()
                             ? R.Outcomes[A.Tid][ThreadIdx].Cause
                             : AbortCause::AC_None;
      if (Cause == AbortCause::AC_User)
        continue;
      bool Overlaps = false;
      for (size_t J = 0; J < R.Hist.Txns.size() && !Overlaps; ++J) {
        if (J == I)
          continue;
        const TxnRecord &B = R.Hist.Txns[J];
        Overlaps = !(A.precedes(B) || B.precedes(A));
      }
      if (!Overlaps)
        return std::string("progressive TM aborted (") +
               abortCauseName(Cause) + ") with no overlapping transaction";
    }
  }
  return {};
}

void ScheduleExplorer::checkRun(RunResult &R, ExploreStats &Stats,
                                std::unordered_set<uint64_t> &SeenStates,
                                const WitnessFn &Witness) {
  R.Opacity = checkOpacity(R.Hist, Opts.Checker);

  // Final-state serializability: append a synthetic committed transaction
  // that reads every object's final value strictly after everything else;
  // if the final state is not the product of some legal serialization,
  // the checker rejects the extended history.
  History Extended = R.Hist;
  uint64_t MaxTicket = 0, MaxId = 0;
  for (const TxnRecord &T : Extended.Txns) {
    MaxTicket = std::max(MaxTicket, T.LastTicket);
    MaxId = std::max(MaxId, T.TxnId);
  }
  TxnRecord Final;
  Final.TxnId = MaxId + 1;
  Final.Tid = 0;
  Final.Outcome = TxnOutcome::TX_Committed;
  Final.FirstTicket = MaxTicket + 1;
  Final.BeginTicket = MaxTicket + 1;
  Final.LastTicket = MaxTicket + 2;
  Final.Ops.reserve(Scn.NumObjects);
  for (ObjectId Obj = 0; Obj < Scn.NumObjects; ++Obj)
    Final.Ops.push_back({TOpKind::TO_Read, Obj, R.FinalValues[Obj]});
  Extended.Txns.push_back(std::move(Final));
  R.FinalStateSerializability =
      checkStrictSerializability(Extended, Opts.Checker);

  R.PropertyViolation = propertyRowViolation(Kind, R);

  auto NoteFirst = [&](const char *What) {
    if (Stats.FirstViolation.empty())
      Stats.FirstViolation =
          std::string(What) + ": " + formatTrace(CurrentTrace);
  };
  if (R.Opacity == CheckResult::CR_Violation) {
    ++Stats.OpacityViolations;
    NoteFirst("opacity");
  } else if (R.Opacity == CheckResult::CR_ResourceLimit) {
    ++Stats.CheckerResourceLimits;
  }
  if (R.FinalStateSerializability == CheckResult::CR_Violation) {
    ++Stats.SerializabilityViolations;
    NoteFirst("final-state serializability");
  } else if (R.FinalStateSerializability == CheckResult::CR_ResourceLimit) {
    ++Stats.CheckerResourceLimits;
  }
  if (!R.PropertyViolation.empty()) {
    ++Stats.PropertyViolations;
    NoteFirst(R.PropertyViolation.c_str());
  }

  if (R.SleepBlocked)
    ++Stats.SleepBlocked;
  Stats.MaxDepth = std::max(Stats.MaxDepth, uint64_t{CurrentTrace.size()});
  if (SeenStates.insert(R.StateHash).second)
    ++Stats.UniqueStates;
  if (Witness && Witness(R))
    ++Stats.WitnessMatches;
}

bool ScheduleExplorer::nextActionIsRetire(size_t Index, unsigned Tid) const {
  for (size_t J = Index + 1; J < CurrentTrace.size(); ++J)
    if (CurrentTrace[J].Chosen == Tid)
      return CurrentTrace[J].Action == StepAction::SA_Retire;
  return false;
}

ScheduleExplorer::Node ScheduleExplorer::makeNode(size_t Index,
                                                  ExploreStats &Stats) const {
  const ExploreStep &S = CurrentTrace[Index];
  Node Nd;
  Nd.Chosen = S.Chosen;
  Nd.Action = S.Action;
  Nd.Obj = S.Obj;
  Nd.Kind = S.Kind;
  Nd.EnabledMask = S.EnabledMask;
  Nd.SpinForced = S.SpinForced;
  Nd.PreemptionsAfter = S.PreemptionsAfter;
  if (Opts.SleepSets)
    Nd.Sleep = S.Sleep;

  if (S.Action == StepAction::SA_Retire) {
    // A retire is a no-op transition, independent of everything: fixing
    // its position explores one representative of every class of
    // schedules that differ only in where the retire lands.
    Stats.NoopSkips += std::popcount(S.EnabledMask) - 1;
    return Nd;
  }

  unsigned N = static_cast<unsigned>(Scn.Threads.size());
  unsigned Prev = Index > 0 ? CurrentTrace[Index - 1].Chosen : N;
  bool PrevEnabled = Prev < N && ((S.EnabledMask >> Prev) & 1) != 0;
  unsigned Before =
      Index > 0 ? CurrentTrace[Index - 1].PreemptionsAfter : 0;

  for (unsigned U = 0; U < N; ++U) {
    if (U == S.Chosen || ((S.EnabledMask >> U) & 1) == 0)
      continue;
    if (S.SpinForced && U == Prev) {
      // "Keep spinning" cannot change any object and would extend the
      // spin without bound; the forced escape already covers progress.
      ++Stats.NoopSkips;
      continue;
    }
    if (Opts.SleepSets) {
      bool Asleep = false;
      for (const SleepEntry &E : Nd.Sleep)
        if (E.Tid == U) {
          Asleep = true;
          break;
        }
      if (Asleep) {
        ++Stats.PrunedSleep;
        continue;
      }
    }
    // Cost of scheduling U here instead: one preemption iff it switches
    // away from a still-enabled previous thread outside a spin window —
    // the same rule ExploringInterleaver::decide applies when counting.
    unsigned Cost = (PrevEnabled && U != Prev && !S.SpinForced) ? 1 : 0;
    if (Before + Cost > Opts.PreemptionBound) {
      ++Stats.PrunedBound;
      continue;
    }
    if (nextActionIsRetire(Index, U)) {
      ++Stats.NoopSkips;
      continue;
    }
    Nd.Pending.push_back(U);
  }
  return Nd;
}

ExploreStats ScheduleExplorer::explore(const RunCallback &PerRun,
                                       const WitnessFn &Witness) {
  ExploreStats Stats;
  std::unordered_set<uint64_t> SeenStates;
  auto StartTime = std::chrono::steady_clock::now();
  auto ElapsedMs = [&StartTime] {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - StartTime)
            .count());
  };

  RunResult R;
  Path.clear();
  std::vector<unsigned> Replay;
  std::vector<SleepEntry> InitSleep;
  ptrdiff_t BranchIdx = -1; // Node being replaced this iteration.

  while (true) {
    executeOne(Replay, std::move(InitSleep), R);
    InitSleep = {};
    ++Stats.Executed;
    if (CurrentDiverged)
      ++Stats.ReplayDivergences;
    checkRun(R, Stats, SeenStates, Witness);
    if (PerRun)
      PerRun(R);

    // Rebuild the DFS path along this run: the branch node keeps its
    // sleep/tried/pending bookkeeping but re-reads its (new) choice; all
    // deeper nodes are fresh. Nodes past a sleep-blocked index are
    // redundant and never created.
    size_t Start;
    if (BranchIdx < 0) {
      Path.clear();
      Start = 0;
    } else {
      Path.resize(static_cast<size_t>(BranchIdx) + 1);
      Node &Nd = Path[static_cast<size_t>(BranchIdx)];
      const ExploreStep &S = CurrentTrace[static_cast<size_t>(BranchIdx)];
      Nd.Chosen = S.Chosen;
      Nd.Action = S.Action;
      Nd.Obj = S.Obj;
      Nd.Kind = S.Kind;
      Nd.SpinForced = S.SpinForced;
      Nd.PreemptionsAfter = S.PreemptionsAfter;
      Start = static_cast<size_t>(BranchIdx) + 1;
    }
    for (size_t J = Start; J < CurrentUsableLen; ++J)
      Path.push_back(makeNode(J, Stats));

    if (Stats.Executed >= Opts.MaxSchedules) {
      Stats.HitScheduleCap = true;
      break;
    }
    if (Opts.MaxMillis != 0 && ElapsedMs() > Opts.MaxMillis) {
      Stats.HitTimeBudget = true;
      break;
    }

    // Deepest node with an untried alternative; none left = exhausted.
    ptrdiff_t I = static_cast<ptrdiff_t>(Path.size()) - 1;
    while (I >= 0 && Path[static_cast<size_t>(I)].Pending.empty())
      --I;
    if (I < 0) {
      Stats.Complete = true;
      break;
    }
    BranchIdx = I;
    Node &Nd = Path[static_cast<size_t>(I)];
    Nd.Tried.push_back(
        {Nd.Chosen, Nd.Action == StepAction::SA_Retire, Nd.Obj, Nd.Kind});
    unsigned Alt = Nd.Pending.back();
    Nd.Pending.pop_back();

    Replay.clear();
    Replay.reserve(static_cast<size_t>(I) + 1);
    for (ptrdiff_t K = 0; K < I; ++K)
      Replay.push_back(Path[static_cast<size_t>(K)].Chosen);
    Replay.push_back(Alt);

    InitSleep.clear();
    if (Opts.SleepSets) {
      // Sleep-set DFS: the branch run starts with the node's sleep set
      // plus every already-explored sibling asleep.
      InitSleep = Nd.Sleep;
      InitSleep.insert(InitSleep.end(), Nd.Tried.begin(), Nd.Tried.end());
    }
  }
  return Stats;
}
