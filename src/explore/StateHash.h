//===-- explore/StateHash.h - Observable TVar-state hashing ----*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FNV-1a hashing of the observable transactional heap, used by the
/// explorer to dedup executions that reach the same final state. The
/// hash covers exactly what a post-quiescence observer can see — the
/// committed value of every t-object, in object order — so two schedules
/// hash equal iff they are indistinguishable to later transactions.
///
/// Caveats (also in DESIGN.md): the hash is taken only at quiescence
/// (mid-run states of eager TMs may transiently hold uncommitted values,
/// which a final hash never sees because aborts roll back before the
/// threads retire); and a 64-bit hash can collide, so unique-state
/// counts are a lower bound used for reporting — dedup never suppresses
/// checking, every executed schedule is verified individually.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_EXPLORE_STATEHASH_H
#define PTM_EXPLORE_STATEHASH_H

#include <cstdint>
#include <vector>

namespace ptm {

class Tm;

/// Incremental FNV-1a over 64-bit words.
class Fnv1a {
public:
  void mix(uint64_t Word) {
    for (unsigned Byte = 0; Byte < 8; ++Byte) {
      Hash ^= (Word >> (8 * Byte)) & 0xff;
      Hash *= 1099511628211ull;
    }
  }

  uint64_t value() const { return Hash; }

private:
  uint64_t Hash = 14695981039346656037ull;
};

/// Samples every t-object of \p M (which must be quiescent) into
/// \p Values and returns the FNV-1a hash of the sequence.
uint64_t hashTmState(const Tm &M, std::vector<uint64_t> &Values);

} // namespace ptm

#endif // PTM_EXPLORE_STATEHASH_H
