//===-- explore/ExploringInterleaver.h - Replayable scheduler --*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduling half of the systematic explorer: a TokenInterleaver
/// whose decisions are (a) recorded in a decision log precise enough to
/// branch from, and (b) optionally forced from a replay prefix, so the
/// ScheduleExplorer can re-execute any prefix of a previous run and
/// deviate at exactly one point (CHESS-style stateless model checking).
///
/// Policy, per grant:
///  1. If the grant index is inside the replay prefix, the prefix wins.
///  2. Otherwise stay on the current thread (runs it to completion —
///     the canonical, zero-preemption extension), unless it retired or
///     has hogged the token for SpinLimit consecutive grants while
///     another thread could run (a TM-level spin, e.g. glock's lock
///     acquisition — without the forced switch the non-preemptive
///     extension livelocks). Forced fairness switches are free and
///     deterministic, so replay reproduces them exactly.
///  3. Never hand the token to a sleeping thread (sleep-set pruning)
///     unless only sleepers remain; then the run is marked sleep-blocked
///     — it still finishes (threads must terminate) but the explorer
///     knows everything from that index on is redundant.
///
/// Preemption accounting: a grant is a *preemption* iff it moves the
/// token away from a thread that is still active — except forced
/// fairness switches, which are free. Switches after a retire are free.
/// Both the runtime counter here and the explorer's branch-eligibility
/// check use this same rule, so a replayed schedule always costs what
/// the explorer predicted.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_EXPLORE_EXPLORINGINTERLEAVER_H
#define PTM_EXPLORE_EXPLORINGINTERLEAVER_H

#include "runtime/Interleaver.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ptm {

/// A sleep-set entry: thread Tid was put to sleep, and the transition it
/// was about to take was the recorded event. It wakes when a dependent
/// event executes.
struct SleepEntry {
  unsigned Tid = 0;
  bool IsRetire = false;
  uint64_t Obj = 0;
  AccessKind Kind = AccessKind::AK_Read;
};

/// What one token grant turned out to be.
enum class StepAction : uint8_t {
  SA_Pending, ///< Granted, event not yet announced (transient).
  SA_Access,  ///< A base-object access; Obj/Kind are valid.
  SA_Retire,  ///< The thread left the rotation (no shared-memory effect).
};

/// One entry of the decision log.
struct ExploreStep {
  unsigned Chosen = 0;
  StepAction Action = StepAction::SA_Pending;
  uint64_t Obj = 0;
  AccessKind Kind = AccessKind::AK_Read;
  uint32_t EnabledMask = 0;       ///< Active threads at the grant (incl. Chosen).
  unsigned PreemptionsAfter = 0;  ///< Cumulative preemptions incl. this grant.
  bool WasPreemption = false;     ///< This grant consumed preemption budget.
  bool SpinForced = false;        ///< Free fairness switch out of a spin.
  std::vector<SleepEntry> Sleep;  ///< Sleep set in force at this grant.
};

/// DPOR dependence: does executing (\p Obj, \p Kind) conflict with the
/// sleeping transition \p S? Retire transitions conflict with nothing;
/// anonymous steps (TokenInterleaver::kAnonymousObject) conflict with
/// everything; otherwise two accesses conflict iff they touch the same
/// object and at least one is nontrivial.
bool eventsDependent(const SleepEntry &S, uint64_t Obj, AccessKind Kind);

class ExploringInterleaver final : public TokenInterleaver {
public:
  struct Config {
    /// Forced grant sequence: grant i goes to Replay[i] (the explorer's
    /// re-executed prefix plus the one deviation). Indices past the end
    /// fall to the default policy.
    std::vector<unsigned> Replay;
    /// Sleep set to install just before the event at index
    /// Replay.size()-1 executes — i.e. at the branch point, where the
    /// explorer's deviation happens. (Installing earlier would let
    /// prefix events spuriously wake entries that the branch node's
    /// state already accounts for.)
    std::vector<SleepEntry> InitialSleep;
    /// Consecutive-grant limit before a forced fairness switch.
    unsigned SpinLimit = 128;
    /// BaseObject::idWatermark() taken just before the TM under test was
    /// built. Raw object ids are allocated process-wide, so they differ
    /// between re-executions; subtracting the watermark yields ids that
    /// are stable across runs — without this, sleep entries recorded in
    /// one run could never match (wake on) the dependent events of the
    /// next, and the sleep sets would over-prune.
    uint64_t IdBase = 0;
  };

  ExploringInterleaver(unsigned ThreadCount, Config C);

  /// The decision log. Valid once every scheduled thread has retired.
  const std::vector<ExploreStep> &trace() const { return Trace; }

  unsigned preemptions() const { return Preemptions; }
  bool replayDiverged() const { return Diverged; }
  bool anySpinForced() const { return AnySpinForced; }

  /// First grant index at which every enabled thread was asleep (the run
  /// is redundant from there on), or SIZE_MAX if that never happened.
  size_t sleepBlockedAt() const { return SleepBlockedIdx; }
  bool sleepBlocked() const { return SleepBlockedIdx != SIZE_MAX; }

protected:
  unsigned pickNext(unsigned Current) override;
  void onStepBegin(ThreadId Tid, uint64_t ObjId, AccessKind Kind) override;
  void onRetire(ThreadId Tid) override;

private:
  /// Chooses (and logs) the next grant. \p Current is the previous token
  /// holder, or numThreads() for the initial grant.
  unsigned decide(unsigned Current);
  /// Fills the pending log entry for the executing event and runs the
  /// sleep-set wake filter.
  void noteEvent(StepAction Action, uint64_t Obj, AccessKind Kind,
                 ThreadId Tid);

  uint32_t enabledMask() const;
  bool isAsleep(unsigned Tid) const;
  /// Next active thread at or after \p From that is not asleep;
  /// numThreads() if every active thread sleeps.
  unsigned nextRunnableFrom(unsigned From) const;

  Config Cfg;
  std::vector<ExploreStep> Trace;
  std::vector<SleepEntry> Sleep; ///< Live sleep set (empty until installed).
  bool SleepInstalled = false;
  unsigned Preemptions = 0;
  unsigned Burst = 0; ///< Consecutive grants to the same thread.
  bool Diverged = false;
  bool AnySpinForced = false;
  size_t SleepBlockedIdx = SIZE_MAX;
};

} // namespace ptm

#endif // PTM_EXPLORE_EXPLORINGINTERLEAVER_H
