//===-- explore/ExploringInterleaver.cpp - Replayable scheduler -----------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "explore/ExploringInterleaver.h"

#include <cassert>

using namespace ptm;

bool ptm::eventsDependent(const SleepEntry &S, uint64_t Obj, AccessKind Kind) {
  if (S.IsRetire)
    return false;
  if (S.Obj == TokenInterleaver::kAnonymousObject ||
      Obj == TokenInterleaver::kAnonymousObject)
    return true;
  if (S.Obj != Obj)
    return false;
  return isNontrivial(S.Kind) || isNontrivial(Kind);
}

ExploringInterleaver::ExploringInterleaver(unsigned ThreadCount, Config C)
    : TokenInterleaver(ThreadCount), Cfg(std::move(C)) {
  assert(ThreadCount <= 32 && "EnabledMask is 32 bits wide");
  assert(Cfg.SpinLimit > 0 && "a zero spin limit would forbid all progress");
  // The root run (no replay) activates its sleep set — always empty for
  // the root — immediately; branch runs install theirs at the branch
  // point (see Config::InitialSleep).
  if (Cfg.Replay.empty()) {
    Sleep = Cfg.InitialSleep;
    SleepInstalled = true;
  }
  unsigned First = decide(numThreads());
  assert(First < numThreads() && "no schedulable thread at construction");
  seedToken(First);
}

uint32_t ExploringInterleaver::enabledMask() const {
  uint32_t Mask = 0;
  for (unsigned T = 0; T < numThreads(); ++T)
    if (isActive(T))
      Mask |= uint32_t{1} << T;
  return Mask;
}

bool ExploringInterleaver::isAsleep(unsigned Tid) const {
  for (const SleepEntry &S : Sleep)
    if (S.Tid == Tid)
      return true;
  return false;
}

unsigned ExploringInterleaver::nextRunnableFrom(unsigned From) const {
  for (unsigned Offset = 0; Offset < numThreads(); ++Offset) {
    unsigned Candidate = (From + Offset) % numThreads();
    if (isActive(Candidate) && !isAsleep(Candidate))
      return Candidate;
  }
  return numThreads();
}

unsigned ExploringInterleaver::decide(unsigned Current) {
  uint32_t Enabled = enabledMask();
  if (Enabled == 0)
    return numThreads();

  size_t Idx = Trace.size();
  bool HaveCurrent = Current < numThreads() && isActive(Current);
  // A spin window opens when the current thread has held the token for
  // SpinLimit consecutive grants while another thread exists to run —
  // even a sleeping one: a spinner may be waiting on a lock whose holder
  // is asleep, and only waking the holder can make progress.
  bool SpinWindow = HaveCurrent && Burst >= Cfg.SpinLimit &&
                    (Enabled & ~(uint32_t{1} << Current)) != 0;

  unsigned Choice = numThreads();
  if (Idx < Cfg.Replay.size()) {
    unsigned R = Cfg.Replay[Idx];
    if (R < numThreads() && isActive(R))
      Choice = R;
    else
      Diverged = true; // Fall through to the default policy.
  }
  if (Choice >= numThreads()) {
    if (HaveCurrent && !SpinWindow) {
      Choice = Current;
    } else {
      unsigned From = HaveCurrent ? (Current + 1) % numThreads() : 0;
      Choice = nextRunnableFrom(From);
      if (Choice >= numThreads() || (SpinWindow && Choice == Current)) {
        // Only sleepers remain (besides a spinning current thread). The
        // rest of this run is redundant, but threads must still
        // terminate: schedule a sleeper and remember where coverage
        // ended. Scanning from Current+1 finds another active thread
        // before wrapping back to Current, which SpinWindow guarantees
        // exists.
        Choice = nextActiveFrom(From);
        if (SleepBlockedIdx == SIZE_MAX)
          SleepBlockedIdx = Idx;
      }
    }
  }
  assert(Choice < numThreads() && isActive(Choice));

  bool IsSwitch = HaveCurrent && Choice != Current;
  bool Forced = IsSwitch && SpinWindow;
  bool Preempt = IsSwitch && !SpinWindow;
  if (Forced)
    AnySpinForced = true;
  if (Preempt)
    ++Preemptions;
  Burst = (HaveCurrent && Choice == Current) ? Burst + 1 : 1;

  ExploreStep Step;
  Step.Chosen = Choice;
  Step.EnabledMask = Enabled;
  Step.PreemptionsAfter = Preemptions;
  Step.WasPreemption = Preempt;
  Step.SpinForced = Forced;
  Step.Sleep = Sleep;
  Trace.push_back(std::move(Step));
  return Choice;
}

void ExploringInterleaver::noteEvent(StepAction Action, uint64_t Obj,
                                     AccessKind Kind, ThreadId Tid) {
  assert(!Trace.empty() && "event without a recorded grant");
  ExploreStep &Step = Trace.back();
  assert(Step.Chosen == Tid && Step.Action == StepAction::SA_Pending &&
         "event does not match the granted step");
  Step.Action = Action;
  Step.Obj = Obj;
  Step.Kind = Kind;

  // Branch runs activate their sleep set at the branch point — just
  // before the deviating event (the last replayed grant) executes, so it
  // is filtered by that event and everything after it, but not by the
  // re-executed prefix.
  if (!SleepInstalled && Trace.size() >= Cfg.Replay.size()) {
    Sleep = Cfg.InitialSleep;
    SleepInstalled = true;
  }

  // Wake filter: a scheduled thread leaves the sleep set (only possible
  // on the sleep-blocked fallback path), and so does every sleeper whose
  // pending transition depends on the executing event.
  for (size_t I = 0; I < Sleep.size();) {
    const SleepEntry &S = Sleep[I];
    bool Wake = S.Tid == Tid;
    if (!Wake && Action == StepAction::SA_Access)
      Wake = eventsDependent(S, Obj, Kind);
    if (Wake) {
      Sleep[I] = Sleep.back();
      Sleep.pop_back();
    } else {
      ++I;
    }
  }
}

unsigned ExploringInterleaver::pickNext(unsigned Current) {
  return decide(Current);
}

void ExploringInterleaver::onStepBegin(ThreadId Tid, uint64_t ObjId,
                                       AccessKind Kind) {
  // Translate the process-wide raw id into an instance-relative one so
  // traces and sleep entries from different runs talk about the same
  // objects (see Config::IdBase).
  if (ObjId != kAnonymousObject && ObjId >= Cfg.IdBase)
    ObjId -= Cfg.IdBase;
  noteEvent(StepAction::SA_Access, ObjId, Kind, Tid);
}

void ExploringInterleaver::onRetire(ThreadId Tid) {
  noteEvent(StepAction::SA_Retire, 0, AccessKind::AK_Read, Tid);
}
