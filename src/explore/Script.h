//===-- explore/Script.h - Scripted transaction scenarios ------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic transaction scripts for systematic schedule exploration.
/// A Scenario fixes a tiny workload — 2–3 threads, each running a short
/// list of single-shot transactions over a handful of t-objects — so that
/// the ScheduleExplorer can enumerate *every* interleaving of the
/// workload's base-object accesses and check the TM's guarantees on each
/// one, rather than sampling schedules the way the random property tests
/// do.
///
/// Scripts are single-shot on purpose: an aborted transaction is not
/// retried. Retry loops would make the set of base-object accesses
/// depend on the schedule in unbounded ways; single-shot transactions
/// keep every run finite while still exercising the full abort paths.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_EXPLORE_SCRIPT_H
#define PTM_EXPLORE_SCRIPT_H

#include "stm/Tm.h"

#include <string>
#include <utility>
#include <vector>

namespace ptm {

/// One scripted t-operation.
struct ScriptOp {
  enum Kind : uint8_t {
    SO_Read,      ///< txRead(Obj).
    SO_Write,     ///< txWrite(Obj, Value).
    SO_Increment, ///< txRead(Obj) then txWrite(Obj, read + Value).
    SO_Abort,     ///< Voluntary txAbort; ends the transaction.
  };

  Kind K = SO_Read;
  ObjectId Obj = 0;
  uint64_t Value = 0;
};

inline ScriptOp opRead(ObjectId Obj) { return {ScriptOp::SO_Read, Obj, 0}; }
inline ScriptOp opWrite(ObjectId Obj, uint64_t Value) {
  return {ScriptOp::SO_Write, Obj, Value};
}
inline ScriptOp opIncrement(ObjectId Obj, uint64_t Delta = 1) {
  return {ScriptOp::SO_Increment, Obj, Delta};
}
inline ScriptOp opAbort() { return {ScriptOp::SO_Abort, 0, 0}; }

/// One transaction of a thread script.
struct TxScript {
  bool ReadOnly = false; ///< Start with txBeginReadOnly (mv snapshot path).
  std::vector<ScriptOp> Ops;
};

/// The whole program of one simulated thread: its transactions, run in
/// order, each exactly once.
struct ThreadScript {
  std::vector<TxScript> Txns;
};

/// A complete explorable workload.
struct Scenario {
  std::string Name;
  unsigned NumObjects = 2;
  /// Initial values installed via Tm::init before the threads start.
  std::vector<std::pair<ObjectId, uint64_t>> Init;
  std::vector<ThreadScript> Threads;
  /// Clock/CM configuration of the explored TM. The clock choice changes
  /// the instrumented step stream (and so the schedule tree); the CM by
  /// the placement contract (stm/ContentionManager.h) must not — the
  /// ExploreTest CM-independence suite pins exactly that.
  TmConfig Tm;
};

/// How one scripted transaction ended in one run.
struct TxnResult {
  bool Committed = false;
  bool ReadOnlyHint = false; ///< The script used txBeginReadOnly.
  AbortCause Cause = AbortCause::AC_None;
};

/// Runs one thread's script to completion against \p M (single-shot: an
/// abort ends the transaction, no retry). Appends one TxnResult per
/// scripted transaction to \p Results.
void runThreadScript(Tm &M, const ThreadScript &S, ThreadId Tid,
                     std::vector<TxnResult> &Results);

} // namespace ptm

#endif // PTM_EXPLORE_SCRIPT_H
