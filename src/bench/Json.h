//===-- bench/Json.h - Minimal JSON emission --------------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer over RawOStream, enough to emit the
/// benchmark trajectory files (`BENCH_*.json`). It guarantees
/// well-formedness by construction: commas and colons are inserted by the
/// writer, strings are escaped per RFC 8259, and non-finite doubles are
/// emitted as `null` (JSON has no NaN/Infinity).
///
/// There is deliberately no JSON *parser* here — the trajectory consumers
/// are external tools; the unit tests carry their own tiny validator.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_BENCH_JSON_H
#define PTM_BENCH_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ptm {

class RawOStream;

namespace bench {

/// Returns \p Raw with JSON string escaping applied (quotes, backslashes,
/// and control characters; non-ASCII bytes pass through, so valid UTF-8
/// input stays valid UTF-8 output). The result is NOT quoted.
std::string jsonEscaped(std::string_view Raw);

/// Formats \p Value as a JSON number token; non-finite values become the
/// token "null". Uses %.12g — enough precision for benchmark metrics while
/// keeping the files humanly diffable.
std::string jsonNumber(double Value);

/// Streaming JSON writer. Usage:
/// \code
///   JsonWriter W(OS);
///   W.beginObject();
///   W.key("schema").value("ptm-bench-v1");
///   W.key("results").beginArray();
///   ...
///   W.endArray();
///   W.endObject();
/// \endcode
/// Structural validity (matching begin/end, key-before-value inside
/// objects) is asserted in debug builds.
class JsonWriter {
public:
  explicit JsonWriter(RawOStream &Out) : OS(Out) {}

  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits an object member key; must be followed by exactly one value
  /// (or begin of a nested container).
  JsonWriter &key(std::string_view K);

  JsonWriter &value(std::string_view V);
  JsonWriter &value(const char *V) { return value(std::string_view(V)); }
  JsonWriter &value(double V);
  JsonWriter &value(uint64_t V);
  JsonWriter &value(unsigned V) { return value(static_cast<uint64_t>(V)); }
  JsonWriter &value(bool V);
  JsonWriter &null();

  /// Emits a raw newline between elements (cosmetic only: keeps one
  /// result row per line so trajectory files diff cleanly).
  JsonWriter &newline();

private:
  /// Emits the separating comma if a sibling value was already written at
  /// the current nesting level.
  void separate();

  RawOStream &OS;
  std::vector<char> Stack;  ///< 'O' = object, 'A' = array.
  bool NeedComma = false;   ///< A sibling was emitted at this level.
  bool PendingKey = false;  ///< key() was called; next value closes it.
};

} // namespace bench
} // namespace ptm

#endif // PTM_BENCH_JSON_H
