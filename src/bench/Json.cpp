//===-- bench/Json.cpp - Minimal JSON emission ----------------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "bench/Json.h"

#include "support/RawOStream.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace ptm {
namespace bench {

std::string jsonEscaped(std::string_view Raw) {
  std::string Out;
  Out.reserve(Raw.size());
  for (unsigned char C : Raw) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

std::string jsonNumber(double Value) {
  if (!std::isfinite(Value))
    return "null";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.12g", Value);
  return Buf;
}

void JsonWriter::separate() {
  assert(!PendingKey || !NeedComma);
  if (PendingKey) {
    PendingKey = false;
    return; // key() already wrote "...":
  }
  assert((Stack.empty() || Stack.back() == 'A') &&
         "object members need a key() first");
  if (NeedComma)
    OS << ',';
}

JsonWriter &JsonWriter::beginObject() {
  separate();
  OS << '{';
  Stack.push_back('O');
  NeedComma = false;
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back() == 'O' && "unbalanced endObject");
  assert(!PendingKey && "dangling key at endObject");
  Stack.pop_back();
  OS << '}';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  separate();
  OS << '[';
  Stack.push_back('A');
  NeedComma = false;
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!Stack.empty() && Stack.back() == 'A' && "unbalanced endArray");
  Stack.pop_back();
  OS << ']';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::key(std::string_view K) {
  assert(!Stack.empty() && Stack.back() == 'O' && "key() outside an object");
  assert(!PendingKey && "two keys in a row");
  if (NeedComma)
    OS << ',';
  OS << '"' << jsonEscaped(K) << "\":";
  PendingKey = true;
  NeedComma = false;
  return *this;
}

JsonWriter &JsonWriter::value(std::string_view V) {
  separate();
  OS << '"' << jsonEscaped(V) << '"';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(double V) {
  separate();
  OS << jsonNumber(V);
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t V) {
  separate();
  OS << V;
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(bool V) {
  separate();
  OS << (V ? "true" : "false");
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::null() {
  separate();
  OS << "null";
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::newline() {
  OS << '\n';
  return *this;
}

} // namespace bench
} // namespace ptm
