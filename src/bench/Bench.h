//===-- bench/Bench.h - Umbrella header for the bench harness --*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience umbrella for benchmark translation units: the registry and
/// context (Benchmark.h), repetition statistics (Stats.h), the CLI runner
/// (Runner.h) and JSON emission (Json.h). A benchmark author includes
/// just this header, defines `void myBench(bench::BenchContext &)`, and
/// registers it with PTM_BENCHMARK; `bench/main.cpp` supplies the shared
/// main() for every benchmark binary. See BENCHMARKS.md for the full
/// authoring guide and the JSON trajectory schema.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_BENCH_BENCH_H
#define PTM_BENCH_BENCH_H

#include "bench/Benchmark.h" // IWYU pragma: export
#include "bench/Json.h"      // IWYU pragma: export
#include "bench/Runner.h"    // IWYU pragma: export
#include "bench/Stats.h"     // IWYU pragma: export

#endif // PTM_BENCH_BENCH_H
