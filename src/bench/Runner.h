//===-- bench/Runner.h - Benchmark CLI driver and reporters ----*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line front end shared by every bench_* binary and by the
/// consolidated `run_all` driver. Parses the common flags:
///
///   --filter <pat>   run only benchmarks matching <pat> (glob/substring)
///   --threads <list> comma-separated thread-count sweep, e.g. 1,2,4
///   --reps <n>       measured repetitions per wall-clock metric
///   --warmup <n>     discarded warmup repetitions
///   --smoke          reduced problem sizes (CI sanity / trajectory mode)
///   --json <path>    write all results to one JSON file
///   --json-dir <dir> write one BENCH_<family>.json per trajectory family
///   --list           list registered benchmarks and their paper claims
///
/// and renders results through two reporters: the human-readable
/// support/Table view and the machine-readable JSON trajectory schema
/// documented in BENCHMARKS.md.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_BENCH_RUNNER_H
#define PTM_BENCH_RUNNER_H

#include "bench/Benchmark.h"

#include <string>
#include <vector>

namespace ptm {

class RawOStream;

namespace bench {

/// Parsed command-line options; field defaults are the no-flag defaults.
struct CliOptions {
  std::string Filter;                ///< Empty = run everything.
  RunConfig Config;                  ///< Reps/warmup/smoke/threads.
  std::string JsonPath;              ///< --json target (empty = none).
  std::string JsonDir;               ///< --json-dir target (empty = none).
  bool List = false;                 ///< --list: print and exit.
  bool Help = false;                 ///< --help/-h: print usage and exit.
};

/// Parses \p Argv into \p Opts. Returns false and fills \p Error on
/// malformed input. Under --smoke, reps/warmup default to 2/0 unless
/// explicitly overridden.
bool parseCliOptions(int Argc, const char *const *Argv, CliOptions &Opts,
                     std::string &Error);

/// Prints the usage text to \p OS.
void printUsage(RawOStream &OS, const char *Binary);

/// --list reporter: one aligned table of the registered benchmarks —
/// name, trajectory family, and the paper claim each measures.
void printBenchList(RawOStream &OS, const std::vector<const BenchDef *> &Defs);

/// Human reporter: one aligned table per benchmark, preceded by the
/// benchmark's name and paper claim.
void printResultsTable(RawOStream &OS, const std::vector<ResultRow> &Rows,
                       const std::vector<const BenchDef *> &Defs);

/// Machine reporter: serializes \p Rows (and the metadata of \p Defs)
/// into the `ptm-bench-v1` JSON document described in BENCHMARKS.md.
void writeResultsJson(RawOStream &OS, const std::vector<ResultRow> &Rows,
                      const std::vector<const BenchDef *> &Defs,
                      const RunConfig &Config);

/// Convenience for tests: writeResultsJson into a string.
std::string resultsToJson(const std::vector<ResultRow> &Rows,
                          const std::vector<const BenchDef *> &Defs,
                          const RunConfig &Config);

/// The shared main(): parses flags, selects benchmarks from
/// Registry::global(), runs them, prints tables to stdout and writes the
/// requested JSON file(s). Returns 0 on success, 1 when the filter
/// matches nothing, 2 on CLI or I/O errors.
int benchMain(int Argc, const char *const *Argv);

} // namespace bench
} // namespace ptm

#endif // PTM_BENCH_RUNNER_H
