//===-- bench/Runner.cpp - Benchmark CLI driver and reporters -------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "bench/Runner.h"

#include "bench/Json.h"
#include "support/Affinity.h"
#include "support/Format.h"
#include "support/RawOStream.h"
#include "support/Table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace ptm {
namespace bench {

namespace {

/// Formats a metric value: integral values print without a fraction so
/// step/RMR counts stay readable; everything else gets two decimals.
std::string formatMetric(double Value) {
  if (std::isfinite(Value) && Value == std::floor(Value) &&
      std::fabs(Value) < 1e15)
    return formatInt(static_cast<int64_t>(Value));
  return formatDouble(Value, 2);
}

/// Parses a non-negative integer; false on junk.
bool parseUnsigned(std::string_view Text, unsigned &Out) {
  if (Text.empty())
    return false;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    Value = Value * 10 + static_cast<uint64_t>(C - '0');
    if (Value > 1u << 20)
      return false;
  }
  Out = static_cast<unsigned>(Value);
  return true;
}

/// Parses a comma-separated list of positive thread counts.
bool parseThreadList(std::string_view Text, std::vector<unsigned> &Out) {
  Out.clear();
  while (!Text.empty()) {
    size_t Comma = Text.find(',');
    std::string_view Item = Text.substr(0, Comma);
    unsigned N = 0;
    if (!parseUnsigned(Item, N) || N == 0)
      return false;
    Out.push_back(N);
    if (Comma == std::string_view::npos)
      break;
    Text.remove_prefix(Comma + 1);
  }
  return !Out.empty();
}

std::string joinParams(const std::vector<Param> &Params) {
  std::string Out;
  for (const Param &P : Params) {
    if (!Out.empty())
      Out += ' ';
    Out += P.Key;
    Out += '=';
    Out += P.Value;
  }
  return Out.empty() ? "-" : Out;
}

void writeRowJson(JsonWriter &W, const ResultRow &Row) {
  W.beginObject();
  W.key("benchmark").value(Row.Benchmark);
  W.key("family").value(Row.Family);
  W.key("tm").value(Row.Tm);
  W.key("threads").value(Row.Threads);
  W.key("params").beginObject();
  for (const Param &P : Row.Params)
    W.key(P.Key).value(P.Value);
  W.endObject();
  W.key("metric").value(Row.Metric);
  W.key("unit").value(Row.Unit);
  W.key("status").value(Row.Status);
  W.key("reps").value(static_cast<uint64_t>(Row.Stats.reps()));
  W.key("min").value(Row.Stats.Min);
  W.key("max").value(Row.Stats.Max);
  W.key("mean").value(Row.Stats.Mean);
  W.key("median").value(Row.Stats.Median);
  W.key("p90").value(Row.Stats.P90);
  W.key("stddev").value(Row.Stats.StdDev);
  W.key("cv").value(Row.Stats.cv());
  W.key("samples").beginArray();
  for (double S : Row.Stats.Samples)
    W.value(S);
  W.endArray();
  W.endObject();
}

/// Writes one JSON document to \p Path; false on I/O failure.
bool writeJsonFile(const std::string &Path, const std::vector<ResultRow> &Rows,
                   const std::vector<const BenchDef *> &Defs,
                   const RunConfig &Config) {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return false;
  FileOStream OS(File);
  writeResultsJson(OS, Rows, Defs, Config);
  OS.flush();
  return std::fclose(File) == 0;
}

} // namespace

bool parseCliOptions(int Argc, const char *const *Argv, CliOptions &Opts,
                     std::string &Error) {
  bool RepsSet = false, WarmupSet = false;

  auto NeedValue = [&](int &I, const char *Flag, std::string &Out) {
    if (I + 1 >= Argc) {
      Error = std::string(Flag) + " requires a value";
      return false;
    }
    Out = Argv[++I];
    return true;
  };

  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    std::string Value;
    if (Arg == "--filter") {
      if (!NeedValue(I, "--filter", Opts.Filter))
        return false;
    } else if (Arg == "--threads") {
      if (!NeedValue(I, "--threads", Value))
        return false;
      if (!parseThreadList(Value, Opts.Config.ThreadOverride)) {
        Error = "--threads expects a comma-separated list of positive "
                "integers, got '" +
                Value + "'";
        return false;
      }
    } else if (Arg == "--reps") {
      if (!NeedValue(I, "--reps", Value))
        return false;
      if (!parseUnsigned(Value, Opts.Config.Reps) || Opts.Config.Reps == 0) {
        Error = "--reps expects a positive integer, got '" + Value + "'";
        return false;
      }
      RepsSet = true;
    } else if (Arg == "--warmup") {
      if (!NeedValue(I, "--warmup", Value))
        return false;
      if (!parseUnsigned(Value, Opts.Config.Warmup)) {
        Error = "--warmup expects a non-negative integer, got '" + Value + "'";
        return false;
      }
      WarmupSet = true;
    } else if (Arg == "--smoke") {
      Opts.Config.Smoke = true;
    } else if (Arg == "--pin") {
      Opts.Config.Pin = true;
    } else if (Arg == "--json") {
      if (!NeedValue(I, "--json", Opts.JsonPath))
        return false;
    } else if (Arg == "--json-dir") {
      if (!NeedValue(I, "--json-dir", Opts.JsonDir))
        return false;
    } else if (Arg == "--list") {
      Opts.List = true;
    } else if (Arg == "--help" || Arg == "-h") {
      Opts.Help = true;
    } else {
      Error = "unknown argument '" + std::string(Arg) + "'";
      return false;
    }
  }

  // Smoke mode is a sanity/trajectory pass: default to the cheapest
  // repetition policy unless the caller asked for more.
  if (Opts.Config.Smoke) {
    if (!RepsSet)
      Opts.Config.Reps = 2;
    if (!WarmupSet)
      Opts.Config.Warmup = 0;
  }
  return true;
}

void printUsage(RawOStream &OS, const char *Binary) {
  OS << "usage: " << Binary << " [options]\n"
     << "  --filter <pat>    run only benchmarks matching <pat>\n"
     << "                    (glob with * and ?, else substring)\n"
     << "  --threads <list>  thread-count sweep, e.g. 1,2,4\n"
     << "  --reps <n>        measured repetitions (default 5; 2 in smoke)\n"
     << "  --warmup <n>      warmup repetitions (default 1; 0 in smoke)\n"
     << "  --smoke           reduced problem sizes for a fast pass\n"
     << "  --pin             pin workers round-robin over CPUs (no-op on\n"
     << "                    platforms without thread affinity)\n"
     << "  --json <path>     write all results to one JSON file\n"
     << "  --json-dir <dir>  write one BENCH_<family>.json per family\n"
     << "  --list            list registered benchmarks and exit\n"
     << "  --help            this text\n";
}

void printBenchList(RawOStream &OS, const std::vector<const BenchDef *> &Defs) {
  TablePrinter Table({"benchmark", "family", "paper claim"});
  for (const BenchDef *Def : Defs)
    Table.addRow({Def->Name, Def->Family, Def->Claim});
  Table.print(OS);
}

void printResultsTable(RawOStream &OS, const std::vector<ResultRow> &Rows,
                       const std::vector<const BenchDef *> &Defs) {
  for (const BenchDef *Def : Defs) {
    OS << "=== " << Def->Name << " [" << Def->Family << "] ===\n";
    OS << Def->Claim << "\n\n";
    TablePrinter Table({"tm", "threads", "params", "metric", "unit", "reps",
                        "median", "min", "p90", "cv%", "status"});
    for (const ResultRow &Row : Rows) {
      if (Row.Benchmark != Def->Name)
        continue;
      Table.addRow({Row.Tm, formatInt(uint64_t{Row.Threads}),
                    joinParams(Row.Params), Row.Metric, Row.Unit,
                    formatInt(static_cast<uint64_t>(Row.Stats.reps())),
                    formatMetric(Row.Stats.Median),
                    formatMetric(Row.Stats.Min), formatMetric(Row.Stats.P90),
                    formatDouble(100.0 * Row.Stats.cv(), 1), Row.Status});
    }
    if (Table.numRows() == 0)
      OS << "(no results)\n\n";
    else
      Table.print(OS);
  }
}

void writeResultsJson(RawOStream &OS, const std::vector<ResultRow> &Rows,
                      const std::vector<const BenchDef *> &Defs,
                      const RunConfig &Config) {
  JsonWriter W(OS);
  W.beginObject().newline();
  W.key("schema").value("ptm-bench-v1").newline();
  W.key("smoke").value(Config.Smoke).newline();
  W.key("config").beginObject();
  W.key("reps").value(Config.Reps);
  W.key("warmup").value(Config.Warmup);
  // Both the request and the outcome: `pin` echoes --pin, `pin_applied`
  // says whether this platform could actually honor it, so trajectory
  // comparisons never conflate "unpinned by choice" with "unpinnable".
  W.key("pin").value(Config.Pin);
  W.key("pin_applied").value(Config.Pin && affinitySupported());
  W.key("threads").beginArray();
  for (unsigned N : Config.ThreadOverride)
    W.value(N);
  W.endArray();
  W.endObject().newline();
  W.key("benchmarks").beginArray().newline();
  for (const BenchDef *Def : Defs) {
    W.beginObject();
    W.key("name").value(Def->Name);
    W.key("family").value(Def->Family);
    W.key("claim").value(Def->Claim);
    W.endObject().newline();
  }
  W.endArray().newline();
  W.key("results").beginArray().newline();
  for (const ResultRow &Row : Rows) {
    writeRowJson(W, Row);
    W.newline();
  }
  W.endArray().newline();
  W.endObject().newline();
}

std::string resultsToJson(const std::vector<ResultRow> &Rows,
                          const std::vector<const BenchDef *> &Defs,
                          const RunConfig &Config) {
  std::string Out;
  StringOStream OS(Out);
  writeResultsJson(OS, Rows, Defs, Config);
  return Out;
}

int benchMain(int Argc, const char *const *Argv) {
  CliOptions Opts;
  std::string Error;
  if (!parseCliOptions(Argc, Argv, Opts, Error)) {
    errs() << "error: " << Error << "\n";
    printUsage(errs(), Argv[0]);
    return 2;
  }
  if (Opts.Help) {
    printUsage(outs(), Argv[0]);
    return 0;
  }

  std::vector<const BenchDef *> Selected =
      Registry::global().match(Opts.Filter);

  if (Opts.List) {
    printBenchList(outs(), Selected);
    outs().flush();
    return 0;
  }

  if (Selected.empty()) {
    errs() << "error: no benchmarks match filter '" << Opts.Filter << "'\n";
    return 1;
  }

  // The pinning switch is process-global (see support/Affinity.h): the
  // worker-spawn sites consult it so benchmarks need no plumbing.
  setThreadPinningEnabled(Opts.Config.Pin);

  std::vector<ResultRow> Rows = Registry::run(Selected, Opts.Config);
  printResultsTable(outs(), Rows, Selected);

  if (!Opts.JsonPath.empty()) {
    if (!writeJsonFile(Opts.JsonPath, Rows, Selected, Opts.Config)) {
      errs() << "error: cannot write '" << Opts.JsonPath << "'\n";
      return 2;
    }
    outs() << "JSON results written to " << Opts.JsonPath << "\n";
  }

  if (!Opts.JsonDir.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(Opts.JsonDir, Ec);
    if (Ec) {
      errs() << "error: cannot create '" << Opts.JsonDir
             << "': " << Ec.message() << "\n";
      return 2;
    }
    // One consolidated file per trajectory family, preserving the sorted
    // benchmark order inside each.
    std::vector<std::string> Families;
    for (const BenchDef *Def : Selected)
      if (std::find(Families.begin(), Families.end(), Def->Family) ==
          Families.end())
        Families.push_back(Def->Family);
    for (const std::string &Family : Families) {
      std::vector<const BenchDef *> FamilyDefs;
      for (const BenchDef *Def : Selected)
        if (Def->Family == Family)
          FamilyDefs.push_back(Def);
      std::vector<ResultRow> FamilyRows;
      for (const ResultRow &Row : Rows)
        if (Row.Family == Family)
          FamilyRows.push_back(Row);
      std::string Path = Opts.JsonDir + "/BENCH_" + Family + ".json";
      if (!writeJsonFile(Path, FamilyRows, FamilyDefs, Opts.Config)) {
        errs() << "error: cannot write '" << Path << "'\n";
        return 2;
      }
      outs() << "JSON results written to " << Path << "\n";
    }
  }

  outs().flush();
  return 0;
}

} // namespace bench
} // namespace ptm
