//===-- bench/Stats.cpp - Repetition statistics ---------------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "bench/Stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ptm {
namespace bench {

double percentile(const std::vector<double> &Sorted, double Pct) {
  assert(!Sorted.empty() && "percentile of an empty sample set");
  assert(Pct >= 0.0 && Pct <= 100.0 && "percentile outside [0, 100]");
  if (Sorted.size() == 1)
    return Sorted.front();
  double Rank = (Pct / 100.0) * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Sorted[Lo] + Frac * (Sorted[Hi] - Sorted[Lo]);
}

SampleStats SampleStats::compute(std::vector<double> RawSamples) {
  SampleStats S;
  S.Samples = std::move(RawSamples);
  if (S.Samples.empty())
    return S;

  std::vector<double> Sorted = S.Samples;
  std::sort(Sorted.begin(), Sorted.end());

  S.Min = Sorted.front();
  S.Max = Sorted.back();
  S.Median = percentile(Sorted, 50.0);
  S.P90 = percentile(Sorted, 90.0);

  double Sum = 0.0;
  for (double V : Sorted)
    Sum += V;
  S.Mean = Sum / static_cast<double>(Sorted.size());

  if (Sorted.size() > 1) {
    double SqDev = 0.0;
    for (double V : Sorted)
      SqDev += (V - S.Mean) * (V - S.Mean);
    S.StdDev = std::sqrt(SqDev / static_cast<double>(Sorted.size() - 1));
  }
  return S;
}

} // namespace bench
} // namespace ptm
