//===-- bench/Stats.h - Repetition statistics -------------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics over benchmark repetition samples. Every metric the
/// harness reports — wall-clock throughput as well as deterministic step /
/// RMR counts — is reduced to a SampleStats, so the table and JSON
/// reporters can treat all benchmarks uniformly.
///
/// Conventions (documented in BENCHMARKS.md):
///  * percentiles use linear interpolation between closest ranks
///    (the "linear" method of NumPy/R type 7);
///  * StdDev is the sample standard deviation (n-1 denominator), 0 for
///    fewer than two samples;
///  * the coefficient of variation is StdDev/Mean, 0 when Mean is 0.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_BENCH_STATS_H
#define PTM_BENCH_STATS_H

#include <cstddef>
#include <vector>

namespace ptm {
namespace bench {

/// Returns the \p Pct-th percentile (0..100) of \p Sorted, which must be
/// sorted ascending and non-empty, using linear interpolation between the
/// two closest ranks.
double percentile(const std::vector<double> &Sorted, double Pct);

/// Reduction of one benchmark configuration's repetition samples. Produced
/// by SampleStats::compute(); the raw samples are retained (in collection
/// order) so the JSON trajectory keeps full fidelity.
struct SampleStats {
  std::vector<double> Samples; ///< Raw samples, collection order.
  double Min = 0.0;            ///< Smallest sample.
  double Max = 0.0;            ///< Largest sample.
  double Mean = 0.0;           ///< Arithmetic mean.
  double Median = 0.0;         ///< 50th percentile.
  double P90 = 0.0;            ///< 90th percentile.
  double StdDev = 0.0;         ///< Sample standard deviation (n-1).

  /// Number of measured repetitions behind these statistics.
  size_t reps() const { return Samples.size(); }

  /// Coefficient of variation (StdDev / Mean); 0 when Mean is 0. Values
  /// above ~0.1 on a time-based metric mean the host was too noisy.
  double cv() const { return Mean == 0.0 ? 0.0 : StdDev / Mean; }

  /// Computes all statistics from \p RawSamples. An empty vector yields
  /// all-zero statistics (used for rows whose Status is not "ok").
  static SampleStats compute(std::vector<double> RawSamples);

  /// Convenience for deterministic metrics measured exactly once (step
  /// counts, distinct-object counts, simulated RMRs).
  static SampleStats once(double Value) { return compute({Value}); }
};

} // namespace bench
} // namespace ptm

#endif // PTM_BENCH_STATS_H
