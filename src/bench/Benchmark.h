//===-- bench/Benchmark.h - Benchmark registry and context -----*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared benchmark harness every `bench_*` binary is built on.
///
/// A benchmark is a named function registered with PTM_BENCHMARK; at run
/// time it receives a BenchContext carrying the run configuration
/// (repetitions, warmup, smoke mode, thread-count sweep) and reports
/// ResultRow records — one per (subject, thread count, parameter point,
/// metric). The runner (Runner.h) selects benchmarks by name, executes
/// them, and renders the rows through the table and JSON reporters.
///
/// Two measurement styles coexist:
///  * wall-clock metrics call BenchContext::measure(), which applies the
///    warmup + repetition policy and reduces the samples to SampleStats;
///  * deterministic model metrics (step counts, distinct base objects,
///    simulated RMRs) are exact by construction and use
///    SampleStats::once() — repeating them would only repeat the digits.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_BENCH_BENCHMARK_H
#define PTM_BENCH_BENCHMARK_H

#include "bench/Stats.h"

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace ptm {
namespace bench {

/// One named parameter of a result row (e.g. {"m", "64"} or
/// {"model", "cc-wt"}). Values are strings in the JSON schema; use the
/// param() helpers for numeric values.
struct Param {
  std::string Key;
  std::string Value;
};

/// Builds a string-valued parameter.
Param param(std::string_view Key, std::string_view Value);
/// Builds an integer-valued parameter.
Param param(std::string_view Key, uint64_t Value);
/// Builds a real-valued parameter with \p Precision fractional digits.
Param param(std::string_view Key, double Value, unsigned Precision = 2);

/// One reported measurement: a single metric of a single benchmark
/// configuration. `Benchmark` and `Family` are stamped by the harness
/// when the row is reported; benchmark code fills in the rest.
struct ResultRow {
  std::string Benchmark; ///< Registered benchmark name (harness-stamped).
  std::string Family;    ///< Trajectory family (harness-stamped).
  std::string Tm;        ///< Subject algorithm: a TM kind name, or a lock
                         ///< label for the mutex benchmarks.
  unsigned Threads = 1;  ///< Number of worker threads in this config.
  std::vector<Param> Params; ///< Remaining configuration axes.
  std::string Metric;        ///< Metric name, e.g. "total_steps".
  std::string Unit;          ///< Unit, e.g. "steps", "txn/s", "rmr".
  std::string Status = "ok"; ///< "ok", or a sentinel like "livelock" for
                             ///< configurations with no valid measurement.
  SampleStats Stats;         ///< The samples and their reduction.
};

/// The run configuration shared by all benchmarks of one invocation;
/// built by the CLI parser (Runner.h) or directly by tests.
struct RunConfig {
  unsigned Reps = 5;    ///< Measured repetitions per wall-clock metric.
  unsigned Warmup = 1;  ///< Discarded warmup repetitions before measuring.
  bool Smoke = false;   ///< Shrink problem sizes for a fast sanity pass.
  bool Pin = false;     ///< --pin: round-robin workers over CPUs (no-op on
                        ///< platforms without an affinity API).
  std::vector<unsigned> ThreadOverride; ///< --threads list; empty = use
                                        ///< each benchmark's defaults.
};

/// Execution context handed to a benchmark function: exposes the run
/// configuration, applies the measurement policy, and collects rows.
class BenchContext {
public:
  explicit BenchContext(const RunConfig &Config) : Cfg(Config) {}

  /// True when the run should use reduced problem sizes (--smoke).
  bool smoke() const { return Cfg.Smoke; }
  /// Measured repetitions applied by measure().
  unsigned reps() const { return Cfg.Reps; }
  /// Warmup repetitions discarded by measure().
  unsigned warmup() const { return Cfg.Warmup; }

  /// Picks \p Full normally and \p Small under --smoke.
  template <typename T> T pick(T Full, T Small) const {
    return Cfg.Smoke ? Small : Full;
  }

  /// The thread counts to sweep: the --threads override when given,
  /// otherwise \p Defaults. Benchmarks with a fixed thread structure
  /// never call this; the runner then warns when an override was given
  /// so it cannot be ignored silently.
  std::vector<unsigned>
  threadCounts(const std::vector<unsigned> &Defaults) const {
    ThreadsConsumed = true;
    return Cfg.ThreadOverride.empty() ? Defaults : Cfg.ThreadOverride;
  }

  /// True once threadCounts() has been consulted (see above).
  bool threadCountsConsumed() const { return ThreadsConsumed; }

  /// Runs \p Sample `warmup()` times discarding the results, then
  /// `reps()` times collecting them, and returns the reduction. The
  /// callable re-creates its subject per call so repetitions are
  /// independent.
  SampleStats measure(const std::function<double()> &Sample) const;

  /// Records one result row. The harness stamps Benchmark/Family.
  void report(ResultRow Row);

  /// All rows reported so far, in report() order.
  const std::vector<ResultRow> &rows() const { return Rows; }

  /// Moves the collected rows out (used by the runner).
  std::vector<ResultRow> takeRows() { return std::move(Rows); }

private:
  friend class Registry;

  RunConfig Cfg;
  std::string CurrentName;   ///< Stamped onto reported rows.
  std::string CurrentFamily; ///< Stamped onto reported rows.
  mutable bool ThreadsConsumed = false;
  std::vector<ResultRow> Rows;
};

/// A registered benchmark: stable name, trajectory family (groups rows
/// into one BENCH_<family>.json file), the paper claim it measures (shown
/// by --list and embedded in the JSON), and the function to run.
struct BenchDef {
  std::string Name;
  std::string Family;
  std::string Claim;
  std::function<void(BenchContext &)> Run;
};

/// True if \p Name matches \p Pattern: `*` and `?` glob wildcards when
/// present, plain substring match otherwise. The empty pattern matches
/// everything.
bool nameMatches(std::string_view Pattern, std::string_view Name);

/// A set of benchmark definitions. Each bench_* binary contributes its
/// definitions to global() via static registration (PTM_BENCHMARK); tests
/// build private instances.
class Registry {
public:
  /// The process-wide registry that PTM_BENCHMARK populates.
  static Registry &global();

  /// Adds \p Def. Duplicate names are rejected (returns false) so two
  /// translation units cannot silently shadow each other.
  bool add(BenchDef Def);

  /// Definitions matching \p Pattern (see nameMatches), sorted by name so
  /// output order is independent of static-initialization order.
  std::vector<const BenchDef *> match(std::string_view Pattern) const;

  /// Number of registered benchmarks.
  size_t size() const { return Defs.size(); }

  /// Runs every definition in \p Selected against a fresh context with
  /// \p Config and returns all reported rows, stamped with the owning
  /// benchmark's name and family.
  static std::vector<ResultRow> run(const std::vector<const BenchDef *> &Selected,
                                    const RunConfig &Config);

private:
  std::vector<BenchDef> Defs;
};

/// Static registrar used by PTM_BENCHMARK. A duplicate name aborts at
/// startup: in `run_all` (which links every benchmark TU) a silently
/// dropped registration would erase that benchmark's trajectory rows
/// with no other symptom.
struct RegisterBench {
  RegisterBench(std::string Name, std::string Family, std::string Claim,
                std::function<void(BenchContext &)> Run);
};

/// Registers function \p FN (void(BenchContext &)) as benchmark \p NAME in
/// trajectory family \p FAMILY, measuring paper claim \p CLAIM.
#define PTM_BENCHMARK(NAME, FAMILY, CLAIM, FN)                                \
  static const ::ptm::bench::RegisterBench PtmBenchRegistrar_##FN(            \
      NAME, FAMILY, CLAIM, FN)

} // namespace bench
} // namespace ptm

#endif // PTM_BENCH_BENCHMARK_H
