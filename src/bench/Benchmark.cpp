//===-- bench/Benchmark.cpp - Benchmark registry and context --------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "bench/Benchmark.h"

#include "support/Format.h"
#include "support/RawOStream.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace ptm {
namespace bench {

Param param(std::string_view Key, std::string_view Value) {
  return {std::string(Key), std::string(Value)};
}

Param param(std::string_view Key, uint64_t Value) {
  return {std::string(Key), formatInt(Value)};
}

Param param(std::string_view Key, double Value, unsigned Precision) {
  return {std::string(Key), formatDouble(Value, Precision)};
}

SampleStats BenchContext::measure(const std::function<double()> &Sample) const {
  for (unsigned I = 0; I < Cfg.Warmup; ++I)
    (void)Sample();
  std::vector<double> Samples;
  Samples.reserve(Cfg.Reps);
  for (unsigned I = 0; I < Cfg.Reps; ++I)
    Samples.push_back(Sample());
  return SampleStats::compute(std::move(Samples));
}

void BenchContext::report(ResultRow Row) {
  Row.Benchmark = CurrentName;
  Row.Family = CurrentFamily;
  Rows.push_back(std::move(Row));
}

bool nameMatches(std::string_view Pattern, std::string_view Name) {
  if (Pattern.empty())
    return true;
  if (Pattern.find('*') == std::string_view::npos &&
      Pattern.find('?') == std::string_view::npos)
    return Name.find(Pattern) != std::string_view::npos;

  // Iterative glob with single-star backtracking.
  size_t P = 0, N = 0;
  size_t StarP = std::string_view::npos, StarN = 0;
  while (N < Name.size()) {
    if (P < Pattern.size() &&
        (Pattern[P] == '?' || Pattern[P] == Name[N])) {
      ++P;
      ++N;
    } else if (P < Pattern.size() && Pattern[P] == '*') {
      StarP = P++;
      StarN = N;
    } else if (StarP != std::string_view::npos) {
      P = StarP + 1;
      N = ++StarN;
    } else {
      return false;
    }
  }
  while (P < Pattern.size() && Pattern[P] == '*')
    ++P;
  return P == Pattern.size();
}

Registry &Registry::global() {
  static Registry Instance;
  return Instance;
}

RegisterBench::RegisterBench(std::string Name, std::string Family,
                             std::string Claim,
                             std::function<void(BenchContext &)> Run) {
  std::string Duplicate = Name;
  if (!Registry::global().add({std::move(Name), std::move(Family),
                               std::move(Claim), std::move(Run)})) {
    // Static-init context: keep diagnostics to bare stdio.
    std::fprintf(stderr,
                 "ptm-bench: duplicate benchmark registration '%s'\n",
                 Duplicate.c_str());
    std::abort();
  }
}

bool Registry::add(BenchDef Def) {
  for (const BenchDef &Existing : Defs)
    if (Existing.Name == Def.Name)
      return false;
  Defs.push_back(std::move(Def));
  return true;
}

std::vector<const BenchDef *> Registry::match(std::string_view Pattern) const {
  std::vector<const BenchDef *> Out;
  for (const BenchDef &Def : Defs)
    if (nameMatches(Pattern, Def.Name))
      Out.push_back(&Def);
  std::sort(Out.begin(), Out.end(),
            [](const BenchDef *A, const BenchDef *B) {
              return A->Name < B->Name;
            });
  return Out;
}

std::vector<ResultRow>
Registry::run(const std::vector<const BenchDef *> &Selected,
              const RunConfig &Config) {
  std::vector<ResultRow> All;
  for (const BenchDef *Def : Selected) {
    BenchContext Ctx(Config);
    Ctx.CurrentName = Def->Name;
    Ctx.CurrentFamily = Def->Family;
    Def->Run(Ctx);
    if (!Config.ThreadOverride.empty() && !Ctx.threadCountsConsumed())
      errs() << "note: benchmark '" << Def->Name
             << "' has a fixed thread structure; --threads was ignored\n";
    std::vector<ResultRow> Rows = Ctx.takeRows();
    All.insert(All.end(), std::make_move_iterator(Rows.begin()),
               std::make_move_iterator(Rows.end()));
  }
  return All;
}

} // namespace bench
} // namespace ptm
