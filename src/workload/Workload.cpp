//===-- workload/Workload.cpp - Deterministic STM workloads ---------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "workload/Workload.h"

#include "stm/Atomically.h"
#include "support/Random.h"
#include "support/Zipf.h"
#include "workload/Driver.h"

#include <atomic>
#include <cassert>
#include <vector>

using namespace ptm;

RunResult ptm::runHotspot(Tm &M, unsigned Threads, uint64_t TxnsPerThread) {
  assert(Threads <= M.maxThreads() && "more threads than TM slots");
  M.resetStats();
  M.init(0, 0);

  double Seconds = runParallel(Threads, [&](ThreadId Tid) {
    for (uint64_t I = 0; I < TxnsPerThread; ++I) {
      atomically(M, Tid, [](TxRef &Tx) {
        uint64_t V = Tx.readOr(0, 0);
        Tx.write(0, V + 1);
      });
    }
  });

  RunResult R = finalizeRun(M, Seconds);
  R.ValueChecksum = M.sample(0);
  return R;
}

RunResult ptm::runDisjoint(Tm &M, unsigned Threads, uint64_t TxnsPerThread,
                           unsigned PartitionSize, unsigned TxnSize,
                           uint64_t Seed) {
  assert(Threads <= M.maxThreads() && "more threads than TM slots");
  assert(static_cast<uint64_t>(Threads) * PartitionSize <= M.numObjects() &&
         "partitions exceed the TM's object array");
  assert(TxnSize <= PartitionSize && "transaction larger than partition");
  M.resetStats();

  double Seconds = runParallel(Threads, [&](ThreadId Tid) {
    Xoshiro256 Rng(threadSeed(Seed, Tid));
    ObjectId Base = Tid * PartitionSize;
    for (uint64_t I = 0; I < TxnsPerThread; ++I) {
      atomically(M, Tid, [&](TxRef &Tx) {
        for (unsigned K = 0; K < TxnSize; ++K) {
          ObjectId Obj =
              Base + static_cast<ObjectId>(Rng.nextBounded(PartitionSize));
          uint64_t V = Tx.readOr(Obj, 0);
          Tx.write(Obj, V + 1);
        }
      });
    }
  });

  RunResult R = finalizeRun(M, Seconds);
  for (ObjectId Obj = 0; Obj < Threads * PartitionSize; ++Obj)
    R.ValueChecksum += M.sample(Obj);
  return R;
}

RunResult ptm::runZipfMix(Tm &M, unsigned Threads, uint64_t TxnsPerThread,
                          unsigned TxnSize, double ReadProb, double Theta,
                          uint64_t Seed) {
  assert(Threads <= M.maxThreads() && "more threads than TM slots");
  assert(TxnSize > 0 && "transactions must touch something");
  M.resetStats();
  ZipfDistribution Zipf(M.numObjects(), Theta);

  double Seconds = runParallel(Threads, [&](ThreadId Tid) {
    Xoshiro256 Rng(threadSeed(Seed, Tid));
    for (uint64_t I = 0; I < TxnsPerThread; ++I) {
      // Pre-draw the access pattern so retries replay the same ops.
      ObjectId Objs[64];
      bool IsRead[64];
      unsigned N = TxnSize > 64 ? 64 : TxnSize;
      for (unsigned K = 0; K < N; ++K) {
        Objs[K] = static_cast<ObjectId>(Zipf.sample(Rng));
        IsRead[K] = Rng.nextBool(ReadProb);
      }
      atomically(M, Tid, [&](TxRef &Tx) {
        for (unsigned K = 0; K < N; ++K) {
          uint64_t V = Tx.readOr(Objs[K], 0);
          if (!IsRead[K])
            Tx.write(Objs[K], V + 1);
        }
      });
    }
  });

  RunResult R = finalizeRun(M, Seconds);
  for (ObjectId Obj = 0; Obj < M.numObjects(); ++Obj)
    R.ValueChecksum += M.sample(Obj);
  return R;
}

RunResult ptm::runBank(Tm &M, unsigned Threads, uint64_t TransfersPerThread,
                       uint64_t InitialBalance, uint64_t Seed) {
  assert(Threads <= M.maxThreads() && "more threads than TM slots");
  unsigned Accounts = M.numObjects();
  assert(Accounts >= 2 && "bank needs at least two accounts");
  M.resetStats();
  for (ObjectId A = 0; A < Accounts; ++A)
    M.init(A, InitialBalance);

  double Seconds = runParallel(Threads, [&](ThreadId Tid) {
    Xoshiro256 Rng(threadSeed(Seed, Tid));
    for (uint64_t I = 0; I < TransfersPerThread; ++I) {
      ObjectId From = static_cast<ObjectId>(Rng.nextBounded(Accounts));
      ObjectId To = static_cast<ObjectId>(Rng.nextBounded(Accounts - 1));
      if (To >= From)
        ++To;
      uint64_t Amount = Rng.nextBounded(100);
      atomically(M, Tid, [&](TxRef &Tx) {
        uint64_t FromBal = Tx.readOr(From, 0);
        uint64_t ToBal = Tx.readOr(To, 0);
        // Move what is available, never overdrawing.
        uint64_t Moved = FromBal < Amount ? FromBal : Amount;
        Tx.write(From, FromBal - Moved);
        Tx.write(To, ToBal + Moved);
      });
    }
  });

  RunResult R = finalizeRun(M, Seconds);
  for (ObjectId A = 0; A < Accounts; ++A)
    R.ValueChecksum += M.sample(A);
  return R;
}

RunResult ptm::runReadSweepWithWriters(Tm &M, unsigned Threads,
                                       unsigned ReadSetSize,
                                       uint64_t ReaderTxns,
                                       uint64_t WriterTxns, uint64_t Seed) {
  assert(Threads >= 1 && Threads <= M.maxThreads() && "bad thread count");
  assert(ReadSetSize <= M.numObjects() && "read set exceeds object array");
  M.resetStats();

  std::atomic<uint64_t> ReadOnlyCommits{0};
  double Seconds = runParallel(Threads, [&](ThreadId Tid) {
    if (Tid == 0) {
      // The reader: snapshot all objects, checking a consistency witness
      // (all reads within one transaction must see a coherent state; the
      // checksum below is recomputed per transaction).
      for (uint64_t I = 0; I < ReaderTxns; ++I) {
        bool Ok = atomically(
            M, Tid,
            [&](TxRef &Tx) {
              uint64_t Sum = 0;
              for (ObjectId Obj = 0; Obj < ReadSetSize; ++Obj)
                Sum += Tx.readOr(Obj, 0);
              (void)Sum;
            },
            /*MaxAttempts=*/1000);
        if (Ok)
          ReadOnlyCommits.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    // Writers fault the reader's validation paths.
    Xoshiro256 Rng(threadSeed(Seed, Tid));
    for (uint64_t I = 0; I < WriterTxns; ++I) {
      ObjectId Obj = static_cast<ObjectId>(Rng.nextBounded(ReadSetSize));
      atomically(M, Tid, [&](TxRef &Tx) {
        uint64_t V = Tx.readOr(Obj, 0);
        Tx.write(Obj, V + 1);
      });
    }
  });

  RunResult R = finalizeRun(M, Seconds);
  R.ValueChecksum = ReadOnlyCommits.load();
  return R;
}
