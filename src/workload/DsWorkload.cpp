//===-- workload/DsWorkload.cpp - Structure-scale STM workloads -----------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "workload/DsWorkload.h"

#include "ds/Ds.h"
#include "support/Random.h"
#include "support/Zipf.h"
#include "workload/Driver.h"

#include <atomic>
#include <cassert>

using namespace ptm;

RunResult ptm::runDsSetMix(ds::TxSet &Set, unsigned Threads,
                           uint64_t OpsPerThread, double InsertProb,
                           double RemoveProb, uint64_t KeySpace, double Theta,
                           uint64_t Seed) {
  Tm &M = Set.tm();
  assert(Threads <= M.maxThreads() && "more threads than TM slots");
  assert(Set.allocator().nodeCapacity() >= KeySpace + Threads &&
         "set capacity must cover the key space plus in-flight inserts");
  M.resetStats();
  ZipfDistribution Zipf(KeySpace, Theta);

  double Seconds = runParallel(Threads, [&](ThreadId Tid) {
    Xoshiro256 Rng(threadSeed(Seed, Tid));
    for (uint64_t I = 0; I < OpsPerThread; ++I) {
      uint64_t Key = Zipf.sample(Rng);
      double Dice = Rng.nextDouble();
      if (Dice < InsertProb)
        Set.insert(Tid, Key);
      else if (Dice < InsertProb + RemoveProb)
        Set.remove(Tid, Key);
      else
        Set.contains(Tid, Key);
    }
  });

  RunResult R = finalizeRun(M, Seconds);
  R.ValueChecksum = Set.sampleKeys().size();
  return R;
}

RunResult ptm::runDsMapMix(ds::TxMap &Map, unsigned Threads,
                           uint64_t OpsPerThread, double GetProb,
                           uint64_t KeySpace, double Theta, uint64_t Seed) {
  Tm &M = Map.tm();
  assert(Threads <= M.maxThreads() && "more threads than TM slots");
  assert(Map.allocator().nodeCapacity() >= KeySpace + Threads &&
         "map capacity must cover the key space plus in-flight puts");
  M.resetStats();
  ZipfDistribution Zipf(KeySpace, Theta);

  double Seconds = runParallel(Threads, [&](ThreadId Tid) {
    Xoshiro256 Rng(threadSeed(Seed, Tid));
    for (uint64_t I = 0; I < OpsPerThread; ++I) {
      uint64_t Key = Zipf.sample(Rng);
      double Dice = Rng.nextDouble();
      if (Dice < GetProb) {
        uint64_t Value;
        Map.get(Tid, Key, Value);
      } else if (Dice < GetProb + (1.0 - GetProb) / 2) {
        Map.put(Tid, Key, (static_cast<uint64_t>(Tid) << 48) | I);
      } else {
        Map.erase(Tid, Key);
      }
    }
  });

  RunResult R = finalizeRun(M, Seconds);
  R.ValueChecksum = Map.sampleEntries().size();
  return R;
}

RunResult ptm::runDsQueuePipeline(ds::TxQueue &Queue, unsigned Producers,
                                  unsigned Consumers,
                                  uint64_t ItemsPerProducer,
                                  uint64_t *OrderViolations) {
  Tm &M = Queue.tm();
  assert(Producers > 0 && Consumers > 0 && "pipeline needs both ends");
  assert(Producers + Consumers <= M.maxThreads() &&
         "more threads than TM slots");
  assert(Producers <= (1u << 15) && ItemsPerProducer < (1ULL << 48) &&
         "tag encoding: 16-bit producer, 48-bit sequence");
  M.resetStats();

  const uint64_t Total = Producers * ItemsPerProducer;
  std::atomic<uint64_t> Consumed{0};
  std::atomic<uint64_t> Violations{0};

  double Seconds = runParallel(Producers + Consumers, [&](ThreadId Tid) {
    if (Tid < Producers) {
      for (uint64_t Seq = 0; Seq < ItemsPerProducer; ++Seq) {
        uint64_t Item = (static_cast<uint64_t>(Tid) << 48) | Seq;
        while (!Queue.tryEnqueue(Tid, Item))
          std::this_thread::yield();
      }
      return;
    }
    // Consumer: drain until the global count is reached, checking that
    // each producer's items arrive in increasing sequence order (FIFO
    // through a single queue preserves per-producer order per consumer
    // only if dequeues are atomic — which is what the TM provides).
    std::vector<int64_t> LastSeen(Producers, -1);
    uint64_t Item;
    while (Consumed.load(std::memory_order_relaxed) < Total) {
      if (!Queue.tryDequeue(Tid, Item)) {
        std::this_thread::yield();
        continue;
      }
      Consumed.fetch_add(1);
      unsigned P = static_cast<unsigned>(Item >> 48);
      int64_t Seq = static_cast<int64_t>(Item & 0xffffffffffffULL);
      if (P >= Producers || Seq <= LastSeen[P])
        Violations.fetch_add(1);
      if (P < Producers)
        LastSeen[P] = Seq;
    }
  });

  if (OrderViolations)
    *OrderViolations = Violations.load();
  RunResult R = finalizeRun(M, Seconds);
  R.ValueChecksum = Consumed.load();
  return R;
}

RunResult ptm::runDsCounterLoad(ds::TxCounter &Counter, unsigned Threads,
                                uint64_t OpsPerThread, double ReadProb,
                                uint64_t Seed) {
  Tm &M = Counter.tm();
  assert(Threads <= M.maxThreads() && "more threads than TM slots");
  M.resetStats();

  double Seconds = runParallel(Threads, [&](ThreadId Tid) {
    Xoshiro256 Rng(threadSeed(Seed, Tid));
    for (uint64_t I = 0; I < OpsPerThread; ++I) {
      if (Rng.nextBool(ReadProb))
        Counter.read(Tid);
      else
        Counter.add(Tid, 1);
    }
  });

  RunResult R = finalizeRun(M, Seconds);
  R.ValueChecksum = static_cast<uint64_t>(Counter.sampleTotal());
  return R;
}
