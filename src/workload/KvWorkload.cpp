//===-- workload/KvWorkload.cpp - Service-scale KV workloads --------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "workload/KvWorkload.h"

#include "kv/Kv.h"
#include "obs/Metrics.h"
#include "support/Random.h"
#include "support/Zipf.h"
#include "workload/Driver.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <optional>
#include <thread>

using namespace ptm;

namespace {

/// The keys of [0, KeySpace) owned by shard 0 — the hot-shard scenario's
/// target population. Falls back to the whole key space when the store
/// has a single shard (everything is "hot" then anyway).
std::vector<uint64_t> hotShardKeys(const kv::KvStore &Store,
                                   uint64_t KeySpace) {
  std::vector<uint64_t> Pool;
  for (uint64_t Key = 0; Key < KeySpace; ++Key)
    if (Store.shardOf(Key) == 0)
      Pool.push_back(Key);
  if (Pool.empty())
    for (uint64_t Key = 0; Key < KeySpace; ++Key)
      Pool.push_back(Key);
  return Pool;
}

/// Draws a Zipf-ranked key, optionally redirected into the hot pool with
/// probability \p HotFrac (the rank indexes the pool, preserving skew).
uint64_t drawKey(Xoshiro256 &Rng, const ZipfDistribution &Zipf,
                 const std::vector<uint64_t> &HotPool, double HotFrac) {
  uint64_t Rank = Zipf.sample(Rng);
  if (HotFrac > 0.0 && Rng.nextBool(HotFrac))
    return HotPool[Rank % HotPool.size()];
  return Rank;
}

} // namespace

RunResult ptm::runKvMix(kv::KvStore &Store, unsigned Threads,
                        const KvMixConfig &Config, KvMixMetrics *Metrics) {
  assert(Threads > 0 && Threads <= Store.maxThreads() &&
         "client threads run shard transactions under their own ThreadId");
  Store.resetStats();
  const std::vector<uint64_t> HotPool = hotShardKeys(Store, Config.KeySpace);
  const double SingleTotal =
      Config.GetFrac + Config.PutFrac + Config.CasFrac;

  // Per-thread latency recorders, merged after the join. Only allocated
  // when the caller wants latency: a null Metrics runs the exact
  // pre-telemetry loop (no clock reads at all).
  std::vector<std::unique_ptr<obs::LatencyHistogram>> Recorders;
  if (Metrics) {
    Recorders.resize(Threads);
    for (auto &R : Recorders)
      R = std::make_unique<obs::LatencyHistogram>();
  }

  double Seconds = runParallel(Threads, [&](ThreadId Tid) {
    Xoshiro256 Rng(threadSeed(Config.Seed, Tid));
    ZipfDistribution Zipf(Config.KeySpace, Config.Theta);
    uint64_t MultiCounter = 0;
    obs::LatencyHistogram *Hist = Metrics ? Recorders[Tid].get() : nullptr;

    for (uint64_t Op = 0; Op < Config.OpsPerThread; ++Op) {
      // 1-in-8 sampling bounds the clock-read overhead at ~1% of the
      // ~450ns op cost; the sample is unbiased w.r.t. op type because
      // the (deterministic) op draw happens after the decision.
      const bool Sampled = Hist && (Op & 7) == 0;
      const uint64_t StartNs = Sampled ? obs::monotonicNowNs() : 0;
      if (Config.MultiFrac > 0.0 && Rng.nextBool(Config.MultiFrac)) {
        // Multi-key operation, cycling the three composition shapes.
        std::vector<uint64_t> Keys;
        Keys.reserve(Config.MultiKeys);
        for (unsigned K = 0; K < Config.MultiKeys; ++K)
          Keys.push_back(
              drawKey(Rng, Zipf, HotPool, Config.HotShardFrac));
        switch (MultiCounter++ % 3) {
        case 0: {
          std::vector<std::pair<uint64_t, uint64_t>> Pairs;
          Pairs.reserve(Keys.size());
          for (uint64_t Key : Keys)
            Pairs.emplace_back(Key, (uint64_t{Tid} << 32) | Op);
          Store.multiPut(Tid, Pairs);
          break;
        }
        case 1: {
          std::vector<kv::KvResponse> Values;
          Store.snapshotGet(Tid, Keys, Values);
          break;
        }
        default:
          Store.readModifyWrite(
              Tid, Keys, [](std::vector<std::optional<uint64_t>> &Values) {
                for (std::optional<uint64_t> &V : Values)
                  V = V.value_or(0) + 1;
              });
          break;
        }
        if (Sampled)
          Hist->record(obs::monotonicNowNs() - StartNs);
        continue;
      }

      uint64_t Key = drawKey(Rng, Zipf, HotPool, Config.HotShardFrac);
      double Pick = Rng.nextDouble() *
                    (SingleTotal < 1.0 ? 1.0 : SingleTotal);
      if (Pick < Config.GetFrac) {
        Store.get(Tid, Key);
      } else if (Pick < Config.GetFrac + Config.PutFrac) {
        Store.put(Tid, Key, (uint64_t{Tid} << 32) | Op);
      } else if (Pick < SingleTotal) {
        kv::KvResponse Current = Store.get(Tid, Key);
        if (Current.ok())
          Store.compareAndSwap(Tid, Key, Current.Value,
                               Current.Value + 1);
      } else {
        Store.erase(Tid, Key);
      }
      if (Sampled)
        Hist->record(obs::monotonicNowNs() - StartNs);
    }
  });

  if (Metrics) {
    obs::HistogramSnapshot Merged;
    for (const auto &Rec : Recorders)
      Merged.merge(Rec->snapshot());
    *Metrics = KvMixMetrics();
    Metrics->LatencySamples = Merged.Count;
    Metrics->MeanUs = Merged.mean() / 1000.0;
    Metrics->P99Us = static_cast<double>(Merged.percentile(99.0)) / 1000.0;
    Metrics->P999Us = static_cast<double>(Merged.percentile(99.9)) / 1000.0;
  }

  RunResult R;
  TmStats S = Store.aggregateStats();
  R.Commits = S.Commits;
  R.Aborts = S.totalAborts();
  R.Seconds = Seconds;
  R.ValueChecksum = Store.sampleSize();
  return R;
}

RunResult ptm::runKvExecutorLoad(kv::KvStore &Store,
                                 const KvExecutorConfig &Config,
                                 KvExecutorMetrics *Metrics) {
  assert(Config.Clients > 0 && Config.Pipeline > 0);
  Store.resetStats();
  const std::vector<uint64_t> HotPool = hotShardKeys(Store, Config.KeySpace);

  kv::RequestExecutor::Options ExecOpts;
  ExecOpts.Workers = Config.Workers;
  ExecOpts.QueueCapacity = Config.QueueCapacity;
  ExecOpts.MaxBatch = Config.MaxBatch;
  ExecOpts.Trace = Config.Trace;
  kv::RequestExecutor Exec(Store, ExecOpts);

  // Per-client latency histograms, merged after the join. Submit-to-done
  // times use the SubmitNs stamp the executor already writes on submit.
  std::vector<std::unique_ptr<obs::LatencyHistogram>> Recorders(
      Config.Clients);
  for (auto &R : Recorders)
    R = std::make_unique<obs::LatencyHistogram>();

  double Seconds = runParallel(Config.Clients, [&](ThreadId Client) {
    Xoshiro256 Rng(threadSeed(Config.Seed, Client));
    ZipfDistribution Zipf(Config.KeySpace, Config.Theta);
    obs::LatencyHistogram &Hist = *Recorders[Client];

    // A ring of Pipeline in-flight requests: submit until the ring is
    // full, then retire the oldest before reusing its slot.
    std::vector<kv::KvRequest> Ring(Config.Pipeline);

    auto Retire = [&](unsigned Slot) {
      kv::RequestExecutor::wait(Ring[Slot]);
      uint64_t Now = obs::monotonicNowNs();
      uint64_t Submitted = Ring[Slot].SubmitNs;
      Hist.record(Now >= Submitted ? Now - Submitted : 0);
    };

    for (uint64_t Op = 0; Op < Config.OpsPerClient; ++Op) {
      unsigned Slot = static_cast<unsigned>(Op % Config.Pipeline);
      if (Op >= Config.Pipeline)
        Retire(Slot);
      kv::KvRequest &R = Ring[Slot];
      R.reset();
      R.Key = drawKey(Rng, Zipf, HotPool, Config.HotShardFrac);
      if (Rng.nextBool(Config.GetFrac)) {
        R.Op = kv::KvOp::Get;
      } else {
        R.Op = kv::KvOp::Put;
        R.Value = (uint64_t{Client} << 32) | Op;
      }
      Exec.submit(R);
    }
    // Drain this client's tail of in-flight requests.
    uint64_t Inflight = std::min<uint64_t>(Config.OpsPerClient,
                                           Config.Pipeline);
    for (uint64_t I = 0; I < Inflight; ++I)
      Retire(static_cast<unsigned>((Config.OpsPerClient - Inflight + I) %
                                   Config.Pipeline));
  });
  Exec.drainAndStop();

  kv::ExecutorStats ES = Exec.exactStats();
  if (Metrics) {
    obs::HistogramSnapshot Merged;
    for (const auto &Rec : Recorders)
      Merged.merge(Rec->snapshot());
    Metrics->Completed = ES.Completed;
    Metrics->MeanLatencyUs = Merged.mean() / 1000.0;
    Metrics->P99Us = static_cast<double>(Merged.percentile(99.0)) / 1000.0;
    Metrics->P999Us =
        static_cast<double>(Merged.percentile(99.9)) / 1000.0;
    Metrics->MeanBatch = ES.meanBatch();
    Metrics->Executor = Exec.telemetry();
  }

  RunResult R;
  TmStats S = Store.aggregateStats();
  R.Commits = S.Commits;
  R.Aborts = S.totalAborts();
  R.Seconds = Seconds;
  R.ValueChecksum = ES.Completed;
  return R;
}

RunResult ptm::runKvReadOnly(kv::KvStore &Store,
                             const KvReadOnlyConfig &Config,
                             KvReadOnlyMetrics *Metrics) {
  const unsigned Threads = Config.Readers + Config.Writers;
  assert(Config.Readers > 0 && Threads <= Store.maxThreads() &&
         "reader/writer threads run shard transactions under their own "
         "ThreadId");
  assert(Config.SnapshotKeys > 0 && Config.KeySpace > 0);

  // Prefill so every snapshot reads resident keys (a miss-heavy run
  // would understate the per-key read cost being measured).
  for (uint64_t Key = 0; Key < Config.KeySpace; ++Key)
    Store.put(0, Key, Key);
  Store.resetStats();

  // Pre-drawn snapshot key sets, cycled by each reader: at scan scale a
  // Zipf draw costs as much as the read it feeds, and paying it inside
  // the measured loop would bury the reader-vs-writer interference this
  // scenario exists to expose under constant sampling overhead.
  constexpr unsigned kKeySetsPerReader = 64;
  std::vector<std::vector<std::vector<uint64_t>>> KeySets(Config.Readers);
  for (unsigned R = 0; R < Config.Readers; ++R) {
    Xoshiro256 Rng(threadSeed(Config.Seed, R));
    ZipfDistribution Zipf(Config.KeySpace, Config.Theta);
    KeySets[R].resize(kKeySetsPerReader);
    for (auto &Set : KeySets[R]) {
      Set.resize(Config.SnapshotKeys);
      for (uint64_t &Key : Set)
        Key = Zipf.sample(Rng);
    }
  }

  // Writers run until the LAST reader finishes its quota, so every
  // snapshot in the measured window faces the configured writer rate.
  std::atomic<unsigned> ReadersDone{0};
  std::atomic<uint64_t> TotalSnapshots{0};

  double Seconds = runParallel(Threads, [&](ThreadId Tid) {
    Xoshiro256 Rng(threadSeed(Config.Seed, Tid));
    ZipfDistribution Zipf(Config.KeySpace, Config.Theta);

    if (Tid < Config.Readers) {
      std::vector<kv::KvResponse> Values;
      for (uint64_t Snap = 0; Snap < Config.SnapshotsPerReader; ++Snap)
        Store.snapshotGet(Tid, KeySets[Tid][Snap % kKeySetsPerReader],
                          Values);
      TotalSnapshots.fetch_add(Config.SnapshotsPerReader,
                               std::memory_order_relaxed);
      ReadersDone.fetch_add(1, std::memory_order_release);
      return;
    }

    // Writer: single-key puts on a sleeping deadline pacer (see
    // WriterOpsPerSec for why pacing — and why only single-key puts).
    using WClock = std::chrono::steady_clock;
    const auto Period = std::chrono::nanoseconds(
        1000000000ULL / std::max(1u, Config.WriterOpsPerSec));
    auto Next = WClock::now() + Period;
    uint64_t Op = 0;
    while (ReadersDone.load(std::memory_order_acquire) < Config.Readers) {
      std::this_thread::sleep_until(Next);
      Next += Period;
      // If an op stalled well past its deadline (e.g. a retry storm or a
      // latch wait), resynchronize instead of machine-gunning the missed
      // slots — a catch-up burst is exactly the TM-dependent load spike
      // the pacer exists to rule out.
      if (WClock::now() > Next + 16 * Period)
        Next = WClock::now();
      Store.put(Tid, Zipf.sample(Rng), (uint64_t{Tid} << 32) | ++Op);
    }
  });

  if (Metrics) {
    *Metrics = KvReadOnlyMetrics();
    Metrics->Snapshots = TotalSnapshots.load(std::memory_order_relaxed);
    for (unsigned S = 0; S < Store.shardCount(); ++S) {
      const Tm &M = Store.shardTm(S);
      for (ThreadId T = 0; T < Threads; ++T) {
        TmStats TS = M.threadStats(T);
        if (T < Config.Readers)
          Metrics->ReaderAborts += TS.totalAborts();
        else
          Metrics->WriterCommits += TS.Commits;
      }
    }
    Metrics->SnapshotsPerSec =
        Seconds > 0.0 ? static_cast<double>(Metrics->Snapshots) / Seconds
                      : 0.0;
  }

  RunResult R;
  TmStats S = Store.aggregateStats();
  R.Commits = S.Commits;
  R.Aborts = S.totalAborts();
  R.Seconds = Seconds;
  R.ValueChecksum = Store.sampleSize();
  return R;
}
