//===-- workload/DsWorkload.h - Structure-scale STM workloads ---*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic multi-threaded drivers over the src/ds/ transactional
/// data structures — the structure-scale counterpart of Workload.h's flat
/// object-array workloads. Thread t of a run derives its PRNG stream from
/// (Seed, t) exactly as there, so every run is reproducible from its
/// parameters. These are the workloads where the paper's read-set size m
/// materializes as *structure shape*: set traversals grow the read set
/// with the key range, map chains keep it near-constant, queue and
/// counter transactions keep it at a handful of objects.
///
///  * set mix       — insert/remove/contains over a TxSet with Zipf keys;
///  * map mix       — get/put/erase over a TxMap with Zipf keys;
///  * queue pipeline— producers/consumers through one bounded TxQueue,
///                    checking per-producer FIFO order end to end;
///  * counter load  — striped increments with occasional precise reads.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_WORKLOAD_DSWORKLOAD_H
#define PTM_WORKLOAD_DSWORKLOAD_H

#include "workload/Workload.h"

namespace ptm {
namespace ds {
class TxCounter;
class TxMap;
class TxQueue;
class TxSet;
} // namespace ds

/// Set mix: each of \p Threads threads performs \p OpsPerThread operations
/// on \p Set with keys drawn Zipf(\p Theta) from [0, KeySpace): insert
/// with probability \p InsertProb, remove with \p RemoveProb, contains
/// otherwise. The set must have capacity for KeySpace keys plus one
/// in-flight insert per thread. ValueChecksum = final set size (which
/// callers can cross-check against sampleKeys()/sampleLiveNodes()).
RunResult runDsSetMix(ds::TxSet &Set, unsigned Threads, uint64_t OpsPerThread,
                      double InsertProb, double RemoveProb, uint64_t KeySpace,
                      double Theta, uint64_t Seed);

/// Map mix: get with probability \p GetProb, otherwise put/erase split
/// evenly, keys Zipf(\p Theta) over [0, KeySpace), put values encode
/// (thread, op index) so committed states stay diagnosable.
/// ValueChecksum = final entry count.
RunResult runDsMapMix(ds::TxMap &Map, unsigned Threads, uint64_t OpsPerThread,
                      double GetProb, uint64_t KeySpace, double Theta,
                      uint64_t Seed);

/// Queue pipeline: \p Producers producer threads each push
/// \p ItemsPerProducer tagged items through \p Queue while \p Consumers
/// consumer threads drain it; both sides spin on full/empty. Thread ids
/// [0, Producers) produce, [Producers, Producers+Consumers) consume.
/// ValueChecksum = items consumed (must equal Producers *
/// ItemsPerProducer); *OrderViolations (when non-null) counts
/// per-producer FIFO inversions observed by consumers (must be 0).
RunResult runDsQueuePipeline(ds::TxQueue &Queue, unsigned Producers,
                             unsigned Consumers, uint64_t ItemsPerProducer,
                             uint64_t *OrderViolations = nullptr);

/// Counter load: each thread performs \p OpsPerThread operations on
/// \p Counter — a precise all-stripe read with probability \p ReadProb,
/// otherwise a +1 on its own stripe. ValueChecksum = final total (must
/// equal the number of committed increments).
RunResult runDsCounterLoad(ds::TxCounter &Counter, unsigned Threads,
                           uint64_t OpsPerThread, double ReadProb,
                           uint64_t Seed);

} // namespace ptm

#endif // PTM_WORKLOAD_DSWORKLOAD_H
