//===-- workload/Workload.h - Deterministic STM workloads -------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-threaded workload runners shared by the tests (as stress /
/// property harnesses) and the benchmarks (as the E5/E7 drivers). Every
/// runner is deterministic given its seed: thread t of a run derives its
/// PRNG stream from (Seed, t).
///
///  * hotspot      — every transaction read-modify-writes t-object 0; the
///                   single-item contention pattern of the paper's
///                   Section 5 and of strong progressiveness (Def. 1).
///  * disjoint     — each thread owns a private partition; a progressive
///                   TM must commit everything with zero aborts.
///  * zipf-mix     — transactions touch K objects drawn Zipf(theta),
///                   reading or writing each with given probability.
///  * bank         — classic transfer workload with a conserved total,
///                   the invariant checked by tests and examples.
///  * read-only sweep — one reader of m objects, optional concurrent
///                   writers; the E1/E2 pattern, also usable for stress.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_WORKLOAD_WORKLOAD_H
#define PTM_WORKLOAD_WORKLOAD_H

#include "stm/Tm.h"

#include <cstdint>

namespace ptm {

/// Aggregate outcome of one multi-threaded run.
struct RunResult {
  uint64_t Commits = 0;       ///< Successful transactions.
  uint64_t Aborts = 0;        ///< Aborted transaction attempts.
  double Seconds = 0.0;       ///< Wall-clock time of the parallel phase.
  uint64_t ValueChecksum = 0; ///< Workload-specific integrity value.

  double throughputPerSec() const {
    return Seconds > 0.0 ? static_cast<double>(Commits) / Seconds : 0.0;
  }
};

/// Hotspot: \p Threads threads each commit \p TxnsPerThread increments of
/// t-object 0. Post-condition checked by callers: object 0 ==
/// Threads * TxnsPerThread (ValueChecksum returns it).
RunResult runHotspot(Tm &M, unsigned Threads, uint64_t TxnsPerThread);

/// Disjoint partitions: thread t owns objects
/// [t*PartitionSize, (t+1)*PartitionSize); each transaction reads and
/// writes \p TxnSize of its own objects. With a progressive TM this must
/// produce zero contention aborts. ValueChecksum = sum of all objects.
RunResult runDisjoint(Tm &M, unsigned Threads, uint64_t TxnsPerThread,
                      unsigned PartitionSize, unsigned TxnSize,
                      uint64_t Seed);

/// Zipf-skewed mix: each transaction touches \p TxnSize distinct objects
/// drawn Zipf(\p Theta) over all of M's objects, reading each with
/// probability \p ReadProb (otherwise incrementing it).
RunResult runZipfMix(Tm &M, unsigned Threads, uint64_t TxnsPerThread,
                     unsigned TxnSize, double ReadProb, double Theta,
                     uint64_t Seed);

/// Bank: objects are accounts, each starting at \p InitialBalance;
/// transactions move a random amount between two random accounts.
/// ValueChecksum = final sum of balances (must equal the initial total).
RunResult runBank(Tm &M, unsigned Threads, uint64_t TransfersPerThread,
                  uint64_t InitialBalance, uint64_t Seed);

/// Read-only sweep with faulting writers: thread 0 repeatedly runs a
/// read-only transaction over objects [0, ReadSetSize); the other threads
/// each commit \p WriterTxns single-object updates to random objects in
/// the same range. Exercises the read-validation paths (E1/E2 pattern).
/// ValueChecksum = number of read-only transactions that committed.
RunResult runReadSweepWithWriters(Tm &M, unsigned Threads,
                                  unsigned ReadSetSize, uint64_t ReaderTxns,
                                  uint64_t WriterTxns, uint64_t Seed);

} // namespace ptm

#endif // PTM_WORKLOAD_WORKLOAD_H
