//===-- workload/Driver.h - Shared workload-runner plumbing -----*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The plumbing every workload runner shares: fork/join over N threads
/// with wall-clock timing of the parallel phase, per-thread PRNG stream
/// derivation from (seed, thread id), and the TmStats -> RunResult
/// reduction. Kept header-only and tiny so Workload.cpp and
/// DsWorkload.cpp (and tests that roll custom drivers) agree on the
/// determinism contract.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_WORKLOAD_DRIVER_H
#define PTM_WORKLOAD_DRIVER_H

#include "workload/Workload.h"

#include "support/Affinity.h"
#include "support/Random.h"

#include <chrono>
#include <thread>
#include <vector>

namespace ptm {

/// Runs \p Body(t) for t in [0, Threads) on real threads and returns the
/// wall-clock seconds of the parallel phase.
template <typename Fn> double runParallel(unsigned Threads, Fn &&Body) {
  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Workers;
  Workers.reserve(Threads);
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&Body, T] {
      // No-op unless the bench harness enabled --pin (see Affinity.h).
      maybePinThread(T);
      Body(static_cast<ThreadId>(T));
    });
  for (std::thread &W : Workers)
    W.join();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

/// Derives thread \p Tid's PRNG stream from the run seed: every workload
/// is reproducible from (Seed, Tid) alone.
inline uint64_t threadSeed(uint64_t Seed, ThreadId Tid) {
  SplitMix64 SM(Seed ^ (0x9e3779b97f4a7c15ULL * (Tid + 1)));
  return SM.next();
}

/// Reduces \p M's aggregated counters plus the measured \p Seconds into a
/// RunResult (ValueChecksum is left for the caller to fill).
inline RunResult finalizeRun(Tm &M, double Seconds) {
  RunResult R;
  TmStats S = M.stats();
  R.Commits = S.Commits;
  R.Aborts = S.totalAborts();
  R.Seconds = Seconds;
  return R;
}

} // namespace ptm

#endif // PTM_WORKLOAD_DRIVER_H
