//===-- workload/KvWorkload.h - Service-scale KV workloads ------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic drivers for the sharded KV service layer — the
/// end-to-end counterpart of Workload.h (flat arrays) and DsWorkload.h
/// (single structures). Thread t derives its PRNG stream from (Seed, t)
/// exactly as everywhere else, so every run is reproducible from its
/// parameters.
///
///  * kv mix        — client threads issue single-key get/put/cas/erase
///                    and multi-key (multiPut / snapshotGet /
///                    readModifyWrite) operations directly against a
///                    KvStore, keys Zipf-skewed, with an optional
///                    hot-shard scenario that funnels a fraction of all
///                    traffic into shard 0's key population;
///  * executor load — client threads pump pipelined KvRequests through a
///                    RequestExecutor, measuring completed operations,
///                    per-request latency and realized batch size.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_WORKLOAD_KVWORKLOAD_H
#define PTM_WORKLOAD_KVWORKLOAD_H

#include "obs/Metrics.h"
#include "workload/Workload.h"

namespace ptm {
namespace kv {
class KvStore;
} // namespace kv
namespace obs {
class Tracer;
} // namespace obs

/// Parameters of the direct (synchronous) KV mix.
struct KvMixConfig {
  uint64_t OpsPerThread = 1000;
  double GetFrac = 0.70;   ///< Single-key op split: lookups...
  double PutFrac = 0.20;   ///< ...updates...
  double CasFrac = 0.05;   ///< ...compare-and-swaps (rest are erases).
  double MultiFrac = 0.10; ///< Fraction of all ops that are multi-key
                           ///< (cycling multiPut / snapshotGet /
                           ///< readModifyWrite).
  unsigned MultiKeys = 4;  ///< Keys per multi-key operation.
  uint64_t KeySpace = 1024;
  double Theta = 0.8;          ///< Zipf skew of the key popularity.
  double HotShardFrac = 0.0;   ///< Probability a key draw is redirected
                               ///< into shard 0's key population (the
                               ///< skewed-hot-shard scenario; 0 = off).
  uint64_t Seed = 42;
};

/// Client-observed latency of the direct mix, from 1-in-8 sampled ops
/// (sampling keeps the measurement's own clock reads ~1% of op cost —
/// the always-on overhead budget; see DESIGN.md "Observability").
/// Percentiles come from merged per-thread obs::LatencyHistograms, so
/// they carry that histogram's <=1/16 relative quantization above 31ns.
struct KvMixMetrics {
  uint64_t LatencySamples = 0; ///< Sampled operations.
  double MeanUs = 0;           ///< Mean sampled op latency.
  double P99Us = 0;            ///< 99th percentile.
  double P999Us = 0;           ///< 99.9th percentile.
};

/// Runs the mix with \p Threads client threads issuing operations
/// directly (thread t uses ThreadId t, so Threads must not exceed the
/// store's MaxThreads). Resets the store's stats, then reports:
/// Commits/Aborts = the summed shard TM counters, ValueChecksum = final
/// entry count across all shards. Sampled client-side latency lands in
/// \p Metrics when non-null (null skips sampling entirely).
RunResult runKvMix(kv::KvStore &Store, unsigned Threads,
                   const KvMixConfig &Config,
                   KvMixMetrics *Metrics = nullptr);

/// Parameters of the asynchronous executor load.
struct KvExecutorConfig {
  unsigned Clients = 2;     ///< Submitting threads (never touch a TM).
  unsigned Workers = 2;     ///< Executor pool; <= store MaxThreads.
  uint64_t OpsPerClient = 1000;
  unsigned MaxBatch = 16;      ///< Requests per shard transaction.
  unsigned QueueCapacity = 1024; ///< Per-shard queue; power of two.
  unsigned Pipeline = 64;      ///< In-flight requests per client.
  double GetFrac = 0.8;        ///< Lookup fraction (rest are puts).
  uint64_t KeySpace = 1024;
  double Theta = 0.8;
  double HotShardFrac = 0.0;
  uint64_t Seed = 42;
  obs::Tracer *Trace = nullptr; ///< Arms executor-worker event tracing
                                ///< (see RequestExecutor::Options::Trace).
};

/// Extra service-level metrics of one executor run. Latency figures are
/// client-observed submit-to-done times from merged per-client
/// obs::LatencyHistograms (every request is recorded — the pipelined
/// path amortizes the clock reads).
struct KvExecutorMetrics {
  uint64_t Completed = 0;    ///< Requests completed.
  double MeanLatencyUs = 0;  ///< Mean submit-to-done latency.
  double P99Us = 0;          ///< 99th-percentile latency.
  double P999Us = 0;         ///< 99.9th-percentile latency.
  double MeanBatch = 0;      ///< Mean realized batch size.
  obs::MetricsSnapshot Executor; ///< Final RequestExecutor::telemetry()
                                 ///< (server-side histograms/counters).
};

/// Pumps Clients * OpsPerClient requests through a RequestExecutor over
/// \p Store. RunResult Commits/Aborts are the shard TM counters (one
/// commit per *batch*); ValueChecksum = completed requests. Per-request
/// service metrics land in \p Metrics when non-null.
RunResult runKvExecutorLoad(kv::KvStore &Store,
                            const KvExecutorConfig &Config,
                            KvExecutorMetrics *Metrics = nullptr);

/// Parameters of the read-only-vs-writer-rate scenario: a fixed pool of
/// snapshot readers races a variable number of deadline-paced update
/// threads. The writer count IS the swept "writer rate" axis — each
/// writer issues single-key puts at a fixed wall-clock rate until the
/// last reader finishes its quota.
struct KvReadOnlyConfig {
  uint64_t SnapshotsPerReader = 2000;
  unsigned Readers = 2;      ///< Reader threads (ThreadIds [0, Readers)).
  unsigned Writers = 0;      ///< Update threads (ThreadIds after readers).
  unsigned SnapshotKeys = 8; ///< Keys per snapshotGet.
  uint64_t KeySpace = 1024;  ///< Prefilled before the run, so every
                             ///< snapshot hits resident keys.
  /// Single-key puts per second, per writer, enforced with a sleeping
  /// deadline pacer. Pacing by wall clock is what makes the swept axis
  /// honest: an unthrottled writer's realized rate is set by the TM
  /// itself (latched snapshot readers starve their writers; mv readers
  /// never block theirs, so mv would face many times the traffic), and a
  /// spinning pacer would additionally have writers stealing reader CPU
  /// on core-constrained hosts. Sleeping writers issue the same load
  /// against every TM, so reader-side curves are comparable.
  ///
  /// Writers issue only single-key puts on purpose. Multi-key batches
  /// take the involved shards' unique latches, and under back-to-back
  /// scan snapshots the latched TMs' shared side is essentially always
  /// held — the first batch would park that writer for the rest of the
  /// run (classic reader-preference writer starvation), silently
  /// reducing every single-version row to an unloaded baseline. The
  /// batch-vs-snapshot interplay has its own benchmark family (kv_batch)
  /// and tests.
  unsigned WriterOpsPerSec = 1000;
  double Theta = 0.8;
  uint64_t Seed = 42;
};

/// Role-separated counters of one read-only run.
struct KvReadOnlyMetrics {
  uint64_t Snapshots = 0;      ///< snapshotGets completed by readers.
  uint64_t ReaderAborts = 0;   ///< TM aborts on reader thread slots, all
                               ///< shards: identically 0 on an
                               ///< abort-free-read-only TM (mv).
  uint64_t WriterCommits = 0;  ///< TM commits on writer thread slots.
  double SnapshotsPerSec = 0;  ///< Reader-side throughput.
};

/// Runs the scenario. Readers issue SnapshotsPerReader snapshotGets of
/// SnapshotKeys Zipf-drawn keys each (key sets pre-drawn so draw cost
/// never dilutes the read path); writers issue deadline-paced
/// single-key puts until the last reader finishes. RunResult
/// Commits/Aborts aggregate all roles; the per-role split is in
/// \p Metrics.
RunResult runKvReadOnly(kv::KvStore &Store, const KvReadOnlyConfig &Config,
                        KvReadOnlyMetrics *Metrics = nullptr);

} // namespace ptm

#endif // PTM_WORKLOAD_KVWORKLOAD_H
