//===-- kv/RequestExecutor.cpp - Async KV request execution ---------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "kv/RequestExecutor.h"

#include "obs/Trace.h"
#include "runtime/Instrumentation.h"
#include "stm/Atomically.h"
#include "support/Affinity.h"
#include "support/Spin.h"

#include <bit>
#include <cassert>
#include <mutex>
#include <optional>
#include <string>

using namespace ptm;
using namespace ptm::kv;

bool RequestExecutor::validOptions(const KvStore &Store, const Options &Opts) {
  return Opts.Workers != 0 && Opts.Workers <= Store.maxThreads() &&
         std::has_single_bit(Opts.QueueCapacity) && Opts.MaxBatch != 0 &&
         (Opts.Trace == nullptr || Opts.Trace->threads() >= Opts.Workers);
}

RequestExecutor::RequestExecutor(KvStore &TheStore, const Options &TheOpts)
    : Store(TheStore), Opts(TheOpts) {
  assert(validOptions(TheStore, TheOpts) && "see validOptions");
  Queues.reserve(Store.shardCount());
  for (unsigned I = 0; I < Store.shardCount(); ++I)
    Queues.push_back(
        std::make_unique<MpmcQueue<KvRequest *>>(Opts.QueueCapacity));
  // Register every metric before the pool exists: hot paths then only
  // touch the captured pointers, never the registry mutex.
  Completed = &Registry.counter("kv.executor.completed", Opts.Workers);
  Batches = &Registry.counter("kv.executor.batches", Opts.Workers);
  LatencyNs = &Registry.histogram("kv.executor.latency_ns");
  BatchSize = &Registry.histogram("kv.executor.batch_size");
  QueueDepth.reserve(Store.shardCount());
  for (unsigned I = 0; I < Store.shardCount(); ++I)
    QueueDepth.push_back(&Registry.gauge("kv.executor.queue_depth." +
                                         std::to_string(I)));
  Pool.reserve(Opts.Workers);
  for (unsigned W = 0; W < Opts.Workers; ++W)
    Pool.emplace_back([this, W] { workerLoop(W); });
}

RequestExecutor::~RequestExecutor() { drainAndStop(); }

void RequestExecutor::submit(KvRequest &R) {
  MpmcQueue<KvRequest *> &Q = *Queues[Store.shardOf(R.Key)];
  R.SubmitNs = obs::monotonicNowNs();
  uint32_t Spin = 0;
  while (!Q.tryPush(&R))
    spinPause(Spin);
}

bool RequestExecutor::trySubmit(KvRequest &R) {
  R.SubmitNs = obs::monotonicNowNs();
  return Queues[Store.shardOf(R.Key)]->tryPush(&R);
}

void RequestExecutor::wait(const KvRequest &R) {
  uint32_t Spin = 0;
  while (!R.done())
    spinPause(Spin);
}

void RequestExecutor::drainAndStop() {
  Stopping.store(true, std::memory_order_release);
  for (std::thread &W : Pool)
    if (W.joinable())
      W.join();
  Pool.clear();
}

ExecutorStats RequestExecutor::stats() const {
  ExecutorStats Total;
  Total.Completed = Completed->value();
  Total.Batches = Batches->value();
  return Total;
}

obs::MetricsSnapshot RequestExecutor::telemetry() const {
  // Queue depths are point-in-time by nature: sample them into their
  // gauges here rather than maintaining them per-push/pop (which would
  // put an atomic RMW on every submit).
  for (unsigned I = 0; I < QueueDepth.size(); ++I)
    QueueDepth[I]->set(static_cast<int64_t>(Queues[I]->approxSize()));
  obs::MetricsSnapshot Snap = Registry.snapshot();
  // Every shard TM runs the same TmConfig (KvStore::create hands each one
  // Config.Tm), so their contention managers share one policy: merge the
  // per-shard telemetry and surface it as a single cm.<policy>.* series
  // next to the executor's own counters.
  CmTelemetry Merged;
  const ContentionManager *Policy = nullptr;
  for (const KvStore::Shard &S : Store.Shards) {
    ContentionManager *Cm = S.M->contentionManager();
    if (!Cm)
      continue;
    Policy = Cm;
    CmTelemetry T = Cm->telemetry();
    for (unsigned I = 0; I < kNumAbortCauses; ++I)
      Merged.Consults[I] += T.Consults[I];
    Merged.LockBusyNotes += T.LockBusyNotes;
    Merged.WaitNs.merge(T.WaitNs);
  }
  if (Policy)
    appendCmTelemetry(Merged, Policy->name(), Snap);
  return Snap;
}

unsigned RequestExecutor::runBatch(unsigned Worker, unsigned Shard,
                                   std::vector<KvRequest *> &Batch) {
  // The idle polling path must stay allocation-free: workers sweep their
  // shards continuously, and an empty queue is the common case.
  if (Queues[Shard]->approxEmpty())
    return 0;
  Batch.clear();
  KvRequest *R = nullptr;
  while (Batch.size() < Opts.MaxBatch && Queues[Shard]->tryPop(R))
    Batch.push_back(R);
  if (Batch.empty())
    return 0;

  KvStore::Shard &S = Store.Shards[Shard];
  bool HasUpdate = false;
  for (const KvRequest *Q : Batch)
    if (Q->Op == KvOp::Put || Q->Op == KvOp::Erase || Q->Op == KvOp::Cas)
      HasUpdate = true;

  // Updates take the shard latch on its shared side, exactly like the
  // WAL-less synchronous single-key path, so batches respect the
  // multi-key operations' canonical-order exclusion. With a WAL attached
  // the shared side still suffices HERE (unlike the synchronous path,
  // which escalates): static shard affinity makes this worker the only
  // batch writer of this shard, so its append order is its commit order
  // by construction — see the durability x latch matrix in KvStore.h.
  std::shared_lock<std::shared_mutex> Latch;
  if (HasUpdate)
    Latch = std::shared_lock<std::shared_mutex>(*S.Latch);

  std::vector<KvResponse> Out(Batch.size());
  atomically(*S.M, static_cast<ThreadId>(Worker), [&](TxRef &Tx) {
    for (size_t I = 0; I < Batch.size(); ++I) {
      KvRequest &Q = *Batch[I];
      KvResponse &O = Out[I];
      O = KvResponse();
      switch (Q.Op) {
      case KvOp::Get: {
        uint64_t V = 0;
        O = S.Map->get(Tx, Q.Key, V) ? KvResponse{KvStatus::Ok, V}
                                     : KvResponse{KvStatus::NotFound, 0};
        break;
      }
      case KvOp::Put: {
        bool Oom = false;
        S.Map->put(Tx, Q.Key, Q.Value, nullptr, &Oom);
        // A full shard fails the one operation, not the batch: the map is
        // untouched by the failed put, so the rest can still commit.
        O.Status = Oom ? KvStatus::CapacityExhausted : KvStatus::Ok;
        break;
      }
      case KvOp::Erase: {
        uint64_t V = 0;
        if (S.Map->get(Tx, Q.Key, V) && S.Map->erase(Tx, Q.Key))
          O = {KvStatus::Ok, V}; // Ok carries the erased value.
        else
          O = {KvStatus::NotFound, 0};
        break;
      }
      case KvOp::Cas: {
        uint64_t V = 0;
        bool Present = S.Map->get(Tx, Q.Key, V);
        if (Tx.failed())
          return;
        if (!Present) {
          O = {KvStatus::NotFound, 0};
        } else if (V == Q.Expected) {
          S.Map->put(Tx, Q.Key, Q.Value);
          O = {KvStatus::Ok, Q.Expected};
        } else {
          O = {KvStatus::CasMismatch, V};
        }
        break;
      }
      default:
        // Multi-key/control ops never ride the per-shard queues; a
        // request that claims otherwise is malformed, not fatal.
        O = {KvStatus::BadRequest, 0};
        break;
      }
      if (Tx.failed())
        return;
    }
  });

  // Group commit: ONE WAL record (and one fsync) for every mutation the
  // batch committed, appended under the still-held shared latch so the
  // file's append order stays this worker's commit order. Requests whose
  // mutation may not have reached the disk are failed with IoError —
  // acknowledging them would break the recovery oracle.
  if (HasUpdate && Store.wal() != nullptr) {
    std::vector<WalWrite> Writes;
    Writes.reserve(Batch.size());
    for (size_t I = 0; I < Batch.size(); ++I) {
      const KvRequest &Q = *Batch[I];
      if (Out[I].Status != KvStatus::Ok)
        continue; // Failed or read-only: nothing durable to record.
      if (Q.Op == KvOp::Put)
        Writes.push_back({Q.Key, true, Q.Value});
      else if (Q.Op == KvOp::Erase)
        Writes.push_back({Q.Key, false, 0});
      else if (Q.Op == KvOp::Cas)
        Writes.push_back({Q.Key, true, Q.Value});
    }
    if (!Writes.empty()) {
      KvStatus Logged = Store.wal()->appendBatch(Shard, Writes);
      if (Logged != KvStatus::Ok)
        for (size_t I = 0; I < Batch.size(); ++I)
          if (Out[I].Status == KvStatus::Ok &&
              Batch[I]->Op != KvOp::Get)
            Out[I].Status = Logged;
    }
  }

  // The batch transaction committed (contention aborts are retried inside
  // atomically, and nothing in the body user-aborts): publish results.
  // One clock read covers the whole batch's latency samples.
  uint64_t NowNs = obs::monotonicNowNs();
  for (size_t I = 0; I < Batch.size(); ++I) {
    KvRequest &Q = *Batch[I];
    Q.Out = Out[I];
    LatencyNs->record(NowNs >= Q.SubmitNs ? NowNs - Q.SubmitNs : 0);
    Q.Done.store(true, std::memory_order_release);
  }
  BatchSize->record(Batch.size());
  Completed->cell(Worker).inc(Batch.size());
  Batches->cell(Worker).inc();
  if (Opts.OnBatchComplete)
    Opts.OnBatchComplete();
  return static_cast<unsigned>(Batch.size());
}

bool RequestExecutor::sweepOnce(unsigned Worker,
                                std::vector<KvRequest *> &Batch) {
  // Static shard affinity: shard s is drained only by worker
  // s % Workers. One consumer per queue is what turns the MPMC queue's
  // per-producer FIFO into per-client execution order on every key, and
  // it pins the hot-shard scenario's bottleneck to one worker — exactly
  // the skew the kv benchmarks measure.
  bool DidWork = false;
  for (unsigned Shard = Worker; Shard < Store.shardCount();
       Shard += Opts.Workers)
    if (runBatch(Worker, Shard, Batch) != 0)
      DidWork = true;
  return DidWork;
}

void RequestExecutor::workerLoop(unsigned Worker) {
  // No-op unless the bench harness enabled --pin (see Affinity.h).
  maybePinThread(Worker);
  // When tracing is armed, install this worker's measurement context so
  // the TMs' traceEvent calls find their ring; disarmed executors never
  // install one and the TM hot path stays at bare cost.
  std::optional<Instrumentation> Instr;
  std::optional<ScopedInstrumentation> Scope;
  if (Opts.Trace) {
    Instr.emplace(static_cast<ThreadId>(Worker), nullptr, nullptr,
                  &Opts.Trace->ring(Worker));
    Scope.emplace(*Instr);
  }
  std::vector<KvRequest *> Batch; // Reused across sweeps.
  Batch.reserve(Opts.MaxBatch);
  uint32_t IdleSpin = 0;
  for (;;) {
    if (sweepOnce(Worker, Batch))
      continue;
    if (Stopping.load(std::memory_order_acquire)) {
      // The release store in drainAndStop ordered every prior submit
      // before this observation, so one final drain empties the queues.
      // Queued requests are client-owned: a request left behind here
      // would never complete and its storage would leak at the call
      // site, so the owned queues must be verifiably empty afterwards
      // (the caller contract forbids submits concurrent with the stop).
      while (sweepOnce(Worker, Batch))
        ;
      for (unsigned Shard = Worker; Shard < Store.shardCount();
           Shard += Opts.Workers) {
        assert(Queues[Shard]->approxEmpty() &&
               "drain left a queued request behind");
        (void)Shard;
      }
      return;
    }
    spinPause(IdleSpin);
  }
}
