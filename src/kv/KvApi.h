//===-- kv/KvApi.h - Unified KV request/response vocabulary -----*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The protocol-first request vocabulary of the KV service: one status
/// enum, one operation enum and one response shape shared by every layer
/// that speaks KV — the in-process KvStore surface, the asynchronous
/// RequestExecutor, the wire codec (net/Protocol.h) and the write-ahead
/// log (kv/Wal.h). Before this header each layer had its own ad-hoc
/// representation (`bool Hit` + an overloaded `uint64_t Result` on the
/// executor, `bool`/`std::optional` returns scattered across KvStore),
/// which made "capacity exhausted", "key absent" and "cas mismatch"
/// indistinguishable at a distance; now they are distinct KvStatus
/// values end to end, so a wire response, a WAL decision and an
/// in-process return all carry the same meaning.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_KV_KVAPI_H
#define PTM_KV_KVAPI_H

#include <cstdint>

namespace ptm {
namespace kv {

/// Outcome vocabulary of every KV operation, across all layers. The
/// numeric values are wire-stable (net/Protocol.h serializes the raw
/// byte): append new statuses at the end, never renumber.
enum class KvStatus : uint8_t {
  Ok = 0,            ///< Operation applied / key found.
  NotFound,          ///< Key absent (get/erase/cas on a missing key).
  CapacityExhausted, ///< A shard lacked room; nothing was written.
  CasMismatch,       ///< Key present but not with the expected value.
  BadRequest,        ///< Protocol-level rejection (malformed/unknown op).
  IoError,           ///< Durability failure: the WAL append did not
                     ///< complete, so the write may not survive a crash.
};

/// Number of statuses (bounds-checks wire decoding).
inline constexpr unsigned kNumKvStatuses = 6;

/// Stable lower-case name ("ok", "not_found", ...) for logs and JSON.
const char *kvStatusName(KvStatus Status);

/// The operations a KV request can carry. Get/Put/Erase/Cas are
/// single-key (one-shard transactions, batchable by the executor);
/// MultiPut/SnapshotGet span shards and execute synchronously; Ping is
/// the protocol-level liveness probe. Wire-stable like KvStatus.
enum class KvOp : uint8_t {
  Get = 0, ///< Value = value read; NotFound when absent.
  Put,     ///< Ok, or CapacityExhausted (store unchanged).
  Erase,   ///< Ok (Value = prior value), or NotFound.
  Cas,     ///< Ok (swapped), CasMismatch (Value = witness), or NotFound.
  MultiPut,    ///< Atomic cross-shard batch; Ok or CapacityExhausted.
  SnapshotGet, ///< Cross-shard consistent read; per-key status + value.
  Ping,        ///< Liveness probe; always Ok, no body.
};

/// Number of operations (bounds-checks wire decoding).
inline constexpr unsigned kNumKvOps = 7;

/// Stable lower-case name ("get", "multi_put", ...) for logs and JSON.
const char *kvOpName(KvOp Op);

/// The one response shape: a status plus the operation's value slot
/// (get: value read; erase: prior value; cas: witness on mismatch).
/// Value is meaningful only when the documentation of the producing
/// operation says so; it is zero otherwise.
struct KvResponse {
  KvStatus Status = KvStatus::Ok;
  uint64_t Value = 0;

  bool ok() const { return Status == KvStatus::Ok; }

  friend bool operator==(const KvResponse &A, const KvResponse &B) {
    return A.Status == B.Status && A.Value == B.Value;
  }
};

} // namespace kv
} // namespace ptm

#endif // PTM_KV_KVAPI_H
