//===-- kv/RequestExecutor.h - Async KV request execution -------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The asynchronous front end of the KV service: clients enqueue
/// KvRequests into per-shard bounded MPMC queues (runtime/MpmcQueue.h)
/// and a fixed worker pool drains them, executing each shard's pending
/// requests as one batched transaction. Batching is the service-layer
/// knob the bench_kv_batch family sweeps: a batch of B single-key
/// operations pays one begin/commit instead of B, but its read/write set
/// is B operations wide, so aborts get more expensive and latency grows
/// with the time a request waits for its batch — the classic
/// throughput-vs-latency trade.
///
/// Threading contract: worker w runs shard transactions under ThreadId w,
/// so Options.Workers must not exceed the store's configured MaxThreads.
/// Client threads never touch a TM — they only push requests and spin on
/// the Done flag — so any number of clients may submit concurrently.
///
/// Ordering contract: shard s is drained only by worker s % Workers
/// (static shard affinity), and the queues are per-producer FIFO, so one
/// client's requests to any single key execute in submission order. More
/// workers than shards leaves the surplus idle; more shards than workers
/// time-multiplexes.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_KV_REQUESTEXECUTOR_H
#define PTM_KV_REQUESTEXECUTOR_H

#include "kv/KvApi.h"
#include "kv/KvStore.h"
#include "obs/Metrics.h"
#include "runtime/MpmcQueue.h"

#include <atomic>
#include <cassert>
#include <functional>
#include <thread>

namespace ptm {

namespace obs {
class Tracer;
} // namespace obs

namespace kv {

/// One in-flight client operation, carrying the same KvOp / KvResponse
/// vocabulary as the synchronous KvStore surface and the wire protocol
/// (net/Protocol.h) — in-process executor, server, and WAL all speak it.
/// Only the single-key ops (Get, Put, Erase, Cas) route through the
/// executor; multi-key operations stay synchronous because they span
/// shards, and anything else completes as KvStatus::BadRequest.
///
/// The client owns the storage and must keep it alive until done(); the
/// executor publishes Out and sets Done with release ordering, so a
/// client that observed done() reads a consistent response.
struct KvRequest {
  KvOp Op = KvOp::Get;
  uint64_t Key = 0;
  uint64_t Value = 0;    ///< put: value to store; cas: desired value.
  uint64_t Expected = 0; ///< cas: expected current value.

  /// The published response; field meanings match the synchronous
  /// KvStore methods (get: Ok carries the value, erase: Ok carries the
  /// prior value, cas: Ok carries Expected / CasMismatch the witness).
  KvResponse Out;
  uint64_t SubmitNs = 0; ///< Stamped by submit(); feeds the end-to-end
                         ///< latency histogram (queue wait + batch wait +
                         ///< execution + publish).
  std::atomic<bool> Done{false};

  bool done() const { return Done.load(std::memory_order_acquire); }

  /// Re-arm a completed request for resubmission (client-side only).
  /// Clears the result fields too, so a stale response can never leak
  /// through a resubmission that completes a different way.
  void reset() {
    Out = KvResponse();
    SubmitNs = 0;
    Done.store(false, std::memory_order_relaxed);
  }
};

/// Aggregate executor counters (racy-but-monotonic while running; use
/// exactStats() for the post-stop exact read).
struct ExecutorStats {
  uint64_t Completed = 0; ///< Requests executed and published.
  uint64_t Batches = 0;   ///< Shard transactions that carried them.

  double meanBatch() const {
    return Batches == 0 ? 0.0
                        : static_cast<double>(Completed) /
                              static_cast<double>(Batches);
  }
};

class RequestExecutor {
public:
  struct Options {
    unsigned Workers = 2;          ///< Pool size; <= store MaxThreads.
    unsigned QueueCapacity = 1024; ///< Per-shard queue; power of two.
    unsigned MaxBatch = 16;        ///< Requests per shard transaction.
    obs::Tracer *Trace = nullptr;  ///< Arms per-worker transaction event
                                   ///< tracing: worker w appends to
                                   ///< Trace->ring(w). Needs threads() >=
                                   ///< Workers. Null = disarmed (the
                                   ///< default; no per-op cost).
    /// Invoked once after each batch publishes its Done flags, from the
    /// worker thread, possibly concurrently from several workers. The
    /// KvServer hooks its completion eventfd here so the poll loop can
    /// sleep instead of spinning on Done; null = no callback.
    std::function<void()> OnBatchComplete;
  };

  /// True iff \p Opts can drive \p Store: nonzero workers within the
  /// store's thread budget, power-of-two queue capacity, nonzero batch.
  static bool validOptions(const KvStore &Store, const Options &Opts);

  /// Spawns the worker pool immediately. \p Opts must satisfy
  /// validOptions (asserted).
  RequestExecutor(KvStore &Store, const Options &Opts);

  /// Stops and joins the pool (drains queued requests first).
  ~RequestExecutor();

  RequestExecutor(const RequestExecutor &) = delete;
  RequestExecutor &operator=(const RequestExecutor &) = delete;

  /// Enqueues \p R on its shard's queue, spinning while the queue is full
  /// (bounded queues are the backpressure: a flooded shard slows its
  /// clients instead of growing memory without bound).
  void submit(KvRequest &R);

  /// Non-blocking submit; false when the shard queue is full.
  bool trySubmit(KvRequest &R);

  /// Spins until \p R completed.
  static void wait(const KvRequest &R);

  /// Processes everything already submitted, then stops the workers.
  /// Callers must not submit concurrently with or after this call.
  void drainAndStop();

  ExecutorStats stats() const;

  /// Exact totals: every submitted request is counted exactly once.
  /// Only meaningful after drainAndStop() — asserted, not just
  /// documented, because a racy read silently passing as exact is the
  /// kind of test bug that survives for years.
  ExecutorStats exactStats() const {
    assert(Pool.empty() && "exactStats before drainAndStop");
    return stats();
  }

  /// Live epoch-snapshot of the executor's metrics (see obs/Metrics.h),
  /// safe concurrently with running workers and submitting clients:
  ///  * counters `kv.executor.completed`, `kv.executor.batches`;
  ///  * histograms `kv.executor.latency_ns` (submit-to-publish, ns) and
  ///    `kv.executor.batch_size` (requests per shard transaction);
  ///  * gauges `kv.executor.queue_depth.<shard>`, sampled at call time.
  obs::MetricsSnapshot telemetry() const;

  unsigned workers() const { return Opts.Workers; }

private:
  void workerLoop(unsigned Worker);

  /// Pops up to MaxBatch requests of \p Shard into the reused \p Batch
  /// scratch and executes them in one transaction under ThreadId
  /// \p Worker. Returns the batch size (0 = nothing pending; that path
  /// is allocation-free).
  unsigned runBatch(unsigned Worker, unsigned Shard,
                    std::vector<KvRequest *> &Batch);

  /// One sweep over the shards owned by \p Worker (static affinity:
  /// shard s belongs to worker s % Workers); returns true if any batch
  /// ran.
  bool sweepOnce(unsigned Worker, std::vector<KvRequest *> &Batch);

  KvStore &Store;
  Options Opts;
  std::vector<std::unique_ptr<MpmcQueue<KvRequest *>>> Queues;

  /// All executor counters live in the registry (telemetry() snapshots
  /// it); the members below are the registration-time pointers the hot
  /// path uses, per-worker sharded where the writer is a worker.
  obs::MetricsRegistry Registry;
  obs::ShardedCounter *Completed;
  obs::ShardedCounter *Batches;
  obs::LatencyHistogram *LatencyNs;
  obs::LatencyHistogram *BatchSize;
  std::vector<obs::Gauge *> QueueDepth; ///< One per shard; sampled lazily.

  std::vector<std::thread> Pool;
  std::atomic<bool> Stopping{false};
};

} // namespace kv
} // namespace ptm

#endif // PTM_KV_REQUESTEXECUTOR_H
