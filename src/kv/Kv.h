//===-- kv/Kv.h - Umbrella header for the KV service layer -----*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience umbrella for the sharded key-value service layer: the
/// store itself (KvStore.h) and the asynchronous request front end
/// (RequestExecutor.h). See DESIGN.md for the latch protocol and the
/// consistency properties sharding preserves.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_KV_KV_H
#define PTM_KV_KV_H

#include "kv/KvStore.h"         // IWYU pragma: export
#include "kv/RequestExecutor.h" // IWYU pragma: export

#endif // PTM_KV_KV_H
