//===-- kv/Wal.cpp - Per-shard write-ahead log with group commit ----------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
//
// On-disk format (all integers little-endian):
//
//   file   := header record*
//   header := magic[8]="PTMWAL1\0" u32 version=1 u32 shard-index
//   record := u32 payload-length  u32 crc32(payload)  payload
//   payload:= u64 lsn  u32 count  count * (u64 key  u8 has-value u64 value)
//
// A record is valid iff its length field fits in the remaining file, the
// CRC matches, and the payload parses exactly. The first invalid record
// ends the file's valid prefix (the torn tail); everything before it was
// fdatasync'ed before its operation was acknowledged, so the prefix is
// exactly the acknowledged history of the file's shard (plus possibly a
// final unacknowledged-but-complete record, which is harmless to keep:
// its operation committed in memory before the crash).
//
//===----------------------------------------------------------------------===//

#include "kv/Wal.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace ptm;
using namespace ptm::kv;

namespace {

constexpr char kMagic[8] = {'P', 'T', 'M', 'W', 'A', 'L', '1', '\0'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = sizeof(kMagic) + 2 * sizeof(uint32_t);
constexpr size_t kRecordFrameBytes = 2 * sizeof(uint32_t);
/// Per-write payload bytes: key + has-value flag + value.
constexpr size_t kWriteBytes = 8 + 1 + 8;

uint32_t crc32(const uint8_t *Data, size_t Size) {
  // Standard reflected CRC-32 (IEEE 802.3, polynomial 0xEDB88320); the
  // table is built once.
  static const auto Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  uint32_t Crc = 0xFFFFFFFFu;
  for (size_t I = 0; I < Size; ++I)
    Crc = Table[(Crc ^ Data[I]) & 0xFF] ^ (Crc >> 8);
  return Crc ^ 0xFFFFFFFFu;
}

template <typename T> void putLe(std::vector<uint8_t> &Out, T Value) {
  for (unsigned I = 0; I < sizeof(T); ++I)
    Out.push_back(static_cast<uint8_t>(Value >> (8 * I)));
}

template <typename T>
bool getLe(const uint8_t *Data, size_t Size, size_t &Pos, T &Value) {
  if (Pos + sizeof(T) > Size)
    return false;
  Value = 0;
  for (unsigned I = 0; I < sizeof(T); ++I)
    Value |= static_cast<T>(Data[Pos + I]) << (8 * I);
  Pos += sizeof(T);
  return true;
}

std::vector<uint8_t> encodeHeader(unsigned ShardIdx) {
  std::vector<uint8_t> Out;
  Out.reserve(kHeaderBytes);
  for (char C : kMagic)
    Out.push_back(static_cast<uint8_t>(C));
  putLe<uint32_t>(Out, kVersion);
  putLe<uint32_t>(Out, static_cast<uint32_t>(ShardIdx));
  return Out;
}

/// Parses one record at \p Pos. Returns true and advances \p Pos past it
/// on success; false (leaving \p Pos at the record start) when the bytes
/// from \p Pos on are not a complete, CRC-valid record.
bool parseRecord(const std::vector<uint8_t> &File, size_t &Pos,
                 WalRecord &Out) {
  size_t P = Pos;
  uint32_t Len = 0, Crc = 0;
  if (!getLe(File.data(), File.size(), P, Len) ||
      !getLe(File.data(), File.size(), P, Crc))
    return false;
  if (Len > File.size() - P)
    return false;
  if (crc32(File.data() + P, Len) != Crc)
    return false;
  size_t End = P + Len;
  uint64_t Lsn = 0;
  uint32_t Count = 0;
  if (!getLe(File.data(), End, P, Lsn) || !getLe(File.data(), End, P, Count))
    return false;
  if (Count > (End - P) / kWriteBytes)
    return false;
  Out.Lsn = Lsn;
  Out.Writes.clear();
  Out.Writes.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    WalWrite W;
    uint8_t HasValue = 0;
    if (!getLe(File.data(), End, P, W.Key) ||
        !getLe(File.data(), End, P, HasValue) ||
        !getLe(File.data(), End, P, W.Value))
      return false;
    if (HasValue > 1)
      return false;
    W.HasValue = HasValue != 0;
    Out.Writes.push_back(W);
  }
  if (P != End)
    return false; // Trailing junk inside a CRC-valid frame: corrupt.
  Pos = End;
  return true;
}

bool readWholeFile(const std::string &Path, std::vector<uint8_t> &Out,
                   bool &Exists) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (F == nullptr) {
    Exists = false;
    return errno == ENOENT;
  }
  Exists = true;
  Out.clear();
  uint8_t Buf[1 << 16];
  size_t N = 0;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.insert(Out.end(), Buf, Buf + N);
  bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  return Ok;
}

} // namespace

std::string Wal::shardFilePath(const std::string &Dir, unsigned ShardIdx) {
  return Dir + "/shard-" + std::to_string(ShardIdx) + ".wal";
}

WalRecovery Wal::recover(const std::string &Dir, unsigned ShardCount) {
  WalRecovery R;
  R.ValidBytes.assign(ShardCount, 0);
  for (unsigned S = 0; S < ShardCount; ++S) {
    std::vector<uint8_t> File;
    bool Exists = false;
    if (!readWholeFile(shardFilePath(Dir, S), File, Exists))
      return R; // Unreadable (not merely absent): fail, do not clobber.
    if (!Exists || File.empty())
      continue; // Fresh shard.
    const std::vector<uint8_t> Header = encodeHeader(S);
    if (File.size() < kHeaderBytes) {
      // A crash during file creation can tear the header itself; that is
      // a torn tail of length zero history. Anything else is a foreign
      // file we must not truncate.
      if (std::memcmp(File.data(), Header.data(), File.size()) != 0)
        return R;
      R.TornBytes += File.size();
      continue;
    }
    if (std::memcmp(File.data(), Header.data(), kHeaderBytes) != 0)
      return R; // Wrong magic/version/shard: refuse the directory.
    size_t Pos = kHeaderBytes;
    WalRecord Rec;
    while (Pos < File.size() && parseRecord(File, Pos, Rec)) {
      Rec.ShardIdx = S;
      R.MaxLsn = std::max(R.MaxLsn, Rec.Lsn);
      R.Records.push_back(std::move(Rec));
      Rec = WalRecord();
    }
    R.ValidBytes[S] = Pos;
    R.TornBytes += File.size() - Pos;
  }
  std::sort(R.Records.begin(), R.Records.end(),
            [](const WalRecord &A, const WalRecord &B) {
              return A.Lsn < B.Lsn;
            });
  R.Ok = true;
  return R;
}

std::unique_ptr<Wal> Wal::open(const std::string &Dir, unsigned ShardCount,
                               const WalRecovery &Recovered,
                               const Options &Opts) {
  if (!Recovered.Ok || Recovered.ValidBytes.size() != ShardCount)
    return nullptr;
  std::unique_ptr<Wal> W(new Wal());
  W->Opts = Opts;
  W->NextLsn.store(Recovered.MaxLsn + 1, std::memory_order_relaxed);
  W->Appends = &W->Registry.counter("wal.appends", ShardCount);
  W->Bytes = &W->Registry.counter("wal.bytes", ShardCount);
  W->IoErrors = &W->Registry.counter("wal.io_errors", ShardCount);
  W->AppendNs = &W->Registry.histogram("wal.append_ns");
  W->Files.reserve(ShardCount);
  for (unsigned S = 0; S < ShardCount; ++S) {
    auto SF = std::make_unique<ShardFile>();
    const std::string Path = shardFilePath(Dir, S);
    // "a" would ignore seeks; "r+" preserves contents. Create on demand.
    SF->F = std::fopen(Path.c_str(), "r+b");
    if (SF->F == nullptr)
      SF->F = std::fopen(Path.c_str(), "w+b");
    if (SF->F == nullptr)
      return nullptr;
    SF->Fd = fileno(SF->F);
    // Drop the torn tail for good, then position at the new end.
    uint64_t Keep = std::max<uint64_t>(Recovered.ValidBytes[S], 0);
    if (Keep < kHeaderBytes) {
      if (ftruncate(SF->Fd, 0) != 0)
        return nullptr;
      std::vector<uint8_t> Header = encodeHeader(S);
      if (std::fwrite(Header.data(), 1, Header.size(), SF->F) !=
          Header.size())
        return nullptr;
      Keep = kHeaderBytes;
    } else if (ftruncate(SF->Fd, static_cast<off_t>(Keep)) != 0) {
      return nullptr;
    }
    if (std::fflush(SF->F) != 0 ||
        std::fseek(SF->F, static_cast<long>(Keep), SEEK_SET) != 0)
      return nullptr;
    if (Opts.Sync && fdatasync(SF->Fd) != 0)
      return nullptr;
    W->Files.push_back(std::move(SF));
  }
  // Make the directory entries themselves durable (freshly created files
  // otherwise vanish with the crash even though their bytes were synced).
  if (Opts.Sync) {
    int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (DirFd < 0)
      return nullptr;
    bool DirOk = fsync(DirFd) == 0;
    ::close(DirFd);
    if (!DirOk)
      return nullptr;
  }
  return W;
}

Wal::~Wal() {
  for (auto &SF : Files)
    if (SF->F != nullptr)
      std::fclose(SF->F);
}

KvStatus Wal::appendBatch(unsigned ShardIdx,
                          const std::vector<WalWrite> &Writes) {
  assert(ShardIdx < Files.size() && "shard index out of range");
  if (Writes.empty())
    return KvStatus::Ok;
  // The LSN must be drawn inside the caller's latched region (it is:
  // every appendBatch call site holds the ordering latch — see the
  // header comment), so the cross-file sort order agrees with per-shard
  // commit order.
  const uint64_t Lsn = NextLsn.fetch_add(1, std::memory_order_relaxed);
  const auto Begin = std::chrono::steady_clock::now();
  std::vector<uint8_t> Payload;
  Payload.reserve(8 + 4 + Writes.size() * kWriteBytes);
  putLe<uint64_t>(Payload, Lsn);
  putLe<uint32_t>(Payload, static_cast<uint32_t>(Writes.size()));
  for (const WalWrite &W : Writes) {
    putLe<uint64_t>(Payload, W.Key);
    putLe<uint8_t>(Payload, W.HasValue ? 1 : 0);
    putLe<uint64_t>(Payload, W.Value);
  }
  std::vector<uint8_t> Frame;
  Frame.reserve(kRecordFrameBytes + Payload.size());
  putLe<uint32_t>(Frame, static_cast<uint32_t>(Payload.size()));
  putLe<uint32_t>(Frame, crc32(Payload.data(), Payload.size()));
  Frame.insert(Frame.end(), Payload.begin(), Payload.end());

  ShardFile &SF = *Files[ShardIdx];
  std::lock_guard<std::mutex> Lock(SF.Mu);
  if (std::fwrite(Frame.data(), 1, Frame.size(), SF.F) != Frame.size() ||
      std::fflush(SF.F) != 0) {
    IoErrors->cell(ShardIdx).inc();
    return KvStatus::IoError;
  }
  if (Opts.Sync && fdatasync(SF.Fd) != 0) {
    IoErrors->cell(ShardIdx).inc();
    return KvStatus::IoError;
  }
  Appends->cell(ShardIdx).inc();
  Bytes->cell(ShardIdx).inc(Frame.size());
  AppendNs->record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Begin)
          .count()));
  return KvStatus::Ok;
}
