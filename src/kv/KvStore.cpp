//===-- kv/KvStore.cpp - Sharded transactional key-value store ------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "kv/KvStore.h"

#include "stm/Atomically.h"
#include "stm/MvTm.h"
#include "support/Spin.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <mutex>

using namespace ptm;
using namespace ptm::kv;

namespace {

/// SplitMix64-style finalizer used for shard routing. Salted differently
/// from TxMap's bucket hash: shard index comes from the low bits of this
/// mix while buckets take `mix % Buckets` of their own, so the two
/// partitions stay independent (an unsalted shared mix would leave each
/// shard using only 1/ShardCount of its buckets).
uint64_t mixShardKey(uint64_t Key) {
  Key ^= 0x2545f4914f6cdd1dULL;
  Key = (Key ^ (Key >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Key = (Key ^ (Key >> 27)) * 0x94d049bb133111ebULL;
  return Key ^ (Key >> 31);
}

/// Single-key update latch: the shared side normally (the TM serializes
/// same-key commits), the unique side while a WAL is attached so the
/// (commit, log-append, fsync) triple is atomic per shard — the
/// durability x latch matrix in the header comment.
class UpdateLatch {
public:
  UpdateLatch(std::shared_mutex &M, bool Exclusive) {
    if (Exclusive)
      Unique = std::unique_lock<std::shared_mutex>(M);
    else
      Shared = std::shared_lock<std::shared_mutex>(M);
  }

private:
  std::shared_lock<std::shared_mutex> Shared;
  std::unique_lock<std::shared_mutex> Unique;
};

} // namespace

bool KvStore::isValidShardCount(unsigned ShardCount) {
  return std::has_single_bit(ShardCount);
}

unsigned KvStore::objectsPerShard(unsigned BucketsPerShard,
                                  uint64_t CapacityPerShard) {
  if (BucketsPerShard == 0 || CapacityPerShard == 0)
    return 0;
  // Reject geometries whose region would not fit in ObjectId range
  // before TxMap::objectsNeeded computes (and truncates) in unsigned.
  // Everything here is uint64 arithmetic: the entry-words product cannot
  // wrap once Capacity clears the division test, and bucket/meta words
  // add at most ~2^33 on top.
  const uint64_t Limit = std::numeric_limits<ObjectId>::max();
  const uint64_t Entry = ds::TxMap::entryWords();
  if (CapacityPerShard > Limit / Entry)
    return 0;
  uint64_t Needed = uint64_t{BucketsPerShard} + ds::TxAlloc::metaWords() +
                    Entry * CapacityPerShard;
  if (Needed > Limit)
    return 0;
  return ds::TxMap::objectsNeeded(BucketsPerShard, CapacityPerShard);
}

std::unique_ptr<KvStore> KvStore::create(const KvConfig &Config) {
  if (!isValidShardCount(Config.ShardCount) || Config.MaxThreads == 0)
    return nullptr;
  unsigned PerShard =
      objectsPerShard(Config.BucketsPerShard, Config.CapacityPerShard);
  if (PerShard == 0)
    return nullptr;

  std::unique_ptr<KvStore> Store(new KvStore(Config));
  Store->ShardMask = Config.ShardCount - 1;
  Store->Shards.reserve(Config.ShardCount);
  // Multi-version shards share one version clock: a single timestamp
  // then names a consistent cut across every shard, which is what lets
  // snapshotGet read all shards at one pinned instant with no latches
  // and no re-reads (see the global-snapshot path there).
  if (Config.Kind == TmKind::TK_Mv)
    Store->MvClock = createVersionClock(Config.Tm.Clock, Config.MaxThreads);
  for (unsigned I = 0; I < Config.ShardCount; ++I) {
    Shard S;
    S.M = Store->MvClock
              ? std::make_unique<MvTm>(PerShard, Config.MaxThreads,
                                       Config.Tm, Store->MvClock.get())
              : createTm(Config.Kind, PerShard, Config.MaxThreads, Config.Tm);
    if (!S.M)
      return nullptr; // Unknown TmKind.
    S.Map = std::make_unique<ds::TxMap>(*S.M, 0, Config.BucketsPerShard,
                                        Config.CapacityPerShard);
    S.Latch = std::make_unique<std::shared_mutex>();
    S.BatchEpoch = std::make_unique<std::atomic<uint64_t>>(0);
    Store->Shards.push_back(std::move(S));
  }
  return Store;
}

unsigned KvStore::shardOf(uint64_t Key) const {
  return static_cast<unsigned>(mixShardKey(Key)) & ShardMask;
}

//===----------------------------------------------------------------------===//
// Single-key operations
//===----------------------------------------------------------------------===//

KvResponse KvStore::get(ThreadId Tid, uint64_t Key) {
  Shard &S = shardFor(Key);
  KvResponse R;
  atomically(*S.M, Tid, [&](TxRef &Tx) {
    uint64_t V = 0;
    if (S.Map->get(Tx, Key, V))
      R = {KvStatus::Ok, V};
    else
      R = {KvStatus::NotFound, 0};
  });
  return R;
}

KvResponse KvStore::put(ThreadId Tid, uint64_t Key, uint64_t Value) {
  Shard &S = shardFor(Key);
  UpdateLatch Latch(*S.Latch, Wal_ != nullptr);
  bool Oom = false;
  atomically(*S.M, Tid, [&](TxRef &Tx) {
    Oom = false;
    bool LocalOom = false;
    S.Map->put(Tx, Key, Value, nullptr, &LocalOom);
    if (LocalOom) {
      // Nothing was mutated; abandon the probe reads without a commit.
      Oom = true;
      Tx.userAbort();
    }
  });
  if (Oom)
    return {KvStatus::CapacityExhausted, 0};
  if (Wal_)
    return {Wal_->appendBatch(shardOf(Key), {{Key, true, Value}}), 0};
  return {KvStatus::Ok, 0};
}

KvResponse KvStore::erase(ThreadId Tid, uint64_t Key) {
  Shard &S = shardFor(Key);
  UpdateLatch Latch(*S.Latch, Wal_ != nullptr);
  bool Hit = false;
  uint64_t Prior = 0;
  atomically(*S.M, Tid, [&](TxRef &Tx) {
    Hit = false;
    Prior = 0;
    uint64_t V = 0;
    if (S.Map->get(Tx, Key, V)) {
      Prior = V;
      Hit = S.Map->erase(Tx, Key);
    }
  });
  if (!Hit)
    return {KvStatus::NotFound, 0};
  if (Wal_)
    return {Wal_->appendBatch(shardOf(Key), {{Key, false, 0}}), Prior};
  return {KvStatus::Ok, Prior};
}

KvResponse KvStore::compareAndSwap(ThreadId Tid, uint64_t Key,
                                   uint64_t Expected, uint64_t Desired) {
  Shard &S = shardFor(Key);
  UpdateLatch Latch(*S.Latch, Wal_ != nullptr);
  bool Swapped = false;
  bool Present = false;
  uint64_t Seen = 0;
  atomically(*S.M, Tid, [&](TxRef &Tx) {
    Swapped = false;
    Seen = 0;
    Present = S.Map->get(Tx, Key, Seen);
    if (Tx.failed())
      return;
    if (Present && Seen == Expected) {
      // Present with the expected value: the overwrite cannot allocate,
      // so it cannot fail for capacity.
      S.Map->put(Tx, Key, Desired);
      Swapped = !Tx.failed();
    }
  });
  if (Swapped) {
    if (Wal_)
      return {Wal_->appendBatch(shardOf(Key), {{Key, true, Desired}}),
              Expected};
    return {KvStatus::Ok, Expected};
  }
  if (!Present)
    return {KvStatus::NotFound, 0};
  return {KvStatus::CasMismatch, Seen};
}

//===----------------------------------------------------------------------===//
// Multi-key operations (canonical-order shard composition)
//===----------------------------------------------------------------------===//

std::vector<unsigned>
KvStore::involvedShards(const std::vector<uint64_t> &Keys) const {
  std::vector<unsigned> Involved;
  Involved.reserve(Keys.size());
  for (uint64_t Key : Keys)
    Involved.push_back(shardOf(Key));
  std::sort(Involved.begin(), Involved.end());
  Involved.erase(std::unique(Involved.begin(), Involved.end()),
                 Involved.end());
  return Involved;
}

void KvStore::markBatchBegin(const std::vector<unsigned> &Involved) {
  for (unsigned ShardIdx : Involved) {
    [[maybe_unused]] uint64_t Prev =
        Shards[ShardIdx].BatchEpoch->fetch_add(1);
    assert(!(Prev & 1) && "batch epoch already odd: nested batch marking");
  }
}

void KvStore::markBatchEnd(const std::vector<unsigned> &Involved) {
  for (unsigned ShardIdx : Involved) {
    [[maybe_unused]] uint64_t Prev =
        Shards[ShardIdx].BatchEpoch->fetch_add(1);
    assert((Prev & 1) && "batch epoch already even: unbalanced marking");
  }
}

bool KvStore::shardHasRoom(
    ThreadId Tid, unsigned ShardIdx,
    const std::vector<std::pair<uint64_t, std::optional<uint64_t>>>
        &Writes) {
  Shard &S = Shards[ShardIdx];
  uint64_t Inserts = 0;
  std::vector<uint64_t> Seen; // Batches are small; linear dedup is fine.
  atomically(*S.M, Tid, [&](TxRef &Tx) {
    Inserts = 0;
    Seen.clear();
    for (const auto &[Key, Value] : Writes) {
      if (!Value)
        continue; // Erase: frees capacity, never consumes it.
      if (std::find(Seen.begin(), Seen.end(), Key) != Seen.end())
        continue;
      Seen.push_back(Key);
      uint64_t Current = 0;
      if (!S.Map->get(Tx, Key, Current))
        ++Inserts; // Fresh key: needs a node.
      if (Tx.failed())
        return;
    }
  });
  // With the latch held exclusively no update can commit to this shard,
  // so the quiescent live-node sample is exact.
  return Inserts <= Config_.CapacityPerShard - S.Map->sampleLiveNodes();
}

bool KvStore::applyToShard(
    ThreadId Tid, unsigned ShardIdx,
    const std::vector<std::pair<uint64_t, std::optional<uint64_t>>> &Writes,
    std::vector<UndoEntry> &Undo) {
  Shard &S = Shards[ShardIdx];
  std::vector<UndoEntry> Attempt;
  Attempt.reserve(Writes.size());
  bool Oom = false;
  bool Committed = atomically(*S.M, Tid, [&](TxRef &Tx) {
    Attempt.clear();
    Oom = false;
    for (const auto &[Key, Value] : Writes) {
      uint64_t Prior = 0;
      bool Present = S.Map->get(Tx, Key, Prior);
      if (Tx.failed())
        return;
      Attempt.push_back(
          {Key, Present ? std::optional<uint64_t>(Prior) : std::nullopt});
      if (Value) {
        bool LocalOom = false;
        S.Map->put(Tx, Key, *Value, nullptr, &LocalOom);
        if (LocalOom) {
          Oom = true;
          Tx.userAbort(); // Leave this shard untouched.
          return;
        }
      } else {
        S.Map->erase(Tx, Key);
      }
      if (Tx.failed())
        return;
    }
  });
  if (!Committed) {
    assert(Oom && "only capacity exhaustion abandons a latched shard txn");
    (void)Oom;
    return false;
  }
  Undo.insert(Undo.end(), Attempt.begin(), Attempt.end());
  return true;
}

void KvStore::rollbackShard(ThreadId Tid, unsigned ShardIdx,
                            const std::vector<UndoEntry> &Undo) {
  Shard &S = Shards[ShardIdx];
  atomically(*S.M, Tid, [&](TxRef &Tx) {
    for (auto It = Undo.rbegin(); It != Undo.rend(); ++It) {
      if (It->Prior) {
        bool LocalOom = false;
        S.Map->put(Tx, It->Key, *It->Prior, nullptr, &LocalOom);
        // Restores refill capacity the forward pass consumed or freed, so
        // exhaustion here would be a bookkeeping bug.
        assert(!LocalOom && "rollback must not exhaust the shard");
        (void)LocalOom;
      } else {
        S.Map->erase(Tx, It->Key);
      }
      if (Tx.failed())
        return;
    }
  });
}

KvStatus KvStore::multiPut(
    ThreadId Tid, const std::vector<std::pair<uint64_t, uint64_t>> &Pairs) {
  if (Pairs.empty())
    return KvStatus::Ok;

  std::vector<uint64_t> Keys;
  Keys.reserve(Pairs.size());
  for (const auto &P : Pairs)
    Keys.push_back(P.first);
  const std::vector<unsigned> Involved = involvedShards(Keys);

  // Canonical-order unique latches: ascending shard index, so two
  // multi-key operations with overlapping shard sets can never hold
  // resources in a cycle.
  std::vector<std::unique_lock<std::shared_mutex>> Latches;
  Latches.reserve(Involved.size());
  for (unsigned ShardIdx : Involved)
    Latches.emplace_back(*Shards[ShardIdx].Latch);

  // Per-shard write lists, in batch order within each shard.
  std::vector<std::vector<std::pair<uint64_t, std::optional<uint64_t>>>>
      ShardWrites(Involved.size());
  for (size_t S = 0; S < Involved.size(); ++S)
    for (const auto &[Key, Value] : Pairs)
      if (shardOf(Key) == Involved[S])
        ShardWrites[S].emplace_back(Key, Value);

  // Capacity precheck before anything commits: a failing batch must
  // leave the store untouched for *every* observer — unlatched readers
  // included, which a commit-then-roll-back scheme could not guarantee.
  for (size_t S = 0; S < Involved.size(); ++S)
    if (!shardHasRoom(Tid, Involved[S], ShardWrites[S]))
      return KvStatus::CapacityExhausted;

  // The odd-epoch window spans every per-shard commit, so a latch-free
  // snapshot reader can detect any overlap with this batch.
  markBatchBegin(Involved);
  std::vector<std::pair<unsigned, std::vector<UndoEntry>>> Applied;
  for (size_t S = 0; S < Involved.size(); ++S) {
    std::vector<UndoEntry> Undo;
    if (!applyToShard(Tid, Involved[S], ShardWrites[S], Undo)) {
      // Unreachable after the precheck; kept as defense in depth (the
      // latches still exclude every consistent reader here).
      assert(false && "capacity precheck admitted an oversized batch");
      for (auto It = Applied.rbegin(); It != Applied.rend(); ++It)
        rollbackShard(Tid, It->first, It->second);
      markBatchEnd(Involved);
      return KvStatus::CapacityExhausted;
    }
    Applied.emplace_back(Involved[S], std::move(Undo));
  }
  // Durability: ONE record for the whole cross-shard batch, in the
  // lowest involved shard's file, appended and fsynced while every
  // involved latch is still held. A torn record therefore implies no
  // later operation saw any of the batch's shards, so recovery dropping
  // it keeps the never-torn property (see Wal.h).
  KvStatus Logged = KvStatus::Ok;
  if (Wal_) {
    std::vector<WalWrite> Writes;
    Writes.reserve(Pairs.size());
    for (const auto &[Key, Value] : Pairs)
      Writes.push_back({Key, true, Value});
    Logged = Wal_->appendBatch(Involved.front(), Writes);
  }
  markBatchEnd(Involved);
  return Logged;
}

KvStatus KvStore::snapshotGet(ThreadId Tid,
                              const std::vector<uint64_t> &Keys,
                              std::vector<KvResponse> &Out) {
  Out.assign(Keys.size(), KvResponse{KvStatus::NotFound, 0});
  if (Keys.empty())
    return KvStatus::Ok;
  const std::vector<unsigned> Involved = involvedShards(Keys);

  // One shard transaction per involved shard; read-only throughout, so
  // the TM's snapshot path (when it has one) serves it abort-free.
  auto readShard = [&](unsigned ShardIdx) {
    Shard &S = Shards[ShardIdx];
    atomicallyReadOnly(*S.M, Tid, [&](TxRef &Tx) {
      for (size_t I = 0; I < Keys.size(); ++I) {
        if (shardOf(Keys[I]) != ShardIdx)
          continue;
        uint64_t V = 0;
        if (S.Map->get(Tx, Keys[I], V))
          Out[I] = {KvStatus::Ok, V};
        else
          Out[I] = {KvStatus::NotFound, 0};
        if (Tx.failed())
          return;
      }
    });
  };

  // Single shard: one opaque shard transaction already is an atomic
  // snapshot; no latch, no epoch, for every TmKind (same argument as the
  // unlatched single-key get).
  if (Involved.size() == 1) {
    readShard(Involved[0]);
    return KvStatus::Ok;
  }

  if (hasSharedSnapshotClock()) {
    // Latch-free global-snapshot path: every shard's MvTm stamps commits
    // from the one shared clock, so ONE timestamp Ts names a consistent
    // cut of the whole store — pin it, then read each shard's version
    // rings at Ts. Nothing after the pin can invalidate the reads (the
    // published Ts blocks eviction of any version the snapshot needs),
    // so unlike validation schemes this never re-reads: a reader of any
    // length finishes in a bounded number of steps per key regardless of
    // concurrent write traffic.
    //
    // Pinning Ts: epochs only gate the CHOICE of Ts against multi-key
    // batches, whose per-shard commits carry different clock values. Ts
    // is valid iff no batch commit straddles it on an involved shard:
    //  1. read all involved epochs; retry while any is odd (mid-batch);
    //  2. Ts = clock; publish Ts on all involved shards;
    //  3. clock still == Ts? Any commit at all in the window ⇒ retry.
    //  4. epochs unmoved? A batch that slipped its BEGIN in before (2)
    //     but commits later would not bump the clock until after (3) —
    //     this recheck catches it; one that begins after the recheck
    //     commits entirely at versions > Ts, invisibly. A batch fully
    //     committed before (1) sits entirely at versions <= Ts. Either
    //     way no batch is torn.
    // On EVERY retry the candidate pin is released first: a pin frozen
    // across the epoch wait blocks ring eviction, so the in-flight
    // batch commit we are waiting out could itself be spinning on
    // AC_HistoryFull behind our pin — reader waits for batch, batch
    // waits for reader. Releasing before the wait keeps writers live;
    // the loop re-runs only when a commit or batch lands inside the
    // sub-microsecond pin window, so it converges under any realistic
    // write rate; the reads themselves retry never.
    auto MvShard = [&](unsigned ShardIdx) -> MvTm & {
      return static_cast<MvTm &>(*Shards[ShardIdx].M);
    };
    for (unsigned ShardIdx : Involved)
      MvShard(ShardIdx).snapshotEnter(Tid);
    std::vector<uint64_t> Epochs(Involved.size());
    uint32_t Spin = 0;
    uint64_t Ts;
    for (;;) {
      bool Busy = false;
      for (size_t I = 0; I < Involved.size(); ++I) {
        Epochs[I] = Shards[Involved[I]].BatchEpoch->load();
        if (Epochs[I] & 1)
          Busy = true;
      }
      if (!Busy) {
        Ts = MvClock->read();
        for (unsigned ShardIdx : Involved)
          MvShard(ShardIdx).snapshotPublish(Tid, Ts);
        if (MvClock->read() == Ts) {
          bool Stable = true;
          for (size_t I = 0; I < Involved.size(); ++I)
            if (Shards[Involved[I]].BatchEpoch->load() != Epochs[I]) {
              Stable = false;
              break;
            }
          if (Stable)
            break;
        }
        // Verification failed: retire the candidate pin before waiting
        // (see the deadlock note above). The Busy path published
        // nothing this iteration, so it has nothing to release.
        for (unsigned ShardIdx : Involved)
          MvShard(ShardIdx).snapshotRelease(Tid);
      }
      spinPause(Spin); // A commit or batch hit the pin window; re-pin.
    }
    // Read phase: per shard, a read-only transaction at the pinned Ts
    // (its commit also retires that shard's published timestamp).
    for (unsigned ShardIdx : Involved) {
      Shard &S = Shards[ShardIdx];
      MvShard(ShardIdx).txBeginReadOnlyAt(Tid, Ts);
      TxRef Tx(*S.M, Tid);
      for (size_t I = 0; I < Keys.size(); ++I) {
        if (shardOf(Keys[I]) != ShardIdx)
          continue;
        uint64_t V = 0;
        if (S.Map->get(Tx, Keys[I], V))
          Out[I] = {KvStatus::Ok, V};
        else
          Out[I] = {KvStatus::NotFound, 0};
      }
      assert(!Tx.failed() && "read-only snapshot transactions cannot fail");
      S.M->txCommit(Tid);
    }
    return KvStatus::Ok;
  }

  // Fallback: shared latches on the involved shards, canonical order.
  // Shared, not unique — this is a pure read: it must exclude batch
  // writers (who hold the unique side across all their commits) but has
  // no reason to exclude other snapshot readers or single-key updates
  // (per-shard consistency comes from the shard transaction itself).
  std::vector<std::shared_lock<std::shared_mutex>> Latches;
  Latches.reserve(Involved.size());
  for (unsigned ShardIdx : Involved)
    Latches.emplace_back(*Shards[ShardIdx].Latch);
  for (unsigned ShardIdx : Involved)
    readShard(ShardIdx);
  return KvStatus::Ok;
}

KvStatus KvStore::readModifyWrite(
    ThreadId Tid, const std::vector<uint64_t> &Keys,
    const std::function<void(std::vector<std::optional<uint64_t>> &)>
        &Update) {
  if (Keys.empty())
    return KvStatus::Ok;
  const std::vector<unsigned> Involved = involvedShards(Keys);

  // Unique latches for the whole read-modify-write, deliberately *not*
  // the shared/latch-free treatment snapshotGet got: the atomicity
  // contract ("no concurrent update slides between the read and the
  // write") requires the involved shards to stay frozen from the first
  // read to the last write. A shared read phase upgrading to unique for
  // the write would deadlock the moment two rMWs upgrade on a common
  // shard, and dropping the latch between phases re-admits exactly the
  // interleaving the operation exists to exclude (see DESIGN.md).
  std::vector<std::unique_lock<std::shared_mutex>> Latches;
  Latches.reserve(Involved.size());
  for (unsigned ShardIdx : Involved)
    Latches.emplace_back(*Shards[ShardIdx].Latch);

  // Read phase: one read-only transaction per shard; the latches freeze
  // the involved shards, so the values form a consistent snapshot that
  // stays valid through the write phase.
  std::vector<std::optional<uint64_t>> Values(Keys.size());
  for (unsigned ShardIdx : Involved) {
    Shard &S = Shards[ShardIdx];
    atomicallyReadOnly(*S.M, Tid, [&](TxRef &Tx) {
      for (size_t I = 0; I < Keys.size(); ++I) {
        if (shardOf(Keys[I]) != ShardIdx)
          continue;
        uint64_t V = 0;
        Values[I] =
            S.Map->get(Tx, Keys[I], V) ? std::optional<uint64_t>(V)
                                       : std::nullopt;
        if (Tx.failed())
          return;
      }
    });
  }

  Update(Values);
  assert(Values.size() == Keys.size() &&
         "readModifyWrite update must keep one value per key");

  // Write phase, canonical order, capacity prechecked like multiPut so
  // a failing update writes nothing at all.
  std::vector<std::vector<std::pair<uint64_t, std::optional<uint64_t>>>>
      ShardWrites(Involved.size());
  for (size_t S = 0; S < Involved.size(); ++S)
    for (size_t I = 0; I < Keys.size(); ++I)
      if (shardOf(Keys[I]) == Involved[S])
        ShardWrites[S].emplace_back(Keys[I], Values[I]);

  for (size_t S = 0; S < Involved.size(); ++S)
    if (!shardHasRoom(Tid, Involved[S], ShardWrites[S]))
      return KvStatus::CapacityExhausted;

  markBatchBegin(Involved);
  std::vector<std::pair<unsigned, std::vector<UndoEntry>>> Applied;
  for (size_t S = 0; S < Involved.size(); ++S) {
    std::vector<UndoEntry> Undo;
    if (!applyToShard(Tid, Involved[S], ShardWrites[S], Undo)) {
      assert(false && "capacity precheck admitted an oversized update");
      for (auto It = Applied.rbegin(); It != Applied.rend(); ++It)
        rollbackShard(Tid, It->first, It->second);
      markBatchEnd(Involved);
      return KvStatus::CapacityExhausted;
    }
    Applied.emplace_back(Involved[S], std::move(Undo));
  }
  // Same group-commit shape as multiPut: one record for the whole batch
  // (erases logged as HasValue=false), lowest involved shard's file,
  // fsynced before the latches drop.
  KvStatus Logged = KvStatus::Ok;
  if (Wal_) {
    std::vector<WalWrite> Writes;
    Writes.reserve(Keys.size());
    for (size_t I = 0; I < Keys.size(); ++I) {
      if (Values[I])
        Writes.push_back({Keys[I], true, *Values[I]});
      else
        Writes.push_back({Keys[I], false, 0});
    }
    Logged = Wal_->appendBatch(Involved.front(), Writes);
  }
  markBatchEnd(Involved);
  return Logged;
}

//===----------------------------------------------------------------------===//
// Durability
//===----------------------------------------------------------------------===//

KvStatus KvStore::replayWal(const std::vector<WalRecord> &Records) {
  assert(Wal_ == nullptr && "replay before attaching the reopened Wal");
  // Sequential, single-threaded (recovery runs before the store is
  // shared), so plain per-shard transactions suffice: each record
  // replays its writes in order, routed by the same shard hash that
  // placed them originally. Records are LSN-sorted, which agrees with
  // per-shard commit order (Wal.h), so the final state matches the
  // acknowledged pre-crash state.
  const ThreadId Tid = 0;
  for (const WalRecord &Rec : Records) {
    bool Oom = false;
    for (const WalWrite &W : Rec.Writes) {
      Shard &S = shardFor(W.Key);
      atomically(*S.M, Tid, [&](TxRef &Tx) {
        Oom = false;
        if (W.HasValue) {
          bool LocalOom = false;
          S.Map->put(Tx, W.Key, W.Value, nullptr, &LocalOom);
          if (LocalOom) {
            Oom = true;
            Tx.userAbort();
          }
        } else {
          S.Map->erase(Tx, W.Key);
        }
      });
      // The replayed sequence is a state history that existed in memory
      // before the crash, so it fits any geometry at least as large as
      // the writer's; exhaustion means the store was recreated smaller.
      if (Oom)
        return KvStatus::CapacityExhausted;
    }
  }
  return KvStatus::Ok;
}

//===----------------------------------------------------------------------===//
// Quiescent introspection
//===----------------------------------------------------------------------===//

uint64_t KvStore::sampleSize() const {
  uint64_t Total = 0;
  for (const Shard &S : Shards)
    Total += S.Map->sampleEntries().size();
  return Total;
}

std::vector<std::pair<uint64_t, uint64_t>>
KvStore::sampleShard(unsigned ShardIdx) const {
  return Shards[ShardIdx].Map->sampleEntries();
}

TmStats KvStore::aggregateStats() const {
  TmStats Total;
  for (const Shard &S : Shards)
    Total += S.M->stats();
  return Total;
}

TmStats KvStore::statsSnapshot() const {
  TmStats Total;
  for (const Shard &S : Shards)
    Total += S.M->statsSnapshot();
  return Total;
}

void KvStore::resetStats() {
  for (Shard &S : Shards)
    S.M->resetStats();
}
