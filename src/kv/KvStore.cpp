//===-- kv/KvStore.cpp - Sharded transactional key-value store ------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "kv/KvStore.h"

#include "stm/Atomically.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <mutex>

using namespace ptm;
using namespace ptm::kv;

namespace {

/// SplitMix64-style finalizer used for shard routing. Salted differently
/// from TxMap's bucket hash: shard index comes from the low bits of this
/// mix while buckets take `mix % Buckets` of their own, so the two
/// partitions stay independent (an unsalted shared mix would leave each
/// shard using only 1/ShardCount of its buckets).
uint64_t mixShardKey(uint64_t Key) {
  Key ^= 0x2545f4914f6cdd1dULL;
  Key = (Key ^ (Key >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Key = (Key ^ (Key >> 27)) * 0x94d049bb133111ebULL;
  return Key ^ (Key >> 31);
}

} // namespace

bool KvStore::isValidShardCount(unsigned ShardCount) {
  return std::has_single_bit(ShardCount);
}

unsigned KvStore::objectsPerShard(unsigned BucketsPerShard,
                                  uint64_t CapacityPerShard) {
  if (BucketsPerShard == 0 || CapacityPerShard == 0)
    return 0;
  // Reject geometries whose region would not fit in ObjectId range
  // before TxMap::objectsNeeded computes (and truncates) in unsigned.
  // Everything here is uint64 arithmetic: the entry-words product cannot
  // wrap once Capacity clears the division test, and bucket/meta words
  // add at most ~2^33 on top.
  const uint64_t Limit = std::numeric_limits<ObjectId>::max();
  const uint64_t Entry = ds::TxMap::entryWords();
  if (CapacityPerShard > Limit / Entry)
    return 0;
  uint64_t Needed = uint64_t{BucketsPerShard} + ds::TxAlloc::metaWords() +
                    Entry * CapacityPerShard;
  if (Needed > Limit)
    return 0;
  return ds::TxMap::objectsNeeded(BucketsPerShard, CapacityPerShard);
}

std::unique_ptr<KvStore> KvStore::create(const KvConfig &Config) {
  if (!isValidShardCount(Config.ShardCount) || Config.MaxThreads == 0)
    return nullptr;
  unsigned PerShard =
      objectsPerShard(Config.BucketsPerShard, Config.CapacityPerShard);
  if (PerShard == 0)
    return nullptr;

  std::unique_ptr<KvStore> Store(new KvStore(Config));
  Store->ShardMask = Config.ShardCount - 1;
  Store->Shards.reserve(Config.ShardCount);
  for (unsigned I = 0; I < Config.ShardCount; ++I) {
    Shard S;
    S.M = createTm(Config.Kind, PerShard, Config.MaxThreads);
    if (!S.M)
      return nullptr; // Unknown TmKind.
    S.Map = std::make_unique<ds::TxMap>(*S.M, 0, Config.BucketsPerShard,
                                        Config.CapacityPerShard);
    S.Latch = std::make_unique<std::shared_mutex>();
    Store->Shards.push_back(std::move(S));
  }
  return Store;
}

unsigned KvStore::shardOf(uint64_t Key) const {
  return static_cast<unsigned>(mixShardKey(Key)) & ShardMask;
}

//===----------------------------------------------------------------------===//
// Single-key operations
//===----------------------------------------------------------------------===//

bool KvStore::get(ThreadId Tid, uint64_t Key, uint64_t &Value) {
  Shard &S = shardFor(Key);
  bool Hit = false;
  atomically(*S.M, Tid, [&](TxRef &Tx) {
    uint64_t V = 0;
    Hit = S.Map->get(Tx, Key, V);
    if (Hit)
      Value = V;
  });
  return Hit;
}

bool KvStore::put(ThreadId Tid, uint64_t Key, uint64_t Value) {
  Shard &S = shardFor(Key);
  std::shared_lock<std::shared_mutex> Latch(*S.Latch);
  bool Oom = false;
  atomically(*S.M, Tid, [&](TxRef &Tx) {
    Oom = false;
    bool LocalOom = false;
    S.Map->put(Tx, Key, Value, nullptr, &LocalOom);
    if (LocalOom) {
      // Nothing was mutated; abandon the probe reads without a commit.
      Oom = true;
      Tx.userAbort();
    }
  });
  return !Oom;
}

bool KvStore::erase(ThreadId Tid, uint64_t Key) {
  Shard &S = shardFor(Key);
  std::shared_lock<std::shared_mutex> Latch(*S.Latch);
  bool Hit = false;
  atomically(*S.M, Tid,
             [&](TxRef &Tx) { Hit = S.Map->erase(Tx, Key); });
  return Hit;
}

bool KvStore::compareAndSwap(ThreadId Tid, uint64_t Key, uint64_t Expected,
                             uint64_t Desired,
                             std::optional<uint64_t> *Witness) {
  Shard &S = shardFor(Key);
  std::shared_lock<std::shared_mutex> Latch(*S.Latch);
  bool Swapped = false;
  std::optional<uint64_t> Seen;
  atomically(*S.M, Tid, [&](TxRef &Tx) {
    Swapped = false;
    Seen.reset();
    uint64_t V = 0;
    if (S.Map->get(Tx, Key, V))
      Seen = V;
    if (Tx.failed())
      return;
    if (Seen == Expected) {
      // Present with the expected value: the overwrite cannot allocate,
      // so it cannot fail for capacity.
      S.Map->put(Tx, Key, Desired);
      Swapped = !Tx.failed();
    }
  });
  if (Witness)
    *Witness = Seen;
  return Swapped;
}

//===----------------------------------------------------------------------===//
// Multi-key operations (canonical-order shard composition)
//===----------------------------------------------------------------------===//

std::vector<unsigned>
KvStore::involvedShards(const std::vector<uint64_t> &Keys) const {
  std::vector<unsigned> Involved;
  Involved.reserve(Keys.size());
  for (uint64_t Key : Keys)
    Involved.push_back(shardOf(Key));
  std::sort(Involved.begin(), Involved.end());
  Involved.erase(std::unique(Involved.begin(), Involved.end()),
                 Involved.end());
  return Involved;
}

bool KvStore::shardHasRoom(
    ThreadId Tid, unsigned ShardIdx,
    const std::vector<std::pair<uint64_t, std::optional<uint64_t>>>
        &Writes) {
  Shard &S = Shards[ShardIdx];
  uint64_t Inserts = 0;
  std::vector<uint64_t> Seen; // Batches are small; linear dedup is fine.
  atomically(*S.M, Tid, [&](TxRef &Tx) {
    Inserts = 0;
    Seen.clear();
    for (const auto &[Key, Value] : Writes) {
      if (!Value)
        continue; // Erase: frees capacity, never consumes it.
      if (std::find(Seen.begin(), Seen.end(), Key) != Seen.end())
        continue;
      Seen.push_back(Key);
      uint64_t Current = 0;
      if (!S.Map->get(Tx, Key, Current))
        ++Inserts; // Fresh key: needs a node.
      if (Tx.failed())
        return;
    }
  });
  // With the latch held exclusively no update can commit to this shard,
  // so the quiescent live-node sample is exact.
  return Inserts <= Config_.CapacityPerShard - S.Map->sampleLiveNodes();
}

bool KvStore::applyToShard(
    ThreadId Tid, unsigned ShardIdx,
    const std::vector<std::pair<uint64_t, std::optional<uint64_t>>> &Writes,
    std::vector<UndoEntry> &Undo) {
  Shard &S = Shards[ShardIdx];
  std::vector<UndoEntry> Attempt;
  Attempt.reserve(Writes.size());
  bool Oom = false;
  bool Committed = atomically(*S.M, Tid, [&](TxRef &Tx) {
    Attempt.clear();
    Oom = false;
    for (const auto &[Key, Value] : Writes) {
      uint64_t Prior = 0;
      bool Present = S.Map->get(Tx, Key, Prior);
      if (Tx.failed())
        return;
      Attempt.push_back(
          {Key, Present ? std::optional<uint64_t>(Prior) : std::nullopt});
      if (Value) {
        bool LocalOom = false;
        S.Map->put(Tx, Key, *Value, nullptr, &LocalOom);
        if (LocalOom) {
          Oom = true;
          Tx.userAbort(); // Leave this shard untouched.
          return;
        }
      } else {
        S.Map->erase(Tx, Key);
      }
      if (Tx.failed())
        return;
    }
  });
  if (!Committed) {
    assert(Oom && "only capacity exhaustion abandons a latched shard txn");
    (void)Oom;
    return false;
  }
  Undo.insert(Undo.end(), Attempt.begin(), Attempt.end());
  return true;
}

void KvStore::rollbackShard(ThreadId Tid, unsigned ShardIdx,
                            const std::vector<UndoEntry> &Undo) {
  Shard &S = Shards[ShardIdx];
  atomically(*S.M, Tid, [&](TxRef &Tx) {
    for (auto It = Undo.rbegin(); It != Undo.rend(); ++It) {
      if (It->Prior) {
        bool LocalOom = false;
        S.Map->put(Tx, It->Key, *It->Prior, nullptr, &LocalOom);
        // Restores refill capacity the forward pass consumed or freed, so
        // exhaustion here would be a bookkeeping bug.
        assert(!LocalOom && "rollback must not exhaust the shard");
        (void)LocalOom;
      } else {
        S.Map->erase(Tx, It->Key);
      }
      if (Tx.failed())
        return;
    }
  });
}

bool KvStore::multiPut(
    ThreadId Tid, const std::vector<std::pair<uint64_t, uint64_t>> &Pairs) {
  if (Pairs.empty())
    return true;

  std::vector<uint64_t> Keys;
  Keys.reserve(Pairs.size());
  for (const auto &P : Pairs)
    Keys.push_back(P.first);
  const std::vector<unsigned> Involved = involvedShards(Keys);

  // Canonical-order unique latches: ascending shard index, so two
  // multi-key operations with overlapping shard sets can never hold
  // resources in a cycle.
  std::vector<std::unique_lock<std::shared_mutex>> Latches;
  Latches.reserve(Involved.size());
  for (unsigned ShardIdx : Involved)
    Latches.emplace_back(*Shards[ShardIdx].Latch);

  // Per-shard write lists, in batch order within each shard.
  std::vector<std::vector<std::pair<uint64_t, std::optional<uint64_t>>>>
      ShardWrites(Involved.size());
  for (size_t S = 0; S < Involved.size(); ++S)
    for (const auto &[Key, Value] : Pairs)
      if (shardOf(Key) == Involved[S])
        ShardWrites[S].emplace_back(Key, Value);

  // Capacity precheck before anything commits: a failing batch must
  // leave the store untouched for *every* observer — unlatched readers
  // included, which a commit-then-roll-back scheme could not guarantee.
  for (size_t S = 0; S < Involved.size(); ++S)
    if (!shardHasRoom(Tid, Involved[S], ShardWrites[S]))
      return false;

  std::vector<std::pair<unsigned, std::vector<UndoEntry>>> Applied;
  for (size_t S = 0; S < Involved.size(); ++S) {
    std::vector<UndoEntry> Undo;
    if (!applyToShard(Tid, Involved[S], ShardWrites[S], Undo)) {
      // Unreachable after the precheck; kept as defense in depth (the
      // latches still exclude every consistent reader here).
      assert(false && "capacity precheck admitted an oversized batch");
      for (auto It = Applied.rbegin(); It != Applied.rend(); ++It)
        rollbackShard(Tid, It->first, It->second);
      return false;
    }
    Applied.emplace_back(Involved[S], std::move(Undo));
  }
  return true;
}

bool KvStore::snapshotGet(ThreadId Tid, const std::vector<uint64_t> &Keys,
                          std::vector<std::optional<uint64_t>> &Out) {
  Out.assign(Keys.size(), std::nullopt);
  if (Keys.empty())
    return true;
  const std::vector<unsigned> Involved = involvedShards(Keys);

  std::vector<std::unique_lock<std::shared_mutex>> Latches;
  Latches.reserve(Involved.size());
  for (unsigned ShardIdx : Involved)
    Latches.emplace_back(*Shards[ShardIdx].Latch);

  // With the latches held no update can commit to any involved shard
  // (single-key updates take the shared side), so the per-shard read
  // transactions observe one atomic cross-shard state.
  for (unsigned ShardIdx : Involved) {
    Shard &S = Shards[ShardIdx];
    atomically(*S.M, Tid, [&](TxRef &Tx) {
      for (size_t I = 0; I < Keys.size(); ++I) {
        if (shardOf(Keys[I]) != ShardIdx)
          continue;
        uint64_t V = 0;
        if (S.Map->get(Tx, Keys[I], V))
          Out[I] = V;
        else
          Out[I] = std::nullopt;
        if (Tx.failed())
          return;
      }
    });
  }
  return true;
}

bool KvStore::readModifyWrite(
    ThreadId Tid, const std::vector<uint64_t> &Keys,
    const std::function<void(std::vector<std::optional<uint64_t>> &)>
        &Update) {
  if (Keys.empty())
    return true;
  const std::vector<unsigned> Involved = involvedShards(Keys);

  std::vector<std::unique_lock<std::shared_mutex>> Latches;
  Latches.reserve(Involved.size());
  for (unsigned ShardIdx : Involved)
    Latches.emplace_back(*Shards[ShardIdx].Latch);

  // Read phase: one read-only transaction per shard; the latches freeze
  // the involved shards, so the values form a consistent snapshot that
  // stays valid through the write phase.
  std::vector<std::optional<uint64_t>> Values(Keys.size());
  for (unsigned ShardIdx : Involved) {
    Shard &S = Shards[ShardIdx];
    atomically(*S.M, Tid, [&](TxRef &Tx) {
      for (size_t I = 0; I < Keys.size(); ++I) {
        if (shardOf(Keys[I]) != ShardIdx)
          continue;
        uint64_t V = 0;
        Values[I] =
            S.Map->get(Tx, Keys[I], V) ? std::optional<uint64_t>(V)
                                       : std::nullopt;
        if (Tx.failed())
          return;
      }
    });
  }

  Update(Values);
  assert(Values.size() == Keys.size() &&
         "readModifyWrite update must keep one value per key");

  // Write phase, canonical order, capacity prechecked like multiPut so
  // a failing update writes nothing at all.
  std::vector<std::vector<std::pair<uint64_t, std::optional<uint64_t>>>>
      ShardWrites(Involved.size());
  for (size_t S = 0; S < Involved.size(); ++S)
    for (size_t I = 0; I < Keys.size(); ++I)
      if (shardOf(Keys[I]) == Involved[S])
        ShardWrites[S].emplace_back(Keys[I], Values[I]);

  for (size_t S = 0; S < Involved.size(); ++S)
    if (!shardHasRoom(Tid, Involved[S], ShardWrites[S]))
      return false;

  std::vector<std::pair<unsigned, std::vector<UndoEntry>>> Applied;
  for (size_t S = 0; S < Involved.size(); ++S) {
    std::vector<UndoEntry> Undo;
    if (!applyToShard(Tid, Involved[S], ShardWrites[S], Undo)) {
      assert(false && "capacity precheck admitted an oversized update");
      for (auto It = Applied.rbegin(); It != Applied.rend(); ++It)
        rollbackShard(Tid, It->first, It->second);
      return false;
    }
    Applied.emplace_back(Involved[S], std::move(Undo));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Quiescent introspection
//===----------------------------------------------------------------------===//

uint64_t KvStore::sampleSize() const {
  uint64_t Total = 0;
  for (const Shard &S : Shards)
    Total += S.Map->sampleEntries().size();
  return Total;
}

std::vector<std::pair<uint64_t, uint64_t>>
KvStore::sampleShard(unsigned ShardIdx) const {
  return Shards[ShardIdx].Map->sampleEntries();
}

TmStats KvStore::aggregateStats() const {
  TmStats Total;
  for (const Shard &S : Shards) {
    TmStats Part = S.M->stats();
    Total.Commits += Part.Commits;
    for (unsigned C = 0; C < kNumAbortCauses; ++C)
      Total.Aborts[C] += Part.Aborts[C];
  }
  return Total;
}

void KvStore::resetStats() {
  for (Shard &S : Shards)
    S.M->resetStats();
}
