//===-- kv/KvApi.cpp - Unified KV request/response vocabulary -------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "kv/KvApi.h"

using namespace ptm;
using namespace ptm::kv;

const char *ptm::kv::kvStatusName(KvStatus Status) {
  switch (Status) {
  case KvStatus::Ok:
    return "ok";
  case KvStatus::NotFound:
    return "not_found";
  case KvStatus::CapacityExhausted:
    return "capacity_exhausted";
  case KvStatus::CasMismatch:
    return "cas_mismatch";
  case KvStatus::BadRequest:
    return "bad_request";
  case KvStatus::IoError:
    return "io_error";
  }
  return "unknown";
}

const char *ptm::kv::kvOpName(KvOp Op) {
  switch (Op) {
  case KvOp::Get:
    return "get";
  case KvOp::Put:
    return "put";
  case KvOp::Erase:
    return "erase";
  case KvOp::Cas:
    return "cas";
  case KvOp::MultiPut:
    return "multi_put";
  case KvOp::SnapshotGet:
    return "snapshot_get";
  case KvOp::Ping:
    return "ping";
  }
  return "unknown";
}
