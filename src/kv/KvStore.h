//===-- kv/KvStore.h - Sharded transactional key-value store ----*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service layer: a key-value store hash-partitioned across N shards,
/// each shard owning its own Tm instance (any TmKind) plus a TxMap region
/// over it. This is where the paper's per-TM complexity results become
/// per-shard service latencies: a single-key operation is a one-shard
/// transaction whose cost is exactly the underlying TM's, and sharding
/// multiplies the paper's single-instance concurrency bounds by keeping
/// unrelated keys on unrelated TM instances (Kuznetsov & Ravi's "cost of
/// concurrency" is paid per shard, not per store).
///
/// Multi-key operations (multiPut, snapshotGet, readModifyWrite) span
/// shards. There is no global version clock across shards, so cross-shard
/// atomicity is provided by a per-shard latch (std::shared_mutex)
/// acquired in canonical (ascending shard index) order — the classic
/// deadlock-freedom argument — plus a per-shard batch epoch (a seqlock
/// word) that lets snapshot readers validate instead of latch. The
/// protocol (full compatibility matrix in DESIGN.md):
///
///   * single-key get            — no latch; one opaque shard transaction.
///   * single-key put/erase/cas  — shared latch on the one shard; the
///                                 *unique* side instead while a WAL is
///                                 attached (see below).
///   * multiPut / readModifyWrite— unique latches on the involved shards,
///                                 ascending order, held across all the
///                                 per-shard commits; the write phase
///                                 marks every involved shard's batch
///                                 epoch odd before the first commit and
///                                 even again after the last.
///   * snapshotGet               — pure read. One involved shard: a
///                                 single read-only shard transaction, no
///                                 latch (TM opacity is enough). Several
///                                 shards on a TM with an abort-free
///                                 read-only path (Tm::hasAbortFreeReadOnly,
///                                 the mv kind): **no latches at all** —
///                                 read the involved epochs, run one
///                                 read-only transaction per shard, and
///                                 retry if any epoch was odd or moved.
///                                 Otherwise: *shared* latches on the
///                                 involved shards, which excludes batch
///                                 writers but no longer excludes other
///                                 readers or single-key updates.
///
/// What this preserves and what it does not (see DESIGN.md): every
/// operation is linearizable per key, every shard is opaque, and the
/// latched multi-key updates are strictly serializable among themselves
/// *and* with single-key updates. snapshotGet is per-shard consistent and
/// atomic with respect to multiPut/readModifyWrite (all of a batch or
/// none of it), but concurrent snapshot readers no longer serialize
/// against each other — the price is that a snapshot spanning shards may
/// interleave with *single-key* updates on different shards (it is not a
/// single cross-store linearization point; it never was one for unlatched
/// gets). What sharding gives up entirely is cross-shard real-time
/// ordering for unlatched single-key gets: a client issuing two separate
/// gets can observe a multiPut "in between" (new value in one shard, old
/// in another). Readers that need a batch-consistent cross-key view use
/// snapshotGet, which is the documented trade for not serializing every
/// read through a global clock.
///
/// Durability x latch matrix: attaching a Wal (attachWal) escalates
/// synchronous single-key updates from the shared to the unique side of
/// their shard latch. Without a WAL the shared side suffices because the
/// TM serializes same-key commits; with one, the (commit, log-append,
/// fsync) triple must be atomic per shard or replay order could diverge
/// from commit order. The RequestExecutor's batches keep the shared side
/// even then: static shard affinity already makes each worker the sole
/// batch writer of its shards, so its append order is its commit order,
/// and the unique side taken by multi-key operations (and now by
/// synchronous single-key updates) still excludes it. Unlatched gets and
/// the snapshotGet paths are untouched — reads are never logged. The
/// full matrix lives in DESIGN.md "Networked service".
///
//===----------------------------------------------------------------------===//

#ifndef PTM_KV_KVSTORE_H
#define PTM_KV_KVSTORE_H

#include "ds/TxMap.h"
#include "kv/KvApi.h"
#include "kv/Wal.h"
#include "runtime/BaseObject.h"
#include "stm/Tm.h"
#include "stm/VersionClock.h"

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <utility>
#include <vector>

namespace ptm {
namespace kv {

/// Geometry and algorithm choice of a KvStore. Every field is validated
/// by KvStore::create (invalid configurations yield null, never UB).
struct KvConfig {
  unsigned ShardCount = 8;          ///< Shards; nonzero power of two.
  unsigned BucketsPerShard = 64;    ///< TxMap chains per shard; nonzero.
  uint64_t CapacityPerShard = 1024; ///< Max keys per shard; nonzero.
  TmKind Kind = TmKind::TK_Tl2;     ///< TM algorithm run by every shard.
  unsigned MaxThreads = 4;          ///< Descriptor slots per shard TM.
  TmConfig Tm;                      ///< Clock + CM of every shard TM (the
                                    ///< mv shared snapshot clock is built
                                    ///< from Tm.Clock too).
};

class KvStore {
public:
  /// True iff \p ShardCount is usable: nonzero and a power of two (keys
  /// route by mask, so any other count would silently strand shards).
  /// This is the shard-sizing gate every createTm-reaching path shares.
  static bool isValidShardCount(unsigned ShardCount);

  /// t-objects each shard's TM must span for the given map geometry; 0
  /// when the geometry is invalid (zero buckets/capacity, or a region too
  /// large for ObjectId).
  static unsigned objectsPerShard(unsigned BucketsPerShard,
                                  uint64_t CapacityPerShard);

  /// Builds a store per \p Config. Returns null on any invalid field:
  /// shard count 0 or non-power-of-two, zero buckets/capacity/threads, an
  /// unknown TmKind, or a per-shard region exceeding ObjectId range.
  static std::unique_ptr<KvStore> create(const KvConfig &Config);

  unsigned shardCount() const { return static_cast<unsigned>(Shards.size()); }
  unsigned maxThreads() const { return Config_.MaxThreads; }
  const KvConfig &config() const { return Config_; }

  /// The shard \p Key routes to (hash of the key, masked).
  unsigned shardOf(uint64_t Key) const;

  //===--- single-key operations (one-shard transactions) ----------------===//
  //
  // The canonical surface speaks KvApi.h's unified vocabulary: every
  // operation returns a KvResponse whose status distinguishes what the
  // old bool/optional surface conflated (absent key vs capacity vs cas
  // mismatch), and whose Value slot carries the operation's datum. The
  // wire codec (net/Protocol.h) and the WAL speak the same types.

  /// Looks up \p Key. Ok (Value = mapping) or NotFound.
  KvResponse get(ThreadId Tid, uint64_t Key);

  /// Inserts or updates \p Key -> \p Value. Ok, or CapacityExhausted
  /// when the owning shard is full (the store is unchanged), or IoError
  /// when an attached WAL could not make the applied write durable.
  KvResponse put(ThreadId Tid, uint64_t Key, uint64_t Value);

  /// Removes \p Key. Ok (Value = the removed mapping) or NotFound, or
  /// IoError (applied but possibly not durable).
  KvResponse erase(ThreadId Tid, uint64_t Key);

  /// Atomically: if \p Key is present with value \p Expected, replace it
  /// with \p Desired. Ok iff the swap happened; CasMismatch (Value = the
  /// witnessed mapping) when present with another value; NotFound when
  /// absent; IoError (swapped but possibly not durable).
  KvResponse compareAndSwap(ThreadId Tid, uint64_t Key, uint64_t Expected,
                            uint64_t Desired);

  //===--- multi-key operations (canonical-order shard composition) ------===//

  /// Applies every (key, value) pair atomically: all of the batch or
  /// none of it, for every observer (latched or not). Duplicate keys
  /// apply in batch order (the last pair wins). CapacityExhausted iff
  /// some shard lacks capacity for the batch's fresh keys — capacity is
  /// prechecked under the latches before anything commits, so a failed
  /// multiPut writes nothing at all. IoError: applied but possibly not
  /// durable.
  KvStatus multiPut(ThreadId Tid,
                    const std::vector<std::pair<uint64_t, uint64_t>> &Pairs);

  /// Reads all \p Keys as one cross-shard snapshot: \p Out[i] is Ok with
  /// the value of Keys[i], or NotFound. The snapshot is per-shard
  /// consistent and atomic with respect to multiPut / readModifyWrite
  /// (it can never observe part of a batch); concurrent snapshotGets run
  /// in parallel, so a snapshot spanning shards may interleave with
  /// single-key updates on *different* shards (see the file comment). On
  /// a TM with an abort-free read-only path this takes no latches at
  /// all; otherwise it holds the involved shards' latches in shared
  /// mode. Always Ok (returns for symmetry/future).
  KvStatus snapshotGet(ThreadId Tid, const std::vector<uint64_t> &Keys,
                       std::vector<KvResponse> &Out);

  /// Atomic cross-key read-modify-write: reads all \p Keys, hands the
  /// values to \p Update (nullopt = absent), and applies the mutated
  /// vector back (nullopt = erase). No concurrent update can slide
  /// between the read and the write. CapacityExhausted iff a shard lacks
  /// capacity for the update's fresh keys (prechecked like multiPut, so
  /// nothing is written; the check is conservative — erases in the same
  /// update do not fund its inserts, since in-transaction application
  /// order could need the peak anyway). IoError: applied but possibly
  /// not durable.
  KvStatus readModifyWrite(
      ThreadId Tid, const std::vector<uint64_t> &Keys,
      const std::function<void(std::vector<std::optional<uint64_t>> &)>
          &Update);

  //===--- deprecated pre-KvStatus shims (one PR of grace) ----------------===//
  //
  // The bool/out-param surface PR 10 replaced. Thin forwards onto the
  // canonical methods above, kept one PR so out-of-tree callers migrate
  // incrementally; the signatures that would collide with the canonical
  // ones (put, erase, multiPut, readModifyWrite) are already gone.

  /// \deprecated Use get(Tid, Key), which distinguishes statuses.
  [[deprecated("use get(Tid, Key) returning KvResponse")]] bool
  get(ThreadId Tid, uint64_t Key, uint64_t &Value) {
    KvResponse R = get(Tid, Key);
    if (R.ok())
      Value = R.Value;
    return R.ok();
  }

  /// \deprecated Use the witness-in-response compareAndSwap overload.
  [[deprecated("use compareAndSwap(Tid, Key, Expected, Desired)")]] bool
  compareAndSwap(ThreadId Tid, uint64_t Key, uint64_t Expected,
                 uint64_t Desired, std::optional<uint64_t> *Witness) {
    KvResponse R = compareAndSwap(Tid, Key, Expected, Desired);
    if (Witness) {
      if (R.Status == KvStatus::CasMismatch)
        *Witness = R.Value;
      else if (R.Status == KvStatus::NotFound)
        Witness->reset();
      else
        *Witness = Expected; // Swapped: the witnessed value matched.
    }
    return R.ok();
  }

  /// \deprecated Use the KvResponse-vector snapshotGet.
  [[deprecated("use snapshotGet with std::vector<KvResponse>")]] bool
  snapshotGet(ThreadId Tid, const std::vector<uint64_t> &Keys,
              std::vector<std::optional<uint64_t>> &Out) {
    std::vector<KvResponse> Responses;
    snapshotGet(Tid, Keys, Responses);
    Out.assign(Keys.size(), std::nullopt);
    for (size_t I = 0; I < Responses.size(); ++I)
      if (Responses[I].ok())
        Out[I] = Responses[I].Value;
    return true;
  }

  //===--- durability (kv/Wal.h) ------------------------------------------===//

  /// Attaches \p W as the store's write-ahead log (nullptr detaches):
  /// every subsequent acknowledged update is appended and group-committed
  /// before its call returns, and synchronous single-key updates escalate
  /// to the unique latch side (see the file comment). Quiescent only.
  /// Non-owning: \p W must outlive the attachment.
  void attachWal(Wal *W) { Wal_ = W; }

  Wal *wal() const { return Wal_; }

  /// Applies recovered WAL records (already LSN-sorted, from
  /// Wal::recover) to this store, single-threaded under ThreadId 0. Call
  /// on a freshly created store before attaching the reopened Wal — the
  /// records replay without being re-logged. Ok, or CapacityExhausted if
  /// the records do not fit this store's geometry (smaller than the one
  /// that wrote them).
  KvStatus replayWal(const std::vector<WalRecord> &Records);

  //===--- quiescent introspection (setup/teardown/verification) ---------===//

  /// Total entries across all shards. Quiescent only.
  uint64_t sampleSize() const;

  /// Entries of one shard, in bucket-then-chain order. Quiescent only.
  std::vector<std::pair<uint64_t, uint64_t>>
  sampleShard(unsigned ShardIdx) const;

  /// Commit/abort counters summed over all shard TMs. Quiescent only.
  TmStats aggregateStats() const;

  /// Live view of the same sum, safe while transactions run on any shard
  /// (sums each shard TM's statsSnapshot(); same epoch-snapshot semantics
  /// as Tm::statsSnapshot()). This is what service reporters poll.
  TmStats statsSnapshot() const;

  /// Zeroes every shard TM's counters. Quiescent only.
  void resetStats();

  /// Shard \p ShardIdx's TM (tests and benchmarks peek at per-shard
  /// stats).
  Tm &shardTm(unsigned ShardIdx) { return *Shards[ShardIdx].M; }

private:
  friend class RequestExecutor; // executeBatch drives shards directly.
  friend struct KvTestPeer;     // Tests probe latch compatibility directly.

  struct Shard {
    std::unique_ptr<Tm> M;
    std::unique_ptr<ds::TxMap> Map;
    /// The canonical-order latch; see the file comment for the protocol.
    /// unique_ptr because shared_mutex is immovable and shards live in a
    /// vector.
    std::unique_ptr<std::shared_mutex> Latch;
    /// Batch-epoch seqlock word: odd while a multi-key update's write
    /// phase is in flight on this shard, bumped to a fresh even value
    /// when it completes. Only ever modified under the shard's unique
    /// latch (so writers never race on it); monotonic, so a snapshot
    /// reader that sees the same even value before and after its reads
    /// overlapped no batch. unique_ptr for the same movability reason as
    /// the latch.
    std::unique_ptr<std::atomic<uint64_t>> BatchEpoch;
  };

  /// One key's prior state, recorded for capacity-failure rollback.
  struct UndoEntry {
    uint64_t Key;
    std::optional<uint64_t> Prior; ///< nullopt = was absent.
  };

  explicit KvStore(const KvConfig &Config) : Config_(Config) {}

  /// True iff the shards are MvTm instances sharing MvClock (set up by
  /// create() for TK_Mv) — the precondition of the global-snapshot read
  /// path in snapshotGet.
  bool hasSharedSnapshotClock() const { return MvClock != nullptr; }

  Shard &shardFor(uint64_t Key) { return Shards[shardOf(Key)]; }

  /// The ascending list of shards touched by \p Keys (deduplicated).
  std::vector<unsigned> involvedShards(const std::vector<uint64_t> &Keys) const;

  /// Marks every involved shard's batch epoch odd / even again. Call
  /// only with the involved shards' unique latches held: begin before
  /// the first write-phase commit, end after the last commit (or after
  /// rollback), so the odd window covers the entire batch application.
  void markBatchBegin(const std::vector<unsigned> &Involved);
  void markBatchEnd(const std::vector<unsigned> &Involved);

  /// True iff shard \p ShardIdx can absorb \p Writes: counts the
  /// distinct not-yet-present insert keys against the shard's free
  /// capacity. Erase entries are deliberately not credited (the
  /// in-transaction application order could need the peak). Requires the
  /// shard's latch held exclusively — the state is then write-frozen, so
  /// the sampled live count is exact and the answer stays valid until
  /// the latch drops.
  bool shardHasRoom(
      ThreadId Tid, unsigned ShardIdx,
      const std::vector<std::pair<uint64_t, std::optional<uint64_t>>>
          &Writes);

  /// Applies \p Writes (nullopt value = erase) to shard \p ShardIdx in
  /// one transaction, recording prior states into \p Undo. False on
  /// capacity exhaustion (the shard is then unchanged).
  bool applyToShard(
      ThreadId Tid, unsigned ShardIdx,
      const std::vector<std::pair<uint64_t, std::optional<uint64_t>>>
          &Writes,
      std::vector<UndoEntry> &Undo);

  /// Reverses \p Undo against shard \p ShardIdx (restore prior values,
  /// erase fresh inserts). Cannot fail: restores only ever refill nodes
  /// the forward pass touched.
  void rollbackShard(ThreadId Tid, unsigned ShardIdx,
                     const std::vector<UndoEntry> &Undo);

  KvConfig Config_;
  unsigned ShardMask = 0;
  /// Attached write-ahead log; null = no durability (see attachWal).
  Wal *Wal_ = nullptr;
  /// For TK_Mv stores: the version clock shared by every shard's MvTm,
  /// so one timestamp names a consistent cut across all shards (the
  /// global-snapshot read path). Built from Config_.Tm.Clock, so the
  /// store's clock dimension covers the cross-shard path too. Null for
  /// every other TmKind. Declared before Shards so it outlives the TMs
  /// that reference it.
  std::unique_ptr<VersionClock> MvClock;
  std::vector<Shard> Shards;
};

} // namespace kv
} // namespace ptm

#endif // PTM_KV_KVSTORE_H
