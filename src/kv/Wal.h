//===-- kv/Wal.h - Per-shard write-ahead log with group commit --*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Durability for the sharded KV store: one append-only log file per
/// shard (`shard-<i>.wal`), each record one committed *shard batch* —
/// the group-commit unit. A record carries every mutation the batch
/// applied (put = key+value, erase = key) plus a store-wide logical
/// sequence number (LSN), and is CRC-framed so recovery can tell a
/// durable record from a torn tail.
///
/// Why this is correct (the ordering argument, shared with KvStore's
/// latch matrix in DESIGN.md "Networked service"):
///
///  * Every append to shard i's file happens while shard i's latch
///    serializes writers of that shard — the RequestExecutor is the only
///    batch writer of its shards (static affinity) and holds the shared
///    side, synchronous single-key updates escalate to the unique side
///    whenever a WAL is attached, and multi-key operations already hold
///    the unique side of every involved shard (their one record goes to
///    the *lowest* involved shard's file, so the latch covers it).
///    Append order per file therefore equals commit order per shard.
///  * The LSN is stamped inside that same latched region, so sorting
///    records by LSN across files reconstructs a serialization that
///    agrees with per-shard commit order — the only order that matters,
///    since any two writes to one key share a shard.
///  * The fsync (group commit: ONE per shard batch, however many
///    requests the batch carried) also completes inside the latched
///    region, before the operation is acknowledged. A torn record
///    therefore implies the crash hit mid-append — before the ack, and
///    before any later operation could touch the involved shards (they
///    were still latched) — so dropping the torn tail can never drop a
///    write that anything afterwards depended on, and a cross-shard
///    batch (a single record) is recovered all-or-nothing. The KvTest
///    never-torn cross-shard differential is exactly the oracle WalTest
///    replays against recovery.
///
/// Replay validates each file independently (magic/version header, then
/// records until the first length/CRC failure — the torn tail), merges
/// the surviving records by LSN, and hands them to the caller;
/// KvStore::replayWal applies them. open() then truncates each file to
/// its valid prefix and continues appending after the highest LSN seen.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_KV_WAL_H
#define PTM_KV_WAL_H

#include "kv/KvApi.h"
#include "obs/Metrics.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ptm {
namespace kv {

/// One mutation inside a WAL record: a put (HasValue) or an erase.
struct WalWrite {
  uint64_t Key = 0;
  bool HasValue = false; ///< false = erase.
  uint64_t Value = 0;

  friend bool operator==(const WalWrite &A, const WalWrite &B) {
    return A.Key == B.Key && A.HasValue == B.HasValue && A.Value == B.Value;
  }
};

/// One recovered record: a committed shard batch in LSN order.
struct WalRecord {
  uint64_t Lsn = 0;
  unsigned ShardIdx = 0; ///< File it was recovered from (diagnostics;
                         ///< replay routes each key by hash, not by this).
  std::vector<WalWrite> Writes;
};

/// Outcome of scanning a WAL directory.
struct WalRecovery {
  bool Ok = false;              ///< False on unreadable files/headers.
  std::vector<WalRecord> Records; ///< Valid records, sorted by LSN.
  uint64_t MaxLsn = 0;          ///< Highest LSN seen (0 when empty).
  uint64_t TornBytes = 0;       ///< Bytes discarded across all torn tails.
  std::vector<uint64_t> ValidBytes; ///< Per-file valid prefix length.
};

class Wal {
public:
  struct Options {
    /// fdatasync each record before the append returns (the durability
    /// contract). Off only for tests/benchmarks that measure the append
    /// path without paying the disk.
    bool Sync = true;
  };

  /// Scans `Dir/shard-<i>.wal` for i in [0, ShardCount). Missing files
  /// count as empty (a fresh directory recovers to an empty store);
  /// present files must carry a valid header. Records after a torn or
  /// corrupt record in a file are discarded (append-only discipline
  /// means only genuine tail damage loses acknowledged data — see the
  /// file comment).
  static WalRecovery recover(const std::string &Dir, unsigned ShardCount);

  /// Opens the per-shard files for appending, creating missing ones and
  /// truncating each existing one to the valid prefix \p Recovered
  /// reports (dropping torn tails for good). Null on I/O failure.
  /// \p Recovered must come from recover() on the same directory.
  static std::unique_ptr<Wal> open(const std::string &Dir,
                                   unsigned ShardCount,
                                   const WalRecovery &Recovered,
                                   const Options &Opts);
  static std::unique_ptr<Wal> open(const std::string &Dir,
                                   unsigned ShardCount,
                                   const WalRecovery &Recovered) {
    return open(Dir, ShardCount, Recovered, Options());
  }

  ~Wal();

  Wal(const Wal &) = delete;
  Wal &operator=(const Wal &) = delete;

  /// Appends one committed shard batch to shard \p ShardIdx's file and
  /// (per Options.Sync) fdatasyncs it — the group commit. Must be called
  /// under the shard-latch discipline in the file comment; the per-file
  /// mutex below only keeps bytes from interleaving, it does NOT make
  /// call order meaningful on its own. Empty batches are not appended.
  /// Returns the status the caller should surface: Ok, or IoError when
  /// the record may not have reached the disk.
  KvStatus appendBatch(unsigned ShardIdx, const std::vector<WalWrite> &Writes);

  /// Live durability telemetry (same contract as the executor's):
  /// `wal.appends` / `wal.bytes` count records and frame bytes written,
  /// `wal.io_errors` the appends that returned IoError, and
  /// `wal.append_ns` histograms the whole append — encode, write, and
  /// the group-commit fdatasync, so its tail IS the durability tail.
  /// Safe to call while appends run (single-writer cells per shard).
  obs::MetricsSnapshot telemetry() const { return Registry.snapshot(); }

  /// Next LSN to be stamped (tests; monotone while appends run).
  uint64_t nextLsn() const { return NextLsn.load(std::memory_order_relaxed); }

  unsigned shardCount() const { return static_cast<unsigned>(Files.size()); }

  /// The file backing shard \p ShardIdx (tests torture these directly).
  static std::string shardFilePath(const std::string &Dir, unsigned ShardIdx);

private:
  Wal() = default;

  struct ShardFile {
    std::FILE *F = nullptr;
    int Fd = -1; ///< For fdatasync; owned by F.
    std::mutex Mu; ///< Byte-interleaving guard only (see appendBatch).
  };

  Options Opts;
  std::atomic<uint64_t> NextLsn{1};
  std::vector<std::unique_ptr<ShardFile>> Files;

  /// Telemetry cells (see telemetry()). Each shard writes its own
  /// counter cell under its file mutex, so the cells stay single-writer.
  obs::MetricsRegistry Registry;
  obs::ShardedCounter *Appends = nullptr;
  obs::ShardedCounter *Bytes = nullptr;
  obs::ShardedCounter *IoErrors = nullptr;
  obs::LatencyHistogram *AppendNs = nullptr;
};

} // namespace kv
} // namespace ptm

#endif // PTM_KV_WAL_H
