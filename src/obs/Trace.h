//===-- obs/Trace.h - Per-thread transaction event tracing ------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transaction event tracer: per-thread fixed-capacity ring buffers
/// of timestamped TM lifecycle events, armed through the existing
/// Instrumentation seam (runtime/Instrumentation.h) — exactly the hook
/// PR 7's ExploringInterleaver uses, so the TMs themselves need no
/// tracer-specific plumbing beyond the one-line TmBase::traceEvent calls.
///
/// Arming: a thread installs an Instrumentation whose trace() points at
/// its ring (Tracer::ring(Tid)); from then on every traced TM call
/// appends one event. Disarmed (no Instrumentation, or a null ring) the
/// cost is one thread-local load and a branch — that is the "always-on
/// telemetry, near-zero when disarmed" contract the kv_throughput
/// overhead gate enforces.
///
/// Reading: rings are single-writer; exporters read them only after the
/// writing threads have quiesced (joined or drained). A full ring
/// overwrites its oldest events and counts them in dropped() — the
/// Chrome exporter re-balances begin/end pairs across such gaps.
///
/// Exports (both operate on a quiesced TraceDump):
///  * writeChromeTraceJson — the `ptm-trace-v1` schema: a Chrome
///    trace_event JSON document that loads directly in Perfetto /
///    chrome://tracing and is gated by tools/check_trace_json.py;
///  * serializeBinary / deserializeBinary — a compact length-prefixed
///    dump for archival, round-trippable back into a TraceDump.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_OBS_TRACE_H
#define PTM_OBS_TRACE_H

#include "runtime/Ids.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace ptm {

class RawOStream;

namespace obs {

/// The traced TM lifecycle events. Appending here requires extending
/// traceEventName(), the Chrome exporter's dispatch, and the pinned
/// name list in tools/check_trace_json.py.
enum class TraceEventKind : uint8_t {
  TE_TxBegin,     ///< txBegin                 (arg: 0).
  TE_TxBeginRo,   ///< txBeginReadOnly         (arg: 0).
  TE_Read,        ///< txRead                  (arg: object id).
  TE_Write,       ///< txWrite                 (arg: object id).
  TE_TryCommit,   ///< txCommit entered        (arg: 0).
  TE_Commit,      ///< txCommit succeeded      (arg: 0).
  TE_Abort,       ///< transaction aborted     (arg: AbortCause).
  TE_Extend,      ///< snapshot extension, orec-ts (arg: new snapshot ts).
  TE_SnapshotPin, ///< read-only snapshot pinned, mv (arg: pinned ts).
  TE_KindCount_,  ///< Sentinel, not an event.
};

/// Number of distinct TraceEventKind values.
inline constexpr unsigned kNumTraceEventKinds = 9;
static_assert(kNumTraceEventKinds ==
                  static_cast<unsigned>(TraceEventKind::TE_KindCount_),
              "kNumTraceEventKinds must track the enumerator count");

/// Short stable name (the Chrome event name; pinned by the JSON gate).
const char *traceEventName(TraceEventKind Kind);

/// One traced event. TimeNs is steady-clock nanoseconds — monotonic per
/// thread by construction, which the JSON gate checks per exported tid.
struct TraceEvent {
  uint64_t TimeNs = 0;
  uint64_t Arg = 0;
  TraceEventKind Kind = TraceEventKind::TE_TxBegin;
};

/// Single-writer fixed-capacity event ring. The owning thread appends;
/// once it quiesces, any thread may read. Capacity is rounded up to a
/// power of two. When full, append overwrites the oldest event (dropped()
/// counts the overwritten ones) — tracing never blocks or allocates.
class TraceRing {
public:
  explicit TraceRing(size_t Capacity);

  /// Appends one event stamped with the current steady-clock time.
  void append(TraceEventKind Kind, uint64_t Arg);

  /// Events currently held (<= capacity).
  size_t size() const { return Head < Cap ? Head : Cap; }
  /// Events overwritten after the ring filled.
  uint64_t dropped() const { return Head < Cap ? 0 : Head - Cap; }
  size_t capacity() const { return Cap; }

  /// The \p I-th held event, oldest first (\p I < size()). Quiesced-only.
  const TraceEvent &at(size_t I) const {
    size_t Base = Head < Cap ? 0 : Head;
    return Events[(Base + I) & (Cap - 1)];
  }

  /// Forgets everything (owner-quiesced only).
  void clear() { Head = 0; }

private:
  std::unique_ptr<TraceEvent[]> Events;
  size_t Cap;      ///< Power of two.
  uint64_t Head = 0; ///< Total appends; next write slot = Head & (Cap-1).
};

/// The per-run collector: one ring per ThreadId. Threads arm themselves
/// by pointing their Instrumentation at ring(Tid); the owner dumps or
/// exports after everyone quiesced.
class Tracer {
public:
  explicit Tracer(unsigned MaxThreads, size_t CapacityPerThread = 1 << 14);

  unsigned threads() const { return static_cast<unsigned>(Rings.size()); }
  TraceRing &ring(ThreadId Tid) { return *Rings[Tid]; }
  const TraceRing &ring(ThreadId Tid) const { return *Rings[Tid]; }

private:
  std::vector<std::unique_ptr<TraceRing>> Rings;
};

/// A quiesced, plain-data copy of a trace — the unit both exporters
/// consume and the binary round-trip reproduces.
struct TraceDump {
  struct ThreadTrace {
    ThreadId Tid = 0;
    uint64_t Dropped = 0;
    std::vector<TraceEvent> Events; ///< Oldest first.
  };
  std::vector<ThreadTrace> Threads; ///< One entry per traced thread,
                                    ///< ascending Tid; empty threads are
                                    ///< omitted.

  /// Total events across all threads.
  uint64_t eventCount() const;
};

/// Snapshots \p T into a TraceDump. All writing threads must have
/// quiesced (the single-writer ring contract).
TraceDump dumpTrace(const Tracer &T);

/// Writes \p Dump as a `ptm-trace-v1` Chrome trace_event JSON document
/// (loads in Perfetto / chrome://tracing; schema checked by
/// tools/check_trace_json.py). Transactions and commit phases become
/// balanced B/E duration pairs; reads/writes/extensions/pins become
/// instant events. Timestamps are normalized to start at 0 and emitted
/// in microseconds with nanosecond precision.
void writeChromeTraceJson(RawOStream &OS, const TraceDump &Dump);

/// Compact binary form of \p Dump ("PTMTRC1\0" header; little-endian
/// fixed-width fields).
std::vector<uint8_t> serializeTraceBinary(const TraceDump &Dump);

/// Inverse of serializeTraceBinary. Returns false (leaving \p Out
/// unspecified) on a malformed buffer.
bool deserializeTraceBinary(const uint8_t *Data, size_t Size,
                            TraceDump &Out);

} // namespace obs
} // namespace ptm

#endif // PTM_OBS_TRACE_H
