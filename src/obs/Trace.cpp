//===-- obs/Trace.cpp - Per-thread transaction event tracing --------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "bench/Json.h"
#include "obs/Metrics.h"
#include "stm/Tm.h"
#include "support/RawOStream.h"

#include <bit>
#include <cstring>

using namespace ptm;
using namespace ptm::obs;

const char *ptm::obs::traceEventName(TraceEventKind Kind) {
  switch (Kind) {
  case TraceEventKind::TE_TxBegin:
    return "txn";
  case TraceEventKind::TE_TxBeginRo:
    return "txn-ro";
  case TraceEventKind::TE_Read:
    return "read";
  case TraceEventKind::TE_Write:
    return "write";
  case TraceEventKind::TE_TryCommit:
    return "tryCommit";
  case TraceEventKind::TE_Commit:
    return "commit";
  case TraceEventKind::TE_Abort:
    return "abort";
  case TraceEventKind::TE_Extend:
    return "extend";
  case TraceEventKind::TE_SnapshotPin:
    return "snapshot-pin";
  case TraceEventKind::TE_KindCount_:
    break;
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// TraceRing / Tracer
//===----------------------------------------------------------------------===//

TraceRing::TraceRing(size_t Capacity)
    : Events(new TraceEvent[std::bit_ceil(Capacity < 2 ? size_t{2}
                                                       : Capacity)]),
      Cap(std::bit_ceil(Capacity < 2 ? size_t{2} : Capacity)) {}

void TraceRing::append(TraceEventKind Kind, uint64_t Arg) {
  TraceEvent &E = Events[Head & (Cap - 1)];
  E.TimeNs = monotonicNowNs();
  E.Arg = Arg;
  E.Kind = Kind;
  ++Head;
}

Tracer::Tracer(unsigned MaxThreads, size_t CapacityPerThread) {
  Rings.reserve(MaxThreads);
  for (unsigned I = 0; I < MaxThreads; ++I)
    Rings.push_back(std::make_unique<TraceRing>(CapacityPerThread));
}

uint64_t TraceDump::eventCount() const {
  uint64_t N = 0;
  for (const ThreadTrace &T : Threads)
    N += T.Events.size();
  return N;
}

TraceDump ptm::obs::dumpTrace(const Tracer &T) {
  TraceDump Dump;
  for (unsigned Tid = 0; Tid < T.threads(); ++Tid) {
    const TraceRing &R = T.ring(Tid);
    if (R.size() == 0 && R.dropped() == 0)
      continue;
    TraceDump::ThreadTrace TT;
    TT.Tid = Tid;
    TT.Dropped = R.dropped();
    TT.Events.reserve(R.size());
    for (size_t I = 0; I < R.size(); ++I)
      TT.Events.push_back(R.at(I));
    Dump.Threads.push_back(std::move(TT));
  }
  return Dump;
}

//===----------------------------------------------------------------------===//
// Chrome trace_event export (ptm-trace-v1)
//===----------------------------------------------------------------------===//

namespace {

/// Microsecond timestamp (Chrome's unit) normalized to the trace start.
double toTs(uint64_t TimeNs, uint64_t BaseNs) {
  return static_cast<double>(TimeNs - BaseNs) / 1000.0;
}

/// Emits the fixed fields every event carries.
void eventHead(bench::JsonWriter &W, const char *Name, const char *Phase,
               double Ts, ThreadId Tid) {
  W.newline();
  W.beginObject();
  W.key("name").value(Name);
  W.key("cat").value("tm");
  W.key("ph").value(Phase);
  W.key("ts").value(Ts);
  W.key("pid").value(0u);
  W.key("tid").value(static_cast<uint64_t>(Tid));
}

} // namespace

void ptm::obs::writeChromeTraceJson(RawOStream &OS, const TraceDump &Dump) {
  bench::JsonWriter W(OS);
  W.beginObject();
  W.key("otherData").beginObject();
  W.key("schema").value("ptm-trace-v1");
  W.key("time_unit").value("us");
  uint64_t Dropped = 0;
  for (const TraceDump::ThreadTrace &T : Dump.Threads)
    Dropped += T.Dropped;
  W.key("dropped_events").value(Dropped);
  W.endObject();
  W.key("displayTimeUnit").value("ms");
  W.key("traceEvents").beginArray();

  uint64_t BaseNs = UINT64_MAX;
  for (const TraceDump::ThreadTrace &T : Dump.Threads)
    if (!T.Events.empty())
      BaseNs = std::min(BaseNs, T.Events.front().TimeNs);
  if (BaseNs == UINT64_MAX)
    BaseNs = 0;

  for (const TraceDump::ThreadTrace &T : Dump.Threads) {
    // Per-thread span state: a ring that overwrote its oldest events may
    // hold an end without its begin; ends without an open span are
    // skipped and spans still open after the last event are closed at it,
    // so the exported B/E pairs always balance (the JSON gate checks).
    const char *TxnOpen = nullptr;
    bool CommitOpen = false;
    double LastTs = 0.0;
    for (const TraceEvent &E : T.Events) {
      double Ts = toTs(E.TimeNs, BaseNs);
      LastTs = Ts;
      switch (E.Kind) {
      case TraceEventKind::TE_TxBegin:
      case TraceEventKind::TE_TxBeginRo: {
        if (CommitOpen) { // Dropped outcome event; close defensively.
          eventHead(W, "tryCommit", "E", Ts, T.Tid);
          W.endObject();
          CommitOpen = false;
        }
        if (TxnOpen) {
          eventHead(W, TxnOpen, "E", Ts, T.Tid);
          W.endObject();
        }
        TxnOpen = traceEventName(E.Kind);
        eventHead(W, TxnOpen, "B", Ts, T.Tid);
        W.endObject();
        break;
      }
      case TraceEventKind::TE_Read:
      case TraceEventKind::TE_Write: {
        eventHead(W, traceEventName(E.Kind), "i", Ts, T.Tid);
        W.key("s").value("t");
        W.key("args").beginObject();
        W.key("obj").value(E.Arg);
        W.endObject();
        W.endObject();
        break;
      }
      case TraceEventKind::TE_TryCommit: {
        eventHead(W, "tryCommit", "B", Ts, T.Tid);
        W.endObject();
        CommitOpen = true;
        break;
      }
      case TraceEventKind::TE_Commit:
      case TraceEventKind::TE_Abort: {
        if (CommitOpen) {
          eventHead(W, "tryCommit", "E", Ts, T.Tid);
          W.endObject();
          CommitOpen = false;
        }
        if (TxnOpen) {
          eventHead(W, TxnOpen, "E", Ts, T.Tid);
          W.key("args").beginObject();
          if (E.Kind == TraceEventKind::TE_Commit) {
            W.key("outcome").value("commit");
          } else {
            W.key("outcome").value("abort");
            W.key("cause").value(abortCauseName(
                E.Arg < kNumAbortCauses ? static_cast<AbortCause>(E.Arg)
                                        : AbortCause::AC_None));
          }
          W.endObject();
          W.endObject();
          TxnOpen = nullptr;
        }
        break;
      }
      case TraceEventKind::TE_Extend:
      case TraceEventKind::TE_SnapshotPin: {
        eventHead(W, traceEventName(E.Kind), "i", Ts, T.Tid);
        W.key("s").value("t");
        W.key("args").beginObject();
        W.key("ts_value").value(E.Arg);
        W.endObject();
        W.endObject();
        break;
      }
      case TraceEventKind::TE_KindCount_:
        break;
      }
    }
    if (CommitOpen) {
      eventHead(W, "tryCommit", "E", LastTs, T.Tid);
      W.endObject();
    }
    if (TxnOpen) {
      eventHead(W, TxnOpen, "E", LastTs, T.Tid);
      W.endObject();
    }
  }
  W.endArray();
  W.endObject();
  W.newline();
}

//===----------------------------------------------------------------------===//
// Binary dump
//===----------------------------------------------------------------------===//

namespace {

constexpr char kMagic[8] = {'P', 'T', 'M', 'T', 'R', 'C', '1', '\0'};

template <typename T> void putLe(std::vector<uint8_t> &Out, T Value) {
  for (unsigned I = 0; I < sizeof(T); ++I)
    Out.push_back(static_cast<uint8_t>(Value >> (8 * I)));
}

template <typename T>
bool getLe(const uint8_t *Data, size_t Size, size_t &Pos, T &Value) {
  if (Pos + sizeof(T) > Size)
    return false;
  Value = 0;
  for (unsigned I = 0; I < sizeof(T); ++I)
    Value |= static_cast<T>(Data[Pos + I]) << (8 * I);
  Pos += sizeof(T);
  return true;
}

} // namespace

std::vector<uint8_t> ptm::obs::serializeTraceBinary(const TraceDump &Dump) {
  std::vector<uint8_t> Out;
  Out.reserve(16 + Dump.Threads.size() * 20 + Dump.eventCount() * 17);
  for (char C : kMagic)
    Out.push_back(static_cast<uint8_t>(C));
  putLe<uint32_t>(Out, 1); // Format version.
  putLe<uint32_t>(Out, static_cast<uint32_t>(Dump.Threads.size()));
  for (const TraceDump::ThreadTrace &T : Dump.Threads) {
    putLe<uint32_t>(Out, T.Tid);
    putLe<uint64_t>(Out, T.Dropped);
    putLe<uint64_t>(Out, T.Events.size());
    for (const TraceEvent &E : T.Events) {
      putLe<uint64_t>(Out, E.TimeNs);
      putLe<uint64_t>(Out, E.Arg);
      putLe<uint8_t>(Out, static_cast<uint8_t>(E.Kind));
    }
  }
  return Out;
}

bool ptm::obs::deserializeTraceBinary(const uint8_t *Data, size_t Size,
                                      TraceDump &Out) {
  size_t Pos = 0;
  if (Size < sizeof(kMagic) ||
      std::memcmp(Data, kMagic, sizeof(kMagic)) != 0)
    return false;
  Pos = sizeof(kMagic);
  uint32_t Version = 0, ThreadCount = 0;
  if (!getLe(Data, Size, Pos, Version) || Version != 1 ||
      !getLe(Data, Size, Pos, ThreadCount))
    return false;
  Out.Threads.clear();
  for (uint32_t T = 0; T < ThreadCount; ++T) {
    TraceDump::ThreadTrace TT;
    uint32_t Tid = 0;
    uint64_t EventCount = 0;
    if (!getLe(Data, Size, Pos, Tid) ||
        !getLe(Data, Size, Pos, TT.Dropped) ||
        !getLe(Data, Size, Pos, EventCount))
      return false;
    TT.Tid = Tid;
    // 17 bytes per serialized event bounds EventCount against the buffer
    // before the reserve, so a corrupt count cannot OOM.
    if (EventCount > (Size - Pos) / 17)
      return false;
    TT.Events.reserve(EventCount);
    for (uint64_t E = 0; E < EventCount; ++E) {
      TraceEvent Ev;
      uint8_t Kind = 0;
      if (!getLe(Data, Size, Pos, Ev.TimeNs) ||
          !getLe(Data, Size, Pos, Ev.Arg) || !getLe(Data, Size, Pos, Kind) ||
          Kind >= kNumTraceEventKinds)
        return false;
      Ev.Kind = static_cast<TraceEventKind>(Kind);
      TT.Events.push_back(Ev);
    }
    Out.Threads.push_back(std::move(TT));
  }
  return Pos == Size;
}
