//===-- obs/Obs.h - Observability umbrella header ---------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience umbrella for the observability subsystem: the lock-free
/// metrics registry (obs/Metrics.h) and the per-thread transaction event
/// tracer (obs/Trace.h). See DESIGN.md "Observability" for the overhead
/// contract and the epoch-snapshot consistency model.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_OBS_OBS_H
#define PTM_OBS_OBS_H

#include "obs/Metrics.h"
#include "obs/Trace.h"

#endif // PTM_OBS_OBS_H
