//===-- obs/Metrics.cpp - Lock-free always-on metrics ---------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <cmath>

using namespace ptm;
using namespace ptm::obs;

uint64_t ptm::obs::monotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

//===----------------------------------------------------------------------===//
// LatencyHistogram
//===----------------------------------------------------------------------===//

unsigned LatencyHistogram::bucketIndex(uint64_t Value) {
  if (Value < kExactLimit)
    return static_cast<unsigned>(Value);
  // Value >= 2^kSubBits: its octave is Msb = bit_width-1 >= kSubBits; the
  // top kSubBits-1 bits below the leading one select one of kSubCount/2
  // sub-buckets inside the octave.
  unsigned Msb = 63 - static_cast<unsigned>(std::countl_zero(Value));
  unsigned Octave = Msb - (kSubBits - 1); // >= 1
  uint64_t Sub = (Value >> (Msb - (kSubBits - 1))) - (kSubCount / 2);
  return kSubCount + (Octave - 1) * (kSubCount / 2) +
         static_cast<unsigned>(Sub);
}

uint64_t LatencyHistogram::bucketUpperBound(unsigned Index) {
  if (Index < kExactLimit)
    return Index;
  unsigned Rest = Index - kSubCount;
  unsigned Octave = Rest / (kSubCount / 2) + 1;
  unsigned Sub = Rest % (kSubCount / 2);
  unsigned Shift = Octave; // == Msb - (kSubBits - 1)
  uint64_t Lower = (uint64_t{kSubCount / 2} + Sub) << Shift;
  uint64_t Width = uint64_t{1} << Shift;
  return Lower + Width - 1;
}

LatencyHistogram::LatencyHistogram()
    : Buckets(new std::atomic<uint64_t>[kBucketCount]) {
  for (unsigned I = 0; I < kBucketCount; ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
}

void LatencyHistogram::record(uint64_t Value) {
  Buckets[bucketIndex(Value)].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Value, std::memory_order_relaxed);
  uint64_t Cur = Max.load(std::memory_order_relaxed);
  while (Cur < Value &&
         !Max.compare_exchange_weak(Cur, Value, std::memory_order_relaxed))
    ;
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot S;
  S.Buckets.resize(kBucketCount);
  S.Count = 0;
  for (unsigned I = 0; I < kBucketCount; ++I) {
    S.Buckets[I] = Buckets[I].load(std::memory_order_relaxed);
    S.Count += S.Buckets[I];
  }
  // Count is recomputed from the buckets (not read from the Count cell) so
  // the snapshot is internally consistent even mid-record: percentile()
  // ranks always sum to exactly the bucket mass. Sum/Max may trail by the
  // in-flight record; at quiescence everything is exact.
  S.Sum = Sum.load(std::memory_order_relaxed);
  S.MaxValue = Max.load(std::memory_order_relaxed);
  return S;
}

void LatencyHistogram::reset() {
  for (unsigned I = 0; I < kBucketCount; ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
}

void HistogramSnapshot::merge(const HistogramSnapshot &Other) {
  if (Other.Buckets.empty())
    return;
  if (Buckets.empty())
    Buckets.resize(Other.Buckets.size(), 0);
  assert(Buckets.size() == Other.Buckets.size() &&
         "merging histograms of different geometry");
  for (size_t I = 0; I < Buckets.size(); ++I)
    Buckets[I] += Other.Buckets[I];
  Count += Other.Count;
  Sum += Other.Sum;
  MaxValue = std::max(MaxValue, Other.MaxValue);
}

uint64_t HistogramSnapshot::percentile(double Pct) const {
  if (Count == 0 || Buckets.empty())
    return 0;
  assert(Pct > 0.0 && Pct <= 100.0 && "percentile out of (0, 100]");
  uint64_t Rank = static_cast<uint64_t>(
      std::ceil(Pct / 100.0 * static_cast<double>(Count)));
  if (Rank == 0)
    Rank = 1;
  if (Rank > Count)
    Rank = Count;
  uint64_t Cum = 0;
  for (size_t I = 0; I < Buckets.size(); ++I) {
    Cum += Buckets[I];
    if (Cum >= Rank)
      return LatencyHistogram::bucketUpperBound(static_cast<unsigned>(I));
  }
  return MaxValue; // Unreachable: the buckets sum to Count.
}

//===----------------------------------------------------------------------===//
// MetricsSnapshot
//===----------------------------------------------------------------------===//

uint64_t MetricsSnapshot::counter(std::string_view Name) const {
  for (const SnapshotEntry &E : Counters)
    if (E.Name == Name)
      return static_cast<uint64_t>(E.Value);
  return 0;
}

int64_t MetricsSnapshot::gauge(std::string_view Name) const {
  for (const SnapshotEntry &E : Gauges)
    if (E.Name == Name)
      return E.Value;
  return 0;
}

const HistogramSnapshot *
MetricsSnapshot::histogram(std::string_view Name) const {
  for (const SnapshotHistogram &H : Histograms)
    if (H.Name == Name)
      return &H.Hist;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

ShardedCounter &MetricsRegistry::counter(std::string_view Name,
                                         unsigned Shards) {
  std::lock_guard<std::mutex> Lock(RegMutex);
  for (Named<ShardedCounter> &N : Counters)
    if (N.Name == Name) {
      assert(N.Value->shards() == Shards &&
             "re-registered counter with a different shard count");
      return *N.Value;
    }
  Counters.push_back({std::string(Name), std::make_unique<ShardedCounter>(Shards)});
  return *Counters.back().Value;
}

Gauge &MetricsRegistry::gauge(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(RegMutex);
  for (Named<Gauge> &N : Gauges)
    if (N.Name == Name)
      return *N.Value;
  Gauges.push_back({std::string(Name), std::make_unique<Gauge>()});
  return *Gauges.back().Value;
}

LatencyHistogram &MetricsRegistry::histogram(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(RegMutex);
  for (Named<LatencyHistogram> &N : Histograms)
    if (N.Name == Name)
      return *N.Value;
  Histograms.push_back(
      {std::string(Name), std::make_unique<LatencyHistogram>()});
  return *Histograms.back().Value;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot S;
  // The registration mutex pins the *set* of metrics for the walk; the
  // metric cells themselves are read lock-free while writers proceed.
  std::lock_guard<std::mutex> Lock(RegMutex);
  S.Epoch = Epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  for (const Named<ShardedCounter> &N : Counters)
    S.Counters.push_back({N.Name, static_cast<int64_t>(N.Value->value())});
  for (const Named<Gauge> &N : Gauges)
    S.Gauges.push_back({N.Name, N.Value->read()});
  for (const Named<LatencyHistogram> &N : Histograms)
    S.Histograms.push_back({N.Name, N.Value->snapshot()});
  auto ByName = [](const auto &A, const auto &B) { return A.Name < B.Name; };
  std::sort(S.Counters.begin(), S.Counters.end(), ByName);
  std::sort(S.Gauges.begin(), S.Gauges.end(), ByName);
  std::sort(S.Histograms.begin(), S.Histograms.end(), ByName);
  return S;
}
