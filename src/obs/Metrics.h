//===-- obs/Metrics.h - Lock-free always-on metrics -------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The always-on telemetry substrate: counters, gauges and log-bucketed
/// latency histograms that are safe to *read* while any number of threads
/// keep *writing*, without stopping either side. Everything here is
/// lock-free on the write path; the only mutex in the file guards metric
/// registration (a setup-time operation).
///
/// Overhead contract (see DESIGN.md "Observability"):
///
///  * OwnedCounter::inc is a relaxed load + relaxed store on a cell no
///    other thread writes — no RMW, no fence, no cache-line ping-pong
///    when cells are padded (ShardedCounter pads them);
///  * Gauge and LatencyHistogram use relaxed atomic RMW — reserved for
///    service-layer paths (queue sampling, per-request latency), never
///    the TM hot path;
///  * readers pay at most one relaxed load per cell.
///
/// Consistency model (the "epoch snapshot"): a snapshot reads every cell
/// exactly once with relaxed loads while writers proceed. Each *cell* is
/// therefore exact-as-of-some-instant inside the snapshot window, each
/// *metric* is monotone across snapshots (counters never run backwards),
/// and cross-metric skew is bounded by the duration of the aggregation
/// itself. At quiescence (no writer mid-update) a snapshot is exact —
/// that is the convergence law Tm::statsSnapshot() inherits and
/// StmConcurrentTest checks.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_OBS_METRICS_H
#define PTM_OBS_METRICS_H

#include "support/Compiler.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ptm {
namespace obs {

/// Steady-clock nanoseconds — the timestamp base every latency metric
/// and trace event shares (monotonic, never wall-clock).
uint64_t monotonicNowNs();

/// Single-writer counter cell: exactly one thread increments (its own
/// slot/shard); any thread may read concurrently. The increment is a
/// relaxed load + store — not an atomic RMW — which is race-free because
/// no other thread ever writes the cell, and costs the same as a plain
/// `++` on x86. reset() is quiescent-only (the owner must not be
/// mid-increment).
class OwnedCounter {
public:
  void inc(uint64_t N = 1) {
    V.store(V.load(std::memory_order_relaxed) + N, std::memory_order_relaxed);
  }
  uint64_t read() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A counter sharded over per-thread cache-line-padded cells: thread t
/// increments cell(t) contention-free; value() sums all cells (the epoch
/// snapshot read). The shard count is fixed at construction.
class ShardedCounter {
public:
  explicit ShardedCounter(unsigned Shards) : Cells(Shards) {}

  OwnedCounter &cell(unsigned Shard) { return Cells[Shard].C; }
  const OwnedCounter &cell(unsigned Shard) const { return Cells[Shard].C; }
  unsigned shards() const { return static_cast<unsigned>(Cells.size()); }

  uint64_t value() const {
    uint64_t Sum = 0;
    for (const Padded &P : Cells)
      Sum += P.C.read();
    return Sum;
  }

  /// Quiescent-only (no cell owner mid-increment).
  void reset() {
    for (Padded &P : Cells)
      P.C.reset();
  }

private:
  struct alignas(PTM_CACHELINE_SIZE) Padded {
    OwnedCounter C;
  };
  std::vector<Padded> Cells;
};

/// A point-in-time signed value (queue depth, in-flight requests). Writes
/// are relaxed atomic RMW — gauges live on sampling paths, not the TM hot
/// path.
class Gauge {
public:
  void set(int64_t Value) { V.store(Value, std::memory_order_relaxed); }
  void add(int64_t Delta) { V.fetch_add(Delta, std::memory_order_relaxed); }
  void sub(int64_t Delta) { V.fetch_sub(Delta, std::memory_order_relaxed); }
  int64_t read() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// A consistent, plain-data copy of one histogram: bucket counts plus the
/// exact running sum/max, queryable for percentiles and mergeable with
/// other snapshots (the per-thread-recorder pattern: each thread owns a
/// LatencyHistogram, snapshots are merged after the fact).
struct HistogramSnapshot {
  std::vector<uint64_t> Buckets; ///< kBucketCount counts (empty = zero).
  uint64_t Count = 0;            ///< Total recorded values.
  uint64_t Sum = 0;              ///< Exact sum (mean() is not quantized).
  uint64_t MaxValue = 0;         ///< Largest recorded value, exact.

  /// Adds \p Other into this snapshot (bucket-wise; Count/Sum add, Max
  /// takes the maximum).
  void merge(const HistogramSnapshot &Other);

  /// The \p Pct-th percentile (0 < Pct <= 100) as the upper edge of the
  /// bucket holding the value of rank ceil(Pct/100 * Count) — i.e. the
  /// smallest recordable value V such that at least that rank of samples
  /// are <= V. Exact for values < kExactLimit; quantized upward by at
  /// most 2/kSubCount (~6%) above it (each octave splits into
  /// kSubCount/2 sub-buckets). Returns 0 on an empty snapshot.
  uint64_t percentile(double Pct) const;

  /// Exact arithmetic mean (Sum/Count); 0 when empty.
  double mean() const {
    return Count == 0 ? 0.0
                      : static_cast<double>(Sum) / static_cast<double>(Count);
  }
};

/// Fixed-size log-bucketed (HDR-style) histogram of non-negative 64-bit
/// values — latencies in nanoseconds by convention. Values below
/// kExactLimit get one bucket each (exact); above, each power of two is
/// split into kSubCount/2 sub-buckets, so the relative quantization
/// error is bounded by 2/kSubCount everywhere. record() is wait-free (one
/// relaxed fetch_add per bucket plus sum/max upkeep) and safe from any
/// number of threads; snapshot() is safe concurrently with recorders and
/// yields the epoch-snapshot consistency documented above.
class LatencyHistogram {
public:
  static constexpr unsigned kSubBits = 5;            ///< log2(kSubCount).
  static constexpr unsigned kSubCount = 1u << kSubBits; ///< 32 sub-buckets.
  static constexpr uint64_t kExactLimit = kSubCount; ///< Exact below this.
  /// Buckets: kSubCount exact cells + kSubCount/2 per remaining octave.
  static constexpr unsigned kBucketCount =
      kSubCount + (64 - kSubBits) * (kSubCount / 2);

  /// Bucket index of \p Value (total order preserved).
  static unsigned bucketIndex(uint64_t Value);
  /// Largest value mapping to bucket \p Index (percentile representative).
  static uint64_t bucketUpperBound(unsigned Index);

  LatencyHistogram();

  /// Records one value. Wait-free; callable from any thread.
  void record(uint64_t Value);

  /// Consistent plain-data copy (see HistogramSnapshot).
  HistogramSnapshot snapshot() const;

  /// Total values recorded so far (relaxed).
  uint64_t count() const { return Count.load(std::memory_order_relaxed); }

  /// Zeroes everything; quiescent-only (no recorder mid-record).
  void reset();

private:
  std::unique_ptr<std::atomic<uint64_t>[]> Buckets; // kBucketCount cells.
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Max{0};
};

/// One named metric value inside a MetricsSnapshot.
struct SnapshotEntry {
  std::string Name;
  int64_t Value = 0;
};

/// One named histogram inside a MetricsSnapshot.
struct SnapshotHistogram {
  std::string Name;
  HistogramSnapshot Hist;
};

/// The epoch-stamped result of MetricsRegistry::snapshot().
struct MetricsSnapshot {
  uint64_t Epoch = 0; ///< Strictly increasing per registry.
  std::vector<SnapshotEntry> Counters;
  std::vector<SnapshotEntry> Gauges;
  std::vector<SnapshotHistogram> Histograms;

  /// Value of counter \p Name, or 0 when absent.
  uint64_t counter(std::string_view Name) const;
  /// Value of gauge \p Name, or 0 when absent.
  int64_t gauge(std::string_view Name) const;
  /// Histogram \p Name, or null when absent.
  const HistogramSnapshot *histogram(std::string_view Name) const;
};

/// A named collection of metrics with stable addresses: registration
/// returns a reference that stays valid for the registry's lifetime, so
/// hot paths capture the pointer once and never look names up again.
/// Registration takes a mutex (setup-time); the returned objects are the
/// lock-free primitives above, and snapshot() reads them without stopping
/// any writer. Re-registering a name returns the existing object (the
/// sharded counter's shard count must then match; asserted).
class MetricsRegistry {
public:
  /// Create-or-get a counter sharded \p Shards ways.
  ShardedCounter &counter(std::string_view Name, unsigned Shards);
  /// Create-or-get a gauge.
  Gauge &gauge(std::string_view Name);
  /// Create-or-get a histogram.
  LatencyHistogram &histogram(std::string_view Name);

  /// Epoch-snapshot of every registered metric (consistency model in the
  /// file comment). Entries are sorted by name for stable output.
  MetricsSnapshot snapshot() const;

private:
  template <typename T> struct Named {
    std::string Name;
    std::unique_ptr<T> Value;
  };

  mutable std::mutex RegMutex; ///< Guards the vectors, not the metrics.
  mutable std::atomic<uint64_t> Epoch{0};
  std::vector<Named<ShardedCounter>> Counters;
  std::vector<Named<Gauge>> Gauges;
  std::vector<Named<LatencyHistogram>> Histograms;
};

} // namespace obs
} // namespace ptm

#endif // PTM_OBS_METRICS_H
