//===-- support/Compiler.h - Portability and tuning macros -----*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability layer: cache-line geometry, branch hints, and an
/// unreachable marker. The library is exception-free and RTTI-free; abort
/// paths are expressed with status codes, so the only "failure" facility
/// needed here is an assert-backed unreachable.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_SUPPORT_COMPILER_H
#define PTM_SUPPORT_COMPILER_H

#include <cassert>
#include <cstddef>

/// Size, in bytes, assumed for one cache line. Shared mutable words that
/// must not false-share are aligned to this.
#define PTM_CACHELINE_SIZE 64

#if defined(__GNUC__) || defined(__clang__)
#define PTM_LIKELY(x) (__builtin_expect(!!(x), 1))
#define PTM_UNLIKELY(x) (__builtin_expect(!!(x), 0))
#else
#define PTM_LIKELY(x) (x)
#define PTM_UNLIKELY(x) (x)
#endif

/// Marks a point that must never be reached. Asserts in debug builds and
/// gives the optimizer an unreachable hint in release builds.
#if defined(__GNUC__) || defined(__clang__)
#define PTM_UNREACHABLE(msg)                                                   \
  do {                                                                         \
    assert(false && msg);                                                      \
    __builtin_unreachable();                                                   \
  } while (false)
#else
#define PTM_UNREACHABLE(msg) assert(false && msg)
#endif

namespace ptm {

/// Hint to the CPU that the caller is inside a spin-wait loop.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Fall back to a compiler barrier so the loop is not optimized away.
  asm volatile("" ::: "memory");
#endif
}

} // namespace ptm

#endif // PTM_SUPPORT_COMPILER_H
