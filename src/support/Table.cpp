//===-- support/Table.cpp - Aligned plain-text tables ---------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include "support/Format.h"
#include "support/RawOStream.h"

#include <cassert>

using namespace ptm;

TablePrinter::TablePrinter(std::vector<std::string> Columns)
    : Header(std::move(Columns)) {
  assert(!Header.empty() && "table must have at least one column");
}

void TablePrinter::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row arity must match header");
  Rows.push_back(std::move(Row));
}

void TablePrinter::print(RawOStream &OS) const {
  std::vector<size_t> Widths(Header.size());
  for (size_t I = 0, E = Header.size(); I != E; ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0, E = Row.size(); I != E; ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  auto printRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0, E = Row.size(); I != E; ++I) {
      if (I != 0)
        OS << "  ";
      OS << (I == 0 ? padRight(Row[I], Widths[I]) : padLeft(Row[I], Widths[I]));
    }
    OS << '\n';
  };

  printRow(Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W;
  Total += 2 * (Widths.size() - 1);
  std::string Rule(Total, '-');
  OS << Rule << '\n';
  for (const auto &Row : Rows)
    printRow(Row);
  OS << '\n';
}
