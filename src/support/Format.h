//===-- support/Format.h - String formatting helpers -----------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string-returning formatting helpers used by the table printer and
/// the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_SUPPORT_FORMAT_H
#define PTM_SUPPORT_FORMAT_H

#include <cstdint>
#include <cstdio>
#include <string>

namespace ptm {

/// Formats \p Value with \p Precision digits after the decimal point.
inline std::string formatDouble(double Value, unsigned Precision = 2) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", static_cast<int>(Precision), Value);
  return Buf;
}

/// Formats \p Value as a decimal integer.
inline std::string formatInt(uint64_t Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(Value));
  return Buf;
}

/// Formats \p Value as a signed decimal integer.
inline std::string formatInt(int64_t Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(Value));
  return Buf;
}

/// Pads \p Str on the left with spaces to at least \p Width characters.
inline std::string padLeft(std::string Str, size_t Width) {
  if (Str.size() < Width)
    Str.insert(0, Width - Str.size(), ' ');
  return Str;
}

/// Pads \p Str on the right with spaces to at least \p Width characters.
inline std::string padRight(std::string Str, size_t Width) {
  if (Str.size() < Width)
    Str.append(Width - Str.size(), ' ');
  return Str;
}

} // namespace ptm

#endif // PTM_SUPPORT_FORMAT_H
