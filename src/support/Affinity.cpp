//===-- support/Affinity.cpp - Thread-to-CPU pinning ----------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/Affinity.h"

#include <atomic>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

using namespace ptm;

bool ptm::affinitySupported() {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

unsigned ptm::affinityCpuCount() {
#if defined(__linux__)
  long N = sysconf(_SC_NPROCESSORS_ONLN);
  return N > 0 ? static_cast<unsigned>(N) : 0;
#else
  return 0;
#endif
}

namespace {
std::atomic<bool> PinningEnabled{false};
} // namespace

void ptm::setThreadPinningEnabled(bool Enabled) {
  PinningEnabled.store(Enabled, std::memory_order_relaxed);
}

bool ptm::threadPinningEnabled() {
  return PinningEnabled.load(std::memory_order_relaxed);
}

bool ptm::maybePinThread(unsigned Index) {
  return threadPinningEnabled() && pinThreadToCpu(Index);
}

bool ptm::pinThreadToCpu(unsigned Index) {
#if defined(__linux__)
  unsigned Count = affinityCpuCount();
  if (Count == 0)
    return false;
  cpu_set_t Set;
  CPU_ZERO(&Set);
  CPU_SET(Index % Count, &Set);
  return pthread_setaffinity_np(pthread_self(), sizeof(Set), &Set) == 0;
#else
  (void)Index;
  return false;
#endif
}
