//===-- support/CacheAligned.h - Cache-line isolation helper ----*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CacheAligned<T>: a T padded out to its own cache line(s), for hot
/// shared words that must not false-share — global clocks, per-thread
/// penalty state, seqlocks. The static_asserts make "this object owns its
/// line" a compile-time property instead of a convention: a T that grows
/// past its padding, or a containing array that strides two hot objects
/// through one line, fails the build rather than the benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_SUPPORT_CACHEALIGNED_H
#define PTM_SUPPORT_CACHEALIGNED_H

#include "support/Compiler.h"

#include <cstddef>
#include <utility>

namespace ptm {

template <typename T> struct alignas(PTM_CACHELINE_SIZE) CacheAligned {
  T Value;

  CacheAligned() = default;
  template <typename... Args>
  explicit CacheAligned(Args &&...A) : Value(std::forward<Args>(A)...) {}

  T &operator*() { return Value; }
  const T &operator*() const { return Value; }
  T *operator->() { return &Value; }
  const T *operator->() const { return &Value; }
};

// The isolation guarantees. alignas on the template rounds sizeof up to a
// multiple of the alignment, so adjacent elements of a
// std::vector<CacheAligned<T>> or a C array never share a line.
template <typename T>
inline constexpr bool cache_aligned_isolated_v =
    alignof(CacheAligned<T>) >= PTM_CACHELINE_SIZE &&
    sizeof(CacheAligned<T>) % PTM_CACHELINE_SIZE == 0;

static_assert(cache_aligned_isolated_v<char>,
              "CacheAligned must pad a small T to a full line");
static_assert(cache_aligned_isolated_v<long[9]>,
              "CacheAligned must round a multi-line T up to whole lines");

} // namespace ptm

#endif // PTM_SUPPORT_CACHEALIGNED_H
