//===-- support/RawOStream.cpp - Lightweight output streams --------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/RawOStream.h"

#include <cinttypes>
#include <cstring>

using namespace ptm;

RawOStream::~RawOStream() = default;

RawOStream &RawOStream::operator<<(char C) { return write(&C, 1); }

RawOStream &RawOStream::operator<<(const char *Str) {
  if (Str)
    write(Str, std::strlen(Str));
  return *this;
}

RawOStream &RawOStream::operator<<(const std::string &Str) {
  return write(Str.data(), Str.size());
}

RawOStream &RawOStream::operator<<(bool B) {
  return *this << (B ? "true" : "false");
}

RawOStream &RawOStream::operator<<(int32_t N) {
  return *this << static_cast<int64_t>(N);
}

RawOStream &RawOStream::operator<<(uint32_t N) {
  return *this << static_cast<uint64_t>(N);
}

RawOStream &RawOStream::operator<<(int64_t N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRId64, N);
  return write(Buf, static_cast<size_t>(Len));
}

RawOStream &RawOStream::operator<<(uint64_t N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRIu64, N);
  return write(Buf, static_cast<size_t>(Len));
}

RawOStream &RawOStream::operator<<(double D) {
  char Buf[48];
  int Len = std::snprintf(Buf, sizeof(Buf), "%g", D);
  return write(Buf, static_cast<size_t>(Len));
}

RawOStream &RawOStream::write(const char *Ptr, size_t Size) {
  writeImpl(Ptr, Size);
  return *this;
}

void FileOStream::writeImpl(const char *Ptr, size_t Size) {
  std::fwrite(Ptr, 1, Size, File);
}

void FileOStream::flush() { std::fflush(File); }

void StringOStream::writeImpl(const char *Ptr, size_t Size) {
  Buffer.append(Ptr, Size);
}

RawOStream &ptm::outs() {
  static FileOStream Stream(stdout);
  return Stream;
}

RawOStream &ptm::errs() {
  static FileOStream Stream(stderr);
  return Stream;
}
