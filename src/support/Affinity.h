//===-- support/Affinity.h - Thread-to-CPU pinning --------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Best-effort thread pinning for the benchmark harness (`--pin`):
/// round-robin workers over the online CPUs so thread counts above the
/// core count degrade predictably and runs become repeatable across
/// scheduler moods. Pinning is a measurement-hygiene knob, not a
/// correctness one — on platforms without an affinity API every call is a
/// no-op returning false, and the harness records whether pinning was
/// actually applied in the run's JSON config block.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_SUPPORT_AFFINITY_H
#define PTM_SUPPORT_AFFINITY_H

namespace ptm {

/// True iff this platform supports thread pinning (Linux pthread
/// affinity). When false, pinThreadToCpu always fails.
bool affinitySupported();

/// Number of CPUs usable for pinning (0 when unsupported).
unsigned affinityCpuCount();

/// Pins the CALLING thread to CPU `Index % affinityCpuCount()` (the
/// round-robin the bench driver wants is thus just "pass the worker
/// index"). Returns true iff the affinity change was applied.
bool pinThreadToCpu(unsigned Index);

/// Process-global opt-in flag behind `--pin`: worker-spawning plumbing
/// (workload Driver.h, the kv RequestExecutor pool) consults it so the
/// flag needs no per-call-site threading. Off by default — pinning is
/// opt-in measurement hygiene, and tests never want it.
void setThreadPinningEnabled(bool Enabled);
bool threadPinningEnabled();

/// pinThreadToCpu(Index) iff pinning is globally enabled; returns true
/// iff an affinity change was actually applied.
bool maybePinThread(unsigned Index);

} // namespace ptm

#endif // PTM_SUPPORT_AFFINITY_H
