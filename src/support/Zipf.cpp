//===-- support/Zipf.cpp - Zipfian index sampler ---------------------------===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/Zipf.h"

#include "support/Random.h"

#include <cassert>
#include <cmath>

using namespace ptm;

static double zeta(uint64_t N, double Theta) {
  double Sum = 0.0;
  for (uint64_t I = 1; I <= N; ++I)
    Sum += 1.0 / std::pow(static_cast<double>(I), Theta);
  return Sum;
}

ZipfDistribution::ZipfDistribution(uint64_t Domain, double Skew)
    : N(Domain), Theta(Skew) {
  assert(Domain > 0 && "domain must be nonempty");
  assert(Skew >= 0.0 && Skew < 1.0 && "generator requires theta in [0,1)");
  Zeta2Theta = zeta(2, Theta);
  ZetaN = zeta(N, Theta);
  Alpha = 1.0 / (1.0 - Theta);
  Eta = (1.0 - std::pow(2.0 / static_cast<double>(N), 1.0 - Theta)) /
        (1.0 - Zeta2Theta / ZetaN);
}

uint64_t ZipfDistribution::sample(Xoshiro256 &Rng) const {
  if (N == 1)
    return 0;
  double U = Rng.nextDouble();
  double Uz = U * ZetaN;
  if (Uz < 1.0)
    return 0;
  if (Uz < 1.0 + std::pow(0.5, Theta))
    return 1;
  double Rank = static_cast<double>(N) *
                std::pow(Eta * U - Eta + 1.0, Alpha);
  uint64_t Result = static_cast<uint64_t>(Rank);
  if (Result >= N)
    Result = N - 1;
  return Result;
}
