//===-- support/Zipf.h - Zipfian index sampler ------------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Zipf-distributed sampling over [0, N) using the Gray et al. "quick and
/// portable" generator (the one popularized by YCSB). Skewed STM workloads
/// (experiment E7) draw object ids from this.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_SUPPORT_ZIPF_H
#define PTM_SUPPORT_ZIPF_H

#include <cstdint>

namespace ptm {

class Xoshiro256;

/// Samples ranks from a Zipf distribution with exponent \p Theta over
/// [0, N). Theta = 0 degenerates to uniform; typical skewed workloads use
/// Theta around 0.8–0.99. Construction is O(N) (zeta precomputation);
/// sampling is O(1).
class ZipfDistribution {
public:
  ZipfDistribution(uint64_t Domain, double Skew);

  /// Draws one rank in [0, N) using \p Rng.
  uint64_t sample(Xoshiro256 &Rng) const;

  uint64_t size() const { return N; }
  double theta() const { return Theta; }

private:
  uint64_t N;
  double Theta;
  double Zeta2Theta;
  double ZetaN;
  double Alpha;
  double Eta;
};

} // namespace ptm

#endif // PTM_SUPPORT_ZIPF_H
