//===-- support/Spin.h - Spin-wait backoff helpers --------------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exponential backoff used by transaction retry loops and lock
/// acquisition paths. Deterministic (no clock, no PRNG): the backoff
/// sequence depends only on the number of failures so far, which keeps
/// step-count experiments reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_SUPPORT_SPIN_H
#define PTM_SUPPORT_SPIN_H

#include "support/Compiler.h"

#include <cstdint>
#include <thread>

namespace ptm {

/// One pause inside a spin-wait loop: cheap CPU relaxes at first, then a
/// scheduler yield every 128th call so oversubscribed hosts (more
/// spinning threads than cores) still make progress. \p Count is the
/// caller's loop-local counter.
inline void spinPause(uint32_t &Count) {
  if (PTM_UNLIKELY(++Count >= 128)) {
    Count = 0;
    std::this_thread::yield();
  } else {
    cpuRelax();
  }
}

/// Exponential backoff: each call to spin() pauses roughly twice as long as
/// the previous one, up to a cap.
class Backoff {
public:
  explicit Backoff(uint32_t InitialSpins = 4, uint32_t MaxSpins = 1024)
      : Current(InitialSpins), Initial(InitialSpins), Max(MaxSpins) {}

  /// Busy-waits for the current backoff duration, then doubles it. Once
  /// saturated, also yields: a capped backoff means heavy contention, and
  /// on an oversubscribed host the contender we wait for may need a core.
  void spin() {
    for (uint32_t I = 0; I < Current; ++I)
      cpuRelax();
    if (Current < Max)
      Current *= 2;
    else
      std::this_thread::yield();
  }

  /// Resets the backoff to its initial duration.
  void reset() { Current = Initial; }

private:
  uint32_t Current;
  uint32_t Initial;
  uint32_t Max;
};

} // namespace ptm

#endif // PTM_SUPPORT_SPIN_H
