//===-- support/RawOStream.h - Lightweight output streams ------*- C++ -*-===//
//
// Part of the PTM project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal raw_ostream-style output facility. Library code never includes
/// <iostream> (which injects static constructors); all human-readable output
/// goes through these classes instead.
///
//===----------------------------------------------------------------------===//

#ifndef PTM_SUPPORT_RAWOSTREAM_H
#define PTM_SUPPORT_RAWOSTREAM_H

#include <cstdint>
#include <cstdio>
#include <string>

namespace ptm {

/// Abstract byte-oriented output stream with formatting operators for the
/// types the project prints. Subclasses supply the sink via writeImpl().
class RawOStream {
public:
  virtual ~RawOStream();

  RawOStream &operator<<(char C);
  RawOStream &operator<<(const char *Str);
  RawOStream &operator<<(const std::string &Str);
  RawOStream &operator<<(bool B);
  RawOStream &operator<<(int32_t N);
  RawOStream &operator<<(uint32_t N);
  RawOStream &operator<<(int64_t N);
  RawOStream &operator<<(uint64_t N);
  RawOStream &operator<<(double D);

  /// Writes exactly \p Size bytes from \p Ptr.
  RawOStream &write(const char *Ptr, size_t Size);

  /// Flushes any buffering performed by the sink.
  virtual void flush() {}

protected:
  virtual void writeImpl(const char *Ptr, size_t Size) = 0;
};

/// Stream over a stdio FILE handle. Does not own the handle.
class FileOStream : public RawOStream {
public:
  explicit FileOStream(std::FILE *Handle) : File(Handle) {}

  void flush() override;

protected:
  void writeImpl(const char *Ptr, size_t Size) override;

private:
  std::FILE *File;
};

/// Stream that appends to a caller-owned std::string. Useful for tests and
/// for composing table rows.
class StringOStream : public RawOStream {
public:
  explicit StringOStream(std::string &Out) : Buffer(Out) {}

protected:
  void writeImpl(const char *Ptr, size_t Size) override;

private:
  std::string &Buffer;
};

/// Returns a stream bound to stdout. Safe to call from multiple threads only
/// if callers serialize whole lines themselves.
RawOStream &outs();

/// Returns a stream bound to stderr.
RawOStream &errs();

} // namespace ptm

#endif // PTM_SUPPORT_RAWOSTREAM_H
